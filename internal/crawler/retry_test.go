package crawler

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faultx"
	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/tracex"
	"repro/internal/urlx"
)

// flakyServer serves a valid image payload after failing the first
// failures requests per URL with status (and optional Retry-After).
func flakyServer(t *testing.T, failures, status int, retryAfter time.Duration) (*httptest.Server, func() int) {
	t.Helper()
	payload := imagex.GenModel(1, 0, imagex.PoseNude, 24).Encode()
	var (
		mu    sync.Mutex
		seen  = map[string]int{}
		total int
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		total++
		n := seen[r.URL.Path]
		seen[r.URL.Path] = n + 1
		mu.Unlock()
		if n < failures {
			if retryAfter > 0 {
				w.Header().Set("Retry-After", faultx.FormatRetryAfter(retryAfter))
			}
			w.WriteHeader(status)
			return
		}
		w.Header().Set("Content-Type", hosting.ContentTypeSIMG)
		w.Write(payload)
	}))
	t.Cleanup(srv.Close)
	return srv, func() int {
		mu.Lock()
		defer mu.Unlock()
		return total
	}
}

func retryCrawler(srv *httptest.Server, cfg Config) *Crawler {
	resolve := func(u string) (string, error) {
		return srv.URL + "/" + urlx.Domain(u) + "/x", nil
	}
	return New(cfg, srv.Client(), resolve)
}

func TestRetryThenSucceed(t *testing.T) {
	// Two scripted 429s per URL, then success: inside the default
	// MaxRetries=2 budget, so the fetch lands OK on the third attempt.
	srv, requests := flakyServer(t, 2, http.StatusTooManyRequests, time.Millisecond)
	c := retryCrawler(srv, Config{Concurrency: 1, BackoffBase: time.Millisecond})

	tracer := tracex.New(tracex.Config{IDs: tracex.NewSeqIDs(1)})
	ctx := tracex.NewContext(context.Background(), tracer)
	ctx, root := tracex.StartSpan(ctx, "test")

	res := c.Crawl(ctx, []Task{task("https://imgur.com/x", urlx.KindImageSharing)})
	root.End()
	if res[0].Outcome != OutcomeOK {
		t.Fatalf("outcome %v err %v", res[0].Outcome, res[0].Err)
	}
	if got := requests(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", got)
	}
	// The fetch span records how hard it had to work.
	tr, ok := tracer.Trace(root.Context().Trace.String())
	if !ok {
		t.Fatal("trace not recorded")
	}
	found := false
	for _, sp := range tr.Spans {
		if sp.Name != "crawl fetch" {
			continue
		}
		found = true
		if sp.Attrs["attempts"] != "3" || sp.Attrs["outcome"] != "ok" {
			t.Fatalf("fetch span attrs = %v, want attempts=3 outcome=ok", sp.Attrs)
		}
	}
	if !found {
		t.Fatal("no crawl fetch span recorded")
	}
}

func TestRetryExhausted(t *testing.T) {
	srv, requests := flakyServer(t, 10, http.StatusTooManyRequests, time.Millisecond)
	c := retryCrawler(srv, Config{Concurrency: 1, BackoffBase: time.Millisecond, MaxRetries: 2})
	res := c.Crawl(context.Background(), []Task{task("https://imgur.com/x", urlx.KindImageSharing)})
	if res[0].Outcome != OutcomeError {
		t.Fatalf("outcome %v, want error", res[0].Outcome)
	}
	var se *StatusError
	if !errors.As(res[0].Err, &se) || se.StatusCode != 429 {
		t.Fatalf("err = %v, want StatusError 429", res[0].Err)
	}
	if got := requests(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

func TestBackoffSchedule(t *testing.T) {
	base, max := 10*time.Millisecond, 2*time.Second
	// No hint: legacy linear (attempt+1)*base.
	for attempt, want := range []time.Duration{10, 20, 30} {
		if got := Backoff(attempt, base, max, 0); got != want*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, got, want*time.Millisecond)
		}
	}
	// Hinted: capped doubling of the server's Retry-After.
	hint := 100 * time.Millisecond
	for attempt, want := range []time.Duration{100, 200, 400} {
		if got := Backoff(attempt, base, max, hint); got != want*time.Millisecond {
			t.Errorf("hinted Backoff(%d) = %v, want %v", attempt, got, want*time.Millisecond)
		}
	}
	// The cap bounds both schedules, however hostile the hint.
	if got := Backoff(10, base, max, time.Hour); got != max {
		t.Errorf("capped hinted backoff = %v, want %v", got, max)
	}
	if got := Backoff(1000, base, max, 0); got != max {
		t.Errorf("capped linear backoff = %v, want %v", got, max)
	}
	// Absurd attempt counts must not overflow the shift.
	if got := Backoff(100, base, max, time.Nanosecond); got < 0 || got > max {
		t.Errorf("overflow guard failed: %v", got)
	}
}

func TestRetryHonorsCancellation(t *testing.T) {
	// The server always 429s with a long Retry-After; cancelling during
	// the backoff sleep must surface promptly as a context error.
	srv, _ := flakyServer(t, 1000, http.StatusTooManyRequests, 10*time.Second)
	c := retryCrawler(srv, Config{Concurrency: 1, MaxBackoff: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []Result, 1)
	go func() {
		done <- c.Crawl(ctx, []Task{task("https://imgur.com/x", urlx.KindImageSharing)})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res[0].Outcome != OutcomeError || !errors.Is(res[0].Err, context.Canceled) {
			t.Fatalf("result = %v err %v, want context.Canceled", res[0].Outcome, res[0].Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crawl did not unwind from backoff sleep on cancellation")
	}
}

func TestBreakerOpensAndProbes(t *testing.T) {
	// An always-failing host: after BreakerThreshold retry-exhausted
	// fetches the breaker opens and fetches fail fast with ErrHostOpen;
	// every BreakerProbeEvery-th arrival goes through as a probe.
	srv, requests := flakyServer(t, 1<<30, http.StatusTooManyRequests, time.Millisecond)
	c := retryCrawler(srv, Config{
		Concurrency: 1, BackoffBase: time.Millisecond,
		MaxRetries:       -1, // single attempt per fetch
		BreakerThreshold: 2, BreakerProbeEvery: 3,
	})
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = task("https://imgur.com/x", urlx.KindImageSharing)
	}
	res := c.Crawl(context.Background(), tasks)
	// Fetches 1-2 burn real requests and open the breaker; 3,4 are
	// short-circuited; 5 is the probe (3rd arrival at the open breaker),
	// fails, stays open; 6,7 short-circuited; 8 probes again.
	wantOpen := map[int]bool{2: true, 3: true, 5: true, 6: true}
	for i, r := range res {
		if r.Outcome != OutcomeError {
			t.Fatalf("task %d outcome %v", i, r.Outcome)
		}
		if got := errors.Is(r.Err, ErrHostOpen); got != wantOpen[i] {
			t.Fatalf("task %d err = %v, want short-circuit=%v", i, r.Err, wantOpen[i])
		}
	}
	if got := requests(); got != 4 {
		t.Fatalf("server saw %d requests, want 4 (2 opening + 2 probes)", got)
	}
}

func TestBreakerClosesOnRecovery(t *testing.T) {
	// Host fails long enough to open the breaker, then recovers: the
	// next admitted probe succeeds and closes the circuit, so later
	// fetches flow normally again.
	srv, requests := flakyServer(t, 2, http.StatusInternalServerError, 0)
	c := retryCrawler(srv, Config{
		Concurrency: 1, BackoffBase: time.Millisecond,
		MaxRetries:       -1,
		BreakerThreshold: 2, BreakerProbeEvery: 2,
	})
	tasks := make([]Task, 6)
	for i := range tasks {
		tasks[i] = task("https://imgur.com/x", urlx.KindImageSharing)
	}
	res := c.Crawl(context.Background(), tasks)
	// 1-2 fail (500×2 scripted) and open the breaker; 3 short-circuits;
	// 4 probes, the host has healed → OK and the breaker closes; 5-6 OK.
	wants := []struct {
		outcome Outcome
		open    bool
	}{
		{OutcomeError, false}, {OutcomeError, false},
		{OutcomeError, true},
		{OutcomeOK, false}, {OutcomeOK, false}, {OutcomeOK, false},
	}
	for i, w := range wants {
		if res[i].Outcome != w.outcome || errors.Is(res[i].Err, ErrHostOpen) != w.open {
			t.Fatalf("task %d = (%v, %v), want (%v, open=%v)",
				i, res[i].Outcome, res[i].Err, w.outcome, w.open)
		}
	}
	if got := requests(); got != 5 {
		t.Fatalf("server saw %d requests, want 5", got)
	}
}

func TestBreakerDisabled(t *testing.T) {
	srv, requests := flakyServer(t, 1<<30, http.StatusInternalServerError, 0)
	c := retryCrawler(srv, Config{
		Concurrency: 1, BackoffBase: time.Microsecond,
		MaxRetries: -1, BreakerThreshold: -1,
	})
	tasks := make([]Task, 10)
	for i := range tasks {
		tasks[i] = task("https://imgur.com/x", urlx.KindImageSharing)
	}
	res := c.Crawl(context.Background(), tasks)
	for i, r := range res {
		if errors.Is(r.Err, ErrHostOpen) {
			t.Fatalf("task %d short-circuited with the breaker disabled", i)
		}
	}
	if got := requests(); got != 10 {
		t.Fatalf("server saw %d requests, want all 10", got)
	}
}

func TestRetryBudget(t *testing.T) {
	srv, requests := flakyServer(t, 1<<30, http.StatusTooManyRequests, time.Millisecond)
	c := retryCrawler(srv, Config{
		Concurrency: 1, BackoffBase: time.Millisecond,
		MaxRetries: 2, RetryBudget: 1, BreakerThreshold: -1,
	})
	res := c.Crawl(context.Background(), []Task{
		task("https://imgur.com/x", urlx.KindImageSharing),
		task("https://imgur.com/x", urlx.KindImageSharing),
	})
	for i, r := range res {
		if r.Outcome != OutcomeError {
			t.Fatalf("task %d outcome %v", i, r.Outcome)
		}
	}
	// Task 1 spends the host's whole budget (initial + 1 retry), task 2
	// gets its initial attempt only: 3 requests, not 6.
	if got := requests(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

func TestCoverageOf(t *testing.T) {
	mk := func(host string, o Outcome) Result {
		return Result{Task: Task{Link: urlx.Link{Domain: host}}, Outcome: o}
	}
	cov := CoverageOf([]Result{
		mk("b.com", OutcomeOK),
		mk("b.com", OutcomeError),
		mk("a.com", OutcomeError),
		mk("a.com", OutcomeError),
		mk("c.com", OutcomeNotFound),
	})
	if !cov.Degraded || cov.Errors != 3 {
		t.Fatalf("coverage = %+v", cov)
	}
	if len(cov.DeadHosts) != 1 || cov.DeadHosts[0] != "a.com" {
		t.Fatalf("dead hosts = %v, want [a.com] (b.com had a success, c.com only rot)", cov.DeadHosts)
	}
	if len(cov.Hosts) != 3 || cov.Hosts[0].Host != "a.com" || cov.Hosts[1].Host != "b.com" {
		t.Fatalf("ledger unsorted: %+v", cov.Hosts)
	}
	if h := cov.Hosts[1]; h.Tasks != 2 || h.OK != 1 || h.Errors != 1 {
		t.Fatalf("b.com row = %+v", h)
	}

	healthy := CoverageOf([]Result{mk("a.com", OutcomeOK), mk("b.com", OutcomeNotFound)})
	if healthy.Degraded || healthy.Errors != 0 || healthy.DeadHosts != nil {
		t.Fatalf("healthy coverage = %+v", healthy)
	}
}
