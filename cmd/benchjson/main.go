// Command benchjson converts `go test -bench` text output into a JSON
// benchmark artifact. CI runs the StudyRun smoke pair through it and
// uploads BENCH_pipeline.json on every push, so the perf trajectory of
// the stage engine accumulates run over run.
//
// Each entry keeps the raw benchmark line verbatim: joining the `raw`
// fields of two artifacts reconstructs files benchstat accepts, so the
// JSON is both machine-queryable and benchstat-parseable.
//
// The -diff mode is the benchmark-regression gate: it compares a
// fresh run (text or JSON) against a committed baseline artifact and
// exits non-zero when any benchmark regresses beyond the tolerance,
// or silently disappears. CI's bench-smoke job runs it against the
// committed BENCH_*.json on every push, so the perf trajectory is
// enforced, not just recorded.
//
// Usage:
//
//	go test -run='^$' -bench=StudyRun -benchtime=1x . | benchjson [-out FILE]
//	benchjson -in bench.txt -out BENCH_pipeline.json
//	benchjson -diff -baseline BENCH_pipeline.json -in bench.txt [-tolerance 0.30]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark without the "Benchmark" prefix or -P suffix.
	Name string `json:"name"`
	// Procs is GOMAXPROCS at run time (the -P suffix; 1 if absent).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Extra holds any further unit pairs (B/op, allocs/op, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
	// Raw is the untouched benchmark line, so the artifact can be
	// reassembled into benchstat input.
	Raw string `json:"raw"`
}

// Artifact is the output document.
type Artifact struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "benchmark input, text or JSON artifact (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	diff := flag.Bool("diff", false, "compare the input against -baseline instead of emitting JSON")
	baseline := flag.String("baseline", "", "baseline JSON artifact for -diff")
	tolerance := flag.Float64("tolerance", 0.30, "fractional ns/op regression allowed by -diff")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		// Read-only: a close error cannot lose data.
		defer func() { _ = f.Close() }()
		r = f
	}
	art, err := load(r)
	if err != nil {
		fatal(err)
	}
	if len(art.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	if *diff {
		if *baseline == "" {
			fatal(fmt.Errorf("-diff requires -baseline"))
		}
		bf, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		base, err := load(bf)
		_ = bf.Close() // read-only: a close error cannot lose data
		if err != nil {
			fatal(err)
		}
		report, failed := diffArtifacts(base, art, *tolerance)
		fmt.Print(report)
		if failed {
			os.Exit(1)
		}
		return
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		// The artifact usually lands in a shell redirection; a short
		// write must fail the run, not silently truncate the JSON.
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// load reads either raw `go test -bench` text or an already-converted
// JSON artifact, sniffing by the first non-space byte.
func load(r io.Reader) (*Artifact, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		art := &Artifact{}
		if err := json.Unmarshal(trimmed, art); err != nil {
			return nil, fmt.Errorf("parsing JSON artifact: %w", err)
		}
		return art, nil
	}
	return parse(bytes.NewReader(data))
}

// diffArtifacts compares current against base benchmark by benchmark.
// A benchmark fails the gate when its ns/op exceeds the baseline by
// more than the tolerance fraction, or when it exists in the baseline
// but not in the current run (a silently-dropped benchmark must not
// pass). Benchmarks new in the current run are reported, not failed.
//
// Extra units present in the baseline are gated too: a unit missing
// from the current run fails (a dropped metric must not pass), a
// positive baseline value is held to the same relative tolerance as
// ns/op, and a zero baseline value is held absolutely (current may not
// exceed the tolerance itself — the shed_rate gate: baseline 0 means
// "a shed rate above the tolerance fraction is a regression"). All
// gates are one-sided; improvements always pass.
func diffArtifacts(base, cur *Artifact, tolerance float64) (string, bool) {
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	baseSeen := make(map[string]bool, len(base.Benchmarks))

	var sb strings.Builder
	failed := false
	fmt.Fprintf(&sb, "%-28s %15s %15s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, b := range base.Benchmarks {
		baseSeen[b.Name] = true
		c, ok := curBy[b.Name]
		if !ok {
			failed = true
			fmt.Fprintf(&sb, "%-28s %15.0f %15s %9s  FAIL (missing from current run)\n",
				b.Name, b.NsPerOp, "-", "-")
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		verdict := "ok"
		if delta > tolerance {
			failed = true
			verdict = fmt.Sprintf("FAIL (> %+.0f%% tolerance)", tolerance*100)
		}
		fmt.Fprintf(&sb, "%-28s %15.0f %15.0f %+8.1f%%  %s\n",
			b.Name, b.NsPerOp, c.NsPerOp, delta*100, verdict)
		for _, unit := range sortedUnits(b.Extra) {
			bv := b.Extra[unit]
			label := b.Name + " " + unit
			cv, ok := c.Extra[unit]
			if !ok {
				failed = true
				fmt.Fprintf(&sb, "%-28s %15g %15s %9s  FAIL (unit missing from current run)\n",
					label, bv, "-", "-")
				continue
			}
			verdict := "ok"
			switch {
			case bv > 0:
				// Relative gate, same shape as ns/op.
				delta := (cv - bv) / bv
				if delta > tolerance {
					failed = true
					verdict = fmt.Sprintf("FAIL (> %+.0f%% tolerance)", tolerance*100)
				}
				fmt.Fprintf(&sb, "%-28s %15g %15g %+8.1f%%  %s\n",
					label, bv, cv, delta*100, verdict)
			default:
				// Zero baseline: no relative scale exists, so the
				// tolerance itself is the absolute ceiling.
				if cv > tolerance {
					failed = true
					verdict = fmt.Sprintf("FAIL (> %g absolute ceiling)", tolerance)
				}
				fmt.Fprintf(&sb, "%-28s %15g %15g %9s  %s\n",
					label, bv, cv, "-", verdict)
			}
		}
	}
	for _, c := range cur.Benchmarks {
		if !baseSeen[c.Name] {
			fmt.Fprintf(&sb, "%-28s %15s %15.0f %9s  new (not in baseline)\n",
				c.Name, "-", c.NsPerOp, "-")
		}
	}
	if failed {
		fmt.Fprintf(&sb, "benchmark regression gate FAILED (tolerance %.0f%%)\n", tolerance*100)
	} else {
		fmt.Fprintf(&sb, "benchmark regression gate passed (tolerance %.0f%%)\n", tolerance*100)
	}
	return sb.String(), failed
}

// sortedUnits returns the extra-unit names in deterministic order, so
// the diff report (and its failure lines) are byte-stable run to run.
func sortedUnits(extra map[string]float64) []string {
	units := make([]string, 0, len(extra))
	for u := range extra {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads `go test -bench` output: header key: value lines, then
// result lines of the form
//
//	BenchmarkName-8   	      10	 123456789 ns/op	[more unit pairs]
func parse(r io.Reader) (*Artifact, error) {
	art := &Artifact{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			art.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			art.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			art.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			art.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			art.Benchmarks = append(art.Benchmarks, b)
		}
	}
	return art, sc.Err()
}

func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	b := Benchmark{Raw: line, Procs: 1}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			b.Procs = p
			name = name[:i]
		}
	}
	b.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b.Iterations = iters
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value in %q: %w", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Extra == nil {
			b.Extra = make(map[string]float64)
		}
		b.Extra[unit] = v
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, fmt.Errorf("no ns/op in %q", line)
	}
	return b, nil
}
