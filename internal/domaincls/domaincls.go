// Package domaincls reproduces the study's domain-classification step
// (§4.5): the ~5.9k domains surfaced by reverse image search are
// tagged by three commercial classifiers — McAfee's URL ticketing
// system, VirusTotal's URL reputation service and Cisco OpenDNS domain
// tagging — each with its own taxonomy, multi-tag output, coverage
// gaps and mutual disagreement (all documented limitations the paper
// discusses).
//
// Ground truth lives in a Directory (domain → site class) that the
// synthetic-world generator populates; each simulated classifier maps
// the truth into its own vocabulary with classifier-specific noise
// derived deterministically from the domain name.
package domaincls

import (
	"sort"
)

// SiteClass is the ground-truth type of a site in the synthetic web.
type SiteClass int

// Ground-truth site classes, covering the source categories the paper
// finds images are taken from.
const (
	ClassUnknown SiteClass = iota
	ClassPorn
	ClassSocialNetwork
	ClassBlog
	ClassPhotoSharing
	ClassForum
	ClassShop
	ClassNews
	ClassDating
	ClassGames
	ClassBusiness
	ClassEntertainment
)

// String names the class.
func (c SiteClass) String() string {
	switch c {
	case ClassPorn:
		return "porn"
	case ClassSocialNetwork:
		return "social network"
	case ClassBlog:
		return "blog"
	case ClassPhotoSharing:
		return "photo sharing"
	case ClassForum:
		return "forum"
	case ClassShop:
		return "shop"
	case ClassNews:
		return "news"
	case ClassDating:
		return "dating"
	case ClassGames:
		return "games"
	case ClassBusiness:
		return "business"
	case ClassEntertainment:
		return "entertainment"
	default:
		return "unknown"
	}
}

// Directory is the ground-truth registry of the synthetic web.
type Directory struct {
	classes map[string]SiteClass
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{classes: make(map[string]SiteClass)}
}

// Set records the ground-truth class of a domain.
func (d *Directory) Set(domain string, c SiteClass) { d.classes[domain] = c }

// Class returns the ground-truth class of a domain.
func (d *Directory) Class(domain string) SiteClass { return d.classes[domain] }

// Len returns the number of registered domains.
func (d *Directory) Len() int { return len(d.classes) }

// NoResult is the tag emitted when a classifier has no verdict.
const NoResult = "no_result"

// Classifier simulates one commercial domain classifier.
type Classifier struct {
	// Name identifies the classifier ("McAfee", "VirusTotal",
	// "OpenDNS").
	Name string
	// tags maps ground truth to the classifier's tag vocabulary; a
	// domain receives a deterministic subset.
	tags map[SiteClass][]string
	// noResultRate is the fraction of domains with no verdict
	// (OpenDNS famously leaves ~22% unclassified).
	noResultRate float64
	// multiTag: probability of emitting more than one tag per domain
	// (VirusTotal aggregates several engines and often returns 2-3).
	multiTag float64
	dir      *Directory
}

// fnv hashes a string with an offset, giving each classifier an
// independent deterministic noise stream per domain.
func fnv(s, salt string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(salt); i++ {
		h ^= uint64(salt[i])
		h *= 1099511628211
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Classify returns the classifier's tags for a domain. Output is
// deterministic per (classifier, domain).
func (c *Classifier) Classify(domain string) []string {
	h := fnv(domain, c.Name)
	if float64(h%1000)/1000 < c.noResultRate {
		return []string{NoResult}
	}
	truth := c.dir.Class(domain)
	vocab := c.tags[truth]
	if len(vocab) == 0 {
		return []string{NoResult}
	}
	// Always emit the primary tag; sometimes more.
	n := 1
	if float64((h>>10)%1000)/1000 < c.multiTag {
		n = 2
		if len(vocab) > 2 && (h>>20)%3 == 0 {
			n = 3
		}
	}
	if n > len(vocab) {
		n = len(vocab)
	}
	out := make([]string, 0, n)
	start := int((h >> 30) % uint64(len(vocab)))
	// The first vocabulary entry is the canonical tag for the truth;
	// always include it, then rotate through alternates.
	out = append(out, vocab[0])
	for i := 1; len(out) < n; i++ {
		tag := vocab[(start+i)%len(vocab)]
		if tag != out[0] {
			out = append(out, tag)
		}
		if i > len(vocab) {
			break
		}
	}
	return out
}

// NewMcAfee builds the McAfee-style classifier over the directory.
func NewMcAfee(dir *Directory) *Classifier {
	return &Classifier{
		Name:         "McAfee",
		dir:          dir,
		noResultRate: 0.05,
		multiTag:     0.25,
		tags: map[SiteClass][]string{
			ClassPorn:          {"Pornography", "Provocative Attire", "Nudity"},
			ClassSocialNetwork: {"Social Networking", "Internet Services"},
			ClassBlog:          {"Blogs/Wiki", "Entertainment"},
			ClassPhotoSharing:  {"Media Sharing", "Internet Services"},
			ClassForum:         {"Forum/Bulletin Boards", "Internet Services"},
			ClassShop:          {"Online Shopping", "Marketing/Merchandising"},
			ClassNews:          {"General News", "Portal Sites"},
			ClassDating:        {"Dating/Personals"},
			ClassGames:         {"Games", "Humor/Comics"},
			ClassBusiness:      {"Business", "Marketing/Merchandising"},
			ClassEntertainment: {"Entertainment", "Streaming Media"},
			ClassUnknown:       {"Parked Domain", "Malicious Sites", "PUPs"},
		},
	}
}

// NewVirusTotal builds the VirusTotal-style classifier (aggregating
// several engines, hence frequent multi-tags and near-synonym tags).
func NewVirusTotal(dir *Directory) *Classifier {
	return &Classifier{
		Name:         "VirusTotal",
		dir:          dir,
		noResultRate: 0.06,
		multiTag:     0.65,
		tags: map[SiteClass][]string{
			ClassPorn:          {"adult content", "porn", "sex"},
			ClassSocialNetwork: {"social networking", "information technology"},
			ClassBlog:          {"blogs", "entertainment"},
			ClassPhotoSharing:  {"information technology", "computers and software"},
			ClassForum:         {"message boards and forums", "information technology"},
			ClassShop:          {"shopping", "onlineshop", "business and economy"},
			ClassNews:          {"news", "news and media"},
			ClassDating:        {"onlinedating", "sex"},
			ClassGames:         {"games", "entertainment"},
			ClassBusiness:      {"business", "business and economy", "marketing"},
			ClassEntertainment: {"entertainment", "sports"},
			ClassUnknown:       {"uncategorised", "parked"},
		},
	}
}

// NewOpenDNS builds the OpenDNS-style classifier (large no_result
// fraction, porn split across several adult tags).
func NewOpenDNS(dir *Directory) *Classifier {
	return &Classifier{
		Name:         "OpenDNS",
		dir:          dir,
		noResultRate: 0.22,
		multiTag:     0.45,
		tags: map[SiteClass][]string{
			ClassPorn:          {"Pornography", "Nudity", "Adult Themes", "Lingerie/Bikini", "Sexuality"},
			ClassSocialNetwork: {"Social Networking"},
			ClassBlog:          {"Blogs"},
			ClassPhotoSharing:  {"Photo Sharing"},
			ClassForum:         {"Forums/Message boards"},
			ClassShop:          {"Ecommerce/Shopping"},
			ClassNews:          {"News/Media"},
			ClassDating:        {"Dating", "Adult Themes"},
			ClassGames:         {"Games"},
			ClassBusiness:      {"Business Services"},
			ClassEntertainment: {"Television", "Movies"},
			ClassUnknown:       {"Parked Domains"},
		},
	}
}

// TagCount is one row of a Table 6 panel.
type TagCount struct {
	Tag string
	// Domains is the number of domains carrying the tag.
	Domains int
	// CumPct is the running percentage of all tag assignments.
	CumPct float64
}

// Tally classifies every domain and returns rows sorted by descending
// count with cumulative percentages, cut off at cutoffPct (the paper
// prints the top 85% of the distribution; pass 100 for everything).
func Tally(c *Classifier, domains []string, cutoffPct float64) []TagCount {
	counts := make(map[string]int)
	total := 0
	for _, d := range domains {
		for _, tag := range c.Classify(d) {
			counts[tag]++
			total++
		}
	}
	rows := make([]TagCount, 0, len(counts))
	for tag, n := range counts {
		rows = append(rows, TagCount{Tag: tag, Domains: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Domains != rows[j].Domains {
			return rows[i].Domains > rows[j].Domains
		}
		return rows[i].Tag < rows[j].Tag
	})
	cum := 0
	var out []TagCount
	for _, r := range rows {
		cum += r.Domains
		r.CumPct = 100 * float64(cum) / float64(total)
		out = append(out, r)
		if r.CumPct >= cutoffPct {
			break
		}
	}
	return out
}
