package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/reverse"
	"repro/internal/urlx"
	"repro/internal/wayback"
)

// testSubstrate serves a small hosting world, a reverse index and a
// wayback archive over live HTTP and returns a client for them.
func testSubstrate(t *testing.T) (*HTTPClient, *hosting.World) {
	t.Helper()
	w := hosting.NewWorld()
	img := w.AddSite(hosting.SiteConfig{Domain: "imgur.com", Kind: urlx.KindImageSharing})
	img.PutImage("live", imagex.GenModel(1, 0, imagex.PoseNude, 32))
	cloud := w.AddSite(hosting.SiteConfig{Domain: "mediafire.com", Kind: urlx.KindCloudStorage})
	if err := cloud.PutPack("pack1", []*imagex.Image{
		imagex.GenModel(10, 0, imagex.PoseNude, 32),
		imagex.GenModel(10, 1, imagex.PoseDressed, 32),
	}); err != nil {
		t.Fatal(err)
	}
	w.AddSite(hosting.SiteConfig{Domain: "oron.com", Kind: urlx.KindCloudStorage, Defunct: true})

	ix := reverse.NewIndex(0)
	ix.AddImage(imagex.GenModel(1, 0, imagex.PoseNude, 32), reverse.Record{
		URL: "https://origin.example/m1", Domain: "origin.example",
		CrawlDate: time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
	})
	arch := wayback.NewArchive()
	arch.Add("https://origin.example/m1", time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))

	hostSrv := httptest.NewServer(w)
	t.Cleanup(hostSrv.Close)
	revSrv := httptest.NewServer(reverse.Handler(ix))
	t.Cleanup(revSrv.Close)
	waySrv := httptest.NewServer(wayback.Handler(arch))
	t.Cleanup(waySrv.Close)

	hc := NewHTTPClient(HTTPConfig{
		HostingURL: hostSrv.URL,
		ReverseURL: revSrv.URL,
		WaybackURL: waySrv.URL,
		Crawl:      Config{Concurrency: 4},
	})
	t.Cleanup(hc.Close)
	return hc, w
}

func TestHTTPClientCrawl(t *testing.T) {
	hc, _ := testSubstrate(t)
	res := hc.Crawl(context.Background(), []Task{
		task("https://imgur.com/live", urlx.KindImageSharing),
		task("https://mediafire.com/pack1", urlx.KindCloudStorage),
		task("https://oron.com/x", urlx.KindCloudStorage),
	})
	if res[0].Outcome != OutcomeOK || len(res[0].Images) != 1 {
		t.Errorf("image fetch: outcome %v, %d images", res[0].Outcome, len(res[0].Images))
	}
	if res[1].Outcome != OutcomeOK || !res[1].IsPack || len(res[1].Images) != 2 {
		t.Errorf("pack fetch: outcome %v, pack=%v, %d images", res[1].Outcome, res[1].IsPack, len(res[1].Images))
	}
	if res[2].Outcome != OutcomeSiteDown {
		t.Errorf("defunct site: outcome %v", res[2].Outcome)
	}
}

func TestHTTPClientSearchAndWayback(t *testing.T) {
	hc, _ := testSubstrate(t)
	ctx := context.Background()
	im := imagex.GenModel(1, 0, imagex.PoseNude, 32)

	byImage, err := hc.SearchImage(ctx, im)
	if err != nil || len(byImage) != 1 {
		t.Fatalf("SearchImage: %d matches, err %v", len(byImage), err)
	}
	byHash, err := hc.SearchHash(ctx, imagex.Hash128Of(im))
	if err != nil || len(byHash) != 1 {
		t.Fatalf("SearchHash: %d matches, err %v", len(byHash), err)
	}
	if byHash[0].URL != byImage[0].URL || byHash[0].Distance != byImage[0].Distance {
		t.Error("hash search and image search disagree")
	}

	seen, err := hc.SeenBefore(ctx, byImage[0].URL, time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil || !seen {
		t.Errorf("SeenBefore(2016) = %v, err %v; want true", seen, err)
	}
	seen, err = hc.SeenBefore(ctx, byImage[0].URL, time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil || seen {
		t.Errorf("SeenBefore(2015) = %v, err %v; want false", seen, err)
	}
}

func TestHTTPClientVisitKind(t *testing.T) {
	hc, _ := testSubstrate(t)
	ctx := context.Background()
	if k, ok, err := hc.VisitKind(ctx, "imgur.com"); !ok || k != urlx.KindImageSharing || err != nil {
		t.Errorf("imgur.com: kind %v ok %v err %v", k, ok, err)
	}
	if k, ok, err := hc.VisitKind(ctx, "mediafire.com"); !ok || k != urlx.KindCloudStorage || err != nil {
		t.Errorf("mediafire.com: kind %v ok %v err %v", k, ok, err)
	}
	// The substrate's authoritative negatives are not errors.
	if _, ok, err := hc.VisitKind(ctx, "oron.com"); ok || err != nil {
		t.Errorf("defunct site: ok %v err %v", ok, err)
	}
	if _, ok, err := hc.VisitKind(ctx, "nosuch.example"); ok || err != nil {
		t.Errorf("unregistered domain: ok %v err %v", ok, err)
	}
}

// TestHTTPClientVisitKindSurfacesFailures: statuses outside the
// substrate's vocabulary are lookup failures, not authoritative
// negatives — after the bounded retries they surface as errors.
func TestHTTPClientVisitKindSurfacesFailures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	defer srv.Close()
	hc := NewHTTPClient(HTTPConfig{
		HostingURL:  srv.URL,
		MaxRetries:  1,
		BackoffBase: time.Millisecond,
	})
	defer hc.Close()
	if _, ok, err := hc.VisitKind(context.Background(), "weird.example"); ok || err == nil {
		t.Errorf("unexpected status: ok %v err %v, want a surfaced error", ok, err)
	}
}

// TestHTTPClientRetries pins the bounded-retry behaviour: a server
// that fails twice at the transport level then succeeds is absorbed by
// the deterministic backoff schedule.
func TestHTTPClientRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			// Hijack and slam the connection to force a transport error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		w.Header().Set("Content-Type", hosting.ContentTypeSIMG)
		w.Write(imagex.GenModel(1, 0, imagex.PoseNude, 24).Encode())
	}))
	defer srv.Close()

	hc := NewHTTPClient(HTTPConfig{
		HostingURL: srv.URL,
		Crawl:      Config{Concurrency: 1, MaxRetries: 2, BackoffBase: time.Millisecond},
	})
	defer hc.Close()
	res := hc.Crawl(context.Background(), []Task{task("https://imgur.com/x", urlx.KindImageSharing)})
	if res[0].Outcome != OutcomeOK {
		t.Fatalf("retry did not recover: outcome %v err %v", res[0].Outcome, res[0].Err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

func TestHTTPClientRequestTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	// Unblock the handler before srv.Close waits on it (defers are LIFO).
	defer srv.Close()
	defer close(block)

	hc := NewHTTPClient(HTTPConfig{
		HostingURL:     srv.URL,
		RequestTimeout: 50 * time.Millisecond,
		Crawl:          Config{Concurrency: 1, MaxRetries: -1, BackoffBase: time.Millisecond},
	})
	defer hc.Close()
	start := time.Now()
	res := hc.Crawl(context.Background(), []Task{task("https://imgur.com/slow", urlx.KindImageSharing)})
	if res[0].Outcome != OutcomeError {
		t.Fatalf("outcome %v, want error", res[0].Outcome)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

// TestHTTPClientPerHostRateLimit pins the per-virtual-host spacing: 3
// requests to one domain with a 30ms interval cannot complete in under
// ~60ms, while separate domains are not throttled against each other.
func TestHTTPClientPerHostRateLimit(t *testing.T) {
	w := hosting.NewWorld()
	for _, d := range []string{"a.com", "b.com"} {
		site := w.AddSite(hosting.SiteConfig{Domain: d, Kind: urlx.KindImageSharing})
		site.PutImage("x", imagex.GenModel(1, 0, imagex.PoseNude, 24))
	}
	srv := httptest.NewServer(w)
	defer srv.Close()

	const interval = 30 * time.Millisecond
	hc := NewHTTPClient(HTTPConfig{
		HostingURL: srv.URL,
		Crawl:      Config{Concurrency: 4, PerHostDelay: interval},
	})
	defer hc.Close()

	start := time.Now()
	res := hc.Crawl(context.Background(), []Task{
		task("https://a.com/x", urlx.KindImageSharing),
		task("https://a.com/x", urlx.KindImageSharing),
		task("https://a.com/x", urlx.KindImageSharing),
	})
	elapsed := time.Since(start)
	for _, r := range res {
		if r.Outcome != OutcomeOK {
			t.Fatalf("outcome %v err %v", r.Outcome, r.Err)
		}
	}
	if elapsed < 2*interval {
		t.Errorf("3 same-host requests finished in %v, want >= %v", elapsed, 2*interval)
	}
}
