package imagex

import (
	"image"
	"image/color"
	"image/png"
	"io"
)

// PNG interop: SIMG rasters can be exported as grayscale PNGs (for
// human inspection of non-sensitive images such as proof screenshots
// and error banners) and PNGs can be imported for hashing.

// WritePNG encodes the image as an 8-bit grayscale PNG.
func (im *Image) WritePNG(w io.Writer) error {
	g := image.NewGray(image.Rect(0, 0, im.W, im.H))
	copy(g.Pix, im.Pix)
	return png.Encode(w, g)
}

// ReadPNG decodes a PNG (any colour model) into a grayscale Image
// using the standard luma weights.
func ReadPNG(r io.Reader) (*Image, error) {
	src, err := png.Decode(r)
	if err != nil {
		return nil, err
	}
	b := src.Bounds()
	out := New(b.Dx(), b.Dy(), 0)
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			c := color.GrayModel.Convert(src.At(b.Min.X+x, b.Min.Y+y)).(color.Gray)
			out.Set(x, y, c.Y)
		}
	}
	return out, nil
}
