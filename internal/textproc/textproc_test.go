package textproc

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	got := Tokenize("Selling PACK!!! pm-me, thanks.")
	want := []string{"selling", "pack", "pm", "me", "thanks"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v want %v", got, want)
	}
}

func TestTokenizeDropsNumberedTokens(t *testing.T) {
	got := Tokenize("got 50 pics v2 pack")
	want := []string{"got", "pics", "pack"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ... 123 !!"); len(got) != 0 {
		t.Fatalf("Tokenize = %v want empty", got)
	}
}

func TestTokenizeFiltered(t *testing.T) {
	got := TokenizeFiltered("I am selling a pack of the pics")
	want := []string{"selling", "pack", "pics"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TokenizeFiltered = %v want %v", got, want)
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("the") || IsStopWord("pack") {
		t.Fatal("stop word classification wrong")
	}
}

func TestVocabFitAndIndex(t *testing.T) {
	v := NewVocab()
	v.Fit([][]string{
		{"selling", "pack", "pack"},
		{"buying", "pack"},
	})
	if v.Size() != 3 {
		t.Fatalf("Size = %d", v.Size())
	}
	if v.Index("pack") < 0 || v.Index("nonexistent") != -1 {
		t.Fatal("Index lookup wrong")
	}
	// "pack" occurs in 2 docs, "selling" in 1.
	if v.DocFreq("pack") != 2 || v.DocFreq("selling") != 1 {
		t.Fatalf("DocFreq pack=%d selling=%d", v.DocFreq("pack"), v.DocFreq("selling"))
	}
}

func TestIDFOrdering(t *testing.T) {
	v := NewVocab()
	v.Fit([][]string{
		{"common", "rare"},
		{"common"},
		{"common"},
	})
	if v.IDF(v.Index("rare")) <= v.IDF(v.Index("common")) {
		t.Fatal("rare term should have higher IDF than common term")
	}
}

func TestCountVector(t *testing.T) {
	v := NewVocab()
	v.Fit([][]string{{"a", "b", "c"}})
	vec := v.CountVector([]string{"b", "b", "c", "zzz"})
	if len(vec.Idx) != 2 {
		t.Fatalf("vec = %+v", vec)
	}
	// Indices must be ascending and values match counts.
	if !sort.IntsAreSorted(vec.Idx) {
		t.Fatal("sparse indices not sorted")
	}
	bIdx := v.Index("b")
	for k, i := range vec.Idx {
		if i == bIdx && vec.Val[k] != 2 {
			t.Fatalf("count for b = %v", vec.Val[k])
		}
	}
}

func TestTFIDFVectorNormalised(t *testing.T) {
	v := NewVocab()
	v.Fit([][]string{{"a", "b"}, {"a", "c"}, {"a"}})
	vec := v.TFIDFVector([]string{"a", "b", "b"})
	if n := vec.L2Norm(); math.Abs(n-1) > 1e-9 {
		t.Fatalf("TF-IDF norm = %v, want 1", n)
	}
}

func TestTFIDFEmptyDoc(t *testing.T) {
	v := NewVocab()
	v.Fit([][]string{{"a"}})
	vec := v.TFIDFVector([]string{"unknown"})
	if len(vec.Idx) != 0 || vec.L2Norm() != 0 {
		t.Fatalf("vec = %+v", vec)
	}
}

func TestSparseDot(t *testing.T) {
	vec := SparseVec{Idx: []int{0, 2, 5}, Val: []float64{1, 2, 3}}
	dense := []float64{10, 0, 1, 0, 0, 2}
	if got := vec.Dot(dense); got != 10+2+6 {
		t.Fatalf("Dot = %v", got)
	}
	// Out-of-range indices contribute zero.
	short := []float64{1}
	if got := vec.Dot(short); got != 1 {
		t.Fatalf("Dot with short dense = %v", got)
	}
}

func TestSparseScale(t *testing.T) {
	vec := SparseVec{Idx: []int{0}, Val: []float64{4}}
	vec.Scale(0.25)
	if vec.Val[0] != 1 {
		t.Fatalf("Scale result %v", vec.Val)
	}
}

func TestTopTerms(t *testing.T) {
	v := NewVocab()
	v.Fit([][]string{
		{"pack", "selling"},
		{"pack", "buying"},
		{"pack"},
	})
	top := v.TopTerms(2)
	if top[0] != "pack" {
		t.Fatalf("TopTerms = %v", top)
	}
	if len(v.TopTerms(100)) != 3 {
		t.Fatal("TopTerms should clamp to vocab size")
	}
}

func TestCountOccurrences(t *testing.T) {
	n := CountOccurrences("WTS: Unsaturated Pack of pics", []string{"wts", "pack", "video"})
	if n != 2 {
		t.Fatalf("CountOccurrences = %d", n)
	}
}

func TestCountRune(t *testing.T) {
	if CountRune("how? why? when", '?') != 2 {
		t.Fatal("CountRune wrong")
	}
}

// Property: tokens are always lowercase and non-empty.
func TestQuickTokenizeInvariants(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TF-IDF vectors have unit norm (or zero for empty docs) and
// ascending sparse indices.
func TestQuickTFIDFInvariants(t *testing.T) {
	v := NewVocab()
	v.Fit([][]string{
		{"alpha", "beta", "gamma"},
		{"alpha", "delta"},
		{"beta", "beta", "epsilon"},
	})
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "junk"}
	f := func(picks []uint8) bool {
		doc := make([]string, 0, len(picks))
		for _, p := range picks {
			doc = append(doc, words[int(p)%len(words)])
		}
		vec := v.TFIDFVector(doc)
		if !sort.IntsAreSorted(vec.Idx) {
			return false
		}
		n := vec.L2Norm()
		return n == 0 || math.Abs(n-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := "WTS unsaturated pack: 120 pics + 3 vids, verification templates included, PayPal or AGC accepted!"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Tokenize(text)
	}
}

func BenchmarkTFIDFVector(b *testing.B) {
	v := NewVocab()
	docs := make([][]string, 200)
	for i := range docs {
		docs[i] = Tokenize("selling unsaturated pack pics vids paypal agc trade proof earnings")
	}
	v.Fit(docs)
	doc := Tokenize("selling pack with proof of earnings")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.TFIDFVector(doc)
	}
}
