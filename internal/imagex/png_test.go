package imagex

import (
	"bytes"
	"strings"
	"testing"
)

func TestPNGRoundtrip(t *testing.T) {
	im := GenScreenshot(3, []string{"PAYPAL BALANCE", "$120.50"}, 120, 30)
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H {
		t.Fatalf("shape changed: %dx%d -> %dx%d", im.W, im.H, back.W, back.H)
	}
	if !bytes.Equal(back.Pix, im.Pix) {
		t.Fatal("grayscale PNG roundtrip not lossless")
	}
}

func TestPNGHashStable(t *testing.T) {
	// Hashing a PNG-roundtripped image must be identical — PNG is
	// lossless, so the perceptual pipeline is transport-agnostic.
	im := GenModel(9, 0, PoseDressed, 48)
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Hash128Of(im) != Hash128Of(back) {
		t.Fatal("hash changed through PNG")
	}
}

func TestReadPNGRejectsGarbage(t *testing.T) {
	if _, err := ReadPNG(strings.NewReader("not a png")); err == nil {
		t.Fatal("garbage accepted")
	}
}
