package imagex

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestNewAndAccessors(t *testing.T) {
	im := New(4, 3, 100)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 12 {
		t.Fatalf("New shape wrong: %+v", im)
	}
	if im.At(0, 0) != 100 || im.At(3, 2) != 100 {
		t.Fatal("base fill wrong")
	}
	if im.At(-1, 0) != 0 || im.At(4, 0) != 0 {
		t.Fatal("out-of-bounds At should return 0")
	}
	im.Set(1, 1, 7)
	if im.At(1, 1) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	im.Set(99, 99, 1) // must not panic
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,0) did not panic")
		}
	}()
	New(0, 0, 0)
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2, 10)
	b := a.Clone()
	b.Set(0, 0, 200)
	if a.At(0, 0) != 10 {
		t.Fatal("Clone shares pixel storage")
	}
}

func TestSkinFraction(t *testing.T) {
	im := New(10, 10, 0)
	if im.SkinFraction() != 0 {
		t.Fatal("black image has skin")
	}
	im.FillRect(randx.New(1), 0, 0, 10, 5, (SkinLo+SkinHi)/2, 0)
	got := im.SkinFraction()
	if got != 0.5 {
		t.Fatalf("SkinFraction = %v want 0.5", got)
	}
}

func TestSkinCoherenceContiguousVsScattered(t *testing.T) {
	skin := byte((SkinLo + SkinHi) / 2)
	contiguous := New(20, 20, 0)
	contiguous.FillRect(randx.New(1), 0, 0, 20, 10, skin, 0)
	scattered := New(20, 20, 0)
	for i := 0; i < 200; i += 2 {
		scattered.Pix[i] = skin
	}
	if contiguous.SkinCoherence() <= scattered.SkinCoherence() {
		t.Fatalf("coherence: contiguous %.3f <= scattered %.3f",
			contiguous.SkinCoherence(), scattered.SkinCoherence())
	}
}

func TestDrawTextAndWidth(t *testing.T) {
	im := New(60, 12, 255)
	end := im.DrawText(0, 0, 1, "HI")
	if end != TextWidth("HI", 1) {
		t.Fatalf("cursor %d want %d", end, TextWidth("HI", 1))
	}
	// Ink must appear where glyphs were drawn.
	found := false
	for _, p := range im.Pix {
		if p == Ink {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("DrawText drew nothing")
	}
}

func TestGlyphCoverage(t *testing.T) {
	for _, r := range "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789$.,:-/()@#+=" {
		if _, ok := Glyph(r); !ok {
			t.Errorf("font missing %q", r)
		}
	}
	if _, ok := Glyph('a'); !ok {
		t.Error("lowercase not mapped to uppercase")
	}
	if _, ok := Glyph('~'); ok {
		t.Error("unexpected glyph for ~")
	}
	for _, r := range GlyphRunes() {
		g, ok := Glyph(r)
		if !ok {
			t.Fatalf("GlyphRunes returned unknown rune %q", r)
		}
		for _, row := range g {
			if len(row) != GlyphW {
				t.Fatalf("glyph %q row width %d", r, len(row))
			}
		}
	}
}

func TestMirrorInvolution(t *testing.T) {
	im := GenModel(42, 0, PoseNude, 32)
	back := im.Mirror().Mirror()
	if !bytes.Equal(im.Pix, back.Pix) {
		t.Fatal("Mirror twice != identity")
	}
}

func TestMirrorChangesHash(t *testing.T) {
	im := GenModel(42, 0, PoseNude, 48)
	d := DHash(im).Distance(DHash(im.Mirror()))
	if d < 10 {
		t.Fatalf("mirror changed only %d hash bits; should defeat matching", d)
	}
}

func TestRecompressKeepsHashClose(t *testing.T) {
	im := GenModel(7, 1, PosePartial, 48)
	re := im.Recompress(32)
	d := DHash(im).Distance(DHash(re))
	if d > 8 {
		t.Fatalf("recompression moved hash by %d bits; should be robust", d)
	}
}

func TestWatermarkSmallHashShift(t *testing.T) {
	im := GenModel(9, 2, PoseNude, 48)
	wm := im.Watermark("HF.NET")
	d := DHash(im).Distance(DHash(wm))
	if d > 16 {
		t.Fatalf("watermark moved hash by %d bits", d)
	}
	if bytes.Equal(im.Pix, wm.Pix) {
		t.Fatal("watermark drew nothing")
	}
}

func TestShadeBounds(t *testing.T) {
	im := GenModel(5, 0, PoseNude, 32)
	_ = im.Shade(-1) // clamps
	s := im.Shade(0.5)
	if s.At(0, im.H-1) >= im.At(0, im.H-1) && im.At(0, im.H-1) > 2 {
		t.Fatal("Shade did not darken bottom")
	}
}

func TestResize(t *testing.T) {
	im := New(10, 10, 0)
	im.FillRect(randx.New(1), 0, 0, 10, 5, 200, 0)
	small := im.Resize(2, 2)
	if small.W != 2 || small.H != 2 {
		t.Fatal("resize shape wrong")
	}
	if small.At(0, 0) != 200 || small.At(0, 1) != 0 {
		t.Fatalf("resize values: top %d bottom %d", small.At(0, 0), small.At(0, 1))
	}
}

func TestDHashDeterministic(t *testing.T) {
	a := GenModel(3, 0, PoseNude, 48)
	b := GenModel(3, 0, PoseNude, 48)
	if DHash(a) != DHash(b) {
		t.Fatal("identical scenes hash differently")
	}
	c := GenModel(4, 0, PoseNude, 48)
	if DHash(a) == DHash(c) {
		t.Fatal("different models collide (possible but indicates degenerate hashing)")
	}
}

func TestAHashDifferentFromDHash(t *testing.T) {
	im := GenModel(11, 0, PoseDressed, 48)
	if AHash(im) == DHash(im) {
		t.Log("aHash == dHash by coincidence — acceptable but unusual")
	}
	if AHash(im) != AHash(im.Clone()) {
		t.Fatal("AHash not deterministic")
	}
}

func TestHashString(t *testing.T) {
	if got := Hash(0xdead).String(); got != "000000000000dead" {
		t.Fatalf("Hash.String = %q", got)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	im := GenModel(21, 3, PosePartial, 40)
	back, err := Decode(im.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H || !bytes.Equal(back.Pix, im.Pix) {
		t.Fatal("SIMG roundtrip corrupted image")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("hello"),
		[]byte("SIMG"),
		append([]byte("SIMG\x02"), 0, 1, 0, 1, 0), // bad version
		append([]byte("SIMG\x01"), 0, 2, 0, 2, 0), // truncated pixels
		append([]byte("SIMG\x01"), 0, 0, 0, 1),    // zero width
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestPackZipRoundtrip(t *testing.T) {
	imgs := []*Image{
		GenModel(1, 0, PoseDressed, 32),
		GenModel(1, 1, PoseNude, 32),
		GenScreenshot(9, []string{"PAYPAL BALANCE", "$120.50"}, 80, 40),
	}
	data, err := EncodePackZip(imgs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePackZip(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(imgs) {
		t.Fatalf("got %d images", len(back))
	}
	for i := range imgs {
		if !bytes.Equal(back[i].Pix, imgs[i].Pix) {
			t.Fatalf("image %d corrupted in zip roundtrip", i)
		}
	}
}

func TestDecodePackZipRejectsGarbage(t *testing.T) {
	if _, err := DecodePackZip([]byte("not a zip")); err == nil {
		t.Fatal("garbage zip accepted")
	}
}

func TestGenModelPoseSkinOrdering(t *testing.T) {
	// Averaged over shoots, nude > partial > dressed in skin fraction.
	avg := func(pose Pose) float64 {
		sum := 0.0
		const n = 40
		for i := 0; i < n; i++ {
			sum += GenModel(uint64(1000+i), 0, pose, 48).SkinFraction()
		}
		return sum / n
	}
	nude, partial, dressed := avg(PoseNude), avg(PosePartial), avg(PoseDressed)
	if !(nude > partial && partial > dressed) {
		t.Fatalf("skin fractions not ordered: nude %.3f partial %.3f dressed %.3f",
			nude, partial, dressed)
	}
	if nude < 0.3 {
		t.Fatalf("nude skin fraction %.3f too low for NSFW banding", nude)
	}
}

func TestGenScreenshotLowSkin(t *testing.T) {
	im := GenScreenshot(5, []string{"PAYPAL: $500.00 RECEIVED", "FROM: CUSTOMER"}, 120, 60)
	if f := im.SkinFraction(); f > 0.02 {
		t.Fatalf("screenshot skin fraction %.4f too high", f)
	}
}

func TestGenLandscapeSkinLike(t *testing.T) {
	plain := GenLandscape(8, 48, false)
	sandy := GenLandscape(8, 48, true)
	if sandy.SkinFraction() <= plain.SkinFraction() {
		t.Fatalf("skinLike landscape %.3f <= plain %.3f",
			sandy.SkinFraction(), plain.SkinFraction())
	}
}

func TestGenErrorBannerHasText(t *testing.T) {
	im := GenErrorBanner(1, "IMAGE REMOVED", 120, 40)
	found := false
	for _, p := range im.Pix {
		if p == Ink {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("error banner has no text ink")
	}
}

func TestGenThumbnailGridMixesSignals(t *testing.T) {
	im := GenThumbnailGrid(3, 77, 100, 60)
	if im.SkinFraction() == 0 {
		t.Fatal("thumbnail grid has no skin pixels")
	}
	ink := false
	for _, p := range im.Pix {
		if p == Ink {
			ink = true
			break
		}
	}
	if !ink {
		t.Fatal("thumbnail grid has no text")
	}
}

func TestPoseString(t *testing.T) {
	if PoseNude.String() != "nude" || PoseDressed.String() != "dressed" ||
		PosePartial.String() != "partial" || Pose(99).String() != "unknown" {
		t.Fatal("Pose.String wrong")
	}
}

// Property: SIMG roundtrip is lossless for arbitrary small images.
func TestQuickSIMGRoundtrip(t *testing.T) {
	f := func(seed uint64, w8, h8 uint8) bool {
		w := int(w8%32) + 1
		h := int(h8%32) + 1
		rng := randx.New(seed)
		im := New(w, h, 0)
		for i := range im.Pix {
			im.Pix[i] = byte(rng.Uint32())
		}
		back, err := Decode(im.Encode())
		return err == nil && back.W == w && back.H == h && bytes.Equal(back.Pix, im.Pix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hash distance is a metric-ish: symmetric, zero on self.
func TestQuickHashDistance(t *testing.T) {
	f := func(a, b uint64) bool {
		ha, hb := Hash(a), Hash(b)
		return ha.Distance(ha) == 0 &&
			ha.Distance(hb) == hb.Distance(ha) &&
			ha.Distance(hb) <= 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GenModel(uint64(i), 0, PoseNude, 48)
	}
}

func BenchmarkDHash(b *testing.B) {
	im := GenModel(1, 0, PoseNude, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DHash(im)
	}
}

func BenchmarkPackZip(b *testing.B) {
	imgs := make([]*Image, 20)
	for i := range imgs {
		imgs[i] = GenModel(uint64(i), i, PoseNude, 48)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := EncodePackZip(imgs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodePackZip(data); err != nil {
			b.Fatal(err)
		}
	}
}
