package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/artefact"
	"repro/internal/synth"
)

func artefactTestOptions() Options {
	return Options{
		Synth:          synth.Config{Seed: 7, Scale: 0.02, ImageSize: 48},
		AnnotationSize: 400,
		Workers:        4,
	}
}

// TestComputeSelective pins the selectivity acceptance criterion via
// the node-execution ledger: computing only Table 5 evaluates exactly
// the provenance closure — the earnings, actor and exchange nodes are
// never invoked.
func TestComputeSelective(t *testing.T) {
	store := artefact.NewStore(0)
	s := NewStudy(artefactTestOptions())
	defer s.Close()
	s.UseMemo(store)

	res, err := s.Compute(context.Background(), "table5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance.Packs.Total == 0 {
		t.Fatal("provenance not computed")
	}
	// The closure fields ride along...
	if len(res.EWhoringThreads) == 0 || res.CrawlStats.Tasks == 0 {
		t.Error("dependency artefacts missing from partial Results")
	}
	// ...but nothing outside the closure may have run.
	for _, name := range []string{ArtefactEarnings, ArtefactActors, ArtefactExchange, ArtefactTable1} {
		if n := store.ComputeCount(name); n != 0 {
			t.Errorf("node %s computed %d times for a table5-only request", name, n)
		}
	}
	if res.Earnings.Summary.Proofs != 0 || res.Actors.Profiles != nil {
		t.Error("partial Results carries artefacts outside the requested closure")
	}
	for _, name := range []string{ArtefactSelect, ArtefactClassifier, ArtefactLinks, ArtefactCrawl, ArtefactPhotoDNA, ArtefactNSFV, ArtefactProvenance} {
		if n := store.ComputeCount(name); n != 1 {
			t.Errorf("node %s computed %d times, want 1", name, n)
		}
	}
}

// TestComputeMatchesRun pins partial evaluation against the full run:
// every artefact a selective Compute returns is bit-identical to the
// same field of a full Run with the same options.
func TestComputeMatchesRun(t *testing.T) {
	ctx := context.Background()
	full, err := NewStudy(artefactTestOptions()).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudy(artefactTestOptions())
	defer s.Close()
	partial, err := s.Compute(ctx, "table5", "figure2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(partial.Provenance, full.Provenance) {
		t.Error("partial Provenance differs from the full run")
	}
	if !reflect.DeepEqual(partial.Earnings, full.Earnings) {
		t.Error("partial Earnings differs from the full run")
	}
	if !reflect.DeepEqual(partial.CrawlStats, full.CrawlStats) {
		t.Error("partial CrawlStats differs from the full run")
	}
	// figure2+table5 needs neither the actor analysis nor Table 1.
	if partial.Actors.Profiles != nil || partial.Table1 != nil {
		t.Error("partial Results computed artefacts outside the selection")
	}
	if len(s.PipelineStats()) == 0 {
		t.Error("Compute recorded no node stages")
	}
}

// TestMemoSharedAcrossStudies pins cross-study reuse: two studies
// with the same semantic options sharing one memo store compute every
// node once, and the second study's Results are bit-identical.
func TestMemoSharedAcrossStudies(t *testing.T) {
	ctx := context.Background()
	store := artefact.NewStore(0)

	s1 := NewStudy(artefactTestOptions())
	s1.UseMemo(store)
	want, err := s1.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before := store.TotalComputes()

	// Different worker counts must share the memo: worker knobs are
	// excluded from node keys because they never move a result.
	opts := artefactTestOptions()
	opts.Workers = 2
	opts.CrawlConcurrency = 3
	s2 := NewStudy(opts)
	s2.UseMemo(store)
	got, err := s2.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("memoized run differs from the computing run")
	}
	if after := store.TotalComputes(); after != before {
		t.Errorf("warm run computed %d extra nodes, want 0", after-before)
	}
	// The hotline replay must survive memoization: both studies end
	// with identical report sequences.
	if !reflect.DeepEqual(s1.Hotline.Reports(), s2.Hotline.Reports()) {
		t.Error("hotline reports differ between computing and memoized runs")
	}
}

// TestComputeIdempotent pins repeat-Compute semantics on one study:
// the second call is answered entirely from the study's private memo
// — bit-identical Results, and in particular the same SnowballAdded
// (the snowball expansion, a side-effecting stage, runs exactly once).
func TestComputeIdempotent(t *testing.T) {
	ctx := context.Background()
	s := NewStudy(artefactTestOptions())
	defer s.Close()
	first, err := s.Compute(ctx, "crawl")
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Compute(ctx, "crawl")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("second Compute on the same study differs from the first")
	}
	if first.Links.SnowballAdded == 0 || second.Links.SnowballAdded != first.Links.SnowballAdded {
		t.Errorf("SnowballAdded drifted across Computes: %d then %d",
			first.Links.SnowballAdded, second.Links.SnowballAdded)
	}
}

// TestResolveArtefacts covers alias expansion and rejection.
func TestResolveArtefacts(t *testing.T) {
	all, err := ResolveArtefacts()
	if err != nil || len(all) != len(Artefacts()) {
		t.Fatalf("empty resolve = %v, %v", all, err)
	}
	// Names normalize: mixed case and stray whitespace resolve like
	// their canonical forms (the CLI -only path feeds raw user input).
	got, err := ResolveArtefacts("Figure4", " table5 ", "provenance")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{ArtefactProvenance, ArtefactActors}) {
		t.Fatalf("resolve = %v", got)
	}
	if _, err := ResolveArtefacts("table99"); err == nil {
		t.Fatal("unknown artefact accepted")
	}
}
