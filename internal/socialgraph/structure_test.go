package socialgraph

import (
	"testing"

	"repro/internal/forum"
	"repro/internal/synth"
)

func TestDegrees(t *testing.T) {
	g := NewGraph()
	g.AddResponse(1, 2)
	g.AddResponse(1, 2)
	g.AddResponse(3, 2)
	g.AddResponse(2, 1)
	d := g.Degrees()
	if d[1].Out != 1 || d[1].OutW != 2 || d[1].In != 1 || d[1].InW != 1 {
		t.Fatalf("degree(1) = %+v", d[1])
	}
	if d[2].In != 2 || d[2].InW != 3 {
		t.Fatalf("degree(2) = %+v", d[2])
	}
	if d[3].In != 0 || d[3].Out != 1 {
		t.Fatalf("degree(3) = %+v", d[3])
	}
}

func TestDegreesIncludeIsolated(t *testing.T) {
	g := NewGraph()
	g.AddResponse(5, 5) // self-loop: node created, no edge
	d := g.Degrees()
	if len(d) != 1 {
		t.Fatalf("degrees = %v", d)
	}
	if d[5].In != 0 || d[5].Out != 0 {
		t.Fatalf("isolated degree = %+v", d[5])
	}
}

func TestComponents(t *testing.T) {
	g := NewGraph()
	// Component A: 1-2-3; component B: 10-11; isolated: 20.
	g.AddResponse(1, 2)
	g.AddResponse(3, 2)
	g.AddResponse(10, 11)
	g.AddResponse(20, 20)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 1 || comps[0][2] != 3 {
		t.Fatalf("giant = %v", comps[0])
	}
	if len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("sizes = %d/%d", len(comps[1]), len(comps[2]))
	}
	frac := g.GiantComponentFraction()
	if frac != 0.5 { // 3 of 6 actors
		t.Fatalf("giant fraction = %v", frac)
	}
}

func TestComponentsEmpty(t *testing.T) {
	g := NewGraph()
	if g.Components() != nil {
		t.Fatal("empty graph has components")
	}
	if g.GiantComponentFraction() != 0 {
		t.Fatal("empty graph giant fraction nonzero")
	}
}

func TestGiantComponentOnWorld(t *testing.T) {
	// The eWhoring interaction network has a giant component: most
	// actors reply in shared threads.
	w := synth.Generate(synth.Config{Seed: 13, Scale: 0.01, SkipImages: true})
	var ew []forum.ThreadID
	for _, ids := range w.EWhoring {
		ew = append(ew, ids...)
	}
	g := Build(w.Store, ew)
	if g.NumActors() < 50 {
		t.Skipf("world too small: %d actors", g.NumActors())
	}
	frac := g.GiantComponentFraction()
	if frac < 0.5 {
		t.Fatalf("giant component %.2f of graph; interaction network fragmented", frac)
	}
}

func BenchmarkComponents(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 5000; i++ {
		g.AddResponse(forum.ActorID(i%800+1), forum.ActorID((i*13)%800+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Components()
	}
}
