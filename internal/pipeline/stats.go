package pipeline

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stats collects per-stage metrics for one pipeline run. All methods
// are safe for concurrent use; a nil *Stats is a valid no-op sink, so
// stages can run un-instrumented.
type Stats struct {
	mu     sync.Mutex
	stages []*StageStats
}

// NewStats returns an empty metrics collector.
func NewStats() *Stats { return &Stats{} }

// Stage registers a new stage and starts its wall clock. A nil *Stats
// returns a nil *StageStats, whose methods are all no-ops.
func (s *Stats) Stage(name string, workers int) *StageStats {
	if s == nil {
		return nil
	}
	st := &StageStats{name: name, workers: workers, started: time.Now()}
	s.mu.Lock()
	s.stages = append(s.stages, st)
	s.mu.Unlock()
	return st
}

// Record appends an already-completed stage's counters — for engines
// that time work themselves (the artefact graph's per-node timings)
// rather than streaming items through a stage.
func (s *Stats) Record(name string, workers int, in, out int64, wall, busy time.Duration) {
	if s == nil {
		return
	}
	st := &StageStats{name: name, workers: workers, started: time.Now().Add(-wall)}
	st.in.Store(in)
	st.out.Store(out)
	st.busy.Store(int64(busy))
	st.wall.Store(int64(wall))
	s.mu.Lock()
	s.stages = append(s.stages, st)
	s.mu.Unlock()
}

// Time runs fn as a single-worker stage, recording its wall time as
// both wall and busy time with one item in and out.
func (s *Stats) Time(name string, fn func()) {
	st := s.Stage(name, 1)
	st.AddIn(1)
	start := time.Now()
	fn()
	st.AddBusy(time.Since(start))
	st.AddOut(1)
	st.Close()
}

// StageStats accumulates one stage's counters. The zero of every
// counter is valid; a nil receiver is a no-op.
type StageStats struct {
	name    string
	workers int
	started time.Time

	in   atomic.Int64
	out  atomic.Int64
	busy atomic.Int64 // nanoseconds spent inside stage functions
	wall atomic.Int64 // nanoseconds from Stage() to Close()
}

// AddIn records n items entering the stage.
func (st *StageStats) AddIn(n int64) {
	if st != nil {
		st.in.Add(n)
	}
}

// AddOut records n items leaving the stage.
func (st *StageStats) AddOut(n int64) {
	if st != nil {
		st.out.Add(n)
	}
}

// AddBusy records time spent doing stage work.
func (st *StageStats) AddBusy(d time.Duration) {
	if st != nil {
		st.busy.Add(int64(d))
	}
}

// Close stops the stage's wall clock. Later calls keep the first value.
func (st *StageStats) Close() {
	if st != nil {
		st.wall.CompareAndSwap(0, int64(time.Since(st.started)))
	}
}

// StageSnapshot is a point-in-time copy of one stage's counters.
type StageSnapshot struct {
	// Name labels the stage.
	Name string
	// Workers is the stage's worker-pool size.
	Workers int
	// In and Out count items that entered and left the stage.
	In, Out int64
	// Wall is the stage's start-to-close duration (or time running so
	// far, if the stage has not closed).
	Wall time.Duration
	// Busy is the total time workers spent inside the stage function,
	// summed across workers (Busy > Wall means real parallelism).
	Busy time.Duration
}

// Snapshot copies every stage's counters, in registration order.
func (s *Stats) Snapshot() []StageSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StageSnapshot, 0, len(s.stages))
	for _, st := range s.stages {
		wall := time.Duration(st.wall.Load())
		if wall == 0 {
			wall = time.Since(st.started)
		}
		out = append(out, StageSnapshot{
			Name:    st.name,
			Workers: st.workers,
			In:      st.in.Load(),
			Out:     st.out.Load(),
			Wall:    wall,
			Busy:    time.Duration(st.busy.Load()),
		})
	}
	return out
}

// String renders the snapshot as an aligned table, one stage per line.
func (s *Stats) String() string {
	snaps := s.Snapshot()
	if len(snaps) == 0 {
		return "(no stages)"
	}
	nameW := len("stage")
	for _, sn := range snaps {
		if len(sn.Name) > nameW {
			nameW = len(sn.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s %7s %8s %8s %12s %12s\n", nameW, "stage", "workers", "in", "out", "wall", "busy")
	for _, sn := range snaps {
		fmt.Fprintf(&b, "%-*s %7d %8d %8d %12s %12s\n",
			nameW, sn.Name, sn.Workers, sn.In, sn.Out,
			sn.Wall.Round(time.Microsecond), sn.Busy.Round(time.Microsecond))
	}
	return b.String()
}
