package synth

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/randx"
	"repro/internal/urlx"
)

// Table 3 link-share weights (image-sharing sites), including the
// snowballed long tail.
var imageSiteWeights = []struct {
	domain string
	weight float64
}{
	{"imgur.com", 3297}, {"gyazo.com", 1006}, {"imageshack.com", 679},
	{"prnt.sc", 383}, {"photobucket.com", 311}, {"imagetwist.com", 105},
	{"imagezilla.net", 97}, {"minus.com", 51}, {"postimage.org", 47},
	{"imagebam.com", 44},
	// "Others": 700 across the snowballed hosts.
	{"otherimg00.example", 70}, {"otherimg01.example", 66},
	{"otherimg02.example", 64}, {"otherimg03.example", 62},
	{"otherimg04.example", 60}, {"otherimg05.example", 58},
	{"otherimg06.example", 56}, {"otherimg07.example", 56},
	{"otherimg08.example", 54}, {"otherimg09.example", 52},
	{"otherimg10.example", 52}, {"otherimg11.example", 50},
}

// Table 4 link-share weights (cloud-storage services).
var cloudSiteWeights = []struct {
	domain string
	weight float64
}{
	{"mediafire.com", 892}, {"mega.nz", 284}, {"dropbox.com", 130},
	{"oron.com", 95}, {"depositfiles.com", 46}, {"filefactory.com", 37},
	{"drive.google.com", 31}, {"ge.tt", 28}, {"zippyshare.com", 25},
	{"filedropper.com", 24},
	// "Others": 94 across the snowballed hosts.
	{"othercloud00.example", 14}, {"othercloud01.example", 13},
	{"othercloud02.example", 13}, {"othercloud03.example", 12},
	{"othercloud04.example", 12}, {"othercloud05.example", 11},
	{"othercloud06.example", 10}, {"othercloud07.example", 9},
}

func pickWeighted(rng *randx.Rand, table []struct {
	domain string
	weight float64
}) string {
	weights := make([]float64, len(table))
	for i, e := range table {
		weights[i] = e.weight
	}
	return table[rng.WeightedPick(weights)].domain
}

// nextToken returns a unique URL path token.
func (w *World) nextToken() string {
	w.urlCounter++
	return fmt.Sprintf("x%06d", w.urlCounter)
}

// genTOPContent builds the body and ground truth of one Thread
// Offering Packs: it composes a pack from a model's origin images
// (applying the transforms actors use), uploads previews to
// image-sharing sites and the pack zips to cloud storage (with the
// documented rates of link rot, takedowns and walls), and returns the
// post body containing the links.
func (w *World) genTOPContent(st *forumState, created time.Time) (string, *TOPTruth) {
	rng := st.rng
	top := &TOPTruth{Free: rng.Bool(0.187)}

	// Pick the model: flagged models are drained into free TOPs so
	// the hashlisted material actually circulates (and is caught).
	if top.Free && len(w.flaggedQueue) > 0 && rng.Bool(0.7) {
		top.Model = w.flaggedQueue[0]
		w.flaggedQueue = w.flaggedQueue[1:]
	} else if len(w.Models) > 0 {
		top.Model = rng.Intn(len(w.Models))
	}
	var model *Model
	if len(w.Models) > 0 {
		model = w.Models[top.Model]
	}

	// Preview links: free TOPs carry galleries (averages tuned to
	// Table 3's 7 314 links over the 774 linked TOPs); locked TOPs
	// post nothing openly.
	if top.Free {
		nPrev := 1 + rng.Poisson(8.4)
		for i := 0; i < nPrev; i++ {
			top.PreviewURLs = append(top.PreviewURLs, w.uploadPreview(st, model, created))
		}
		w.NumPreviewLinks += nPrev
	}

	// Pack links (free TOPs only).
	if top.Free && model != nil {
		nPack := 1 + rng.Poisson(1.2)
		for i := 0; i < nPack; i++ {
			url, flagged := w.uploadPack(st, model)
			top.PackURLs = append(top.PackURLs, url)
			if flagged {
				top.Flagged = true
			}
		}
		w.NumPackLinks += nPack
		if top.Flagged {
			w.NumFlaggedTOPs++
		}
	}

	name := "girls"
	if model != nil {
		name = model.Name
	}
	var body string
	if top.Free {
		body = fmt.Sprintf(randx.Pick(rng, topBodies),
			name, strings.Join(top.PreviewURLs, " "), strings.Join(top.PackURLs, " "))
	} else {
		body = fmt.Sprintf(randx.Pick(rng, topLockedBodies),
			name, strings.Join(top.PreviewURLs, " "))
	}
	return body, top
}

// uploadPreview uploads one preview-link target and returns its URL.
// The mix reproduces §4.2/§4.4: ~21% of links rot, ~20% are ToS
// takedowns (banner images), ~10% point at directory screenshots, the
// rest at genuine model previews (often modified to dodge reverse
// search).
func (w *World) uploadPreview(st *forumState, model *Model, created time.Time) string {
	rng := st.rng
	domain := pickWeighted(rng, imageSiteWeights)
	path := w.nextToken()
	url := fmt.Sprintf("https://%s/%s", domain, path)
	site, ok := w.Web.Site(domain)
	if !ok {
		return url
	}
	// Every branch draws its randomness on the walk, in the original
	// order; the rendering and upload run as a deferred job. Paths are
	// unique (nextToken) and hosting sites are mutex-protected maps, so
	// concurrent Put+SetStatus pairs commute — no ordered apply needed.
	// model may be captured directly: the forum phase never mutates
	// models.
	r := rng.Float64()
	switch {
	case r < 0.21:
		// Rotted: never registered → 404.
	case r < 0.41:
		w.do(func() {
			site.PutImage(path, imagex.New(8, 8, 0)) // placeholder, then takedown
			site.SetStatus(path, hosting.StatusTakedown)
		}, nil)
	case r < 0.51 && model != nil:
		gseed := rng.Uint64()
		w.do(func() {
			site.PutImage(path, imagex.GenThumbnailGrid(gseed, model.Seed, 160, 110))
		}, nil)
	case model != nil:
		// A genuine preview: one of the model's "hot" (most reposted)
		// images, possibly modified.
		idx := w.hotImage(rng, model)
		wm := ""
		var shade, recompress bool
		switch {
		case rng.Bool(0.30):
			wm = strings.ToUpper(st.spec.Name[:2]) + ".NET"
		case rng.Bool(0.20):
			shade = true
		case rng.Bool(0.25):
			recompress = true
		}
		w.do(func() {
			img := w.ModelImage(model, idx)
			// img is freshly regenerated, so the preview modifications
			// run in place on it instead of allocating transformed
			// copies.
			switch {
			case wm != "":
				img = img.Watermark(wm)
			case shade:
				img.ShadeInto(img, 0.25)
			case recompress:
				img.RecompressInto(img, 24)
			}
			site.PutImage(path, img)
		}, nil)
	default:
		lseed := rng.Uint64()
		w.do(func() {
			site.PutImage(path, imagex.GenLandscape(lseed, w.Config.ImageSize, false))
		}, nil)
	}
	return url
}

// hotImage picks a model image biased towards high repost counts.
func (w *World) hotImage(rng *randx.Rand, model *Model) int {
	best, bestReposts := 0, -1
	for t := 0; t < 3; t++ {
		i := rng.Intn(len(model.Images))
		if model.Images[i].Reposts > bestReposts {
			best, bestReposts = i, model.Images[i].Reposts
		}
	}
	return best
}

// uploadPack composes a pack zip from the model's images and uploads
// it to a cloud-storage service. It reports whether the pack contains
// a hashlisted image. Packs embedding flagged material are forced
// live so the pipeline's PhotoDNA gate is exercised.
func (w *World) uploadPack(st *forumState, model *Model) (string, bool) {
	rng := st.rng
	flagged := model.Flagged >= 0
	domain := pickWeighted(rng, cloudSiteWeights)
	if flagged {
		domain = "mediafire.com" // live, no wall, not defunct
	}
	path := "file/" + w.nextToken()
	url := fmt.Sprintf("https://%s/%s", domain, path)
	site, ok := w.Web.Site(domain)
	if !ok {
		return url, false
	}

	// Compose the pack: ~80% of the model's shoot, with the transform
	// mix actors apply (mirroring produces the zero-match images). The
	// walk draws every inclusion and transform decision in the original
	// order; rendering, zipping and the upload run as a deferred job
	// (model is immutable during the forum phase, the path is unique).
	members := make([]packMember, 0, len(model.Images))
	for i := range model.Images {
		if rng.Bool(0.2) && i != model.Flagged {
			continue
		}
		pm := packMember{index: i}
		r := rng.Float64()
		switch {
		case i == model.Flagged:
			// Flagged material circulates unmodified or recompressed —
			// PhotoDNA must still match it.
			if rng.Bool(0.5) {
				pm.transform = packRecompress32
			}
		case r < 0.20:
			pm.transform = packRecompress24
		case r < 0.25:
			pm.transform = packWatermark
		case r < 0.30:
			pm.transform = packMirror
		}
		members = append(members, pm)
	}
	// The status draw ran after PutPack in the sequential code, but
	// PutPack consumes no randomness, so drawing it here is identical.
	var status hosting.ObjectStatus
	setStatus := false
	if !flagged {
		r := rng.Float64()
		switch {
		case r < 0.17:
			status, setStatus = hosting.StatusDeleted, true
		case r < 0.27:
			status, setStatus = hosting.StatusTakedown, true
		}
	}
	w.do(func() {
		images := make([]*imagex.Image, 0, len(members))
		for _, pm := range members {
			// img is freshly regenerated per pack member, so the actor
			// transform mix runs in place instead of allocating copies.
			img := w.ModelImage(model, pm.index)
			switch pm.transform {
			case packRecompress32:
				img.RecompressInto(img, 32)
			case packRecompress24:
				img.RecompressInto(img, 24)
			case packWatermark:
				img = img.Watermark("PACK")
			case packMirror:
				img.MirrorInto(img)
			}
			images = append(images, img)
		}
		// PutPack's only error path is zip encoding into a bytes.Buffer,
		// which cannot fail; the walk has already committed to the URL.
		_ = site.PutPack(path, images)
		if setStatus {
			site.SetStatus(path, status)
		}
	}, nil)
	return url, flagged
}

// packMember is one walk-decided pack entry: which model image and
// which actor transform the deferred render applies to it.
type packMember struct {
	index     int
	transform packTransform
}

// packTransform enumerates the uploadPack transform mix.
type packTransform int

const (
	packKeep packTransform = iota
	packRecompress32
	packRecompress24
	packWatermark
	packMirror
)

// kindOfSite reports the whitelist kind the hosting world would
// advertise for a domain (used to wire snowball sampling in tests and
// the pipeline).
func (w *World) kindOfSite(domain string) (urlx.Kind, bool) {
	return w.Web.VisitKind(domain)
}
