package reverse

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/imagex"
)

func day(n int) time.Time {
	return time.Date(2014, time.June, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestSearchExactAndRecompressed(t *testing.T) {
	ix := NewIndex(0)
	origin := imagex.GenModel(5, 0, imagex.PoseNude, 48)
	ix.AddImage(origin, Record{URL: "http://pornsite.example/m5", Domain: "pornsite.example", CrawlDate: day(0)})

	if got := ix.Search(origin); len(got) != 1 || got[0].Distance != 0 || got[0].Score != 1 {
		t.Fatalf("exact search = %+v", got)
	}
	re := origin.Recompress(16)
	got := ix.Search(re)
	if len(got) != 1 {
		t.Fatalf("recompressed copy not matched")
	}
	if got[0].Score <= 0.8 {
		t.Fatalf("recompressed score %.3f too low", got[0].Score)
	}
}

func TestMirrorEvadesSearch(t *testing.T) {
	ix := NewIndex(0)
	origin := imagex.GenModel(8, 0, imagex.PoseNude, 48)
	ix.AddImage(origin, Record{URL: "u", Domain: "d"})
	if got := ix.Search(origin.Mirror()); len(got) != 0 {
		t.Fatalf("mirrored image matched %d records; mirroring should evade", len(got))
	}
}

func TestUnrelatedImagesDoNotMatch(t *testing.T) {
	ix := NewIndex(0)
	for i := 0; i < 100; i++ {
		ix.AddImage(imagex.GenModel(uint64(i), 0, imagex.PoseNude, 48), Record{URL: "u", Domain: "d"})
	}
	hits := 0
	for i := 1000; i < 1050; i++ {
		hits += len(ix.Search(imagex.GenModel(uint64(i), 0, imagex.PoseNude, 48)))
	}
	if hits > 5 {
		t.Fatalf("%d spurious matches across 50 unrelated queries", hits)
	}
}

func TestSearchSortedByDistance(t *testing.T) {
	ix := NewIndex(10)
	ix.Add(imagex.Hash128{A: 0b0011}, Record{URL: "far", Domain: "d"})
	ix.Add(imagex.Hash128{A: 0b0001}, Record{URL: "near", Domain: "d"})
	got := ix.SearchHash(imagex.Hash128{})
	if len(got) != 2 || got[0].URL != "near" || got[1].URL != "far" {
		t.Fatalf("search order = %+v", got)
	}
}

func TestDomains(t *testing.T) {
	matches := []Match{
		{Record: Record{Domain: "b.com"}},
		{Record: Record{Domain: "a.com"}},
		{Record: Record{Domain: "b.com"}},
	}
	got := Domains(matches)
	if len(got) != 2 || got[0] != "a.com" || got[1] != "b.com" {
		t.Fatalf("Domains = %v", got)
	}
}

func TestSeenBefore(t *testing.T) {
	matches := []Match{
		{Record: Record{CrawlDate: day(10)}},
		{Record: Record{CrawlDate: day(20)}},
	}
	if !SeenBefore(matches, day(15)) {
		t.Fatal("match crawled day 10 not seen before day 15")
	}
	if SeenBefore(matches, day(10)) {
		t.Fatal("strictly-before violated")
	}
	if SeenBefore(nil, day(100)) {
		t.Fatal("empty matches seen before")
	}
}

func TestHTTPServiceRoundtrip(t *testing.T) {
	ix := NewIndex(0)
	origin := imagex.GenModel(12, 1, imagex.PosePartial, 48)
	ix.AddImage(origin, Record{
		URL: "http://blog.example/post/1/img.jpg", Domain: "blog.example",
		Backlink: "http://blog.example/post/1", CrawlDate: day(3),
	})
	srv := httptest.NewServer(Handler(ix))
	defer srv.Close()

	c := NewClient(srv.URL, srv.Client())
	matches, err := c.Search(context.Background(), origin)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %d", len(matches))
	}
	m := matches[0]
	if m.Domain != "blog.example" || m.Backlink != "http://blog.example/post/1" {
		t.Fatalf("match = %+v", m)
	}
	if !m.CrawlDate.Equal(day(3)) {
		t.Fatalf("crawl date %v", m.CrawlDate)
	}
}

func TestHTTPRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(Handler(NewIndex(0)))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /search = %d", resp.StatusCode)
	}
	resp, err = srv.Client().Post(srv.URL+"/search", "image/x-simg", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("empty body = %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ix := NewIndex(0)
	ix.Add(imagex.Hash128{A: 1}, Record{})
	srv := httptest.NewServer(Handler(ix))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
}

func BenchmarkSearch10k(b *testing.B) {
	ix := NewIndex(0)
	for i := 0; i < 10000; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		ix.Add(imagex.Hash128{A: imagex.Hash(h), D: imagex.Hash(h >> 3)}, Record{URL: "u", Domain: "d"})
	}
	im := imagex.GenModel(3, 0, imagex.PoseNude, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(im)
	}
}

func TestSearchHashEndpoint(t *testing.T) {
	ix := NewIndex(0)
	origin := imagex.GenModel(5, 0, imagex.PoseNude, 48)
	ix.AddImage(origin, Record{URL: "http://pornsite.example/m5", Domain: "pornsite.example", CrawlDate: day(0)})
	srv := httptest.NewServer(Handler(ix))
	defer srv.Close()

	c := NewClient(srv.URL, srv.Client())
	got, err := c.SearchHash(context.Background(), imagex.Hash128Of(origin))
	if err != nil {
		t.Fatal(err)
	}
	want := ix.SearchHash(imagex.Hash128Of(origin))
	if len(got) != len(want) || got[0].URL != want[0].URL || got[0].Distance != want[0].Distance {
		t.Fatalf("remote hash search = %+v, want %+v", got, want)
	}
	if !got[0].CrawlDate.Equal(want[0].CrawlDate) {
		t.Errorf("crawl date did not survive the wire: %v != %v", got[0].CrawlDate, want[0].CrawlDate)
	}

	// Malformed hashes are rejected.
	resp, err := srv.Client().Get(srv.URL + "/searchhash?h=nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad hash: status %d, want 400", resp.StatusCode)
	}
}

func TestHashWireFormatRoundtrip(t *testing.T) {
	h := imagex.Hash128{A: 0xdeadbeef01234567, D: 0x89abcdef00000001}
	got, err := ParseHash128(FormatHash128(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("roundtrip %v != %v", got, h)
	}
}
