package photodna

import (
	"sync"
	"testing"

	"repro/internal/imagex"
)

func TestMatchExact(t *testing.T) {
	hl := NewHashList(0)
	im := imagex.GenModel(1, 0, imagex.PoseNude, 48)
	hl.Add(im, Entry{ID: 7, Actionable: true, Severity: CategoryA, VictimAge: 17})
	e, ok := hl.Match(im)
	if !ok || e.ID != 7 {
		t.Fatalf("Match = %+v %v", e, ok)
	}
}

func TestMatchSurvivesRecompression(t *testing.T) {
	hl := NewHashList(0)
	im := imagex.GenModel(3, 1, imagex.PoseNude, 48)
	hl.Add(im, Entry{ID: 1})
	re := im.Recompress(16)
	if _, ok := hl.Match(re); !ok {
		t.Fatal("recompressed image evaded the hashlist; robust hashing broken")
	}
}

func TestMatchRejectsUnrelated(t *testing.T) {
	hl := NewHashList(0)
	for i := 0; i < 50; i++ {
		hl.Add(imagex.GenModel(uint64(i), 0, imagex.PoseNude, 48), Entry{ID: i})
	}
	misses := 0
	for i := 1000; i < 1100; i++ {
		if _, ok := hl.Match(imagex.GenModel(uint64(i), 0, imagex.PoseNude, 48)); !ok {
			misses++
		}
	}
	if misses < 95 {
		t.Fatalf("only %d/100 unrelated images missed the hashlist; radius too loose", misses)
	}
}

func TestMirrorEvades(t *testing.T) {
	// Robust hashing is not mirror-invariant (the paper notes actors
	// can mirror images to evade detection systems).
	hl := NewHashList(0)
	im := imagex.GenModel(9, 0, imagex.PoseNude, 48)
	hl.Add(im, Entry{ID: 1})
	if _, ok := hl.Match(im.Mirror()); ok {
		t.Log("mirrored image still matched — hash unusually symmetric; acceptable but rare")
	}
}

func TestMatchPicksClosest(t *testing.T) {
	hl := NewHashList(10)
	hl.AddHash(RobustHash{A: 0x00ff}, Entry{ID: 1})
	hl.AddHash(RobustHash{A: 0x000f}, Entry{ID: 2})
	// Query 0x0007: distance 1 to 0x000f (differ in bit 3), larger to 0x00ff.
	e, ok := hl.MatchHash(RobustHash{A: 0x0007})
	if !ok || e.ID != 2 {
		t.Fatalf("MatchHash = %+v %v, want entry 2", e, ok)
	}
}

func TestHashListLen(t *testing.T) {
	hl := NewHashList(0)
	if hl.Len() != 0 {
		t.Fatal("fresh hashlist not empty")
	}
	hl.AddHash(RobustHash{A: 1}, Entry{})
	hl.AddHash(RobustHash{A: 2}, Entry{})
	hl.AddHash(RobustHash{A: 1}, Entry{}) // duplicate hash replaces
	if hl.Len() != 2 {
		t.Fatalf("Len = %d", hl.Len())
	}
}

func TestRobustHashDistance(t *testing.T) {
	a := RobustHash{A: 0x0f, D: 0xf0}
	b := RobustHash{A: 0x0e, D: 0x70}
	if d := a.Distance(b); d != 2 {
		t.Fatalf("Distance = %d want 2", d)
	}
	if a.Distance(a) != 0 {
		t.Fatal("self-distance nonzero")
	}
}

func TestFilterReportsAndWithholds(t *testing.T) {
	hl := NewHashList(0)
	bad := imagex.GenModel(42, 0, imagex.PoseNude, 48)
	hl.Add(bad, Entry{ID: 5, Actionable: true, Severity: CategoryB, VictimAge: 16})
	hot := NewHotline()
	f := NewFilter(hl, hot)

	urls := []URLReport{{URL: "http://img.example/x", Region: RegionUK, SiteType: SiteImageSharing}}
	if f.Check(bad, 10, 20, urls) {
		t.Fatal("hashlisted image passed the gate")
	}
	clean := imagex.GenModel(43, 0, imagex.PoseNude, 48)
	if !f.Check(clean, 10, 21, nil) {
		t.Fatal("clean image blocked")
	}
	reports := hot.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	r := reports[0]
	if r.Entry.ID != 5 || r.SourceThread != 10 || r.SourcePost != 20 || len(r.URLs) != 1 {
		t.Fatalf("report = %+v", r)
	}
}

func TestSummarize(t *testing.T) {
	hot := NewHotline()
	hot.Report(MatchReport{
		Entry: Entry{Actionable: true, Severity: CategoryA},
		URLs: []URLReport{
			{Region: RegionUK, SiteType: SiteImageSharing},
			{Region: RegionNorthAmerica, SiteType: SiteForum},
		},
	})
	hot.Report(MatchReport{
		Entry: Entry{Actionable: false, Severity: CategoryC},
		URLs:  []URLReport{{Region: RegionEurope, SiteType: SiteBlog}},
	})
	s := hot.Summarize()
	if s.Matches != 2 {
		t.Errorf("Matches = %d", s.Matches)
	}
	if s.ActionableURLs != 2 {
		t.Errorf("ActionableURLs = %d (non-actionable must not be actioned)", s.ActionableURLs)
	}
	if s.BySeverity[CategoryA] != 2 || s.BySeverity[CategoryC] != 0 {
		t.Errorf("BySeverity = %v", s.BySeverity)
	}
	if s.ByRegion[RegionUK] != 1 || s.ByRegion[RegionEurope] != 0 {
		t.Errorf("ByRegion = %v", s.ByRegion)
	}
	if s.BySiteType[SiteForum] != 1 {
		t.Errorf("BySiteType = %v", s.BySiteType)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestConcurrentFilter(t *testing.T) {
	hl := NewHashList(0)
	bad := imagex.GenModel(7, 0, imagex.PoseNude, 48)
	hl.Add(bad, Entry{ID: 1, Actionable: true, Severity: CategoryA})
	hot := NewHotline()
	f := NewFilter(hl, hot)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f.Check(bad, g, i, nil)
				f.Check(imagex.GenModel(uint64(100+g*50+i), 0, imagex.PoseNude, 48), g, i, nil)
			}
		}(g)
	}
	wg.Wait()
	if got := hot.Summarize().Matches; got != 400 {
		t.Fatalf("concurrent matches = %d, want 400", got)
	}
}

func TestStringers(t *testing.T) {
	if CategoryA.String() != "A" || SeverityUnknown.String() != "?" {
		t.Error("Severity.String wrong")
	}
	if RegionUK.String() != "UK" || RegionUnknown.String() != "unknown" {
		t.Error("Region.String wrong")
	}
	if SiteImageSharing.String() != "image sharing" || SiteUnknown.String() != "unknown" {
		t.Error("SiteType.String wrong")
	}
}

func BenchmarkMatch(b *testing.B) {
	hl := NewHashList(0)
	for i := 0; i < 1000; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		hl.AddHash(RobustHash{A: imagex.Hash(h), D: imagex.Hash(h >> 1)}, Entry{ID: i})
	}
	im := imagex.GenModel(5, 0, imagex.PoseNude, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hl.Match(im)
	}
}

// TestMatchHashTieBreakDeterministic pins the distance tie-break: with
// several entries equidistant from the query, the lowest entry ID must
// win regardless of map iteration order (DESIGN.md §1).
func TestMatchHashTieBreakDeterministic(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		hl := NewHashList(8)
		// Query hash {A:0,D:0}; all entries at Hamming distance 2.
		hl.AddHash(RobustHash{A: 0b0011}, Entry{ID: 7})
		hl.AddHash(RobustHash{A: 0b1100}, Entry{ID: 3})
		hl.AddHash(RobustHash{D: 0b0101}, Entry{ID: 9})
		e, ok := hl.MatchHash(RobustHash{})
		if !ok || e.ID != 3 {
			t.Fatalf("trial %d: matched entry %d (ok=%v), want lowest ID 3", trial, e.ID, ok)
		}
	}
}

// TestMatchHashPrefersCloserOverLowerID: the tie-break must not
// override the distance ordering.
func TestMatchHashPrefersCloserOverLowerID(t *testing.T) {
	hl := NewHashList(8)
	hl.AddHash(RobustHash{A: 0b1}, Entry{ID: 50}) // distance 1
	hl.AddHash(RobustHash{A: 0b11}, Entry{ID: 1}) // distance 2
	if e, ok := hl.MatchHash(RobustHash{}); !ok || e.ID != 50 {
		t.Fatalf("matched entry %+v (ok=%v), want the closer ID 50", e, ok)
	}
}
