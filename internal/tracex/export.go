package tracex

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON
// Array Format") that Perfetto and chrome://tracing both load. Spans
// are emitted as async begin/end pairs ("b"/"e") keyed by span id, so
// overlapping concurrent siblings — the norm under the artefact
// graph's per-node goroutines — render as parallel tracks instead of
// an invalid stack.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	ID    string            `json:"id"`
	Args  map[string]string `json:"args,omitempty"`
}

// ChromeTrace renders the trace in Chrome trace-event JSON for
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func (tr Trace) ChromeTrace() []byte {
	events := make([]chromeEvent, 0, 2*len(tr.Spans))
	for _, s := range tr.Spans {
		cat := "span"
		if s.Parent == "" {
			cat = "root"
		}
		args := s.Attrs
		if s.Parent != "" {
			args = make(map[string]string, len(s.Attrs)+1)
			for k, v := range s.Attrs {
				args[k] = v
			}
			args["parent"] = s.Parent
		}
		events = append(events,
			chromeEvent{Name: s.Name, Cat: cat, Phase: "b", TS: s.StartUS, PID: 1, TID: 1, ID: s.SpanID, Args: args},
			chromeEvent{Name: s.Name, Cat: cat, Phase: "e", TS: s.StartUS + s.DurUS, PID: 1, TID: 1, ID: s.SpanID},
		)
	}
	out, err := json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Meta        string        `json:"otherData,omitempty"`
	}{TraceEvents: events, Meta: "trace " + tr.TraceID})
	if err != nil {
		// chromeEvent marshals from plain strings and ints; failure here
		// would be a programming error, not data-dependent.
		panic(err)
	}
	return out
}

// TreeNode is one node of the aggregated span tree: siblings with the
// same name and attrs collapse into one node with a count, and their
// subtrees merge. The aggregate carries no ids or timings, so it is
// identical across runs whatever the goroutine interleaving — the
// golden-test form of a trace.
type TreeNode struct {
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Count    int               `json:"count"`
	Children []*TreeNode       `json:"children,omitempty"`
}

// treeKey canonicalizes a (name, attrs) pair for sibling aggregation.
func treeKey(name string, attrs map[string]string) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteString("\x00")
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(attrs[k])
	}
	return b.String()
}

// Tree aggregates the trace's spans into a deterministic tree. Spans
// whose parent is missing from the span set (e.g. the server half of a
// propagated trace viewed alone) become roots.
func (tr Trace) Tree() []*TreeNode {
	present := make(map[string]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		present[s.SpanID] = true
	}
	children := make(map[string][]SpanRecord)
	var roots []SpanRecord
	for _, s := range tr.Spans {
		if s.Parent != "" && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var build func(spans []SpanRecord) []*TreeNode
	build = func(spans []SpanRecord) []*TreeNode {
		byKey := make(map[string]*TreeNode)
		kidSpans := make(map[string][]SpanRecord)
		var order []string
		for _, s := range spans {
			k := treeKey(s.Name, s.Attrs)
			n := byKey[k]
			if n == nil {
				n = &TreeNode{Name: s.Name, Attrs: s.Attrs}
				byKey[k] = n
				order = append(order, k)
			}
			n.Count++
			kidSpans[k] = append(kidSpans[k], children[s.SpanID]...)
		}
		sort.Strings(order)
		out := make([]*TreeNode, 0, len(order))
		for _, k := range order {
			n := byKey[k]
			n.Children = build(kidSpans[k])
			out = append(out, n)
		}
		return out
	}
	return build(roots)
}

// RenderTree renders the trace as an indented text tree with per-span
// durations, children ordered by start time — the `ewtrace` / `ewsweep
// -trace` human view.
func (tr Trace) RenderTree() string {
	children := make(map[string][]SpanRecord)
	present := make(map[string]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		present[s.SpanID] = true
	}
	var roots []SpanRecord
	for _, s := range tr.Spans {
		if s.Parent != "" && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans", tr.TraceID, len(tr.Spans))
	if tr.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", tr.Dropped)
	}
	b.WriteString(")\n")
	var walk func(spans []SpanRecord, depth int)
	walk = func(spans []SpanRecord, depth int) {
		for _, s := range spans {
			b.WriteString(strings.Repeat("  ", depth))
			fmt.Fprintf(&b, "%s %s", s.Name, fmtUS(s.DurUS))
			for _, k := range sortedKeys(s.Attrs) {
				fmt.Fprintf(&b, " %s=%s", k, s.Attrs[k])
			}
			b.WriteString("\n")
			walk(children[s.SpanID], depth+1)
		}
	}
	walk(roots, 1)
	return b.String()
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtUS renders a microsecond duration human-readably.
func fmtUS(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// MarshalTree renders the aggregated tree as indented JSON — the
// byte-stable golden-test form.
func (tr Trace) MarshalTree() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tr.Tree()); err != nil {
		panic(err) // plain strings/ints: cannot fail on data
	}
	return buf.Bytes()
}
