package photodna

import (
	"testing"

	"repro/internal/imagex"
	"repro/internal/randx"
)

// flipBits returns h with n distinct bits of the 128-bit composite
// flipped, chosen by rng.
func flipBits(rng *randx.Rand, h RobustHash, n int) RobustHash {
	flipped := make(map[int]struct{}, n)
	for len(flipped) < n {
		b := rng.Intn(128)
		if _, dup := flipped[b]; dup {
			continue
		}
		flipped[b] = struct{}{}
		if b < 64 {
			h.A ^= 1 << uint(b)
		} else {
			h.D ^= 1 << uint(b-64)
		}
	}
	return h
}

func randHash(rng *randx.Rand) RobustHash {
	return RobustHash{A: imagex.Hash(rng.Uint64()), D: imagex.Hash(rng.Uint64())}
}

// TestMatchHashIndexEquivalence pins the tentpole invariant: the
// chunked multi-index returns bit-identical (Entry, ok) results to the
// linear reference scan, across random hashlists, radii on both sides
// of the pigeonhole fallback boundary, and queries placed at exact
// radius-boundary distances from known entries.
func TestMatchHashIndexEquivalence(t *testing.T) {
	rng := randx.New(0x9d5a)
	for _, radius := range []int{1, 3, DefaultRadius, 15, 16, 40} {
		for trial := 0; trial < 10; trial++ {
			hl := NewHashList(radius)
			entries := make([]RobustHash, 0, 200)
			for i := 0; i < 200; i++ {
				h := randHash(rng)
				entries = append(entries, h)
				// Non-unique IDs in random order exercise the
				// lowest-ID tie-break.
				hl.AddHash(h, Entry{ID: rng.Intn(50), Actionable: i%2 == 0})
			}

			var queries []RobustHash
			for i := 0; i < 50; i++ {
				queries = append(queries, randHash(rng))
			}
			// Queries at distance radius-1, radius and radius+1 from an
			// entry: the boundary cases where an index that probes too
			// few buckets, or verifies with the wrong cutoff, diverges.
			for i := 0; i < 50; i++ {
				base := entries[rng.Intn(len(entries))]
				for _, d := range []int{radius - 1, radius, radius + 1} {
					if d >= 0 && d <= 128 {
						queries = append(queries, flipBits(rng, base, d))
					}
				}
			}
			// Exact hits and near-duplicates.
			queries = append(queries, entries[0], flipBits(rng, entries[1], 1))

			for qi, q := range queries {
				hl.mu.RLock()
				wantE, wantOK := hl.matchHashLinear(q)
				hl.mu.RUnlock()
				gotE, gotOK := hl.MatchHash(q)
				if gotOK != wantOK || gotE != wantE {
					t.Fatalf("radius=%d trial=%d query=%d: indexed=(%+v,%v) linear=(%+v,%v)",
						radius, trial, qi, gotE, gotOK, wantE, wantOK)
				}
			}
		}
	}
}

// TestMatchHashIndexTieBreak plants several entries equidistant from
// the query in different index buckets and checks the lowest ID wins,
// exactly as the linear scan's documented tie-break.
func TestMatchHashIndexTieBreak(t *testing.T) {
	rng := randx.New(7)
	for trial := 0; trial < 25; trial++ {
		hl := NewHashList(8)
		q := randHash(rng)
		// Five entries at distance 4, IDs inserted in random order.
		ids := rng.Perm(5)
		lowest := 5
		for _, id := range ids {
			hl.AddHash(flipBits(rng, q, 4), Entry{ID: id})
			if id < lowest {
				lowest = id
			}
		}
		// A farther entry with an even lower ID must not win.
		hl.AddHash(flipBits(rng, q, 7), Entry{ID: -1})
		e, ok := hl.MatchHash(q)
		if !ok || e.ID != 0 {
			t.Fatalf("trial %d: got (%+v, %v), want lowest equidistant ID 0", trial, e, ok)
		}
	}
}

// TestAddHashReplacementReindexes re-adds an existing hash with a new
// entry and checks matching sees the replacement exactly once.
func TestAddHashReplacementReindexes(t *testing.T) {
	hl := NewHashList(4)
	h := RobustHash{A: 0xf0f0}
	hl.AddHash(h, Entry{ID: 9})
	hl.AddHash(h, Entry{ID: 2, Actionable: true})
	if hl.Len() != 1 {
		t.Fatalf("Len = %d after replacement, want 1", hl.Len())
	}
	e, ok := hl.MatchHash(h)
	if !ok || e.ID != 2 || !e.Actionable {
		t.Fatalf("MatchHash = (%+v, %v), want the replacing entry", e, ok)
	}
}

// TestMatchHashZeroAlloc pins the hot path allocation-free: a probe
// over a populated hashlist must not allocate.
func TestMatchHashZeroAlloc(t *testing.T) {
	rng := randx.New(3)
	hl := NewHashList(0)
	for i := 0; i < 500; i++ {
		hl.AddHash(randHash(rng), Entry{ID: i})
	}
	q := randHash(rng)
	if avg := testing.AllocsPerRun(200, func() { hl.MatchHash(q) }); avg != 0 {
		t.Fatalf("MatchHash allocates %.1f per op, want 0", avg)
	}
}

// BenchmarkMatchHashIndexed measures the indexed probe against the
// linear reference on the same 5000-entry hashlist.
func BenchmarkMatchHashIndexed(b *testing.B) {
	rng := randx.New(11)
	hl := NewHashList(0)
	for i := 0; i < 5000; i++ {
		hl.AddHash(randHash(rng), Entry{ID: i})
	}
	q := randHash(rng)
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hl.MatchHash(q)
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hl.mu.RLock()
			hl.matchHashLinear(q)
			hl.mu.RUnlock()
		}
	})
}
