// Package textproc implements the NLP preprocessing the TOP classifier
// feeds on: tokenisation, punctuation stripping, lower-casing, number
// removal, stop-word exclusion, document-term counting and TF-IDF
// weighting ("we parse thread headings and posts into a document-term
// matrix to get word-counts. We strip punctuation, convert to lower
// case characters, ignore numbers and exclude stop words. Finally,
// these word counts are transformed using TF-IDF").
package textproc

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// stopWords is a compact English stop-word list. Underground-forum text
// is informal, so the list also covers common contractions without
// their apostrophes (which tokenisation strips).
var stopWords = map[string]struct{}{}

func init() {
	for _, w := range strings.Fields(`
a about above after again all am an and any are arent as at be because
been before being below between both but by cant cannot could couldnt
did didnt do does doesnt doing dont down during each few for from
further had hadnt has hasnt have havent having he her here hers herself
him himself his how i if in into is isnt it its itself lets me more
most my myself no nor not of off on once only or other ought our ours
ourselves out over own same she should shouldnt so some such than that
the their theirs them themselves then there these they this those
through to too under until up very was wasnt we were werent what when
where which while who whom why with wont would wouldnt you your yours
yourself yourselves ur im ive id ill u r`) {
		stopWords[w] = struct{}{}
	}
}

// IsStopWord reports whether the (lowercase) token is a stop word.
func IsStopWord(tok string) bool {
	_, ok := stopWords[tok]
	return ok
}

// Tokenize splits text into lowercase alphabetic tokens, stripping
// punctuation and ignoring tokens that contain digits, per the paper's
// preprocessing. Stop words are retained; use TokenizeFiltered to drop
// them.
func Tokenize(text string) []string {
	var toks []string
	var cur strings.Builder
	hasDigit := false
	flush := func() {
		if cur.Len() > 0 {
			if !hasDigit {
				toks = append(toks, cur.String())
			}
			cur.Reset()
		}
		hasDigit = false
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			cur.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			// Tokens containing numbers are ignored entirely.
			cur.WriteRune('0')
			hasDigit = true
		default:
			flush()
		}
	}
	flush()
	return toks
}

// TokenizeFiltered tokenises and removes stop words and single-letter
// tokens.
func TokenizeFiltered(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if len(t) < 2 {
			continue
		}
		if IsStopWord(t) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Vocab maps terms to dense feature indices. Build one from the
// training corpus and reuse it to vectorise unseen documents (unknown
// terms are dropped).
type Vocab struct {
	index map[string]int
	terms []string
	df    []int // document frequency per term
	docs  int   // documents seen during Fit
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{index: make(map[string]int)}
}

// Fit extends the vocabulary with the terms of the given tokenised
// documents and accumulates document frequencies.
func (v *Vocab) Fit(docs [][]string) {
	for _, doc := range docs {
		v.docs++
		seen := make(map[int]struct{}, len(doc))
		for _, term := range doc {
			idx, ok := v.index[term]
			if !ok {
				idx = len(v.terms)
				v.index[term] = idx
				v.terms = append(v.terms, term)
				v.df = append(v.df, 0)
			}
			if _, dup := seen[idx]; !dup {
				v.df[idx]++
				seen[idx] = struct{}{}
			}
		}
	}
}

// Size returns the number of distinct terms.
func (v *Vocab) Size() int { return len(v.terms) }

// Term returns the term at feature index i.
func (v *Vocab) Term(i int) string { return v.terms[i] }

// Index returns the feature index of a term, or -1 if unknown.
func (v *Vocab) Index(term string) int {
	if idx, ok := v.index[term]; ok {
		return idx
	}
	return -1
}

// DocFreq returns the number of fitted documents containing the term.
func (v *Vocab) DocFreq(term string) int {
	if idx, ok := v.index[term]; ok {
		return v.df[idx]
	}
	return 0
}

// IDF returns the smoothed inverse document frequency of term index i:
// ln((1+N)/(1+df)) + 1.
func (v *Vocab) IDF(i int) float64 {
	return math.Log(float64(1+v.docs)/float64(1+v.df[i])) + 1
}

// SparseVec is a sparse feature vector: parallel index/value slices
// with strictly ascending indices.
type SparseVec struct {
	Idx []int
	Val []float64
}

// Dot returns the inner product with a dense weight vector. Indices
// beyond the dense vector's length contribute zero.
func (s SparseVec) Dot(dense []float64) float64 {
	sum := 0.0
	for k, i := range s.Idx {
		if i < len(dense) {
			sum += s.Val[k] * dense[i]
		}
	}
	return sum
}

// L2Norm returns the Euclidean norm of the vector.
func (s SparseVec) L2Norm() float64 {
	sum := 0.0
	for _, v := range s.Val {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Scale multiplies all values in place and returns the receiver.
func (s SparseVec) Scale(f float64) SparseVec {
	for k := range s.Val {
		s.Val[k] *= f
	}
	return s
}

// CountVector returns the raw term-count vector of a tokenised document
// under the vocabulary. Unknown terms are dropped.
func (v *Vocab) CountVector(doc []string) SparseVec {
	counts := make(map[int]float64)
	for _, term := range doc {
		if idx, ok := v.index[term]; ok {
			counts[idx]++
		}
	}
	return mapToSparse(counts)
}

// TFIDFVector returns the L2-normalised TF-IDF vector of a tokenised
// document under the vocabulary.
func (v *Vocab) TFIDFVector(doc []string) SparseVec {
	counts := make(map[int]float64)
	for _, term := range doc {
		if idx, ok := v.index[term]; ok {
			counts[idx]++
		}
	}
	for idx, tf := range counts {
		counts[idx] = tf * v.IDF(idx)
	}
	vec := mapToSparse(counts)
	if n := vec.L2Norm(); n > 0 {
		vec.Scale(1 / n)
	}
	return vec
}

func mapToSparse(m map[int]float64) SparseVec {
	idx := make([]int, 0, len(m))
	for i := range m {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	val := make([]float64, len(idx))
	for k, i := range idx {
		val[k] = m[i]
	}
	return SparseVec{Idx: idx, Val: val}
}

// TopTerms returns the n terms with the highest document frequency,
// useful for inspecting what the vocabulary learned.
func (v *Vocab) TopTerms(n int) []string {
	order := make([]int, len(v.terms))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if v.df[order[a]] != v.df[order[b]] {
			return v.df[order[a]] > v.df[order[b]]
		}
		return v.terms[order[a]] < v.terms[order[b]]
	})
	if n > len(order) {
		n = len(order)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = v.terms[order[i]]
	}
	return out
}

// CountOccurrences returns how many of the needles occur in the
// lowercased haystack as substrings. The heuristics of §4.1 count
// keyword occurrences in headings this way.
func CountOccurrences(haystack string, needles []string) int {
	h := strings.ToLower(haystack)
	n := 0
	for _, needle := range needles {
		if strings.Contains(h, needle) {
			n++
		}
	}
	return n
}

// CountRune returns the number of occurrences of r in s (e.g. counting
// question marks in headings to spot info-requesting threads).
func CountRune(s string, r rune) int {
	n := 0
	for _, c := range s {
		if c == r {
			n++
		}
	}
	return n
}
