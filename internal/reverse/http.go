package reverse

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/imagex"
)

// The HTTP layer mirrors how the study consumed TinEye: an API the
// pipeline POSTs an image to, receiving a JSON report of matches.

// searchResponse is the wire format of a search result.
type searchResponse struct {
	Matches []Match `json:"matches"`
}

// Handler serves the index over HTTP:
//
//	POST /search  (body: SIMG image)  → 200 JSON {"matches": [...]}
//	GET  /stats                       → 200 JSON {"indexed": N}
func Handler(ix *Index) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		im, err := imagex.Decode(body)
		if err != nil {
			http.Error(w, "bad image payload", http.StatusBadRequest)
			return
		}
		matches := ix.Search(im)
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(searchResponse{Matches: matches}); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"indexed":%d}`, ix.Len())
	})
	return mux
}

// Client queries a reverse-image-search service over HTTP, playing the
// role of the TinEye API client.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the service at baseURL (no trailing
// slash). httpClient may be nil (http.DefaultClient).
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{BaseURL: baseURL, HTTP: httpClient}
}

// Search submits an image and returns its matches.
func (c *Client) Search(ctx context.Context, im *imagex.Image) ([]Match, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/search", bytes.NewReader(im.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "image/x-simg")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("reverse: search returned status %d", resp.StatusCode)
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("reverse: bad response: %w", err)
	}
	return sr.Matches, nil
}
