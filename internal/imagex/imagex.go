// Package imagex is the raster-image substrate of the study. The paper
// downloads ~117k real images; for ethical and data-availability
// reasons this reproduction cannot, so imagex synthesises images that
// carry the same measurable signals end-to-end:
//
//   - "model" photos have configurable skin-pixel fractions, so the
//     NSFW scorer (internal/nsfw) measures something real;
//   - "screenshot" images carry glyph-rendered text, so the OCR engine
//     (internal/ocr) genuinely recognises characters;
//   - every image has a perceptual difference-hash, so duplicate
//     detection, the PhotoDNA hashlist and the reverse image search
//     operate on pixel-derived fingerprints with realistic robustness
//     (recompression survives; mirroring evades — as the paper notes
//     actors exploit).
//
// Images are 8-bit grayscale rasters serialised in a tiny container
// format (SIMG) and bundled into real zip archives for "packs".
package imagex

import (
	"archive/zip"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"repro/internal/randx"
)

// Skin-band constants: pixels whose value falls inside the band count
// as "skin" for the NSFW scorer. Scene generators place body pixels in
// the band and backgrounds outside it (except for deliberately
// ambiguous scenes such as sand or wood textures).
const (
	SkinLo = 140
	SkinHi = 180
)

// Ink is the pixel value text glyphs are drawn with.
const Ink = 20

// Image is an 8-bit grayscale raster.
type Image struct {
	W, H int
	Pix  []byte // row-major, len == W*H
}

// New returns an image of the given size filled with the base value.
func New(w, h int, base byte) *Image {
	if w <= 0 || h <= 0 {
		panic("imagex: non-positive dimensions")
	}
	pix := make([]byte, w*h)
	for i := range pix {
		pix[i] = base
	}
	return &Image{W: w, H: h, Pix: pix}
}

// At returns the pixel at (x, y); out-of-bounds reads return 0.
func (im *Image) At(x, y int) byte {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	pix := make([]byte, len(im.Pix))
	copy(pix, im.Pix)
	return &Image{W: im.W, H: im.H, Pix: pix}
}

// pixPool recycles pixel buffers for the *Into transform variants and
// GetImage/PutImage, so steady-state hot paths (hashing, transform
// chains) stop allocating per image. Buffers are stored by pointer to
// keep Put itself allocation-free.
var pixPool = sync.Pool{New: func() any { b := []byte(nil); return &b }}

// GetImage returns an image of the given size whose pixel buffer comes
// from the shared pool. Contents are undefined; every pixel the caller
// does not write must be set explicitly. Release with PutImage.
func GetImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("imagex: non-positive dimensions")
	}
	im := &Image{}
	im.reshape(w, h)
	return im
}

// PutImage returns an image's pixel buffer to the pool. The image must
// not be used afterwards.
func PutImage(im *Image) {
	if im == nil || im.Pix == nil {
		return
	}
	buf := im.Pix[:0]
	im.Pix = nil
	pixPool.Put(&buf)
}

// reshape sizes the image to w×h, reusing its buffer when the capacity
// allows and drawing from the pool otherwise. Pixel contents after a
// reshape are undefined.
func (im *Image) reshape(w, h int) {
	n := w * h
	im.W, im.H = w, h
	if cap(im.Pix) >= n {
		im.Pix = im.Pix[:n]
		return
	}
	bp := pixPool.Get().(*[]byte)
	if cap(*bp) >= n {
		im.Pix = (*bp)[:n]
		return
	}
	pixPool.Put(bp)
	im.Pix = make([]byte, n)
}

// SkinFraction returns the fraction of pixels inside the skin band.
func (im *Image) SkinFraction() float64 {
	f, _ := im.SkinStats()
	return f
}

// SkinCoherence measures how contiguous the skin pixels are: the mean
// horizontal run length of skin pixels, normalised by image width.
// Bodies are contiguous (high coherence); scattered skin-valued noise
// is not. The NSFW scorer combines fraction and coherence.
func (im *Image) SkinCoherence() float64 {
	_, c := im.SkinStats()
	return c
}

// SkinStats returns the skin fraction and coherence in a single
// traversal — every skin pixel belongs to exactly one horizontal run,
// so the run-length fold also yields the band count. The NSFW scorer
// consumes both, and the fused pass halves its per-image cost.
func (im *Image) SkinStats() (fraction, coherence float64) {
	if im.W <= 0 || im.H <= 0 || len(im.Pix) == 0 {
		return 0, 0
	}
	totalRun, runs := 0, 0
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.W : (y+1)*im.W]
		run := 0
		for _, p := range row {
			if p >= SkinLo && p <= SkinHi {
				run++
			} else if run > 0 {
				totalRun += run
				runs++
				run = 0
			}
		}
		if run > 0 {
			totalRun += run
			runs++
		}
	}
	fraction = float64(totalRun) / float64(len(im.Pix))
	if runs > 0 {
		coherence = float64(totalRun) / float64(runs) / float64(im.W)
	}
	return fraction, coherence
}

// FillRect fills the rectangle [x0,x1)x[y0,y1) with value v plus
// per-pixel noise of amplitude amp (kept within [lo, hi] if the base
// value lies in that range band).
func (im *Image) FillRect(rng *randx.Rand, x0, y0, x1, y1 int, v byte, amp int) {
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			p := int(v)
			if amp > 0 {
				p += rng.Intn(2*amp+1) - amp
			}
			if p < 0 {
				p = 0
			}
			if p > 255 {
				p = 255
			}
			im.Set(x, y, byte(p))
		}
	}
}

// FillEllipse fills the axis-aligned ellipse centred at (cx, cy) with
// radii (rx, ry), value v and noise amplitude amp.
func (im *Image) FillEllipse(rng *randx.Rand, cx, cy, rx, ry int, v byte, amp int) {
	if rx <= 0 || ry <= 0 {
		return
	}
	for y := cy - ry; y <= cy+ry; y++ {
		for x := cx - rx; x <= cx+rx; x++ {
			dx := float64(x-cx) / float64(rx)
			dy := float64(y-cy) / float64(ry)
			if dx*dx+dy*dy <= 1 {
				p := int(v)
				if amp > 0 {
					p += rng.Intn(2*amp+1) - amp
				}
				if p < 0 {
					p = 0
				}
				if p > 255 {
					p = 255
				}
				im.Set(x, y, byte(p))
			}
		}
	}
}

// DrawText renders text starting at (x, y) with the given integer
// scale using the package font. Characters outside the font (and
// spaces) advance the cursor without drawing. It returns the x
// coordinate after the last glyph.
func (im *Image) DrawText(x, y, scale int, text string) int {
	if scale < 1 {
		scale = 1
	}
	adv := (GlyphW + 1) * scale
	for _, r := range text {
		if g, ok := Glyph(r); ok {
			for gy := 0; gy < GlyphH; gy++ {
				row := g[gy]
				for gx := 0; gx < GlyphW; gx++ {
					if row[gx] != '#' {
						continue
					}
					for sy := 0; sy < scale; sy++ {
						for sx := 0; sx < scale; sx++ {
							im.Set(x+gx*scale+sx, y+gy*scale+sy, Ink)
						}
					}
				}
			}
		}
		x += adv
	}
	return x
}

// TextWidth returns the pixel width of text at the given scale.
func TextWidth(text string, scale int) int {
	if scale < 1 {
		scale = 1
	}
	n := len([]rune(text))
	return n * (GlyphW + 1) * scale
}

// LineHeight returns the pixel height of a text line at a scale,
// including one blank row of spacing.
func LineHeight(scale int) int {
	if scale < 1 {
		scale = 1
	}
	return (GlyphH + 1) * scale
}

// Mirror returns a horizontally flipped copy. Actors mirror images to
// evade reverse image search; the difference hash is not mirror-
// invariant, so this transform defeats matching, as in the paper.
func (im *Image) Mirror() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]byte, len(im.Pix))}
	im.mirrorPix(out.Pix)
	return out
}

// MirrorInto is Mirror writing into dst, reusing dst's pixel buffer
// (growing it from the pool if needed). dst may alias im for an
// in-place flip.
func (im *Image) MirrorInto(dst *Image) {
	if dst == im {
		w := im.W
		for y := 0; y < im.H; y++ {
			row := im.Pix[y*w : (y+1)*w]
			for l, r := 0, w-1; l < r; l, r = l+1, r-1 {
				row[l], row[r] = row[r], row[l]
			}
		}
		return
	}
	dst.reshape(im.W, im.H)
	im.mirrorPix(dst.Pix)
}

func (im *Image) mirrorPix(dst []byte) {
	w := im.W
	for y := 0; y < im.H; y++ {
		src := im.Pix[y*w : (y+1)*w]
		out := dst[y*w : (y+1)*w]
		for x, p := range src {
			out[w-1-x] = p
		}
	}
}

// Recompress simulates lossy re-encoding by quantising pixel values to
// the given number of levels (2..256). Quantisation perturbs pixels
// slightly, which perceptual hashes must (and do) survive.
func (im *Image) Recompress(levels int) *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]byte, len(im.Pix))}
	im.recompressPix(out.Pix, levels)
	return out
}

// RecompressInto is Recompress writing into dst, reusing dst's pixel
// buffer (growing it from the pool if needed). dst may alias im for an
// in-place quantisation.
func (im *Image) RecompressInto(dst *Image, levels int) {
	if dst != im {
		dst.reshape(im.W, im.H)
	}
	im.recompressPix(dst.Pix, levels)
}

func (im *Image) recompressPix(dst []byte, levels int) {
	if levels < 2 {
		levels = 2
	}
	if levels > 256 {
		levels = 256
	}
	q := 256 / levels
	if q < 1 {
		q = 1
	}
	// The quantiser is a pure per-value map: build it once as a lookup
	// table, then sweep the raster with a single table-indexed pass.
	var lut [256]byte
	for i := range lut {
		v := (i/q)*q + q/2
		if v > 255 {
			v = 255
		}
		lut[i] = byte(v)
	}
	for i, p := range im.Pix {
		dst[i] = lut[p]
	}
}

// Watermark returns a copy with a text watermark drawn near the bottom
// left — the preview-modification habit the paper observes ("actors
// purposely modify these images to bypass reverse image searches").
func (im *Image) Watermark(text string) *Image {
	out := im.Clone()
	y := im.H - LineHeight(1) - 1
	if y < 0 {
		y = 0
	}
	out.DrawText(2, y, 1, text)
	return out
}

// Shade returns a copy with the bottom strip (frac of the height)
// darkened — another common preview modification.
func (im *Image) Shade(frac float64) *Image {
	out := im.Clone()
	out.ShadeInto(out, frac)
	return out
}

// ShadeInto is Shade writing into dst, reusing dst's pixel buffer
// (growing it from the pool if needed). dst may alias im for an
// in-place shade.
func (im *Image) ShadeInto(dst *Image, frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	if dst != im {
		dst.reshape(im.W, im.H)
		copy(dst.Pix, im.Pix)
	}
	y0 := int(float64(im.H) * (1 - frac))
	if y0 < 0 {
		y0 = 0
	}
	for y := y0; y < im.H; y++ {
		row := dst.Pix[y*im.W : (y+1)*im.W]
		for i, p := range row {
			row[i] = p / 3
		}
	}
}

// Resize box-samples the image to the given dimensions.
func (im *Image) Resize(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("imagex: non-positive resize dimensions")
	}
	out := &Image{W: w, H: h, Pix: make([]byte, w*h)}
	im.resizePix(out.Pix, w, h)
	return out
}

// ResizeInto is Resize writing into dst, reusing dst's pixel buffer
// (growing it from the pool if needed). dst must not alias im.
func (im *Image) ResizeInto(dst *Image, w, h int) {
	if w <= 0 || h <= 0 {
		panic("imagex: non-positive resize dimensions")
	}
	dst.reshape(w, h)
	im.resizePix(dst.Pix, w, h)
}

// resizePix box-samples into dst (len w*h). Each target cell averages
// the source rectangle [x*W/w,(x+1)*W/w) × [y*H/h,(y+1)*H/h), widened
// to at least one source pixel when upsampling — summed over row
// slices, so the kernel never pays per-pixel At bounds checks.
func (im *Image) resizePix(dst []byte, w, h int) {
	for y := 0; y < h; y++ {
		sy0 := y * im.H / h
		sy1 := (y + 1) * im.H / h
		if sy1 <= sy0 {
			sy1 = sy0 + 1
		}
		if sy1 > im.H {
			sy1 = im.H
		}
		out := dst[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			sx0 := x * im.W / w
			sx1 := (x + 1) * im.W / w
			if sx1 <= sx0 {
				sx1 = sx0 + 1
			}
			if sx1 > im.W {
				sx1 = im.W
			}
			sum := 0
			for sy := sy0; sy < sy1; sy++ {
				for _, p := range im.Pix[sy*im.W+sx0 : sy*im.W+sx1] {
					sum += int(p)
				}
			}
			if n := (sy1 - sy0) * (sx1 - sx0); n > 0 {
				out[x] = byte(sum / n)
			} else {
				out[x] = 0
			}
		}
	}
}

// Hash is a 64-bit perceptual hash.
type Hash uint64

// DHash computes the difference hash: the image is box-sampled to 9x8
// and each bit records whether a pixel is brighter than its right
// neighbour. Small photometric changes flip few bits; mirroring flips
// roughly half.
func DHash(im *Image) Hash {
	var small [72]byte
	im.resizePix(small[:], 9, 8)
	return dhashOf(&small)
}

// dhashOf folds a 9x8 downsample into the difference hash.
func dhashOf(small *[72]byte) Hash {
	var h Hash
	bit := 0
	for y := 0; y < 8; y++ {
		row := small[y*9 : y*9+9]
		for x := 0; x < 8; x++ {
			if row[x] > row[x+1] {
				h |= 1 << uint(bit)
			}
			bit++
		}
	}
	return h
}

// AHash computes the average hash: 8x8 downsample, each bit records
// whether the pixel exceeds the mean. PhotoDNA-style robust matching
// uses AHash with a Hamming radius.
func AHash(im *Image) Hash {
	var small [64]byte
	im.resizePix(small[:], 8, 8)
	return ahashOf(&small)
}

// ahashOf folds an 8x8 downsample into the average hash.
func ahashOf(small *[64]byte) Hash {
	sum := 0
	for _, p := range small {
		sum += int(p)
	}
	mean := byte(sum / 64)
	var h Hash
	for i, p := range small {
		if p > mean {
			h |= 1 << uint(i)
		}
	}
	return h
}

// Distance returns the Hamming distance between two hashes.
func (h Hash) Distance(other Hash) int {
	return bits.OnesCount64(uint64(h ^ other))
}

// String formats the hash as 16 hex digits.
func (h Hash) String() string { return fmt.Sprintf("%016x", uint64(h)) }

// Hash128 is a composite perceptual hash: the average hash (global
// luminance layout) concatenated with the difference hash (local
// gradients). The two components fail differently, so their summed
// Hamming distance separates "same image, re-encoded" (a few bits)
// from "different image of the same kind" (tens of bits) far more
// reliably than either alone. Both the PhotoDNA stand-in and the
// reverse image search match on Hash128.
type Hash128 struct {
	A Hash
	D Hash
}

// Hash128Of computes the composite hash of an image. For rasters at
// least 9x8 — every generated image — both downsamples are accumulated
// in one traversal of the source with no heap allocation; smaller
// rasters take the generic per-hash path (bit-identical either way).
func Hash128Of(im *Image) Hash128 {
	if im.W >= 9 && im.H >= 8 && im.W <= hash128ColBound {
		return hash128Fused(im)
	}
	return Hash128{A: AHash(im), D: DHash(im)}
}

// hash128ColBound caps the raster width the fused fast path handles
// with its stack-resident column accumulator; wider rasters take the
// generic per-hash path. Study images are 48–150 pixels wide.
const hash128ColBound = 512

// hash128Fused computes both hash components in a single traversal of
// the source raster. The 8x8 (average-hash) and 9x8 (difference-hash)
// grids share their row bands, so each source row is loaded exactly
// once into a per-column accumulator; at each band boundary the
// column sums are reduced into both grids' cells along the x
// boundaries. Per-cell counts come from the box boundaries, which for
// W>=9 and H>=8 partition the raster exactly as Resize does (the
// upsampling fixup never fires), keeping every output bit identical
// to the AHash/DHash reference path. All state lives on the stack:
// steady-state heap allocations are zero.
func hash128Fused(im *Image) Hash128 {
	w, h := im.W, im.H
	var xb8 [9]int
	var xb9 [10]int
	for i := range xb8 {
		xb8[i] = i * w / 8
	}
	for i := range xb9 {
		xb9[i] = i * w / 9
	}
	// col holds one row band's per-column sums: 255 * H fits int32.
	var col [hash128ColBound]int32
	var small8 [64]byte
	var small9 [72]byte
	for ty := 0; ty < 8; ty++ {
		sy0, sy1 := ty*h/8, (ty+1)*h/8
		for i := 0; i < w; i++ {
			col[i] = 0
		}
		for sy := sy0; sy < sy1; sy++ {
			row := im.Pix[sy*w : (sy+1)*w]
			for x, p := range row {
				col[x] += int32(p)
			}
		}
		rh := sy1 - sy0
		for tx := 0; tx < 8; tx++ {
			s := 0
			for _, c := range col[xb8[tx]:xb8[tx+1]] {
				s += int(c)
			}
			small8[ty*8+tx] = byte(s / (rh * (xb8[tx+1] - xb8[tx])))
		}
		for tx := 0; tx < 9; tx++ {
			s := 0
			for _, c := range col[xb9[tx]:xb9[tx+1]] {
				s += int(c)
			}
			small9[ty*9+tx] = byte(s / (rh * (xb9[tx+1] - xb9[tx])))
		}
	}
	return Hash128{A: ahashOf(&small8), D: dhashOf(&small9)}
}

// Distance returns the summed Hamming distance (0..128).
func (h Hash128) Distance(other Hash128) int {
	return h.A.Distance(other.A) + h.D.Distance(other.D)
}

// String formats the hash as 32 hex digits.
func (h Hash128) String() string { return h.A.String() + h.D.String() }

// --- SIMG container -------------------------------------------------

// simgMagic identifies the SIMG container format.
var simgMagic = []byte("SIMG")

const simgVersion = 1

// ErrBadFormat reports a malformed SIMG payload.
var ErrBadFormat = errors.New("imagex: malformed SIMG data")

// Encode serialises the image into the SIMG container.
func (im *Image) Encode() []byte {
	buf := make([]byte, 0, 4+1+4+len(im.Pix))
	buf = append(buf, simgMagic...)
	buf = append(buf, simgVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(im.W))
	buf = binary.BigEndian.AppendUint16(buf, uint16(im.H))
	buf = append(buf, im.Pix...)
	return buf
}

// Decode parses a SIMG payload.
func Decode(data []byte) (*Image, error) {
	if len(data) < 9 || !bytes.Equal(data[:4], simgMagic) {
		return nil, ErrBadFormat
	}
	if data[4] != simgVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, data[4])
	}
	w := int(binary.BigEndian.Uint16(data[5:7]))
	h := int(binary.BigEndian.Uint16(data[7:9]))
	if w == 0 || h == 0 {
		return nil, fmt.Errorf("%w: zero dimension", ErrBadFormat)
	}
	if len(data)-9 != w*h {
		return nil, fmt.Errorf("%w: pixel payload %d != %dx%d", ErrBadFormat, len(data)-9, w, h)
	}
	pix := make([]byte, w*h)
	copy(pix, data[9:])
	return &Image{W: w, H: h, Pix: pix}, nil
}

// --- Pack archives ---------------------------------------------------

// flatePool recycles deflate writers across pack encodes:
// flate.NewWriter builds ~64 KiB of match tables per call, which
// dominated pack encoding when every zip entry paid it.
var flatePool = sync.Pool{New: func() any { return (*flate.Writer)(nil) }}

// pooledFlate hands a zip writer pooled deflate writers at BestSpeed:
// synthetic rasters are noisy enough that the default level buys a few
// percent of size for several times the CPU, and pack payloads only
// round-trip through the in-process crawler.
type pooledFlate struct{ fw *flate.Writer }

func (p *pooledFlate) Write(b []byte) (int, error) { return p.fw.Write(b) }

func (p *pooledFlate) Close() error {
	err := p.fw.Close()
	flatePool.Put(p.fw)
	p.fw = nil
	return err
}

// EncodePackZip bundles images into a zip archive with entries
// 0001.simg, 0002.simg, ... — the shape of the packs actors upload to
// cloud storage.
func EncodePackZip(images []*Image) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	zw.RegisterCompressor(zip.Deflate, func(out io.Writer) (io.WriteCloser, error) {
		if fw, _ := flatePool.Get().(*flate.Writer); fw != nil {
			fw.Reset(out)
			return &pooledFlate{fw: fw}, nil
		}
		fw, err := flate.NewWriter(out, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		return &pooledFlate{fw: fw}, nil
	})
	for i, im := range images {
		w, err := zw.Create(fmt.Sprintf("%04d.simg", i+1))
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(im.Encode()); err != nil {
			return nil, err
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodePackZip extracts every .simg entry from a zip archive, in
// entry-name order. Non-SIMG entries are skipped; a corrupt SIMG entry
// is an error.
func DecodePackZip(data []byte) ([]*Image, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("imagex: not a zip archive: %w", err)
	}
	names := make([]string, 0, len(zr.File))
	byName := make(map[string]*zip.File, len(zr.File))
	for _, f := range zr.File {
		if !strings.HasSuffix(f.Name, ".simg") {
			continue
		}
		names = append(names, f.Name)
		byName[f.Name] = f
	}
	sort.Strings(names)
	images := make([]*Image, 0, len(names))
	for _, name := range names {
		rc, err := byName[name].Open()
		if err != nil {
			return nil, err
		}
		payload, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
		im, err := Decode(payload)
		if err != nil {
			return nil, fmt.Errorf("imagex: entry %s: %w", name, err)
		}
		images = append(images, im)
	}
	return images, nil
}
