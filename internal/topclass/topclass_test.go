package topclass

import (
	"testing"

	"repro/internal/forum"
	"repro/internal/ml"
	"repro/internal/synth"
	"repro/internal/urlx"
)

// world is shared across tests (generation is the expensive part).
var world = synth.Generate(synth.Config{Seed: 11, Scale: 0.03})

// annotated converts the world's annotation sample.
func annotated(n int, seed uint64) []Labeled {
	sample := world.AnnotationSample(n, seed)
	out := make([]Labeled, len(sample))
	for i, s := range sample {
		out[i] = Labeled{Thread: s.Thread, IsTOP: s.IsTOP}
	}
	return out
}

func splitLabeled(all []Labeled, frac float64) (train, test []Labeled) {
	cut := int(frac * float64(len(all)))
	return all[:cut], all[cut:]
}

func TestHeuristicOnGroundTruth(t *testing.T) {
	// Heuristics alone must be precise: few request/tutorial threads
	// may pass, most TOPs with strong headings should.
	var m ml.Metrics
	for _, tid := range world.EWhoringAll() {
		truth := world.Truth[tid]
		m.Observe(Heuristic(world.Store, tid), truth != nil && truth.Kind == synth.KindTOP)
	}
	if p := m.Precision(); p < 0.6 {
		t.Fatalf("heuristic precision %.3f too low", p)
	}
	if r := m.Recall(); r < 0.3 {
		t.Fatalf("heuristic recall %.3f too low", r)
	}
}

func TestHybridMatchesPaperBand(t *testing.T) {
	all := annotated(1000, 5)
	train, test := splitLabeled(all, 0.8)
	h, err := Train(world.Store, urlx.DefaultWhitelist(), train, ml.DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := h.Evaluate(test)
	t.Logf("hybrid on held-out: P=%.3f R=%.3f F1=%.3f (paper: 0.92/0.93/0.92)",
		m.Precision(), m.Recall(), m.F1())
	if m.Precision() < 0.80 || m.Recall() < 0.80 {
		t.Fatalf("hybrid P=%.3f R=%.3f below the paper band", m.Precision(), m.Recall())
	}
}

func TestHybridBeatsOrMatchesParts(t *testing.T) {
	all := annotated(800, 9)
	train, test := splitLabeled(all, 0.8)
	h, err := Train(world.Store, urlx.DefaultWhitelist(), train, ml.DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	var mlOnly, heurOnly, hybrid ml.Metrics
	for _, l := range test {
		v := h.Classify(l.Thread)
		mlOnly.Observe(v.ML, l.IsTOP)
		heurOnly.Observe(v.Heuristic, l.IsTOP)
		hybrid.Observe(v.IsTOP(), l.IsTOP)
	}
	if hybrid.Recall() < mlOnly.Recall()-1e-9 || hybrid.Recall() < heurOnly.Recall()-1e-9 {
		t.Fatalf("union recall %.3f below a component (%.3f / %.3f)",
			hybrid.Recall(), mlOnly.Recall(), heurOnly.Recall())
	}
}

func TestExtractOverlapShape(t *testing.T) {
	all := annotated(800, 21)
	train, _ := splitLabeled(all, 0.8)
	h, err := Train(world.Store, urlx.DefaultWhitelist(), train, ml.DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := h.Extract(world.EWhoringAll())
	if len(res.TOPs) == 0 {
		t.Fatal("no TOPs extracted")
	}
	// The union is at least as large as either side; the overlap is
	// at most the smaller side (paper: ML 3 456, heur 2 676, both
	// 1 995).
	if res.BothCount > res.MLCount || res.BothCount > res.HeurCount {
		t.Fatalf("overlap %d exceeds a side (%d, %d)", res.BothCount, res.MLCount, res.HeurCount)
	}
	union := res.MLCount + res.HeurCount - res.BothCount
	if len(res.TOPs) != union {
		t.Fatalf("TOPs %d != union %d", len(res.TOPs), union)
	}
	if res.MLCount == 0 || res.HeurCount == 0 {
		t.Fatalf("a method extracted nothing: %+v", res)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(world.Store, urlx.DefaultWhitelist(), nil, ml.DefaultSVMConfig()); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestExtractorVectorShape(t *testing.T) {
	ex := NewExtractor(world.Store, urlx.DefaultWhitelist())
	threads := world.EWhoringAll()[:50]
	ex.Fit(threads)
	if ex.Dim() <= numStatFeatures {
		t.Fatal("vocabulary empty after Fit")
	}
	for _, tid := range threads {
		v := ex.Vector(tid)
		for k := 1; k < len(v.Idx); k++ {
			if v.Idx[k] <= v.Idx[k-1] {
				t.Fatalf("vector indices not ascending: %v", v.Idx)
			}
		}
		for _, i := range v.Idx {
			if i < 0 || i >= ex.Dim() {
				t.Fatalf("feature index %d out of range %d", i, ex.Dim())
			}
		}
	}
}

func TestKeywordTablesNonEmpty(t *testing.T) {
	if len(TOPKeywords) != 27 {
		t.Errorf("TOPKeywords = %d entries, Table 2 lists 27", len(TOPKeywords))
	}
	if len(EarningsKeywords) != 4 {
		t.Errorf("EarningsKeywords = %d entries, Table 2 lists 4", len(EarningsKeywords))
	}
	if len(EWhoringKeywords) != 2 {
		t.Errorf("EWhoringKeywords = %d", len(EWhoringKeywords))
	}
}

func TestHeuristicRejectsQuestions(t *testing.T) {
	s := forum.NewStore()
	f := s.AddForum("X")
	b := s.AddBoard(f, "ew", "Money")
	a := s.AddActor(f, "u", world.Store.Actor(1).Registered)
	top := s.AddThread(b, a, "selling unsaturated pack 100 pics", "body", world.Store.Thread(1).Created)
	ask := s.AddThread(b, a, "looking for a pack of pics?", "body", world.Store.Thread(1).Created)
	tut := s.AddThread(b, a, "pack tutorial guide pics", "body", world.Store.Thread(1).Created)
	if !Heuristic(s, top) {
		t.Error("clear TOP heading rejected")
	}
	if Heuristic(s, ask) {
		t.Error("request heading accepted")
	}
	if Heuristic(s, tut) {
		t.Error("tutorial heading accepted")
	}
}

func BenchmarkTrain(b *testing.B) {
	all := annotated(400, 3)
	for i := 0; i < b.N; i++ {
		if _, err := Train(world.Store, urlx.DefaultWhitelist(), all, ml.DefaultSVMConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	all := annotated(400, 3)
	h, err := Train(world.Store, urlx.DefaultWhitelist(), all, ml.DefaultSVMConfig())
	if err != nil {
		b.Fatal(err)
	}
	threads := world.EWhoringAll()[:100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tid := range threads {
			_ = h.Classify(tid)
		}
	}
}
