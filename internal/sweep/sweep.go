// Package sweep turns the single-study pipeline into a fleet of
// studies: it plans a grid over study parameters (seeds, scales,
// annotation sizes, worker counts), executes the resulting cells
// concurrently on the core pipeline — in-process or against a live
// study service — and folds every cell's Summary into deterministic
// cross-seed aggregates: per-artefact mean / stddev / 95% CI,
// scale-sensitivity slopes and a paper-vs-measured stability table.
//
// EXPERIMENTS.md's single-seed columns assert calibration; a sweep
// measures it. Because each cell is a full study, a remote sweep also
// doubles as a load generator: N concurrent POST /v1/study requests
// exercising the service's worker pool, request coalescing and result
// cache under real traffic.
package sweep

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/synth"
)

// Cell is one fully-specified study configuration — a point of the
// sweep grid. All fields are explicit (normalize fills defaults), so a
// cell means the same study locally and on a remote service.
type Cell struct {
	Seed             uint64  `json:"seed"`
	Scale            float64 `json:"scale"`
	Annotation       int     `json:"annotation_size"`
	Workers          int     `json:"workers"`
	CrawlConcurrency int     `json:"crawl_concurrency"`
	// Faults is the cell's faultx fault-injection profile ("" for
	// none) — the adversary axis of the adversarial-hosts preset.
	Faults string `json:"faults,omitempty"`
}

// normalize fills zero fields with the same defaults core.NewStudy and
// studysvc's canonicalization apply, so a cell's identity is
// independent of how sparsely it was written down.
func (c Cell) normalize() Cell {
	def := core.DefaultOptions()
	if c.Seed == 0 {
		c.Seed = def.Synth.Seed
	}
	if c.Scale <= 0 {
		c.Scale = def.Synth.Scale
	}
	if c.Annotation <= 0 {
		c.Annotation = def.AnnotationSize
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	if c.CrawlConcurrency <= 0 {
		c.CrawlConcurrency = def.CrawlConcurrency
	}
	c.Faults = strings.TrimSpace(c.Faults)
	if c.Faults == "off" {
		c.Faults = ""
	}
	return c
}

// Options expands the cell into the study options it runs with.
func (c Cell) Options() core.Options {
	c = c.normalize()
	return core.Options{
		Synth:            synth.Config{Seed: c.Seed, Scale: c.Scale},
		AnnotationSize:   c.Annotation,
		Workers:          c.Workers,
		CrawlConcurrency: c.CrawlConcurrency,
		Faults:           c.Faults,
	}
}

// String renders the cell compactly for logs and error ledgers. The
// faults segment appears only when set, so fault-free renderings stay
// byte-identical to the pre-faultx era.
func (c Cell) String() string {
	s := fmt.Sprintf("seed=%d scale=%g annotation=%d workers=%d crawl=%d",
		c.Seed, c.Scale, c.Annotation, c.Workers, c.CrawlConcurrency)
	if c.Faults != "" {
		s += fmt.Sprintf(" faults=%q", c.Faults)
	}
	return s
}

// Grid is the cross product of study parameter values. Empty
// dimensions collapse to the default value, so a grid only names the
// axes it actually varies.
type Grid struct {
	Seeds              []uint64  `json:"seeds,omitempty"`
	Scales             []float64 `json:"scales,omitempty"`
	Annotations        []int     `json:"annotations,omitempty"`
	Workers            []int     `json:"workers,omitempty"`
	CrawlConcurrencies []int     `json:"crawl_concurrencies,omitempty"`
	Faults             []string  `json:"faults,omitempty"`
}

// Cells expands the grid in deterministic plan order: scale outermost,
// then annotation, workers, crawl concurrency, fault profile, and
// seeds innermost — so the cells of one cross-seed group are adjacent
// in the plan.
func (g Grid) Cells() []Cell {
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	faults := g.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	scales := g.Scales
	if len(scales) == 0 {
		scales = []float64{0}
	}
	annotations := g.Annotations
	if len(annotations) == 0 {
		annotations = []int{0}
	}
	workers := g.Workers
	if len(workers) == 0 {
		workers = []int{0}
	}
	crawls := g.CrawlConcurrencies
	if len(crawls) == 0 {
		crawls = []int{0}
	}
	var cells []Cell
	for _, scale := range scales {
		for _, ann := range annotations {
			for _, w := range workers {
				for _, cc := range crawls {
					for _, f := range faults {
						for _, seed := range seeds {
							cells = append(cells, Cell{
								Seed: seed, Scale: scale, Annotation: ann,
								Workers: w, CrawlConcurrency: cc, Faults: f,
							}.normalize())
						}
					}
				}
			}
		}
	}
	return cells
}

// Preset names for Spec.Preset.
const (
	PresetCrossSeed   = "cross-seed-stability"
	PresetScale       = "scale-sensitivity"
	PresetConcurrency = "crawler-concurrency"
	PresetAdversarial = "adversarial-hosts"
)

// Presets lists the named scenario presets in display order.
func Presets() []string {
	return []string{PresetCrossSeed, PresetScale, PresetConcurrency, PresetAdversarial}
}

// adversaryLadder is the fault-intensity axis of the adversarial-hosts
// preset: the fault-free baseline, a retryable-only rate limiter (the
// artefacts must not move — only timings may), then increasing link
// rot, then rot plus two permanently dead hosts (the paper's oron
// story happening mid-study). The ladder measures detection recall vs
// adversary strength.
func adversaryLadder() []string {
	return []string{
		"",
		"ratelimit=*;failures=2;retry-after=1ms",
		"rot=0.15",
		"rot=0.3",
		"rot=0.3;down=oron.com,zippyshare.com",
	}
}

// Spec is the serializable description of a sweep: a named preset
// around base parameters, or an explicit grid. It is the POST /v1/sweep
// body and what cmd/ewsweep builds from its flags.
type Spec struct {
	// Preset selects a named scenario (empty with a Grid for a custom
	// sweep).
	Preset string `json:"preset,omitempty"`
	// Seeds is how many consecutive seeds a preset sweeps (default 5).
	Seeds int `json:"seeds,omitempty"`
	// Seed is the base seed (default 2019); preset seeds are
	// Seed, Seed+1, ... Seed+Seeds-1.
	Seed uint64 `json:"seed,omitempty"`
	// Scale, Annotation, Workers and CrawlConcurrency are the base cell
	// parameters presets hold fixed (zero = study default).
	Scale            float64 `json:"scale,omitempty"`
	Annotation       int     `json:"annotation_size,omitempty"`
	Workers          int     `json:"workers,omitempty"`
	CrawlConcurrency int     `json:"crawl_concurrency,omitempty"`
	// Faults is the base fault profile ("" = none) — held fixed by
	// presets other than adversarial-hosts, which sweeps its own fault
	// ladder instead.
	Faults string `json:"faults,omitempty"`
	// Grid, when set, overrides the preset entirely.
	Grid *Grid `json:"grid,omitempty"`
	// Parallelism bounds how many cells run at once (default 2).
	Parallelism int `json:"parallelism,omitempty"`
}

// Name returns the sweep's display name.
func (sp Spec) Name() string {
	if sp.Grid != nil {
		return "custom-grid"
	}
	if sp.Preset == "" {
		return "single"
	}
	return sp.Preset
}

// presetSeeds resolves the seed-axis length a preset plans: an
// explicit Seeds wins; otherwise the empty spec runs one cell, the
// scale ladder defaults to 3 seeds and the other presets to 5. Cells
// and CountCells both build on it, so the counted plan can never
// diverge from the materialized one on the seed axis.
func (sp Spec) presetSeeds() int {
	if sp.Seeds > 0 {
		return sp.Seeds
	}
	switch sp.Preset {
	case "":
		return 1
	case PresetScale, PresetAdversarial:
		return 3
	default:
		return 5
	}
}

// seedRange returns n consecutive seeds starting at base.
func seedRange(base uint64, n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}

// Cells expands the spec into its plan. An unknown preset is an error
// (the grid path never fails).
func (sp Spec) Cells() ([]Cell, error) {
	base := Cell{
		Seed: sp.Seed, Scale: sp.Scale, Annotation: sp.Annotation,
		Workers: sp.Workers, CrawlConcurrency: sp.CrawlConcurrency,
		Faults: sp.Faults,
	}.normalize()
	if sp.Grid != nil {
		g := *sp.Grid
		// The base cell fills the dimensions the grid leaves open; an
		// open seed axis still honours Seeds, so "-scales 0.01,0.02
		// -seeds 3" crosses the scales with three seeds.
		if len(g.Seeds) == 0 {
			n := sp.Seeds
			if n <= 0 {
				n = 1
			}
			g.Seeds = seedRange(base.Seed, n)
		}
		if len(g.Scales) == 0 {
			g.Scales = []float64{base.Scale}
		}
		if len(g.Annotations) == 0 {
			g.Annotations = []int{base.Annotation}
		}
		if len(g.Workers) == 0 {
			g.Workers = []int{base.Workers}
		}
		if len(g.CrawlConcurrencies) == 0 {
			g.CrawlConcurrencies = []int{base.CrawlConcurrency}
		}
		if len(g.Faults) == 0 {
			g.Faults = []string{base.Faults}
		}
		return g.Cells(), nil
	}
	seeds := sp.presetSeeds()
	switch sp.Preset {
	case "", PresetCrossSeed:
		// N worlds differing only in seed: the variance of every
		// artefact across them is the calibration claim, measured.
		return Grid{
			Seeds:       seedRange(base.Seed, seeds),
			Scales:      []float64{base.Scale},
			Annotations: []int{base.Annotation}, Workers: []int{base.Workers},
			CrawlConcurrencies: []int{base.CrawlConcurrency},
			Faults:             []string{base.Faults},
		}.Cells(), nil
	case PresetScale:
		// A scale ladder per seed: slopes of artefact-vs-scale separate
		// quantities that grow with the world from calibrated rates.
		return Grid{
			Seeds:       seedRange(base.Seed, seeds),
			Scales:      scaleLadder(base.Scale),
			Annotations: []int{base.Annotation}, Workers: []int{base.Workers},
			CrawlConcurrencies: []int{base.CrawlConcurrency},
			Faults:             []string{base.Faults},
		}.Cells(), nil
	case PresetConcurrency:
		// One world crawled at 1/2/4/8 crawler workers: artefacts must
		// not move (determinism under concurrency), only timings may.
		return Grid{
			Seeds:       seedRange(base.Seed, seeds),
			Scales:      []float64{base.Scale},
			Annotations: []int{base.Annotation}, Workers: []int{base.Workers},
			CrawlConcurrencies: []int{1, 2, 4, 8},
			Faults:             []string{base.Faults},
		}.Cells(), nil
	case PresetAdversarial:
		// Each seed's world crawled under the fault ladder: detection
		// recall (matches, unique images, proofs) vs adversary
		// strength, with the retryable-only rung pinning bit-identity.
		return Grid{
			Seeds:       seedRange(base.Seed, seeds),
			Scales:      []float64{base.Scale},
			Annotations: []int{base.Annotation}, Workers: []int{base.Workers},
			CrawlConcurrencies: []int{base.CrawlConcurrency},
			Faults:             adversaryLadder(),
		}.Cells(), nil
	default:
		return nil, fmt.Errorf("sweep: unknown preset %q (have %v)", sp.Preset, Presets())
	}
}

// CountCells returns the number of cells Cells would plan, without
// materializing them — so a service can bound a request's cost before
// paying the expansion (a spec is a few bytes of JSON but can plan
// billions of cells). The count saturates at math.MaxInt instead of
// overflowing. TestCountCellsMatchesCells pins it to len(Cells()).
func (sp Spec) CountCells() (int, error) {
	axis := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	if sp.Grid != nil {
		g := sp.Grid
		seeds := len(g.Seeds)
		if seeds == 0 {
			seeds = sp.Seeds
			if seeds <= 0 {
				seeds = 1
			}
		}
		return mulSat(seeds, axis(len(g.Scales)), axis(len(g.Annotations)),
			axis(len(g.Workers)), axis(len(g.CrawlConcurrencies)), axis(len(g.Faults))), nil
	}
	seeds := sp.presetSeeds()
	switch sp.Preset {
	case "", PresetCrossSeed:
		return seeds, nil
	case PresetScale:
		base := Cell{Seed: sp.Seed, Scale: sp.Scale}.normalize()
		return mulSat(seeds, len(scaleLadder(base.Scale))), nil
	case PresetConcurrency:
		return mulSat(seeds, 4), nil
	case PresetAdversarial:
		return mulSat(seeds, len(adversaryLadder())), nil
	default:
		return 0, fmt.Errorf("sweep: unknown preset %q (have %v)", sp.Preset, Presets())
	}
}

// mulSat multiplies positive factors, saturating at math.MaxInt.
func mulSat(factors ...int) int {
	n := 1
	for _, f := range factors {
		if f <= 0 {
			continue
		}
		if n > math.MaxInt/f {
			return math.MaxInt
		}
		n *= f
	}
	return n
}

// groupKey identifies a cross-seed group: every grid dimension except
// the seed.
type groupKey struct {
	Scale            float64
	Annotation       int
	Workers          int
	CrawlConcurrency int
	Faults           string
}

func (k groupKey) String() string {
	s := fmt.Sprintf("scale=%g annotation=%d workers=%d crawl=%d",
		k.Scale, k.Annotation, k.Workers, k.CrawlConcurrency)
	if k.Faults != "" {
		s += fmt.Sprintf(" faults=%q", k.Faults)
	}
	return s
}

// sortGroupKeys orders keys by (scale, annotation, workers, crawl,
// faults) so aggregate output is stable regardless of map iteration.
func sortGroupKeys(keys []groupKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Scale != b.Scale {
			return a.Scale < b.Scale
		}
		if a.Annotation != b.Annotation {
			return a.Annotation < b.Annotation
		}
		if a.Workers != b.Workers {
			return a.Workers < b.Workers
		}
		if a.CrawlConcurrency != b.CrawlConcurrency {
			return a.CrawlConcurrency < b.CrawlConcurrency
		}
		return a.Faults < b.Faults
	})
}

// scaleLadder builds the scale-sensitivity ladder around a base scale:
// half, base, 1.5× and 2×, with rungs outside the sane range dropped.
// The base scale itself always survives — a fully-clamped ladder must
// still sweep the scale that was asked for, never silently substitute
// the default.
func scaleLadder(base float64) []float64 {
	ladder := []float64{base / 2, base, base * 1.5, base * 2}
	out := ladder[:0]
	for _, s := range ladder {
		if s == base || (s >= 0.005 && s <= 1.0) {
			out = append(out, s)
		}
	}
	return out
}
