package report

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSectionsCoverFull pins Full as the concatenation of every
// section: no renderer may exist outside the section table.
func TestSectionsCoverFull(t *testing.T) {
	r := res(t)
	var sb strings.Builder
	for i, sec := range Sections() {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(sec.Render(r))
	}
	if sb.String() != Full(r) {
		t.Fatal("Full is not the join of Sections")
	}
}

// TestRenderPartial renders a selection and checks that only the
// requested sections appear.
func TestRenderPartial(t *testing.T) {
	out, err := Render(res(t), "table5", "figure2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 5", "Figure 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("partial report missing %q", want)
		}
	}
	for _, not := range []string{"Table 1", "Table 6", "Earnings (§5)", "Figure 3", "Table 8"} {
		if strings.Contains(out, not) {
			t.Errorf("partial report leaked %q", not)
		}
	}
}

// TestResolveSelection covers the three name forms: section names,
// artefact names (expanding to all their sections) and aliases.
func TestResolveSelection(t *testing.T) {
	secs, arts, err := Resolve("table5", "figure2")
	if err != nil {
		t.Fatal(err)
	}
	if got := sectionNames(secs); !reflect.DeepEqual(got, []string{"table5", "figure2"}) {
		t.Fatalf("sections = %v", got)
	}
	if !reflect.DeepEqual(arts, []string{core.ArtefactProvenance, core.ArtefactEarnings}) {
		t.Fatalf("artefacts = %v", arts)
	}

	// An artefact name selects every section it produces.
	secs, arts, err = Resolve("actors")
	if err != nil {
		t.Fatal(err)
	}
	if got := sectionNames(secs); !reflect.DeepEqual(got, []string{"table8", "figure4", "table9", "table10", "figure5"}) {
		t.Fatalf("actors sections = %v", got)
	}
	if !reflect.DeepEqual(arts, []string{core.ArtefactActors}) {
		t.Fatalf("actors artefacts = %v", arts)
	}

	// Empty input selects everything.
	secs, arts, err = Resolve()
	if err != nil || len(secs) != len(Sections()) || len(arts) != len(core.Artefacts()) {
		t.Fatalf("empty resolve: %d sections, %d artefacts, %v", len(secs), len(arts), err)
	}

	if _, _, err := Resolve("table99"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := Render(res(t), "nope"); err == nil {
		t.Fatal("Render accepted an unknown name")
	}
}

func sectionNames(secs []Section) []string {
	out := make([]string, len(secs))
	for i, s := range secs {
		out[i] = s.Name
	}
	return out
}
