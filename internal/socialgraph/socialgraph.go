// Package socialgraph implements §6.1's social-network construction
// and metrics: "we built a network from the public conversations of
// members in the forum, i.e. who responded to whom in the threads. We
// consider actor A has responded to actor B if either A explicitly
// quotes a post made by B in a reply or if A directly posts a reply in
// a thread initiated by B, without quoting any other post." Nodes are
// actors, edges are interactions weighted by the number of responses.
//
// On top of the graph the package computes the paper's metrics:
// eigenvector centrality (influence) via power iteration, and the
// popularity indices (H-index and i-10/i-50/i-100 over replies to
// threads an actor started).
package socialgraph

import (
	"math"
	"sort"

	"repro/internal/forum"
)

// Graph is a weighted directed interaction graph over forum actors.
type Graph struct {
	index  map[forum.ActorID]int
	actors []forum.ActorID
	// out[i][j] = number of responses actor i made to actor j.
	out []map[int]float64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[forum.ActorID]int)}
}

// node returns (creating if needed) the dense index of an actor.
func (g *Graph) node(a forum.ActorID) int {
	if i, ok := g.index[a]; ok {
		return i
	}
	i := len(g.actors)
	g.index[a] = i
	g.actors = append(g.actors, a)
	g.out = append(g.out, make(map[int]float64))
	return i
}

// AddResponse records that a responded to b. Both actors become nodes;
// self-responses add no edge (quoting yourself is not an interaction).
func (g *Graph) AddResponse(a, b forum.ActorID) {
	ai := g.node(a)
	bi := g.node(b)
	if a == b {
		return
	}
	g.out[ai][bi]++
}

// NumActors returns the number of nodes.
func (g *Graph) NumActors() int { return len(g.actors) }

// NumEdges returns the number of distinct directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, m := range g.out {
		n += len(m)
	}
	return n
}

// Weight returns the response count from a to b.
func (g *Graph) Weight(a, b forum.ActorID) float64 {
	ai, ok := g.index[a]
	if !ok {
		return 0
	}
	bi, ok := g.index[b]
	if !ok {
		return 0
	}
	return g.out[ai][bi]
}

// Actors returns all node actor IDs in insertion order.
func (g *Graph) Actors() []forum.ActorID {
	out := make([]forum.ActorID, len(g.actors))
	copy(out, g.actors)
	return out
}

// Build constructs the interaction graph from the given threads using
// the paper's response rule.
func Build(store *forum.Store, threads []forum.ThreadID) *Graph {
	g := NewGraph()
	for _, tid := range threads {
		posts := store.PostsInThread(tid)
		if len(posts) == 0 {
			continue
		}
		starter := posts[0].Author
		g.node(starter) // thread authors are nodes even with no replies
		for _, p := range posts[1:] {
			target := starter
			if p.Quotes != 0 {
				target = store.Post(p.Quotes).Author
			}
			g.AddResponse(p.Author, target)
		}
	}
	return g
}

// EigenvectorCentrality computes eigenvector centrality by power
// iteration on the symmetrised weight matrix (an interaction binds
// both endpoints). The result is normalised to max = 1. maxIter and
// tol bound the iteration (100 and 1e-9 if non-positive).
func (g *Graph) EigenvectorCentrality(maxIter int, tol float64) map[forum.ActorID]float64 {
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-9
	}
	n := len(g.actors)
	result := make(map[forum.ActorID]float64, n)
	if n == 0 {
		return result
	}
	// Symmetrise: w[i][j] = out[i][j] + out[j][i].
	sym := make([]map[int]float64, n)
	for i := range sym {
		sym[i] = make(map[int]float64)
	}
	for i, m := range g.out {
		for j, w := range m {
			sym[i][j] += w
			sym[j][i] += w
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for i := range sym {
			xi := x[i]
			if xi == 0 {
				continue
			}
			for j, w := range sym[i] {
				next[j] += w * xi
			}
		}
		norm := 0.0
		for _, v := range next {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		diff := 0.0
		for i := range next {
			next[i] /= norm
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < tol {
			break
		}
	}
	max := 0.0
	for _, v := range x {
		if v > max {
			max = v
		}
	}
	for i, a := range g.actors {
		if max > 0 {
			result[a] = x[i] / max
		} else {
			result[a] = 0
		}
	}
	return result
}

// Popularity holds the reply-based popularity indices of one actor.
type Popularity struct {
	// H is the H-index: the actor has H threads with at least H
	// replies each.
	H int
	// I10, I50 and I100 count threads with at least 10, 50 and 100
	// replies.
	I10, I50, I100 int
	// Threads is the number of threads the actor started (within the
	// analysed set).
	Threads int
}

// HIndex computes the H-index of a reply-count list.
func HIndex(replyCounts []int) int {
	sorted := make([]int, len(replyCounts))
	copy(sorted, replyCounts)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	h := 0
	for i, c := range sorted {
		if c >= i+1 {
			h = i + 1
		} else {
			break
		}
	}
	return h
}

// ComputePopularity derives each thread starter's popularity metrics
// over the given threads.
func ComputePopularity(store *forum.Store, threads []forum.ThreadID) map[forum.ActorID]Popularity {
	replies := make(map[forum.ActorID][]int)
	for _, tid := range threads {
		th := store.Thread(tid)
		replies[th.Author] = append(replies[th.Author], store.NumReplies(tid))
	}
	out := make(map[forum.ActorID]Popularity, len(replies))
	for a, counts := range replies {
		p := Popularity{H: HIndex(counts), Threads: len(counts)}
		for _, c := range counts {
			if c >= 10 {
				p.I10++
			}
			if c >= 50 {
				p.I50++
			}
			if c >= 100 {
				p.I100++
			}
		}
		out[a] = p
	}
	return out
}

// TopByCentrality returns the k actors with the highest centrality,
// descending (ties by actor ID for determinism).
func TopByCentrality(c map[forum.ActorID]float64, k int) []forum.ActorID {
	type pair struct {
		a forum.ActorID
		v float64
	}
	pairs := make([]pair, 0, len(c))
	for a, v := range c {
		pairs = append(pairs, pair{a, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].a < pairs[j].a
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([]forum.ActorID, k)
	for i := 0; i < k; i++ {
		out[i] = pairs[i].a
	}
	return out
}
