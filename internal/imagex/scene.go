package imagex

import (
	"repro/internal/randx"
)

// Scene generators. Every generator is deterministic in its seed, so
// the same (model, pose) always yields the same pixels — which is what
// makes duplicate detection and reverse-image-search meaningful: a
// pack image copied from an origin site is byte-identical unless the
// actor transformed it.

// Pose describes how much skin a model image shows. The paper's packs
// "contain images from the same (or visually similar) model at the
// various steps of a 'fake' encounter, including dressed, nude and
// sexual images".
type Pose int

// Pose values, in ascending explicitness.
const (
	PoseDressed Pose = iota
	PosePartial
	PoseNude
)

// String names the pose.
func (p Pose) String() string {
	switch p {
	case PoseDressed:
		return "dressed"
	case PosePartial:
		return "partial"
	case PoseNude:
		return "nude"
	default:
		return "unknown"
	}
}

// GenModel renders a synthetic "model photo". modelSeed fixes the
// model's appearance (background, build, framing); variant perturbs
// the pose within the same shoot. Deterministic in (modelSeed,
// variant, pose, size).
func GenModel(modelSeed uint64, variant int, pose Pose, size int) *Image {
	rng := randx.New(modelSeed ^ uint64(variant)*0x9e3779b97f4a7c15 ^ uint64(pose)<<56)
	im := New(size, size, 0)

	// Background: a texture clearly outside the skin band. Half the
	// shoots use a bright studio backdrop, half a dark room.
	var bg byte
	if rng.Bool(0.5) {
		bg = byte(200 + rng.Intn(40))
	} else {
		bg = byte(60 + rng.Intn(50))
	}
	im.FillRect(rng, 0, 0, size, size, bg, 8)

	// Body: an ellipse of skin-band pixels. The pose controls how much
	// of the frame the body fills and how much clothing covers it.
	cx := size/2 + rng.Intn(size/6) - size/12
	cy := size/2 + rng.Intn(size/6) - size/12
	var bodyScale float64
	switch pose {
	case PoseNude:
		bodyScale = 0.36 + 0.10*rng.Float64()
	case PosePartial:
		bodyScale = 0.28 + 0.08*rng.Float64()
	default:
		bodyScale = 0.24 + 0.08*rng.Float64()
	}
	rx := int(bodyScale * float64(size))
	ry := int((bodyScale + 0.08) * float64(size))
	skin := byte(SkinLo + 10 + rng.Intn(SkinHi-SkinLo-20))
	im.FillEllipse(rng, cx, cy, rx, ry, skin, 9)

	// Head above the body, also skin.
	headR := rx / 2
	if headR < 2 {
		headR = 2
	}
	im.FillEllipse(rng, cx, cy-ry-headR/2, headR, headR, skin, 8)

	// Clothing covers part of the torso for non-nude poses with a
	// non-skin value, shrinking the measured skin fraction.
	if pose != PoseNude {
		cover := 0.8
		if pose == PosePartial {
			cover = 0.45
		}
		top := cy - int(float64(ry)*(cover-0.5))
		cloth := byte(80 + rng.Intn(40))
		im.FillRect(rng, cx-rx, top, cx+rx+1, cy+ry+1, cloth, 10)
	}
	return im
}

// GenCasualPerson renders an everyday photo of a person at a distance:
// fully clothed, small in the frame, most pixels background. Such
// images carry a little skin but must score far below the NSFV
// classifier's 0.01 SFV threshold, as everyday photos do under
// OpenNSFW.
func GenCasualPerson(seed uint64, size int) *Image {
	rng := randx.New(seed)
	im := New(size, size, 0)
	var bg byte
	if rng.Bool(0.5) {
		bg = byte(195 + rng.Intn(45))
	} else {
		bg = byte(50 + rng.Intn(60))
	}
	im.FillRect(rng, 0, 0, size, size, bg, 10)
	scale := 0.08 + 0.04*rng.Float64()
	rx := int(scale * float64(size))
	if rx < 2 {
		rx = 2
	}
	ry := rx + rx/2 + 1
	cx := size/4 + rng.Intn(size/2)
	cy := size/2 + rng.Intn(size/4)
	// Clothed body (non-skin), with only the head in the skin band.
	cloth := byte(80 + rng.Intn(40))
	im.FillEllipse(rng, cx, cy, rx, ry, cloth, 8)
	skin := byte(SkinLo + 12 + rng.Intn(SkinHi-SkinLo-24))
	headR := rx / 2
	if headR < 1 {
		headR = 1
	}
	im.FillEllipse(rng, cx, cy-ry-headR, headR, headR, skin, 6)
	return im
}

// GenScreenshot renders a text screenshot (payment dashboard, chat
// log, directory listing): a bright background with glyph-rendered
// lines. Lines that do not fit are clipped.
func GenScreenshot(seed uint64, lines []string, w, h int) *Image {
	rng := randx.New(seed)
	im := New(w, h, 0)
	im.FillRect(rng, 0, 0, w, h, byte(228+rng.Intn(20)), 4)
	y := 2
	for _, line := range lines {
		if y+GlyphH >= h {
			break
		}
		im.DrawText(2, y, 1, line)
		y += LineHeight(1)
	}
	return im
}

// GenLandscape renders a non-model, non-text image (scenery, game
// screenshot). If skinLike is true, one horizontal band uses
// skin-band values — the sand/wood texture case that produces the
// NSFV classifier's false positives ("not containing nudity ...
// containing colours or textures resembling the human body").
func GenLandscape(seed uint64, size int, skinLike bool) *Image {
	rng := randx.New(seed)
	im := New(size, size, 0)
	bands := 3 + rng.Intn(3)
	y := 0
	for b := 0; b < bands; b++ {
		bh := size / bands
		if b == bands-1 {
			bh = size - y
		}
		var v byte
		if skinLike && b == bands-1 {
			v = byte(SkinLo + 5 + rng.Intn(SkinHi-SkinLo-10))
		} else {
			// Outside the skin band: sky/water (bright) or foliage (dark).
			if rng.Bool(0.5) {
				v = byte(190 + rng.Intn(60))
			} else {
				v = byte(40 + rng.Intn(80))
			}
		}
		im.FillRect(rng, 0, y, size, y+bh, v, 12)
		y += bh
	}
	return im
}

// GenErrorBanner renders a hosting-site error/takedown image ("This
// image violates our Terms of Use..."), which the crawler does
// download and the NSFV classifier must route to SFV.
func GenErrorBanner(seed uint64, message string, w, h int) *Image {
	rng := randx.New(seed)
	im := New(w, h, 0)
	im.FillRect(rng, 0, 0, w, h, 245, 2)
	im.FillRect(rng, 0, 0, w, LineHeight(1)+4, 120, 4)
	im.DrawText(2, h/2-GlyphH/2, 1, message)
	return im
}

// GenThumbnailGrid renders a "screenshot showing the directories of
// the packs, including image thumbnails": small model thumbnails over
// a file-listing background with text labels. These mix skin pixels
// and text, exercising the middle branches of Algorithm 1.
func GenThumbnailGrid(seed uint64, modelSeed uint64, w, h int) *Image {
	rng := randx.New(seed)
	im := New(w, h, 0)
	im.FillRect(rng, 0, 0, w, h, 240, 3)
	thumb := GenModel(modelSeed, 0, PoseDressed, 16)
	cols := w / 24
	if cols < 1 {
		cols = 1
	}
	for i := 0; i < cols; i++ {
		x0 := 2 + i*24
		for ty := 0; ty < thumb.H; ty++ {
			for tx := 0; tx < thumb.W; tx++ {
				im.Set(x0+tx, 2+ty, thumb.At(tx, ty))
			}
		}
		im.DrawText(x0, 20, 1, "IMG")
	}
	// File listing below the thumbnails: a directory screenshot is
	// text-rich, so OCR routes it to Safe-For-Viewing, as the paper's
	// directory screenshots were.
	y := 30
	im.DrawText(2, y, 1, "PACK CONTENTS: 120 FILES")
	y += LineHeight(1)
	for i := 1; y+GlyphH < h; i++ {
		size := 30 + (int(seed)+i*37)%60
		im.DrawText(2, y, 1, "0"+string(rune('0'+i%10))+".SIMG "+string(rune('0'+size/10))+string(rune('0'+size%10))+" KB JPG OK")
		y += LineHeight(1)
	}
	return im
}
