package tracex

import "context"

// scope is what travels in a context: the tracer plus the current
// span's identity. One value (instead of two keys) keeps StartSpan at
// a single context lookup and WithValue allocation per hop.
type scope struct {
	t  *Tracer
	sc SpanContext
}

// ctxKey is private so only this package can bind or read the scope.
type ctxKey struct{}

// NewContext binds a tracer to the context. Spans started under the
// returned context form new traces until a parent span or remote
// context is adopted. A nil tracer returns ctx unchanged, keeping the
// disabled path allocation-free.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, scope{t: t})
}

// FromContext returns the tracer bound to ctx, or nil.
func FromContext(ctx context.Context) *Tracer {
	if s, ok := ctx.Value(ctxKey{}).(scope); ok {
		return s.t
	}
	return nil
}

// SpanContextFromContext returns the current span's identity (zero if
// no span is open in ctx).
func SpanContextFromContext(ctx context.Context) SpanContext {
	if s, ok := ctx.Value(ctxKey{}).(scope); ok {
		return s.sc
	}
	return SpanContext{}
}

// WithRemote adopts a span context that arrived from another process
// (or another goroutine's span): spans started under the returned
// context join sc's trace as its children. No-op when ctx carries no
// tracer or sc is invalid.
func WithRemote(ctx context.Context, sc SpanContext) context.Context {
	s, ok := ctx.Value(ctxKey{}).(scope)
	if !ok || s.t == nil || !sc.IsValid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, scope{t: s.t, sc: sc})
}

// StartSpan opens a span as a child of the span current in ctx (a new
// trace root if none) and returns a context carrying the new span as
// current. When ctx has no tracer it returns (ctx, nil) — one context
// lookup, zero allocations — and the nil *Span absorbs SetAttr/End,
// so callers never branch on whether tracing is on.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s, ok := ctx.Value(ctxKey{}).(scope)
	if !ok || s.t == nil {
		return ctx, nil
	}
	sp := s.t.startSpan(s.sc, name)
	return context.WithValue(ctx, ctxKey{}, scope{t: s.t, sc: sp.sc}), sp
}
