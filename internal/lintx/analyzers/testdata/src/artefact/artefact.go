// Package artefact is the fixture double of the real artefact graph:
// the memokey analyzer matches Node composite literals by package and
// type name, so this stub carries the same Key field shape.
package artefact

type Deps map[string]any

type Node[S any] struct {
	Name    string
	Deps    []string
	Key     func(S) string
	Compute func(S, Deps) (any, error)
}
