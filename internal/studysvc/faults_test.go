package studysvc

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestFaultedRequestDegradesEnvelope pins the service half of the
// degradation contract: a /v1/study request whose fault profile kills
// every crawl host completes as StatusDone with degraded=true — never
// a 500 — and its report carries the per-host ledger.
func TestFaultedRequestDegradesEnvelope(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()

	baseline, err := c.Run(ctx, tinyRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Degraded || baseline.Summary == nil || baseline.Summary.CrawlTasks == 0 {
		t.Fatalf("baseline envelope unusable: degraded=%v summary=%+v", baseline.Degraded, baseline.Summary)
	}

	req := tinyRequest(3)
	req.Faults = "down=*"
	env, err := c.Run(ctx, req)
	if err != nil {
		t.Fatalf("dead-substrate study failed instead of degrading: %v", err)
	}
	if env.Status != StatusDone {
		t.Fatalf("status = %s (%s), want done", env.Status, env.Error)
	}
	if !env.Degraded {
		t.Fatal("envelope not marked degraded")
	}
	if env.Cached || env.ID == baseline.ID {
		t.Fatal("faulted request shared the fault-free run's cache entry")
	}
	if env.Options.Faults != "down=*" {
		t.Fatalf("canonical faults = %q", env.Options.Faults)
	}
	if env.Summary.CrawlErrorRate != 100 {
		t.Fatalf("crawl_error_rate = %g, want 100 (every host down)", env.Summary.CrawlErrorRate)
	}
	if !strings.Contains(env.Report, "DEGRADED") {
		t.Error("report does not surface the degradation ledger")
	}
}

// TestRetryableFaultsMatchFaultFreeSummary: the tentpole equivalence,
// observed through the service — a retryable-only profile yields the
// same summary as the fault-free request, under a different cache key.
func TestRetryableFaultsMatchFaultFreeSummary(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()

	baseline, err := c.Run(ctx, tinyRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	req := tinyRequest(5)
	req.Faults = "failures=2;retry-after=1ms;ratelimit=*"
	env, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if env.Degraded {
		t.Error("retryable-only profile marked degraded")
	}
	if env.Cached {
		t.Error("faulted request must not share the fault-free cache entry")
	}
	if *env.Summary != *baseline.Summary {
		t.Errorf("summaries differ:\nfaulted:  %+v\nbaseline: %+v", *env.Summary, *baseline.Summary)
	}
	if env.Report != baseline.Report {
		t.Error("retryable-only report differs from fault-free report")
	}
}

// TestRejectsBadFaultProfile: an unparseable profile is a 400 at the
// API boundary, before any run starts.
func TestRejectsBadFaultProfile(t *testing.T) {
	svc, c := newTestService(t, Config{})
	req := tinyRequest(3)
	req.Faults = "explode=yes"
	_, err := c.Run(context.Background(), req)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != 400 {
		t.Fatalf("err = %v, want HTTP 400", err)
	}
	if st := svc.Stats(); st.RunsStarted != 0 {
		t.Fatalf("invalid profile still started %d runs", st.RunsStarted)
	}
}

// TestOffFaultsShareFaultFreeKey: "" and "off" canonicalize to the
// same cache entry, so the faults field never splits the fault-free
// key space.
func TestOffFaultsShareFaultFreeKey(t *testing.T) {
	svc, c := newTestService(t, Config{})
	ctx := context.Background()
	first, err := c.Run(ctx, tinyRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	req := tinyRequest(3)
	req.Faults = "off"
	second, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.ID != first.ID {
		t.Fatalf("faults=off did not share the fault-free entry (cached=%v)", second.Cached)
	}
	if st := svc.Stats(); st.RunsStarted != 1 {
		t.Fatalf("runs started = %d, want 1", st.RunsStarted)
	}
}
