package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// tinyCells returns a small cross-seed plan that runs fast.
func tinyCells(seeds int) []Cell {
	g := Grid{
		Seeds:  seedRange(2019, seeds),
		Scales: []float64{0.01}, Annotations: []int{200},
	}
	return g.Cells()
}

// TestCountCellsMatchesCells pins the pre-expansion plan count to the
// materialized plan across presets, sparse grids and the default spec
// — the service's cell limit is enforced on CountCells, so the two
// must never diverge.
func TestCountCellsMatchesCells(t *testing.T) {
	specs := []Spec{
		{},
		{Seeds: 4},
		{Preset: PresetCrossSeed},
		{Preset: PresetCrossSeed, Seeds: 7},
		{Preset: PresetScale},
		{Preset: PresetScale, Seeds: 2, Scale: 0.01},
		{Preset: PresetScale, Scale: 0.9},
		{Preset: PresetConcurrency, Seeds: 2},
		{Preset: PresetAdversarial},
		{Preset: PresetAdversarial, Seeds: 2},
		{Grid: &Grid{Scales: []float64{0.01, 0.02}}, Seeds: 3},
		{Grid: &Grid{Faults: []string{"", "rot=0.3"}}, Seeds: 2},
		{Grid: &Grid{Seeds: []uint64{1, 2}, Annotations: []int{100, 200}, Workers: []int{0, 2}}},
		{Grid: &Grid{CrawlConcurrencies: []int{1, 2, 4}}},
	}
	for _, sp := range specs {
		cells, err := sp.Cells()
		if err != nil {
			t.Fatalf("%+v: Cells: %v", sp, err)
		}
		n, err := sp.CountCells()
		if err != nil {
			t.Fatalf("%+v: CountCells: %v", sp, err)
		}
		if n != len(cells) {
			t.Fatalf("%+v: CountCells = %d, len(Cells) = %d", sp, n, len(cells))
		}
	}
	if _, err := (Spec{Preset: "bogus"}).CountCells(); err == nil {
		t.Fatal("unknown preset counted without error")
	}
	// A huge plan counts (saturating) without materializing.
	if n, err := (Spec{Preset: PresetCrossSeed, Seeds: 2_000_000_000}).CountCells(); err != nil || n != 2_000_000_000 {
		t.Fatalf("huge plan: n=%d err=%v", n, err)
	}
}

// TestSweepDeterministic pins the satellite requirement: two identical
// sweeps — same grid, same per-cell seeds — produce DeepEqual
// aggregates, even at different parallelism (so completion order
// provably does not leak into the fold).
func TestSweepDeterministic(t *testing.T) {
	cells := tinyCells(3)
	ctx := context.Background()
	a := Run(ctx, "det", cells, Local{}, Options{Parallelism: 3})
	b := Run(ctx, "det", cells, Local{}, Options{Parallelism: 1})
	if len(a.Errors) != 0 || len(b.Errors) != 0 {
		t.Fatalf("unexpected errors: %v / %v", a.Errors, b.Errors)
	}
	if !reflect.DeepEqual(a.Aggregate, b.Aggregate) {
		t.Fatalf("aggregates differ between identical sweeps:\n%+v\nvs\n%+v", a.Aggregate, b.Aggregate)
	}
	for i := range a.Cells {
		if !reflect.DeepEqual(a.Cells[i].Summary, b.Cells[i].Summary) {
			t.Fatalf("cell %d summary differs between identical sweeps", i)
		}
	}
}

// TestOneCellSweepMatchesDirectRun pins a 1-cell sweep to the direct
// Study.Run path bit-for-bit.
func TestOneCellSweepMatchesDirectRun(t *testing.T) {
	cells := tinyCells(1)
	ctx := context.Background()

	direct := core.NewStudy(cells[0].Options())
	res, err := direct.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := Summarize(res)

	sw := Run(ctx, "one", cells, Local{}, Options{})
	if len(sw.Errors) != 0 {
		t.Fatalf("sweep errors: %v", sw.Errors)
	}
	if got := sw.Cells[0].Summary; !reflect.DeepEqual(*got, want) {
		t.Fatalf("1-cell sweep summary differs from direct run:\n%+v\nvs\n%+v", *got, want)
	}
	// The aggregate of one cell is its values with degenerate intervals.
	g := sw.Aggregate.Groups[0]
	for _, a := range g.Artefacts {
		if a.N != 1 || a.CILow != a.Mean || a.CIHigh != a.Mean {
			t.Fatalf("1-cell aggregate %s not degenerate: %+v", a.Name, a)
		}
	}
}

// stubBackend computes summaries as a pure function of the cell, so
// engine behaviour can be tested without running studies.
type stubBackend struct {
	fail  func(c Cell) error
	calls atomic.Int64
}

func (s *stubBackend) RunCell(ctx context.Context, c Cell) (CellResult, error) {
	s.calls.Add(1)
	if err := ctx.Err(); err != nil {
		return CellResult{}, err
	}
	if s.fail != nil {
		if err := s.fail(c); err != nil {
			return CellResult{}, err
		}
	}
	sum := Summary{
		// Linear in scale with seed jitter: slopes are recoverable.
		EWhoringThreads: int(10000*c.Scale) + int(c.Seed%3),
		TOPs:            int(1000 * c.Scale),
		F1:              0.9,
	}
	return CellResult{Summary: sum, Elapsed: time.Millisecond}, nil
}

// TestFailSoftLedger: one failing cell lands in the ledger, the others
// still run and aggregate.
func TestFailSoftLedger(t *testing.T) {
	backend := &stubBackend{fail: func(c Cell) error {
		if c.Seed == 2020 {
			return errors.New("boom")
		}
		return nil
	}}
	cells := tinyCells(3)
	res := Run(context.Background(), "ledger", cells, backend, Options{Parallelism: 2})
	if got := backend.calls.Load(); got != 3 {
		t.Fatalf("backend ran %d cells, want 3 (fail-soft must not stop the sweep)", got)
	}
	if len(res.Errors) != 1 || res.Errors[0].Cell.Seed != 2020 || res.Errors[0].Err != "boom" {
		t.Fatalf("ledger = %+v, want one entry for seed 2020", res.Errors)
	}
	if res.OK() != 2 {
		t.Fatalf("OK() = %d, want 2", res.OK())
	}
	g := res.Aggregate.Groups[0]
	if len(g.Seeds) != 2 {
		t.Fatalf("aggregate folded %v seeds, want the 2 successful ones", g.Seeds)
	}
	for _, s := range g.Seeds {
		if s == 2020 {
			t.Fatal("failed cell leaked into the aggregate")
		}
	}
}

// TestCancellationStopsScheduling: cancelling the context marks
// unscheduled cells as not run instead of hanging.
func TestCancellationStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(ctx, "cancel", tinyCells(4), &stubBackend{}, Options{Parallelism: 1})
	if len(res.Errors) != 4 {
		t.Fatalf("cancelled sweep ran %d cells, want 0 (errors: %d)", res.OK(), len(res.Errors))
	}
}

// TestScaleSlopes recovers a linear artefact-vs-scale relationship
// from the scale-sensitivity shape.
func TestScaleSlopes(t *testing.T) {
	g := Grid{
		Seeds:  seedRange(1, 3),
		Scales: []float64{0.01, 0.02, 0.04},
	}
	res := Run(context.Background(), "slopes", g.Cells(), &stubBackend{}, Options{Parallelism: 4})
	if len(res.Aggregate.Groups) != 3 {
		t.Fatalf("got %d groups, want 3 (one per scale)", len(res.Aggregate.Groups))
	}
	var tops *Slope
	for i, s := range res.Aggregate.Slopes {
		if s.Name == "tops" {
			tops = &res.Aggregate.Slopes[i]
		}
	}
	if tops == nil {
		t.Fatal("no slope for tops")
	}
	// TOPs = 1000*scale exactly (int truncation is exact at these
	// scales): slope 1000, perfect fit.
	if tops.Slope < 990 || tops.Slope > 1010 || tops.R2 < 0.999 {
		t.Fatalf("tops slope = %+v, want ~1000 with R2~1", *tops)
	}
}

// TestPresetPlans pins each preset's plan shape.
func TestPresetPlans(t *testing.T) {
	cases := []struct {
		spec  Spec
		cells int
		check func(t *testing.T, cells []Cell)
	}{
		{Spec{Preset: PresetCrossSeed, Seeds: 10, Scale: 0.05}, 10, func(t *testing.T, cells []Cell) {
			seen := map[uint64]bool{}
			for _, c := range cells {
				if c.Scale != 0.05 {
					t.Fatalf("cross-seed cell at scale %g", c.Scale)
				}
				seen[c.Seed] = true
			}
			if len(seen) != 10 {
				t.Fatalf("%d distinct seeds, want 10", len(seen))
			}
		}},
		{Spec{Preset: PresetScale, Scale: 0.02}, 3 * 4, func(t *testing.T, cells []Cell) {
			scales := map[float64]bool{}
			for _, c := range cells {
				scales[c.Scale] = true
			}
			if len(scales) != 4 {
				t.Fatalf("%d distinct scales, want 4", len(scales))
			}
		}},
		{Spec{Preset: PresetConcurrency, Seeds: 2}, 2 * 4, func(t *testing.T, cells []Cell) {
			crawls := map[int]bool{}
			for _, c := range cells {
				crawls[c.CrawlConcurrency] = true
			}
			if !crawls[1] || !crawls[2] || !crawls[4] || !crawls[8] {
				t.Fatalf("crawl ladder wrong: %v", crawls)
			}
		}},
		{Spec{Preset: PresetAdversarial, Seeds: 2}, 2 * 5, func(t *testing.T, cells []Cell) {
			profiles := map[string]bool{}
			for _, c := range cells {
				profiles[c.Faults] = true
			}
			if len(profiles) != 5 || !profiles[""] {
				t.Fatalf("adversary ladder wrong: %v", profiles)
			}
			ok := false
			for p := range profiles {
				if strings.Contains(p, "down=") {
					ok = true
				}
			}
			if !ok {
				t.Fatal("adversary ladder has no dead-host rung")
			}
		}},
		{Spec{}, 1, nil},
	}
	for _, tc := range cases {
		cells, err := tc.spec.Cells()
		if err != nil {
			t.Fatalf("%+v: %v", tc.spec, err)
		}
		if len(cells) != tc.cells {
			t.Fatalf("%s plans %d cells, want %d", tc.spec.Name(), len(cells), tc.cells)
		}
		if tc.check != nil {
			tc.check(t, cells)
		}
	}
	if _, err := (Spec{Preset: "nope"}).Cells(); err == nil {
		t.Fatal("unknown preset did not error")
	}

	// A custom grid with an open seed axis still honours Seeds: two
	// scales × three seeds.
	cells, err := (Spec{Seeds: 3, Grid: &Grid{Scales: []float64{0.01, 0.02}}}).Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("grid with Seeds=3 plans %d cells, want 6", len(cells))
	}

	// A scale so small every other ladder rung is clamped still sweeps
	// the scale that was asked for — never the default.
	cells, err = (Spec{Preset: PresetScale, Seeds: 1, Scale: 0.002}).Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Scale != 0.002 {
		t.Fatalf("clamped ladder cells = %+v, want the base scale only", cells)
	}
}

// TestCellNormalizeMatchesCoreDefaults keeps cell identity in sync
// with the study's own defaulting.
func TestCellNormalizeMatchesCoreDefaults(t *testing.T) {
	def := core.DefaultOptions()
	c := Cell{}.normalize()
	if c.Seed != def.Synth.Seed || c.Scale != def.Synth.Scale ||
		c.Annotation != def.AnnotationSize || c.CrawlConcurrency != def.CrawlConcurrency {
		t.Fatalf("normalized zero cell %+v does not match core defaults %+v", c, def)
	}
}

// TestArtefactsCoverPaperValues: every paper reference must name an
// artefact the summary actually produces.
func TestArtefactsCoverPaperValues(t *testing.T) {
	names := map[string]bool{}
	for _, a := range (Summary{}).Artefacts() {
		names[a.Name] = true
	}
	for _, p := range PaperValues() {
		if !names[p.Name] {
			t.Errorf("paper value %q has no matching artefact", p.Name)
		}
	}
}

// TestOnCellObservesEveryOutcome: the progress hook fires once per
// cell with a monotonically increasing done counter.
func TestOnCellObservesEveryOutcome(t *testing.T) {
	var seen []int
	Run(context.Background(), "hook", tinyCells(3), &stubBackend{}, Options{
		Parallelism: 2,
		OnCell: func(done, total int, o Outcome) {
			if total != 3 {
				t.Errorf("total = %d, want 3", total)
			}
			seen = append(seen, done)
		},
	})
	if fmt.Sprint(seen) != "[1 2 3]" {
		t.Fatalf("done sequence %v, want [1 2 3]", seen)
	}
}
