// Package ml implements the machine-learning layer of the TOP
// classifier: a linear support vector machine trained with
// Pegasos-style stochastic subgradient descent on the hinge loss, plus
// the information-retrieval metrics the paper evaluates with
// ("precision, recall, and F1 score"). The paper uses Linear-SVM
// "since it offered the best results in previous experimentation with
// our dataset".
package ml

import (
	"errors"
	"math"

	"repro/internal/randx"
	"repro/internal/textproc"
)

// Example is one labelled training instance.
type Example struct {
	X SparseVec
	Y bool // positive class (e.g. "thread offers a pack")
}

// SparseVec aliases the textproc sparse vector so callers do not import
// two vector types.
type SparseVec = textproc.SparseVec

// SVMConfig controls training.
type SVMConfig struct {
	// Lambda is the L2 regularisation strength. Typical: 1e-4.
	Lambda float64
	// Epochs is the number of full passes over the training set.
	Epochs int
	// Seed drives example shuffling, keeping training deterministic.
	Seed uint64
	// ClassWeight scales the loss of positive examples; >1 counters
	// class imbalance (TOPs are ~17.5% of annotated threads).
	ClassWeight float64
}

// DefaultSVMConfig returns the configuration used throughout the study.
func DefaultSVMConfig() SVMConfig {
	return SVMConfig{Lambda: 1e-3, Epochs: 30, Seed: 1, ClassWeight: 2}
}

// SVM is a trained linear classifier: score(x) = w·x + b.
type SVM struct {
	W []float64
	B float64
}

// TrainSVM fits a linear SVM on the examples. dim is the feature-space
// dimensionality (vectors may be shorter; indices beyond dim are
// rejected). Returns an error on empty input, a degenerate single-class
// corpus, or invalid config.
func TrainSVM(examples []Example, dim int, cfg SVMConfig) (*SVM, error) {
	if len(examples) == 0 {
		return nil, errors.New("ml: no training examples")
	}
	if cfg.Lambda <= 0 || cfg.Epochs <= 0 {
		return nil, errors.New("ml: Lambda and Epochs must be positive")
	}
	if cfg.ClassWeight <= 0 {
		cfg.ClassWeight = 1
	}
	pos, neg := 0, 0
	for _, ex := range examples {
		for _, i := range ex.X.Idx {
			if i < 0 || i >= dim {
				return nil, errors.New("ml: feature index out of range")
			}
		}
		if ex.Y {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, errors.New("ml: training set must contain both classes")
	}

	// Pegasos with a scale trick (track w = scale * v, so shrinkage is
	// O(1)) and suffix averaging over the final half of the steps,
	// which removes the oscillation of the raw SGD iterate.
	v := make([]float64, dim)
	scale := 1.0
	b := 0.0
	avgW := make([]float64, dim)
	avgB := 0.0
	avgCount := 0
	rng := randx.New(cfg.Seed)
	totalSteps := cfg.Epochs * len(examples)
	avgStart := totalSteps / 2
	t := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(len(examples))
		for _, idx := range order {
			t++
			ex := examples[idx]
			// Warm-started schedule: eta <= 1 so the shrinkage factor
			// never collapses to zero on the first steps.
			eta := 1 / (cfg.Lambda * (float64(t) + 1/cfg.Lambda))
			y := -1.0
			weight := 1.0
			if ex.Y {
				y = 1
				weight = cfg.ClassWeight
			}
			margin := y * (scale*ex.X.Dot(v) + b)
			// L2 shrinkage on every step, applied to the scale.
			shrink := 1 - eta*cfg.Lambda
			if shrink <= 0 {
				shrink = 1e-12
			}
			scale *= shrink
			if margin < 1 {
				// Subgradient step on the hinge loss.
				step := eta * y * weight / scale
				for k, i := range ex.X.Idx {
					v[i] += step * ex.X.Val[k]
				}
				b += eta * y * weight * 0.1
			}
			if t > avgStart {
				for i := range avgW {
					avgW[i] += scale * v[i]
				}
				avgB += b
				avgCount++
			}
		}
	}
	if avgCount == 0 {
		avgCount = 1
		copy(avgW, v)
		for i := range avgW {
			avgW[i] *= scale
		}
		avgB = b
	}
	w := make([]float64, dim)
	for i := range w {
		w[i] = avgW[i] / float64(avgCount)
	}
	return &SVM{W: w, B: avgB / float64(avgCount)}, nil
}

// Score returns the signed decision value for x.
func (m *SVM) Score(x SparseVec) float64 {
	return x.Dot(m.W) + m.B
}

// Predict reports whether x is classified positive.
func (m *SVM) Predict(x SparseVec) bool {
	return m.Score(x) > 0
}

// Metrics are the standard information-retrieval evaluation measures.
type Metrics struct {
	TP, FP, TN, FN int
}

// Evaluate scores the model on a labelled test set.
func (m *SVM) Evaluate(test []Example) Metrics {
	var met Metrics
	for _, ex := range test {
		met.Observe(m.Predict(ex.X), ex.Y)
	}
	return met
}

// Observe records one prediction/truth pair.
func (m *Metrics) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		m.TP++
	case predicted && !actual:
		m.FP++
	case !predicted && actual:
		m.FN++
	default:
		m.TN++
	}
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted
// positive.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (m Metrics) Accuracy() float64 {
	total := m.TP + m.FP + m.TN + m.FN
	if total == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(total)
}

// TrainTestSplit partitions examples into a training and a test set,
// deterministically shuffled by seed, with trainFrac in (0,1). The
// paper uses 800 threads to train and 200 to test from 1 000 annotated
// threads (trainFrac = 0.8).
func TrainTestSplit(examples []Example, trainFrac float64, seed uint64) (train, test []Example) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic("ml: trainFrac must be in (0,1)")
	}
	order := randx.New(seed).Perm(len(examples))
	cut := int(math.Round(trainFrac * float64(len(examples))))
	if cut == 0 {
		cut = 1
	}
	if cut >= len(examples) {
		cut = len(examples) - 1
	}
	train = make([]Example, 0, cut)
	test = make([]Example, 0, len(examples)-cut)
	for i, idx := range order {
		if i < cut {
			train = append(train, examples[idx])
		} else {
			test = append(test, examples[idx])
		}
	}
	return train, test
}
