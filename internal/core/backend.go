package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/crawler"
	"repro/internal/faultx"
	"repro/internal/imagex"
	"repro/internal/pipeline"
	"repro/internal/reverse"
	"repro/internal/urlx"
)

// Backend abstracts how the study reaches the web substrate: the
// hosting sites it crawls (§4.2), the reverse image search (§4.5), the
// Wayback archive (§4.5) and the landing pages the snowball sampling
// visits (§4.2). The default backend talks to the in-process world
// through an embedded server; an HTTP backend drives the same study
// against live services (cmd/ewserve), and the equivalence test pins
// both to bit-identical Results.
//
// Backends must be deterministic for a fixed world: the same call
// sequence yields the same values, in the same order, on every run.
type Backend interface {
	// Crawl fetches every task, returning results in task order.
	Crawl(ctx context.Context, tasks []crawler.Task) []crawler.Result
	// CrawlStream is the channel form of Crawl for the stage engine.
	CrawlStream(ctx context.Context, stats *pipeline.Stats, tasks []crawler.Task) <-chan crawler.Result
	// SearchImage reverse-searches an image.
	SearchImage(ctx context.Context, im *imagex.Image) []reverse.Match
	// SearchHash reverse-searches a precomputed composite hash.
	SearchHash(ctx context.Context, h imagex.Hash128) []reverse.Match
	// WaybackSeenBefore reports whether the URL was archived strictly
	// before the cutoff.
	WaybackSeenBefore(ctx context.Context, rawURL string, cutoff time.Time) bool
	// VisitKind inspects a domain's landing page for snowball sampling.
	VisitKind(ctx context.Context, domain string) (urlx.Kind, bool)
	// Close releases backend resources.
	Close()
}

// worldBackend serves the study from the in-process world: crawls go
// against the lazily-started embedded hosting server, searches and
// archive lookups hit the world's indexes directly.
type worldBackend struct {
	study *Study
}

func (b *worldBackend) newCrawler() *crawler.Crawler {
	srv := b.study.hostingServer()
	client := srv.Client()
	if b.study.faultInj != nil {
		// The in-process fault seam: the adversary lives in the
		// transport, so the hosting substrate itself stays honest and
		// the crawler's retry/breaker path is exercised for real.
		cp := *client
		cp.Transport = faultx.Transport(client.Transport, b.study.faultInj, nil)
		client = &cp
	}
	return crawler.New(crawler.Config{Concurrency: b.study.Opts.CrawlConcurrency},
		client, b.study.World.Web.Resolver(srv.URL))
}

func (b *worldBackend) Crawl(ctx context.Context, tasks []crawler.Task) []crawler.Result {
	return b.newCrawler().Crawl(ctx, tasks)
}

func (b *worldBackend) CrawlStream(ctx context.Context, stats *pipeline.Stats, tasks []crawler.Task) <-chan crawler.Result {
	return b.newCrawler().CrawlStream(ctx, stats, tasks)
}

func (b *worldBackend) SearchImage(_ context.Context, im *imagex.Image) []reverse.Match {
	return b.study.World.Reverse.Search(im)
}

func (b *worldBackend) SearchHash(_ context.Context, h imagex.Hash128) []reverse.Match {
	return b.study.World.Reverse.SearchHash(h)
}

func (b *worldBackend) WaybackSeenBefore(_ context.Context, rawURL string, cutoff time.Time) bool {
	return b.study.World.Wayback.SeenBefore(rawURL, cutoff)
}

func (b *worldBackend) VisitKind(_ context.Context, domain string) (urlx.Kind, bool) {
	return b.study.World.Web.VisitKind(domain)
}

func (b *worldBackend) Close() {}

// HTTPBackend routes every substrate access through a
// crawler.HTTPClient against live services. Lookup errors surface as
// empty results — the crawl outcome taxonomy already models transport
// failure — and are counted; Err reports the first one so tests can
// assert a clean run.
type HTTPBackend struct {
	hc *crawler.HTTPClient

	mu       sync.Mutex
	errCount int
	firstErr error
}

// NewHTTPBackend wraps an HTTP substrate client as a study backend.
func NewHTTPBackend(hc *crawler.HTTPClient) *HTTPBackend {
	return &HTTPBackend{hc: hc}
}

func (b *HTTPBackend) note(err error) {
	if err == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.errCount++
	if b.firstErr == nil {
		b.firstErr = err
	}
}

// Err returns the first substrate lookup error, if any.
func (b *HTTPBackend) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.firstErr
}

// ErrCount returns the number of failed substrate lookups.
func (b *HTTPBackend) ErrCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.errCount
}

func (b *HTTPBackend) Crawl(ctx context.Context, tasks []crawler.Task) []crawler.Result {
	return b.hc.Crawl(ctx, tasks)
}

func (b *HTTPBackend) CrawlStream(ctx context.Context, stats *pipeline.Stats, tasks []crawler.Task) <-chan crawler.Result {
	return b.hc.CrawlStream(ctx, stats, tasks)
}

func (b *HTTPBackend) SearchImage(ctx context.Context, im *imagex.Image) []reverse.Match {
	out, err := b.hc.SearchImage(ctx, im)
	b.note(err)
	return out
}

func (b *HTTPBackend) SearchHash(ctx context.Context, h imagex.Hash128) []reverse.Match {
	out, err := b.hc.SearchHash(ctx, h)
	b.note(err)
	return out
}

func (b *HTTPBackend) WaybackSeenBefore(ctx context.Context, rawURL string, cutoff time.Time) bool {
	seen, err := b.hc.SeenBefore(ctx, rawURL, cutoff)
	b.note(err)
	return seen
}

func (b *HTTPBackend) VisitKind(ctx context.Context, domain string) (urlx.Kind, bool) {
	kind, ok, err := b.hc.VisitKind(ctx, domain)
	b.note(err)
	return kind, ok
}

func (b *HTTPBackend) Close() {
	b.hc.Close()
}
