package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lintx"
)

// CtxHygiene enforces two service-spine rules in internal/* library
// code:
//
//  1. no context.Background() or context.TODO() outside tests —
//     library code must thread the caller's context so cancellation
//     and deadlines propagate end-to-end (a detached context is
//     occasionally legitimate, e.g. a server-lifetime scope; such
//     sites carry a //lint:ignore ctxhygiene rationale);
//  2. no mutation of another package's Stats-style counters — a
//     *Stats struct's fields are owned by its package's mutex
//     helpers, and a bare cross-package increment races.
//
// cmd/* and examples/* are exempt: a main function is exactly where a
// root context is created.
var CtxHygiene = &lintx.Analyzer{
	Name: "ctxhygiene",
	Doc:  "internal packages must thread caller contexts and must not mutate foreign Stats counters",
	Run:  runCtxHygiene,
}

func runCtxHygiene(pass *lintx.Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "internal/") && !strings.HasPrefix(pass.Pkg.Path(), "internal/") {
		return nil
	}
	for _, f := range pass.Files {
		isTest := pass.IsTestFile(f.Pos())
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isTest {
					return true
				}
				fn := calleeFunc(pass.Info, n)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(n.Pos(), "context.%s in library code: thread the caller's context so cancellation propagates", fn.Name())
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkStatsWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkStatsWrite(pass, n.X)
			}
			return true
		})
	}
	return nil
}

// checkStatsWrite reports a write to a field of a Stats-named struct
// type declared in a different package.
func checkStatsWrite(pass *lintx.Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if !strings.HasSuffix(obj.Name(), "Stats") || obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
		return
	}
	pass.Reportf(sel.Pos(), "mutation of %s.%s.%s outside its owning package: counters belong to %s's mutex helpers",
		obj.Pkg().Name(), obj.Name(), s.Obj().Name(), obj.Pkg().Name())
}
