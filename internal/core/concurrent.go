package core

import (
	"context"

	"repro/internal/pipeline"
)

// Run executes the complete study by evaluating the full artefact
// graph: independent nodes (the §4.2-§4.5 image chain and the §5/§6
// financial/actor branch) run concurrently, the heavy nodes fan their
// work across worker pools internally, and every fold consumes its
// items in the sequential order — so Results are identical to
// RunSequential for the same Options, which the equivalence tests
// pin. Per-node and per-stage metrics are available from
// PipelineStats afterwards.
//
// When a memo store is attached (UseMemo), node values are reused
// from — and published to — it under their canonical keys.
func (s *Study) Run(ctx context.Context) (*Results, error) {
	defer s.Close()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.stats = pipeline.NewStats()

	vals, err := s.evaluate(ctx, Artefacts())
	if err != nil {
		return nil, err
	}
	res := &Results{}
	fillResults(res, vals)

	// Replay the branch hotlines into the study hotline in the order
	// the sequential path files reports: main crawl first, earnings
	// crawl second.
	for _, r := range vals[ArtefactPhotoDNA].(photodnaValue).reports {
		s.Hotline.Report(r)
	}
	for _, r := range vals[ArtefactEarnings].(earningsValue).reports {
		s.Hotline.Report(r)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// nsfvClass is one safe image with its NSFV verdict.
type nsfvClass struct {
	si    SafeImage
	class int
}

// NSFV verdict classes.
const (
	classPack = iota
	classSFV
	classPreview
)

// provItem is one image headed for reverse search: a sampled pack
// image or a preview.
type provItem struct {
	si   SafeImage
	pack bool
}

// provSearched pairs a search outcome with the row it belongs to.
type provSearched struct {
	pack bool
	out  searchOutcome
}
