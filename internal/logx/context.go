package logx

import "context"

// ctxKey is the private context key for the bound logger.
type ctxKey struct{}

// NewContext returns ctx carrying lg. Passing the returned context
// down a call chain gives every layer the caller's logger — and its
// accumulated fields, like the request id — without any signature
// changes below the seam that binds it.
func NewContext(ctx context.Context, lg *Logger) context.Context {
	return context.WithValue(ctx, ctxKey{}, lg)
}

// FromContext returns the logger bound to ctx, or nil (the no-op
// logger) when none is. Callers log unconditionally on the result.
func FromContext(ctx context.Context) *Logger {
	lg, _ := ctx.Value(ctxKey{}).(*Logger)
	return lg
}
