package analyzers

import (
	"testing"

	"repro/internal/lintx/lintest"
)

// The fixtures reproduce the three PR 1 bug shapes verbatim
// (genExchange map-order authorship, Buckets float fold, Table 1
// tie-break) plus the rand/time bans, and pin the fixed idioms as
// clean. internal/other pins the package scoping: the same code is
// legal off the study path.
func TestDeterminism(t *testing.T) {
	lintest.Run(t, "testdata", Determinism,
		"internal/synth", "internal/actors", "internal/core", "internal/other")
}
