// Package lintest runs lintx analyzers against fixture packages the
// way golang.org/x/tools/go/analysis/analysistest does: fixture
// sources live under testdata/src/<importpath>/, and every expected
// diagnostic is declared in-line with a trailing comment of the form
//
//	// want "regexp"            one expected diagnostic on this line
//	// want "re1" "re2"         two expected diagnostics on this line
//
// A run fails on any diagnostic without a matching want, and on any
// want without a matching diagnostic, so fixtures pin both the
// positives and the clean negatives of each analyzer.
package lintest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lintx"
)

// expectation is one want clause: a position plus an unanchored
// regexp the diagnostic message must match.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// Run loads the fixture packages and checks the analyzer's
// diagnostics against their want comments. Suppression directives
// (//lint:ignore) are honoured, so fixtures can also pin the
// suppression mechanism itself.
func Run(t *testing.T, testdata string, a *lintx.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := lintx.LoadFixture(testdata, paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg, f)...)
		}
	}
	diags, err := lintx.RunAnalyzers(pkgs, []*lintx.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want at the diagnostic's position
// whose regexp matches.
func claim(wants []*expectation, d lintx.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the want comments of one file.
func collectWants(t *testing.T, pkg *lintx.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, raw := range splitQuoted(m[1]) {
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
			}
		}
	}
	return out
}

// splitQuoted extracts the double-quoted strings of a want clause.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			unq = s[1:end]
		}
		out = append(out, unq)
		s = s[end+1:]
	}
}
