package lintx

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Fixture loading: analyzer tests run against small self-contained
// packages under a testdata/src tree (the classic analysistest
// layout), where the import path "a/b" resolves to testdata/src/a/b.
// Fixture packages may import each other and the standard library;
// nothing else.

var (
	stdOnce     sync.Once
	stdUniverse map[string]*listedPackage
	stdErr      error
)

// stdPackages lists the standard library once per process; fixture
// loads resolve stdlib imports against it.
func stdPackages() (map[string]*listedPackage, error) {
	stdOnce.Do(func() {
		pkgs, err := goList("", "std")
		if err != nil {
			stdErr = err
			return
		}
		stdUniverse = make(map[string]*listedPackage, len(pkgs))
		for _, p := range pkgs {
			stdUniverse[p.ImportPath] = p
		}
	})
	return stdUniverse, stdErr
}

// LoadFixture loads testdata/src/<path> for each given import path,
// type-checked with full Info, resolving fixture-internal imports
// from the same tree and everything else from the standard library.
func LoadFixture(testdata string, paths ...string) ([]*Package, error) {
	std, err := stdPackages()
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:        token.NewFileSet(),
		universe:    std,
		checked:     make(map[string]*types.Package),
		checking:    make(map[string]bool),
		fixtureRoot: filepath.Join(testdata, "src"),
	}
	var out []*Package
	for _, path := range paths {
		files, err := ld.parseFixtureDir(path)
		if err != nil {
			return nil, err
		}
		pkg, err := ld.check(path, &listedPackage{}, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// parseFixtureDir parses every .go file in testdata/src/<path>.
func (ld *loader) parseFixtureDir(path string) ([]*ast.File, error) {
	dir := filepath.Join(ld.fixtureRoot, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %v", path, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %s: no .go files in %s", path, dir)
	}
	return ld.parseFiles(dir, names)
}
