package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/synth"
)

// TestConcurrentRunMatchesSequential holds the concurrent Run to the
// determinism requirement: for a fixed seed it must produce Results
// identical to the sequential reference implementation — every table,
// summary and proof count, compared field by field.
func TestConcurrentRunMatchesSequential(t *testing.T) {
	opts := Options{
		Synth:          synth.Config{Seed: 7, Scale: 0.02, ImageSize: 48},
		AnnotationSize: 400,
		Workers:        8,
	}
	ctx := context.Background()

	seqStudy := NewStudy(opts)
	want, err := seqStudy.RunSequential(ctx)
	if err != nil {
		t.Fatal(err)
	}
	concStudy := NewStudy(opts)
	got, err := concStudy.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	wv := reflect.ValueOf(*want)
	gv := reflect.ValueOf(*got)
	rt := wv.Type()
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("Results.%s differs between sequential and concurrent runs", name)
		}
	}

	// The hotline must also end in the same state: image-branch
	// reports in task order, then the earnings branch's.
	if !reflect.DeepEqual(seqStudy.Hotline.Reports(), concStudy.Hotline.Reports()) {
		t.Error("hotline reports differ between sequential and concurrent runs")
	}

	if stats := concStudy.PipelineStats(); len(stats) == 0 {
		t.Error("concurrent run recorded no pipeline stages")
	} else {
		for _, sn := range stats {
			t.Logf("stage %-18s workers=%2d in=%4d out=%4d wall=%v busy=%v",
				sn.Name, sn.Workers, sn.In, sn.Out, sn.Wall, sn.Busy)
		}
	}
	if stats := seqStudy.PipelineStats(); stats != nil {
		t.Error("sequential run should not record pipeline stages")
	}
}

// TestConcurrentRunDeterministic runs the concurrent pipeline twice on
// the same seed and demands bit-identical Results: the engine's
// ordered fan-in may not leak scheduling nondeterminism.
func TestConcurrentRunDeterministic(t *testing.T) {
	opts := Options{
		Synth:          synth.Config{Seed: 11, Scale: 0.015, ImageSize: 48},
		AnnotationSize: 300,
		Workers:        5, // deliberately odd
	}
	ctx := context.Background()
	a, err := NewStudy(opts).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(opts).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two concurrent runs with the same seed produced different Results")
	}
}
