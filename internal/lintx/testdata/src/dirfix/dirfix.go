// Fixture for directive validation: a suppression without a reason or
// naming an unknown analyzer is itself a finding, and never
// suppresses anything.
package dirfix

//lint:ignore
func missingReason() {}

//lint:ignore nosuchanalyzer some reason
func unknownAnalyzer() {}

//lint:ignore all fixture demonstrates a valid suppression
func validSuppression() {}
