// Package urlx implements §4.2's link handling: URL extraction from
// post bodies with regular expressions, a whitelist of known
// image-sharing sites (pack previews) and cloud-storage services (the
// packs themselves), and the snowball-sampling procedure that grows
// the whitelist ("starting with a known set of domains, we parse all
// URLs extracted from the TOPs, and manually analyse a subset of the
// domains that do not belong to the whitelist, visiting their landing
// sites").
package urlx

import (
	"net/url"
	"regexp"
	"sort"
	"strings"
)

// urlRe matches http/https URLs inside free-form forum text.
var urlRe = regexp.MustCompile(`https?://[^\s<>"'\)\]\}]+`)

// Extract returns every URL in the text, in order of appearance, with
// trailing punctuation trimmed. Duplicates are preserved (a post may
// link the same pack twice; the caller decides whether to dedupe).
func Extract(text string) []string {
	raw := urlRe.FindAllString(text, -1)
	out := make([]string, 0, len(raw))
	for _, u := range raw {
		u = strings.TrimRight(u, ".,;:!?")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

// Domain returns the lowercased host of a URL (without port), or ""
// if the URL does not parse.
func Domain(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Hostname())
}

// Kind classifies a whitelisted domain.
type Kind int

// Whitelist kinds.
const (
	KindUnknown Kind = iota
	// KindImageSharing hosts single images — where pack previews and
	// proof-of-earnings screenshots live.
	KindImageSharing
	// KindCloudStorage hosts files — where the packs themselves live.
	KindCloudStorage
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindImageSharing:
		return "image sharing"
	case KindCloudStorage:
		return "cloud storage"
	default:
		return "unknown"
	}
}

// ImageSharingSites lists the image-sharing domains of Table 3, in the
// paper's popularity order.
var ImageSharingSites = []string{
	"imgur.com", "gyazo.com", "imageshack.com", "prnt.sc",
	"photobucket.com", "imagetwist.com", "imagezilla.net",
	"minus.com", "postimage.org", "imagebam.com",
}

// CloudStorageSites lists the cloud-storage domains of Table 4, in the
// paper's popularity order.
var CloudStorageSites = []string{
	"mediafire.com", "mega.nz", "dropbox.com", "oron.com",
	"depositfiles.com", "filefactory.com", "drive.google.com",
	"ge.tt", "zippyshare.com", "filedropper.com",
}

// Whitelist maps domains to their kind. Not safe for concurrent
// mutation.
type Whitelist struct {
	domains map[string]Kind
}

// NewWhitelist returns an empty whitelist.
func NewWhitelist() *Whitelist {
	return &Whitelist{domains: make(map[string]Kind)}
}

// DefaultWhitelist returns the seed whitelist: the well-known sites of
// Tables 3 and 4 (before snowball expansion).
func DefaultWhitelist() *Whitelist {
	w := NewWhitelist()
	for _, d := range ImageSharingSites {
		w.Add(d, KindImageSharing)
	}
	for _, d := range CloudStorageSites {
		w.Add(d, KindCloudStorage)
	}
	return w
}

// Add registers a domain (lowercased) under a kind.
func (w *Whitelist) Add(domain string, k Kind) {
	w.domains[strings.ToLower(domain)] = k
}

// Kind returns the kind of a domain and whether it is whitelisted.
func (w *Whitelist) Kind(domain string) (Kind, bool) {
	k, ok := w.domains[strings.ToLower(domain)]
	return k, ok
}

// Len returns the number of whitelisted domains.
func (w *Whitelist) Len() int { return len(w.domains) }

// Domains returns all whitelisted domains of a kind, sorted.
func (w *Whitelist) Domains(k Kind) []string {
	var out []string
	for d, kk := range w.domains {
		if kk == k {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// Link is one classified URL.
type Link struct {
	URL    string
	Domain string
	Kind   Kind
}

// Classify resolves a URL against the whitelist.
func (w *Whitelist) Classify(raw string) Link {
	d := Domain(raw)
	k, ok := w.domains[d]
	if !ok {
		k = KindUnknown
	}
	return Link{URL: raw, Domain: d, Kind: k}
}

// ClassifyAll classifies a batch of URLs.
func (w *Whitelist) ClassifyAll(raw []string) []Link {
	out := make([]Link, len(raw))
	for i, u := range raw {
		out[i] = w.Classify(u)
	}
	return out
}

// CountByDomain tallies links of the given kind per domain — the shape
// of Tables 3 and 4.
func CountByDomain(links []Link, k Kind) map[string]int {
	out := make(map[string]int)
	for _, l := range links {
		if l.Kind == k {
			out[l.Domain]++
		}
	}
	return out
}

// DomainCount is a (domain, count) pair for sorted reporting.
type DomainCount struct {
	Domain string
	Count  int
}

// SortedCounts converts a tally into descending-count order (ties
// alphabetical), as the paper's tables print them.
func SortedCounts(tally map[string]int) []DomainCount {
	out := make([]DomainCount, 0, len(tally))
	for d, c := range tally {
		out = append(out, DomainCount{Domain: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// VisitFunc inspects an unknown domain's landing site and reports what
// kind of site it is. In the study this was a manual step; the
// simulation wires it to the hosting substrate.
type VisitFunc func(domain string) (Kind, bool)

// Snowball expands the whitelist from a URL corpus: every round it
// visits the domains not yet whitelisted, adds those recognised as
// image-sharing or cloud-storage, and stops when a round adds nothing
// (or after maxRounds). It returns the number of domains added.
func Snowball(w *Whitelist, urls []string, visit VisitFunc, maxRounds int) int {
	if maxRounds <= 0 {
		maxRounds = 5
	}
	added := 0
	visited := make(map[string]struct{})
	for round := 0; round < maxRounds; round++ {
		// Collect unknown domains, deterministically ordered.
		unknown := make(map[string]struct{})
		for _, raw := range urls {
			d := Domain(raw)
			if d == "" {
				continue
			}
			if _, ok := w.domains[d]; ok {
				continue
			}
			if _, seen := visited[d]; seen {
				continue
			}
			unknown[d] = struct{}{}
		}
		if len(unknown) == 0 {
			return added
		}
		order := make([]string, 0, len(unknown))
		for d := range unknown {
			order = append(order, d)
		}
		sort.Strings(order)
		addedThisRound := 0
		for _, d := range order {
			visited[d] = struct{}{}
			if k, ok := visit(d); ok && k != KindUnknown {
				w.Add(d, k)
				added++
				addedThisRound++
			}
		}
		if addedThisRound == 0 {
			return added
		}
	}
	return added
}
