package synth

import (
	"fmt"
	"strings"

	"repro/internal/randx"
)

// Heading and body templates. The templates deliberately carry the
// Table 2 keyword families (pack/selling/unsaturated for TOPs,
// question/request markers for info-seeking threads, tut/guide for
// tutorials, earn/profit for earnings threads) so the hybrid TOP
// classifier has the same signal structure to learn from as in the
// real corpus — plus enough noise that classification is not trivial.

var modelNames = []string{
	"kelly", "amber", "jess", "nikki", "chloe", "mia", "lana", "ruby",
	"zoe", "tasha", "ella", "dani", "skye", "paige", "lexi", "nora",
}

var topHeadings = []string{
	"[WTS] unsaturated %s pack - %d pics and %d vids",
	"FREE %s pack - %d pictures - enjoy",
	"sharing my private %s collection (%d pics)",
	"HQ unsaturated pack of %s - %d pics %d videos",
	"new %s pack - giving away for free",
	"selling fresh %s set - %d pics - cheap",
	"ULTIMATE %s package - %d pictures + verification",
	"my personal %s repository - %d sexy pics",
	"[PACK] %s - %d pics - unsaturated girl",
	"huge %s compilation - %d pics %d vids - free share",
}

var topBodies = []string{
	"Here is my %s pack, totally unsaturated. Previews: %s Full pack: %s Enjoy and leave a thanks!",
	"Fresh set of %s, barely used. Preview %s and download %s - rep appreciated.",
	"Giving away this %s collection. Samples: %s Get the full package here: %s",
	"Selling this pack of %s. Check the previews first: %s Serious buyers only, pm me.",
	"New pack compiled from my private stash of %s. Preview: %s Pack link: %s Dont get it saturated!",
}

// Locked TOPs share nothing openly: previews and packs go out by PM
// after a reply or payment, which is why the paper could extract
// links from only 18.71% of TOPs.
var topLockedBodies = []string{
	"Premium %s pack. Reply to this thread and I will pm you the preview and link.",
	"%s pack for sale, $10 via paypal. pm me to buy, previews on request.",
	"Unsaturated %s set. Post a reply and I will pm the download.",
}

// Ambiguous headings keep the classification problem honest: TOPs
// that avoid the obvious keywords, and discussions that use them.
var topAmbiguousHeadings = []string{
	"check out my new stuff",
	"you guys will like this one",
	"fresh content inside - enjoy",
	"dropping something special today",
	"my latest work, come get it",
	"something for the grinders",
}

var discussionPackyHeadings = []string{
	"are packs dead in %d",
	"why do free packs suck - discussion",
	"pics quality these days - rant",
	"video vs pics - what sells better",
	"my thoughts on unsaturated sets",
	"the state of pack selling - opinion",
}

var requestHeadings = []string{
	"looking for a good unsaturated pack?",
	"[REQUEST] need a %s pack please",
	"question about packs - where to start?",
	"need help with my setup - any advice?",
	"WTB fresh pack, paying with paypal",
	"can someone give me advice on packs?",
	"how to find unsaturated pics? question",
	"i have a question about verification pics",
	"need some help - customers keep asking for customs",
	"quick question for the pros here",
}

var requestBodies = []string{
	"Hi all, im new to this and need advice. Where do you get your packs? Any help appreciated.",
	"Looking for a fresh pack of %s type girls, willing to buy. What do you have?",
	"I keep getting blocked, i wonder whether my pics are saturated. help please!",
	"Need a pack with verification templates, can anyone help me out? Will rep.",
}

var tutorialHeadings = []string{
	"[TUT] the definite guide to ewhoring in %d",
	"complete ewhoring guide for beginners",
	"how-to: from zero to $100 a day - guide",
	"my ewhoring tutorial - everything you need",
	"[GUIDE] advanced methods %d edition",
}

var tutorialBodies = []string{
	"In this guide i will explain everything: getting packs, making accounts, finding customers and cashing out. Step one...",
	"Definite tutorial. First, get a good unsaturated pack. Second, set up your accounts. Third, profit. Details below.",
}

var earningsHeadings = []string{
	"post your earnings - %d edition",
	"how much do you make a day?",
	"my profit proof - first week",
	"earnings thread - share your gains",
	"made my first $100 - proof inside",
	"monthly earnings check - how much you make?",
}

var earningsBodies = []string{
	"Heres my proof for this week: %s not bad for a few hours of work!",
	"Screenshot of my earnings: %s AMA about my method.",
	"Proof of todays profit: %s keep grinding guys.",
	"My gains this month: %s started from nothing.",
}

var discussionHeadings = []string{
	"is ewhoring dead in %d?",
	"ewhoring morality discussion",
	"best sites to find customers these days",
	"do you feel bad about ewhoring?",
	"ewhoring vs other money methods",
	"police risks of ewhoring - discussion",
	"why ewhoring is banned here - discussion",
	"ewhoring stories - share your weirdest customer",
}

var discussionBodies = []string{
	"Just wondering what everyone thinks about the state of things lately. Seems harder than in the old days.",
	"Been doing this for a while and wanted to hear other opinions. Discuss.",
	"Mods keep removing packs but the discussions stay. What do you all think?",
}

var replyBodies = []string{
	"thanks for the share!",
	"downloading now, looks great",
	"amazing pack, thank you",
	"just downloaded, rep given",
	"this is saturated af, seen it everywhere",
	"pm sent",
	"bump for a great thread",
	"anyone got a mirror? link is dead",
	"thanks man, exactly what i needed",
	"wow she is gorgeous, thanks",
	"good looking out, downloading",
	"can you add more vids?",
	"first one didnt work, second link fine",
	"appreciated, will use carefully",
	"great guide, learned a lot",
	"made $50 today with this, thanks",
	"how do you handle verification requests?",
	"nice earnings, what platform do you use?",
	"congrats on the profit",
	"thats insane money, teach me",
}

var ageConcernReplies = []string{
	"you have to take the image down. She is 100% under age, just look at her!! And thanks for the share anyway",
	"is the model in this pack even 18? careful with this stuff",
	"delete this, she looks way too young",
}

var exchangeHaveTokens = map[string][]string{
	"PayPal": {"PayPal", "PP", "paypal balance", "$50 PayPal"},
	"BTC":    {"BTC", "bitcoin", "0.05 BTC"},
	"AGC":    {"AGC", "amazon gift card", "Amazon GC", "$100 amazon"},
	"?":      {"??? make offer", "anything ?", "best offer ?"},
	"others": {"skrill", "venmo", "steam wallet", "LTC"},
}

// fillHeading instantiates a heading template with deterministic
// values.
func fillHeading(rng *randx.Rand, tmpl string) string {
	n := strings.Count(tmpl, "%")
	switch n {
	case 0:
		return tmpl
	case 1:
		if strings.Contains(tmpl, "%d") {
			return fmt.Sprintf(tmpl, 2010+rng.Intn(10))
		}
		return fmt.Sprintf(tmpl, randx.Pick(rng, modelNames))
	case 2:
		if strings.Contains(tmpl, "%s") {
			return fmt.Sprintf(tmpl, randx.Pick(rng, modelNames), 20+rng.Intn(200))
		}
		return fmt.Sprintf(tmpl, 20+rng.Intn(200), 1+rng.Intn(9))
	default:
		return fmt.Sprintf(tmpl, randx.Pick(rng, modelNames), 20+rng.Intn(200), 1+rng.Intn(9))
	}
}
