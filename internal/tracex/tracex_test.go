package tracex

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// scriptClock returns a clock seam that advances a fixed step per call.
func scriptClock(step time.Duration) func() time.Time {
	base := time.Unix(1700000000, 0).UTC()
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

func newTestTracer(opts ...func(*Config)) *Tracer {
	cfg := Config{IDs: NewSeqIDs(7), Now: scriptClock(time.Millisecond)}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if _, ok := tr.Trace("00000000000000000000000000000000"); ok {
		t.Fatal("nil tracer reported a trace")
	}
	if ids := tr.TraceIDs(); ids != nil {
		t.Fatalf("nil tracer TraceIDs = %v", ids)
	}
	var sp *Span
	sp.SetAttr("k", "v")
	sp.End()
	if sc := sp.Context(); sc.IsValid() {
		t.Fatal("nil span has a valid context")
	}
	ctx := NewContext(context.Background(), nil)
	ctx2, sp2 := StartSpan(ctx, "noop")
	if sp2 != nil {
		t.Fatal("StartSpan without tracer returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without tracer rebuilt the context")
	}
}

func TestStartSpanDisabledAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		_, sp := StartSpan(ctx, "hot path")
		sp.SetAttr("k", "v")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan allocates %v times per call, want 0", allocs)
	}
}

func TestSpanTreeAndRing(t *testing.T) {
	tr := newTestTracer()
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, "run")
	root.SetAttr("seed", "77")
	cctx, child := StartSpan(ctx, "node select")
	child.SetAttr("outcome", "compute")
	_, leaf := StartSpan(cctx, "crawl fetch")
	leaf.End()
	child.End()
	root.End()

	id := root.Context().Trace.String()
	got, ok := tr.Trace(id)
	if !ok {
		t.Fatalf("trace %s not in ring", id)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(got.Spans))
	}
	// Spans land sorted by start: run, node select, crawl fetch.
	if got.Spans[0].Name != "run" || got.Spans[1].Name != "node select" || got.Spans[2].Name != "crawl fetch" {
		t.Fatalf("span order: %s / %s / %s", got.Spans[0].Name, got.Spans[1].Name, got.Spans[2].Name)
	}
	if got.Spans[0].Parent != "" {
		t.Fatalf("root has parent %q", got.Spans[0].Parent)
	}
	if got.Spans[1].Parent != got.Spans[0].SpanID {
		t.Fatal("child not parented to root")
	}
	if got.Spans[2].Parent != got.Spans[1].SpanID {
		t.Fatal("leaf not parented to child")
	}
	if got.Spans[0].Attrs["seed"] != "77" {
		t.Fatalf("root attrs = %v", got.Spans[0].Attrs)
	}
	for _, s := range got.Spans {
		if s.TraceID != id {
			t.Fatalf("span %s trace id %s, want %s", s.Name, s.TraceID, id)
		}
		if s.DurUS <= 0 {
			t.Fatalf("span %s has non-positive duration %d", s.Name, s.DurUS)
		}
	}
}

func TestRingEvictsOldestTrace(t *testing.T) {
	tr := newTestTracer(func(c *Config) { c.MaxTraces = 2 })
	var ids []string
	for i := 0; i < 3; i++ {
		ctx := NewContext(context.Background(), tr)
		_, sp := StartSpan(ctx, "run")
		sp.End()
		ids = append(ids, sp.Context().Trace.String())
	}
	if _, ok := tr.Trace(ids[0]); ok {
		t.Fatal("oldest trace survived a full ring")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Trace(id); !ok {
			t.Fatalf("recent trace %s evicted", id)
		}
	}
	if got := tr.TraceIDs(); len(got) != 2 || got[0] != ids[1] || got[1] != ids[2] {
		t.Fatalf("TraceIDs = %v, want [%s %s]", got, ids[1], ids[2])
	}
}

func TestPerTraceSpanCap(t *testing.T) {
	tr := newTestTracer(func(c *Config) { c.MaxSpansPerTrace = 2 })
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, "run")
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(ctx, "leaf")
		sp.End()
	}
	root.End()
	got, ok := tr.Trace(root.Context().Trace.String())
	if !ok {
		t.Fatal("trace missing")
	}
	if len(got.Spans) != 2 || got.Dropped != 2 {
		t.Fatalf("got %d spans, %d dropped; want 2 spans, 2 dropped", len(got.Spans), got.Dropped)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := newTestTracer()
	ctx := NewContext(context.Background(), tr)
	_, sp := StartSpan(ctx, "once")
	sp.End()
	sp.End()
	got, _ := tr.Trace(sp.Context().Trace.String())
	if len(got.Spans) != 1 {
		t.Fatalf("double End recorded %d spans", len(got.Spans))
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := newTestTracer()
	ctx := NewContext(context.Background(), tr)
	_, sp := StartSpan(ctx, "client")
	wire := FormatTraceparent(sp.Context())
	if !strings.HasPrefix(wire, "00-") || !strings.HasSuffix(wire, "-01") {
		t.Fatalf("traceparent %q not in W3C form", wire)
	}
	parts := strings.Split(wire, "-")
	if len(parts) != 4 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		t.Fatalf("traceparent %q field widths wrong", wire)
	}
	sc, ok := ParseTraceparent(wire)
	if !ok || sc != sp.Context() {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", sc, ok, sp.Context())
	}
	for _, bad := range []string{
		"", "00", "ff-" + parts[1] + "-" + parts[2] + "-01",
		"00-zzzz-" + parts[2] + "-01",
		"00-" + strings.Repeat("0", 32) + "-" + parts[2] + "-01",
		"00-" + parts[1] + "-" + strings.Repeat("0", 16) + "-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", bad)
		}
	}
	sp.End()
}

func TestInjectExtract(t *testing.T) {
	tr := newTestTracer()
	ctx := NewContext(context.Background(), tr)
	h := http.Header{}
	Inject(ctx, h) // no open span: nothing to inject
	if h.Get(TraceparentHeader) != "" {
		t.Fatal("Inject wrote a header with no open span")
	}
	ctx, sp := StartSpan(ctx, "client request")
	Inject(ctx, h)
	sc, ok := Extract(h)
	if !ok || sc != sp.Context() {
		t.Fatalf("Extract = %+v ok=%v, want %+v", sc, ok, sp.Context())
	}
	sp.End()
}

func TestWithRemoteJoinsTrace(t *testing.T) {
	// Client side: mint a root span.
	client := newTestTracer()
	cctx := NewContext(context.Background(), client)
	cctx, csp := StartSpan(cctx, "client request")
	h := http.Header{}
	Inject(cctx, h)
	csp.End()

	// Server side: a different tracer adopts the propagated context.
	server := New(Config{IDs: NewSeqIDs(99), Now: scriptClock(time.Millisecond)})
	sctx := NewContext(context.Background(), server)
	remote, ok := Extract(h)
	if !ok {
		t.Fatal("no traceparent on the wire")
	}
	sctx = WithRemote(sctx, remote)
	_, ssp := StartSpan(sctx, "http POST /v1/run")
	ssp.End()

	if got, want := ssp.Context().Trace, csp.Context().Trace; got != want {
		t.Fatalf("server span trace %s, want client trace %s", got, want)
	}
	st, ok := server.Trace(csp.Context().Trace.String())
	if !ok {
		t.Fatal("server ring lacks the adopted trace")
	}
	if st.Spans[0].Parent != csp.Context().Span.String() {
		t.Fatal("server span not parented to the client span")
	}
}

func TestSeqIDsDistinctSeeds(t *testing.T) {
	a, b := NewSeqIDs(1), NewSeqIDs(2)
	if a.NewTraceID() == b.NewTraceID() {
		t.Fatal("differently seeded sources collided")
	}
	s := NewSeqIDs(5)
	if s.NewSpanID() == s.NewSpanID() {
		t.Fatal("span ids repeat")
	}
	if s.NewSpanID().IsZero() {
		t.Fatal("minted a zero span id")
	}
}

func TestMergeDedupes(t *testing.T) {
	shared := SpanRecord{TraceID: "t", SpanID: "0000000000000001", Name: "client request", StartUS: 10, DurUS: 50}
	a := Trace{TraceID: "t", Spans: []SpanRecord{shared}}
	b := Trace{TraceID: "t", Spans: []SpanRecord{
		shared,
		{TraceID: "t", SpanID: "0000000000000002", Parent: "0000000000000001", Name: "http POST /v1/run", StartUS: 20, DurUS: 30},
	}}
	m := Merge(a, b)
	if len(m.Spans) != 2 {
		t.Fatalf("merge kept %d spans, want 2", len(m.Spans))
	}
	if m.Spans[0].Name != "client request" || m.Spans[1].Name != "http POST /v1/run" {
		t.Fatalf("merge order wrong: %s / %s", m.Spans[0].Name, m.Spans[1].Name)
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := newTestTracer()
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, "run")
	_, leaf := StartSpan(ctx, "node select")
	leaf.End()
	root.End()
	got, _ := tr.Trace(root.Context().Trace.String())
	out := string(got.ChromeTrace())
	for _, want := range []string{`"traceEvents"`, `"ph":"b"`, `"ph":"e"`, `"node select"`, `"parent"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %s:\n%s", want, out)
		}
	}
}

func TestTreeAggregatesSiblings(t *testing.T) {
	tr := newTestTracer()
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, "run")
	cctx, crawl := StartSpan(ctx, "node crawl")
	for i := 0; i < 3; i++ {
		_, f := StartSpan(cctx, "crawl fetch")
		f.End()
	}
	crawl.End()
	root.End()
	got, _ := tr.Trace(root.Context().Trace.String())
	nodes := got.Tree()
	if len(nodes) != 1 || nodes[0].Name != "run" {
		t.Fatalf("roots = %+v", nodes)
	}
	kids := nodes[0].Children
	if len(kids) != 1 || kids[0].Name != "node crawl" {
		t.Fatalf("run children = %+v", kids)
	}
	fetch := kids[0].Children
	if len(fetch) != 1 || fetch[0].Name != "crawl fetch" || fetch[0].Count != 3 {
		t.Fatalf("crawl children = %+v", fetch)
	}
	if !strings.Contains(got.RenderTree(), "node crawl") {
		t.Fatal("RenderTree lost the crawl span")
	}
}
