package studysvc

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// tinyRequest names a world small enough for sub-second runs.
func tinyRequest(seed uint64) Request {
	return Request{Seed: seed, Scale: 0.01, AnnotationSize: 150, Workers: 2}
}

func newTestService(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, NewClient(srv.URL, srv.Client())
}

// TestIdenticalRequestsRunOnce is the acceptance-criteria cache test:
// two identical POST /v1/study requests perform exactly one study run.
func TestIdenticalRequestsRunOnce(t *testing.T) {
	svc, c := newTestService(t, Config{})
	ctx := context.Background()

	first, err := c.Run(ctx, tinyRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != StatusDone || first.Cached {
		t.Fatalf("first run: status=%s cached=%v", first.Status, first.Cached)
	}
	second, err := c.Run(ctx, tinyRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical request was not served from cache")
	}
	if second.ID != first.ID {
		t.Errorf("cache hit returned a different run: %s vs %s", second.ID, first.ID)
	}
	if second.Report != first.Report {
		t.Error("cached report differs from the original")
	}

	st := svc.Stats()
	if st.RunsStarted != 1 {
		t.Errorf("two identical requests started %d runs, want exactly 1", st.RunsStarted)
	}
	if st.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", st.CacheHits)
	}
}

// TestConcurrentIdenticalRequestsCoalesce: identical requests arriving
// while a run is in flight attach to it instead of starting their own.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	svc, c := newTestService(t, Config{MaxConcurrentRuns: 4})
	ctx := context.Background()

	const n = 4
	envs := make([]*Envelope, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			envs[i], errs[i] = c.Run(ctx, tinyRequest(5))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if envs[i].Status != StatusDone {
			t.Fatalf("request %d: status %s (%s)", i, envs[i].Status, envs[i].Error)
		}
		if envs[i].ID != envs[0].ID {
			t.Errorf("request %d ran separately: id %s vs %s", i, envs[i].ID, envs[0].ID)
		}
	}
	st := svc.Stats()
	if st.RunsStarted != 1 {
		t.Errorf("%d concurrent identical requests started %d runs, want 1", n, st.RunsStarted)
	}
	if st.Coalesced+st.CacheHits != n-1 {
		t.Errorf("coalesced=%d cache_hits=%d, want them to cover %d requests",
			st.Coalesced, st.CacheHits, n-1)
	}
}

// TestCanonicalizationSharesRuns: a request with explicit defaults and
// one with omitted fields name the same world and share a cache entry.
func TestCanonicalizationSharesRuns(t *testing.T) {
	svc, c := newTestService(t, Config{})
	ctx := context.Background()

	if _, err := c.Run(ctx, Request{Seed: 7, Scale: 0.01, AnnotationSize: 150, Workers: 0}); err != nil {
		t.Fatal(err)
	}
	env, err := c.Run(ctx, Request{Seed: 7, Scale: 0.01, AnnotationSize: 150, Workers: -3})
	if err != nil {
		t.Fatal(err)
	}
	if !env.Cached {
		t.Error("canonically-identical request missed the cache")
	}
	if st := svc.Stats(); st.RunsStarted != 1 {
		t.Errorf("started %d runs, want 1", st.RunsStarted)
	}
}

// TestLRUEviction: with capacity 1, a second world evicts the first,
// and re-requesting the first runs it again.
func TestLRUEviction(t *testing.T) {
	svc, c := newTestService(t, Config{CacheSize: 1})
	ctx := context.Background()

	a1, err := c.Run(ctx, tinyRequest(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, tinyRequest(13)); err != nil {
		t.Fatal(err)
	}
	a2, err := c.Run(ctx, tinyRequest(11))
	if err != nil {
		t.Fatal(err)
	}
	if a2.Cached {
		t.Error("evicted entry served from cache")
	}
	if a2.ID == a1.ID {
		t.Error("evicted run re-served instead of re-run")
	}
	st := svc.Stats()
	if st.RunsStarted != 3 || st.Evictions < 1 {
		t.Errorf("runs=%d evictions=%d, want 3 runs and >=1 eviction", st.RunsStarted, st.Evictions)
	}
	// Determinism: the re-run reproduces the evicted run's results.
	if a1.Report != a2.Report {
		t.Error("re-run after eviction produced a different report")
	}

	// The evicted run's id is gone.
	if _, err := c.Get(ctx, a1.ID); err == nil {
		t.Error("GET of an evicted run should 404")
	}
}

func TestGetByID(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()

	env, err := c.Run(ctx, tinyRequest(17))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, env.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || got.Summary == nil || got.Summary.EWhoringThreads != env.Summary.EWhoringThreads {
		t.Errorf("GET %s = %+v", env.ID, got)
	}
	if _, err := c.Get(ctx, "s-999"); err == nil {
		t.Error("unknown id should 404")
	}
}

func TestRejectsOversizedScale(t *testing.T) {
	_, c := newTestService(t, Config{MaxScale: 0.02})
	_, err := c.Run(context.Background(), Request{Scale: 0.5})
	if err == nil || !strings.Contains(err.Error(), "scale") {
		t.Fatalf("oversized scale not rejected: %v", err)
	}
}

func TestRejectsOversizedWorkers(t *testing.T) {
	_, c := newTestService(t, Config{})
	_, err := c.Run(context.Background(), Request{Scale: 0.01, Workers: 1_000_000_000})
	if err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("oversized worker count not rejected: %v", err)
	}
}

func TestRejectsMalformedBody(t *testing.T) {
	_, c := newTestService(t, Config{})
	srvURL := c.BaseURL
	resp, err := c.HTTP.Post(srvURL+"/v1/study", "application/json",
		strings.NewReader(`{"seed": "not a number"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// TestStudyReportMatchesDirectRun pins the service to the library: the
// report served over HTTP is byte-identical to report.Full of a direct
// in-process run with the same options.
func TestStudyReportMatchesDirectRun(t *testing.T) {
	_, c := newTestService(t, Config{})
	env, err := c.Run(context.Background(), tinyRequest(19))
	if err != nil {
		t.Fatal(err)
	}
	if env.Status != StatusDone {
		t.Fatalf("status %s: %s", env.Status, env.Error)
	}
	want := directReport(t, tinyRequest(19))
	if env.Report != want {
		t.Error("served report differs from a direct run")
	}
	if len(env.Stages) == 0 {
		t.Error("service did not report engine stage metrics")
	}
}

// TestAsyncSubmitAndPoll covers the fire-and-forget path: POST with
// wait=false returns 202 running, and GET ?wait=true delivers the
// finished run.
func TestAsyncSubmitAndPoll(t *testing.T) {
	svc, c := newTestService(t, Config{})
	body := strings.NewReader(`{"seed":23,"scale":0.01,"annotation_size":150}`)
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/study?wait=false", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := jsonDecode(resp, &env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 202 {
		t.Fatalf("async submit: status %d, want 202", resp.StatusCode)
	}
	if env.Status != StatusRunning && env.Status != StatusDone {
		t.Fatalf("async submit: run status %q", env.Status)
	}

	// A plain GET may observe the run mid-flight; it must still answer.
	got, err := c.Get(context.Background(), env.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != env.ID {
		t.Fatalf("GET returned run %s, want %s", got.ID, env.ID)
	}
	// Poll with wait=true for the final state.
	resp2, err := c.HTTP.Get(c.BaseURL + "/v1/study/" + env.ID + "?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	var final Envelope
	if err := jsonDecode(resp2, &final); err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone || final.Summary == nil {
		t.Fatalf("final = %+v", final)
	}
	if st := svc.Stats(); st.RunsStarted != 1 {
		t.Errorf("async flow started %d runs, want 1", st.RunsStarted)
	}
}
