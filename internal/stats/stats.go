// Package stats implements the descriptive statistics the study
// reports: empirical CDFs (Figures 2 and 4), quantiles, summary
// statistics for the per-group aggregates (Tables 8 and 10), and
// monthly time series (Figure 3).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds the usual moments and order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Median float64
	Max    float64
	Sum    float64
}

// Summarize computes a Summary of xs. A nil or empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF is an empirical cumulative distribution function over a sample.
// The paper presents several results as CDF plots (Figures 2 and 4);
// ECDF provides the evaluation and plotting series behind them.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample xs (copied, then sorted).
func NewECDF(xs []float64) *ECDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Count of values <= x via binary search for the first value > x.
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(e.sorted, q)
}

// Point is one (x, cumulative-percentage) pair in a CDF series.
type Point struct {
	X   float64
	Pct float64 // cumulative percentage in [0, 100]
}

// Series returns up to n evenly spaced points of the CDF, suitable for
// rendering the paper's CDF figures. The final point always reaches
// 100%.
func (e *ECDF) Series(n int) []Point {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		idx := i*len(e.sorted)/n - 1
		pts = append(pts, Point{
			X:   e.sorted[idx],
			Pct: 100 * float64(idx+1) / float64(len(e.sorted)),
		})
	}
	return pts
}

// Month identifies a calendar month.
type Month struct {
	Year int
	M    time.Month
}

// MonthOf returns the Month containing t (in UTC).
func MonthOf(t time.Time) Month {
	u := t.UTC()
	return Month{Year: u.Year(), M: u.Month()}
}

// Before reports whether m precedes other.
func (m Month) Before(other Month) bool {
	if m.Year != other.Year {
		return m.Year < other.Year
	}
	return m.M < other.M
}

// Next returns the following calendar month.
func (m Month) Next() Month {
	if m.M == time.December {
		return Month{Year: m.Year + 1, M: time.January}
	}
	return Month{Year: m.Year, M: m.M + 1}
}

// String formats the month like "Jan 14", matching the axis labels of
// Figure 3.
func (m Month) String() string {
	return fmt.Sprintf("%s %02d", m.M.String()[:3], m.Year%100)
}

// MonthlySeries counts events per calendar month. It backs Figure 3
// (proof-of-earnings per payment platform per month).
type MonthlySeries struct {
	counts map[Month]int
}

// NewMonthlySeries returns an empty monthly series.
func NewMonthlySeries() *MonthlySeries {
	return &MonthlySeries{counts: make(map[Month]int)}
}

// Add records one event at time t.
func (s *MonthlySeries) Add(t time.Time) { s.AddN(t, 1) }

// AddN records n events at time t.
func (s *MonthlySeries) AddN(t time.Time, n int) {
	s.counts[MonthOf(t)] += n
}

// Count returns the number of events recorded in m.
func (s *MonthlySeries) Count(m Month) int { return s.counts[m] }

// Total returns the number of events across all months.
func (s *MonthlySeries) Total() int {
	total := 0
	for _, c := range s.counts {
		total += c
	}
	return total
}

// Span returns the earliest and latest months with events, and false if
// the series is empty.
func (s *MonthlySeries) Span() (first, last Month, ok bool) {
	for m := range s.counts {
		if !ok {
			first, last, ok = m, m, true
			continue
		}
		if m.Before(first) {
			first = m
		}
		if last.Before(m) {
			last = m
		}
	}
	return first, last, ok
}

// MonthCount is one month's value in a dense series.
type MonthCount struct {
	Month Month
	Count int
}

// Dense returns the series as consecutive months from first to last
// (inclusive), filling gaps with zero counts.
func (s *MonthlySeries) Dense(first, last Month) []MonthCount {
	if last.Before(first) {
		return nil
	}
	var out []MonthCount
	for m := first; !last.Before(m); m = m.Next() {
		out = append(out, MonthCount{Month: m, Count: s.counts[m]})
	}
	return out
}

// Histogram counts values into [edges[i], edges[i+1]) bins, with a
// final overflow bin for values >= the last edge.
type Histogram struct {
	Edges  []float64
	Counts []int
}

// NewHistogram builds a histogram of xs over the given ascending bin
// edges. It panics if fewer than one edge is provided or edges are not
// strictly ascending.
func NewHistogram(xs []float64, edges []float64) *Histogram {
	if len(edges) == 0 {
		panic("stats: NewHistogram requires at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly ascending")
		}
	}
	h := &Histogram{Edges: edges, Counts: make([]int, len(edges))}
	for _, x := range xs {
		if x < edges[0] {
			continue
		}
		idx := sort.SearchFloat64s(edges, math.Nextafter(x, math.Inf(1)))
		h.Counts[idx-1]++
	}
	return h
}

// Total returns the number of values binned (values below the first
// edge are dropped).
func (h *Histogram) Total() int {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// Gini returns the Gini coefficient of the (non-negative) sample: 0 is
// perfect equality, values near 1 indicate the extreme concentration
// the paper observes in earnings and pack-sharing.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var cum, weighted float64
	for i, x := range sorted {
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - (n+1)*cum) / (n * cum)
}

// tCrit95 holds two-sided 95% Student-t critical values for 1–30
// degrees of freedom; larger samples fall back to the normal 1.96.
// The sweep engine's confidence intervals typically aggregate 3–30
// seeds, squarely inside the table.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom (NaN for df < 1).
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		return math.NaN()
	case df <= len(tCrit95):
		return tCrit95[df-1]
	default:
		return 1.96
	}
}

// Interval is a sample mean with its two-sided 95% confidence
// interval and the sample extremes. A single observation has a
// degenerate interval (Low == High == Mean): there is no variance
// estimate to widen it with.
type Interval struct {
	N         int
	Mean, Std float64
	Low, High float64
	HalfWidth float64
	Min, Max  float64
}

// MeanCI95 computes the sample mean and its Student-t 95% confidence
// interval. Empty samples return a zero Interval with NaN moments.
func MeanCI95(xs []float64) Interval {
	if len(xs) == 0 {
		nan := math.NaN()
		return Interval{Mean: nan, Std: nan, Low: nan, High: nan, Min: nan, Max: nan}
	}
	s := Summarize(xs)
	iv := Interval{
		N: s.N, Mean: s.Mean, Std: s.Std,
		Low: s.Mean, High: s.Mean, Min: s.Min, Max: s.Max,
	}
	if s.N > 1 {
		iv.HalfWidth = TCritical95(s.N-1) * s.Std / math.Sqrt(float64(s.N))
		iv.Low = s.Mean - iv.HalfWidth
		iv.High = s.Mean + iv.HalfWidth
	}
	return iv
}

// Fit is an ordinary-least-squares line y = Intercept + Slope*x.
type Fit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination (1 for a perfect fit; 0
	// when x explains nothing, or when y is constant).
	R2 float64
}

// Linreg fits y = a + b*x by least squares. It panics if the slices
// differ in length; it returns ok=false when fewer than two points are
// given or every x is identical (the slope is undefined).
func Linreg(xs, ys []float64) (Fit, bool) {
	if len(xs) != len(ys) {
		panic("stats: Linreg needs matched x/y samples")
	}
	if len(xs) < 2 {
		return Fit{}, false
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, false
	}
	f := Fit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy > 0 {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f, true
}

// TopShare returns the fraction of the total held by the k largest
// values, e.g. "the top-50 earners account for 55.5% of reported
// earnings".
func TopShare(xs []float64, k int) float64 {
	if len(xs) == 0 || k <= 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	total := 0.0
	for _, x := range sorted {
		total += x
	}
	if total == 0 {
		return 0
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	top := 0.0
	for i := len(sorted) - k; i < len(sorted); i++ {
		top += sorted[i]
	}
	return top / total
}
