// Package repro's benchmark harness regenerates every table and
// figure of "Measuring eWhoring" (IMC 2019). Each benchmark measures
// the analysis stage that produces one paper artefact, over a shared
// synthetic world; DESIGN.md §4 maps benchmarks to paper artefacts and
// EXPERIMENTS.md records paper-vs-measured values.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/actors"
	"repro/internal/artefact"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/domaincls"
	"repro/internal/earnings"
	"repro/internal/forum"
	"repro/internal/imagex"
	"repro/internal/ml"
	"repro/internal/nsfv"
	"repro/internal/nsfw"
	"repro/internal/photodna"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/synth"
	"repro/internal/topclass"
	"repro/internal/urlx"
)

// fixture holds the shared study state, built once.
type fixture struct {
	study *core.Study
	ew    []forum.ThreadID
	cls   core.ClassifierResult
	links core.LinkExtraction
	crawl []crawler.Result
	safe  []core.SafeImage
	nsfv  core.NSFVResult
	prov  core.ProvenanceResult
	earn  core.EarningsResult
	act   core.ActorAnalysis
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func setup(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		f := &fixture{}
		f.study = core.NewStudy(core.Options{
			Synth:          synth.Config{Seed: 2019, Scale: 0.03},
			AnnotationSize: 500,
		})
		ctx := context.Background()
		f.ew = f.study.SelectEWhoring()
		f.cls, fixErr = f.study.TrainAndExtract(f.ew)
		if fixErr != nil {
			return
		}
		f.links = f.study.ExtractLinks(ctx, f.cls.Extract.TOPs)
		f.crawl = f.study.CrawlLinks(ctx, f.links.Tasks)
		f.safe, _ = f.study.FilterAbuse(ctx, f.crawl)
		f.nsfv = f.study.ClassifyNSFV(f.safe)
		f.prov = f.study.Provenance(ctx, f.nsfv)
		f.earn = f.study.AnalyzeEarnings(ctx, f.ew)
		f.act = f.study.AnalyzeActors(f.ew, f.cls.Extract.TOPs, f.earn.Proofs)
		fix = f
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

// --- Table 1 -----------------------------------------------------------

func BenchmarkTable1ForumOverview(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := f.study.ForumOverview(f.ew)
		if len(rows) != 10 {
			b.Fatal("Table 1 wrong shape")
		}
	}
}

// --- Table 2 (keyword methodology) ---------------------------------------

func BenchmarkTable2KeywordScan(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := f.study.World.Store.SearchHeadings(topclass.EWhoringKeywords...)
		if len(ids) == 0 {
			b.Fatal("keyword scan found nothing")
		}
	}
}

// --- §4.1 classifier -------------------------------------------------------

func BenchmarkTOPClassifier(b *testing.B) {
	f := setup(b)
	sample := f.study.World.AnnotationSample(400, 9)
	labeled := make([]topclass.Labeled, len(sample))
	for i, s := range sample {
		labeled[i] = topclass.Labeled{Thread: s.Thread, IsTOP: s.IsTOP}
	}
	train, test := labeled[:320], labeled[320:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := topclass.Train(f.study.World.Store, urlx.DefaultWhitelist(), train, ml.DefaultSVMConfig())
		if err != nil {
			b.Fatal(err)
		}
		m := h.Evaluate(test)
		b.ReportMetric(m.F1(), "F1")
	}
}

// --- Tables 3 and 4 ----------------------------------------------------------

func BenchmarkTable3ImageSharingLinks(b *testing.B) {
	f := setup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		links := f.study.ExtractLinks(ctx, f.cls.Extract.TOPs)
		if len(links.ImageSharing) == 0 {
			b.Fatal("no image-sharing links")
		}
	}
}

func BenchmarkTable4CloudStorageLinks(b *testing.B) {
	f := setup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		links := f.study.ExtractLinks(ctx, f.cls.Extract.TOPs)
		if len(links.CloudStorage) == 0 {
			b.Fatal("no cloud-storage links")
		}
	}
}

// --- §4.2 crawl --------------------------------------------------------------

func BenchmarkCrawl(b *testing.B) {
	f := setup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := f.study.CrawlLinks(ctx, f.links.Tasks)
		st := crawler.Summarize(results)
		if st.ImagesFetched == 0 {
			b.Fatal("crawl fetched nothing")
		}
		b.ReportMetric(float64(st.ImagesFetched), "images")
	}
}

// --- §4.3 PhotoDNA -------------------------------------------------------------

func BenchmarkPhotoDNAFilter(b *testing.B) {
	f := setup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hotline := f.study.Hotline
		_ = hotline
		safe, summary := f.study.FilterAbuse(ctx, f.crawl)
		if len(safe) == 0 || summary.Matches == 0 {
			b.Fatal("filter degenerate")
		}
	}
}

// BenchmarkHashImage measures the fused composite perceptual hash on
// a study-shaped raster — the innermost operation of the PhotoDNA
// gate, the reverse index and crawl dedup. Steady-state allocations
// must be zero (pinned by imagex.TestHashImageZeroAlloc).
func BenchmarkHashImage(b *testing.B) {
	im := imagex.GenModel(1, 0, imagex.PoseNude, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = photodna.HashImage(im)
	}
}

// --- §4.4 NSFV ---------------------------------------------------------------

func BenchmarkNSFVClassifier(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := f.study.ClassifyNSFV(f.safe)
		if len(res.Previews) == 0 {
			b.Fatal("no previews")
		}
	}
}

// --- Table 5 -------------------------------------------------------------------

func BenchmarkTable5ReverseSearch(b *testing.B) {
	f := setup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prov := f.study.Provenance(ctx, f.nsfv)
		if prov.Packs.Total == 0 {
			b.Fatal("no pack searches")
		}
		b.ReportMetric(100*float64(prov.Packs.Matched)/float64(prov.Packs.Total), "pack-match-%")
	}
}

// --- Table 6 --------------------------------------------------------------------

func BenchmarkTable6DomainCategories(b *testing.B) {
	f := setup(b)
	dir := f.study.World.Directory
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mk := range []func(*domaincls.Directory) *domaincls.Classifier{
			domaincls.NewMcAfee, domaincls.NewVirusTotal, domaincls.NewOpenDNS,
		} {
			rows := domaincls.Tally(mk(dir), f.prov.Domains, 85)
			if len(rows) == 0 {
				b.Fatal("empty tally")
			}
		}
	}
}

// --- Figure 2 ---------------------------------------------------------------------

func BenchmarkFigure2EarningsCDF(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e1 := stats.NewECDF(f.earn.PerActorUSD)
		e2 := stats.NewECDF(f.earn.PerActorProofs)
		if e1.N() == 0 || e2.N() == 0 {
			b.Fatal("empty CDFs")
		}
		_ = e1.Series(20)
		_ = e2.Series(20)
	}
}

// --- Figure 3 ----------------------------------------------------------------------

func BenchmarkFigure3PlatformEvolution(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		first, last, ok := f.earn.MonthlyAGC.Span()
		if !ok {
			b.Fatal("no AGC series")
		}
		dense := f.earn.MonthlyAGC.Dense(first, last)
		if len(dense) == 0 {
			b.Fatal("empty series")
		}
	}
}

// --- Table 7 -----------------------------------------------------------------------

func BenchmarkTable7CurrencyExchange(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := f.study.ExchangeAnalysis(f.act.Profiles)
		if tbl.Total == 0 {
			b.Fatal("empty Table 7")
		}
	}
}

// --- Table 8 / Figure 4 ---------------------------------------------------------------

func BenchmarkTable8ActorOverview(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profiles := actors.BuildProfiles(f.study.World.Store, f.ew)
		rows := actors.Buckets(profiles, nil)
		if rows[0].Actors == 0 {
			b.Fatal("empty Table 8")
		}
	}
}

func BenchmarkFigure4ActorCDFs(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, thr := range actors.Table8Thresholds {
			_ = actors.CollectSamples(f.act.Profiles, thr)
		}
	}
}

// --- Tables 9 and 10 ---------------------------------------------------------------------

func BenchmarkTable9KeyActorIntersections(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ka := actors.SelectKeyActors(f.act.Inputs, actors.SelectionConfig{TopK: 20, MinPacks: 2})
		inter := ka.Intersections()
		if len(inter) == 0 {
			b.Fatal("empty intersections")
		}
	}
}

func BenchmarkTable10KeyActorGroups(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := f.act.Key.GroupCharacteristics(f.act.Profiles, f.act.Inputs)
		if len(rows) == 0 {
			b.Fatal("empty Table 10")
		}
	}
}

// --- Figure 5 ------------------------------------------------------------------------------

func BenchmarkFigure5InterestEvolution(b *testing.B) {
	f := setup(b)
	ewSet := forum.NewThreadSet(f.ew...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := actors.Interests(f.study.World.Store, f.act.Key.All, f.act.Profiles, ewSet, "Lounge")
		if len(fig) != 3 {
			b.Fatal("wrong phase count")
		}
	}
}

// --- Ablations ---------------------------------------------------------------------------------

// BenchmarkAblationHybridClassifier compares ML-only, heuristics-only
// and the union — the design choice §4.1 motivates.
func BenchmarkAblationHybridClassifier(b *testing.B) {
	f := setup(b)
	sample := f.study.World.AnnotationSample(400, 17)
	labeled := make([]topclass.Labeled, len(sample))
	for i, s := range sample {
		labeled[i] = topclass.Labeled{Thread: s.Thread, IsTOP: s.IsTOP}
	}
	train, test := labeled[:320], labeled[320:]
	h, err := topclass.Train(f.study.World.Store, urlx.DefaultWhitelist(), train, ml.DefaultSVMConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ml-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var m ml.Metrics
			for _, l := range test {
				m.Observe(h.Classify(l.Thread).ML, l.IsTOP)
			}
			b.ReportMetric(m.F1(), "F1")
		}
	})
	b.Run("heuristics-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var m ml.Metrics
			for _, l := range test {
				m.Observe(h.Classify(l.Thread).Heuristic, l.IsTOP)
			}
			b.ReportMetric(m.F1(), "F1")
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var m ml.Metrics
			for _, l := range test {
				m.Observe(h.Classify(l.Thread).IsTOP(), l.IsTOP)
			}
			b.ReportMetric(m.F1(), "F1")
		}
	})
}

// BenchmarkAblationNSFVThresholds sweeps Algorithm 1's thresholds over
// the validation corpus (the paper's semi-automatic tuning).
func BenchmarkAblationNSFVThresholds(b *testing.B) {
	corpus := nsfv.BuildValidationSet(2019)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th, eval := nsfv.Tune(corpus, nsfw.Default())
		if eval.Detection != 1 {
			b.Fatalf("tuned detection %.3f", eval.Detection)
		}
		_ = th
		b.ReportMetric(eval.FalsePositive, "FP-rate")
	}
}

// BenchmarkAblationHashRobustness measures how the transforms actors
// apply affect reverse-search matching — the mechanism behind Table
// 5's pack/preview gap.
func BenchmarkAblationHashRobustness(b *testing.B) {
	transforms := []struct {
		name string
		fn   func(*imagex.Image) *imagex.Image
	}{
		{"identity", func(im *imagex.Image) *imagex.Image { return im }},
		{"recompress", func(im *imagex.Image) *imagex.Image { return im.Recompress(24) }},
		{"watermark", func(im *imagex.Image) *imagex.Image { return im.Watermark("HF.NET") }},
		{"shade", func(im *imagex.Image) *imagex.Image { return im.Shade(0.25) }},
		{"mirror", func(im *imagex.Image) *imagex.Image { return im.Mirror() }},
	}
	for _, tr := range transforms {
		b.Run(tr.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matched := 0
				const n = 50
				for s := 0; s < n; s++ {
					orig := imagex.GenModel(uint64(s), 0, imagex.PoseNude, 48)
					mod := tr.fn(orig)
					if imagex.Hash128Of(orig).Distance(imagex.Hash128Of(mod)) <= 10 {
						matched++
					}
				}
				b.ReportMetric(100*float64(matched)/n, "match-%")
			}
		})
	}
}

// BenchmarkAblationCrawlerConcurrency sweeps the crawler's worker
// count.
func BenchmarkAblationCrawlerConcurrency(b *testing.B) {
	f := setup(b)
	ctx := context.Background()
	for _, workers := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "w1", 4: "w4", 16: "w16"}[workers], func(b *testing.B) {
			opts := f.study.Opts
			opts.CrawlConcurrency = workers
			f.study.Opts = opts
			tasks := f.links.Tasks
			if len(tasks) > 150 {
				tasks = tasks[:150]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = f.study.CrawlLinks(ctx, tasks)
			}
		})
	}
}

// BenchmarkFullStudy runs the complete pipeline end to end on a tiny
// world — the headline integration cost.
func BenchmarkFullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study := core.NewStudy(core.Options{
			Synth:          synth.Config{Seed: uint64(i + 1), Scale: 0.01},
			AnnotationSize: 200,
		})
		if _, err := study.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// studyRunOptions sizes the Run benchmarks: large enough that the
// stage work dominates setup, identical for both paths so the pair
// measures the engine alone (DESIGN.md §3).
func studyRunOptions() core.Options {
	return core.Options{
		Synth:          synth.Config{Seed: 2019, Scale: 0.03},
		AnnotationSize: 500,
	}
}

// BenchmarkStudyRunSequential is the stage-by-stage reference cost of
// the full Figure 1 pipeline plus the §5/§6 analyses.
func BenchmarkStudyRunSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		study := core.NewStudy(studyRunOptions())
		b.StartTimer()
		if _, err := study.RunSequential(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyRunConcurrent runs the identical study through the
// concurrent stage engine — the speedup over the sequential baseline
// is the engine's value, with results pinned identical by
// TestConcurrentRunMatchesSequential.
func BenchmarkStudyRunConcurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		study := core.NewStudy(studyRunOptions())
		b.StartTimer()
		if _, err := study.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Scale-1.0 gate ----------------------------------------------------

// BenchmarkScaleSynthGenerate measures world generation alone, at the
// development scale (0.1) and the paper scale (1.0). Generation is the
// dominant cold-start cost (the tracing work showed the synth span
// owning most of a cold request's critical path), so this pair is the
// number the parallel generator and its allocation work are held to.
// Worker count deliberately defaults (GOMAXPROCS): the benchmark gates
// the machine class CI runs on, and Workers never changes the world
// (TestGenerateParallelEquivalence).
func BenchmarkScaleSynthGenerate(b *testing.B) {
	for _, scale := range []float64{0.1, 1.0} {
		b.Run(fmt.Sprintf("scale%.1f", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := synth.Generate(synth.Config{Seed: 2019, Scale: scale})
				if w.Store.NumPosts() == 0 {
					b.Fatal("degenerate world")
				}
			}
		})
	}
}

// BenchmarkScale1StudyRunCold is the headline cold-start number: world
// generation plus the full concurrent pipeline at paper scale, nothing
// cached. CI's bench-scale job converts this plus the Generate pair
// into BENCH_scale1.fresh.json and gates it against the committed
// BENCH_scale1.json baseline.
func BenchmarkScale1StudyRunCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study := core.NewStudy(core.Options{
			Synth:          synth.Config{Seed: 2019, Scale: 1.0},
			AnnotationSize: 1000,
		})
		if _, err := study.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCrossSeed runs a small cross-seed sweep — three full
// studies on the local backend with bounded parallelism — the cost of
// one cell of cross-seed aggregation work. CI's bench-smoke job emits
// this as BENCH_sweep.json alongside the StudyRun pair.
func BenchmarkSweepCrossSeed(b *testing.B) {
	cells, err := sweep.Spec{
		Preset: sweep.PresetCrossSeed, Seeds: 3,
		Scale: 0.01, Annotation: 200,
	}.Cells()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := sweep.Run(context.Background(), "bench", cells, sweep.Local{},
			sweep.Options{Parallelism: 2})
		if len(res.Errors) != 0 {
			b.Fatalf("sweep errors: %v", res.Errors)
		}
		if len(res.Aggregate.Groups) != 1 {
			b.Fatal("sweep aggregate wrong shape")
		}
	}
}

// BenchmarkSweepWorldCache runs the crawler-concurrency preset — one
// world, four concurrency cells — with and without the sweep-level
// world cache. The gap between the two sub-benchmarks is the world
// regeneration the cache removes from every grid that only varies
// annotation/worker axes.
func BenchmarkSweepWorldCache(b *testing.B) {
	cells, err := sweep.Spec{
		Preset: sweep.PresetConcurrency, Seeds: 1,
		Scale: 0.01, Annotation: 200,
	}.Cells()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, backend sweep.Backend) {
		for i := 0; i < b.N; i++ {
			res := sweep.Run(context.Background(), "bench", cells, backend,
				sweep.Options{Parallelism: 2})
			if len(res.Errors) != 0 {
				b.Fatalf("sweep errors: %v", res.Errors)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, sweep.Local{}) })
	b.Run("cached", func(b *testing.B) { run(b, sweep.Local{Worlds: sweep.NewWorldCache(0)}) })
}

// BenchmarkArtefactReuse measures what the artefact memo store saves
// an annotation-only sweep: the cold pass computes every node for
// both annotation cells (sharing only the world-keyed selection),
// the warm pass re-runs the identical sweep against the primed store
// and recomputes nothing — zero crawls, zero reverse searches. The
// cold/warm gap is the artefact graph's reuse dividend; CI's
// bench-smoke job gates it as BENCH_artefact.json.
func BenchmarkArtefactReuse(b *testing.B) {
	cells := sweep.Grid{
		Seeds:       []uint64{2019},
		Scales:      []float64{0.01},
		Annotations: []int{150, 200},
	}.Cells()
	runSweep := func(b *testing.B, backend sweep.Backend) {
		res := sweep.Run(context.Background(), "bench", cells, backend,
			sweep.Options{Parallelism: 2})
		if len(res.Errors) != 0 {
			b.Fatalf("sweep errors: %v", res.Errors)
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSweep(b, sweep.Local{
				Worlds: sweep.NewWorldCache(0),
				Memo:   artefact.NewStore(0),
			})
		}
	})
	b.Run("warm", func(b *testing.B) {
		backend := sweep.Local{
			Worlds: sweep.NewWorldCache(0),
			Memo:   artefact.NewStore(0),
		}
		runSweep(b, backend) // prime the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runSweep(b, backend)
		}
	})
}

// earningsPlatformSanity keeps the earnings import exercised and
// verifies the fixture's platform mix.
func TestBenchFixtureSanity(t *testing.T) {
	b := &testing.B{}
	_ = b
	// The fixture is exercised by benchmarks; this test just checks
	// the bench file compiles against the analysis API.
	var _ = earnings.PlatformAGC
}
