package pipeline

import (
	"context"
	"sync"
)

// ErrGroup runs branches that can fail, in the mould of
// golang.org/x/sync/errgroup (not a dependency of this module): the
// first non-nil error is kept, and if the group was created with
// NewErrGroup, that error also cancels the group context so sibling
// branches can wind down. The zero value is usable and simply
// collects the first error.
type ErrGroup struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

// NewErrGroup returns a group whose derived context is cancelled the
// first time a branch returns a non-nil error or Wait completes.
func NewErrGroup(ctx context.Context) (*ErrGroup, context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	return &ErrGroup{cancel: cancel}, ctx
}

// Go starts fn as a branch.
func (g *ErrGroup) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.once.Do(func() {
				g.err = err
				if g.cancel != nil {
					g.cancel()
				}
			})
		}
	}()
}

// Wait blocks until every branch has returned, cancels the group
// context, and returns the first error.
func (g *ErrGroup) Wait() error {
	g.wg.Wait()
	if g.cancel != nil {
		g.cancel()
	}
	return g.err
}
