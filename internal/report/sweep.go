package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/sweep"
)

// fnum renders a float compactly: integers without a fraction, small
// values with enough precision to compare.
func fnum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v != 0 && v < 0.01 && v > -0.01 {
		return fmt.Sprintf("%.2e", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// SweepGroup renders one cross-seed group as a mean ± CI table.
func SweepGroup(g sweep.Group) string {
	rows := make([][]string, 0, len(g.Artefacts))
	for _, a := range g.Artefacts {
		ci := "—"
		if a.N > 1 {
			ci = fmt.Sprintf("[%s, %s]", fnum(a.CILow), fnum(a.CIHigh))
		}
		rows = append(rows, []string{
			a.Name, fmt.Sprint(a.N), fnum(a.Mean), fnum(a.Std), ci, fnum(a.Min), fnum(a.Max),
		})
	}
	faults := ""
	if g.Faults != "" {
		faults = fmt.Sprintf(" faults=%q", g.Faults)
	}
	title := fmt.Sprintf("Cross-seed aggregate (scale=%g annotation=%d workers=%d crawl=%d%s; %d seeds)",
		g.Scale, g.Annotation, g.Workers, g.CrawlConcurrency, faults, len(g.Seeds))
	return title + "\n" +
		table([]string{"Artefact", "N", "Mean", "Std", "95% CI", "Min", "Max"}, rows)
}

// SweepStability renders the paper-vs-measured stability table.
func SweepStability(rows []sweep.StabilityRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Name, fnum(r.Paper), fnum(r.Mean),
			fmt.Sprintf("[%s, %s]", fnum(r.CILow), fnum(r.CIHigh)),
			fnum(r.Std), fnum(r.AbsErr),
		})
	}
	return "Stability vs paper (scale-free artefacts, mean over seeds)\n" +
		table([]string{"Artefact", "Paper", "Mean", "95% CI", "Std", "|Δ|"}, out)
}

// SweepSlopes renders the artefact-vs-scale sensitivity fits.
func SweepSlopes(rows []sweep.Slope) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Name, fnum(r.Slope), fnum(r.Intercept), fmt.Sprintf("%.3f", r.R2)})
	}
	return "Scale sensitivity (least-squares fit of group mean vs scale)\n" +
		table([]string{"Artefact", "Slope", "Intercept", "R²"}, out)
}

// Sweep renders a full sweep result: per-cell outcomes, the error
// ledger and every aggregate table. cmd/ewsweep prints this for text
// output.
func Sweep(r *sweep.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== sweep %s: %d cells, %d ok, %d failed, %s ===\n",
		r.Name, len(r.Cells), r.OK(), len(r.Errors),
		(time.Duration(r.ElapsedMS) * time.Millisecond).Round(time.Millisecond))

	// The Faults column appears only when some cell injects faults, so
	// fault-free sweep reports keep their original shape.
	faulted := false
	for _, o := range r.Cells {
		if o.Cell.Faults != "" {
			faulted = true
			break
		}
	}
	rows := make([][]string, 0, len(r.Cells))
	for _, o := range r.Cells {
		status := "ok"
		switch {
		case o.Err != "":
			status = "FAILED"
		case o.Cached:
			status = "cached"
		}
		row := []string{
			fmt.Sprint(o.Index), fmt.Sprint(o.Cell.Seed), fmt.Sprintf("%g", o.Cell.Scale),
			fmt.Sprint(o.Cell.Annotation), fmt.Sprint(o.Cell.Workers),
			fmt.Sprint(o.Cell.CrawlConcurrency),
		}
		if faulted {
			f := o.Cell.Faults
			if f == "" {
				f = "—"
			}
			row = append(row, f)
		}
		rows = append(rows, append(row, fmt.Sprintf("%dms", o.ElapsedMS), status))
	}
	header := []string{"#", "Seed", "Scale", "Annot", "Workers", "Crawl"}
	if faulted {
		header = append(header, "Faults")
	}
	header = append(header, "Time", "Status")
	sb.WriteString("\n")
	sb.WriteString(table(header, rows))

	if len(r.Errors) > 0 {
		sb.WriteString("\nError ledger:\n")
		for _, e := range r.Errors {
			fmt.Fprintf(&sb, "  cell %d (%s): %s\n", e.Index, e.Cell, e.Err)
		}
	}
	if r.Aggregate == nil {
		return sb.String()
	}
	for _, g := range r.Aggregate.Groups {
		sb.WriteString("\n")
		sb.WriteString(SweepGroup(g))
	}
	if len(r.Aggregate.Stability) > 0 {
		sb.WriteString("\n")
		sb.WriteString(SweepStability(r.Aggregate.Stability))
	}
	if len(r.Aggregate.Slopes) > 0 {
		sb.WriteString("\n")
		sb.WriteString(SweepSlopes(r.Aggregate.Slopes))
	}
	return sb.String()
}
