// Package tracex is the service spine's span tracer: the causal
// counterpart of logx. Where a logx line says "node crawl computed in
// 300ms", a tracex span says *under which request, run and parent
// stage* it did — the span tree over one trace is the study's actual
// execution DAG with wall time on every edge, which is what the
// critical-path analyzer (critpath.go) consumes to answer "what
// dominates a cold start".
//
// The design constraints mirror logx:
//
//   - a nil *Tracer — and a context with no tracer bound — is a
//     complete no-op: StartSpan returns a nil *Span whose every method
//     is safe, and the disabled path allocates nothing (pinned by
//     TestStartSpanDisabledAllocs), so library code traces
//     unconditionally;
//   - identifiers and timestamps come from injectable seams (IDSource,
//     Config.Now), so tests pin byte-stable traces and the study path
//     stays deterministic;
//   - completed spans land in a bounded ring of recent traces — the
//     GET /v1/trace/{id} source — with per-trace span caps, so a
//     long-lived server's tracing memory is a constant.
//
// Spans propagate across processes with a W3C-style traceparent header
// (propagate.go): studysvc.Client injects, the server adopts, and a
// remote sweep renders as one trace spanning client and server.
package tracex

import (
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one trace: every span caused by one root request
// carries the same TraceID, across processes.
type TraceID [16]byte

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex digits (the traceparent
// wire form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the id is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagatable part of a span: enough to parent a
// child — locally or on the far side of an HTTP hop.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// IsValid reports whether the context names a real span.
func (sc SpanContext) IsValid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// IDSource mints trace and span ids. Implementations must be safe for
// concurrent use.
type IDSource interface {
	NewTraceID() TraceID
	NewSpanID() SpanID
}

// SeqIDs is the deterministic IDSource: ids are a seed plus a
// monotonic counter, so a test (or a reproducible CLI run) gets the
// same ids every time. Give concurrent processes distinct seeds — the
// seed occupies the top half of every id, so two differently-seeded
// sources can never collide.
type SeqIDs struct {
	seed     uint64
	traceCtr atomic.Uint64
	spanCtr  atomic.Uint64
}

// NewSeqIDs returns a counter-based id source under the given seed.
func NewSeqIDs(seed uint64) *SeqIDs { return &SeqIDs{seed: seed} }

func putBE(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// NewTraceID mints the next trace id: seed in the top 8 bytes, counter
// (from 1) in the bottom 8.
func (s *SeqIDs) NewTraceID() TraceID {
	var t TraceID
	putBE(t[:8], s.seed)
	putBE(t[8:], s.traceCtr.Add(1))
	return t
}

// NewSpanID mints the next span id (counter from 1; the zero SpanID
// means "no parent" and is never issued).
func (s *SeqIDs) NewSpanID() SpanID {
	var id SpanID
	putBE(id[:], s.spanCtr.Add(1))
	return id
}

// Defaults for Config.
const (
	DefaultMaxTraces        = 64
	DefaultMaxSpansPerTrace = 4096
)

// Config tunes a Tracer.
type Config struct {
	// IDs mints trace/span ids (default: NewSeqIDs(1)).
	IDs IDSource
	// MaxTraces bounds the ring of recent traces (default 64): when a
	// new trace's first span arrives at a full ring, the oldest trace
	// is dropped whole.
	MaxTraces int
	// MaxSpansPerTrace caps the spans retained per trace (default
	// 4096); further spans are counted in Trace.Dropped, not stored.
	MaxSpansPerTrace int
	// Now is the clock seam; tests pin it for byte-stable traces (nil
	// = time.Now).
	Now func() time.Time
}

// Tracer records completed spans into a bounded ring of recent traces.
// A nil *Tracer is a valid no-op. Create with New.
type Tracer struct {
	ids      IDSource
	now      func() time.Time
	maxTrace int
	maxSpans int

	mu     sync.Mutex
	traces map[TraceID]*bucket
	order  []TraceID // arrival order, oldest first
}

// bucket holds one trace's recorded spans.
type bucket struct {
	spans   []SpanRecord
	dropped int
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	if cfg.IDs == nil {
		cfg.IDs = NewSeqIDs(1)
	}
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = DefaultMaxTraces
	}
	if cfg.MaxSpansPerTrace <= 0 {
		cfg.MaxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Tracer{
		ids:      cfg.IDs,
		now:      cfg.Now,
		maxTrace: cfg.MaxTraces,
		maxSpans: cfg.MaxSpansPerTrace,
		traces:   make(map[TraceID]*bucket),
	}
}

// attr is one span key/value pair; values are strings so a trace
// serializes canonically (encoding/json sorts the map form).
type attr struct {
	key, value string
}

// Span is one in-flight timed operation. A nil *Span (what StartSpan
// returns when no tracer is bound) is a complete no-op.
type Span struct {
	tracer *Tracer
	name   string
	sc     SpanContext
	parent SpanID
	start  time.Time

	mu    sync.Mutex
	attrs []attr
	ended bool
}

// Context returns the span's propagatable identity (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a key/value pair to the span. Later values win on
// duplicate keys. Safe on nil and after End (then a no-op).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].value = value
			return
		}
	}
	s.attrs = append(s.attrs, attr{key, value})
}

// End completes the span and records it into the tracer's ring.
// Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		TraceID: s.sc.Trace.String(),
		SpanID:  s.sc.Span.String(),
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   s.tracer.now().Sub(s.start).Microseconds(),
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.key] = a.value
		}
	}
	s.mu.Unlock()
	s.tracer.record(s.sc.Trace, rec)
}

// startSpan opens a span under parent (zero parent starts a new trace).
func (t *Tracer) startSpan(parent SpanContext, name string) *Span {
	sc := SpanContext{Trace: parent.Trace, Span: t.ids.NewSpanID()}
	if sc.Trace.IsZero() {
		sc.Trace = t.ids.NewTraceID()
	}
	return &Span{
		tracer: t,
		name:   name,
		sc:     sc,
		parent: parent.Span,
		start:  t.now(),
	}
}

// record files one completed span under its trace, evicting the oldest
// trace when the ring is full and counting spans beyond the per-trace
// cap instead of storing them.
func (t *Tracer) record(tid TraceID, rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.traces[tid]
	if b == nil {
		b = &bucket{}
		t.traces[tid] = b
		t.order = append(t.order, tid)
		for len(t.order) > t.maxTrace {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
	}
	if len(b.spans) >= t.maxSpans {
		b.dropped++
		return
	}
	b.spans = append(b.spans, rec)
}

// SpanRecord is one completed span in wire form.
type SpanRecord struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the parent span's id ("" for a root span).
	Parent string `json:"parent_id,omitempty"`
	Name   string `json:"name"`
	// StartUS is the span's start as microseconds since the Unix epoch;
	// DurUS its duration in microseconds.
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Trace is the GET /v1/trace/{id} wire form: every recorded span of
// one trace, sorted by start time (span id breaking ties).
type Trace struct {
	TraceID string       `json:"trace_id"`
	Spans   []SpanRecord `json:"spans"`
	// Dropped counts spans beyond the per-trace cap that were discarded.
	Dropped int `json:"dropped,omitempty"`
}

// Trace snapshots the recorded spans of the trace with the given
// (32-hex-digit) id; ok reports whether the ring holds it. Safe on a
// nil tracer (never ok).
func (t *Tracer) Trace(id string) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	raw, err := hex.DecodeString(id)
	if err != nil || len(raw) != len(TraceID{}) {
		return Trace{}, false
	}
	var tid TraceID
	copy(tid[:], raw)
	t.mu.Lock()
	b := t.traces[tid]
	if b == nil {
		t.mu.Unlock()
		return Trace{}, false
	}
	out := Trace{TraceID: id, Spans: make([]SpanRecord, len(b.spans)), Dropped: b.dropped}
	copy(out.Spans, b.spans)
	t.mu.Unlock()
	sortSpans(out.Spans)
	return out, true
}

// TraceIDs lists the ring's trace ids, oldest first.
func (t *Tracer) TraceIDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.order))
	for i, tid := range t.order {
		out[i] = tid.String()
	}
	return out
}

// sortSpans orders spans by start time, then span id — a deterministic
// order however the concurrent evaluation interleaved.
func sortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartUS != spans[j].StartUS {
			return spans[i].StartUS < spans[j].StartUS
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// Merge combines span sets that share one trace id — the client-side
// and server-side halves of a propagated trace — deduplicating by span
// id. The receiver's TraceID wins; spans from other traces are kept
// too (callers merge what they fetched).
func Merge(a, b Trace) Trace {
	out := Trace{TraceID: a.TraceID, Dropped: a.Dropped + b.Dropped}
	seen := make(map[string]bool, len(a.Spans)+len(b.Spans))
	for _, s := range append(append([]SpanRecord{}, a.Spans...), b.Spans...) {
		if seen[s.SpanID] {
			continue
		}
		seen[s.SpanID] = true
		out.Spans = append(out.Spans, s)
	}
	sortSpans(out.Spans)
	return out
}
