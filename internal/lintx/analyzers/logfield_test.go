package analyzers

import (
	"testing"

	"repro/internal/lintx/lintest"
)

// internal/studysvc pins the raw-printer ban, the explicit-writer and
// Sprintf escapes, the test-file exemption and the suppression
// directive; internal/tracex pins that the tracer is in scope;
// cmd/ewserve pins that the rule reaches the binary; plain pins that
// packages outside the spine are untouched.
func TestLogField(t *testing.T) {
	lintest.Run(t, "testdata", LogField, "internal/studysvc", "internal/tracex", "cmd/ewserve", "plain")
}
