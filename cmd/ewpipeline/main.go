// Command ewpipeline runs the Figure 1 measurement pipeline step by
// step with progress reporting — the operational view of the study,
// as opposed to ewreport's final tables.
//
// Usage:
//
//	ewpipeline [-seed N] [-scale F]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/synth"
)

func step(name string) func() {
	start := time.Now()
	fmt.Printf("==> %s\n", name)
	return func() {
		fmt.Printf("    done in %v\n", time.Since(start).Round(time.Millisecond))
	}
}

func main() {
	seed := flag.Uint64("seed", 2019, "world seed")
	scale := flag.Float64("scale", 0.05, "corpus scale")
	flag.Parse()
	ctx := context.Background()

	done := step("generate world")
	study := core.NewStudy(core.Options{Synth: synth.Config{Seed: *seed, Scale: *scale}})
	defer study.Close()
	done()

	done = step("select eWhoring threads (keyword search + HF board)")
	ew := study.SelectEWhoring()
	fmt.Printf("    %d threads\n", len(ew))
	done()

	done = step("train hybrid TOP classifier + sweep corpus")
	cls, err := study.TrainAndExtract(ew)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ewpipeline:", err)
		os.Exit(1)
	}
	fmt.Printf("    P=%.2f R=%.2f F1=%.2f; TOPs=%d (ML %d, heur %d, both %d)\n",
		cls.Metrics.Precision(), cls.Metrics.Recall(), cls.Metrics.F1(),
		len(cls.Extract.TOPs), cls.Extract.MLCount, cls.Extract.HeurCount, cls.Extract.BothCount)
	done()

	done = step("extract URLs + snowball whitelist")
	links := study.ExtractLinks(cls.Extract.TOPs)
	fmt.Printf("    %d tasks from %d TOPs (+%d snowballed domains)\n",
		len(links.Tasks), links.ThreadsWithLinks, links.SnowballAdded)
	done()

	done = step("crawl over live HTTP")
	results := study.CrawlLinks(ctx, links.Tasks)
	st := crawler.Summarize(results)
	fmt.Printf("    %d preview images, %d packs (%d images), %d unique\n",
		st.PreviewImages, st.PacksFetched, st.PackImages, st.UniqueImages)
	done()

	done = step("PhotoDNA filter (report + delete)")
	safe, pdna := study.FilterAbuse(results)
	fmt.Printf("    %d matches reported, %d URLs actioned, %d images pass\n",
		pdna.Matches, pdna.ActionableURLs, len(safe))
	done()

	done = step("NSFV classification (Algorithm 1)")
	nsfvRes := study.ClassifyNSFV(safe)
	fmt.Printf("    %d NSFV previews, %d SFV, %d pack images\n",
		len(nsfvRes.Previews), len(nsfvRes.SFV), len(nsfvRes.PackImages))
	done()

	done = step("reverse image search + provenance")
	prov := study.Provenance(nsfvRes)
	fmt.Printf("    packs: %d/%d matched; previews: %d/%d; %d domains; %d zero-match packs\n",
		prov.Packs.Matched, prov.Packs.Total,
		prov.Previews.Matched, prov.Previews.Total,
		len(prov.Domains), prov.ZeroMatch)
	done()

	done = step("earnings analysis (§5)")
	earn := study.AnalyzeEarnings(ctx, ew)
	fmt.Printf("    %d proofs by %d actors, total $%.0f\n",
		earn.Summary.Proofs, earn.Summary.Actors, earn.Summary.TotalUSD)
	done()

	done = step("actor analysis (§6)")
	act := study.AnalyzeActors(ew, cls.Extract.TOPs, earn.Proofs)
	fmt.Printf("    %d profiles, %d key actors\n", len(act.Profiles), len(act.Key.All))
	done()

	fmt.Println("pipeline complete")
}
