// Command ewsynth generates the synthetic CrimeBB-like world and
// prints its corpus statistics, for inspecting what the study runs on.
//
// Usage:
//
//	ewsynth [-seed N] [-scale F] [-workers N] [-noimages]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/synth"
)

func main() {
	seed := flag.Uint64("seed", 2019, "world seed")
	scale := flag.Float64("scale", 0.1, "corpus scale (1.0 ≈ paper scale)")
	workers := flag.Int("workers", 0, "generation workers (0 = GOMAXPROCS, 1 = sequential)")
	noImages := flag.Bool("noimages", false, "skip the image world")
	export := flag.String("export", "", "write the forum corpus as JSONL to this file")
	flag.Parse()

	cfg := synth.Config{Seed: *seed, Scale: *scale, SkipImages: *noImages, Workers: *workers}
	start := time.Now()
	w := synth.Generate(cfg)
	elapsed := time.Since(start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("generated in %v (workers=%d, heap %d MiB, peak sys %d MiB)\n\n",
		elapsed.Round(time.Millisecond), cfg.EffectiveWorkers(),
		ms.HeapAlloc>>20, ms.Sys>>20)

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ewsynth:", err)
			os.Exit(1)
		}
		if err := w.Store.Export(f); err != nil {
			fmt.Fprintln(os.Stderr, "ewsynth: export:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ewsynth: export:", err)
			os.Exit(1)
		}
		fmt.Printf("corpus exported to %s\n", *export)
	}

	fmt.Printf("forums:  %d\n", w.Store.NumForums())
	fmt.Printf("boards:  %d\n", w.Store.NumBoards())
	fmt.Printf("threads: %d\n", w.Store.NumThreads())
	fmt.Printf("posts:   %d\n", w.Store.NumPosts())
	fmt.Printf("actors:  %d\n", w.Store.NumActors())
	if first, last, ok := w.Store.Span(); ok {
		fmt.Printf("span:    %s .. %s\n", first.Format("2006-01"), last.Format("2006-01"))
	}
	fmt.Println()
	fmt.Println("eWhoring ground truth per forum:")
	for _, f := range w.Store.Forums() {
		tops := 0
		for _, tid := range w.EWhoring[f.ID] {
			if tr := w.Truth[tid]; tr != nil && tr.Kind == synth.KindTOP {
				tops++
			}
		}
		fmt.Printf("  %-16s threads=%-6d TOPs=%d\n", f.Name, len(w.EWhoring[f.ID]), tops)
	}
	fmt.Println()
	fmt.Printf("models: %d (flagged TOPs: %d)\n", len(w.Models), w.NumFlaggedTOPs)
	fmt.Printf("reverse index: %d records; wayback: %d URLs; domains: %d\n",
		w.Reverse.Len(), w.Wayback.NumURLs(), w.Directory.Len())
	fmt.Printf("hashlist entries: %d\n", w.HashList.Len())
	fmt.Printf("proof links: %d; preview links: %d; pack links: %d\n",
		len(w.Proofs), w.NumPreviewLinks, w.NumPackLinks)
}
