// Command ewpipeline runs the Figure 1 measurement pipeline with
// progress reporting — the operational view of the study, as opposed
// to ewreport's final tables. By default the study runs on the
// concurrent stage engine and prints per-stage worker counts, item
// flows and timings; -seq runs the sequential reference
// implementation instead (both produce identical results for the same
// seed).
//
// Usage:
//
//	ewpipeline [-seed N] [-scale F] [-workers N] [-seq]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	seed := flag.Uint64("seed", 2019, "world seed")
	scale := flag.Float64("scale", 0.05, "corpus scale")
	workers := flag.Int("workers", 0, "pipeline stage workers (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "run the sequential reference implementation")
	flag.Parse()
	ctx := context.Background()

	study := core.NewStudy(core.Options{
		Synth:   synth.Config{Seed: *seed, Scale: *scale},
		Workers: *workers,
	})
	defer study.Close()

	mode := "concurrent"
	if *seq {
		mode = "sequential"
	}
	fmt.Printf("==> running study (%s, seed=%d scale=%g)\n", mode, *seed, *scale)
	start := time.Now()
	var res *core.Results
	var err error
	if *seq {
		res, err = study.RunSequential(ctx)
	} else {
		res, err = study.Run(ctx)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ewpipeline:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	fmt.Printf("\n--- dataset (§3) ---\n")
	fmt.Printf("  %d eWhoring threads across %d forums\n",
		len(res.EWhoringThreads), len(res.Table1))

	m := res.Classifier.Metrics
	fmt.Printf("--- TOP classifier (§4.1) ---\n")
	fmt.Printf("  P=%.2f R=%.2f F1=%.2f; TOPs=%d (ML %d, heur %d, both %d)\n",
		m.Precision(), m.Recall(), m.F1(),
		len(res.Classifier.Extract.TOPs), res.Classifier.Extract.MLCount,
		res.Classifier.Extract.HeurCount, res.Classifier.Extract.BothCount)

	fmt.Printf("--- URL extraction + crawl (§4.2) ---\n")
	fmt.Printf("  %d tasks from %d TOPs (+%d snowballed domains)\n",
		len(res.Links.Tasks), res.Links.ThreadsWithLinks, res.Links.SnowballAdded)
	st := res.CrawlStats
	fmt.Printf("  %d preview images, %d packs (%d images), %d unique\n",
		st.PreviewImages, st.PacksFetched, st.PackImages, st.UniqueImages)

	fmt.Printf("--- PhotoDNA filter (§4.3) ---\n")
	fmt.Printf("  %d matches reported, %d URLs actioned\n",
		res.PhotoDNA.Matches, res.PhotoDNA.ActionableURLs)

	fmt.Printf("--- NSFV classification (§4.4) ---\n")
	fmt.Printf("  %d NSFV previews, %d SFV, %d pack images\n",
		len(res.NSFV.Previews), len(res.NSFV.SFV), len(res.NSFV.PackImages))

	fmt.Printf("--- reverse search + provenance (§4.5) ---\n")
	fmt.Printf("  packs: %d/%d matched; previews: %d/%d; %d domains; %d zero-match packs\n",
		res.Provenance.Packs.Matched, res.Provenance.Packs.Total,
		res.Provenance.Previews.Matched, res.Provenance.Previews.Total,
		len(res.Provenance.Domains), res.Provenance.ZeroMatch)

	fmt.Printf("--- earnings (§5) ---\n")
	fmt.Printf("  %d proofs by %d actors, total $%.0f\n",
		res.Earnings.Summary.Proofs, res.Earnings.Summary.Actors, res.Earnings.Summary.TotalUSD)

	fmt.Printf("--- actors (§6) ---\n")
	fmt.Printf("  %d profiles, %d key actors\n",
		len(res.Actors.Profiles), len(res.Actors.Key.All))

	if stats := study.PipelineStats(); len(stats) > 0 {
		fmt.Printf("\n--- pipeline stages ---\n")
		fmt.Printf("%-18s %7s %6s %6s %12s %12s\n", "stage", "workers", "in", "out", "wall", "busy")
		for _, sn := range stats {
			fmt.Printf("%-18s %7d %6d %6d %12s %12s\n",
				sn.Name, sn.Workers, sn.In, sn.Out,
				sn.Wall.Round(time.Microsecond), sn.Busy.Round(time.Microsecond))
		}
	}
	fmt.Printf("\npipeline complete in %v (%s)\n", elapsed, mode)
}
