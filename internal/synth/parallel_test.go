package synth

import (
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestGenerateParallelEquivalence pins the tentpole invariant: the
// parallel generator produces a bit-identical world to the sequential
// reference for every worker count, across seeds and scales.
// reflect.DeepEqual sees every exported and unexported field, so this
// also catches stray executor state left on the World.
func TestGenerateParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale generation is slow")
	}
	for _, seed := range []uint64{77, 2019} {
		for _, scale := range []float64{0.05, 0.5} {
			// The full worker matrix runs at the cheap scale; the big
			// scale checks one parallel count to bound test time.
			counts := []int{2, 4, 7}
			if scale > 0.1 {
				counts = []int{4}
			}
			cfg := Config{Seed: seed, Scale: scale, ImageSize: 48}
			want := GenerateSequential(cfg)
			for _, workers := range counts {
				cfg.Workers = workers
				got := Generate(cfg)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed=%d scale=%g workers=%d: world differs from sequential reference", seed, scale, workers)
				}
			}
		}
	}
}

// TestGenerateWorkersOutsideIdentity pins that Workers is an execution
// knob, not part of the world's identity: Canonical zeroes it, and the
// generated world records the canonical config, so cache keys built
// from either side match.
func TestGenerateWorkersOutsideIdentity(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.02, ImageSize: 48, Workers: 3}
	if cfg.Canonical().Workers != 0 {
		t.Fatalf("Canonical must zero Workers, got %d", cfg.Canonical().Workers)
	}
	w := Generate(cfg)
	if w.Config != cfg.Canonical() {
		t.Fatalf("world config %+v is not the canonical form %+v", w.Config, cfg.Canonical())
	}
	if w.Config.Workers != 0 {
		t.Fatalf("world must not record a worker count, got %d", w.Config.Workers)
	}
}

// TestGenerateParallelSpeedup checks that fanning generation out
// actually buys wall clock. Parallel speedup needs parallel hardware,
// so single-CPU machines skip (the equivalence test above still runs
// the parallel path there).
func TestGenerateParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skipf("GOMAXPROCS=%d: no parallel speedup possible on one CPU", procs)
	}
	cfg := Config{Seed: 2019, Scale: 0.3, ImageSize: 48}
	cfg.Workers = 1
	//lint:ignore determinism timing comparison only; no wall-clock value reaches a world
	t0 := time.Now()
	Generate(cfg)
	seq := time.Since(t0)
	cfg.Workers = procs
	//lint:ignore determinism timing comparison only; no wall-clock value reaches a world
	t1 := time.Now()
	Generate(cfg)
	par := time.Since(t1)
	// Image work is most but not all of generation; 1.3x at two cores
	// is a loose floor that still catches an accidentally serialized
	// pool.
	if par > seq {
		t.Errorf("parallel generation slower than sequential: %v > %v", par, seq)
	}
}
