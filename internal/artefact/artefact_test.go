package artefact

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// env is a test environment: a request-like key plus a trace of
// computed nodes.
type env struct {
	key string

	mu    sync.Mutex
	trace []string
}

func (e *env) record(name string) {
	e.mu.Lock()
	e.trace = append(e.trace, name)
	e.mu.Unlock()
}

func (e *env) traced() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.trace))
	copy(out, e.trace)
	sort.Strings(out)
	return out
}

// diamond builds the classic diamond a → (b, c) → d, where every node
// value is the concatenation of its dependency values plus its own
// name.
func diamond(t *testing.T) *Graph[*env] {
	t.Helper()
	g := NewGraph[*env]()
	key := func(name string) func(*env) string {
		return func(e *env) string { return e.key + "/" + name }
	}
	node := func(name string, deps ...string) Node[*env] {
		return Node[*env]{
			Name: name,
			Deps: deps,
			Key:  key(name),
			Compute: func(_ context.Context, e *env, d Deps) (any, error) {
				e.record(name)
				parts := make([]string, 0, len(deps)+1)
				for _, dep := range deps {
					parts = append(parts, Get[string](d, dep))
				}
				parts = append(parts, name)
				return strings.Join(parts, "+"), nil
			},
		}
	}
	g.MustRegister(node("a"))
	g.MustRegister(node("b", "a"))
	g.MustRegister(node("c", "a"))
	g.MustRegister(node("d", "b", "c"))
	return g
}

func TestEvaluateDiamond(t *testing.T) {
	g := diamond(t)
	e := &env{key: "k"}
	vals, err := g.Evaluate(context.Background(), e, nil, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Get[string](vals, "d"); got != "a+b+a+c+d" {
		t.Fatalf("d = %q", got)
	}
	// The private store still deduplicates within one evaluation: the
	// shared dependency a computes once, not once per consumer.
	if got := e.traced(); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("computed %v, want each node exactly once", got)
	}
}

func TestEvaluateSelective(t *testing.T) {
	g := diamond(t)
	e := &env{key: "k"}
	store := NewStore(0)
	vals, err := g.Evaluate(context.Background(), e, store, EvalOptions{}, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vals["c"]; ok {
		t.Fatal("c is outside b's closure but was returned")
	}
	if got := e.traced(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("computed %v, want only the closure of b", got)
	}
	if n := store.ComputeCount("d"); n != 0 {
		t.Fatalf("d computed %d times for target b", n)
	}
}

func TestEvaluateMemoizes(t *testing.T) {
	g := diamond(t)
	store := NewStore(0)
	ctx := context.Background()

	e1 := &env{key: "k"}
	if _, err := g.Evaluate(ctx, e1, store, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	// Same key, fresh environment: everything is answered from memo.
	e2 := &env{key: "k"}
	var events []Event
	vals, err := g.Evaluate(ctx, e2, store, EvalOptions{
		Observe: func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := Get[string](vals, "d"); got != "a+b+a+c+d" {
		t.Fatalf("memoized d = %q", got)
	}
	if len(e2.traced()) != 0 {
		t.Fatalf("warm evaluation computed %v", e2.traced())
	}
	for _, ev := range events {
		if !ev.Memoized {
			t.Fatalf("event for %s not marked memoized", ev.Node)
		}
	}
	// A different key shares nothing.
	e3 := &env{key: "other"}
	if _, err := g.Evaluate(ctx, e3, store, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := e3.traced(); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("distinct key computed %v, want all nodes", got)
	}
	if st := store.Stats(); st.Computes != 8 || st.Hits != 4 {
		t.Fatalf("store stats %+v, want 8 computes / 4 hits", st)
	}
}

func TestEvaluateSingleflight(t *testing.T) {
	// Many concurrent evaluations over one store and key: each node
	// computes exactly once in total.
	g := diamond(t)
	store := NewStore(0)
	var wg sync.WaitGroup
	var computes atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := &env{key: "k"}
			if _, err := g.Evaluate(context.Background(), e, store, EvalOptions{}); err != nil {
				t.Error(err)
			}
			computes.Add(int64(len(e.traced())))
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 4 {
		t.Fatalf("%d total computations across 8 concurrent evaluations, want 4", got)
	}
}

func TestEvaluateErrors(t *testing.T) {
	g := NewGraph[*env]()
	boom := errors.New("boom")
	var attempts atomic.Int64
	g.MustRegister(Node[*env]{
		Name: "bad",
		Key:  func(*env) string { return "k" },
		Compute: func(context.Context, *env, Deps) (any, error) {
			// Fail only the first time: errors must not memoize.
			if attempts.Add(1) == 1 {
				return nil, boom
			}
			return "ok", nil
		},
	})
	g.MustRegister(Node[*env]{
		Name: "down",
		Deps: []string{"bad"},
		Key:  func(*env) string { return "k" },
		Compute: func(_ context.Context, _ *env, d Deps) (any, error) {
			return Get[string](d, "bad") + "!", nil
		},
	})
	store := NewStore(0)
	if _, err := g.Evaluate(context.Background(), &env{}, store, EvalOptions{}, "down"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	vals, err := g.Evaluate(context.Background(), &env{}, store, EvalOptions{}, "down")
	if err != nil {
		t.Fatalf("retry after error failed: %v", err)
	}
	if got := Get[string](vals, "down"); got != "ok!" {
		t.Fatalf("down = %q", got)
	}
}

// TestWaiterRetriesAfterCreatorFails pins the in-flight error
// contract: an evaluation waiting on another evaluation's in-flight
// node must not inherit that creator's failure (e.g. its private
// timeout) — it retries with its own context and succeeds.
func TestWaiterRetriesAfterCreatorFails(t *testing.T) {
	g := NewGraph[*env]()
	var calls atomic.Int64
	creatorEntered := make(chan struct{})
	release := make(chan struct{})
	g.MustRegister(Node[*env]{
		Name: "n",
		Key:  func(*env) string { return "k" },
		Compute: func(ctx context.Context, _ *env, _ Deps) (any, error) {
			if calls.Add(1) == 1 {
				close(creatorEntered)
				<-release
				<-ctx.Done() // die of the creator's own cancellation
				return nil, ctx.Err()
			}
			return "ok", nil
		},
	})
	store := NewStore(0)
	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := g.Evaluate(ctxA, &env{}, store, EvalOptions{}, "n")
		aDone <- err
	}()
	<-creatorEntered
	// B joins (usually as a waiter on A's in-flight entry; if it
	// races past, it computes directly — either way it must succeed).
	bDone := make(chan struct{})
	var bVals map[string]any
	var bErr error
	go func() {
		defer close(bDone)
		bVals, bErr = g.Evaluate(context.Background(), &env{}, store, EvalOptions{}, "n")
	}()
	close(release)
	cancelA()
	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("creator err = %v, want context.Canceled", err)
	}
	<-bDone
	if bErr != nil {
		t.Fatalf("waiter inherited the creator's failure: %v", bErr)
	}
	if got := Get[string](bVals, "n"); got != "ok" {
		t.Fatalf("waiter value = %q", got)
	}
}

func TestEvaluateUnknownAndCycle(t *testing.T) {
	g := diamond(t)
	if _, err := g.Evaluate(context.Background(), &env{}, nil, EvalOptions{}, "nope"); err == nil {
		t.Fatal("unknown target accepted")
	}
	c := NewGraph[*env]()
	ok := func(context.Context, *env, Deps) (any, error) { return nil, nil }
	c.MustRegister(Node[*env]{Name: "x", Deps: []string{"y"}, Compute: ok})
	c.MustRegister(Node[*env]{Name: "y", Deps: []string{"x"}, Compute: ok})
	if _, err := c.Evaluate(context.Background(), &env{}, nil, EvalOptions{}, "x"); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	g := NewGraph[*env]()
	ok := func(context.Context, *env, Deps) (any, error) { return nil, nil }
	if err := g.Register(Node[*env]{Name: "", Compute: ok}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := g.Register(Node[*env]{Name: "n"}); err == nil {
		t.Fatal("nil Compute accepted")
	}
	if err := g.Register(Node[*env]{Name: "n", Compute: ok}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(Node[*env]{Name: "n", Compute: ok}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestStoreLRUBound(t *testing.T) {
	store := NewStore(2)
	compute := func(v string) func(context.Context) (any, error) {
		return func(context.Context) (any, error) { return v, nil }
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := store.resolve(ctx, "n", key, compute(key)); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d entries, want 2", store.Len())
	}
	st := store.Stats()
	if st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
	// The newest keys survive; the oldest recompute.
	if _, memo, _ := store.resolve(ctx, "n", "k4", compute("k4")); !memo {
		t.Fatal("most recent entry was evicted")
	}
	if _, memo, _ := store.resolve(ctx, "n", "k0", compute("k0")); memo {
		t.Fatal("oldest entry survived a full eviction cycle")
	}
}

// TestStoreEvictionSkipsInFlight pins the eviction contract: an
// in-flight entry is never evicted (the store transiently exceeds its
// bound instead), so concurrent resolvers keep deduplicating onto the
// running computation and its value is stored when it completes.
func TestStoreEvictionSkipsInFlight(t *testing.T) {
	store := NewStore(1)
	ctx := context.Background()
	started := make(chan struct{})
	release := make(chan struct{})
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		store.resolve(ctx, "n", "slow", func(context.Context) (any, error) {
			close(started)
			<-release
			return "slow-value", nil
		})
	}()
	<-started
	// Inserting a second entry overflows max=1, but the in-flight
	// entry must survive.
	if _, _, err := store.resolve(ctx, "n", "fast", func(context.Context) (any, error) { return "fast", nil }); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d entries, want 2 (in-flight entry must not evict)", store.Len())
	}
	close(release)
	<-slowDone
	// The slow value was kept and is served from memo...
	v, memo, err := store.resolve(ctx, "n", "slow", func(context.Context) (any, error) { return "recomputed", nil })
	if err != nil || !memo || v != "slow-value" {
		t.Fatalf("slow entry lost: v=%v memo=%v err=%v", v, memo, err)
	}
	// ...and the next insert shrinks the store back within its bound
	// now that everything is completed.
	if _, _, err := store.resolve(ctx, "n", "third", func(context.Context) (any, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d entries after completion, want 1", store.Len())
	}
}

func TestClosureTopological(t *testing.T) {
	g := diamond(t)
	order, err := g.Closure("d")
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	for _, pair := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if pos[pair[0]] > pos[pair[1]] {
			t.Fatalf("closure %v not topological: %s after %s", order, pair[0], pair[1])
		}
	}
}
