// Fixture: internal/* library code must thread caller contexts and
// must not reach into another package's Stats counters.
package svc

import (
	"context"

	"statspkg"
)

func detached() context.Context {
	return context.Background() // want "context.Background in library code"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO in library code"
}

// sanctioned shows the documented-detachment escape hatch.
func sanctioned() context.Context {
	//lint:ignore ctxhygiene fixture demonstrates a documented service-lifetime root
	return context.Background()
}

// bumpForeign races against statspkg's own mutex helpers.
func bumpForeign(st *statspkg.ServerStats) {
	st.Hits++ // want "outside its owning package"
}

// bumpViaHelper goes through the owning package: clean.
func bumpViaHelper(st *statspkg.ServerStats) {
	st.AddHit()
}
