package sweep

import (
	"repro/internal/stats"
)

// ArtefactAgg is one artefact's cross-seed statistics inside a group.
type ArtefactAgg struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	// CILow/CIHigh bound the two-sided Student-t 95% confidence
	// interval of the mean.
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Group is the cross-seed aggregate for one non-seed parameter
// combination: every artefact's mean / stddev / 95% CI over the seeds
// that ran at these parameters.
type Group struct {
	Scale            float64 `json:"scale"`
	Annotation       int     `json:"annotation_size"`
	Workers          int     `json:"workers"`
	CrawlConcurrency int     `json:"crawl_concurrency"`
	// Faults is the group's fault profile; empty for fault-free groups,
	// so fault-free JSON keeps its pre-faults shape.
	Faults string `json:"faults,omitempty"`
	// Seeds lists the seeds aggregated, in plan order.
	Seeds     []uint64      `json:"seeds"`
	Artefacts []ArtefactAgg `json:"artefacts"`
}

// StabilityRow compares one scale-free artefact's cross-seed interval
// against the paper's published value — EXPERIMENTS.md's single-seed
// column generalized to many seeds.
type StabilityRow struct {
	Name   string  `json:"name"`
	Paper  float64 `json:"paper"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"`
	// AbsErr is |mean - paper|.
	AbsErr float64 `json:"abs_err"`
}

// Slope is one artefact's scale sensitivity: a least-squares fit of
// the per-scale group means against scale. Count artefacts should grow
// with scale (positive slope, high R²); calibrated rates should not
// (slope near zero relative to the mean).
type Slope struct {
	Name      string  `json:"name"`
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	R2        float64 `json:"r2"`
}

// Aggregate is everything the sweep derives from its cells'
// summaries. It is a pure function of the successful outcomes in plan
// order, so two identical sweeps aggregate identically.
type Aggregate struct {
	// Groups holds cross-seed statistics per non-seed parameter
	// combination, ordered by (scale, annotation, workers, crawl).
	Groups []Group `json:"groups"`
	// Stability compares rate artefacts against the paper for the
	// first group (present when that group has at least two seeds).
	Stability []StabilityRow `json:"stability,omitempty"`
	// Slopes holds artefact-vs-scale fits (present when the sweep
	// spans at least two scales at otherwise-identical parameters).
	Slopes []Slope `json:"slopes,omitempty"`
}

// aggregate folds the outcomes. Only successful cells contribute;
// order of contribution is plan order, never completion order.
func aggregate(outcomes []Outcome) *Aggregate {
	// Group artefact values by non-seed parameters, preserving plan
	// order within each group.
	byGroup := make(map[groupKey][]Outcome)
	var keys []groupKey
	for _, o := range outcomes {
		if o.Summary == nil {
			continue
		}
		k := groupKey{o.Cell.Scale, o.Cell.Annotation, o.Cell.Workers, o.Cell.CrawlConcurrency, o.Cell.Faults}
		if _, seen := byGroup[k]; !seen {
			keys = append(keys, k)
		}
		byGroup[k] = append(byGroup[k], o)
	}
	if len(keys) == 0 {
		return &Aggregate{}
	}
	sortGroupKeys(keys)

	agg := &Aggregate{}
	for _, k := range keys {
		group := Group{
			Scale: k.Scale, Annotation: k.Annotation,
			Workers: k.Workers, CrawlConcurrency: k.CrawlConcurrency,
			Faults: k.Faults,
		}
		members := byGroup[k]
		// Column-major fold: artefact i over every member summary.
		names := members[0].Summary.Artefacts()
		values := make([][]float64, len(names))
		for _, o := range members {
			group.Seeds = append(group.Seeds, o.Cell.Seed)
			for i, a := range o.Summary.Artefacts() {
				values[i] = append(values[i], a.Value)
			}
		}
		for i, a := range names {
			iv := stats.MeanCI95(values[i])
			group.Artefacts = append(group.Artefacts, ArtefactAgg{
				Name: a.Name, N: iv.N, Mean: iv.Mean, Std: iv.Std,
				CILow: iv.Low, CIHigh: iv.High, Min: iv.Min, Max: iv.Max,
			})
		}
		agg.Groups = append(agg.Groups, group)
	}

	agg.Stability = stability(agg.Groups[0])
	agg.Slopes = slopes(agg.Groups)
	return agg
}

// stability builds the paper-vs-measured table for one group.
func stability(g Group) []StabilityRow {
	if len(g.Seeds) < 2 {
		return nil
	}
	byName := make(map[string]ArtefactAgg, len(g.Artefacts))
	for _, a := range g.Artefacts {
		byName[a.Name] = a
	}
	var rows []StabilityRow
	for _, p := range PaperValues() {
		a, ok := byName[p.Name]
		if !ok {
			continue
		}
		d := a.Mean - p.Value
		if d < 0 {
			d = -d
		}
		rows = append(rows, StabilityRow{
			Name: p.Name, Paper: p.Value, Mean: a.Mean, Std: a.Std,
			CILow: a.CILow, CIHigh: a.CIHigh, AbsErr: d,
		})
	}
	return rows
}

// slopes fits artefact-vs-scale lines over groups that differ only in
// scale. It requires a single non-scale parameter combination (the
// scale-sensitivity preset's shape); mixed grids skip the fit rather
// than conflate axes.
func slopes(groups []Group) []Slope {
	type rest struct {
		Annotation, Workers, CrawlConcurrency int
		Faults                                string
	}
	combos := make(map[rest][]Group)
	for _, g := range groups {
		k := rest{g.Annotation, g.Workers, g.CrawlConcurrency, g.Faults}
		combos[k] = append(combos[k], g)
	}
	if len(combos) != 1 {
		return nil
	}
	var ladder []Group
	for _, gs := range combos {
		ladder = gs
	}
	if len(ladder) < 2 {
		return nil
	}
	// Groups arrive sorted by scale already (sortGroupKeys).
	xs := make([]float64, len(ladder))
	for i, g := range ladder {
		xs[i] = g.Scale
	}
	var out []Slope
	for i, a := range ladder[0].Artefacts {
		ys := make([]float64, len(ladder))
		for j, g := range ladder {
			ys[j] = g.Artefacts[i].Mean
		}
		fit, ok := stats.Linreg(xs, ys)
		if !ok {
			continue
		}
		out = append(out, Slope{Name: a.Name, Slope: fit.Slope, Intercept: fit.Intercept, R2: fit.R2})
	}
	return out
}
