// Command ewserve runs the study's simulated web substrate AND the
// study itself as live HTTP services: the hosting world (image-sharing
// + cloud-storage sites), the reverse image search, the Wayback
// archive, and the study service (POST /v1/study — cached, coalesced,
// bounded; see internal/studysvc). Together they make the full
// measurement remotely drivable: point cmd/ewpipeline -remote at the
// study address, or a crawler.HTTPClient at the substrate addresses.
//
// Usage:
//
//	ewserve [-seed N] [-scale F]
//	        [-hosting :8081] [-reverse :8082] [-wayback :8083] [-study :8084]
//	        [-study-runs N] [-study-cache N] [-study-max-scale F]
//	        [-study-queue N] [-study-queue-wait 2s]
//	        [-log-level info] [-pprof 127.0.0.1:6060]
//	        [-shutdown-timeout 10s] [-faults profile]
//
// -faults wraps the three substrate handlers in internal/faultx's
// deterministic fault-injection middleware (chaos testing: rate
// limits, flaky 5xx, link rot, dead hosts), so remote crawlers face
// the same adversary `core.Options.Faults` injects in-process.
//
// All operational output is JSON lines on stderr (internal/logx): one
// line per request with its request ID and latency, one per study run,
// and the usual lifecycle events — greppable and machine-tailable.
// -log-level debug adds per-artefact-node memo traces. -pprof mounts
// net/http/pprof on a separate loopback address for live profiling.
//
// Lifecycle: all listeners are opened before anything serves, so a bad
// address fails the process immediately. A failed server tears the
// whole process down cleanly through the error group. On SIGINT or
// SIGTERM every server gets a graceful shutdown bounded by
// -shutdown-timeout — logging any still-open study requests by ID so
// an operator can tell what a slow shutdown is waiting on; a second
// signal kills the process immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultx"
	"repro/internal/logx"
	"repro/internal/pipeline"
	"repro/internal/reverse"
	"repro/internal/studysvc"
	"repro/internal/synth"
	"repro/internal/tracex"
	"repro/internal/wayback"
)

func main() {
	seed := flag.Uint64("seed", 2019, "world seed")
	scale := flag.Float64("scale", 0.05, "corpus scale")
	hostingAddr := flag.String("hosting", "127.0.0.1:8081", "hosting world listen address")
	reverseAddr := flag.String("reverse", "127.0.0.1:8082", "reverse image search listen address")
	waybackAddr := flag.String("wayback", "127.0.0.1:8083", "wayback archive listen address")
	studyAddr := flag.String("study", "127.0.0.1:8084", "study service listen address (empty disables)")
	studyRuns := flag.Int("study-runs", 2, "max concurrent study runs")
	studyCache := flag.Int("study-cache", 16, "study result cache size (LRU)")
	studyMaxScale := flag.Float64("study-max-scale", 0.25, "largest scale the study service accepts")
	studySweepCells := flag.Int("study-sweep-cells", 64, "largest sweep (in cells) the study service accepts")
	studyQueue := flag.Int("study-queue", 0, "admission queue depth before shedding (0 = 2×study-runs, negative disables queueing)")
	studyQueueWait := flag.Duration("study-queue-wait", 0, "longest a queued request waits for a run slot before shedding (0 = default)")
	traceBuffer := flag.Int("trace-buffer", tracex.DefaultMaxTraces, "recent traces kept for GET /v1/trace (0 disables tracing)")
	faults := flag.String("faults", "", `inject deterministic faults into the substrate handlers (faultx profile, e.g. "ratelimit=*;failures=2" or "rot=0.3;down=oron.com"; see internal/faultx)`)
	logLevel := flag.String("log-level", "info", "log level: debug, info or error")
	pprofAddr := flag.String("pprof", "", "mount net/http/pprof on this address (empty disables)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown deadline")
	flag.Parse()

	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ewserve:", err)
		os.Exit(1)
	}
	lg := logx.New(os.Stderr, level).With("service", "ewserve")

	start := time.Now()
	w := synth.Generate(synth.Config{Seed: *seed, Scale: *scale})
	lg.Info("world ready",
		"elapsed_ms", time.Since(start).Milliseconds(),
		"seed", *seed, "scale", *scale,
		"reverse_records", w.Reverse.Len(), "archived_urls", w.Wayback.NumURLs())

	// The signal context is the whole process's root: servers stop on
	// it, and the study service receives it as BaseContext so
	// in-flight studies and sweeps are cancelled at shutdown instead
	// of running headless to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	type service struct {
		name string
		addr string
		h    http.Handler
	}
	services := []service{
		{"hosting", *hostingAddr, w.Web},
		{"reverse", *reverseAddr, reverse.Handler(w.Reverse)},
		{"wayback", *waybackAddr, wayback.Handler(w.Wayback)},
	}
	if plan, err := faultx.ParseProfile(*faults); err != nil {
		fmt.Fprintln(os.Stderr, "ewserve:", err)
		os.Exit(1)
	} else if plan != nil {
		// Chaos mode: remote crawlers face the same deterministic
		// adversary the in-process seam injects. One injector spans all
		// three substrate services so scheduled faults share counters.
		inj := faultx.NewInjector(plan)
		services[0].h = faultx.Middleware(inj, faultx.PathHost)(services[0].h)
		services[1].h = faultx.Middleware(inj, faultx.FixedHost("reverse"))(services[1].h)
		services[2].h = faultx.Middleware(inj, faultx.FixedHost("wayback"))(services[2].h)
		lg.Info("fault injection enabled", "profile", *faults, "plan", plan.String())
	}
	// svc outlives the loop so the shutdown watcher can report which
	// study requests are still open when the deadline starts ticking.
	var svc *studysvc.Service
	if *studyAddr != "" {
		var tracer *tracex.Tracer
		if *traceBuffer > 0 {
			// Seed the span-id source from the process start time: a
			// server and its remote clients must mint non-colliding span
			// ids within one shared trace, and each process's SeqIDs
			// counter alone cannot guarantee that.
			tracer = tracex.New(tracex.Config{
				IDs:       tracex.NewSeqIDs(uint64(time.Now().UnixNano())),
				MaxTraces: *traceBuffer,
			})
		}
		svc = studysvc.New(studysvc.Config{
			MaxConcurrentRuns: *studyRuns,
			CacheSize:         *studyCache,
			MaxScale:          *studyMaxScale,
			MaxSweepCells:     *studySweepCells,
			MaxQueueDepth:     *studyQueue,
			MaxQueueWait:      *studyQueueWait,
			BaseContext:       ctx,
			Logger:            lg.With("component", "studysvc"),
			Tracer:            tracer,
		})
		services = append(services, service{"study", *studyAddr, svc.Handler()})
	}
	if *pprofAddr != "" {
		// Mount the pprof handlers explicitly rather than importing for
		// side effects: the profiling surface stays off the study and
		// substrate listeners and exists only when asked for.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		services = append(services, service{"pprof", *pprofAddr, mux})
	}

	// Open every listener before serving anything: a bad address fails
	// the process now, not from a goroutine later.
	servers := make([]*http.Server, 0, len(services))
	listeners := make([]net.Listener, 0, len(services))
	for _, s := range services {
		ln, err := net.Listen("tcp", s.addr)
		if err != nil {
			lg.Error("listen failed", "server", s.name, "addr", s.addr, "err", err.Error())
			for _, open := range listeners {
				_ = open.Close() // best-effort cleanup on the exit path
			}
			os.Exit(1)
		}
		listeners = append(listeners, ln)
		servers = append(servers, &http.Server{Handler: s.h, ReadHeaderTimeout: 5 * time.Second})
		lg.Info("listening", "server", s.name, "url", "http://"+ln.Addr().String())
	}

	g, gctx := pipeline.NewErrGroup(ctx)
	for i := range servers {
		srv, name, ln := servers[i], services[i].name, listeners[i]
		g.Go(func() error {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				return fmt.Errorf("%s: %w", name, err)
			}
			return nil
		})
	}
	// Shutdown watcher: a signal or any failed server cancels gctx;
	// every server then gets a graceful shutdown with a deadline.
	g.Go(func() error {
		<-gctx.Done()
		// Restore default signal handling: a second Ctrl-C now kills
		// the process immediately instead of being swallowed.
		stop()
		if svc != nil {
			// Name what a slow shutdown is waiting on: the request IDs
			// still open when the deadline starts ticking.
			open := svc.InFlightRequests()
			lg.Info("shutting down", "open_requests", len(open), "requests", open)
		} else {
			lg.Info("shutting down")
		}
		shctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		var firstErr error
		for i, srv := range servers {
			if err := srv.Shutdown(shctx); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s shutdown: %w", services[i].name, err)
			}
		}
		return firstErr
	})

	lg.Info("ready",
		"example_curl", "curl http://"+*hostingAddr+"/imgur.com/landing",
		"example_study", fmt.Sprintf("curl -X POST http://%s/v1/study -d '{\"seed\":2019,\"scale\":0.02}'", *studyAddr),
		"example_stats", "curl http://"+*studyAddr+"/v1/stats",
		"stop", "Ctrl-C (twice to force)")

	if err := g.Wait(); err != nil {
		lg.Error("server failed", "err", err.Error())
		os.Exit(1)
	}
	lg.Info("all servers stopped")
}
