package earnings

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/imagex"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func TestRateToUSD(t *testing.T) {
	if RateToUSD(USD, date(2015, 1, 1)) != 1 {
		t.Fatal("USD rate != 1")
	}
	// GBP drops after the 2016 referendum.
	before := RateToUSD(GBP, date(2016, 1, 10))
	after := RateToUSD(GBP, date(2016, 9, 10))
	if after >= before {
		t.Fatalf("GBP rate %v -> %v; expected post-referendum drop", before, after)
	}
	// Bitcoin's late-2017 peak.
	peak := RateToUSD(BTC, date(2017, 12, 10))
	early := RateToUSD(BTC, date(2013, 6, 1))
	late := RateToUSD(BTC, date(2018, 6, 1))
	if peak <= early || peak <= late {
		t.Fatalf("BTC peak %v not above %v and %v", peak, early, late)
	}
	if RateToUSD(Currency("XYZ"), date(2015, 1, 1)) != 1 {
		t.Fatal("unknown currency rate != 1")
	}
}

func TestTransactionUSD(t *testing.T) {
	tx := Transaction{Amount: 100, Currency: GBP, Date: date(2015, 3, 1)}
	want := 100 * RateToUSD(GBP, date(2015, 3, 1))
	if got := tx.USD(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("USD = %v want %v", got, want)
	}
}

func TestProofTotalUSD(t *testing.T) {
	// Summary-only proof converts at proof date.
	p := Proof{Total: 50, Currency: EUR, Date: date(2012, 5, 1)}
	want := 50 * RateToUSD(EUR, date(2012, 5, 1))
	if got := p.TotalUSD(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("summary TotalUSD = %v want %v", got, want)
	}
	// Detailed proof converts per transaction date.
	p.Transactions = []Transaction{
		{Amount: 10, Currency: EUR, Date: date(2012, 5, 1)},
		{Amount: 20, Currency: EUR, Date: date(2016, 5, 1)},
	}
	want = 10*RateToUSD(EUR, date(2012, 5, 1)) + 20*RateToUSD(EUR, date(2016, 5, 1))
	if got := p.TotalUSD(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("detailed TotalUSD = %v want %v", got, want)
	}
}

func roundtripProof(t *testing.T, p Proof) Proof {
	t.Helper()
	im := RenderProofImage(42, p)
	got, err := AnnotateImage(im, p.Date)
	if err != nil {
		t.Fatalf("AnnotateImage: %v", err)
	}
	return got
}

func TestProofImageRoundtrip(t *testing.T) {
	p := Proof{
		Platform: PlatformPayPal,
		Currency: USD,
		Total:    774.25,
		Date:     date(2017, 3, 10),
		Transactions: []Transaction{
			{Amount: 41.9, Currency: USD, Date: date(2017, 2, 14)},
			{Amount: 200, Currency: USD, Date: date(2017, 3, 1)},
		},
	}
	got := roundtripProof(t, p)
	if got.Platform != PlatformPayPal {
		t.Errorf("platform %v", got.Platform)
	}
	if math.Abs(got.Total-774.25) > 1e-9 {
		t.Errorf("total %v", got.Total)
	}
	if len(got.Transactions) != 2 {
		t.Fatalf("transactions %d", len(got.Transactions))
	}
	if math.Abs(got.Transactions[0].Amount-41.9) > 1e-9 {
		t.Errorf("tx amount %v", got.Transactions[0].Amount)
	}
	if !got.Transactions[1].Date.Equal(date(2017, 3, 1)) {
		t.Errorf("tx date %v", got.Transactions[1].Date)
	}
}

func TestProofRoundtripAllPlatforms(t *testing.T) {
	for _, platform := range []Platform{PlatformPayPal, PlatformAGC, PlatformBitcoin, PlatformSkrill, PlatformCash} {
		p := Proof{Platform: platform, Currency: GBP, Total: 120.5, Date: date(2016, 6, 1)}
		got := roundtripProof(t, p)
		if got.Platform != platform {
			t.Errorf("platform %v parsed as %v", platform, got.Platform)
		}
		if got.Currency != GBP {
			t.Errorf("currency parsed as %v", got.Currency)
		}
	}
}

func TestAnnotateRejectsNonProofs(t *testing.T) {
	chat := imagex.GenScreenshot(1, []string{"HEY BABE", "WANNA SEE MORE", "SEND FIRST"}, 160, 40)
	if _, err := AnnotateImage(chat, date(2016, 1, 1)); !errors.Is(err, ErrNotProof) {
		t.Fatalf("chat screenshot parsed as proof: %v", err)
	}
	banner := imagex.GenErrorBanner(1, "IMAGE REMOVED", 160, 40)
	if _, err := AnnotateImage(banner, date(2016, 1, 1)); !errors.Is(err, ErrNotProof) {
		t.Fatalf("error banner parsed as proof: %v", err)
	}
	model := imagex.GenModel(1, 0, imagex.PoseNude, 48)
	if _, err := AnnotateImage(model, date(2016, 1, 1)); !errors.Is(err, ErrNotProof) {
		t.Fatalf("model photo parsed as proof: %v", err)
	}
}

func TestParseProofTextEdgeCases(t *testing.T) {
	if _, err := ParseProofText("", date(2016, 1, 1)); err == nil {
		t.Error("empty text accepted")
	}
	// Total with unsupported currency code is skipped → not a proof.
	if _, err := ParseProofText("PAYPAL DASHBOARD\nTOTAL: 10.00 JPY", date(2016, 1, 1)); err == nil {
		t.Error("unsupported currency accepted")
	}
	// Malformed TX lines are skipped but the proof still parses.
	p, err := ParseProofText("PAYPAL DASHBOARD\nTOTAL: 10.00 USD\nTX: garbage ON junk", date(2016, 1, 1))
	if err != nil || len(p.Transactions) != 0 {
		t.Errorf("malformed TX handling: %v %v", p.Transactions, err)
	}
}

func TestAggregateByActor(t *testing.T) {
	proofs := []Proof{
		{Actor: 1, Platform: PlatformPayPal, Currency: USD, Total: 100, Date: date(2016, 1, 1)},
		{Actor: 1, Platform: PlatformPayPal, Currency: USD, Total: 50, Date: date(2016, 2, 1)},
		{Actor: 2, Platform: PlatformAGC, Currency: USD, Total: 10, Date: date(2016, 1, 1)},
	}
	agg := AggregateByActor(proofs)
	if len(agg) != 2 {
		t.Fatalf("actors = %d", len(agg))
	}
	if agg[0].Actor != 1 || agg[0].Proofs != 2 || math.Abs(agg[0].TotalUSD-150) > 1e-9 {
		t.Fatalf("agg[0] = %+v", agg[0])
	}
}

func TestSummarize(t *testing.T) {
	proofs := []Proof{
		{Actor: 1, Platform: PlatformPayPal, Currency: USD, Total: 100, Date: date(2016, 1, 1),
			Transactions: []Transaction{
				{Amount: 60, Currency: USD, Date: date(2016, 1, 1)},
				{Amount: 40, Currency: USD, Date: date(2016, 1, 2)},
			}},
		{Actor: 2, Platform: PlatformAGC, Currency: USD, Total: 20, Date: date(2016, 1, 1)},
	}
	s := Summarize(proofs)
	if s.Proofs != 2 || s.Actors != 2 || s.Detailed != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.TotalUSD-120) > 1e-9 {
		t.Errorf("TotalUSD = %v", s.TotalUSD)
	}
	if math.Abs(s.MeanPerActorUSD-60) > 1e-9 {
		t.Errorf("MeanPerActorUSD = %v", s.MeanPerActorUSD)
	}
	if math.Abs(s.MeanTransactionUSD-50) > 1e-9 {
		t.Errorf("MeanTransactionUSD = %v", s.MeanTransactionUSD)
	}
	if s.ByPlatform[PlatformPayPal] != 1 || s.ByPlatform[PlatformAGC] != 1 {
		t.Errorf("ByPlatform = %v", s.ByPlatform)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Proofs != 0 || s.MeanPerActorUSD != 0 || s.MeanTransactionUSD != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestParseExchangeHeading(t *testing.T) {
	cases := []struct {
		heading    string
		have, want ExchangeKind
		ok         bool
	}{
		{"[H] PayPal [W] BTC", ExPayPal, ExBTC, true},
		{"[h] amazon gift card [w] paypal", ExAGC, ExPayPal, true},
		{"[W] BTC [H] AGC", ExAGC, ExBTC, true},
		{"[H] 50$ Skrill [W] bitcoin", ExOther, ExBTC, true},
		{"[H] PP balance", ExPayPal, ExUnknown, true},
		{"selling my pack cheap", ExUnknown, ExUnknown, false},
	}
	for _, c := range cases {
		got, ok := ParseExchangeHeading(c.heading)
		if ok != c.ok || got.Have != c.have || got.Want != c.want {
			t.Errorf("ParseExchangeHeading(%q) = %+v %v, want %v/%v %v",
				c.heading, got, ok, c.have, c.want, c.ok)
		}
	}
}

func TestTallyExchange(t *testing.T) {
	tbl := TallyExchange([]string{
		"[H] PayPal [W] BTC",
		"[H] AGC [W] BTC",
		"[H] AGC [W] PayPal",
		"random thread",
	})
	if tbl.Total != 4 {
		t.Fatalf("Total = %d", tbl.Total)
	}
	if tbl.Offered[ExAGC] != 2 || tbl.Wanted[ExBTC] != 2 || tbl.Offered[ExUnknown] != 1 {
		t.Fatalf("table = %+v", tbl)
	}
}

func BenchmarkAnnotateImage(b *testing.B) {
	p := Proof{
		Platform: PlatformPayPal, Currency: USD, Total: 500,
		Date: date(2017, 1, 1),
		Transactions: []Transaction{
			{Amount: 100, Currency: USD, Date: date(2017, 1, 1)},
			{Amount: 400, Currency: USD, Date: date(2017, 1, 2)},
		},
	}
	im := RenderProofImage(1, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnnotateImage(im, p.Date); err != nil {
			b.Fatal(err)
		}
	}
}
