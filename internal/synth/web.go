package synth

import (
	"fmt"
	"time"

	"repro/internal/domaincls"
	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/photodna"
	"repro/internal/randx"
	"repro/internal/reverse"
	"repro/internal/urlx"
)

// Model is one synthetic "model": a person whose images circulate in
// packs. Images are deterministic in (Seed, Variant, Pose) and are not
// stored.
type Model struct {
	Seed         uint64
	Name         string
	OriginDomain string
	// OriginDate is when the origin shoot went online.
	OriginDate time.Time
	// Indexed: the model's images appear in the reverse-image-search
	// corpus. Non-indexed models produce the paper's "zero-match"
	// packs.
	Indexed bool
	Images  []ModelImage
	// Flagged indexes into Images for hashlisted (abuse-flagged)
	// material, or -1.
	Flagged int
}

// ModelImage is one image of a model.
type ModelImage struct {
	Variant int
	Pose    imagex.Pose
	// OriginURL is the canonical hosting URL on the origin domain.
	OriginURL string
	// Reposts is how many further domains the image has spread to.
	Reposts int
}

// domainSpec drives origin-domain generation per ground-truth class.
type domainSpec struct {
	class  domaincls.SiteClass
	label  string
	count  int // paper-scale domain count (≈ Table 6 mix)
	origin bool
}

var domainSpecs = []domainSpec{
	{domaincls.ClassPorn, "tube", 2400, true},
	{domaincls.ClassBlog, "blog", 700, true},
	{domaincls.ClassEntertainment, "stream", 420, false},
	{domaincls.ClassShop, "shop", 360, false},
	{domaincls.ClassBusiness, "biz", 330, false},
	{domaincls.ClassNews, "news", 300, false},
	{domaincls.ClassForum, "board", 260, true},
	{domaincls.ClassSocialNetwork, "social", 250, true},
	{domaincls.ClassPhotoSharing, "photos", 220, true},
	{domaincls.ClassGames, "game", 200, false},
	{domaincls.ClassDating, "date", 180, true},
	{domaincls.ClassUnknown, "misc", 300, false},
}

// genWeb creates the origin web: domains with ground-truth classes and
// regions, models with images, reverse-search records, Wayback
// captures, and the PhotoDNA hashlist.
func (w *World) genWeb(rng *randx.Rand) {
	cfg := w.Config
	webStart := date(2006, time.January)

	// Domains. The reverse-search corpus needs thousands of domains at
	// full scale; classes keep the Table 6 mix.
	var allDomains []string
	var originDomains []string
	for _, spec := range domainSpecs {
		n := cfg.scaled(spec.count, 4)
		for i := 0; i < n; i++ {
			d := fmt.Sprintf("%s%03d.example", spec.label, i)
			w.Directory.Set(d, spec.class)
			w.DomainRegion[d] = pickRegion(rng)
			allDomains = append(allDomains, d)
			if spec.origin {
				originDomains = append(originDomains, d)
			}
		}
	}

	// Models. 600 at paper scale, each with 60-120 images, indexed on
	// a heavy-tailed number of repost domains. Unique-file and
	// match-ratio targets follow (§4.2: 53 948 unique; Table 5: 12.7 /
	// 17.3 matches per matched image).
	nModels := cfg.scaled(600, 30)
	repostPool := allDomains
	for mi := 0; mi < nModels; mi++ {
		// ~15% of models are "private" (never indexed by the reverse
		// search) — the source of zero-match packs. Every 7th model is
		// deterministically private so small worlds always have some.
		indexed := mi%7 != 3 && rng.Bool(0.98)
		m := &Model{
			Seed:         rng.Uint64(),
			Name:         randx.Pick(rng, modelNames),
			OriginDomain: randx.Pick(rng, originDomains),
			Indexed:      indexed,
			Flagged:      -1,
		}
		// 75% of models are long-established ("old"); the rest are
		// recent, so their reverse-search records postdate forum
		// posts (the paper's non-"Seen Before" matches).
		if rng.Bool(0.75) {
			m.OriginDate = webStart.AddDate(0, 0, rng.Intn(365*8))
		} else {
			m.OriginDate = date(2016, time.January).AddDate(0, 0, rng.Intn(365*3))
		}
		nImgs := 60 + rng.Intn(61)
		if cfg.Scale < 0.2 {
			// Small worlds shrink packs too, keeping generation fast.
			nImgs = 20 + rng.Intn(21)
		}
		for i := 0; i < nImgs; i++ {
			pose := imagex.PoseNude
			switch {
			case i%10 < 3:
				pose = imagex.PoseDressed
			case i%10 < 6:
				pose = imagex.PosePartial
			}
			mi2 := ModelImage{
				Variant:   i,
				Pose:      pose,
				OriginURL: fmt.Sprintf("http://%s/%s/%04d.jpg", m.OriginDomain, m.Name, i),
				Reposts:   int(rng.Pareto(2, 1.1)),
			}
			if mi2.Reposts > 40 {
				mi2.Reposts = 40
			}
			m.Images = append(m.Images, mi2)
		}
		w.Models = append(w.Models, m)

		if !m.Indexed {
			continue
		}
		// Index the model's images: origin record plus reposts. The
		// walk draws every date, domain and URL in the sequential
		// order; hashing (which consumes no randomness — GenModel and
		// Hash128Of are pure in their arguments) is deferred to a
		// render job, and the ordered apply inserts the records
		// exactly where the sequential path would. Captures are
		// scalars, never *Model: the flagged loop below mutates models
		// after these jobs are in flight.
		for i := range m.Images {
			p := &indexPlan{
				seed:    m.Seed,
				variant: m.Images[i].Variant,
				pose:    m.Images[i].Pose,
				size:    cfg.ImageSize,
			}
			crawl := m.OriginDate.AddDate(0, 0, rng.Intn(120))
			p.origin = reverse.Record{
				URL:       m.Images[i].OriginURL,
				Domain:    m.OriginDomain,
				Backlink:  fmt.Sprintf("http://%s/%s/", m.OriginDomain, m.Name),
				CrawlDate: crawl,
			}
			p.originCapture = m.OriginDate.AddDate(0, 0, rng.Intn(60))
			for r := 1; r < m.Images[i].Reposts; r++ {
				d := randx.Pick(rng, repostPool)
				rp := repostPlan{rec: reverse.Record{
					URL:       fmt.Sprintf("http://%s/p/%d%04d.jpg", d, mi, i*61+r),
					Domain:    d,
					Backlink:  fmt.Sprintf("http://%s/p/%d", d, mi),
					CrawlDate: crawl.AddDate(0, 0, rng.Intn(900)),
				}}
				if rng.Bool(0.3) {
					rp.capture = crawl.AddDate(0, 0, rng.Intn(400))
					rp.archived = true
				}
				p.reposts = append(p.reposts, rp)
			}
			w.do(p.render, func() { p.applyTo(w) })
		}
	}

	// PhotoDNA hashlist: flag images in distinct models (36 at paper
	// scale). The first flagged model is the paper's "single UK victim
	// aged 17" with many circulating URLs; the second is the young
	// victim with one; the remainder are not actionable (age
	// unverifiable).
	nFlagged := cfg.scaled(36, 2)
	flagged := 0
	for _, m := range w.Models {
		if flagged >= nFlagged {
			break
		}
		if !rng.Bool(0.5) {
			continue
		}
		idx := rng.Intn(len(m.Images))
		m.Flagged = idx
		entry := photodna.Entry{ID: flagged + 1}
		switch flagged {
		case 0:
			entry.Actionable = true
			entry.Severity = photodna.CategoryB
			entry.VictimAge = 17
			// Heavily reposted (the 60-URL victim).
			m.Images[idx].Reposts = cfg.scaled(60, 6)
			m.Indexed = true
		case 1:
			entry.Actionable = true
			entry.Severity = photodna.CategoryA
			entry.VictimAge = 9
			m.Images[idx].Reposts = 1
		default:
			entry.Actionable = false
			entry.Severity = photodna.Severity(1 + rng.Intn(3))
		}
		hp := &hashPlan{
			seed:    m.Seed,
			variant: m.Images[idx].Variant,
			pose:    m.Images[idx].Pose,
			size:    cfg.ImageSize,
			entry:   entry,
		}
		w.do(hp.render, func() { hp.applyTo(w) })
		flagged++
	}

	// Also ensure UK/EU flagged-URL regions exist: the first flagged
	// model's origin is placed in the UK.
	if len(w.Models) > 0 {
		for _, m := range w.Models {
			if m.Flagged >= 0 {
				w.DomainRegion[m.OriginDomain] = photodna.RegionUK
				break
			}
		}
	}

}

// genHostingSites registers the Table 3/4 whitelisted services plus
// the long-tail "others" found by snowball sampling. Cheap, so it runs
// even under SkipImages (proof uploads need the sites).
func (w *World) genHostingSites() {
	for _, d := range urlx.ImageSharingSites {
		w.Web.AddSite(hostingConfig(d, urlx.KindImageSharing))
	}
	for _, d := range urlx.CloudStorageSites {
		w.Web.AddSite(hostingConfig(d, urlx.KindCloudStorage))
	}
	for i := 0; i < 12; i++ {
		w.Web.AddSite(hostingConfig(fmt.Sprintf("otherimg%02d.example", i), urlx.KindImageSharing))
	}
	for i := 0; i < 8; i++ {
		w.Web.AddSite(hostingConfig(fmt.Sprintf("othercloud%02d.example", i), urlx.KindCloudStorage))
	}
}

// hostingSiteConfig aliases hosting.SiteConfig for brevity.
type hostingSiteConfig = hosting.SiteConfig

// hostingConfig builds a SiteConfig with the paper's special cases:
// registration walls on Dropbox/Drive, oron defunct.
func hostingConfig(domain string, kind urlx.Kind) (cfg hostingSiteConfig) {
	cfg.Domain = domain
	cfg.Kind = kind
	switch domain {
	case "dropbox.com", "drive.google.com":
		cfg.RequiresLogin = true
	case "oron.com":
		cfg.Defunct = true
	}
	return cfg
}

func pickRegion(rng *randx.Rand) photodna.Region {
	switch {
	case rng.Bool(0.03):
		return photodna.RegionUK
	case rng.Bool(0.52):
		return photodna.RegionNorthAmerica
	default:
		return photodna.RegionEurope
	}
}
