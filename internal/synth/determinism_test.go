package synth

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic guards the package's core promise: two
// generations from the same Config produce bit-identical worlds. Map
// iteration must never leak into rng-driven generation (it once did,
// in genExchange's eligible-actor selection).
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.02, ImageSize: 48}
	a := Generate(cfg)
	b := Generate(cfg)
	av := reflect.ValueOf(*a)
	bv := reflect.ValueOf(*b)
	for i := 0; i < av.Type().NumField(); i++ {
		f := av.Type().Field(i)
		if f.PkgPath != "" {
			continue // unexported
		}
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			t.Errorf("World.%s differs across two generations", f.Name)
		}
	}
}
