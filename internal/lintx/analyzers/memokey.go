package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/lintx"
)

// MemoKey mechanizes the PR 5 keying rule: an artefact node's memo
// key must be a pure function of the parameters that determine the
// node's value, and worker/concurrency knobs (Workers,
// CrawlConcurrency) never do — they size goroutine pools, and the
// determinism invariant guarantees they cannot move a result. A key
// that reads them would fracture the shared memo store: runs
// differing only in concurrency would stop sharing artefacts, and —
// worse in reverse — a key that *should* have included a semantic
// field but leans on a knob would alias distinct results.
//
// The analyzer finds every function wired into the Key field of an
// artefact.Node composite literal, closes over the functions it calls
// within the same package, and reports any read of a struct field
// named Workers or CrawlConcurrency inside that closure.
var MemoKey = &lintx.Analyzer{
	Name: "memokey",
	Doc:  "artefact.Node key functions must not read Workers/CrawlConcurrency execution knobs",
	Run:  runMemoKey,
}

// knobFields are the execution-knob field names excluded from memo
// keys by construction.
var knobFields = map[string]bool{
	"Workers":          true,
	"CrawlConcurrency": true,
}

func runMemoKey(pass *lintx.Pass) error {
	// Map every function object declared in this package to its body,
	// for call-closure traversal.
	bodies := make(map[types.Object]*ast.FuncDecl)
	for _, fd := range funcDecls(pass.Files) {
		if obj := pass.Info.Defs[fd.Name]; obj != nil {
			bodies[obj] = fd
		}
	}

	// Roots: expressions assigned to the Key field of an
	// artefact.Node literal.
	var roots []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isArtefactNodeLit(pass, cl) {
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Key" {
					continue
				}
				roots = append(roots, resolveKeyFuncs(pass, bodies, kv.Value)...)
			}
			return true
		})
	}

	// Close over in-package calls and scan each reachable body.
	visited := make(map[ast.Node]bool)
	for len(roots) > 0 {
		body := roots[len(roots)-1]
		roots = roots[:len(roots)-1]
		if visited[body] {
			continue
		}
		visited[body] = true
		// Sels of qualified reads are reported once, at the selector;
		// the Ident case only covers unqualified field reads.
		inSelector := make(map[*ast.Ident]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() == pass.Pkg {
					if fd, ok := bodies[types.Object(fn)]; ok {
						roots = append(roots, fd)
					}
				}
			case *ast.SelectorExpr:
				inSelector[n.Sel] = true
				if s, ok := pass.Info.Selections[n]; ok && s.Kind() == types.FieldVal && knobFields[s.Obj().Name()] {
					pass.Reportf(n.Pos(), "memo key derives from execution knob %s: node keys must exclude worker/concurrency parameters (PR 5 rule — they never move a result)", s.Obj().Name())
				}
			case *ast.Ident:
				// Unqualified field reads inside methods of the
				// options struct itself.
				if inSelector[n] {
					return true
				}
				if v, ok := pass.Info.Uses[n].(*types.Var); ok && v.IsField() && knobFields[v.Name()] {
					pass.Reportf(n.Pos(), "memo key derives from execution knob %s: node keys must exclude worker/concurrency parameters (PR 5 rule — they never move a result)", v.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isArtefactNodeLit reports whether the literal instantiates
// artefact.Node (of any type argument).
func isArtefactNodeLit(pass *lintx.Pass, cl *ast.CompositeLit) bool {
	t := pass.TypeOf(cl)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Node" && obj.Pkg() != nil && obj.Pkg().Name() == "artefact"
}

// resolveKeyFuncs maps a Key field value to the function bodies it
// denotes: a func literal, a local variable bound to one, or a
// declared function/method of this package.
func resolveKeyFuncs(pass *lintx.Pass, bodies map[types.Object]*ast.FuncDecl, v ast.Expr) []ast.Node {
	switch v := ast.Unparen(v).(type) {
	case *ast.FuncLit:
		return []ast.Node{v}
	case *ast.Ident:
		obj := pass.Info.Uses[v]
		if obj == nil {
			return nil
		}
		if fd, ok := bodies[obj]; ok {
			return []ast.Node{fd}
		}
		// A local `key := func(...) ...` binding: find the literal.
		var out []ast.Node
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || (pass.Info.Defs[id] != obj && pass.Info.Uses[id] != obj) {
						continue
					}
					if i < len(as.Rhs) {
						if fl, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
							out = append(out, fl)
						}
					}
				}
				return true
			})
		}
		return out
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[v.Sel].(*types.Func); ok {
			if fd, ok := bodies[types.Object(fn)]; ok {
				return []ast.Node{fd}
			}
		}
	}
	return nil
}
