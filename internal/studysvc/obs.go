package studysvc

// Observability spine: per-request ids, in-flight request tracking,
// per-artefact-node latency aggregation and the admission-control
// queue. The HTTP middleware here binds a request-scoped logger into
// the request context; studysvc passes it (rebased onto BaseContext)
// into core.Study, whose artefact evaluation and memo lookups log
// through it — so one request id threads the whole stack.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/logx"
	"repro/internal/pipeline"
	"repro/internal/tracex"
)

// ErrSaturated is the admission-control rejection: the worker pool is
// full and the request exceeded the queue bound (depth or wait).
// Handlers map it to 429 + Retry-After.
var ErrSaturated = errors.New("study pool saturated")

// reqIDKey carries the request id in a request context.
type reqIDKey struct{}

// requestIDFrom returns the request id bound by the middleware, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// openRequest is one in-flight HTTP request, tracked so the server's
// graceful shutdown can say what it is waiting on.
type openRequest struct {
	method string
	path   string
	start  time.Time
}

// instrument wraps the API mux with the request middleware: it assigns
// (or adopts) a request id, binds a request-scoped logger and the
// service tracer into the context, opens a request span (joined to the
// caller's trace when a traceparent header arrived, echoed back on the
// response so the caller learns the shared trace id), tracks the
// request in the open set and logs start/finish with status and
// duration.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.Header.Get("X-Request-ID")
		if id == "" {
			s.reqMu.Lock()
			s.nextReq++
			id = "r-" + strconv.Itoa(s.nextReq)
			s.reqMu.Unlock()
		}
		w.Header().Set("X-Request-ID", id)
		lg := s.log().With("request_id", id)
		ctx := logx.NewContext(context.WithValue(req.Context(), reqIDKey{}, id), lg)
		var span *tracex.Span
		// Reading the trace ring must not write to it: a span per
		// GET /v1/trace would make every fetch the newest trace.
		if !strings.HasPrefix(req.URL.Path, "/v1/trace") {
			ctx = tracex.NewContext(ctx, s.cfg.Tracer)
			if remote, ok := tracex.Extract(req.Header); ok {
				ctx = tracex.WithRemote(ctx, remote)
			}
			ctx, span = tracex.StartSpan(ctx, "http "+req.Method+" "+req.URL.Path)
			span.SetAttr("request_id", id)
			if sc := span.Context(); sc.IsValid() {
				w.Header().Set(tracex.TraceparentHeader, tracex.FormatTraceparent(sc))
			}
		}

		s.reqMu.Lock()
		s.openReqs[id] = openRequest{method: req.Method, path: req.URL.Path, start: time.Now()}
		s.reqMu.Unlock()
		defer func() {
			s.reqMu.Lock()
			delete(s.openReqs, id)
			s.reqMu.Unlock()
		}()

		lg.Debug("request start", "method", req.Method, "path", req.URL.Path)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, req.WithContext(ctx))
		span.SetAttr("status", strconv.Itoa(sw.code))
		span.End()
		lg.Info("request",
			"method", req.Method,
			"path", req.URL.Path,
			"status", sw.code,
			"elapsed_ms", time.Since(start).Milliseconds())
	})
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// InFlightRequests describes every HTTP request currently being
// served, oldest first — what a graceful shutdown is waiting on. Each
// entry reads "id METHOD /path (elapsed)".
func (s *Service) InFlightRequests() []string {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	type row struct {
		id string
		r  openRequest
	}
	rows := make([]row, 0, len(s.openReqs))
	for id, r := range s.openReqs {
		rows = append(rows, row{id, r})
	}
	sort.Slice(rows, func(i, j int) bool {
		if !rows[i].r.start.Equal(rows[j].r.start) {
			return rows[i].r.start.Before(rows[j].r.start)
		}
		return rows[i].id < rows[j].id
	})
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, r.id+" "+r.r.method+" "+r.r.path+
			" ("+time.Since(r.r.start).Round(time.Millisecond).String()+")")
	}
	return out
}

// log returns the configured logger (nil — a no-op — when none is).
func (s *Service) log() *logx.Logger { return s.cfg.Logger }

// admit reserves one worker-pool slot for a fresh run. The fast path
// takes a free slot immediately. When the pool is saturated, HTTP
// requests (block=false) wait in a queue bounded two ways — at most
// MaxQueueDepth waiters, for at most MaxQueueWait each — and are shed
// with ErrSaturated beyond either bound, so saturation surfaces as
// fast 429s instead of unbounded queueing. Internal sweep cells
// (block=true) wait indefinitely: their concurrency is already
// bounded by the sweep's parallelism, and BaseContext cancellation
// still releases them. Every successful admission records its queue
// wait in the stats histogram.
func (s *Service) admit(ctx context.Context, block bool) error {
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.queueWait.Observe(time.Since(start))
		return nil
	default:
	}
	if block {
		select {
		case s.sem <- struct{}{}:
			s.queueWait.Observe(time.Since(start))
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.mu.Lock()
	if s.cfg.MaxQueueDepth < 1 || s.waiting >= s.cfg.MaxQueueDepth {
		s.stats.Shed++
		s.mu.Unlock()
		return fmt.Errorf("%w: queue full", ErrSaturated)
	}
	s.waiting++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.waiting--
		s.mu.Unlock()
	}()
	t := time.NewTimer(s.cfg.MaxQueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		s.queueWait.Observe(time.Since(start))
		return nil
	case <-t.C:
		s.mu.Lock()
		s.stats.Shed++
		s.mu.Unlock()
		return fmt.Errorf("%w: no slot within %v", ErrSaturated, s.cfg.MaxQueueWait)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterSeconds renders Config.RetryAfter as a Retry-After header
// value (whole seconds, rounded up, at least 1).
func (s *Service) retryAfterSeconds() int {
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// NodeStats aggregates one artefact node's service-lifetime execution:
// how often it was answered from memo vs computed, and the compute
// latency distribution (memo hits are excluded from the histogram —
// they would pin every percentile at ~0).
type NodeStats struct {
	Name     string `json:"name"`
	MemoHits int64  `json:"memo_hits"`
	Computes int64  `json:"computes"`
	// P50MS / P95MS summarize the compute-latency distribution — the
	// two dashboard numbers — lifted out of the full histogram below.
	P50MS   float64                    `json:"p50_ms"`
	P95MS   float64                    `json:"p95_ms"`
	Latency pipeline.HistogramSnapshot `json:"latency"`
}

// nodeAgg is the mutable accumulator behind one NodeStats row.
type nodeAgg struct {
	memoHits int64
	computes int64
	latency  *pipeline.Histogram
}

// foldNodeStats folds one finished run's per-node stage records into
// the service-lifetime node aggregates. The artefact evaluator records
// each resolved node as a "node X" stage with Busy==0 iff the value
// came from memo (core.Study.evaluate), so the stage table the
// envelope already exposes is also the per-node metrics feed — no
// re-instrumentation.
func (s *Service) foldNodeStats(stages []pipeline.StageSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, snap := range stages {
		name, ok := strings.CutPrefix(snap.Name, "node ")
		if !ok {
			continue
		}
		agg := s.nodes[name]
		if agg == nil {
			agg = &nodeAgg{latency: pipeline.NewHistogram()}
			s.nodes[name] = agg
		}
		if snap.Busy == 0 {
			agg.memoHits++
			continue
		}
		agg.computes++
		agg.latency.Observe(snap.Wall)
	}
}

// nodeStatsLocked snapshots the node aggregates, sorted by name.
// Caller holds s.mu.
func (s *Service) nodeStatsLocked() []NodeStats {
	out := make([]NodeStats, 0, len(s.nodes))
	for name, agg := range s.nodes {
		snap := agg.latency.Snapshot()
		out = append(out, NodeStats{
			Name:     name,
			MemoHits: agg.memoHits,
			Computes: agg.computes,
			P50MS:    snap.P50MS,
			P95MS:    snap.P95MS,
			Latency:  snap,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
