// Package report renders the study's tables and figures as plain
// text, with the same rows and series the paper prints. cmd/ewreport
// and the benchmark harness both use it.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/actors"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/earnings"
	"repro/internal/stats"
	"repro/internal/urlx"
)

// table renders rows of cells with padded columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(header)
	total := len(header)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

// Table1 renders the per-forum eWhoring overview.
func Table1(rows []core.ForumOverviewRow) string {
	out := make([][]string, 0, len(rows)+1)
	tThreads, tPosts, tTOPs, tActors := 0, 0, 0, 0
	for _, r := range rows {
		out = append(out, []string{
			r.Forum,
			fmt.Sprint(r.Threads),
			fmt.Sprint(r.Posts),
			r.FirstPost.Format("01/06"),
			fmt.Sprint(r.TOPs),
			fmt.Sprint(r.Actors),
		})
		tThreads += r.Threads
		tPosts += r.Posts
		tTOPs += r.TOPs
		tActors += r.Actors
	}
	out = append(out, []string{"TOTAL", fmt.Sprint(tThreads), fmt.Sprint(tPosts), "",
		fmt.Sprint(tTOPs), fmt.Sprint(tActors)})
	return "Table 1: eWhoring-related conversations per forum\n" +
		table([]string{"Forum", "#Threads", "#Posts", "First post", "#TOPs", "#Actors"}, out)
}

// Classifier renders the §4.1 evaluation block.
func Classifier(c core.ClassifierResult) string {
	m := c.Metrics
	return fmt.Sprintf(`Classifier (§4.1): annotated=%d (TOPs %d)
precision=%.2f recall=%.2f F1=%.2f  (paper: 0.92 / 0.93 / 0.92)
extracted TOPs=%d  ML=%d heuristics=%d both=%d  (paper: 4137 / 3456 / 2676 / 1995)
`, c.Annotated, c.TOPsInAnno, m.Precision(), m.Recall(), m.F1(),
		len(c.Extract.TOPs), c.Extract.MLCount, c.Extract.HeurCount, c.Extract.BothCount)
}

// LinkTable renders Table 3 or Table 4.
func LinkTable(title string, counts []urlx.DomainCount) string {
	rows := make([][]string, 0, len(counts)+1)
	total := 0
	for _, c := range counts {
		rows = append(rows, []string{c.Domain, fmt.Sprint(c.Count)})
		total += c.Count
	}
	rows = append(rows, []string{"Total", fmt.Sprint(total)})
	return title + "\n" + table([]string{"Site", "#Links"}, rows)
}

// Crawl renders the §4.2 crawl summary, appending the per-host
// degradation ledger when the crawl lost tasks to dead or exhausted
// hosts. Healthy crawls render byte-identically to the pre-faultx era
// (the golden reports pin that).
func Crawl(res *core.Results) string {
	st := res.CrawlStats
	out := fmt.Sprintf(`Crawl (§4.2): tasks=%d [%s]
preview images=%d  packs=%d  pack images=%d  unique=%d  duplicates=%d
TOPs with links=%d/%d (%.1f%%)  snowball added %d domains
`, st.Tasks, strings.Join(st.OutcomeCounts(), " "),
		st.PreviewImages, st.PacksFetched, st.PackImages, st.UniqueImages, st.DuplicateCount,
		res.Links.ThreadsWithLinks, len(res.Classifier.Extract.TOPs),
		100*float64(res.Links.ThreadsWithLinks)/float64(max(1, len(res.Classifier.Extract.TOPs))),
		res.Links.SnowballAdded)
	out += degradation("crawl", st.Coverage)
	out += degradation("earnings crawl", res.Earnings.CrawlCoverage)
	return out
}

// degradation renders one crawl's coverage ledger — only when it is
// actually degraded, so healthy reports are untouched.
func degradation(which string, cov crawler.Coverage) string {
	if !cov.Degraded {
		return ""
	}
	out := fmt.Sprintf("DEGRADED %s: %d tasks lost to exhausted hosts", which, cov.Errors)
	if len(cov.DeadHosts) > 0 {
		out += fmt.Sprintf("; dead hosts: %s", strings.Join(cov.DeadHosts, ", "))
	}
	out += "\n"
	for _, h := range cov.Hosts {
		if h.Errors == 0 {
			continue
		}
		out += fmt.Sprintf("  %s: %d/%d errored (ok=%d not_found=%d)\n",
			h.Host, h.Errors, h.Tasks, h.OK, h.NotFound)
	}
	return out
}

// PhotoDNA renders the §4.3 hashlist-filter summary.
func PhotoDNA(res *core.Results) string {
	s := res.PhotoDNA
	var sev, reg, site []string
	for k, v := range s.BySeverity {
		sev = append(sev, fmt.Sprintf("%s=%d", k, v))
	}
	for k, v := range s.ByRegion {
		reg = append(reg, fmt.Sprintf("%s=%d", k, v))
	}
	for k, v := range s.BySiteType {
		site = append(site, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(sev)
	sort.Strings(reg)
	sort.Strings(site)
	return fmt.Sprintf(`PhotoDNA filter (§4.3): matches=%d (paper: 36), actioned URLs=%d (paper: 61)
severity: %s
hosting:  %s
sites:    %s
`, s.Matches, s.ActionableURLs, strings.Join(sev, " "), strings.Join(reg, " "), strings.Join(site, " "))
}

// NSFV renders the §4.4 split.
func NSFV(res *core.Results) string {
	n := res.NSFV
	total := len(n.Previews) + len(n.SFV)
	return fmt.Sprintf(`NSFV classification (§4.4): image-site downloads=%d
NSFV previews=%d (%.1f%%; paper: 3496/5788 = 60.4%%)  SFV=%d  pack images=%d
`, total, len(n.Previews), 100*float64(len(n.Previews))/float64(max(1, total)),
		len(n.SFV), len(n.PackImages))
}

// Table5 renders the reverse-image-search results.
func Table5(p core.ProvenanceResult) string {
	row := func(r core.ReverseRow) []string {
		return []string{
			r.Corpus,
			fmt.Sprint(r.Total),
			fmt.Sprintf("%d (%.0f%%)", r.Matched, 100*float64(r.Matched)/float64(max(1, r.Total))),
			fmt.Sprintf("%d (%.1f%%)", r.SeenBefore, 100*float64(r.SeenBefore)/float64(max(1, r.Total))),
			fmt.Sprintf("%.1f", r.AvgMatches),
			fmt.Sprint(r.MaxMatches),
		}
	}
	return "Table 5: reverse image search (paper: packs 74%/55.5%/12.7/642; previews 49%/39.0%/17.3/1969)\n" +
		table([]string{"Corpus", "Total", "Matches", "Seen Before", "Ratio", "Max"},
			[][]string{row(p.Packs), row(p.Previews)}) +
		fmt.Sprintf("zero-match packs: %d (paper: 203 of 1255)\n", p.ZeroMatch)
}

// Table6 renders one classifier's domain-category panel.
func Table6(res *core.Results) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("Table 6: categories of %d matched domains (top 85%% per classifier)\n",
		len(res.Provenance.Domains)))
	names := make([]string, 0, len(res.Provenance.Table6))
	for name := range res.Provenance.Table6 {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := res.Provenance.Table6[name]
		out := make([][]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, []string{r.Tag, fmt.Sprint(r.Domains), fmt.Sprintf("%.2f", r.CumPct)})
		}
		sb.WriteString("\n[" + name + "]\n")
		sb.WriteString(table([]string{"Category", "#Domains", "Distrib. (%)"}, out))
	}
	return sb.String()
}

// Figure2 renders the earnings CDFs as text series.
func Figure2(e core.EarningsResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: cumulative frequencies of earnings and proof counts per actor\n")
	sb.WriteString("[earnings USD]\n")
	for _, p := range stats.NewECDF(e.PerActorUSD).Series(10) {
		sb.WriteString(fmt.Sprintf("  $%-10.2f %5.1f%%\n", p.X, p.Pct))
	}
	sb.WriteString("[proof images]\n")
	for _, p := range stats.NewECDF(e.PerActorProofs).Series(10) {
		sb.WriteString(fmt.Sprintf("  %-10.0f %5.1f%%\n", p.X, p.Pct))
	}
	return sb.String()
}

// Figure3 renders the AGC-vs-PayPal monthly series.
func Figure3(e core.EarningsResult) string {
	first1, last1, ok1 := e.MonthlyAGC.Span()
	first2, last2, ok2 := e.MonthlyPayPal.Span()
	if !ok1 && !ok2 {
		return "Figure 3: no proof series\n"
	}
	first, last := first1, last1
	if !ok1 || (ok2 && first2.Before(first)) {
		first = first2
	}
	if !ok1 || (ok2 && last.Before(last2)) {
		last = last2
	}
	var sb strings.Builder
	sb.WriteString("Figure 3: proof-of-earnings per month (AGC vs PayPal)\n")
	sb.WriteString("Month    AGC  PayPal\n")
	for _, mc := range e.MonthlyAGC.Dense(first, last) {
		pp := e.MonthlyPayPal.Count(mc.Month)
		if mc.Count == 0 && pp == 0 {
			continue
		}
		sb.WriteString(fmt.Sprintf("%-7s  %3d  %3d\n", mc.Month, mc.Count, pp))
	}
	return sb.String()
}

// EarningsSummary renders the §5.2 headline numbers.
func EarningsSummary(e core.EarningsResult) string {
	s := e.Summary
	return fmt.Sprintf(`Earnings (§5): threads=%d urls=%d downloaded=%d nsfv-filtered=%d not-proofs=%d
proofs=%d by %d actors  total=$%.0f  mean/actor=$%.0f (paper: $511k / $774)
detailed=%d  mean transaction=$%.2f (paper: $41.90)
platforms: AGC=%d PayPal=%d BTC=%d (paper: 934 / 795 / 35)
`, e.ThreadsMatched, e.URLs, e.Downloaded, e.FilteredNSFV, e.NotProofs,
		s.Proofs, s.Actors, s.TotalUSD, s.MeanPerActorUSD,
		s.Detailed, s.MeanTransactionUSD,
		s.ByPlatform[earnings.PlatformAGC], s.ByPlatform[earnings.PlatformPayPal],
		s.ByPlatform[earnings.PlatformBitcoin])
}

// Table7 renders the currency-exchange table.
func Table7(t earnings.ExchangeTable) string {
	kinds := []earnings.ExchangeKind{earnings.ExPayPal, earnings.ExBTC, earnings.ExAGC, earnings.ExUnknown, earnings.ExOther}
	rows := [][]string{
		{"Offered"}, {"Wanted"},
	}
	header := []string{"Currency"}
	for _, k := range kinds {
		header = append(header, string(k))
		rows[0] = append(rows[0], fmt.Sprint(t.Offered[k]))
		rows[1] = append(rows[1], fmt.Sprint(t.Wanted[k]))
	}
	header = append(header, "Total")
	rows[0] = append(rows[0], fmt.Sprint(t.Total))
	rows[1] = append(rows[1], fmt.Sprint(t.Total))
	return "Table 7: Currency Exchange threads by heavy eWhoring actors\n" +
		table(header, rows)
}

// Table8 renders the actor-bucket overview.
func Table8(rows []actors.BucketRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf(">= %d", r.MinPosts),
			fmt.Sprint(r.Actors),
			fmt.Sprintf("%.1f", r.AvgPosts),
			fmt.Sprintf("%.1f", r.PctEwhoring),
			fmt.Sprintf("%.1f", r.AvgDaysBefore),
			fmt.Sprintf("%.1f", r.AvgDaysAfter),
		})
	}
	return "Table 8: actors by eWhoring post count\n" +
		table([]string{"#Posts", "#Actors", "Avg posts", "%ewhor.", "Before", "After"}, out)
}

// Figure4 renders the per-bucket CDF quantiles.
func Figure4(fig map[int]actors.Samples) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: actor CDF quantiles by bucket (median / p90)\n")
	thrs := make([]int, 0, len(fig))
	for thr := range fig {
		thrs = append(thrs, thr)
	}
	sort.Ints(thrs)
	sb.WriteString("bucket   posts(med/p90)   %ew(med/p90)   before(med/p90)   after(med/p90)\n")
	for _, thr := range thrs {
		s := fig[thr]
		if len(s.Posts) == 0 {
			continue
		}
		q := func(xs []float64, p float64) float64 { return stats.Quantile(xs, p) }
		sb.WriteString(fmt.Sprintf(">=%-5d  %6.0f/%-8.0f  %5.1f/%-7.1f  %7.0f/%-8.0f  %7.0f/%-8.0f\n",
			thr,
			q(s.Posts, 0.5), q(s.Posts, 0.9),
			q(s.Pct, 0.5), q(s.Pct, 0.9),
			q(s.DaysBefore, 0.5), q(s.DaysBefore, 0.9),
			q(s.DaysAfter, 0.5), q(s.DaysAfter, 0.9)))
	}
	return sb.String()
}

// Table9 renders the key-actor intersection matrix.
func Table9(inter map[actors.Group]map[actors.Group]int) string {
	header := []string{""}
	for _, g := range actors.Groups {
		header = append(header, string(g))
	}
	var rows [][]string
	for i, g := range actors.Groups {
		row := []string{string(g)}
		for j, h := range actors.Groups {
			if j < i {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprint(inter[g][h]))
			}
		}
		rows = append(rows, row)
	}
	return "Table 9: key actors selected by more than one indicator (diagonal = unique)\n" +
		table(header, rows)
}

// Table10 renders the key-actor group characteristics.
func Table10(rows []actors.GroupStats) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Group),
			fmt.Sprint(r.Members),
			fmt.Sprintf("%.1f", r.AvgPosts),
			fmt.Sprintf("%.1f", r.PctEwhoring),
			fmt.Sprintf("%.1f", r.AvgDaysBefore),
			fmt.Sprintf("%.0f", r.AvgAmountUSD),
			fmt.Sprintf("%.1f", r.AvgH),
			fmt.Sprintf("%.1f", r.AvgI10),
			fmt.Sprintf("%.1f", r.AvgI100),
			fmt.Sprintf("%.1f", r.AvgPacks),
			fmt.Sprintf("%.1f", r.AvgExchange),
		})
	}
	return "Table 10: key-actor group characteristics (means)\n" +
		table([]string{"Group", "N", "#Posts", "%ew", "Days before", "$", "H", "I10", "I100", "#Packs", "#CE"}, out)
}

// Figure5 renders the interest evolution.
func Figure5(fig map[actors.InterestPhase]actors.InterestProfile) string {
	cats := map[string]struct{}{}
	for _, prof := range fig {
		for c := range prof {
			cats[c] = struct{}{}
		}
	}
	names := make([]string, 0, len(cats))
	for c := range cats {
		names = append(names, c)
	}
	sort.Strings(names)
	var rows [][]string
	for _, c := range names {
		rows = append(rows, []string{
			c,
			fmt.Sprintf("%.1f", fig[actors.PhaseBefore][c]),
			fmt.Sprintf("%.1f", fig[actors.PhaseDuring][c]),
			fmt.Sprintf("%.1f", fig[actors.PhaseAfter][c]),
		})
	}
	return "Figure 5: key-actor interests before/during/after eWhoring (% of posts)\n" +
		table([]string{"Category", "Before", "During", "After"}, rows)
}

// Section is one renderable unit of the study report: a named table
// or figure, the core artefact whose evaluation fills the Results
// fields it reads, and its renderer. The section list is the bridge
// between report selection ("print table5 and figure2") and artefact
// computation (core.Study.Compute("provenance", "earnings")).
type Section struct {
	// Name is the section's stable identity ("table5", "figure2", ...).
	Name string
	// Artefact is the core artefact node whose evaluation produces
	// everything Render reads (dependency artefacts ride along in a
	// partial Results, so one name per section suffices).
	Artefact string
	// Render renders the section from a Results holding its artefact.
	Render func(*core.Results) string
}

// Sections lists every report section in the paper's layout order.
func Sections() []Section {
	return []Section{
		{"table1", core.ArtefactTable1, func(r *core.Results) string { return Table1(r.Table1) }},
		{"classifier", core.ArtefactClassifier, func(r *core.Results) string { return Classifier(r.Classifier) }},
		{"table3", core.ArtefactLinks, func(r *core.Results) string {
			return LinkTable("Table 3: links per image-sharing site", r.Links.ImageSharing)
		}},
		{"table4", core.ArtefactLinks, func(r *core.Results) string {
			return LinkTable("Table 4: links per cloud-storage service", r.Links.CloudStorage)
		}},
		{"crawl", core.ArtefactCrawl, Crawl},
		{"photodna", core.ArtefactPhotoDNA, PhotoDNA},
		{"nsfv", core.ArtefactNSFV, NSFV},
		{"table5", core.ArtefactProvenance, func(r *core.Results) string { return Table5(r.Provenance) }},
		{"table6", core.ArtefactProvenance, Table6},
		{"earnings", core.ArtefactEarnings, func(r *core.Results) string { return EarningsSummary(r.Earnings) }},
		{"figure2", core.ArtefactEarnings, func(r *core.Results) string { return Figure2(r.Earnings) }},
		{"figure3", core.ArtefactEarnings, func(r *core.Results) string { return Figure3(r.Earnings) }},
		{"table7", core.ArtefactExchange, func(r *core.Results) string { return Table7(r.Table7) }},
		{"table8", core.ArtefactActors, func(r *core.Results) string { return Table8(r.Actors.Table8) }},
		{"figure4", core.ArtefactActors, func(r *core.Results) string { return Figure4(r.Actors.Fig4) }},
		{"table9", core.ArtefactActors, func(r *core.Results) string { return Table9(r.Actors.Table9) }},
		{"table10", core.ArtefactActors, func(r *core.Results) string { return Table10(r.Actors.Table10) }},
		{"figure5", core.ArtefactActors, func(r *core.Results) string { return Figure5(r.Actors.Fig5) }},
	}
}

// Resolve maps requested names to the sections to render (in layout
// order) and the core artefacts to compute. A name may be a section
// name (selecting that section), or a core artefact name / alias
// (selecting every section that artefact produces — "actors" selects
// Tables 8-10 and Figures 4-5). Section names win when a name is
// both. An empty input selects everything; unknown names are errors.
func Resolve(names ...string) (sections []Section, artefacts []string, err error) {
	all := Sections()
	if len(names) == 0 {
		arts, err := core.ResolveArtefacts()
		return all, arts, err
	}
	byName := make(map[string]int, len(all))
	for i, sec := range all {
		byName[sec.Name] = i
	}
	selected := make(map[int]bool)
	var artNames []string
	for _, raw := range names {
		name := strings.ToLower(strings.TrimSpace(raw))
		if i, ok := byName[name]; ok {
			selected[i] = true
			artNames = append(artNames, all[i].Artefact)
			continue
		}
		arts, err := core.ResolveArtefacts(name)
		if err != nil {
			return nil, nil, fmt.Errorf("report: unknown section or artefact %q", raw)
		}
		// An artefact name selects every section it produces.
		for _, a := range arts {
			artNames = append(artNames, a)
			for i, sec := range all {
				if sec.Artefact == a {
					selected[i] = true
				}
			}
		}
	}
	for i, sec := range all {
		if selected[i] {
			sections = append(sections, sec)
		}
	}
	artefacts, err = core.ResolveArtefacts(artNames...)
	return sections, artefacts, err
}

// join renders sections in order, separated by blank lines — the
// layout Full has always used.
func join(res *core.Results, sections []Section) string {
	var sb strings.Builder
	for i, sec := range sections {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(sec.Render(res))
	}
	return sb.String()
}

// Render renders the named sections (see Resolve for what names are
// accepted) from a Results holding their artefacts — the partial-
// report face of Full: a Results from core.Study.Compute prints
// exactly the sections its artefacts support.
func Render(res *core.Results, names ...string) (string, error) {
	sections, _, err := Resolve(names...)
	if err != nil {
		return "", err
	}
	return join(res, sections), nil
}

// Full renders every table and figure of a study run.
func Full(res *core.Results) string {
	return join(res, Sections())
}
