// Command ewsweep plans and runs a scenario sweep: a grid of full
// studies over seeds, scales, annotation sizes and worker counts,
// aggregated into per-artefact mean / stddev / 95% CI tables, a
// paper-vs-measured stability table and (for scale ladders)
// scale-sensitivity slopes. It is the many-seed generalization of
// cmd/ewreport's single study.
//
// Presets:
//
//	cross-seed-stability   N seeds at one scale — are the artefacts stable across worlds?
//	scale-sensitivity      a scale ladder per seed — what grows with the world, what is calibrated?
//	crawler-concurrency    crawler workers 1/2/4/8 — artefacts must not move, only timings
//	adversarial-hosts      a fault-intensity ladder per seed (rate limits, link rot, dead
//	                       hosts via internal/faultx) — detection recall vs adversary strength
//
// With -remote the cells are POSTed to a live study service
// (cmd/ewserve's -study address), which turns the sweep into a load
// generator: concurrent study requests exercising the service's worker
// pool, request coalescing and result cache, with aggregates identical
// to the local run. -server instead submits the whole spec to the
// service's POST /v1/sweep and lets it fan out server-side.
//
// -load promotes the remote mode into the SLO harness: instead of a
// sweep grid it drives a target request rate for a fixed duration and
// reports latency percentiles, achieved throughput and the service's
// shed rate, optionally as a benchjson artifact (-bench-out) that the
// CI load-slo job diffs against the committed BENCH_load.json.
//
// -trace opens a root span around the sweep and renders the resulting
// span tree plus the critical-path report (internal/tracex) when it
// finishes. With per-cell -remote the traceparent header carries the
// sweep's trace into the server, whose spans are fetched back from
// GET /v1/trace/{id} and merged, so one trace spans both processes.
// -trace-out writes a Chrome trace-event (Perfetto) export; with -load
// it instead samples the first warmup request and writes the server's
// export of that cold-start trace.
//
// Usage:
//
//	ewsweep -preset cross-seed-stability -seeds 10 -scale 0.05
//	ewsweep -scales 0.01,0.02,0.04 -seeds 3
//	ewsweep -preset crawler-concurrency -seeds 2 -scale 0.02
//	ewsweep -remote http://127.0.0.1:8084 -preset cross-seed-stability -seeds 10 -scale 0.05
//	ewsweep -remote http://127.0.0.1:8084 -server -preset scale-sensitivity -json
//	ewsweep -remote http://127.0.0.1:8084 -load -rps 20 -duration 5s -bench-out BENCH_load.fresh.json
//	ewsweep -remote http://127.0.0.1:8084 -trace -seeds 1 -scale 0.01
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/artefact"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/faultx"
	"repro/internal/loadgen"
	"repro/internal/report"
	"repro/internal/studysvc"
	"repro/internal/sweep"
	"repro/internal/tracex"
)

func main() {
	preset := flag.String("preset", "", "scenario preset: "+strings.Join(sweep.Presets(), ", ")+" (empty = custom/single)")
	seeds := flag.Int("seeds", 0, "number of consecutive seeds (preset default if 0)")
	seed := flag.Uint64("seed", 2019, "base world seed")
	scale := flag.Float64("scale", 0.05, "base corpus scale")
	scales := flag.String("scales", "", "comma-separated scale list (custom grid)")
	seedList := flag.String("seed-list", "", "comma-separated explicit seed list (custom grid)")
	annotation := flag.Int("annotation", 0, "annotated-thread corpus size (0 = study default)")
	workers := flag.Int("workers", 0, "pipeline stage workers per study (0 = GOMAXPROCS)")
	crawl := flag.Int("crawl", 0, "crawler workers per study (0 = study default)")
	faults := flag.String("faults", "", `base faultx fault profile for every cell (e.g. "rot=0.3"; the adversarial-hosts preset sweeps its own ladder instead)`)
	parallel := flag.Int("parallel", 2, "concurrent cells")
	memoize := flag.Bool("artefact-cache", true, "share artefact values across cells (results are identical either way; defaults off for the crawler-concurrency preset, whose per-cell timings are the measurement)")
	cellTimeout := flag.Duration("cell-timeout", 10*time.Minute, "per-cell timeout")
	remote := flag.String("remote", "", "drive a live study service at this base URL")
	server := flag.Bool("server", false, "with -remote: run the sweep server-side via POST /v1/sweep")
	jsonOut := flag.Bool("json", false, "emit the full sweep result as JSON")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress lines")
	load := flag.Bool("load", false, "with -remote: drive target-RPS load instead of a sweep and measure latency/shed SLOs")
	rps := flag.Float64("rps", 20, "with -load: target request rate")
	duration := flag.Duration("duration", 5*time.Second, "with -load: how long to drive")
	loadSeeds := flag.Int("load-seeds", 4, "with -load: distinct world seeds cycled through")
	loadConcurrency := flag.Int("load-concurrency", 0, "with -load: max in-flight requests (0 = 2×rps)")
	benchOut := flag.String("bench-out", "", "with -load: write the result as a benchjson artifact to this file")
	readyTimeout := flag.Duration("ready-timeout", 15*time.Second, "with -load: how long to wait for the service to answer /v1/stats")
	trace := flag.Bool("trace", false, "trace the sweep and print the span tree + critical-path report")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event (Perfetto) export to this file (with -load: of the sampled cold-start request)")
	flag.Parse()

	if *server && *remote == "" {
		fatalf("-server requires -remote (the service that runs the sweep)")
	}
	if *load {
		if *remote == "" {
			fatalf("-load requires -remote (the live service to drive)")
		}
		runLoad(loadParams{
			remote: *remote, rps: *rps, duration: *duration,
			seeds: *loadSeeds, concurrency: *loadConcurrency,
			seed: *seed, scale: *scale, annotation: *annotation,
			benchOut: *benchOut, readyTimeout: *readyTimeout, jsonOut: *jsonOut,
			traceOut: *traceOut,
		})
		return
	}

	if _, err := faultx.ParseProfile(*faults); err != nil {
		fatalf("bad -faults: %v", err)
	}
	spec := sweep.Spec{
		Preset: *preset, Seeds: *seeds, Seed: *seed, Scale: *scale,
		Annotation: *annotation, Workers: *workers, CrawlConcurrency: *crawl,
		Faults:      *faults,
		Parallelism: *parallel,
	}
	if *scales != "" || *seedList != "" {
		g := &sweep.Grid{}
		var err error
		if g.Scales, err = parseFloats(*scales); err != nil {
			fatalf("bad -scales: %v", err)
		}
		if g.Seeds, err = parseUints(*seedList); err != nil {
			fatalf("bad -seed-list: %v", err)
		}
		spec.Grid = g
	}
	cells, err := spec.Cells()
	if err != nil {
		fatalf("%v", err)
	}

	ctx := context.Background()
	var (
		tracer   *tracex.Tracer
		rootSpan *tracex.Span
	)
	if *trace {
		// Seed the id source from wall time: the sweep's span ids must
		// not collide with the server's inside the shared trace.
		tracer = tracex.New(tracex.Config{IDs: tracex.NewSeqIDs(uint64(time.Now().UnixNano()))})
		ctx = tracex.NewContext(ctx, tracer)
		ctx, rootSpan = tracex.StartSpan(ctx, "sweep")
		rootSpan.SetAttr("spec", spec.Name())
	}
	var res *sweep.Result
	switch {
	case *remote != "" && *server:
		fmt.Fprintf(os.Stderr, "==> sweep %s: %d cells via %s (server-side)\n", spec.Name(), len(cells), *remote)
		env, err := studysvc.NewClient(*remote, nil).RunSweep(ctx, spec)
		if err != nil {
			fatalf("%v", err)
		}
		if env.Status != studysvc.StatusDone || env.Result == nil {
			fatalf("sweep %s %s: %s", env.ID, env.Status, env.Error)
		}
		fmt.Fprintf(os.Stderr, "sweep %s done on the server\n", env.ID)
		res = env.Result
	default:
		// Local cells share generated worlds and, by default,
		// artefact values: a grid varying only annotation or
		// concurrency axes generates each world once, and cells whose
		// semantic parameters match reuse whole artefact prefixes (a
		// crawler-concurrency sweep crawls once, not once per cell —
		// which also makes the later cells' timings memo reads;
		// -artefact-cache=false restores per-cell execution when the
		// timing itself is the measurement).
		// The crawler-concurrency preset measures per-cell timing
		// across crawl worker counts — an axis the memo keys exclude
		// on purpose — so sharing would turn every cell after the
		// first into a ~0ms memo read. Default the memo off for it
		// unless the flag was set explicitly.
		memoOn := *memoize
		if *preset == sweep.PresetConcurrency {
			explicit := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "artefact-cache" {
					explicit = true
				}
			})
			if !explicit {
				memoOn = false
			}
		}
		local := sweep.Local{Worlds: sweep.NewWorldCache(0)}
		if memoOn {
			local.Memo = artefact.NewStore(0)
		}
		var backend sweep.Backend = local
		mode := "local"
		if *remote != "" {
			backend = studysvc.Backend{Client: studysvc.NewClient(*remote, nil)}
			mode = "remote via " + *remote + " (one POST /v1/study per cell)"
		}
		fmt.Fprintf(os.Stderr, "==> sweep %s: %d cells, parallelism %d, %s\n",
			spec.Name(), len(cells), *parallel, mode)
		opts := sweep.Options{Parallelism: *parallel, CellTimeout: *cellTimeout}
		if !*quiet {
			opts.OnCell = func(done, total int, o sweep.Outcome) {
				status := "ok"
				switch {
				case o.Err != "":
					status = "FAILED: " + o.Err
				case o.Cached:
					status = "cached"
				}
				fmt.Fprintf(os.Stderr, "    [%d/%d] cell %d (%s) %dms %s\n",
					done, total, o.Index, o.Cell, o.ElapsedMS, status)
			}
		}
		res = sweep.Run(ctx, spec.Name(), cells, backend, opts)
	}
	rootSpan.End()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Println(report.Sweep(res))
	}
	if *trace {
		printTrace(tracer, rootSpan.Context().Trace.String(), *remote, *traceOut)
	}
	// A partially-failed sweep is a failure in every output mode: the
	// ledger (text or JSON) has the details, the exit code the verdict.
	if len(res.Errors) > 0 {
		os.Exit(1)
	}
}

// printTrace renders the sweep's span tree and critical-path report.
// With a remote service, the server's half of the trace (propagated
// via the traceparent header on each cell's POST) is fetched from GET
// /v1/trace/{id} and merged, so the rendering spans both processes.
func printTrace(tracer *tracex.Tracer, id, remote, out string) {
	tr, ok := tracer.Trace(id)
	if !ok {
		fmt.Fprintf(os.Stderr, "ewsweep: trace %s not found in local ring\n", id)
		return
	}
	if remote != "" {
		remoteTr, err := stableRemoteTrace(studysvc.NewClient(remote, nil), id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ewsweep: fetching server-side trace: %v\n", err)
		} else {
			tr = tracex.Merge(tr, *remoteTr)
		}
	}
	fmt.Println(tr.RenderTree())
	fmt.Println(tracex.CriticalPath(tr, core.SpanDeps()).Render())
	if out != "" {
		if err := os.WriteFile(out, tr.ChromeTrace(), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (trace %s)\n", out, id)
	}
}

// loadParams collects the -load flag set.
type loadParams struct {
	remote       string
	rps          float64
	duration     time.Duration
	seeds        int
	concurrency  int
	seed         uint64
	scale        float64
	annotation   int
	benchOut     string
	readyTimeout time.Duration
	jsonOut      bool
	traceOut     string
}

// runLoad is the -load mode: wait for the service, drive target RPS
// through internal/loadgen, print the SLO summary and (optionally)
// write the benchjson artifact the load-slo CI gate diffs against
// BENCH_load.json. Shed requests are the admission control working as
// designed; only transport or run failures exit nonzero.
func runLoad(p loadParams) {
	ctx := context.Background()
	if err := cliutil.WaitReady(ctx, p.remote, p.readyTimeout); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "==> load: %.0f rps for %v against %s (%d seeds, scale %g)\n",
		p.rps, p.duration, p.remote, p.seeds, p.scale)
	client := studysvc.NewClient(p.remote, nil)
	var tracer *tracex.Tracer
	if p.traceOut != "" {
		tracer = tracex.New(tracex.Config{IDs: tracex.NewSeqIDs(uint64(time.Now().UnixNano()))})
	}
	res, err := loadgen.Run(ctx, client, loadgen.Spec{
		TargetRPS:      p.rps,
		Duration:       p.duration,
		Concurrency:    p.concurrency,
		Seeds:          p.seeds,
		Seed:           p.seed,
		Scale:          p.scale,
		AnnotationSize: p.annotation,
		Warmup:         true,
		Tracer:         tracer,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if p.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Println(res)
	}
	if p.benchOut != "" {
		data, err := res.BenchArtifact()
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(p.benchOut, data, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", p.benchOut)
	}
	if p.traceOut != "" {
		writeSampleTrace(res, p.traceOut)
	}
	if res.Errors > 0 {
		for _, e := range res.ErrorSamples {
			fmt.Fprintf(os.Stderr, "ewsweep: load error: %s\n", e)
		}
		os.Exit(1)
	}
}

// writeSampleTrace writes the Chrome trace-event export of the run's
// sampled cold-start trace (both halves already merged by loadgen,
// which fetches the server's before the measured window evicts it
// from the bounded ring) — the artifact the CI load-slo job uploads
// beside the bench numbers.
func writeSampleTrace(res *loadgen.Result, out string) {
	if res.SampleTrace == nil {
		fmt.Fprintln(os.Stderr, "ewsweep: no trace sampled (warmup did not run)")
		return
	}
	if err := os.WriteFile(out, res.SampleTrace.ChromeTrace(), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (trace %s)\n", out, res.SampleTraceID)
}

// stableRemoteTrace fetches the server half of a trace, polling until
// two consecutive reads agree on the span count: the request span
// covering the final POST is recorded just after its response is
// written, so a single immediate fetch can land one beat early.
func stableRemoteTrace(client *studysvc.Client, id string) (*tracex.Trace, error) {
	ctx := context.Background()
	tr, err := client.Trace(ctx, id)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 10; i++ {
		time.Sleep(50 * time.Millisecond)
		next, err := client.Trace(ctx, id)
		if err != nil {
			return tr, nil
		}
		if len(next.Spans) == len(tr.Spans) {
			return next, nil
		}
		tr = next
	}
	return tr, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ewsweep: "+format+"\n", args...)
	os.Exit(1)
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseUints(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
