package socialgraph

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/forum"
)

func day(n int) time.Time {
	return time.Date(2015, time.January, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestAddResponseAndWeight(t *testing.T) {
	g := NewGraph()
	g.AddResponse(1, 2)
	g.AddResponse(1, 2)
	g.AddResponse(2, 1)
	g.AddResponse(3, 3) // self-loop ignored
	if g.Weight(1, 2) != 2 || g.Weight(2, 1) != 1 {
		t.Fatalf("weights = %v %v", g.Weight(1, 2), g.Weight(2, 1))
	}
	if g.Weight(3, 3) != 0 {
		t.Fatal("self-loop recorded")
	}
	if g.NumActors() != 3 || g.NumEdges() != 2 {
		t.Fatalf("actors %d edges %d", g.NumActors(), g.NumEdges())
	}
	if g.Weight(9, 1) != 0 || g.Weight(1, 9) != 0 {
		t.Fatal("unknown actor weight nonzero")
	}
}

func TestBuildResponseRules(t *testing.T) {
	s := forum.NewStore()
	f := s.AddForum("HF")
	b := s.AddBoard(f, "eWhoring", "Money")
	alice := s.AddActor(f, "alice", day(0))
	bob := s.AddActor(f, "bob", day(0))
	carol := s.AddActor(f, "carol", day(0))

	th := s.AddThread(b, alice, "pack", "selling", day(1))
	first := s.FirstPost(th)
	// Bob replies without quoting → responds to thread author alice.
	s.AddReply(th, bob, "thanks", day(2), 0)
	// Carol quotes bob's post → responds to bob.
	bobPost := s.PostsInThread(th)[1]
	s.AddReply(th, carol, "agreed", day(3), bobPost.ID)
	// Alice replies quoting her own first post → self-loop, ignored.
	s.AddReply(th, alice, "bump", day(4), first.ID)

	g := Build(s, []forum.ThreadID{th})
	if g.Weight(bob, alice) != 1 {
		t.Errorf("bob→alice = %v", g.Weight(bob, alice))
	}
	if g.Weight(carol, bob) != 1 {
		t.Errorf("carol→bob = %v", g.Weight(carol, bob))
	}
	if g.Weight(alice, alice) != 0 {
		t.Errorf("alice self-loop recorded")
	}
	if g.NumActors() != 3 {
		t.Errorf("NumActors = %d", g.NumActors())
	}
}

func TestBuildIncludesSilentStarters(t *testing.T) {
	s := forum.NewStore()
	f := s.AddForum("HF")
	b := s.AddBoard(f, "eWhoring", "Money")
	alice := s.AddActor(f, "alice", day(0))
	th := s.AddThread(b, alice, "no replies", "x", day(1))
	g := Build(s, []forum.ThreadID{th})
	if g.NumActors() != 1 {
		t.Fatalf("NumActors = %d; silent thread starters must be nodes", g.NumActors())
	}
}

func TestEigenvectorCentralityStar(t *testing.T) {
	// Star graph: hub 1 interacts with 2..6. Hub must dominate.
	g := NewGraph()
	for a := forum.ActorID(2); a <= 6; a++ {
		g.AddResponse(a, 1)
	}
	c := g.EigenvectorCentrality(0, 0)
	if c[1] != 1 {
		t.Fatalf("hub centrality = %v, want 1 (normalised max)", c[1])
	}
	for a := forum.ActorID(2); a <= 6; a++ {
		if c[a] >= c[1] {
			t.Fatalf("leaf %d centrality %v >= hub", a, c[a])
		}
	}
	// Leaves are symmetric.
	if math.Abs(c[2]-c[6]) > 1e-6 {
		t.Fatalf("symmetric leaves differ: %v vs %v", c[2], c[6])
	}
}

func TestEigenvectorCentralityWeightMatters(t *testing.T) {
	g := NewGraph()
	// 2 responds to 1 ten times; 3 responds to 1 once; 2 and 3
	// otherwise identical.
	for i := 0; i < 10; i++ {
		g.AddResponse(2, 1)
	}
	g.AddResponse(3, 1)
	c := g.EigenvectorCentrality(0, 0)
	if c[2] <= c[3] {
		t.Fatalf("heavier edge did not raise centrality: %v vs %v", c[2], c[3])
	}
}

func TestEigenvectorCentralityEmpty(t *testing.T) {
	g := NewGraph()
	if len(g.EigenvectorCentrality(0, 0)) != 0 {
		t.Fatal("empty graph returned centralities")
	}
}

func TestHIndex(t *testing.T) {
	cases := []struct {
		counts []int
		want   int
	}{
		{nil, 0},
		{[]int{0, 0}, 0},
		{[]int{1}, 1},
		{[]int{5, 4, 3, 2, 1}, 3},
		{[]int{10, 10, 10}, 3},
		{[]int{100}, 1},
		{[]int{2, 2, 2, 2}, 2},
	}
	for _, c := range cases {
		if got := HIndex(c.counts); got != c.want {
			t.Errorf("HIndex(%v) = %d want %d", c.counts, got, c.want)
		}
	}
}

func TestComputePopularity(t *testing.T) {
	s := forum.NewStore()
	f := s.AddForum("HF")
	b := s.AddBoard(f, "eWhoring", "Money")
	alice := s.AddActor(f, "alice", day(0))
	bob := s.AddActor(f, "bob", day(0))
	var threads []forum.ThreadID
	// Alice: threads with 12, 60 and 2 replies.
	for _, replies := range []int{12, 60, 2} {
		th := s.AddThread(b, alice, "t", "x", day(1))
		for i := 0; i < replies; i++ {
			s.AddReply(th, bob, "r", day(2), 0)
		}
		threads = append(threads, th)
	}
	pop := ComputePopularity(s, threads)
	a := pop[alice]
	if a.Threads != 3 {
		t.Errorf("Threads = %d", a.Threads)
	}
	if a.I10 != 2 || a.I50 != 1 || a.I100 != 0 {
		t.Errorf("I-indices = %+v", a)
	}
	// Reply counts 60, 12, 2 → H = 2.
	if a.H != 2 {
		t.Errorf("H = %d", a.H)
	}
	if _, ok := pop[bob]; ok {
		t.Error("non-starter bob has popularity")
	}
}

func TestTopByCentrality(t *testing.T) {
	c := map[forum.ActorID]float64{1: 0.5, 2: 1.0, 3: 0.5, 4: 0.1}
	top := TopByCentrality(c, 3)
	if len(top) != 3 || top[0] != 2 {
		t.Fatalf("top = %v", top)
	}
	// Ties broken by ID: 1 before 3.
	if top[1] != 1 || top[2] != 3 {
		t.Fatalf("tie order = %v", top)
	}
	if len(TopByCentrality(c, 100)) != 4 {
		t.Fatal("k > n not clamped")
	}
}

// Property: H-index is at most the list length and at most the max
// count.
func TestQuickHIndexBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		maxC := 0
		for i, v := range raw {
			counts[i] = int(v)
			if counts[i] > maxC {
				maxC = counts[i]
			}
		}
		h := HIndex(counts)
		return h >= 0 && h <= len(counts) && h <= maxC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: centralities are within [0, 1] after normalisation.
func TestQuickCentralityBounded(t *testing.T) {
	f := func(edges []uint16) bool {
		g := NewGraph()
		for _, e := range edges {
			a := forum.ActorID(e%13 + 1)
			b := forum.ActorID((e>>4)%13 + 1)
			g.AddResponse(a, b)
		}
		for _, v := range g.EigenvectorCentrality(50, 1e-8) {
			if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEigenvectorCentrality(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 2000; i++ {
		a := forum.ActorID(i%500 + 1)
		t := forum.ActorID((i*7)%500 + 1)
		g.AddResponse(a, t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.EigenvectorCentrality(50, 1e-9)
	}
}
