// Package nsfw is the reproduction's stand-in for Yahoo's OpenNSFW
// deep-learning model: it assigns each image a probability-like score
// in [0, 1] that the image contains nudity.
//
// Instead of a neural network (no training data can exist for this
// study's imagery), the scorer measures two pixel statistics of the
// synthetic raster: the fraction of skin-band pixels and their spatial
// coherence (bodies are contiguous blobs; scattered skin-valued noise
// is not). The resulting score lands in the bands the paper reports:
// non-nude images below 0.3, clothed models between roughly 0.1 and
// 0.7, nude models above 0.3 — which is all Algorithm 1 consumes.
package nsfw

import (
	"math"

	"repro/internal/imagex"
)

// Scorer scores images for nudity. The zero value uses default
// calibration; fields allow the ablation benches to perturb it.
//
// The mapping is convex (a power curve), mirroring how OpenNSFW
// behaves on real imagery: clearly innocuous photos — even ones
// containing some skin, like a person photographed at a distance —
// score well below 0.01, while the score climbs steeply once skin
// dominates the frame.
type Scorer struct {
	// FractionGain is the final multiplicative gain. Default 1.6.
	FractionGain float64
	// CoherenceGain scales the coherence multiplier. Default 3.
	CoherenceGain float64
	// Exponent is the convexity of the response curve. Default 1.7.
	Exponent float64
}

// Default returns the calibrated scorer used throughout the study.
func Default() Scorer {
	return Scorer{FractionGain: 1.6, CoherenceGain: 3, Exponent: 1.7}
}

// Score returns the nudity score of the image in [0, 1].
func (s Scorer) Score(im *imagex.Image) float64 {
	fg := s.FractionGain
	if fg == 0 {
		fg = 1.6
	}
	cg := s.CoherenceGain
	if cg == 0 {
		cg = 3
	}
	exp := s.Exponent
	if exp == 0 {
		exp = 1.7
	}
	f, c := im.SkinStats()
	cmul := cg * c
	if cmul > 1 {
		cmul = 1
	}
	raw := f * (0.6 + 1.4*cmul)
	score := fg * math.Pow(raw, exp)
	if score > 1 {
		score = 1
	}
	if score < 0 {
		score = 0
	}
	return score
}

// Score is a convenience wrapper using the default calibration.
func Score(im *imagex.Image) float64 { return Default().Score(im) }
