package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lintx"
)

// Determinism mechanizes the study's bit-reproducibility invariant
// (DESIGN.md §3): every table derives from Config.Seed alone. It
// applies to the study-path packages (synth, core, actors, earnings,
// sweep, stats, report) and forbids, in order of the PR 1 bug class
// they re-introduce:
//
//  1. math/rand (and v2): randomness must come from internal/randx,
//     whose streams are bit-stable across Go releases;
//  2. time.Now: wall-clock values must not reach study results
//     (timing metadata needs an explicit //lint:ignore rationale);
//  3. slices accumulated inside a map-range loop with no subsequent
//     sort — the synth.genExchange authorship bug;
//  4. float accumulation (+=, -=, *=, /=) inside a map-range loop —
//     the actors.Buckets fold-order bug;
//  5. sorts of map-built slices whose final tie-break compares a bare
//     builtin numeric field — the Table 1 tie-break bug: equal counts
//     leave the map's random order visible, so the last comparison
//     must be an identity (a string or named ID type) or the whole
//     element.
var Determinism = &lintx.Analyzer{
	Name: "determinism",
	Doc:  "forbid nondeterminism sources (math/rand, time.Now, unordered map folds) in study-path packages",
	Run:  runDeterminism,
}

// studyPathPackages are the packages whose outputs land in study
// results; the rule applies to "repro/internal/<name>" (and fixture
// paths ending "internal/<name>").
var studyPathPackages = map[string]bool{
	"synth":    true,
	"core":     true,
	"actors":   true,
	"earnings": true,
	"sweep":    true,
	"stats":    true,
	"report":   true,
}

func isStudyPath(pkgPath string) bool {
	segs := pathSegments(pkgPath)
	return len(segs) >= 2 && segs[len(segs)-2] == "internal" && studyPathPackages[segs[len(segs)-1]]
}

func runDeterminism(pass *lintx.Pass) error {
	if !isStudyPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(), "math/rand in a study-path package: use repro/internal/randx (bit-stable streams; DESIGN.md §3)")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				pass.Reportf(call.Pos(), "time.Now in a study-path package: wall-clock values must not reach study results")
			}
			return true
		})
	}
	for _, fd := range funcDecls(pass.Files) {
		checkMapFolds(pass, fd)
	}
	return nil
}

// mapAppend is one `v = append(v, ...)` inside a map-range loop.
type mapAppend struct {
	obj types.Object
	rng *ast.RangeStmt
	pos token.Pos
}

// sortCall is one call that establishes an order over a slice.
type sortCall struct {
	pos  token.Pos
	arg  types.Object // the sorted slice variable, if identifiable
	less *ast.FuncLit // comparator, when the call takes one
}

// checkMapFolds analyzes one function for the three map-order bug
// shapes (append without sort, float fold, under-specified tie-break).
func checkMapFolds(pass *lintx.Pass, fd *ast.FuncDecl) {
	var appends []mapAppend
	var sorts []sortCall

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					collectMapRangeFolds(pass, n, &appends)
				}
			}
		case *ast.CallExpr:
			if sc, ok := asSortCall(pass.Info, n); ok {
				sorts = append(sorts, sc)
			}
		}
		return true
	})

	for _, ap := range appends {
		sorted := false
		for _, sc := range sorts {
			if sc.pos <= ap.rng.End() || sc.arg == nil || sc.arg != ap.obj {
				continue
			}
			sorted = true
			if sc.less != nil {
				checkTieBreak(pass, sc.less)
			}
		}
		if !sorted {
			pass.Reportf(ap.pos, "slice %q is built in map-iteration order with no subsequent sort; map order is randomized per run (the genExchange PR 1 bug)", ap.obj.Name())
		}
	}
}

// collectMapRangeFolds records slice appends and reports float folds
// inside one map-range body.
func collectMapRangeFolds(pass *lintx.Pass, rng *ast.RangeStmt, appends *[]mapAppend) {
	declaredOutside := func(id *ast.Ident) types.Object {
		obj := pass.Info.Uses[id]
		if obj == nil {
			return nil
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			return nil // loop-local: each iteration's own value
		}
		return obj
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			// v = append(v, ...) onto a slice declared outside the loop.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.Info, call) || len(call.Args) == 0 {
				return true
			}
			if obj := declaredOutside(id); obj != nil {
				if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.Info.Uses[arg] == obj {
					*appends = append(*appends, mapAppend{obj: obj, rng: rng, pos: as.Pos()})
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Float accumulation is order-sensitive; int folds are not.
			lhs := as.Lhs[0]
			t := pass.TypeOf(lhs)
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				if id, ok := lhs.(*ast.Ident); !ok || declaredOutside(id) != nil {
					pass.Reportf(as.Pos(), "float accumulation in map-iteration order; fold over a sorted slice instead (the actors.Buckets PR 1 bug)")
				}
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// asSortCall recognizes the sort/slices package calls that impose an
// order on their slice argument.
func asSortCall(info *types.Info, call *ast.CallExpr) (sortCall, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return sortCall{}, false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sortable := (pkg == "sort" && (name == "Slice" || name == "SliceStable" || name == "Sort" ||
		name == "Stable" || name == "Strings" || name == "Ints" || name == "Float64s")) ||
		(pkg == "slices" && (name == "Sort" || name == "SortFunc" || name == "SortStableFunc"))
	if !sortable || len(call.Args) == 0 {
		return sortCall{}, false
	}
	sc := sortCall{pos: call.Pos()}
	arg := ast.Unparen(call.Args[0])
	// Unwrap a sort.Sort(byX(v)) conversion/wrapper.
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		arg = ast.Unparen(conv.Args[0])
	}
	if id, ok := arg.(*ast.Ident); ok {
		sc.arg = info.Uses[id]
	}
	if len(call.Args) >= 2 {
		if fl, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit); ok {
			sc.less = fl
		}
	}
	return sc, true
}

// checkTieBreak inspects a comparator's final fallback comparison.
// For a slice assembled from a map, a comparator whose last word is a
// bare builtin numeric field leaves equal elements in map order — the
// Table 1 tie-break bug. The final comparison must be an identity: a
// string field, a named (ID-like) type, or the element itself.
func checkTieBreak(pass *lintx.Pass, less *ast.FuncLit) {
	var last *ast.ReturnStmt
	ast.Inspect(less.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			if last == nil || r.Pos() > last.Pos() {
				last = r
			}
		}
		return true
	})
	if last == nil || len(last.Results) != 1 {
		return
	}
	bin, ok := ast.Unparen(last.Results[0]).(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch bin.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	sel, ok := ast.Unparen(bin.X).(*ast.SelectorExpr)
	if !ok {
		return // whole-element comparison or computed key: accept
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	t := s.Obj().Type()
	if _, named := t.(*types.Named); named {
		return // named types (forum.ActorID, ...) read as identities
	}
	if b, ok := t.(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
		pass.Reportf(bin.Pos(), "final tie-break compares builtin numeric field %q: equal values keep map order; end the comparator with an identity field (the Table 1 PR 1 bug)", s.Obj().Name())
	}
}
