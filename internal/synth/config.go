// Package synth generates the study's entire synthetic world from one
// seed: the CrimeBB-like forum corpus (calibrated to Table 1's
// marginals), the web of origin sites that models' images are stolen
// from (feeding the reverse-image-search index, the Wayback archive
// and the domain-classification directory), the packs and previews
// uploaded to simulated hosting sites, the PhotoDNA hashlist, the
// proof-of-earnings images and the Currency Exchange board.
//
// The real CrimeBB dataset is access-restricted and the imagery cannot
// ethically exist in a reproduction, so this generator is the data
// substitution documented in DESIGN.md. Every quantity derives from
// Config.Seed via labelled PCG streams, so any table in the study is
// exactly reproducible, and Config.Scale shrinks the corpus linearly
// while keeping rates and distribution shapes fixed.
//
// Generation is internally parallel: the random walk that draws every
// value stays sequential, while image rendering, hashing and hosting
// uploads fan out over Config.Workers goroutines with an ordered
// applier (exec.go), so the generated world is bit-identical for
// every worker count — GenerateSequential is the inline reference and
// the equivalence test pins Generate against it.
package synth

import (
	"runtime"
	"time"
)

// Config parameterises world generation.
type Config struct {
	// Seed drives every random stream.
	Seed uint64
	// Scale multiplies the paper-scale corpus sizes (1.0 ≈ 44k threads
	// / 626k posts). Typical: 0.02 in tests, 0.1 in reports.
	Scale float64
	// ImageSize is the side length of model images (default 48).
	ImageSize int
	// SkipImages disables the image world (hosting, packs, hashlist,
	// reverse index) for analyses that only need the forum corpus.
	SkipImages bool
	// Workers bounds the goroutines used for image rendering, hashing
	// and hosting uploads during generation; <= 0 means GOMAXPROCS, 1
	// forces the inline path. Workers never changes the generated
	// world (generation is bit-identical across worker counts), so
	// Canonical zeroes it: it is an execution knob, not part of the
	// world's identity, and must stay out of every cache and memo key.
	Workers int
}

// DefaultConfig returns a small, fast configuration.
func DefaultConfig() Config {
	return Config{Seed: 2019, Scale: 0.05, ImageSize: 48}
}

// Canonical returns the config with every defaulted field filled in —
// the identity under which two configs generate the same world.
// Config is comparable, so the canonical form is a cache key: the
// sweep engine's world cache shares one generated world across all
// study cells whose canonical synth configs are equal. Workers is
// zeroed: it sizes a goroutine pool and cannot move a result, so
// configs differing only in Workers share one world.
func (c Config) Canonical() Config {
	c.Workers = 0
	return c.withDefaults()
}

// EffectiveWorkers resolves the Workers knob to the goroutine count
// generation will actually use (GOMAXPROCS when unset).
func (c Config) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.ImageSize <= 0 {
		c.ImageSize = 48
	}
	if c.Seed == 0 {
		c.Seed = 2019
	}
	return c
}

// scaled returns n scaled, with a floor.
func (c Config) scaled(n int, min int) int {
	v := int(float64(n)*c.Scale + 0.5)
	if v < min {
		v = min
	}
	return v
}

// forumSpec carries the Table 1 calibration of one forum.
type forumSpec struct {
	Name      string
	Threads   int       // eWhoring-related threads
	Posts     int       // eWhoring-related posts
	FirstPost time.Time // earliest eWhoring post
	TOPs      int       // threads offering packs
	Actors    int       // actors in eWhoring conversations
	// KeywordHeadings: non-Hackforums threads were selected by the
	// 'ewhor'/'e-whor' heading search, so their headings must carry
	// the keyword.
	KeywordHeadings bool
}

func date(y int, m time.Month) time.Time {
	return time.Date(y, m, 15, 12, 0, 0, 0, time.UTC)
}

// paperForums is Table 1. "Others (4)" is modelled as four small
// forums sharing the listed totals.
var paperForums = []forumSpec{
	{Name: "Hackforums", Threads: 42292, Posts: 596827, FirstPost: date(2008, time.November), TOPs: 4027, Actors: 64035},
	{Name: "OGUsers", Threads: 1744, Posts: 23974, FirstPost: date(2017, time.April), TOPs: 76, Actors: 5586, KeywordHeadings: true},
	{Name: "BlackHatWorld", Threads: 258, Posts: 2694, FirstPost: date(2008, time.April), TOPs: 0, Actors: 1420, KeywordHeadings: true},
	{Name: "V3rmillion", Threads: 95, Posts: 1348, FirstPost: date(2016, time.February), TOPs: 6, Actors: 697, KeywordHeadings: true},
	{Name: "MPGH", Threads: 62, Posts: 922, FirstPost: date(2012, time.July), TOPs: 12, Actors: 341, KeywordHeadings: true},
	{Name: "RaidForums", Threads: 48, Posts: 405, FirstPost: date(2015, time.March), TOPs: 10, Actors: 318, KeywordHeadings: true},
	{Name: "Leakforums", Threads: 6, Posts: 160, FirstPost: date(2015, time.May), TOPs: 2, Actors: 150, KeywordHeadings: true},
	{Name: "Nulled", Threads: 6, Posts: 160, FirstPost: date(2015, time.June), TOPs: 2, Actors: 150, KeywordHeadings: true},
	{Name: "Antichat", Threads: 5, Posts: 150, FirstPost: date(2015, time.August), TOPs: 1, Actors: 145, KeywordHeadings: true},
	{Name: "Garage4Hackers", Threads: 4, Posts: 144, FirstPost: date(2016, time.January), TOPs: 1, Actors: 141, KeywordHeadings: true},
}

// datasetEnd is the last post date in the dataset (March 2019).
var datasetEnd = date(2019, time.March)

// Hackforums board categories used for the §6 interests analysis
// (Figure 5).
var hfCategories = []string{
	"Gaming", "Hacking", "Coding", "Market", "Money",
	"Tech", "Common", "Graphics", "Web",
}

// Interest mixes before/during/after eWhoring: the Figure 5 shape —
// users arrive via gaming and hacking, shift towards market boards.
var (
	interestBefore = map[string]float64{
		"Gaming": 0.30, "Hacking": 0.25, "Common": 0.12, "Tech": 0.10,
		"Coding": 0.09, "Market": 0.06, "Graphics": 0.04, "Web": 0.03,
		"Money": 0.01,
	}
	interestDuring = map[string]float64{
		"Market": 0.24, "Gaming": 0.17, "Hacking": 0.16, "Money": 0.13,
		"Common": 0.13, "Tech": 0.07, "Coding": 0.05, "Graphics": 0.03,
		"Web": 0.02,
	}
	interestAfter = map[string]float64{
		"Market": 0.29, "Common": 0.20, "Gaming": 0.14, "Hacking": 0.13,
		"Money": 0.10, "Tech": 0.06, "Coding": 0.04, "Graphics": 0.02,
		"Web": 0.02,
	}
)
