package actors

import (
	"sort"
	"testing"
	"time"

	"repro/internal/forum"
	"repro/internal/socialgraph"
	"repro/internal/synth"
)

var world = synth.Generate(synth.Config{Seed: 31, Scale: 0.02, SkipImages: true})

func ewAll() []forum.ThreadID { return world.EWhoringAll() }

func TestBuildProfiles(t *testing.T) {
	profiles := BuildProfiles(world.Store, ewAll())
	if len(profiles) == 0 {
		t.Fatal("no profiles")
	}
	for _, p := range profiles {
		if p.EwPosts <= 0 {
			t.Fatalf("actor %d with zero eWhoring posts profiled", p.Actor)
		}
		if p.TotalPosts < p.EwPosts {
			t.Fatalf("actor %d: total %d < eWhoring %d", p.Actor, p.TotalPosts, p.EwPosts)
		}
		if p.DaysBefore() < 0 || p.DaysAfter() < 0 {
			t.Fatalf("actor %d: negative before/after days", p.Actor)
		}
		if pct := p.PctEwhoring(); pct <= 0 || pct > 100 {
			t.Fatalf("actor %d: pct %.2f", p.Actor, pct)
		}
	}
}

func TestBucketsMonotone(t *testing.T) {
	profiles := BuildProfiles(world.Store, ewAll())
	rows := Buckets(profiles, nil)
	if len(rows) != len(Table8Thresholds) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Actors > rows[i-1].Actors {
			t.Fatalf("bucket %d larger than bucket %d", i, i-1)
		}
	}
	if rows[0].Actors == 0 {
		t.Fatal("no actors in the ≥1 bucket")
	}
	// The heavy tail must thin out dramatically (Table 8: 73k → 13).
	if rows[len(rows)-1].Actors >= rows[0].Actors/5 {
		t.Fatalf("tail bucket too fat: %d of %d", rows[len(rows)-1].Actors, rows[0].Actors)
	}
	// Avg posts grows with the bucket threshold.
	if rows[0].AvgPosts >= rows[len(rows)-2].AvgPosts && rows[len(rows)-2].Actors > 0 {
		t.Errorf("avg posts not growing: %.1f vs %.1f", rows[0].AvgPosts, rows[len(rows)-2].AvgPosts)
	}
}

func TestCollectSamples(t *testing.T) {
	profiles := BuildProfiles(world.Store, ewAll())
	all := CollectSamples(profiles, 1)
	ten := CollectSamples(profiles, 10)
	if len(all.Posts) != len(profiles) {
		t.Fatalf("samples %d != profiles %d", len(all.Posts), len(profiles))
	}
	if len(ten.Posts) >= len(all.Posts) {
		t.Fatal("min-post filter did nothing")
	}
	if len(all.Posts) != len(all.Pct) || len(all.Posts) != len(all.DaysBefore) {
		t.Fatal("sample series misaligned")
	}
}

func buildInputs(t testing.TB) (map[forum.ActorID]*Profile, KeyActorInputs) {
	ew := ewAll()
	profiles := BuildProfiles(world.Store, ew)
	graph := socialgraph.Build(world.Store, ew)
	packs := make(map[forum.ActorID]int)
	for _, tid := range ew {
		if tr := world.Truth[tid]; tr != nil && tr.Kind == synth.KindTOP {
			packs[world.Store.Thread(tid).Author]++
		}
	}
	earn := make(map[forum.ActorID]float64)
	for _, pt := range world.Proofs {
		if pt.Kind == synth.ProofEarnings {
			earn[pt.Actor] += pt.Truth.Total
		}
	}
	scores, counts := ExchangeScores(world.Store, world.HFCurrency, profiles)
	in := KeyActorInputs{
		PacksShared:     packs,
		EarningsUSD:     earn,
		Popularity:      socialgraph.ComputePopularity(world.Store, ew),
		Centrality:      graph.EigenvectorCentrality(60, 1e-8),
		ExchangeScore:   scores,
		ExchangeThreads: counts,
	}
	return profiles, in
}

func TestSelectKeyActors(t *testing.T) {
	_, in := buildInputs(t)
	ka := SelectKeyActors(in, SelectionConfig{TopK: 20, MinPacks: 2})
	if len(ka.All) == 0 {
		t.Fatal("no key actors")
	}
	for _, g := range []Group{GroupPopular, GroupInfluence, GroupEarnings, GroupExchange} {
		if len(ka.Members[g]) == 0 {
			t.Errorf("group %s empty", g)
		}
		if len(ka.Members[g]) > 20 {
			t.Errorf("group %s larger than TopK: %d", g, len(ka.Members[g]))
		}
	}
	// Union ≤ sum of groups; all sorted unique.
	for i := 1; i < len(ka.All); i++ {
		if ka.All[i] <= ka.All[i-1] {
			t.Fatal("All not sorted unique")
		}
	}
}

func TestIntersectionsConsistent(t *testing.T) {
	_, in := buildInputs(t)
	ka := SelectKeyActors(in, SelectionConfig{TopK: 20, MinPacks: 2})
	inter := ka.Intersections()
	for _, g := range Groups {
		for _, h := range Groups {
			if g == h {
				continue
			}
			if inter[g][h] != inter[h][g] {
				t.Fatalf("intersection not symmetric: %s/%s %d vs %d", g, h, inter[g][h], inter[h][g])
			}
			if inter[g][h] > len(ka.Members[g]) || inter[g][h] > len(ka.Members[h]) {
				t.Fatalf("intersection %s/%s = %d exceeds group size", g, h, inter[g][h])
			}
		}
		if inter[g][g] > len(ka.Members[g]) {
			t.Fatalf("diagonal %s exceeds group size", g)
		}
	}
}

func TestGroupCharacteristics(t *testing.T) {
	profiles, in := buildInputs(t)
	ka := SelectKeyActors(in, SelectionConfig{TopK: 20, MinPacks: 2})
	rows := ka.GroupCharacteristics(profiles, in)
	if len(rows) != len(Groups)+1 {
		t.Fatalf("rows = %d", len(rows))
	}
	all := rows[len(rows)-1]
	if all.Group != Group("ALL") || all.Members != len(ka.All) {
		t.Fatalf("ALL row wrong: %+v", all)
	}
	// The earnings group should out-earn the average key actor.
	var earnRow GroupStats
	for _, r := range rows {
		if r.Group == GroupEarnings {
			earnRow = r
		}
	}
	if earnRow.Members > 0 && earnRow.AvgAmountUSD < all.AvgAmountUSD {
		t.Errorf("$ group avg %.0f below ALL avg %.0f", earnRow.AvgAmountUSD, all.AvgAmountUSD)
	}
	// Packs group shares the most packs on average.
	var packRow GroupStats
	for _, r := range rows {
		if r.Group == GroupPacks {
			packRow = r
		}
	}
	if packRow.Members > 0 && packRow.AvgPacks < all.AvgPacks {
		t.Errorf("packs group avg %.1f below ALL avg %.1f", packRow.AvgPacks, all.AvgPacks)
	}
}

func TestExchangeScores(t *testing.T) {
	profiles := BuildProfiles(world.Store, ewAll())
	scores, counts := ExchangeScores(world.Store, world.HFCurrency, profiles)
	if len(scores) == 0 {
		t.Fatal("no exchange scores; Currency Exchange board unused by eWhoring actors")
	}
	for a, s := range scores {
		if s <= 0 {
			t.Fatalf("actor %d: score %v", a, s)
		}
		if counts[a] == 0 {
			t.Fatalf("actor %d scored without CE threads", a)
		}
	}
}

func TestInterestsShift(t *testing.T) {
	profiles, in := buildInputs(t)
	ka := SelectKeyActors(in, SelectionConfig{TopK: 25, MinPacks: 2})
	ewSet := forum.NewThreadSet(ewAll()...)
	interests := Interests(world.Store, ka.All, profiles, ewSet, "Lounge")
	before, during, after := interests[PhaseBefore], interests[PhaseDuring], interests[PhaseAfter]
	if len(before) == 0 || len(during) == 0 || len(after) == 0 {
		t.Fatalf("empty phase profile: %d/%d/%d", len(before), len(during), len(after))
	}
	// Figure 5's shape: gaming+hacking dominate before; market share
	// grows over the phases.
	if before["Gaming"]+before["Hacking"] < before["Market"] {
		t.Errorf("before: gaming+hacking %.1f%% < market %.1f%%",
			before["Gaming"]+before["Hacking"], before["Market"])
	}
	if after["Market"] <= before["Market"] {
		t.Errorf("market share did not grow: before %.1f%% after %.1f%%",
			before["Market"], after["Market"])
	}
	// Percentages sum to ~100 per phase. Fold in category order:
	// float accumulation over map order is the PR 1 bug class the
	// determinism analyzer bans, and tests hold the same bar.
	for phase, prof := range interests {
		cats := make([]string, 0, len(prof))
		for c := range prof {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		sum := 0.0
		for _, c := range cats {
			sum += prof[c]
		}
		if sum < 99 || sum > 101 {
			t.Errorf("phase %s percentages sum to %.2f", phase, sum)
		}
		if _, ok := prof["Lounge"]; ok {
			t.Errorf("phase %s includes the excluded Lounge category", phase)
		}
	}
}

func TestPhaseOf(t *testing.T) {
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	t1 := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	if phaseOf(t0.AddDate(0, 0, -1), t0, t1) != PhaseBefore {
		t.Error("before wrong")
	}
	if phaseOf(t0.AddDate(0, 5, 0), t0, t1) != PhaseDuring {
		t.Error("during wrong")
	}
	if phaseOf(t1.AddDate(0, 0, 1), t0, t1) != PhaseAfter {
		t.Error("after wrong")
	}
	if PhaseBefore.String() != "before" || PhaseDuring.String() != "during" || PhaseAfter.String() != "after" {
		t.Error("phase names wrong")
	}
}

func BenchmarkBuildProfiles(b *testing.B) {
	ew := ewAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildProfiles(world.Store, ew)
	}
}
