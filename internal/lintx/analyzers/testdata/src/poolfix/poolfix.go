// Fixture: the imagex pool-pairing contract — release on all exit
// paths, no use-after-put, no escape.
package poolfix

import "imagex"

type holder struct{ ref *imagex.Image }

// deferredClean is the canonical pairing: defer covers every exit.
// Value-extracting reads (len of the buffer) do not leak.
func deferredClean(w, h int) int {
	im := imagex.GetImage(w, h)
	defer imagex.PutImage(im)
	return len(im.Pix)
}

// directClean releases in the acquisition's own block with no return
// in between.
func directClean(w, h int) int {
	im := imagex.GetImage(w, h)
	n := len(im.Pix)
	imagex.PutImage(im)
	return n
}

// leak never releases the raster.
func leak(w, h int) {
	im := imagex.GetImage(w, h) // want "never released"
	_ = im
}

// earlyReturn leaks on the w > h path: the direct Put does not cover
// it.
func earlyReturn(w, h int) int {
	im := imagex.GetImage(w, h)
	if w > h {
		return 0 // want "return leaks pooled image"
	}
	n := len(im.Pix)
	imagex.PutImage(im)
	return n
}

// escapesReturn hands the pooled pointer to the caller (and, having
// no Put, also never releases it).
func escapesReturn(w, h int) *imagex.Image {
	im := imagex.GetImage(w, h) // want "never released"
	return im                   // want "escapes via return"
}

// escapesStore parks the pooled pointer in a longer-lived struct; the
// defer does not make that safe.
func escapesStore(w, h int, hold *holder) {
	im := imagex.GetImage(w, h)
	defer imagex.PutImage(im)
	hold.ref = im // want "escapes via store"
}

// escapesLit smuggles the pointer out inside a composite literal.
func escapesLit(w, h int) holder {
	im := imagex.GetImage(w, h)
	defer imagex.PutImage(im)
	return holder{ref: im} // want "escapes via composite literal" "escapes via return"
}

// useAfterPut touches the raster after its buffer went back to the
// pool. Note the indexed read itself copies a byte — only the
// post-Put access is wrong, not an escape.
func useAfterPut(w, h int) byte {
	im := imagex.GetImage(w, h)
	imagex.PutImage(im)
	return im.Pix[0] // want "after imagex.PutImage"
}

// conditionalPut releases only on one branch: the Put does not
// post-dominate the Get.
func conditionalPut(w, h int, cond bool) {
	im := imagex.GetImage(w, h)
	if cond {
		imagex.PutImage(im) // want "does not post-dominate"
	}
}

// transfer shows the sanctioned suppression path for a deliberate
// ownership handoff.
func transfer(w, h int) *imagex.Image {
	im := imagex.GetImage(w, h) //lint:ignore poolpair fixture demonstrates a documented ownership transfer
	return im                   //lint:ignore poolpair fixture demonstrates a documented ownership transfer
}
