package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/crawler"
	"repro/internal/earnings"
	"repro/internal/synth"
)

// study and results are computed once: the full pipeline is the
// expensive integration under test.
var (
	runOnce sync.Once
	study   *Study
	results *Results
	runErr  error
)

func run(t testing.TB) (*Study, *Results) {
	runOnce.Do(func() {
		study = NewStudy(Options{
			Synth:          synth.Config{Seed: 42, Scale: 0.02, ImageSize: 48},
			AnnotationSize: 400,
		})
		results, runErr = study.Run(context.Background())
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return study, results
}

func TestRunCompletes(t *testing.T) {
	_, res := run(t)
	if len(res.EWhoringThreads) == 0 {
		t.Fatal("no eWhoring threads selected")
	}
}

func TestTable1Shape(t *testing.T) {
	_, res := run(t)
	if len(res.Table1) != 10 {
		t.Fatalf("Table 1 rows = %d want 10", len(res.Table1))
	}
	if res.Table1[0].Forum != "Hackforums" {
		t.Fatalf("largest community = %s, want Hackforums", res.Table1[0].Forum)
	}
	for _, row := range res.Table1 {
		if row.Posts < row.Threads {
			t.Errorf("%s: posts %d < threads %d", row.Forum, row.Posts, row.Threads)
		}
		if row.Actors == 0 {
			t.Errorf("%s: zero actors", row.Forum)
		}
		if row.Forum == "BlackHatWorld" && row.TOPs != 0 {
			t.Errorf("BlackHatWorld TOPs = %d, paper observes none survive moderation", row.TOPs)
		}
	}
}

func TestClassifierInPaperBand(t *testing.T) {
	_, res := run(t)
	m := res.Classifier.Metrics
	t.Logf("classifier: P=%.3f R=%.3f F1=%.3f (paper: 0.92/0.93/0.92)", m.Precision(), m.Recall(), m.F1())
	if m.Precision() < 0.75 || m.Recall() < 0.75 {
		t.Fatalf("classifier below band: P=%.3f R=%.3f", m.Precision(), m.Recall())
	}
	ex := res.Classifier.Extract
	if ex.BothCount > ex.MLCount || ex.BothCount > ex.HeurCount {
		t.Fatal("method overlap exceeds a side")
	}
	if len(ex.TOPs) == 0 {
		t.Fatal("no TOPs extracted")
	}
}

func TestLinkTablesShape(t *testing.T) {
	_, res := run(t)
	if len(res.Links.ImageSharing) == 0 || len(res.Links.CloudStorage) == 0 {
		t.Fatal("empty link tables")
	}
	// Table 3: imgur leads; Table 4: MediaFire leads.
	if res.Links.ImageSharing[0].Domain != "imgur.com" {
		t.Errorf("top image site = %s, want imgur.com", res.Links.ImageSharing[0].Domain)
	}
	if res.Links.CloudStorage[0].Domain != "mediafire.com" {
		t.Errorf("top cloud site = %s, want mediafire.com", res.Links.CloudStorage[0].Domain)
	}
	if res.Links.SnowballAdded == 0 {
		t.Error("snowball sampling added nothing; 'others' rows unreachable")
	}
	// Only a minority of TOPs yield links (paper: 18.71%).
	frac := float64(res.Links.ThreadsWithLinks) / float64(len(res.Classifier.Extract.TOPs))
	if frac < 0.08 || frac > 0.45 {
		t.Errorf("TOPs with links fraction %.3f, want ≈0.19", frac)
	}
}

func TestCrawlShape(t *testing.T) {
	_, res := run(t)
	st := res.CrawlStats
	if st.PacksFetched == 0 || st.PreviewImages == 0 {
		t.Fatalf("crawl fetched nothing: %+v", st)
	}
	if st.ByOutcome[crawler.OutcomeNotFound] == 0 {
		t.Error("no link rot observed; the generator should rot ~20% of links")
	}
	if st.ByOutcome[crawler.OutcomeLoginRequired] == 0 {
		t.Error("no registration walls hit")
	}
	if st.DuplicateCount == 0 {
		t.Error("no duplicate images across packs; saturation missing")
	}
	if st.UniqueImages >= st.ImagesFetched {
		t.Error("dedup did nothing")
	}
}

func TestPhotoDNAGate(t *testing.T) {
	_, res := run(t)
	if res.PhotoDNA.Matches == 0 {
		t.Fatal("no hashlist matches; the abuse-filter path is dead")
	}
	if res.PhotoDNA.ActionableURLs == 0 {
		t.Fatal("no actionable URLs reported")
	}
	// Withheld images must not appear among the safe previews/packs.
	for _, si := range append(res.NSFV.Previews, res.NSFV.PackImages...) {
		if _, matched := study.World.HashList.Match(si.Image); matched {
			t.Fatal("hashlisted image leaked past the filter")
		}
	}
}

func TestNSFVSplitShape(t *testing.T) {
	_, res := run(t)
	if len(res.NSFV.Previews) == 0 {
		t.Fatal("no NSFV previews")
	}
	if len(res.NSFV.SFV) == 0 {
		t.Fatal("no SFV images (banners/directory screenshots expected)")
	}
	// Previews are roughly 50-75% of image-site downloads (paper:
	// 3 496 of 5 788 ≈ 60%).
	frac := float64(len(res.NSFV.Previews)) / float64(len(res.NSFV.Previews)+len(res.NSFV.SFV))
	if frac < 0.35 || frac > 0.9 {
		t.Errorf("NSFV preview fraction %.3f, want ≈0.6", frac)
	}
}

func TestProvenanceShape(t *testing.T) {
	_, res := run(t)
	p := res.Provenance
	if p.Packs.Total == 0 || p.Previews.Total == 0 {
		t.Fatal("reverse search saw nothing")
	}
	packRate := float64(p.Packs.Matched) / float64(p.Packs.Total)
	prevRate := float64(p.Previews.Matched) / float64(p.Previews.Total)
	t.Logf("match rates: packs %.2f (paper 0.74), previews %.2f (paper 0.49)", packRate, prevRate)
	if packRate < 0.4 {
		t.Errorf("pack match rate %.2f too low", packRate)
	}
	// Previews are modified more often, so they match less.
	if prevRate >= packRate {
		t.Errorf("preview rate %.2f >= pack rate %.2f; modification effect missing", prevRate, packRate)
	}
	if p.Packs.SeenBefore == 0 {
		t.Error("no Seen-Before matches")
	}
	if p.Packs.SeenBefore > p.Packs.Matched {
		t.Error("SeenBefore exceeds matches")
	}
	if p.ZeroMatch == 0 {
		t.Error("no zero-match packs (paper: 203 of 1 255)")
	}
	if len(p.Domains) < 10 {
		t.Errorf("only %d matched domains", len(p.Domains))
	}
	for name, rows := range p.Table6 {
		if len(rows) == 0 {
			t.Errorf("classifier %s produced no Table 6 rows", name)
		}
	}
}

func TestEarningsShape(t *testing.T) {
	_, res := run(t)
	e := res.Earnings
	if len(e.Proofs) == 0 {
		t.Fatal("no proofs parsed")
	}
	if e.NotProofs == 0 {
		t.Error("no non-proof images (chat screenshots) encountered")
	}
	if e.FilteredNSFV == 0 {
		t.Error("no indecent images filtered in the earnings path")
	}
	if e.Summary.TotalUSD <= 0 {
		t.Fatal("zero total earnings")
	}
	if e.Summary.MeanTransactionUSD < 15 || e.Summary.MeanTransactionUSD > 90 {
		t.Errorf("mean transaction $%.2f, paper reports ≈$41.90", e.Summary.MeanTransactionUSD)
	}
	// AGC + PayPal dominate.
	agc := e.Summary.ByPlatform[earnings.PlatformAGC]
	pp := e.Summary.ByPlatform[earnings.PlatformPayPal]
	if agc+pp < e.Summary.Proofs/2 {
		t.Errorf("AGC+PayPal = %d of %d proofs; should dominate", agc+pp, e.Summary.Proofs)
	}
	if len(e.PerActorUSD) != e.Summary.Actors {
		t.Error("per-actor series misaligned")
	}
	if e.MonthlyAGC.Total() == 0 || e.MonthlyPayPal.Total() == 0 {
		t.Error("empty Figure 3 series")
	}
}

func TestOCRParsedProofsMatchGroundTruth(t *testing.T) {
	// Every parsed proof must correspond to a generated proof with
	// the same platform (the OCR pipeline must not hallucinate).
	_, res := run(t)
	truthTotals := map[string]int{}
	for _, pt := range study.World.Proofs {
		if pt.Kind == 0 { // synth.ProofEarnings
			truthTotals[string(pt.Truth.Platform)]++
		}
	}
	parsed := map[string]int{}
	for _, p := range res.Earnings.Proofs {
		parsed[string(p.Platform)]++
	}
	for platform, n := range parsed {
		if truthTotals[platform] == 0 && n > 0 {
			t.Errorf("parsed %d proofs for platform %q absent from ground truth", n, platform)
		}
		if n > truthTotals[platform] {
			t.Errorf("parsed more %q proofs (%d) than generated (%d)", platform, n, truthTotals[platform])
		}
	}
}

func TestTable7Shape(t *testing.T) {
	_, res := run(t)
	if res.Table7.Total == 0 {
		t.Fatal("empty Table 7")
	}
	// Paper: AGC offered far exceeds AGC wanted; BTC is the most
	// wanted.
	if res.Table7.Offered[earnings.ExAGC] <= res.Table7.Wanted[earnings.ExAGC] {
		t.Errorf("AGC offered %d <= wanted %d",
			res.Table7.Offered[earnings.ExAGC], res.Table7.Wanted[earnings.ExAGC])
	}
	maxWant, maxKind := 0, earnings.ExUnknown
	for k, v := range res.Table7.Wanted {
		if v > maxWant {
			maxWant, maxKind = v, k
		}
	}
	if maxKind != earnings.ExBTC {
		t.Errorf("most wanted = %s, paper reports BTC", maxKind)
	}
}

func TestActorAnalysisShape(t *testing.T) {
	_, res := run(t)
	a := res.Actors
	if len(a.Profiles) == 0 {
		t.Fatal("no profiles")
	}
	if a.Table8[0].Actors == 0 {
		t.Fatal("Table 8 empty")
	}
	if len(a.Key.All) == 0 {
		t.Fatal("no key actors")
	}
	if len(a.Table10) == 0 {
		t.Fatal("no Table 10 rows")
	}
	before := a.Fig5[0] // PhaseBefore
	after := a.Fig5[2]  // PhaseAfter
	if after["Market"] <= before["Market"] {
		t.Errorf("Figure 5 market shift missing: before %.1f after %.1f",
			before["Market"], after["Market"])
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := NewStudy(Options{Synth: synth.Config{Seed: 1, Scale: 0.01, SkipImages: true}})
	s.Close()
	s.Close()
}
