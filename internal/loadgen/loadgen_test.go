package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/studysvc"
	"repro/internal/tracex"
)

// stubService fakes POST /v1/study: every shedEvery-th request is
// rejected 429 + Retry-After, the rest complete instantly.
func stubService(t *testing.T, shedEvery int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/study", func(w http.ResponseWriter, req *http.Request) {
		i := n.Add(1)
		if shedEvery > 0 && i%shedEvery == 0 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "study pool saturated"})
			return
		}
		var r studysvc.Request
		_ = json.NewDecoder(req.Body).Decode(&r)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(studysvc.Envelope{
			ID: "s-1", Status: studysvc.StatusDone, Cached: i%2 == 0,
			Summary: &studysvc.Summary{},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &n
}

func TestRunCountsOutcomes(t *testing.T) {
	srv, _ := stubService(t, 3) // every 3rd request shed
	client := studysvc.NewClient(srv.URL, nil)
	res, err := Run(context.Background(), client, Spec{
		TargetRPS: 400,
		Duration:  300 * time.Millisecond,
		Seeds:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 10 {
		t.Fatalf("too few requests driven: %+v", res)
	}
	if res.OK == 0 || res.Shed == 0 {
		t.Fatalf("expected both ok and shed outcomes: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", res)
	}
	if res.Requests != res.OK+res.Shed {
		t.Fatalf("requests %d != ok %d + shed %d", res.Requests, res.OK, res.Shed)
	}
	wantRate := float64(res.Shed) / float64(res.OK+res.Shed)
	if res.ShedRate != wantRate {
		t.Fatalf("shed rate %g, want %g", res.ShedRate, wantRate)
	}
	if !(res.P50MS <= res.P95MS && res.P95MS <= res.P99MS && res.P99MS <= res.MaxMS) {
		t.Fatalf("percentiles out of order: %+v", res)
	}
	if res.AchievedRPS <= 0 {
		t.Fatalf("achieved rps not reported: %+v", res)
	}
}

func TestRunNoShedServer(t *testing.T) {
	srv, _ := stubService(t, 0)
	client := studysvc.NewClient(srv.URL, nil)
	res, err := Run(context.Background(), client, Spec{
		TargetRPS: 300,
		Duration:  200 * time.Millisecond,
		Warmup:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 0 || res.ShedRate != 0 {
		t.Fatalf("clean server reported sheds: %+v", res)
	}
	if res.CacheHits == 0 {
		t.Fatalf("stub alternates cached envelopes; none observed: %+v", res)
	}
}

func TestRunValidatesSpec(t *testing.T) {
	client := studysvc.NewClient("http://127.0.0.1:0", nil)
	if _, err := Run(context.Background(), client, Spec{Duration: time.Second}); err == nil {
		t.Fatal("missing TargetRPS accepted")
	}
	if _, err := Run(context.Background(), client, Spec{TargetRPS: 1}); err == nil {
		t.Fatal("missing Duration accepted")
	}
}

// TestRunSamplesTrace: with a Tracer, exactly one request — the first
// warmup, the cold-start study — carries a traceparent, and the
// result holds the merged client+server trace fetched before the
// measured window can evict it from the server's ring.
func TestRunSamplesTrace(t *testing.T) {
	var mu sync.Mutex
	var traceparents []string
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/study", func(w http.ResponseWriter, req *http.Request) {
		if tp := req.Header.Get(tracex.TraceparentHeader); tp != "" {
			mu.Lock()
			traceparents = append(traceparents, tp)
			mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(studysvc.Envelope{
			ID: "s-1", Status: studysvc.StatusDone, Summary: &studysvc.Summary{},
		})
	})
	mux.HandleFunc("GET /v1/trace/{id}", func(w http.ResponseWriter, req *http.Request) {
		// Fake the server half: one request span parented onto the
		// propagated span from the recorded traceparent.
		mu.Lock()
		defer mu.Unlock()
		if len(traceparents) == 0 {
			http.Error(w, `{"error":"no trace"}`, http.StatusNotFound)
			return
		}
		sc, _ := tracex.ParseTraceparent(traceparents[0])
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(tracex.Trace{
			TraceID: sc.Trace.String(),
			Spans: []tracex.SpanRecord{{
				TraceID: sc.Trace.String(), SpanID: "00000000000000ff",
				Parent: sc.Span.String(), Name: "http POST /v1/study",
			}},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	tracer := tracex.New(tracex.Config{IDs: tracex.NewSeqIDs(3)})
	res, err := Run(context.Background(), studysvc.NewClient(srv.URL, nil), Spec{
		TargetRPS: 200,
		Duration:  100 * time.Millisecond,
		Seeds:     1,
		Warmup:    true,
		Tracer:    tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	tps := append([]string(nil), traceparents...)
	mu.Unlock()
	if len(tps) != 1 {
		t.Fatalf("%d requests carried a traceparent, want exactly 1 (the sampled warmup)", len(tps))
	}
	sc, ok := tracex.ParseTraceparent(tps[0])
	if !ok || sc.Trace.String() != res.SampleTraceID {
		t.Fatalf("propagated trace %q does not match SampleTraceID %q", tps[0], res.SampleTraceID)
	}
	if res.SampleTrace == nil {
		t.Fatal("SampleTrace not fetched")
	}
	tree := res.SampleTrace.Tree()
	if len(tree) != 1 || tree[0].Name != "load warmup request" {
		t.Fatalf("merged sample trace not rooted at the warmup span: %+v", tree)
	}
	if len(tree[0].Children) != 1 || tree[0].Children[0].Name != "http POST /v1/study" {
		t.Fatalf("server half not parented under the warmup span: %+v", tree[0].Children)
	}
}

func TestBenchArtifactShape(t *testing.T) {
	res := &Result{OK: 90, Shed: 10, ShedRate: 0.1, P50MS: 2, P95MS: 8, P99MS: 20, AchievedRPS: 50}
	data, err := res.BenchArtifact()
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Benchmarks []struct {
			Name       string             `json:"name"`
			Iterations int64              `json:"iterations"`
			NsPerOp    float64            `json:"ns_per_op"`
			Extra      map[string]float64 `json:"extra"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v\n%s", err, data)
	}
	byName := map[string]int{}
	for i, b := range art.Benchmarks {
		byName[b.Name] = i
	}
	for _, name := range []string{"LoadStudyP50", "LoadStudyP95", "LoadStudyP99", "LoadStudyShed"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("artifact missing %s: %s", name, data)
		}
	}
	p95 := art.Benchmarks[byName["LoadStudyP95"]]
	if p95.NsPerOp != 8e6 || p95.Iterations != 90 {
		t.Fatalf("p95 entry wrong: %+v", p95)
	}
	shed := art.Benchmarks[byName["LoadStudyShed"]]
	if shed.Extra["shed_rate"] != 0.1 {
		t.Fatalf("shed extra wrong: %+v", shed)
	}
}
