package nsfv

import (
	"testing"

	"repro/internal/imagex"
	"repro/internal/nsfw"
)

func TestPaperThresholdsValues(t *testing.T) {
	th := PaperThresholds()
	if th.SafeBelow != 0.01 || th.NSFVAbove != 0.3 || th.LowBand != 0.05 ||
		th.LowWords != 10 || th.HighWords != 20 {
		t.Fatalf("PaperThresholds = %+v, diverges from Algorithm 1", th)
	}
}

func TestNudeModelsAreNSFV(t *testing.T) {
	c := New()
	for i := 0; i < 30; i++ {
		im := imagex.GenModel(uint64(i), i%3, imagex.PoseNude, 48)
		if c.IsSFV(im) {
			t.Fatalf("nude model %d classified SFV — detection must be 100%%", i)
		}
	}
}

func TestPartialModelsAreNSFV(t *testing.T) {
	c := New()
	for i := 0; i < 30; i++ {
		im := imagex.GenModel(uint64(100+i), i%3, imagex.PosePartial, 48)
		if c.IsSFV(im) {
			t.Fatalf("partial-nude model %d classified SFV", i)
		}
	}
}

func TestProofScreenshotsAreSFV(t *testing.T) {
	c := New()
	lines := []string{"PAYPAL DASHBOARD", "BALANCE: $431.88", "+$50.00 RECEIVED", "+$25.00 RECEIVED"}
	for i := 0; i < 10; i++ {
		im := imagex.GenScreenshot(uint64(i), lines, 160, 44)
		v := c.Classify(im)
		if !v.SFV {
			t.Fatalf("proof screenshot %d classified NSFV (score %.4f)", i, v.NSFW)
		}
	}
}

func TestErrorBannersAreSFV(t *testing.T) {
	c := New()
	im := imagex.GenErrorBanner(3, "IMAGE REMOVED TOS", 160, 40)
	if !c.IsSFV(im) {
		t.Fatal("error banner classified NSFV")
	}
}

func TestDirectoryScreenshotsAreSFV(t *testing.T) {
	// The paper: links that were not previews "pointed to error
	// messages ... or screenshots showing the directories of the
	// packs"; those were excluded from the NSFV preview set.
	c := New()
	im := imagex.GenThumbnailGrid(7, 42, 160, 110)
	v := c.Classify(im)
	if !v.SFV {
		t.Fatalf("directory screenshot classified NSFV (score %.4f words %d)", v.NSFW, v.Words)
	}
}

func TestOCRSkippedWhenDecisive(t *testing.T) {
	c := New()
	nude := imagex.GenModel(5, 0, imagex.PoseNude, 48)
	if v := c.Classify(nude); v.Words != -1 {
		t.Fatalf("OCR invoked (words=%d) for a clearly NSFV image", v.Words)
	}
	blank := imagex.GenScreenshot(1, nil, 60, 30)
	if v := c.Classify(blank); v.Words != -1 {
		t.Fatalf("OCR invoked (words=%d) for a clearly SFV image", v.Words)
	}
}

func TestPaperEvalOnValidationSet(t *testing.T) {
	corpus := BuildValidationSet(2019)
	if len(corpus) != 240 {
		t.Fatalf("validation corpus size %d, want 240 (180 + 60)", len(corpus))
	}
	c := New()
	e := c.Evaluate(corpus)
	if e.Detection != 1.0 {
		t.Fatalf("NSFV detection %.3f, paper requires 100%%", e.Detection)
	}
	// Paper: "few false positives (nearly 8%)". Allow a band.
	if e.FalsePositive > 0.25 {
		t.Fatalf("false-positive rate %.3f too high", e.FalsePositive)
	}
	if e.FalsePositive == 0 {
		t.Log("zero false positives — hard cases may be under-generated")
	}
}

func TestFalsePositivesComeFromWarmTextures(t *testing.T) {
	c := New()
	fp := 0
	for i := 0; i < 40; i++ {
		im := imagex.GenLandscape(uint64(9000+i*13), 48, true)
		if !c.IsSFV(im) {
			fp++
		}
	}
	if fp == 0 {
		t.Fatal("no skin-like landscape misclassified; the documented FP mode is absent")
	}
}

func TestTuneReachesPerfectDetection(t *testing.T) {
	corpus := BuildValidationSet(77)
	th, e := Tune(corpus, nsfw.Default())
	if e.Detection != 1.0 {
		t.Fatalf("tuned detection %.3f", e.Detection)
	}
	// Tuned thresholds must themselves evaluate identically.
	c := &Classifier{Scorer: nsfw.Default(), Thresholds: th}
	e2 := c.Evaluate(corpus)
	if e2 != e {
		t.Fatalf("Tune eval mismatch: %+v vs %+v", e, e2)
	}
}

func TestTuneNoWorseThanPaper(t *testing.T) {
	corpus := BuildValidationSet(123)
	_, tuned := Tune(corpus, nsfw.Default())
	paper := New().Evaluate(corpus)
	if tuned.Detection < paper.Detection {
		t.Fatalf("tuning lost detection: %.3f < %.3f", tuned.Detection, paper.Detection)
	}
	if tuned.Detection == paper.Detection && tuned.FalsePositive > paper.FalsePositive {
		t.Fatalf("tuning raised FP rate: %.3f > %.3f", tuned.FalsePositive, paper.FalsePositive)
	}
}

func TestEvaluateEmptyCorpus(t *testing.T) {
	e := New().Evaluate(nil)
	if e.Detection != 0 || e.FalsePositive != 0 || e.N != 0 {
		t.Fatalf("empty eval = %+v", e)
	}
}

func BenchmarkClassifyModel(b *testing.B) {
	c := New()
	im := imagex.GenModel(1, 0, imagex.PoseNude, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Classify(im)
	}
}

func BenchmarkClassifyScreenshot(b *testing.B) {
	c := New()
	im := imagex.GenScreenshot(1, []string{"PAYPAL", "BALANCE: $10.00"}, 140, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Classify(im)
	}
}
