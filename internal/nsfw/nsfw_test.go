package nsfw

import (
	"testing"
	"testing/quick"

	"repro/internal/imagex"
)

func avgScore(t *testing.T, gen func(seed uint64) *imagex.Image, n int) float64 {
	t.Helper()
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Score(gen(uint64(1000 + i*17)))
	}
	return sum / float64(n)
}

func TestScreenshotsBelowSFVThreshold(t *testing.T) {
	// Algorithm 1's first branch: NSFW < 0.01 means immediately SFV.
	for i := 0; i < 20; i++ {
		im := imagex.GenScreenshot(uint64(i), []string{"PAYPAL: $50.00", "STATUS: PAID"}, 140, 40)
		if s := Score(im); s >= 0.01 {
			t.Fatalf("screenshot %d scored %.4f, want < 0.01", i, s)
		}
	}
}

func TestNudeModelsAboveNSFVThreshold(t *testing.T) {
	// Algorithm 1's second branch: NSFW > 0.3 means NSFV. Nude models
	// must land there consistently — the study's 100% NSFV detection
	// requirement hinges on it.
	for i := 0; i < 40; i++ {
		im := imagex.GenModel(uint64(i), i%4, imagex.PoseNude, 48)
		if s := Score(im); s <= 0.3 {
			t.Fatalf("nude model %d scored %.4f, want > 0.3", i, s)
		}
	}
}

func TestClothedModelsInPaperBand(t *testing.T) {
	// The paper: "images of clothed models with high proportion of
	// human body ... usually have a NSFW score which is between 10%
	// and 70%". Check the average lands in that band.
	avg := avgScore(t, func(seed uint64) *imagex.Image {
		return imagex.GenModel(seed, 0, imagex.PoseDressed, 48)
	}, 40)
	if avg < 0.1 || avg > 0.7 {
		t.Fatalf("dressed-model mean score %.3f outside [0.1, 0.7]", avg)
	}
}

func TestPoseMonotonicity(t *testing.T) {
	nude := avgScore(t, func(s uint64) *imagex.Image { return imagex.GenModel(s, 0, imagex.PoseNude, 48) }, 30)
	partial := avgScore(t, func(s uint64) *imagex.Image { return imagex.GenModel(s, 0, imagex.PosePartial, 48) }, 30)
	dressed := avgScore(t, func(s uint64) *imagex.Image { return imagex.GenModel(s, 0, imagex.PoseDressed, 48) }, 30)
	if !(nude > partial && partial > dressed) {
		t.Fatalf("scores not ordered by explicitness: %.3f / %.3f / %.3f", nude, partial, dressed)
	}
}

func TestPlainLandscapeLow(t *testing.T) {
	for i := 0; i < 20; i++ {
		im := imagex.GenLandscape(uint64(i*3+1), 48, false)
		if s := Score(im); s > 0.3 {
			t.Fatalf("plain landscape %d scored %.3f", i, s)
		}
	}
}

func TestSkinLikeLandscapeIsFalsePositiveSource(t *testing.T) {
	// The paper's hard cases: images "containing colours or textures
	// resembling the human body". These must score into NSFV range so
	// the classifier exhibits its documented ~8% false-positive rate.
	high := 0
	for i := 0; i < 20; i++ {
		im := imagex.GenLandscape(uint64(i*7+5), 48, true)
		if Score(im) > 0.3 {
			high++
		}
	}
	if high == 0 {
		t.Fatal("no skin-like landscape scored above 0.3; FP pathway untested")
	}
}

func TestErrorBannerNearZero(t *testing.T) {
	im := imagex.GenErrorBanner(1, "IMAGE REMOVED", 160, 40)
	if s := Score(im); s >= 0.01 {
		t.Fatalf("error banner scored %.4f", s)
	}
}

func TestZeroValueScorerUsesDefaults(t *testing.T) {
	var z Scorer
	im := imagex.GenModel(5, 0, imagex.PoseNude, 48)
	if z.Score(im) != Default().Score(im) {
		t.Fatal("zero-value scorer differs from Default")
	}
}

// Property: scores are always within [0, 1].
func TestQuickScoreBounded(t *testing.T) {
	f := func(seed uint64, kind uint8) bool {
		var im *imagex.Image
		switch kind % 4 {
		case 0:
			im = imagex.GenModel(seed, 0, imagex.PoseNude, 32)
		case 1:
			im = imagex.GenModel(seed, 1, imagex.PoseDressed, 32)
		case 2:
			im = imagex.GenLandscape(seed, 32, true)
		default:
			im = imagex.GenScreenshot(seed, []string{"X"}, 32, 16)
		}
		s := Score(im)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScore(b *testing.B) {
	im := imagex.GenModel(1, 0, imagex.PoseNude, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Score(im)
	}
}
