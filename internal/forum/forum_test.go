package forum

import (
	"testing"
	"time"
)

func day(n int) time.Time {
	return time.Date(2015, time.January, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func buildSmall(t *testing.T) (*Store, ForumID, BoardID, ActorID, ActorID) {
	t.Helper()
	s := NewStore()
	hf := s.AddForum("Hackforums")
	ew := s.AddBoard(hf, "eWhoring", "Money")
	alice := s.AddActor(hf, "alice", day(0))
	bob := s.AddActor(hf, "bob", day(1))
	return s, hf, ew, alice, bob
}

func TestAddForumIdempotent(t *testing.T) {
	s := NewStore()
	a := s.AddForum("HF")
	b := s.AddForum("HF")
	if a != b {
		t.Fatalf("duplicate AddForum returned %d then %d", a, b)
	}
	if s.NumForums() != 1 {
		t.Fatalf("NumForums = %d", s.NumForums())
	}
}

func TestForumByName(t *testing.T) {
	s := NewStore()
	s.AddForum("OGUsers")
	f, ok := s.ForumByName("OGUsers")
	if !ok || f.Name != "OGUsers" {
		t.Fatalf("ForumByName = %+v, %v", f, ok)
	}
	if _, ok := s.ForumByName("nope"); ok {
		t.Fatal("found nonexistent forum")
	}
}

func TestThreadAndReplies(t *testing.T) {
	s, _, ew, alice, bob := buildSmall(t)
	th := s.AddThread(ew, alice, "[WTS] unsaturated pack", "selling pack, pm me", day(2))
	if s.NumReplies(th) != 0 {
		t.Fatalf("fresh thread has %d replies", s.NumReplies(th))
	}
	first := s.FirstPost(th)
	if first.Author != alice || first.Body != "selling pack, pm me" {
		t.Fatalf("FirstPost = %+v", first)
	}
	p2 := s.AddReply(th, bob, "thanks for the share!", day(3), first.ID)
	if s.NumReplies(th) != 1 {
		t.Fatalf("after reply NumReplies = %d", s.NumReplies(th))
	}
	posts := s.PostsInThread(th)
	if len(posts) != 2 || posts[1].ID != p2 || posts[1].Quotes != first.ID {
		t.Fatalf("PostsInThread = %+v", posts)
	}
}

func TestSearchHeadingsLowercase(t *testing.T) {
	s, _, ew, alice, _ := buildSmall(t)
	a := s.AddThread(ew, alice, "EWHORING guide for beginners", "x", day(2))
	b := s.AddThread(ew, alice, "My E-Whoring earnings", "x", day(3))
	s.AddThread(ew, alice, "Minecraft accounts", "x", day(4))
	got := s.SearchHeadings("ewhor", "e-whor")
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("SearchHeadings = %v", got)
	}
}

func TestSearchHeadingsNoDoubleCount(t *testing.T) {
	s, _, ew, alice, _ := buildSmall(t)
	th := s.AddThread(ew, alice, "ewhoring e-whoring double", "x", day(2))
	got := s.SearchHeadings("ewhor", "e-whor")
	if len(got) != 1 || got[0] != th {
		t.Fatalf("thread matching both keywords counted twice: %v", got)
	}
}

func TestPostsByActorOrder(t *testing.T) {
	s, _, ew, alice, bob := buildSmall(t)
	th := s.AddThread(ew, alice, "t", "p1", day(2))
	s.AddReply(th, bob, "r1", day(3), 0)
	s.AddReply(th, alice, "p2", day(4), 0)
	posts := s.PostsByActor(alice)
	if len(posts) != 2 || posts[0].Body != "p1" || posts[1].Body != "p2" {
		t.Fatalf("PostsByActor = %+v", posts)
	}
}

func TestActivitySpan(t *testing.T) {
	s, _, ew, alice, bob := buildSmall(t)
	th := s.AddThread(ew, alice, "t", "p1", day(10))
	s.AddReply(th, alice, "p2", day(40), 0)
	first, last, ok := s.ActivitySpan(alice)
	if !ok || !first.Equal(day(10)) || !last.Equal(day(40)) {
		t.Fatalf("ActivitySpan = %v %v %v", first, last, ok)
	}
	if _, _, ok := s.ActivitySpan(bob); ok {
		t.Fatal("ActivitySpan for silent actor returned ok")
	}
}

func TestStoreSpan(t *testing.T) {
	s, _, ew, alice, _ := buildSmall(t)
	if _, _, ok := s.Span(); ok {
		t.Fatal("Span on empty store returned ok")
	}
	s.AddThread(ew, alice, "t", "p", day(5))
	th2 := s.AddThread(ew, alice, "t2", "p", day(1))
	s.AddReply(th2, alice, "r", day(99), 0)
	first, last, ok := s.Span()
	if !ok || !first.Equal(day(1)) || !last.Equal(day(99)) {
		t.Fatalf("Span = %v %v %v", first, last, ok)
	}
}

func TestBoardsAndCategories(t *testing.T) {
	s := NewStore()
	hf := s.AddForum("HF")
	s.AddBoard(hf, "eWhoring", "Money")
	s.AddBoard(hf, "Currency Exchange", "Market")
	boards := s.Boards(hf)
	if len(boards) != 2 || boards[1].Category != "Market" {
		t.Fatalf("Boards = %+v", boards)
	}
	b, ok := s.BoardByName(hf, "Currency Exchange")
	if !ok || b.Name != "Currency Exchange" {
		t.Fatalf("BoardByName = %+v %v", b, ok)
	}
	if _, ok := s.BoardByName(hf, "nope"); ok {
		t.Fatal("found nonexistent board")
	}
}

func TestThreadsInBoardAndByActor(t *testing.T) {
	s, _, ew, alice, bob := buildSmall(t)
	a := s.AddThread(ew, alice, "a", "x", day(1))
	b := s.AddThread(ew, bob, "b", "x", day(2))
	got := s.ThreadsInBoard(ew)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("ThreadsInBoard = %v", got)
	}
	if ts := s.ThreadsByActor(alice); len(ts) != 1 || ts[0] != a {
		t.Fatalf("ThreadsByActor = %v", ts)
	}
}

func TestPanicsOnUnknownIDs(t *testing.T) {
	s := NewStore()
	cases := []func(){
		func() { s.Forum(1) },
		func() { s.Board(1) },
		func() { s.Thread(1) },
		func() { s.Post(1) },
		func() { s.Actor(1) },
		func() { s.AddBoard(9, "x", "y") },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic for unknown ID", i)
				}
			}()
			fn()
		}()
	}
}

func TestThreadSet(t *testing.T) {
	ts := NewThreadSet(3, 1)
	ts.Add(2, 3)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if !ts.Contains(2) || ts.Contains(9) {
		t.Fatal("Contains wrong")
	}
	got := ts.Sorted()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Sorted = %v", got)
	}
}

func TestAllThreads(t *testing.T) {
	s, _, ew, alice, _ := buildSmall(t)
	s.AddThread(ew, alice, "a", "x", day(1))
	s.AddThread(ew, alice, "b", "x", day(2))
	if got := s.AllThreads(); len(got) != 2 {
		t.Fatalf("AllThreads = %v", got)
	}
}

func BenchmarkSearchHeadings(b *testing.B) {
	s := NewStore()
	hf := s.AddForum("HF")
	bd := s.AddBoard(hf, "b", "c")
	ac := s.AddActor(hf, "a", day(0))
	for i := 0; i < 10000; i++ {
		h := "random thread about gaming"
		if i%10 == 0 {
			h = "my ewhoring setup"
		}
		s.AddThread(bd, ac, h, "x", day(i%100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.SearchHeadings("ewhor", "e-whor")
	}
}
