package sweep

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/synth"
)

// TestCachedSweepMatchesUncached pins the tentpole acceptance
// criterion: a sweep whose cells share cached worlds aggregates
// DeepEqual to the same sweep regenerating every world — across a
// grid that both shares configs (annotation and crawl-concurrency
// axes) and does not (a second seed).
func TestCachedSweepMatchesUncached(t *testing.T) {
	cells := Grid{
		Seeds:              []uint64{2019, 2020},
		Scales:             []float64{0.01},
		Annotations:        []int{150, 200},
		CrawlConcurrencies: []int{2, 4},
	}.Cells()
	ctx := context.Background()

	plain := Run(ctx, "cache-pair", cells, Local{}, Options{Parallelism: 2})
	cache := NewWorldCache(0)
	cached := Run(ctx, "cache-pair", cells, Local{Worlds: cache}, Options{Parallelism: 2})

	if len(plain.Errors) != 0 || len(cached.Errors) != 0 {
		t.Fatalf("unexpected errors: %v / %v", plain.Errors, cached.Errors)
	}
	if !reflect.DeepEqual(plain.Aggregate, cached.Aggregate) {
		t.Fatalf("cached sweep aggregate differs from uncached:\n%+v\nvs\n%+v",
			cached.Aggregate, plain.Aggregate)
	}
	for i := range plain.Cells {
		if !reflect.DeepEqual(plain.Cells[i].Summary, cached.Cells[i].Summary) {
			t.Fatalf("cell %d summary differs under the world cache", i)
		}
	}
	// 8 cells span exactly 2 distinct synth configs (the seeds); the
	// cache must have generated one world per config, not per cell.
	if got := cache.Generated(); got != 2 {
		t.Fatalf("cache generated %d worlds for 8 cells over 2 configs", got)
	}
}

// TestWorldCacheSingleflight hammers one config from many goroutines:
// exactly one generation may happen, and everyone gets that world.
func TestWorldCacheSingleflight(t *testing.T) {
	wc := NewWorldCache(2)
	cfg := synth.Config{Seed: 7, Scale: 0.01}
	worlds := make([]*synth.World, 16)
	var wg sync.WaitGroup
	for i := range worlds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worlds[i] = wc.Get(cfg)
		}(i)
	}
	wg.Wait()
	if wc.Generated() != 1 {
		t.Fatalf("generated %d worlds for one config", wc.Generated())
	}
	for i, w := range worlds {
		if w != worlds[0] {
			t.Fatalf("goroutine %d got a different world pointer", i)
		}
	}
}

// TestWorldCacheCanonicalKey: a sparsely-written config and its
// canonical form share one entry.
func TestWorldCacheCanonicalKey(t *testing.T) {
	wc := NewWorldCache(2)
	a := wc.Get(synth.Config{Seed: 2019, Scale: 0.01})
	b := wc.Get(synth.Config{Seed: 2019, Scale: 0.01, ImageSize: 48})
	if a != b {
		t.Fatal("canonically-equal configs generated distinct worlds")
	}
	if wc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", wc.Len())
	}
}

// TestWorldCacheBounded: the LRU bound holds and evicted configs
// regenerate on return.
func TestWorldCacheBounded(t *testing.T) {
	wc := NewWorldCache(2)
	c1 := synth.Config{Seed: 1, Scale: 0.01}
	c2 := synth.Config{Seed: 2, Scale: 0.01}
	c3 := synth.Config{Seed: 3, Scale: 0.01}
	wc.Get(c1)
	wc.Get(c2)
	wc.Get(c1) // refresh c1: c2 is now least recently used
	wc.Get(c3) // evicts c2
	if wc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", wc.Len())
	}
	gen := wc.Generated()
	wc.Get(c1) // still cached
	if wc.Generated() != gen {
		t.Fatal("c1 was evicted; LRU refresh did not protect it")
	}
	wc.Get(c2) // evicted above, regenerates
	if wc.Generated() != gen+1 {
		t.Fatalf("evicted config did not regenerate (generated %d)", wc.Generated())
	}
}
