package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint32() == c2.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits produced %d/100 identical outputs", same)
	}
}

func TestSplitLabeledStable(t *testing.T) {
	a := New(99).SplitLabeled("forums")
	b := New(99).SplitLabeled("forums")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("labeled splits with same label diverged")
		}
	}
	c := New(99).SplitLabeled("forums")
	d := New(99).SplitLabeled("images")
	diff := false
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("labeled splits with different labels produced identical streams")
	}
}

func TestSplitLabeledDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	b := New(5)
	a.SplitLabeled("x")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitLabeled advanced the parent stream")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const trials = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %.4f far from 1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(31)
	for _, mean := range []float64{0.5, 3, 12, 60} {
		const trials = 50000
		sum := 0
		for i := 0; i < trials; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / trials
		if math.Abs(got-mean) > 0.1*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean %.3f", mean, got)
		}
	}
}

func TestParetoTail(t *testing.T) {
	r := New(37)
	const trials = 50000
	over := 0
	for i := 0; i < trials; i++ {
		v := r.Pareto(1, 1.5)
		if v < 1 {
			t.Fatalf("Pareto(1,1.5) below xm: %v", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X > 10) = 10^-1.5 ≈ 0.0316
	frac := float64(over) / trials
	if math.Abs(frac-0.0316) > 0.01 {
		t.Errorf("Pareto tail P(X>10) = %.4f, want ≈0.0316", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestWeightedPick(t *testing.T) {
	r := New(43)
	weights := []float64{0, 1, 0, 3, 0}
	counts := make([]int, len(weights))
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[r.WeightedPick(weights)]++
	}
	if counts[0] != 0 || counts[2] != 0 || counts[4] != 0 {
		t.Fatalf("zero-weight index chosen: %v", counts)
	}
	ratio := float64(counts[3]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio %.2f, want ≈3", ratio)
	}
}

func TestWeightedPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedPick with zero total did not panic")
		}
	}()
	New(1).WeightedPick([]float64{0, 0})
}

func TestZipfSkew(t *testing.T) {
	r := New(47)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Errorf("Zipf not monotone at head: c0=%d c1=%d c10=%d",
			counts[0], counts[1], counts[10])
	}
	// Rank-1 / rank-2 frequency ratio should be about 2^1.2 ≈ 2.3.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.8 || ratio > 2.9 {
		t.Errorf("Zipf rank ratio %.2f, want ≈2.3", ratio)
	}
}

func TestExpMean(t *testing.T) {
	r := New(53)
	const trials = 100000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.Exp(4)
	}
	mean := sum / trials
	if math.Abs(mean-4) > 0.1 {
		t.Errorf("Exp(4) sample mean %.3f", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(59)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(3, 1.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
	}
}

// Property: Intn never escapes its bound for arbitrary seeds and bounds.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical 20-step prefixes.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
