package studysvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
)

// directReport runs the study in-process and renders the full report —
// the reference the service's output is pinned to.
func directReport(t *testing.T, r Request) string {
	t.Helper()
	c, err := canonicalize(r)
	if err != nil {
		t.Fatal(err)
	}
	study := core.NewStudy(c.coreOptions())
	res, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return report.Full(res)
}

// jsonDecode decodes a response body and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// jsonBody marshals v as a request body.
func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}
