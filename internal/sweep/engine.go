package sweep

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/artefact"
	"repro/internal/core"
)

// Backend executes one cell of a sweep. Local runs the study
// in-process; studysvc provides a client backend that submits the cell
// to a live service, which turns the sweep into a load generator.
type Backend interface {
	RunCell(ctx context.Context, c Cell) (CellResult, error)
}

// CellResult is a backend's answer for one cell.
type CellResult struct {
	Summary Summary
	// Elapsed is the study's execution time (a remote cache hit keeps
	// the original run's time, mirroring the service envelope).
	Elapsed time.Duration
	// Cached reports a remote result served from the service cache
	// (always false locally).
	Cached bool
}

// Local runs each cell as an in-process core.Study on the concurrent
// engine.
type Local struct {
	// Worlds, when set, shares one generated world across every cell
	// with the same canonical synth config, so a grid that only varies
	// annotation size, workers or crawl concurrency generates its
	// world once instead of once per cell. Results are bit-identical
	// either way (generation is deterministic and runs never mutate
	// the world); TestCachedSweepMatchesUncached pins it.
	Worlds *WorldCache
	// Memo, when set, shares artefact values across cells under their
	// canonical node keys — reuse one level above Worlds: a
	// crawler-concurrency grid (or a re-run of an annotation-only
	// grid against a warm store) re-crawls zero times and only pays
	// for the nodes whose inputs actually changed. Results are
	// bit-identical either way (node keys cover every semantic
	// parameter); TestArtefactMemoSweep pins it.
	Memo *artefact.Store
}

// RunCell generates (or fetches) the cell's world and runs the full
// study.
func (l Local) RunCell(ctx context.Context, c Cell) (CellResult, error) {
	//lint:ignore determinism CellResult.Elapsed is timing metadata; aggregates and DeepEqual comparisons exclude it
	start := time.Now()
	opts := c.Options()
	var study *core.Study
	if l.Worlds != nil {
		study = core.NewStudyWithWorld(opts, l.Worlds.Get(opts.Synth))
	} else {
		study = core.NewStudy(opts)
	}
	if l.Memo != nil {
		study.UseMemo(l.Memo)
	}
	res, err := study.Run(ctx)
	if err != nil {
		return CellResult{}, err
	}
	return CellResult{Summary: Summarize(res), Elapsed: time.Since(start)}, nil
}

// Outcome is one executed cell in the sweep result, in plan order.
type Outcome struct {
	Index   int      `json:"index"`
	Cell    Cell     `json:"cell"`
	Summary *Summary `json:"summary,omitempty"`
	// ElapsedMS is the cell's study execution time in milliseconds.
	ElapsedMS int64  `json:"elapsed_ms"`
	Cached    bool   `json:"cached,omitempty"`
	Err       string `json:"error,omitempty"`
}

// CellError is one entry of the fail-soft error ledger.
type CellError struct {
	Index int    `json:"index"`
	Cell  Cell   `json:"cell"`
	Err   string `json:"error"`
}

// Result is a completed sweep: every outcome in plan order, the error
// ledger, and the deterministic aggregates over the successful cells.
type Result struct {
	Name  string    `json:"name"`
	Cells []Outcome `json:"cells"`
	// Errors is the fail-soft ledger: a failed cell lands here and the
	// rest of the sweep continues.
	Errors    []CellError `json:"errors,omitempty"`
	Aggregate *Aggregate  `json:"aggregate,omitempty"`
	// ElapsedMS is the whole sweep's wall-clock time.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// OK returns the number of successful cells.
func (r *Result) OK() int { return len(r.Cells) - len(r.Errors) }

// Options tunes a sweep execution.
type Options struct {
	// Parallelism bounds how many cells execute at once (default 2 —
	// each local cell is itself a concurrent pipeline).
	Parallelism int
	// CellTimeout bounds each cell's execution (0 = no bound).
	CellTimeout time.Duration
	// OnCell, when set, observes each outcome as it completes
	// (serialized; completion order, not plan order).
	OnCell func(done, total int, o Outcome)
}

// Run executes every cell on the backend with bounded parallelism and
// folds the outcomes into aggregates. The sweep is fail-soft: a cell
// error is recorded in the ledger and the remaining cells still run;
// cancelling ctx stops scheduling new cells and marks the unscheduled
// ones as cancelled. Outcomes land at their plan index, so the result
// — including every aggregate — is deterministic no matter how the
// scheduler interleaves cells.
func Run(ctx context.Context, name string, cells []Cell, backend Backend, opts Options) *Result {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 2
	}
	//lint:ignore determinism Result.Elapsed is timing metadata; aggregates and DeepEqual comparisons exclude it
	start := time.Now()
	res := &Result{Name: name, Cells: make([]Outcome, len(cells))}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards done counter and OnCell
		done int
		sem  = make(chan struct{}, opts.Parallelism)
	)
	for i, c := range cells {
		if err := ctx.Err(); err != nil {
			// Cancelled: ledger the rest without running them.
			res.Cells[i] = Outcome{Index: i, Cell: c, Err: fmt.Sprintf("not run: %v", err)}
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, c Cell) {
			defer wg.Done()
			defer func() { <-sem }()
			res.Cells[i] = runCell(ctx, i, c, backend, opts.CellTimeout)
			if opts.OnCell != nil {
				mu.Lock()
				done++
				opts.OnCell(done, len(cells), res.Cells[i])
				mu.Unlock()
			}
		}(i, c)
	}
	wg.Wait()

	for _, o := range res.Cells {
		if o.Err != "" {
			res.Errors = append(res.Errors, CellError{Index: o.Index, Cell: o.Cell, Err: o.Err})
		}
	}
	res.Aggregate = aggregate(res.Cells)
	res.ElapsedMS = time.Since(start).Milliseconds()
	return res
}

// runCell executes one cell under its timeout.
func runCell(ctx context.Context, i int, c Cell, backend Backend, timeout time.Duration) Outcome {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	cr, err := backend.RunCell(ctx, c)
	if err != nil {
		return Outcome{Index: i, Cell: c, Err: err.Error()}
	}
	s := cr.Summary
	return Outcome{
		Index: i, Cell: c, Summary: &s,
		ElapsedMS: cr.Elapsed.Milliseconds(), Cached: cr.Cached,
	}
}
