package earnings

import (
	"strings"
)

// Currency Exchange board analysis (§5.1/§5.2, Table 7). Threads in
// Hackforums' Currency Exchange board "use a de-facto standard format
// where the currency offered follows the tag [H] and the currency
// wanted follows the tag [W]".

// ExchangeKind buckets the currencies of Table 7.
type ExchangeKind string

// Exchange currency buckets.
const (
	ExPayPal  ExchangeKind = "PayPal"
	ExBTC     ExchangeKind = "BTC"
	ExAGC     ExchangeKind = "AGC"
	ExOther   ExchangeKind = "others"
	ExUnknown ExchangeKind = "?"
)

// ExchangeOffer is a parsed Currency Exchange thread heading.
type ExchangeOffer struct {
	Have ExchangeKind
	Want ExchangeKind
}

// classifyCurrencyToken maps free-form currency text to a bucket.
func classifyCurrencyToken(tok string) ExchangeKind {
	t := strings.ToLower(strings.TrimSpace(tok))
	switch {
	case t == "":
		return ExUnknown
	case strings.Contains(t, "paypal") || strings.Contains(t, "pp"):
		return ExPayPal
	case strings.Contains(t, "btc") || strings.Contains(t, "bitcoin"):
		return ExBTC
	case strings.Contains(t, "agc") || strings.Contains(t, "amazon"):
		return ExAGC
	case strings.Contains(t, "?"):
		return ExUnknown
	default:
		return ExOther
	}
}

// ParseExchangeHeading parses a "[H] X [W] Y" heading. ok is false
// when the heading does not follow the convention at all.
func ParseExchangeHeading(heading string) (ExchangeOffer, bool) {
	lower := strings.ToLower(heading)
	hIdx := strings.Index(lower, "[h]")
	wIdx := strings.Index(lower, "[w]")
	if hIdx < 0 && wIdx < 0 {
		return ExchangeOffer{Have: ExUnknown, Want: ExUnknown}, false
	}
	offer := ExchangeOffer{Have: ExUnknown, Want: ExUnknown}
	if hIdx >= 0 {
		end := len(heading)
		if wIdx > hIdx {
			end = wIdx
		}
		offer.Have = classifyCurrencyToken(heading[hIdx+3 : end])
	}
	if wIdx >= 0 {
		end := len(heading)
		if hIdx > wIdx {
			end = hIdx
		}
		offer.Want = classifyCurrencyToken(heading[wIdx+3 : end])
	}
	return offer, true
}

// ExchangeTable is Table 7: counts of currencies offered and wanted.
type ExchangeTable struct {
	Offered map[ExchangeKind]int
	Wanted  map[ExchangeKind]int
	Total   int
}

// TallyExchange parses a batch of Currency Exchange headings.
// Unparseable headings count as unknown on both sides, as the paper's
// '?' column absorbs unclassified threads.
func TallyExchange(headings []string) ExchangeTable {
	t := ExchangeTable{
		Offered: make(map[ExchangeKind]int),
		Wanted:  make(map[ExchangeKind]int),
	}
	for _, h := range headings {
		offer, _ := ParseExchangeHeading(h)
		t.Offered[offer.Have]++
		t.Wanted[offer.Want]++
		t.Total++
	}
	return t
}
