// Command ewlint runs the project's invariant analyzers (determinism,
// poolpair, memokey, ctxhygiene — see DESIGN.md §10) over the named
// package patterns, multichecker-style:
//
//	ewlint [-run name,name] [-list] [packages]
//
// With no patterns it lints ./... . Exit status: 0 clean, 1 findings,
// 2 usage or load error. Suppress a finding with an in-line
// //lint:ignore <analyzer> <reason> directive on (or directly above)
// the flagged line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lintx"
	"repro/internal/lintx/analyzers"
)

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers.All()
	if *runList != "" {
		selected = selected[:0]
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a := analyzers.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "ewlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lintx.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ewlint: %v\n", err)
		os.Exit(2)
	}

	// Every registered analyzer stays a valid //lint:ignore target even
	// when -run filters the active set, so a partial run never flags
	// directives aimed at the analyzers it skipped.
	var known []string
	for _, a := range analyzers.All() {
		known = append(known, a.Name)
	}
	diags, err := lintx.RunAnalyzers(pkgs, selected, known...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ewlint: %v\n", err)
		os.Exit(2)
	}
	if len(diags) == 0 {
		fmt.Printf("ewlint: %d packages clean\n", len(pkgs))
		return
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	fmt.Printf("ewlint: %d findings\n", len(diags))
	os.Exit(1)
}
