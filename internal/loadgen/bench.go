package loadgen

import (
	"encoding/json"
	"fmt"
)

// The benchjson artifact bridge: a load result rendered in the same
// JSON schema cmd/benchjson emits for `go test -bench` runs, so
// `benchjson -diff` gates load SLOs exactly the way it gates ns/op —
// committed BENCH_load.json baseline, fresh artifact per run, relative
// tolerance on latency, absolute tolerance on the shed-rate extra.

// benchEntry mirrors cmd/benchjson's Benchmark wire shape.
type benchEntry struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"`
	Raw        string             `json:"raw"`
}

// benchArtifact mirrors cmd/benchjson's Artifact wire shape.
type benchArtifact struct {
	Pkg        string       `json:"pkg,omitempty"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// BenchArtifact renders the result as a benchjson-schema artifact:
// one pseudo-benchmark per latency percentile (ns_per_op = the
// percentile, so the existing relative-tolerance gate applies
// unchanged) plus a LoadStudyShed entry whose shed_rate extra the
// extended extras gate bounds absolutely. Iterations carries the
// successful request count — the evidence the percentiles rest on.
func (r *Result) BenchArtifact() ([]byte, error) {
	entry := func(name string, msVal float64, extra map[string]float64) benchEntry {
		ns := msVal * 1e6
		return benchEntry{
			Name:       name,
			Procs:      1,
			Iterations: int64(r.OK),
			NsPerOp:    ns,
			Extra:      extra,
			Raw:        fmt.Sprintf("Benchmark%s \t%8d\t%12.0f ns/op", name, r.OK, ns),
		}
	}
	art := benchArtifact{
		Pkg: "repro/internal/loadgen",
		Benchmarks: []benchEntry{
			entry("LoadStudyP50", r.P50MS, nil),
			entry("LoadStudyP95", r.P95MS, nil),
			entry("LoadStudyP99", r.P99MS, nil),
			entry("LoadStudyShed", 0, map[string]float64{
				"shed_rate":  r.ShedRate,
				"error_rate": r.ErrorRate,
				"rps":        r.AchievedRPS,
			}),
		},
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
