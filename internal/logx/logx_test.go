package logx

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixed pins the clock so lines are byte-stable.
func fixed() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }

func TestLineShapeAndFieldOrder(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, LevelDebug)
	lg.now = fixed
	lg.With("request_id", "r-1").With("run", "s-2").Info("request", "status", 200, "ok", true)

	got := buf.String()
	want := `{"ts":"2026-01-02T03:04:05Z","level":"info","msg":"request","request_id":"r-1","run":"s-2","status":200,"ok":true}` + "\n"
	if got != want {
		t.Fatalf("line mismatch:\n got %s\nwant %s", got, want)
	}
	// And it must be valid JSON.
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, LevelInfo)
	lg.now = fixed
	lg.Debug("hidden")
	lg.Info("shown")
	lg.Error("also shown")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines at info level, got %d: %q", len(lines), buf.String())
	}
	if strings.Contains(buf.String(), "hidden") {
		t.Fatalf("debug line leaked through info level: %q", buf.String())
	}
	if lg.Enabled(LevelDebug) {
		t.Fatal("Enabled(debug) true at info level")
	}
	if !lg.Enabled(LevelError) {
		t.Fatal("Enabled(error) false at info level")
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var lg *Logger
	// None of these may panic; With must stay nil.
	if got := lg.With("k", "v"); got != nil {
		t.Fatalf("nil.With returned %v", got)
	}
	lg.Debug("x")
	lg.Info("x", "k", 1)
	lg.Error("x")
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

func TestWithDoesNotMutateParent(t *testing.T) {
	var buf bytes.Buffer
	parent := New(&buf, LevelDebug)
	parent.now = fixed
	a := parent.With("who", "a")
	b := parent.With("who", "b") // siblings must not share field storage
	a.Info("m")
	b.Info("m")
	out := buf.String()
	if !strings.Contains(out, `"who":"a"`) || !strings.Contains(out, `"who":"b"`) {
		t.Fatalf("sibling fields clobbered each other: %s", out)
	}
}

func TestOddKVAndUnmarshalableValue(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, LevelDebug)
	lg.now = fixed
	lg.Info("odd", "k") // dangling value becomes !extra
	if !strings.Contains(buf.String(), `"!extra":"k"`) {
		t.Fatalf("dangling kv dropped: %s", buf.String())
	}
	buf.Reset()
	lg.Info("chan", "c", make(chan int)) // unmarshalable → fmt fallback, no panic
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("fallback line not JSON: %v: %s", err, buf.String())
	}
}

func TestContextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, LevelDebug).With("request_id", "r-9")
	lg.now = fixed
	ctx := NewContext(context.Background(), lg)
	FromContext(ctx).Info("deep")
	if !strings.Contains(buf.String(), `"request_id":"r-9"`) {
		t.Fatalf("context logger lost its fields: %s", buf.String())
	}
	// Absent logger → nil → no-op, no panic.
	FromContext(context.Background()).Info("nowhere")
}

func TestConcurrentLinesDoNotInterleave(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, LevelDebug)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				lg.Info("tick", "pad", strings.Repeat("x", 64))
			}
		}()
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved/corrupt line: %v: %q", err, line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "": LevelInfo, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
}
