GO ?= go

.PHONY: verify vet build test bench-smoke bench

verify: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration of the sequential/concurrent full-study pair — fast
# sanity that the engine runs end to end.
bench-smoke:
	$(GO) test -run='^$$' -bench=StudyRun -benchtime=1x .

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .
