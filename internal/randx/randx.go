// Package randx provides small, deterministic pseudo-random number
// generators used to derive the entire synthetic world from a single
// 64-bit seed.
//
// The generators are implemented from scratch (SplitMix64 for seeding
// and stream splitting, PCG-XSH-RR 64/32 for the main stream) so that
// sequences are stable across Go releases; math/rand's generator is
// documented but its convenience helpers have changed behaviour between
// versions, and reproducibility of every table in the study depends on
// bit-exact streams.
//
// A Rand is NOT safe for concurrent use. Derive independent streams
// with Split and hand one to each goroutine instead of sharing.
package randx

import "math"

// splitmix64 advances the SplitMix64 state and returns the next value.
// It is used both as a seed scrambler and as the stream splitter.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic PCG-XSH-RR 64/32 generator.
type Rand struct {
	state uint64
	inc   uint64
}

// New returns a generator seeded from seed. Two generators created with
// the same seed produce identical sequences.
func New(seed uint64) *Rand {
	s := seed
	r := &Rand{}
	r.state = splitmix64(&s)
	r.inc = splitmix64(&s) | 1 // stream selector must be odd
	r.Uint32()                 // advance past the (weak) initial state
	return r
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent's current state, and splitting
// advances the parent, so repeated Splits yield distinct children.
func (r *Rand) Split() *Rand {
	return New(uint64(r.Uint32())<<32 | uint64(r.Uint32()))
}

// SplitLabeled derives an independent child generator whose stream
// depends on both the parent seed and the label, without advancing the
// parent. Use it to give each subsystem a stable stream regardless of
// the order subsystems are initialised in.
func (r *Rand) SplitLabeled(label string) *Rand {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(r.state ^ h)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling over 32 bits when
	// possible, falling back to 64-bit modulo rejection for large n.
	if n <= math.MaxInt32 {
		bound := uint32(n)
		threshold := -bound % bound
		for {
			v := r.Uint32()
			prod := uint64(v) * uint64(bound)
			if uint32(prod) >= threshold {
				return int(prod >> 32)
			}
		}
	}
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := r.Uint64()
		if v <= max {
			return int(v % uint64(n))
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("randx: Int63n with non-positive n")
	}
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := r.Uint64()
		if v <= max {
			return int64(v % uint64(n))
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(mu + sigma*Z): a log-normal variate. Used for
// heavy-tailed quantities such as per-actor earnings.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto(xm, alpha) variate: xm * U^(-1/alpha). Used
// for heavy-tailed post-count and reply-count distributions.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = 0.5 / (1 << 53)
	}
	return xm * math.Pow(u, -1/alpha)
}

// Exp returns an exponential variate with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Poisson returns a Poisson variate with the given mean (Knuth's method
// for small means, normal approximation above 30 for speed).
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap func.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of items. It panics on an
// empty slice.
func Pick[T any](r *Rand, items []T) T {
	return items[r.Intn(len(items))]
}

// WeightedPick returns an index into weights chosen with probability
// proportional to the weight. Zero and negative weights are never
// chosen. It panics if the total weight is not positive.
func (r *Rand) WeightedPick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("randx: WeightedPick with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return 0
}

// Zipf samples from a Zipf distribution over [0, n) with exponent s>0
// by inverse-CDF over precomputed weights. For repeated sampling use
// NewZipf.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	x := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
