package studysvc

import (
	"context"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestArtefactFilterRuns a partial study through POST /v1/study: the
// response carries only the requested sections, no summary, and the
// service never invokes the artefact nodes outside the selection.
func TestArtefactFilterRuns(t *testing.T) {
	svc, c := newTestService(t, Config{})
	ctx := context.Background()

	req := tinyRequest(3)
	req.Artefacts = []string{"table5", "figure2"}
	env, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if env.Status != StatusDone {
		t.Fatalf("status %s: %s", env.Status, env.Error)
	}
	if env.Summary != nil {
		t.Error("partial run carries a summary built from incomplete Results")
	}
	for _, want := range []string{"Table 5", "Figure 2"} {
		if !strings.Contains(env.Report, want) {
			t.Errorf("partial report missing %q", want)
		}
	}
	for _, not := range []string{"Table 1", "Table 8", "Figure 5"} {
		if strings.Contains(env.Report, not) {
			t.Errorf("partial report leaked %q", not)
		}
	}
	// The node ledger proves selectivity server-side.
	for _, name := range []string{core.ArtefactActors, core.ArtefactExchange, core.ArtefactTable1} {
		if n := svc.memo.ComputeCount(name); n != 0 {
			t.Errorf("node %s computed %d times for a table5+figure2 request", name, n)
		}
	}

	// The listing reflects the partially-computed entry: its options
	// carry the canonical artefact filter.
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range list.Runs {
		if r.ID == env.ID {
			found = true
			if !reflect.DeepEqual(r.Options.Artefacts, []string{"figure2", "table5"}) {
				t.Errorf("listed artefacts = %v", r.Options.Artefacts)
			}
		}
	}
	if !found {
		t.Error("partial run missing from GET /v1/study listing")
	}

	// A full request for the same world shares the computed prefix:
	// the crawl and provenance nodes must not run again.
	crawls := svc.memo.ComputeCount(core.ArtefactCrawl)
	full, err := c.Run(ctx, tinyRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if full.Cached {
		t.Error("full run with a different artefact filter shared the run cache entry")
	}
	if full.Summary == nil {
		t.Error("full run lost its summary")
	}
	if n := svc.memo.ComputeCount(core.ArtefactCrawl); n != crawls {
		t.Errorf("full run re-crawled (%d → %d computes) despite the warm memo", crawls, n)
	}
}

// TestArtefactEndpoint fetches single artefacts of a completed run.
func TestArtefactEndpoint(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()

	env, err := c.Run(ctx, tinyRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	art, err := c.Artefact(ctx, env.ID, "table5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art.Report, "Table 5") || strings.Contains(art.Report, "Table 6") {
		t.Errorf("table5 artefact rendered wrong sections:\n%s", art.Report)
	}
	// An artefact name expands to every section it produces.
	art, err = c.Artefact(ctx, env.ID, "actors")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 8", "Figure 4", "Table 9", "Table 10", "Figure 5"} {
		if !strings.Contains(art.Report, want) {
			t.Errorf("actors artefact missing %q", want)
		}
	}
	// The served section is byte-identical to the full report's.
	if !strings.Contains(env.Report, art.Report) {
		t.Error("artefact sections diverge from the full report")
	}
}

// TestArtefactErrorPaths pins the service's artefact error contract:
// unknown artefact name → 400 (in both the endpoint and the request
// filter), unknown or evicted study id → 404, and an artefact a
// partial run did not compute → 404.
func TestArtefactErrorPaths(t *testing.T) {
	_, c := newTestService(t, Config{CacheSize: 1})
	ctx := context.Background()

	env, err := c.Run(ctx, tinyRequest(7))
	if err != nil {
		t.Fatal(err)
	}

	status := func(path string) int {
		t.Helper()
		resp, err := c.HTTP.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Unknown artefact name → 400, even for a live id.
	if got := status("/v1/study/" + env.ID + "/artefact/table99"); got != http.StatusBadRequest {
		t.Errorf("unknown artefact name: status %d, want 400", got)
	}
	// Unknown id → 404.
	if got := status("/v1/study/s-9999/artefact/table5"); got != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", got)
	}
	// POSTing an unknown artefact filter → 400.
	bad := tinyRequest(7)
	bad.Artefacts = []string{"table99"}
	if _, err := c.Run(ctx, bad); err == nil || !strings.Contains(err.Error(), "status 400") {
		t.Errorf("unknown artefact filter: err = %v, want status 400", err)
	}

	// Evict env by running a different world through the 1-slot cache,
	// then fetch an artefact of the evicted id → 404.
	if _, err := c.Run(ctx, tinyRequest(9)); err != nil {
		t.Fatal(err)
	}
	if got := status("/v1/study/" + env.ID + "/artefact/table5"); got != http.StatusNotFound {
		t.Errorf("evicted id: status %d, want 404", got)
	}

	// A partial run 404s on artefacts outside its filter.
	partial := tinyRequest(9)
	partial.Artefacts = []string{"table1"}
	penv, err := c.Run(ctx, partial)
	if err != nil {
		t.Fatal(err)
	}
	if got := status("/v1/study/" + penv.ID + "/artefact/table1"); got != http.StatusOK {
		t.Errorf("computed artefact of a partial run: status %d, want 200", got)
	}
	if got := status("/v1/study/" + penv.ID + "/artefact/table5"); got != http.StatusNotFound {
		t.Errorf("uncomputed artefact of a partial run: status %d, want 404", got)
	}
}
