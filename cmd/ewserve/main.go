// Command ewserve runs the study's simulated web substrate AND the
// study itself as live HTTP services: the hosting world (image-sharing
// + cloud-storage sites), the reverse image search, the Wayback
// archive, and the study service (POST /v1/study — cached, coalesced,
// bounded; see internal/studysvc). Together they make the full
// measurement remotely drivable: point cmd/ewpipeline -remote at the
// study address, or a crawler.HTTPClient at the substrate addresses.
//
// Usage:
//
//	ewserve [-seed N] [-scale F]
//	        [-hosting :8081] [-reverse :8082] [-wayback :8083] [-study :8084]
//	        [-study-runs N] [-study-cache N] [-study-max-scale F]
//	        [-shutdown-timeout 10s]
//
// Lifecycle: all listeners are opened before anything serves, so a bad
// address fails the process immediately. A failed server tears the
// whole process down cleanly through the error group. On SIGINT or
// SIGTERM every server gets a graceful shutdown bounded by
// -shutdown-timeout; a second signal kills the process immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/pipeline"
	"repro/internal/reverse"
	"repro/internal/studysvc"
	"repro/internal/synth"
	"repro/internal/wayback"
)

func main() {
	seed := flag.Uint64("seed", 2019, "world seed")
	scale := flag.Float64("scale", 0.05, "corpus scale")
	hostingAddr := flag.String("hosting", "127.0.0.1:8081", "hosting world listen address")
	reverseAddr := flag.String("reverse", "127.0.0.1:8082", "reverse image search listen address")
	waybackAddr := flag.String("wayback", "127.0.0.1:8083", "wayback archive listen address")
	studyAddr := flag.String("study", "127.0.0.1:8084", "study service listen address (empty disables)")
	studyRuns := flag.Int("study-runs", 2, "max concurrent study runs")
	studyCache := flag.Int("study-cache", 16, "study result cache size (LRU)")
	studyMaxScale := flag.Float64("study-max-scale", 0.25, "largest scale the study service accepts")
	studySweepCells := flag.Int("study-sweep-cells", 64, "largest sweep (in cells) the study service accepts")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown deadline")
	flag.Parse()

	start := time.Now()
	w := synth.Generate(synth.Config{Seed: *seed, Scale: *scale})
	fmt.Printf("world ready in %v (%d reverse records, %d archived URLs)\n",
		time.Since(start).Round(time.Millisecond), w.Reverse.Len(), w.Wayback.NumURLs())

	// The signal context is the whole process's root: servers stop on
	// it, and the study service receives it as BaseContext so
	// in-flight studies and sweeps are cancelled at shutdown instead
	// of running headless to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	type service struct {
		name string
		addr string
		h    http.Handler
	}
	services := []service{
		{"hosting", *hostingAddr, w.Web},
		{"reverse", *reverseAddr, reverse.Handler(w.Reverse)},
		{"wayback", *waybackAddr, wayback.Handler(w.Wayback)},
	}
	if *studyAddr != "" {
		svc := studysvc.New(studysvc.Config{
			MaxConcurrentRuns: *studyRuns,
			CacheSize:         *studyCache,
			MaxScale:          *studyMaxScale,
			MaxSweepCells:     *studySweepCells,
			BaseContext:       ctx,
		})
		services = append(services, service{"study", *studyAddr, svc.Handler()})
	}

	// Open every listener before serving anything: a bad address fails
	// the process now, not from a goroutine later.
	servers := make([]*http.Server, 0, len(services))
	listeners := make([]net.Listener, 0, len(services))
	for _, s := range services {
		ln, err := net.Listen("tcp", s.addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ewserve: %s: %v\n", s.name, err)
			for _, open := range listeners {
				_ = open.Close() // best-effort cleanup on the exit path
			}
			os.Exit(1)
		}
		listeners = append(listeners, ln)
		servers = append(servers, &http.Server{Handler: s.h, ReadHeaderTimeout: 5 * time.Second})
		fmt.Printf("%s listening on http://%s\n", s.name, ln.Addr())
	}

	g, gctx := pipeline.NewErrGroup(ctx)
	for i := range servers {
		srv, name, ln := servers[i], services[i].name, listeners[i]
		g.Go(func() error {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				return fmt.Errorf("%s: %w", name, err)
			}
			return nil
		})
	}
	// Shutdown watcher: a signal or any failed server cancels gctx;
	// every server then gets a graceful shutdown with a deadline.
	g.Go(func() error {
		<-gctx.Done()
		// Restore default signal handling: a second Ctrl-C now kills
		// the process immediately instead of being swallowed.
		stop()
		fmt.Println("\nshutting down...")
		shctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		var firstErr error
		for i, srv := range servers {
			if err := srv.Shutdown(shctx); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s shutdown: %w", services[i].name, err)
			}
		}
		return firstErr
	})

	fmt.Println("example: curl http://" + *hostingAddr + "/imgur.com/landing")
	if *studyAddr != "" {
		fmt.Printf("example: curl -X POST http://%s/v1/study -d '{\"seed\":2019,\"scale\":0.02}'\n", *studyAddr)
		fmt.Printf("example: go run ./cmd/ewsweep -remote http://%s -preset cross-seed-stability -seeds 10 -scale 0.05\n", *studyAddr)
	}
	fmt.Println("Ctrl-C to stop (twice to force)")

	if err := g.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "ewserve:", err)
		os.Exit(1)
	}
	fmt.Println("all servers stopped")
}
