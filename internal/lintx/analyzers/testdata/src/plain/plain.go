// Fixture: a package outside internal/ — ctxhygiene does not apply,
// so a root context here is fine.
package plain

import "context"

func root() context.Context { return context.Background() }
