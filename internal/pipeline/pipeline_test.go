package pipeline

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/randx"
)

func TestMapPreservesOrder(t *testing.T) {
	ctx := context.Background()
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	// Deterministic jitter from the repo's own RNG: the delay table is
	// bit-identical across Go releases, so a failure log pins the exact
	// schedule that scrambled completion order.
	rng := randx.New(1)
	delays := make([]time.Duration, len(items))
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	out := Collect(Map(ctx, nil, "square", 8, Emit(ctx, items), func(_ context.Context, v int) int {
		time.Sleep(delays[v]) // scramble completion order
		return v * v
	}))
	if len(out) != len(items) {
		t.Fatalf("got %d outputs, want %d", len(out), len(items))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d (order not preserved)", i, v, i*i)
		}
	}
}

func TestMapRunsConcurrently(t *testing.T) {
	ctx := context.Background()
	var peak, cur atomic.Int64
	items := make([]int, 64)
	Collect(Map(ctx, nil, "", 8, Emit(ctx, items), func(_ context.Context, v int) int {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return v
	}))
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	items := make([]int, 10000)
	out := Map(ctx, nil, "", 4, Emit(ctx, items), func(_ context.Context, v int) int { return v })
	got := 0
	for range out {
		got++
		if got == 10 {
			cancel()
		}
	}
	if got == len(items) {
		t.Fatal("cancellation did not stop the stage")
	}
}

func TestFlatMapFlattensInOrder(t *testing.T) {
	ctx := context.Background()
	items := []int{0, 1, 2, 3, 4}
	out := Collect(FlatMap(ctx, nil, "", 4, Emit(ctx, items), func(_ context.Context, v int) []int {
		r := make([]int, v)
		for i := range r {
			r[i] = v
		}
		return r // 0 items for 0, 1 for 1, ...
	}))
	want := []int{1, 2, 2, 3, 3, 3, 4, 4, 4, 4}
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestProcessFlushAfterClose(t *testing.T) {
	ctx := context.Background()
	var buffered []int
	out := Collect(Process(ctx, nil, "", Emit(ctx, []int{1, 2, 3}),
		func(v int, emit func(int)) {
			if v%2 == 1 {
				emit(v) // odd: pass through
			} else {
				buffered = append(buffered, v) // even: hold for flush
			}
		},
		func(emit func(int)) {
			for _, v := range buffered {
				emit(v * 100)
			}
		}))
	want := []int{1, 3, 200}
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestTeeDeliversToAll(t *testing.T) {
	ctx := context.Background()
	items := []int{1, 2, 3, 4, 5}
	arms := Tee(ctx, Emit(ctx, items), 3)
	var g Group
	got := make([][]int, len(arms))
	for i, arm := range arms {
		i, arm := i, arm
		g.Go(func() { got[i] = Collect(arm) })
	}
	g.Wait()
	for i, vs := range got {
		if len(vs) != len(items) {
			t.Fatalf("arm %d got %v, want %v", i, vs, items)
		}
		for j := range items {
			if vs[j] != items[j] {
				t.Fatalf("arm %d out[%d] = %d, want %d", i, j, vs[j], items[j])
			}
		}
	}
}

func TestStatsCounters(t *testing.T) {
	ctx := context.Background()
	stats := NewStats()
	items := make([]int, 100)
	Collect(Map(ctx, stats, "work", 4, Emit(ctx, items), func(_ context.Context, v int) int {
		time.Sleep(100 * time.Microsecond)
		return v
	}))
	stats.Time("fold", func() { time.Sleep(time.Millisecond) })
	snaps := stats.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d stages, want 2", len(snaps))
	}
	work := snaps[0]
	if work.Name != "work" || work.Workers != 4 {
		t.Fatalf("bad stage header: %+v", work)
	}
	if work.In != 100 || work.Out != 100 {
		t.Fatalf("in/out = %d/%d, want 100/100", work.In, work.Out)
	}
	if work.Busy < 10*time.Millisecond/2 {
		t.Fatalf("busy %v implausibly low", work.Busy)
	}
	if work.Wall <= 0 {
		t.Fatal("wall not recorded")
	}
	if snaps[1].Name != "fold" || snaps[1].In != 1 || snaps[1].Out != 1 {
		t.Fatalf("bad timed stage: %+v", snaps[1])
	}
	if stats.String() == "(no stages)" {
		t.Fatal("String rendered nothing")
	}
}

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	st := s.Stage("x", 1)
	st.AddIn(1)
	st.AddOut(1)
	st.AddBusy(time.Second)
	st.Close()
	if got := s.Snapshot(); got != nil {
		t.Fatalf("nil stats snapshot = %v", got)
	}
}
