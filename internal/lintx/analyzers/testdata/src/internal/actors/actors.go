// Fixture: the actors.Buckets PR 1 bug shape — float accumulation in
// map-iteration order — and the sortedProfiles fix idiom.
package actors

import "sort"

type ActorID string

type Profile struct {
	Actor   ActorID
	EwPosts int
	Pct     float64
}

// bucketsUnsorted folds floats straight off the map: the fold order
// is randomized per run and float addition is not associative.
func bucketsUnsorted(profiles map[ActorID]*Profile) (float64, int) {
	var posts float64
	var n int
	for _, p := range profiles {
		n++
		posts += p.Pct // want "float accumulation in map-iteration order"
	}
	return posts, n
}

// sortedProfiles is the fix idiom: collect, sort by a stable identity,
// fold over the slice. The comparator's tie-break is a named ID type,
// which the analyzer accepts as an identity.
func sortedProfiles(profiles map[ActorID]*Profile) []*Profile {
	out := make([]*Profile, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Actor < out[j].Actor })
	return out
}

func bucketsSorted(profiles map[ActorID]*Profile) float64 {
	var posts float64
	for _, p := range sortedProfiles(profiles) {
		posts += p.Pct
	}
	return posts
}
