package studysvc

import (
	"context"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/sweep"
)

// tinySpec is a 2-seed cross-seed sweep small enough for tests.
func tinySpec() sweep.Spec {
	return sweep.Spec{
		Preset: sweep.PresetCrossSeed, Seeds: 2,
		Scale: 0.01, Annotation: 200, Parallelism: 2,
	}
}

// TestServerSideSweep runs a sweep through POST /v1/sweep and checks
// it rides the study cache: the second identical sweep starts zero new
// runs and answers every cell from the LRU.
func TestServerSideSweep(t *testing.T) {
	svc, c := newTestService(t, Config{MaxConcurrentRuns: 2})
	ctx := context.Background()

	env, err := c.RunSweep(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if env.Status != StatusDone || env.Result == nil {
		t.Fatalf("sweep not done: %+v", env)
	}
	if env.Result.OK() != 2 || len(env.Result.Aggregate.Groups) != 1 {
		t.Fatalf("sweep result wrong shape: ok=%d", env.Result.OK())
	}
	st := svc.Stats()
	if st.RunsStarted != 2 {
		t.Fatalf("runs started = %d, want 2 (one per distinct cell)", st.RunsStarted)
	}

	env2, err := c.RunSweep(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	st = svc.Stats()
	if st.RunsStarted != 2 {
		t.Fatalf("identical sweep started %d new runs, want 0", st.RunsStarted-2)
	}
	if st.CacheHits < 2 {
		t.Fatalf("cache hits = %d, want >= 2 (sweep cells must hit the LRU)", st.CacheHits)
	}
	for _, o := range env2.Result.Cells {
		if !o.Cached {
			t.Fatalf("cell %d not served from cache on the second sweep", o.Index)
		}
	}
	if !reflect.DeepEqual(env.Result.Aggregate, env2.Result.Aggregate) {
		t.Fatal("cached sweep aggregates differ from the first run")
	}
	// The sweep stays fetchable by id.
	got, err := c.GetSweep(ctx, env.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || got.Result == nil {
		t.Fatalf("GetSweep(%s) = %+v", env.ID, got)
	}
}

// TestRemoteSweepMatchesLocal pins the acceptance criterion: a sweep
// driven cell-by-cell through the client backend against a live
// service produces aggregates identical to the in-process sweep, and
// the sweep traffic shows up in the service counters.
func TestRemoteSweepMatchesLocal(t *testing.T) {
	svc, c := newTestService(t, Config{MaxConcurrentRuns: 2})
	ctx := context.Background()
	cells, err := tinySpec().Cells()
	if err != nil {
		t.Fatal(err)
	}

	local := sweep.Run(ctx, "pair", cells, sweep.Local{}, sweep.Options{Parallelism: 2})
	remote := sweep.Run(ctx, "pair", cells, Backend{Client: c}, sweep.Options{Parallelism: 2})
	if len(local.Errors) != 0 || len(remote.Errors) != 0 {
		t.Fatalf("errors: local=%v remote=%v", local.Errors, remote.Errors)
	}
	if !reflect.DeepEqual(local.Aggregate, remote.Aggregate) {
		t.Fatalf("remote aggregates differ from local:\n%+v\nvs\n%+v", remote.Aggregate, local.Aggregate)
	}
	for i := range cells {
		if !reflect.DeepEqual(local.Cells[i].Summary, remote.Cells[i].Summary) {
			t.Fatalf("cell %d summary differs local vs remote", i)
		}
	}
	st := svc.Stats()
	if st.RunsStarted != int64(len(cells)) || st.RunsCompleted != int64(len(cells)) {
		t.Fatalf("service saw %d/%d runs, want %d", st.RunsStarted, st.RunsCompleted, len(cells))
	}
}

// TestSweepValidation: oversized cells and unknown presets are
// rejected before any study runs.
func TestSweepValidation(t *testing.T) {
	svc, c := newTestService(t, Config{MaxScale: 0.02, MaxSweepCells: 4})
	ctx := context.Background()

	if _, err := c.RunSweep(ctx, sweep.Spec{Scale: 0.5}); err == nil {
		t.Fatal("oversized scale accepted")
	}
	if _, err := c.RunSweep(ctx, sweep.Spec{Preset: "bogus"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := c.RunSweep(ctx, sweep.Spec{Preset: sweep.PresetCrossSeed, Seeds: 10, Scale: 0.01}); err == nil {
		t.Fatal("10-cell sweep accepted over a 4-cell limit")
	}
	// A few bytes of spec can plan billions of cells; the limit must be
	// enforced on the counted plan, before the cells are materialized —
	// this request OOMs the service if the check expands first.
	if _, err := c.RunSweep(ctx, sweep.Spec{Preset: sweep.PresetCrossSeed, Seeds: 2_000_000_000, Scale: 0.01}); err == nil {
		t.Fatal("2e9-cell sweep accepted")
	}
	if st := svc.Stats(); st.RunsStarted != 0 {
		t.Fatalf("rejected sweeps started %d runs", st.RunsStarted)
	}
}

// TestStudyListing covers GET /v1/study: cached and in-flight runs are
// visible with their options, so operators don't have to guess ids.
func TestStudyListing(t *testing.T) {
	_, c := newTestService(t, Config{})
	ctx := context.Background()

	env, err := c.Run(ctx, Request{Seed: 31, Scale: 0.01, AnnotationSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 1 {
		t.Fatalf("listed %d runs, want 1", len(list.Runs))
	}
	r := list.Runs[0]
	if r.ID != env.ID || !r.Cached || r.Status != StatusDone {
		t.Fatalf("listing row = %+v, want cached done run %s", r, env.ID)
	}
	if r.Options.Seed != 31 || r.Options.Scale != 0.01 || r.Options.AnnotationSize != 200 {
		t.Fatalf("listing options = %+v", r.Options)
	}
	// The listed id is directly fetchable — no guessing.
	if _, err := c.Get(ctx, r.ID); err != nil {
		t.Fatal(err)
	}
}

// TestCrawlConcurrencyCanonicalization: the crawl knob is part of the
// cache key, defaults like the study itself, and is bounded.
func TestCrawlConcurrencyCanonicalization(t *testing.T) {
	a, _ := canonicalize(Request{})
	b, _ := canonicalize(Request{CrawlConcurrency: 8})
	if a.key() != b.key() {
		t.Fatalf("default crawl concurrency should canonicalize to 8: %q vs %q", a.key(), b.key())
	}
	if c, _ := canonicalize(Request{CrawlConcurrency: 4}); c.key() == a.key() {
		t.Fatal("distinct crawl concurrency collapsed into one key")
	}

	_, cl := newTestService(t, Config{MaxWorkers: 8})
	if _, err := cl.Run(context.Background(), Request{Scale: 0.01, CrawlConcurrency: 64}); err == nil {
		t.Fatal("oversized crawl concurrency accepted")
	}
}

// TestSweepAsyncSubmit covers wait=false + GET /v1/sweep/{id}?wait=true.
func TestSweepAsyncSubmit(t *testing.T) {
	_, c := newTestService(t, Config{})
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/sweep?wait=false",
		jsonBody(t, tinySpec()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env SweepEnvelope
	if err := jsonDecode(resp, &env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || env.ID == "" {
		t.Fatalf("async submit: status %d, env %+v", resp.StatusCode, env)
	}
	if env.CellsPlanned != 2 {
		t.Fatalf("cells planned = %d, want 2", env.CellsPlanned)
	}

	resp, err = c.HTTP.Get(c.BaseURL + "/v1/sweep/" + env.ID + "?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	var got SweepEnvelope
	if err := jsonDecode(resp, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || got.Result == nil || got.Result.OK() != 2 {
		t.Fatalf("polled sweep = %+v", got)
	}
}
