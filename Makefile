GO ?= go

.PHONY: verify vet fmt-check lint build test test-race bench-smoke bench-diff bench-baseline bench clean

verify: vet lint build test

vet:
	$(GO) vet ./...

# Lint gate: the tree must be gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Project-invariant gate: the ewlint analyzer suite (determinism,
# poolpair, memokey, ctxhygiene — see DESIGN.md §10). Hard gate: any
# finding fails the build; suppress a deliberate exception with a
# reasoned //lint:ignore directive at the site.
lint: fmt-check
	$(GO) run ./cmd/ewlint ./...

build:
	$(GO) build ./...

# -vet=all runs every go vet check (not just the default test-time
# subset) over each package as its tests compile.
test:
	$(GO) test -vet=all ./...

test-race:
	$(GO) test -race ./...

# Three iterations of the sequential/concurrent full-study pair plus
# the cross-seed sweep — fast sanity that the engine and the sweep
# orchestrator run end to end — emitted both as benchstat input
# (bench_*.txt) and as fresh JSON artifacts for CI upload. The fresh
# files are kept distinct from the committed BENCH_*.json baselines so
# a smoke run never clobbers the regression reference.
bench-smoke:
	$(GO) test -run='^$$' -bench=StudyRun -benchtime=3x . | tee bench_pipeline.txt
	$(GO) run ./cmd/benchjson -in bench_pipeline.txt -out BENCH_pipeline.fresh.json
	$(GO) test -run='^$$' -bench=SweepCrossSeed -benchtime=3x . | tee bench_sweep.txt
	$(GO) run ./cmd/benchjson -in bench_sweep.txt -out BENCH_sweep.fresh.json
	$(GO) test -run='^$$' -bench=ArtefactReuse -benchtime=3x . | tee bench_artefact.txt
	$(GO) run ./cmd/benchjson -in bench_artefact.txt -out BENCH_artefact.fresh.json

# Benchmark-regression gate: a fresh smoke run must stay within
# BENCH_TOLERANCE of the committed baselines; it also fails when a
# baseline benchmark disappears. Absolute ns/op only compares
# meaningfully on similar hardware — refresh the baselines from the
# machine class that gates (for CI, the uploaded BENCH_*.fresh.json
# artifact of a green run is exactly the file to commit).
BENCH_TOLERANCE ?= 0.30
bench-diff: bench-smoke
	$(GO) run ./cmd/benchjson -diff -baseline BENCH_pipeline.json -in BENCH_pipeline.fresh.json -tolerance $(BENCH_TOLERANCE)
	$(GO) run ./cmd/benchjson -diff -baseline BENCH_sweep.json -in BENCH_sweep.fresh.json -tolerance $(BENCH_TOLERANCE)
	$(GO) run ./cmd/benchjson -diff -baseline BENCH_artefact.json -in BENCH_artefact.fresh.json -tolerance $(BENCH_TOLERANCE)

# Refresh the committed baselines from a fresh smoke run (run after an
# intentional perf change, then commit the BENCH_*.json files).
bench-baseline: bench-smoke
	cp BENCH_pipeline.fresh.json BENCH_pipeline.json
	cp BENCH_sweep.fresh.json BENCH_sweep.json
	cp BENCH_artefact.fresh.json BENCH_artefact.json

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

clean:
	rm -f bench_pipeline.txt bench_sweep.txt bench_artefact.txt \
		BENCH_pipeline.fresh.json BENCH_sweep.fresh.json BENCH_artefact.fresh.json
