// Command ewreport regenerates every table and figure of the study
// against a synthetic world and prints them in the paper's layout. The
// study runs on the concurrent artefact engine by default; -seq runs
// the sequential reference implementation instead (identical output
// for the same seed).
//
// With -only the run is selective: only the named tables/figures (and
// the artefact subgraph they depend on) are computed and printed —
// "just Table 5" never pays for the actor analysis.
//
// With -remote the study is not run in-process at all: the options
// (including the -only selection) are POSTed to a live study service
// (cmd/ewserve's -study address) and the server's report is printed.
//
// Usage:
//
//	ewreport [-seed N] [-scale F] [-annotation N] [-workers N] [-seq]
//	ewreport -only table5,figure2 [-seed N] [-scale F]
//	ewreport -remote http://127.0.0.1:8084 [-only table5] [-seed N] [-scale F]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/studysvc"
	"repro/internal/synth"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 2019, "world seed")
	scale := flag.Float64("scale", 0.1, "corpus scale (1.0 ≈ paper scale)")
	annotation := flag.Int("annotation", 1000, "annotated-thread corpus size")
	workers := flag.Int("workers", 0, "pipeline stage workers (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "run the sequential reference implementation")
	only := flag.String("only", "", "comma-separated tables/figures to compute and print (e.g. table5,figure2); empty = everything")
	remote := flag.String("remote", "", "render via a live study service at this base URL instead of running in-process")
	flag.Parse()
	ctx := context.Background()
	names := cliutil.SplitNames(*only)

	if *remote != "" {
		if *seq {
			fmt.Fprintln(os.Stderr, "ewreport: -seq and -remote are mutually exclusive (the service runs the concurrent engine)")
			return 1
		}
		start := time.Now()
		env, err := cliutil.RunRemote(ctx, *remote, studysvc.Request{
			Seed: *seed, Scale: *scale, AnnotationSize: *annotation,
			Workers: *workers, Artefacts: names,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ewreport:", err)
			return 1
		}
		verdict := "executed on the server"
		if env.Cached {
			verdict = "served from the result cache"
		}
		fmt.Fprintf(os.Stderr, "run %s: %s (server time %dms, round trip %v)\n\n",
			env.ID, verdict, env.ElapsedMS, time.Since(start).Round(time.Millisecond))
		fmt.Println(env.Report)
		return 0
	}

	if *seq && len(names) > 0 {
		fmt.Fprintln(os.Stderr, "ewreport: -seq and -only are mutually exclusive (selective execution runs on the artefact graph)")
		return 1
	}

	start := time.Now()
	study := core.NewStudy(core.Options{
		Synth:          synth.Config{Seed: *seed, Scale: *scale},
		AnnotationSize: *annotation,
		Workers:        *workers,
	})
	fmt.Fprintf(os.Stderr, "world generated in %v: %d threads, %d posts, %d actors\n",
		time.Since(start).Round(time.Millisecond),
		study.World.Store.NumThreads(), study.World.Store.NumPosts(), study.World.Store.NumActors())

	if len(names) > 0 {
		res, err := study.Compute(ctx, names...)
		study.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ewreport:", err)
			return 1
		}
		out, err := report.Render(res, names...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ewreport:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "selection complete in %v\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(out)
		return 0
	}

	var res *core.Results
	var err error
	if *seq {
		res, err = study.RunSequential(ctx)
	} else {
		res, err = study.Run(ctx)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ewreport:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "study complete in %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(report.Full(res))
	return 0
}
