package studysvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/sweep"
	"repro/internal/tracex"
)

// Client drives a remote study service — what cmd/ewpipeline -remote
// uses against a live cmd/ewserve.
//
// Study submissions honor the service's admission control: a 429
// response carries a Retry-After hint, and the client backs off and
// retries with capped deterministic (exponential, jitter-free) delays
// before giving up. Set MaxRetries negative to disable — a load
// generator measuring the shed rate must see the 429s, not hide them.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// MaxRetries bounds how many times a shed (429) study submission
	// is retried (default 3; negative disables retrying).
	MaxRetries int
	// MaxBackoff caps the per-attempt retry delay (default 5s). The
	// delay for attempt n is min(RetryAfter << n, MaxBackoff), seeded
	// from the server's Retry-After header.
	MaxBackoff time.Duration
}

// NewClient returns a client for the service at baseURL (no trailing
// slash). httpClient may be nil (http.DefaultClient).
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{BaseURL: baseURL, HTTP: httpClient}
}

// HTTPError is a non-2xx service response: the status code, the
// error body the server sent (not just the code — the body carries
// the reason), and the parsed Retry-After hint when present.
type HTTPError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("studysvc: %s (status %d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("studysvc: status %d", e.Status)
}

// Run submits a study request and waits for its result.
func (c *Client) Run(ctx context.Context, r Request) (*Envelope, error) {
	return c.run(ctx, r, "")
}

// clientReqCounter numbers study submissions process-wide; the ids it
// yields ("c-N") are deterministic for a given submission sequence, so
// a reproduced run produces the same server-side log correlation.
var clientReqCounter atomic.Int64

// run submits a study request with an optional raw query string,
// retrying shed (429) submissions under the client's backoff policy.
// One submission is one logical request however many times it is
// retried: every attempt carries the same X-Request-ID, so the
// server's logs correlate the retry sequence, and the same traceparent
// (when ctx carries an open span), so every attempt lands in the
// caller's trace.
func (c *Client) run(ctx context.Context, r Request, query string) (*Envelope, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	u := c.BaseURL + "/v1/study"
	if query != "" {
		u += "?" + query
	}
	reqID := "c-" + strconv.FormatInt(clientReqCounter.Add(1), 10)
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	for attempt := 0; ; attempt++ {
		// The body reader must be fresh per attempt: a retried request
		// cannot replay a drained reader.
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", reqID)
		tracex.Inject(ctx, req.Header)
		env, err := c.do(req)
		var he *HTTPError
		if err == nil || attempt >= maxRetries ||
			!errors.As(err, &he) || he.Status != http.StatusTooManyRequests {
			return env, err
		}
		// Shed: back off as the server asked, doubling per attempt up
		// to the cap. Deterministic on purpose — no jitter — so test
		// and sweep behavior is reproducible.
		wait := he.RetryAfter
		if wait <= 0 {
			wait = time.Second
		}
		wait = min(wait<<attempt, maxBackoff)
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// Get fetches a run by id.
func (c *Client) Get(ctx context.Context, id string) (*Envelope, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/study/"+id, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// Artefact fetches one named artefact of a completed run — the
// rendered section(s) for a table/figure name ("table5") or an
// artefact name ("actors").
func (c *Client) Artefact(ctx context.Context, id, name string) (*ArtefactEnvelope, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/study/"+url.PathEscape(id)+"/artefact/"+url.PathEscape(name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var env ArtefactEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("studysvc: bad artefact response: %w", err)
	}
	return &env, nil
}

// Trace fetches one trace from the server's ring by (32-hex-digit)
// trace id — typically the id the caller's own tracer minted, after a
// traceparent-propagated run.
func (c *Client) Trace(ctx context.Context, id string) (*tracex.Trace, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/trace/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var tr tracex.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return nil, fmt.Errorf("studysvc: bad trace response: %w", err)
	}
	return &tr, nil
}

// Traces lists the trace ids in the server's recent-trace ring,
// oldest first.
func (c *Client) Traces(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var list struct {
		Traces []string `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, fmt.Errorf("studysvc: bad trace list response: %w", err)
	}
	return list.Traces, nil
}

// TraceExport fetches one trace in Chrome trace-event form (the
// ?format=perfetto export), raw.
func (c *Client) TraceExport(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/trace/"+url.PathEscape(id)+"?format=perfetto", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("studysvc: bad stats response: %w", err)
	}
	return &st, nil
}

func (c *Client) do(req *http.Request) (*Envelope, error) {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeError(resp)
	}
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("studysvc: bad response: %w", err)
	}
	return &env, nil
}

// List fetches the run listing (cached and in-flight studies).
func (c *Client) List(ctx context.Context) (*RunList, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/study", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var list RunList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, fmt.Errorf("studysvc: bad list response: %w", err)
	}
	return &list, nil
}

// RunSweep submits a sweep spec to POST /v1/sweep and waits for the
// server-side sweep to finish.
func (c *Client) RunSweep(ctx context.Context, spec sweep.Spec) (*SweepEnvelope, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	tracex.Inject(ctx, req.Header)
	return c.doSweep(req)
}

// GetSweep fetches a sweep run by id.
func (c *Client) GetSweep(ctx context.Context, id string) (*SweepEnvelope, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/sweep/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	return c.doSweep(req)
}

func (c *Client) doSweep(req *http.Request) (*SweepEnvelope, error) {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeError(resp)
	}
	var env SweepEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("studysvc: bad sweep response: %w", err)
	}
	return &env, nil
}

// Backend adapts the client to sweep.Backend: each cell becomes a POST
// /v1/study against the live service. Running a sweep this way is load
// generation — N concurrent study requests driving the service's
// worker pool, coalescing and cache — while the aggregates stay
// bit-identical to a local sweep, because the service computes each
// cell's Summary with the same code.
type Backend struct {
	Client *Client
}

// RunCell submits one cell and waits for the service's answer. The
// report is trimmed from the response: a sweep only folds summaries.
func (b Backend) RunCell(ctx context.Context, cell sweep.Cell) (sweep.CellResult, error) {
	env, err := b.Client.run(ctx, Request{
		Seed: cell.Seed, Scale: cell.Scale, AnnotationSize: cell.Annotation,
		Workers: cell.Workers, CrawlConcurrency: cell.CrawlConcurrency,
		Faults: cell.Faults,
	}, "report=false")
	if err != nil {
		return sweep.CellResult{}, err
	}
	if env.Status != StatusDone {
		return sweep.CellResult{}, fmt.Errorf("studysvc: run %s %s: %s", env.ID, env.Status, env.Error)
	}
	if env.Summary == nil {
		return sweep.CellResult{}, fmt.Errorf("studysvc: run %s returned no summary", env.ID)
	}
	return sweep.CellResult{
		Summary: *env.Summary,
		Elapsed: time.Duration(env.ElapsedMS) * time.Millisecond,
		Cached:  env.Cached,
	}, nil
}

// decodeError turns a non-2xx response into an *HTTPError carrying
// the server's error body — the reason, not just the code — and any
// Retry-After hint.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	e := &HTTPError{Status: resp.StatusCode}
	var er errorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		e.Msg = er.Error
	} else if msg := string(bytes.TrimSpace(body)); msg != "" {
		e.Msg = msg
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}
