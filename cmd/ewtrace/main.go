// Command ewtrace renders a recorded trace: the aggregated span tree,
// the critical-path report over the study's artefact graph (which node
// chain bounds the run, each node's slack, and how much of a cold
// start is world synthesis), and optionally a Chrome trace-event
// export for Perfetto's timeline UI.
//
// Traces come from a live study service's recent-trace ring (-remote,
// see GET /v1/trace/{id} in internal/studysvc) or from a JSON file in
// the same shape (-in). Giving both merges them — the client half and
// server half of one propagated trace render as a single tree.
//
// Usage:
//
//	ewtrace -remote http://127.0.0.1:8084 -list
//	ewtrace -remote http://127.0.0.1:8084 -id 00000000000000070000000000000001
//	ewtrace -remote http://127.0.0.1:8084            # newest recorded trace
//	ewtrace -in trace.json -perfetto trace.perfetto.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/studysvc"
	"repro/internal/tracex"
)

func main() {
	remote := flag.String("remote", "", "fetch the trace from a live study service at this base URL")
	id := flag.String("id", "", "trace id, 32 hex digits (empty with -remote = newest recorded trace)")
	in := flag.String("in", "", "read the trace from this JSON file (GET /v1/trace/{id} shape)")
	list := flag.Bool("list", false, "with -remote: list recorded trace ids, oldest first, and exit")
	perfetto := flag.String("perfetto", "", "also write a Chrome trace-event export to this file")
	flag.Parse()

	if *remote == "" && *in == "" {
		fatalf("need -remote or -in (a trace has to come from somewhere)")
	}
	ctx := context.Background()

	if *list {
		if *remote == "" {
			fatalf("-list requires -remote")
		}
		ids, err := studysvc.NewClient(*remote, nil).Traces(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		for _, tid := range ids {
			fmt.Println(tid)
		}
		return
	}

	var (
		tr  tracex.Trace
		got bool
	)
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fatalf("%v", err)
		}
		if err := json.Unmarshal(data, &tr); err != nil {
			fatalf("%s: not a trace JSON: %v", *in, err)
		}
		if tr.TraceID == "" || len(tr.Spans) == 0 {
			fatalf("%s decoded to an empty trace — it wants the GET /v1/trace/{id} JSON shape, not a Perfetto export", *in)
		}
		got = true
	}
	if *remote != "" {
		client := studysvc.NewClient(*remote, nil)
		tid := *id
		if tid == "" && got {
			// A file plus -remote means "fetch the other half of this
			// trace" — the id is already in hand.
			tid = tr.TraceID
		}
		if tid == "" {
			ids, err := client.Traces(ctx)
			if err != nil {
				fatalf("%v", err)
			}
			if len(ids) == 0 {
				fatalf("no traces recorded on %s yet", *remote)
			}
			tid = ids[len(ids)-1]
		}
		remoteTr, err := client.Trace(ctx, tid)
		if err != nil {
			fatalf("%v", err)
		}
		if got {
			tr = tracex.Merge(tr, *remoteTr)
		} else {
			tr = *remoteTr
			got = true
		}
	}

	fmt.Println(tr.RenderTree())
	fmt.Println(tracex.CriticalPath(tr, core.SpanDeps()).Render())
	if *perfetto != "" {
		if err := os.WriteFile(*perfetto, tr.ChromeTrace(), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *perfetto)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ewtrace: "+format+"\n", args...)
	os.Exit(1)
}
