package core

import (
	"context"
	"sync"

	"repro/internal/crawler"
	"repro/internal/nsfv"
	"repro/internal/photodna"
	"repro/internal/pipeline"
)

// Run executes the complete study on the concurrent stage engine:
// crawl results stream through the PhotoDNA gate, NSFV classification
// and reverse-image search as they arrive, while the independent §5/§6
// analyses run on a parallel branch. Results are identical to
// RunSequential for the same Options — every concurrent stage fans in
// back to the sequential order before folding — and per-stage metrics
// are available from PipelineStats afterwards.
func (s *Study) Run(ctx context.Context) (*Results, error) {
	defer s.Close()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := pipeline.NewStats()
	s.stats = st
	res := &Results{}

	st.Time("select §3", func() {
		res.EWhoringThreads = s.SelectEWhoring()
		res.Table1 = s.ForumOverview(res.EWhoringThreads)
	})
	var cls ClassifierResult
	var err error
	st.Time("classifier §4.1", func() { cls, err = s.TrainAndExtract(res.EWhoringThreads) })
	if err != nil {
		return nil, err
	}
	res.Classifier = cls
	for i := range res.Table1 {
		res.Table1[i].TOPs = cls.TOPsByForum[res.Table1[i].Forum]
	}
	st.Time("extract urls §4.2", func() { res.Links = s.ExtractLinks(ctx, cls.Extract.TOPs) })

	// The image branch (§4.2–§4.5) and the financial/actor branch
	// (§5–§6) share no data, so they run in parallel. Each files
	// PhotoDNA matches to its own hotline: the §4.3 summary must not
	// depend on how the scheduler interleaves the branches.
	imageHotline := photodna.NewHotline()
	earnHotline := photodna.NewHotline()
	var g pipeline.Group
	g.Go(func() { s.runImageBranch(ctx, st, res, imageHotline) })
	g.Go(func() {
		st.Time("earnings §5", func() {
			res.Earnings = s.analyzeEarningsWith(ctx, res.EWhoringThreads, earnHotline)
		})
		st.Time("actors §6", func() {
			res.Actors = s.AnalyzeActors(res.EWhoringThreads, cls.Extract.TOPs, res.Earnings.Proofs)
		})
		st.Time("exchange §5.3", func() {
			res.Table7 = s.ExchangeAnalysis(res.Actors.Profiles)
		})
	})
	g.Wait()

	// Replay the branch hotlines into the study hotline in the order
	// the sequential path files reports: main crawl first, earnings
	// crawl second.
	for _, r := range imageHotline.Reports() {
		s.Hotline.Report(r)
	}
	for _, r := range earnHotline.Reports() {
		s.Hotline.Report(r)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// nsfvClass is one safe image with its NSFV verdict.
type nsfvClass struct {
	si    SafeImage
	class int
}

// NSFV verdict classes.
const (
	classPack = iota
	classSFV
	classPreview
)

// provItem is one image headed for reverse search: a preview (streamed
// as classified) or a sampled pack image (emitted after the pack
// corpus is complete).
type provItem struct {
	si   SafeImage
	pack bool
}

// provSearched pairs a search outcome with the row it belongs to.
type provSearched struct {
	pack bool
	out  searchOutcome
}

// runImageBranch streams the Figure 1 image pipeline: crawl → PhotoDNA
// gate → NSFV classification → reverse search → provenance fold. Fan-in
// stages run in task order, so the fold sees exactly the sequence the
// sequential path produces.
func (s *Study) runImageBranch(ctx context.Context, st *pipeline.Stats, res *Results, hotline *photodna.Hotline) {
	crawled := s.backend.CrawlStream(ctx, st, res.Links.Tasks)
	arms := pipeline.Tee(ctx, crawled, 2)

	// Crawl statistics fold on their own arm so the filter stage does
	// not wait for the dedup hashing.
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		res.CrawlStats = crawler.Summarize(pipeline.Collect(arms[0]))
	}()

	// workers <= 0 resolves to GOMAXPROCS inside the engine.
	workers := s.Opts.Workers
	matched := pipeline.Map(ctx, st, "photodna §4.3", workers, arms[1],
		func(ctx context.Context, r crawler.Result) matchOutcome { return s.matchResult(ctx, r) })
	safeCh := pipeline.Process(ctx, st, "hotline fan-in", matched,
		func(o matchOutcome, emit func(SafeImage)) {
			for _, rep := range o.reports {
				hotline.Report(rep)
			}
			for _, si := range o.safe {
				emit(si)
			}
		}, nil)

	clf := nsfv.New()
	classed := pipeline.Map(ctx, st, "nsfv §4.4", workers, safeCh,
		func(_ context.Context, si SafeImage) nsfvClass {
			switch {
			case si.IsPack:
				return nsfvClass{si, classPack}
			case clf.IsSFV(si.Image):
				return nsfvClass{si, classSFV}
			default:
				return nsfvClass{si, classPreview}
			}
		})

	// Previews go straight to reverse search; pack images buffer until
	// the corpus is complete, then the per-pack sample is emitted.
	var nres NSFVResult
	provIn := pipeline.Process(ctx, st, "pack sampling", classed,
		func(c nsfvClass, emit func(provItem)) {
			switch c.class {
			case classPack:
				nres.PackImages = append(nres.PackImages, c.si)
			case classSFV:
				nres.SFV = append(nres.SFV, c.si)
			default:
				nres.Previews = append(nres.Previews, c.si)
				emit(provItem{c.si, false})
			}
		},
		func(emit func(provItem)) {
			for _, si := range samplePackImages(nres.PackImages, s.Opts.ImagesPerPack) {
				emit(provItem{si, true})
			}
		})

	searched := pipeline.Map(ctx, st, "reverse §4.5", workers, provIn,
		func(ctx context.Context, it provItem) provSearched {
			return provSearched{it.pack, s.searchImage(ctx, it.si)}
		})

	fold := newProvFold()
	for o := range searched {
		if o.pack {
			fold.addPack(o.out)
		} else {
			fold.addPreview(o.out)
		}
	}
	statsWG.Wait()
	res.PhotoDNA = hotline.Summarize()
	res.NSFV = nres
	res.Provenance = fold.finish(s)
}
