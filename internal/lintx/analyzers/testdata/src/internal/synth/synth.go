// Fixture: the synth.genExchange PR 1 bug shape plus the
// rand/time.Now bans. The import path ends internal/synth, so the
// determinism analyzer applies.
package synth

import (
	"math/rand" // want "math/rand in a study-path package"
	"sort"
	"time"
)

type ActorID string

// eligibleUnsorted is the genExchange PR 1 bug, verbatim shape:
// authorship candidates collected from a map and used with no
// ordering step, so the RNG consumes them in randomized map order.
func eligibleUnsorted(ewCount map[ActorID]int, thr int) []ActorID {
	var eligible []ActorID
	for a, n := range ewCount {
		if n >= thr {
			eligible = append(eligible, a) // want "map-iteration order with no subsequent sort"
		}
	}
	return eligible
}

// eligibleSorted is the fix: collect, then sort before use.
func eligibleSorted(ewCount map[ActorID]int, thr int) []ActorID {
	var eligible []ActorID
	for a, n := range ewCount {
		if n >= thr {
			eligible = append(eligible, a)
		}
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i] < eligible[j] })
	return eligible
}

func jitter() int64 {
	t := time.Now() // want "time.Now in a study-path package"
	//lint:ignore determinism fixture demonstrates the sanctioned suppression path
	u := time.Now()
	return t.UnixNano() + u.UnixNano() + int64(rand.Int())
}
