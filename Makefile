GO ?= go

.PHONY: verify vet fmt-check build test test-race bench-smoke bench clean

verify: vet build test

vet:
	$(GO) vet ./...

# Lint gate: the tree must be gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One iteration of the sequential/concurrent full-study pair plus the
# cross-seed sweep — fast sanity that the engine and the sweep
# orchestrator run end to end — emitted both as benchstat input
# (bench_*.txt) and as JSON artifacts for CI upload.
bench-smoke:
	$(GO) test -run='^$$' -bench=StudyRun -benchtime=1x . | tee bench_pipeline.txt
	$(GO) run ./cmd/benchjson -in bench_pipeline.txt -out BENCH_pipeline.json
	$(GO) test -run='^$$' -bench=SweepCrossSeed -benchtime=1x . | tee bench_sweep.txt
	$(GO) run ./cmd/benchjson -in bench_sweep.txt -out BENCH_sweep.json

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

clean:
	rm -f bench_pipeline.txt BENCH_pipeline.json bench_sweep.txt BENCH_sweep.json
