// Command ewpipeline runs the Figure 1 measurement pipeline with
// progress reporting — the operational view of the study, as opposed
// to ewreport's final tables. By default the study runs on the
// concurrent stage engine and prints per-stage worker counts, item
// flows and timings; -seq runs the sequential reference
// implementation instead (both produce identical results for the same
// seed).
//
// With -only the run is selective: only the named tables/figures (and
// the artefact subgraph they depend on) execute — the node table then
// shows which artefacts ran and what each cost.
//
// With -remote the study is not run in-process at all: the options are
// POSTed to a live study service (cmd/ewserve's -study address) and
// the server's summary, stage table and cache verdict are printed.
//
// With -cpuprofile / -memprofile the run writes pprof profiles, so
// hot-path work (hashing, matching, the stage engine) is measurable
// with `go tool pprof` without editing code.
//
// Usage:
//
//	ewpipeline [-seed N] [-scale F] [-workers N] [-seq]
//	ewpipeline -only table5,figure2 [-seed N] [-scale F]
//	ewpipeline -cpuprofile cpu.pb.gz -memprofile mem.pb.gz [-seed N] [-scale F]
//	ewpipeline -remote http://127.0.0.1:8084 [-seed N] [-scale F] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/faultx"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/studysvc"
	"repro/internal/synth"
)

func main() {
	// The body runs in run() so deferred cleanup — most importantly
	// flushing the CPU/heap profiles — executes on error exits too;
	// os.Exit would skip it.
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 2019, "world seed")
	scale := flag.Float64("scale", 0.05, "corpus scale")
	workers := flag.Int("workers", 0, "pipeline stage workers (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "run the sequential reference implementation")
	only := flag.String("only", "", "comma-separated tables/figures to compute (e.g. table5,figure2); empty = the full study")
	remote := flag.String("remote", "", "drive a live study service at this base URL instead of running in-process")
	faults := flag.String("faults", "", `faultx fault profile for the crawl substrate (e.g. "rot=0.3;down=oron.com"; DESIGN.md §13)`)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()
	ctx := context.Background()

	if _, err := faultx.ParseProfile(*faults); err != nil {
		fmt.Fprintln(os.Stderr, "ewpipeline: bad -faults:", err)
		return 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ewpipeline:", err)
			return 1
		}
		// The profile is written on StopCPUProfile; a failed close
		// means a truncated profile and must not pass silently.
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ewpipeline: cpuprofile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ewpipeline:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ewpipeline:", err)
			return
		}
		runtime.GC() // report steady-state live heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ewpipeline:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ewpipeline: memprofile:", err)
		}
	}()

	names := cliutil.SplitNames(*only)
	if *remote != "" {
		if *seq {
			fmt.Fprintln(os.Stderr, "ewpipeline: -seq and -remote are mutually exclusive (the service runs the concurrent engine)")
			return 1
		}
		if err := runRemote(ctx, *remote, studysvc.Request{
			Seed: *seed, Scale: *scale, Workers: *workers, Artefacts: names,
			Faults: *faults,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "ewpipeline:", err)
			return 1
		}
		return 0
	}
	if *seq && len(names) > 0 {
		fmt.Fprintln(os.Stderr, "ewpipeline: -seq and -only are mutually exclusive (selective execution runs on the artefact graph)")
		return 1
	}

	study := core.NewStudy(core.Options{
		Synth:   synth.Config{Seed: *seed, Scale: *scale},
		Workers: *workers,
		Faults:  *faults,
	})
	defer study.Close()

	if len(names) > 0 {
		fmt.Printf("==> computing %v (seed=%d scale=%g)\n", names, *seed, *scale)
		start := time.Now()
		res, err := study.Compute(ctx, names...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ewpipeline:", err)
			return 1
		}
		out, err := report.Render(res, names...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ewpipeline:", err)
			return 1
		}
		fmt.Printf("\n%s", out)
		printStages("artefact nodes", study.PipelineStats())
		fmt.Printf("\nselection complete in %v\n", time.Since(start).Round(time.Millisecond))
		return 0
	}

	mode := "concurrent"
	if *seq {
		mode = "sequential"
	}
	fmt.Printf("==> running study (%s, seed=%d scale=%g)\n", mode, *seed, *scale)
	start := time.Now()
	var res *core.Results
	var err error
	if *seq {
		res, err = study.RunSequential(ctx)
	} else {
		res, err = study.Run(ctx)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ewpipeline:", err)
		return 1
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	fmt.Printf("\n--- dataset (§3) ---\n")
	fmt.Printf("  %d eWhoring threads across %d forums\n",
		len(res.EWhoringThreads), len(res.Table1))

	m := res.Classifier.Metrics
	fmt.Printf("--- TOP classifier (§4.1) ---\n")
	fmt.Printf("  P=%.2f R=%.2f F1=%.2f; TOPs=%d (ML %d, heur %d, both %d)\n",
		m.Precision(), m.Recall(), m.F1(),
		len(res.Classifier.Extract.TOPs), res.Classifier.Extract.MLCount,
		res.Classifier.Extract.HeurCount, res.Classifier.Extract.BothCount)

	fmt.Printf("--- URL extraction + crawl (§4.2) ---\n")
	fmt.Printf("  %d tasks from %d TOPs (+%d snowballed domains)\n",
		len(res.Links.Tasks), res.Links.ThreadsWithLinks, res.Links.SnowballAdded)
	st := res.CrawlStats
	fmt.Printf("  %d preview images, %d packs (%d images), %d unique\n",
		st.PreviewImages, st.PacksFetched, st.PackImages, st.UniqueImages)
	if cov := st.Coverage; cov.Degraded {
		fmt.Printf("  DEGRADED: %d tasks failed; dead hosts %v\n", cov.Errors, cov.DeadHosts)
	}

	fmt.Printf("--- PhotoDNA filter (§4.3) ---\n")
	fmt.Printf("  %d matches reported, %d URLs actioned\n",
		res.PhotoDNA.Matches, res.PhotoDNA.ActionableURLs)

	fmt.Printf("--- NSFV classification (§4.4) ---\n")
	fmt.Printf("  %d NSFV previews, %d SFV, %d pack images\n",
		len(res.NSFV.Previews), len(res.NSFV.SFV), len(res.NSFV.PackImages))

	fmt.Printf("--- reverse search + provenance (§4.5) ---\n")
	fmt.Printf("  packs: %d/%d matched; previews: %d/%d; %d domains; %d zero-match packs\n",
		res.Provenance.Packs.Matched, res.Provenance.Packs.Total,
		res.Provenance.Previews.Matched, res.Provenance.Previews.Total,
		len(res.Provenance.Domains), res.Provenance.ZeroMatch)

	fmt.Printf("--- earnings (§5) ---\n")
	fmt.Printf("  %d proofs by %d actors, total $%.0f\n",
		res.Earnings.Summary.Proofs, res.Earnings.Summary.Actors, res.Earnings.Summary.TotalUSD)

	fmt.Printf("--- actors (§6) ---\n")
	fmt.Printf("  %d profiles, %d key actors\n",
		len(res.Actors.Profiles), len(res.Actors.Key.All))

	printStages("pipeline stages", study.PipelineStats())
	fmt.Printf("\npipeline complete in %v (%s)\n", elapsed, mode)
	return 0
}

// printStages renders a stage-snapshot table (no-op when empty).
func printStages(title string, snaps []pipeline.StageSnapshot) {
	if len(snaps) == 0 {
		return
	}
	fmt.Printf("\n--- %s ---\n", title)
	fmt.Printf("%-18s %7s %6s %6s %12s %12s\n", "stage", "workers", "in", "out", "wall", "busy")
	for _, sn := range snaps {
		fmt.Printf("%-18s %7d %6d %6d %12s %12s\n",
			sn.Name, sn.Workers, sn.In, sn.Out,
			sn.Wall.Round(time.Microsecond), sn.Busy.Round(time.Microsecond))
	}
}

// runRemote drives one study against a live service and prints the
// server's view of it — the full summary blocks, or the partial
// report when the request carried an artefact selection.
func runRemote(ctx context.Context, baseURL string, req studysvc.Request) error {
	fmt.Printf("==> running study via %s (seed=%d scale=%g)\n", baseURL, req.Seed, req.Scale)
	start := time.Now()
	env, err := cliutil.RunRemote(ctx, baseURL, req)
	if err != nil {
		return err
	}
	verdict := "executed on the server"
	if env.Cached {
		verdict = "served from the result cache"
	}
	fmt.Printf("run %s: %s (server time %dms, round trip %v)\n",
		env.ID, verdict, env.ElapsedMS, time.Since(start).Round(time.Millisecond))
	if env.Degraded {
		fmt.Println("run DEGRADED: the crawl lost coverage (see the report's ledger)")
	}

	if env.Summary == nil {
		// A filtered run has no summary; the partial report is the
		// server's whole answer.
		fmt.Printf("\n%s", env.Report)
		printStages("pipeline stages (server)", env.Stages)
		return nil
	}

	s := env.Summary
	fmt.Printf("\n--- dataset (§3) ---\n")
	fmt.Printf("  %d eWhoring threads across %d forums\n", s.EWhoringThreads, s.Forums)
	fmt.Printf("--- pipeline (§4) ---\n")
	fmt.Printf("  %d TOPs, %d crawl tasks, %d unique images\n", s.TOPs, s.CrawlTasks, s.UniqueImages)
	fmt.Printf("  %d PhotoDNA matches, %d NSFV previews\n", s.PhotoDNAMatches, s.NSFVPreviews)
	fmt.Printf("  reverse: packs %d/%d, previews %d/%d, %d domains\n",
		s.PacksMatched, s.PacksTotal, s.PreviewsMatched, s.PreviewsTotal, s.MatchedDomains)
	fmt.Printf("--- economy (§5-§6) ---\n")
	fmt.Printf("  %d proofs totalling $%.0f, %d profiles, %d key actors\n",
		s.Proofs, s.TotalUSD, s.Profiles, s.KeyActors)

	printStages("pipeline stages (server)", env.Stages)
	return nil
}
