// Fixture: the tracer runs inside instrumented requests; a raw
// printer here would interleave text with the service's JSON log
// stream.
package tracex

import (
	"fmt"
	"log"
	"os"
)

func record() {
	fmt.Println("span ended")         // want "fmt.Println in internal/tracex"
	log.Printf("dropped %d spans", 2) // want "log.Printf in internal/tracex"
	fmt.Fprintf(os.Stderr, "explicit writer is fine\n")
	_ = fmt.Sprintf("trace %s", "abc")
}
