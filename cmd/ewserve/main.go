// Command ewserve runs the study's simulated web substrate as live
// HTTP services: the hosting world (image-sharing + cloud-storage
// sites), the reverse image search and the Wayback archive. Useful for
// poking the substrate with curl or wiring external tooling against
// it.
//
// Usage:
//
//	ewserve [-seed N] [-scale F] [-hosting :8081] [-reverse :8082] [-wayback :8083]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/reverse"
	"repro/internal/synth"
	"repro/internal/wayback"
)

func main() {
	seed := flag.Uint64("seed", 2019, "world seed")
	scale := flag.Float64("scale", 0.05, "corpus scale")
	hostingAddr := flag.String("hosting", "127.0.0.1:8081", "hosting world listen address")
	reverseAddr := flag.String("reverse", "127.0.0.1:8082", "reverse image search listen address")
	waybackAddr := flag.String("wayback", "127.0.0.1:8083", "wayback archive listen address")
	flag.Parse()

	start := time.Now()
	w := synth.Generate(synth.Config{Seed: *seed, Scale: *scale})
	fmt.Printf("world ready in %v (%d reverse records, %d archived URLs)\n",
		time.Since(start).Round(time.Millisecond), w.Reverse.Len(), w.Wayback.NumURLs())

	serve := func(name, addr string, h http.Handler) *http.Server {
		srv := &http.Server{Addr: addr, Handler: h, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			fmt.Printf("%s listening on http://%s\n", name, addr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}()
		return srv
	}
	servers := []*http.Server{
		serve("hosting", *hostingAddr, w.Web),
		serve("reverse", *reverseAddr, reverse.Handler(w.Reverse)),
		serve("wayback", *waybackAddr, wayback.Handler(w.Wayback)),
	}
	fmt.Println("example: curl http://" + *hostingAddr + "/imgur.com/landing")
	fmt.Println("Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	for _, srv := range servers {
		srv.Close()
	}
}
