package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Sum != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Sum != 40 {
		t.Errorf("Sum = %v", s.Sum)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v want %v", s.Std, want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%.2f) = %v want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileUnsortedInputUnmodified(t *testing.T) {
	xs := []float64{5, 1, 3}
	_ = Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestECDFSeries(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := e.Series(5)
	if len(pts) != 5 {
		t.Fatalf("Series(5) returned %d points", len(pts))
	}
	if pts[len(pts)-1].Pct != 100 {
		t.Errorf("final point %v, want 100%%", pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Pct <= pts[i-1].Pct {
			t.Errorf("series not monotone at %d: %+v", i, pts)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if !math.IsNaN(e.At(1)) || !math.IsNaN(e.Quantile(0.5)) {
		t.Fatal("empty ECDF should return NaN")
	}
	if e.Series(5) != nil {
		t.Fatal("empty ECDF should return nil series")
	}
}

// Property: ECDF is monotone non-decreasing and bounded in [0,1].
func TestQuickECDFMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		pa, pb := e.At(lo), e.At(hi)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile output lies within [min, max] of the sample.
func TestQuickQuantileBounded(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qq := math.Mod(math.Abs(q), 1)
		got := Quantile(xs, qq)
		s := Summarize(xs)
		return got >= s.Min-1e-9 && got <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonthOfAndString(t *testing.T) {
	m := MonthOf(time.Date(2014, time.July, 15, 3, 0, 0, 0, time.UTC))
	if m.Year != 2014 || m.M != time.July {
		t.Fatalf("MonthOf = %+v", m)
	}
	if m.String() != "Jul 14" {
		t.Errorf("String = %q", m.String())
	}
}

func TestMonthNextWrapsYear(t *testing.T) {
	m := Month{Year: 2016, M: time.December}.Next()
	if m.Year != 2017 || m.M != time.January {
		t.Fatalf("December.Next() = %+v", m)
	}
}

func TestMonthlySeries(t *testing.T) {
	s := NewMonthlySeries()
	jan := time.Date(2015, time.January, 5, 0, 0, 0, 0, time.UTC)
	mar := time.Date(2015, time.March, 5, 0, 0, 0, 0, time.UTC)
	s.Add(jan)
	s.Add(jan)
	s.AddN(mar, 3)
	first, last, ok := s.Span()
	if !ok {
		t.Fatal("Span on non-empty series returned !ok")
	}
	if first != (Month{2015, time.January}) || last != (Month{2015, time.March}) {
		t.Fatalf("Span = %v..%v", first, last)
	}
	dense := s.Dense(first, last)
	if len(dense) != 3 {
		t.Fatalf("Dense returned %d months", len(dense))
	}
	if dense[0].Count != 2 || dense[1].Count != 0 || dense[2].Count != 3 {
		t.Fatalf("Dense counts wrong: %+v", dense)
	}
	if s.Total() != 5 {
		t.Fatalf("Total = %d", s.Total())
	}
}

func TestMonthlySeriesEmptySpan(t *testing.T) {
	if _, _, ok := NewMonthlySeries().Span(); ok {
		t.Fatal("Span on empty series returned ok")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1, 1.5, 2, 5, 100}, []float64{1, 2, 3})
	// Bins: [1,2)=2 values (1, 1.5), [2,3)=1 value (2), [3,inf)=2 values (5, 100).
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d (0.5 should be dropped)", h.Total())
	}
}

func TestHistogramPanicsOnBadEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending edges did not panic")
		}
	}()
	NewHistogram(nil, []float64{2, 1})
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("equal sample Gini = %v, want 0", g)
	}
	g := Gini([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Errorf("concentrated sample Gini = %v, want high", g)
	}
	if !math.IsNaN(Gini(nil)) {
		t.Error("Gini(nil) should be NaN")
	}
}

func TestTopShare(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 6}
	if got := TopShare(xs, 1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("TopShare k=1 = %v", got)
	}
	if got := TopShare(xs, 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("TopShare k=n = %v", got)
	}
	if got := TopShare(xs, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("TopShare k>n = %v", got)
	}
	if TopShare(nil, 3) != 0 {
		t.Error("TopShare(nil) != 0")
	}
}

func TestMeanCI95(t *testing.T) {
	// n=5, mean 3, std sqrt(2.5): t(4)=2.776.
	xs := []float64{1, 2, 3, 4, 5}
	iv := MeanCI95(xs)
	if iv.N != 5 || math.Abs(iv.Mean-3) > 1e-12 {
		t.Fatalf("mean = %+v", iv)
	}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(iv.HalfWidth-want) > 1e-9 {
		t.Fatalf("half-width = %v, want %v", iv.HalfWidth, want)
	}
	if math.Abs((iv.High-iv.Low)/2-iv.HalfWidth) > 1e-12 {
		t.Fatal("interval not centred on the mean")
	}
	// Single observation: degenerate interval, no variance estimate.
	one := MeanCI95([]float64{7})
	if one.Low != 7 || one.High != 7 || one.HalfWidth != 0 {
		t.Fatalf("single-sample interval = %+v", one)
	}
	if !math.IsNaN(MeanCI95(nil).Mean) {
		t.Fatal("empty sample should be NaN")
	}
}

func TestTCritical95(t *testing.T) {
	if got := TCritical95(1); math.Abs(got-12.706) > 1e-9 {
		t.Errorf("df=1: %v", got)
	}
	if got := TCritical95(30); math.Abs(got-2.042) > 1e-9 {
		t.Errorf("df=30: %v", got)
	}
	if got := TCritical95(500); got != 1.96 {
		t.Errorf("df=500: %v", got)
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestLinreg(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, ok := Linreg(xs, ys)
	if !ok || math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v ok=%v", fit, ok)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	// Constant y: slope 0, R2 0 (x explains nothing).
	fit, ok = Linreg(xs, []float64{4, 4, 4, 4})
	if !ok || fit.Slope != 0 || fit.R2 != 0 {
		t.Fatalf("constant-y fit = %+v ok=%v", fit, ok)
	}
	// Degenerate inputs.
	if _, ok := Linreg([]float64{1}, []float64{2}); ok {
		t.Error("single point should not fit")
	}
	if _, ok := Linreg([]float64{2, 2}, []float64{1, 9}); ok {
		t.Error("constant x should not fit")
	}
}

func BenchmarkECDFBuild(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i * 7 % 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewECDF(xs)
	}
}
