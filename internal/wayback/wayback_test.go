package wayback

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

func day(n int) time.Time {
	return time.Date(2013, time.March, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestFirstSeen(t *testing.T) {
	a := NewArchive()
	if _, ok := a.FirstSeen("http://x.com"); ok {
		t.Fatal("empty archive has captures")
	}
	a.Add("http://x.com", day(20))
	a.Add("http://x.com", day(5))
	a.Add("http://x.com", day(10))
	first, ok := a.FirstSeen("http://x.com")
	if !ok || !first.Equal(day(5)) {
		t.Fatalf("FirstSeen = %v %v", first, ok)
	}
	snaps := a.Snapshots("http://x.com")
	if len(snaps) != 3 || !snaps[0].Equal(day(5)) || !snaps[2].Equal(day(20)) {
		t.Fatalf("Snapshots = %v", snaps)
	}
}

func TestSeenBefore(t *testing.T) {
	a := NewArchive()
	a.Add("http://x.com", day(10))
	if !a.SeenBefore("http://x.com", day(11)) {
		t.Fatal("captured day 10, cutoff day 11")
	}
	if a.SeenBefore("http://x.com", day(10)) {
		t.Fatal("strictly-before violated")
	}
	if a.SeenBefore("http://unknown.com", day(100)) {
		t.Fatal("unknown URL seen before")
	}
}

func TestNumURLs(t *testing.T) {
	a := NewArchive()
	a.Add("u1", day(1))
	a.Add("u1", day(2))
	a.Add("u2", day(1))
	if a.NumURLs() != 2 {
		t.Fatalf("NumURLs = %d", a.NumURLs())
	}
}

func TestHTTPAvailable(t *testing.T) {
	a := NewArchive()
	a.Add("http://x.com/img.jpg", day(3))
	srv := httptest.NewServer(Handler(a))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())

	ok, err := c.SeenBefore(context.Background(), "http://x.com/img.jpg", day(5))
	if err != nil || !ok {
		t.Fatalf("SeenBefore = %v %v", ok, err)
	}
	ok, err = c.SeenBefore(context.Background(), "http://x.com/img.jpg", day(2))
	if err != nil || ok {
		t.Fatalf("SeenBefore(before capture) = %v %v", ok, err)
	}
	ok, err = c.SeenBefore(context.Background(), "http://never.com", day(100))
	if err != nil || ok {
		t.Fatalf("SeenBefore(unknown) = %v %v", ok, err)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv := httptest.NewServer(Handler(NewArchive()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/available")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("missing url param = %d", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/available?url=http%3A%2F%2Fx.com&before=garbage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// "before" is only validated when the URL has captures; unknown
	// URLs short-circuit to unavailable.
	if resp.StatusCode != 200 {
		t.Fatalf("unknown url with bad before = %d", resp.StatusCode)
	}
}

func TestHTTPBadBeforeOnKnownURL(t *testing.T) {
	a := NewArchive()
	a.Add("http://x.com", day(1))
	srv := httptest.NewServer(Handler(a))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/available?url=http%3A%2F%2Fx.com&before=garbage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad before param = %d", resp.StatusCode)
	}
}

func TestConcurrentAddAndQuery(t *testing.T) {
	a := NewArchive()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			a.Add("http://x.com", day(i%50))
		}
	}()
	for i := 0; i < 500; i++ {
		a.SeenBefore("http://x.com", day(25))
	}
	<-done
	if len(a.Snapshots("http://x.com")) != 500 {
		t.Fatal("lost snapshots under concurrency")
	}
}
