package sweep

import (
	"context"
	"sync"

	"repro/internal/synth"
)

// WorldCache shares generated synth worlds across sweep cells. A cell
// is a full study, but its world depends only on the canonical synth
// config (seed, scale, image size) — so cells that vary annotation
// size, stage workers or crawl concurrency regenerate byte-identical
// worlds. PR 3's sweeps paid that generation per cell; the cache pays
// it once per distinct config and hands every other cell the same
// immutable *synth.World (safe: a study run never mutates its world —
// DESIGN.md §3, §8).
//
// The cache is size-bounded: beyond Max distinct configs the least
// recently used world is dropped, so a long scale ladder cannot pin
// every generated world in memory. Generation is deduplicated —
// concurrent cells asking for the same config block on one generate.
// Safe for concurrent use.
type WorldCache struct {
	mu      sync.Mutex
	max     int
	entries map[synth.Config]*worldEntry
	// order is the LRU list, most recently used last. Sweeps hold a
	// handful of configs, so a slice beats list bookkeeping.
	order []synth.Config

	generated int
}

// worldEntry dedups generation: the first goroutine to need a config
// generates inside the Once while later ones block on it.
type worldEntry struct {
	once  sync.Once
	world *synth.World
}

// DefaultWorldCacheSize bounds the cache when NewWorldCache is given
// no limit: enough for a scale ladder's distinct configs, small
// enough that worlds from past sweeps don't accumulate.
const DefaultWorldCacheSize = 4

// NewWorldCache returns a cache holding at most max distinct worlds
// (DefaultWorldCacheSize if max <= 0).
func NewWorldCache(max int) *WorldCache {
	if max <= 0 {
		max = DefaultWorldCacheSize
	}
	return &WorldCache{max: max, entries: make(map[synth.Config]*worldEntry)}
}

// Get returns the generated world for the config, generating it on
// first use. Configs are canonicalized first, so sparsely-written and
// fully-written configs share an entry exactly when core.NewStudy
// would build the same world for both.
func (wc *WorldCache) Get(cfg synth.Config) *synth.World {
	//lint:ignore ctxhygiene context-free convenience wrapper; traced sweeps use GetContext.
	return wc.GetContext(context.Background(), cfg)
}

// GetContext is Get under a caller context: a cache miss generates
// with cfg's worker count, tracing into ctx. The cache key is the
// canonical config — Workers is an execution knob, never part of the
// key, so cells differing only in worker count share one world.
func (wc *WorldCache) GetContext(ctx context.Context, cfg synth.Config) *synth.World {
	key := cfg.Canonical()
	wc.mu.Lock()
	e, ok := wc.entries[key]
	if ok {
		wc.touch(key)
	} else {
		e = &worldEntry{}
		wc.entries[key] = e
		wc.order = append(wc.order, key)
		for len(wc.order) > wc.max {
			evict := wc.order[0]
			wc.order = wc.order[1:]
			delete(wc.entries, evict)
		}
	}
	wc.mu.Unlock()
	e.once.Do(func() {
		// Generate with the caller's Workers knob (the canonical key
		// has it zeroed); the generated world is identical either way.
		gcfg := key
		gcfg.Workers = cfg.Workers
		e.world = synth.GenerateContext(ctx, gcfg)
		wc.mu.Lock()
		wc.generated++
		wc.mu.Unlock()
	})
	return e.world
}

// touch moves key to the most-recently-used end of the LRU order.
func (wc *WorldCache) touch(key synth.Config) {
	for i, k := range wc.order {
		if k == key {
			copy(wc.order[i:], wc.order[i+1:])
			wc.order[len(wc.order)-1] = key
			return
		}
	}
}

// Len returns the number of cached worlds.
func (wc *WorldCache) Len() int {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return len(wc.entries)
}

// Generated returns how many worlds the cache has built — the measure
// of work the cache saved a sweep (cells minus Generated, for cells
// sharing configs).
func (wc *WorldCache) Generated() int {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.generated
}
