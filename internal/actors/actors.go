// Package actors implements §6 of the study: the overview of the ~73k
// actors discussing eWhoring (Table 8, Figure 4), the five rank-based
// key-actor selections with their intersections and group aggregates
// (Tables 9 and 10), and the interest-evolution analysis before /
// during / after eWhoring (Figure 5).
package actors

import (
	"sort"
	"time"

	"repro/internal/forum"
)

// Profile aggregates one actor's activity relative to eWhoring.
type Profile struct {
	Actor forum.ActorID
	// EwPosts counts posts inside eWhoring-related threads.
	EwPosts int
	// TotalPosts counts all posts anywhere on the forum.
	TotalPosts int
	// FirstEw/LastEw bound the actor's eWhoring posting.
	FirstEw, LastEw time.Time
	// FirstAny/LastAny bound all activity.
	FirstAny, LastAny time.Time
}

// PctEwhoring returns the percentage of the actor's posts that are
// eWhoring-related.
func (p *Profile) PctEwhoring() float64 {
	if p.TotalPosts == 0 {
		return 0
	}
	return 100 * float64(p.EwPosts) / float64(p.TotalPosts)
}

// DaysBefore returns days of forum activity before the first
// eWhoring post.
func (p *Profile) DaysBefore() float64 {
	return p.FirstEw.Sub(p.FirstAny).Hours() / 24
}

// DaysAfter returns days of forum activity after the last eWhoring
// post.
func (p *Profile) DaysAfter() float64 {
	return p.LastAny.Sub(p.LastEw).Hours() / 24
}

// BuildProfiles computes a profile for every actor with at least one
// post in the given eWhoring threads.
func BuildProfiles(store *forum.Store, ewThreads []forum.ThreadID) map[forum.ActorID]*Profile {
	profiles := make(map[forum.ActorID]*Profile)
	for _, tid := range ewThreads {
		for _, post := range store.PostsInThread(tid) {
			p, ok := profiles[post.Author]
			if !ok {
				p = &Profile{Actor: post.Author, FirstEw: post.Created, LastEw: post.Created}
				profiles[post.Author] = p
			}
			p.EwPosts++
			if post.Created.Before(p.FirstEw) {
				p.FirstEw = post.Created
			}
			if post.Created.After(p.LastEw) {
				p.LastEw = post.Created
			}
		}
	}
	for _, p := range profiles {
		first, last, ok := store.ActivitySpan(p.Actor)
		if !ok {
			continue
		}
		p.FirstAny, p.LastAny = first, last
		p.TotalPosts = len(store.PostsByActor(p.Actor))
	}
	return profiles
}

// BucketRow is one row of Table 8: actors grouped by eWhoring post
// count. AvgPosts is the mean number of eWhoring posts per actor (the
// paper's "Avg. posts" column: 626k posts over 73k actors ≈ 8.8).
type BucketRow struct {
	MinPosts      int
	Actors        int
	AvgPosts      float64 // mean eWhoring posts per actor
	PctEwhoring   float64 // mean percentage of posts in eWhoring
	AvgDaysBefore float64
	AvgDaysAfter  float64
}

// Table8Thresholds are the paper's bucket minima.
var Table8Thresholds = []int{1, 10, 50, 100, 200, 500, 1000}

// Buckets computes Table 8 over the profiles.
func Buckets(profiles map[forum.ActorID]*Profile, thresholds []int) []BucketRow {
	if len(thresholds) == 0 {
		thresholds = Table8Thresholds
	}
	ordered := sortedProfiles(profiles)
	rows := make([]BucketRow, len(thresholds))
	for i, min := range thresholds {
		var n int
		var posts, pct, before, after float64
		for _, p := range ordered {
			if p.EwPosts < min {
				continue
			}
			n++
			posts += float64(p.EwPosts)
			pct += p.PctEwhoring()
			before += p.DaysBefore()
			after += p.DaysAfter()
		}
		row := BucketRow{MinPosts: min, Actors: n}
		if n > 0 {
			row.AvgPosts = posts / float64(n)
			row.PctEwhoring = pct / float64(n)
			row.AvgDaysBefore = before / float64(n)
			row.AvgDaysAfter = after / float64(n)
		}
		rows[i] = row
	}
	return rows
}

// Samples extracts the per-actor series behind Figure 4 for actors
// meeting a minimum eWhoring post count.
type Samples struct {
	Posts      []float64
	Pct        []float64
	DaysBefore []float64
	DaysAfter  []float64
}

// CollectSamples gathers Figure 4 samples for a bucket, in actor-ID
// order so the series are reproducible.
func CollectSamples(profiles map[forum.ActorID]*Profile, minPosts int) Samples {
	var s Samples
	for _, p := range sortedProfiles(profiles) {
		if p.EwPosts < minPosts {
			continue
		}
		s.Posts = append(s.Posts, float64(p.EwPosts))
		s.Pct = append(s.Pct, p.PctEwhoring())
		s.DaysBefore = append(s.DaysBefore, p.DaysBefore())
		s.DaysAfter = append(s.DaysAfter, p.DaysAfter())
	}
	return s
}

// sortedProfiles returns the profiles in actor-ID order. Folds over
// profiles must not iterate the map directly: float accumulation is
// order-sensitive, and determinism in the seed is a study invariant.
func sortedProfiles(profiles map[forum.ActorID]*Profile) []*Profile {
	out := make([]*Profile, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Actor < out[j].Actor })
	return out
}

// topK returns the k highest-scoring actors (score desc, ID asc).
func topK(scores map[forum.ActorID]float64, k int) []forum.ActorID {
	type pair struct {
		a forum.ActorID
		v float64
	}
	pairs := make([]pair, 0, len(scores))
	for a, v := range scores {
		pairs = append(pairs, pair{a, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].a < pairs[j].a
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([]forum.ActorID, k)
	for i := range out {
		out[i] = pairs[i].a
	}
	return out
}
