// Fixture: the memo-key purity rule — key functions wired into
// artefact.Node must not read Workers/CrawlConcurrency knobs,
// including through in-package call chains.
package keys

import (
	"strconv"

	"artefact"
)

type Options struct {
	Seed             uint64
	Scale            float64
	Workers          int
	CrawlConcurrency int
}

type Study struct{ Opts Options }

// worldKey covers exactly the semantic parameters: clean.
func (s *Study) worldKey() string {
	return strconv.FormatUint(s.Opts.Seed, 10) + "|" +
		strconv.FormatFloat(s.Opts.Scale, 'g', -1, 64)
}

// poisonedKey folds an execution knob into the key; it is reached
// through a method-expression Key below.
func (s *Study) poisonedKey() string {
	return s.worldKey() + "|" + strconv.Itoa(s.Opts.Workers) // want "execution knob Workers"
}

var clean = artefact.Node[*Study]{
	Name: "select",
	Key:  func(s *Study) string { return s.worldKey() },
}

var poisoned = artefact.Node[*Study]{
	Name: "crawl",
	Key:  (*Study).poisonedKey,
}

// graph wires a local closure as a key; the knob read inside it is
// found through the local binding.
func graph() []artefact.Node[*Study] {
	ck := func(s *Study) string {
		return strconv.Itoa(s.Opts.CrawlConcurrency) // want "execution knob CrawlConcurrency"
	}
	return []artefact.Node[*Study]{
		{Name: "fetch", Key: ck},
	}
}

// sizes reads a knob OUTSIDE any key closure: sizing a worker pool is
// exactly what the knobs are for, so this is clean.
func sizes(s *Study) int { return s.Opts.Workers }
