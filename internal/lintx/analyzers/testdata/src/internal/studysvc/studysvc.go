// Fixture: the service spine logs through logx; raw stdout/stderr
// printers lose the request ID and the JSON structure.
package studysvc

import (
	"fmt"
	"log"
	"os"
)

func handle() {
	fmt.Println("request started")     // want "fmt.Println in internal/studysvc"
	fmt.Printf("run %s done\n", "r-1") // want "fmt.Printf in internal/studysvc"
	log.Printf("shedding %d", 3)       // want "log.Printf in internal/studysvc"
	log.Fatalf("pool wedged")          // want "log.Fatalf in internal/studysvc"
	fmt.Fprintf(os.Stderr, "explicit writer is fine\n")
	_ = fmt.Sprintf("building a value is fine: %d", 1)
}

// sanctioned shows the documented escape hatch.
func sanctioned() {
	//lint:ignore logfield fixture demonstrates a documented pre-logger boot message
	fmt.Println("boot")
}
