// Package ocr is the reproduction's stand-in for the Tesseract OCR
// engine: it recognises text rendered with the imagex glyph font and
// reports the number of words found, which is the only output
// Algorithm 1 consumes ("the Tesseract software, which outputs the
// number of words recognised in an image").
//
// The engine genuinely reads pixels: it binarises the raster, slides
// the font's 5x7 templates across candidate positions, accepts exact
// template matches, and groups matched glyphs into words by horizontal
// gaps. Text screenshots therefore score high, model photos score
// zero, and noisy or dark images score near zero — the same behaviour
// contour the real pipeline relies on.
package ocr

import (
	"sort"
	"strings"

	"repro/internal/imagex"
)

// inkThreshold binarises pixels: values below it count as ink.
const inkThreshold = 128

// wordGap is the minimum pixel gap between glyphs that starts a new
// word. Glyphs within a word are 1 blank column apart (advance 6,
// width 5); a space character adds a full 6-pixel advance.
const wordGap = 6

// template is a prepared glyph: its ink mask (1 = ink, matching the
// binarised raster's byte representation) and a quick-reject probe
// (the first ink pixel).
type template struct {
	r       rune
	mask    [imagex.GlyphH][imagex.GlyphW]byte
	probeX  int
	probeY  int
	inkArea int
}

var templates = buildTemplates()

func buildTemplates() []template {
	runes := imagex.GlyphRunes()
	sort.Slice(runes, func(i, j int) bool { return runes[i] < runes[j] })
	out := make([]template, 0, len(runes))
	for _, r := range runes {
		g, _ := imagex.Glyph(r)
		t := template{r: r, probeX: -1}
		for y := 0; y < imagex.GlyphH; y++ {
			for x := 0; x < imagex.GlyphW; x++ {
				if g[y][x] == '#' {
					t.mask[y][x] = 1
					t.inkArea++
					if t.probeX < 0 {
						t.probeX, t.probeY = x, y
					}
				}
			}
		}
		if t.inkArea > 0 {
			out = append(out, t)
		}
	}
	return out
}

// Glyph is one recognised character with its position.
type Glyph struct {
	R    rune
	X, Y int
}

// Result is the outcome of recognising an image.
type Result struct {
	Glyphs []Glyph
	Words  int
	Text   string
}

// WordCount returns just the number of words recognised in the image.
func WordCount(im *imagex.Image) int { return Recognize(im).Words }

// Recognize scans the image for font glyphs and groups them into
// words and lines.
func Recognize(im *imagex.Image) Result {
	if im.W <= 0 || im.H <= 0 {
		return Result{}
	}
	// The ink mask is pooled, so this function owns its lifetime:
	// acquire here, fill via binariseInto, release on every exit
	// (poolpair forbids pooled rasters crossing function boundaries).
	inkMask := imagex.GetImage(im.W, im.H)
	defer imagex.PutImage(inkMask)
	binariseInto(inkMask, im)
	ink := inkMask.Pix
	rowHasInk := make([]bool, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			if ink[y*im.W+x] != 0 {
				rowHasInk[y] = true
				break
			}
		}
	}

	var cands []candidate
	for y := 0; y+imagex.GlyphH <= im.H; y++ {
		// A glyph needs ink somewhere in its 7-row window.
		windowHasInk := false
		for dy := 0; dy < imagex.GlyphH; dy++ {
			if rowHasInk[y+dy] {
				windowHasInk = true
				break
			}
		}
		if !windowHasInk {
			continue
		}
		for x := 0; x+imagex.GlyphW <= im.W; {
			if g, area, ok := matchAt(im, ink, x, y); ok {
				cands = append(cands, candidate{Glyph{R: g, X: x, Y: y}, area})
				x += imagex.GlyphW + 1
			} else {
				x++
			}
		}
	}

	glyphs := resolve(cands)
	words, text := group(glyphs)
	return Result{Glyphs: glyphs, Words: words, Text: text}
}

// binariseInto writes the ink mask of im into the caller-owned dst
// (same dimensions): 1 where the pixel reads as ink, 0 elsewhere.
func binariseInto(dst, im *imagex.Image) {
	for i, p := range im.Pix {
		if p < inkThreshold {
			dst.Pix[i] = 1
		} else {
			dst.Pix[i] = 0
		}
	}
}

// candidate is a template match before overlap resolution.
type candidate struct {
	g    Glyph
	area int
}

// matchAt tries every template at position (x, y) and returns the
// matched rune and its ink area. A match is exact: every '#' cell is
// ink and every '.' cell is not.
func matchAt(im *imagex.Image, ink []byte, x, y int) (rune, int, bool) {
	w := im.W
	for i := range templates {
		t := &templates[i]
		// Quick reject on the first ink pixel.
		if ink[(y+t.probeY)*w+x+t.probeX] == 0 {
			continue
		}
		ok := true
		for dy := 0; dy < imagex.GlyphH && ok; dy++ {
			row := (y + dy) * w
			for dx := 0; dx < imagex.GlyphW; dx++ {
				if t.mask[dy][dx] != ink[row+x+dx] {
					ok = false
					break
				}
			}
		}
		if ok {
			return t.r, t.inkArea, true
		}
	}
	return 0, 0, false
}

// resolve removes overlapping candidate matches. Sparse punctuation
// templates ('.', '-') can ghost-match across line boundaries inside
// another glyph's cell; preferring the candidate with the larger ink
// area keeps the true glyph.
func resolve(cands []candidate) []Glyph {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].area != cands[j].area {
			return cands[i].area > cands[j].area
		}
		if cands[i].g.Y != cands[j].g.Y {
			return cands[i].g.Y < cands[j].g.Y
		}
		return cands[i].g.X < cands[j].g.X
	})
	var accepted []Glyph
	for _, c := range cands {
		overlap := false
		for _, a := range accepted {
			if abs(c.g.Y-a.Y) < imagex.GlyphH && abs(c.g.X-a.X) < imagex.GlyphW {
				overlap = true
				break
			}
		}
		if !overlap {
			accepted = append(accepted, c.g)
		}
	}
	sort.Slice(accepted, func(i, j int) bool {
		if accepted[i].Y != accepted[j].Y {
			return accepted[i].Y < accepted[j].Y
		}
		return accepted[i].X < accepted[j].X
	})
	return accepted
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// group splits recognised glyphs into words (same line, gap below
// wordGap+GlyphW) and reconstructs the text.
func group(glyphs []Glyph) (int, string) {
	if len(glyphs) == 0 {
		return 0, ""
	}
	words := 0
	var sb strings.Builder
	prev := Glyph{X: -1 << 30, Y: -1 << 30}
	for _, g := range glyphs {
		newLine := g.Y != prev.Y
		newWord := newLine || g.X-prev.X > imagex.GlyphW+wordGap
		if newWord {
			words++
			if sb.Len() > 0 {
				if newLine {
					sb.WriteByte('\n')
				} else {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteRune(g.R)
		prev = g
	}
	return words, sb.String()
}
