package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkStudyRunSequential-8   	       1	 244837123 ns/op
BenchmarkStudyRunConcurrent-8   	       1	 199102456 ns/op	  512 B/op	       3 allocs/op
PASS
ok  	repro	1.234s
`

func TestParseBenchOutput(t *testing.T) {
	art, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if art.Goos != "linux" || art.Goarch != "amd64" || art.Pkg != "repro" {
		t.Errorf("header = %+v", art)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(art.Benchmarks))
	}
	seq := art.Benchmarks[0]
	if seq.Name != "StudyRunSequential" || seq.Procs != 8 || seq.Iterations != 1 || seq.NsPerOp != 244837123 {
		t.Errorf("sequential = %+v", seq)
	}
	conc := art.Benchmarks[1]
	if conc.NsPerOp != 199102456 || conc.Extra["B/op"] != 512 || conc.Extra["allocs/op"] != 3 {
		t.Errorf("concurrent = %+v", conc)
	}
	// Raw lines reconstruct benchstat-compatible input.
	if !strings.HasPrefix(seq.Raw, "BenchmarkStudyRunSequential-8") || !strings.Contains(seq.Raw, "ns/op") {
		t.Errorf("raw line mangled: %q", seq.Raw)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber 5 ns/op\n")); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkNoNs-8 1 77 MB/s\n")); err == nil {
		t.Error("line without ns/op accepted")
	}
}
