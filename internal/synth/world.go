package synth

import (
	"context"
	"time"

	"repro/internal/domaincls"
	"repro/internal/earnings"
	"repro/internal/forum"
	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/photodna"
	"repro/internal/randx"
	"repro/internal/reverse"
	"repro/internal/tracex"
	"repro/internal/wayback"
)

// ThreadKind is the ground-truth type of a generated thread.
type ThreadKind int

// Thread kinds.
const (
	// KindDiscussion: general eWhoring chatter.
	KindDiscussion ThreadKind = iota
	// KindTOP: a Thread Offering Packs.
	KindTOP
	// KindRequest: asking for packs/advice (the classifier must not
	// confuse these with TOPs).
	KindRequest
	// KindTutorial: guides and how-tos.
	KindTutorial
	// KindEarnings: "post your earnings" threads carrying proofs.
	KindEarnings
	// KindExchange: Currency Exchange board threads ([H]/[W]).
	KindExchange
	// KindBackground: non-eWhoring filler threads in other boards.
	KindBackground
)

// String names the kind.
func (k ThreadKind) String() string {
	switch k {
	case KindTOP:
		return "TOP"
	case KindRequest:
		return "request"
	case KindTutorial:
		return "tutorial"
	case KindEarnings:
		return "earnings"
	case KindExchange:
		return "exchange"
	case KindBackground:
		return "background"
	default:
		return "discussion"
	}
}

// TOPTruth is the ground truth of one Thread Offering Packs.
type TOPTruth struct {
	// Free: the links are openly posted in the first post; locked
	// TOPs require replies or payment and expose preview links only.
	Free bool
	// Model indexes World.Models.
	Model int
	// PreviewURLs and PackURLs are the links embedded in the post.
	PreviewURLs []string
	PackURLs    []string
	// Flagged: the pack contains a hashlisted (child-abuse-flagged)
	// image.
	Flagged bool
}

// ThreadTruth is the generator's ground truth for a thread.
type ThreadTruth struct {
	Kind ThreadKind
	TOP  *TOPTruth
}

// ProofKind classifies what a proof-link actually points to.
type ProofKind int

// Proof link payloads.
const (
	// ProofEarnings: a parseable payment-dashboard screenshot.
	ProofEarnings ProofKind = iota
	// ProofChat: a chat screenshot (not a proof, SFV).
	ProofChat
	// ProofPreview: an indecent pack preview posted in an earnings
	// thread (filtered by the NSFV gate).
	ProofPreview
	// ProofDead: the link rotted.
	ProofDead
)

// ProofTruth records one proof-of-earnings link and what is behind it.
type ProofTruth struct {
	URL    string
	Thread forum.ThreadID
	Actor  forum.ActorID
	Date   time.Time
	Kind   ProofKind
	// Truth is the structured proof when Kind == ProofEarnings.
	Truth earnings.Proof
}

// ActorTruth carries the generator's per-actor ground truth.
type ActorTruth struct {
	ID         forum.ActorID
	Registered time.Time
	// EwStart/EwEnd bound the actor's eWhoring phase.
	EwStart, EwEnd time.Time
	// FirstActivity/LastActivity bound all forum activity.
	FirstActivity, LastActivity time.Time
}

// World is the generated study universe.
type World struct {
	Config Config

	Store     *forum.Store
	Web       *hosting.World
	Reverse   *reverse.Index
	Wayback   *wayback.Archive
	Directory *domaincls.Directory
	HashList  *photodna.HashList

	// Forum handles.
	Forums     []forum.ForumID
	HF         forum.ForumID
	HFEWhoring forum.BoardID
	HFCurrency forum.BoardID
	HFBragging forum.BoardID
	HFLounge   forum.BoardID

	// EWhoring lists the ground-truth eWhoring-related threads per
	// forum (the paper's selection: keyword headings + the Hackforums
	// eWhoring board).
	EWhoring map[forum.ForumID][]forum.ThreadID
	// Truth maps every generated thread to its ground truth.
	Truth map[forum.ThreadID]*ThreadTruth
	// Actors maps per-actor ground truth.
	Actors map[forum.ActorID]*ActorTruth

	// Models is the set of synthetic "models" whose images circulate.
	Models []*Model
	// Proofs records every proof link with its ground truth.
	Proofs []ProofTruth
	// DomainRegion assigns each web domain a hosting region.
	DomainRegion map[string]photodna.Region

	// Counters for calibration checks.
	NumPreviewLinks int
	NumPackLinks    int
	NumFlaggedTOPs  int

	// Generation-internal state.
	flaggedQueue  []int // model indices still to be placed in TOPs
	pendingProofs []int // w.Proofs indices awaiting their thread ID
	urlCounter    int
	// jobs is the parallel generation executor (exec.go); nil on the
	// inline path and always nil by the time Generate returns, so
	// DeepEqual across worker counts compares pure world state.
	jobs *jobRunner
}

// Generate builds the world, fanning image work out over
// cfg.Workers goroutines (GOMAXPROCS when unset). The result is
// bit-identical to GenerateSequential for every worker count.
func Generate(cfg Config) *World {
	//lint:ignore ctxhygiene Generate is the context-free convenience entry; traced callers use GenerateContext.
	return GenerateContext(context.Background(), cfg)
}

// GenerateContext is Generate under a caller context: any tracer in
// ctx records per-generator child spans (hosting/web/forums), and
// cancelling ctx abandons outstanding image jobs — the half-built
// world must then be discarded.
func GenerateContext(ctx context.Context, cfg Config) *World {
	workers := cfg.EffectiveWorkers()
	w := newWorld(cfg)
	if workers > 1 {
		w.jobs = startJobRunner(ctx, workers)
	}
	w.generate(ctx)
	if w.jobs != nil {
		w.jobs.close()
		w.jobs = nil
	}
	return w
}

// GenerateSequential is the single-goroutine reference: the exact
// walk Generate performs, with every image job executed inline at its
// submission point. Generate must produce a DeepEqual world for every
// worker count; the equivalence test holds it to that (the same
// pattern core.RunSequential pins for study results).
func GenerateSequential(cfg Config) *World {
	w := newWorld(cfg)
	//lint:ignore ctxhygiene the sequential reference runs no goroutines and records no spans; there is nothing to cancel or trace.
	w.generate(context.Background())
	return w
}

// newWorld allocates the empty world and pre-sizes the forum store
// from the Table 1 calibration (capacity is invisible to DeepEqual,
// so both Generate paths share the estimate).
func newWorld(cfg Config) *World {
	cfg = cfg.Canonical()
	w := &World{
		Config:       cfg,
		Store:        forum.NewStore(),
		Web:          hosting.NewWorld(),
		Reverse:      reverse.NewIndex(0),
		Wayback:      wayback.NewArchive(),
		Directory:    domaincls.NewDirectory(),
		HashList:     photodna.NewHashList(0),
		EWhoring:     make(map[forum.ForumID][]forum.ThreadID),
		Truth:        make(map[forum.ThreadID]*ThreadTruth),
		Actors:       make(map[forum.ActorID]*ActorTruth),
		DomainRegion: make(map[string]photodna.Region),
	}
	var threads, posts, actors int
	for _, spec := range paperForums {
		nThreads := cfg.scaled(spec.Threads, 4)
		threads += nThreads
		posts += cfg.scaled(spec.Posts, nThreads*2)
		actors += cfg.scaled(spec.Actors, 25)
	}
	// Exchange threads, background host threads and their replies ride
	// on top of the eWhoring corpus; every thread also carries a first
	// post. The estimate only needs the right order of magnitude — the
	// win is skipping the doubling copies of a 600k-element post slice.
	threads += cfg.scaled(9066+6000, 13)
	posts += threads + posts/2
	w.Store.Reserve(threads, posts, actors)
	return w
}

// generate runs the sequential random walk (see exec.go for how image
// work leaves it).
func (w *World) generate(ctx context.Context) {
	root := randx.New(w.Config.Seed)
	_, hostSpan := tracex.StartSpan(ctx, "synth hosting")
	w.genHostingSites()
	hostSpan.End()
	if !w.Config.SkipImages {
		_, webSpan := tracex.StartSpan(ctx, "synth web")
		w.genWeb(root.SplitLabeled("web"))
		webSpan.End()
	}
	_, forumSpan := tracex.StartSpan(ctx, "synth forums")
	w.genForums(root.SplitLabeled("forums"))
	forumSpan.End()
}

// ModelImage regenerates the i-th image of a model (images are not
// stored; they are deterministic in their parameters).
func (w *World) ModelImage(m *Model, i int) *imagex.Image {
	mi := m.Images[i]
	return imagex.GenModel(m.Seed, mi.Variant, mi.Pose, w.Config.ImageSize)
}

// SiteTypeOf maps a domain's ground-truth class to the IWF site-type
// vocabulary used in hotline reports.
func (w *World) SiteTypeOf(domain string) photodna.SiteType {
	switch w.Directory.Class(domain) {
	case domaincls.ClassPhotoSharing:
		return photodna.SiteImageSharing
	case domaincls.ClassForum:
		return photodna.SiteForum
	case domaincls.ClassBlog:
		return photodna.SiteBlog
	case domaincls.ClassSocialNetwork:
		return photodna.SiteSocialNetwork
	case domaincls.ClassEntertainment:
		return photodna.SiteVideoChannel
	default:
		return photodna.SiteRegular
	}
}

// RegionOf returns the hosting region of a domain (unknown domains are
// North America, the modal region).
func (w *World) RegionOf(domain string) photodna.Region {
	if r, ok := w.DomainRegion[domain]; ok {
		return r
	}
	return photodna.RegionNorthAmerica
}

// EWhoringAll returns every ground-truth eWhoring thread across
// forums, in ID order.
func (w *World) EWhoringAll() []forum.ThreadID {
	set := forum.NewThreadSet()
	for _, ids := range w.EWhoring {
		set.Add(ids...)
	}
	return set.Sorted()
}

// LabeledThread pairs a thread with its TOP ground truth, for
// building the annotated training corpus.
type LabeledThread struct {
	Thread forum.ThreadID
	IsTOP  bool
}

// AnnotationSample reproduces the paper's manual annotation: n
// threads sampled from the eWhoring corpus, enriched so that roughly
// 17.5% are TOPs (175 of the paper's 1 000). Deterministic in seed.
func (w *World) AnnotationSample(n int, seed uint64) []LabeledThread {
	rng := randx.New(seed)
	var tops, rest []forum.ThreadID
	for _, tid := range w.EWhoringAll() {
		if t := w.Truth[tid]; t != nil && t.Kind == KindTOP {
			tops = append(tops, tid)
		} else {
			rest = append(rest, tid)
		}
	}
	wantTops := int(0.175*float64(n) + 0.5)
	if wantTops > len(tops) {
		wantTops = len(tops)
	}
	wantRest := n - wantTops
	if wantRest > len(rest) {
		wantRest = len(rest)
	}
	out := make([]LabeledThread, 0, wantTops+wantRest)
	for _, i := range rng.Perm(len(tops))[:wantTops] {
		out = append(out, LabeledThread{Thread: tops[i], IsTOP: true})
	}
	for _, i := range rng.Perm(len(rest))[:wantRest] {
		out = append(out, LabeledThread{Thread: rest[i], IsTOP: false})
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
