// Command benchjson converts `go test -bench` text output into a JSON
// benchmark artifact. CI runs the StudyRun smoke pair through it and
// uploads BENCH_pipeline.json on every push, so the perf trajectory of
// the stage engine accumulates run over run.
//
// Each entry keeps the raw benchmark line verbatim: joining the `raw`
// fields of two artifacts reconstructs files benchstat accepts, so the
// JSON is both machine-queryable and benchstat-parseable.
//
// Usage:
//
//	go test -run='^$' -bench=StudyRun -benchtime=1x . | benchjson [-out FILE]
//	benchjson -in bench.txt -out BENCH_pipeline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark without the "Benchmark" prefix or -P suffix.
	Name string `json:"name"`
	// Procs is GOMAXPROCS at run time (the -P suffix; 1 if absent).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Extra holds any further unit pairs (B/op, allocs/op, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
	// Raw is the untouched benchmark line, so the artifact can be
	// reassembled into benchstat input.
	Raw string `json:"raw"`
}

// Artifact is the output document.
type Artifact struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "benchmark text input (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	art, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(art.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads `go test -bench` output: header key: value lines, then
// result lines of the form
//
//	BenchmarkName-8   	      10	 123456789 ns/op	[more unit pairs]
func parse(r io.Reader) (*Artifact, error) {
	art := &Artifact{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			art.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			art.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			art.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			art.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			art.Benchmarks = append(art.Benchmarks, b)
		}
	}
	return art, sc.Err()
}

func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	b := Benchmark{Raw: line, Procs: 1}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			b.Procs = p
			name = name[:i]
		}
	}
	b.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b.Iterations = iters
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value in %q: %w", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Extra == nil {
			b.Extra = make(map[string]float64)
		}
		b.Extra[unit] = v
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, fmt.Errorf("no ns/op in %q", line)
	}
	return b, nil
}
