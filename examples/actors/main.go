// Actors: the §6 social-network analysis — actor buckets, key-actor
// selection across five criteria, their overlaps, and the
// gaming→market interest shift.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/actors"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	study := core.NewStudy(core.Options{
		Synth: synth.Config{Seed: 23, Scale: 0.03},
	})
	defer study.Close()
	ctx := context.Background()

	ew := study.SelectEWhoring()
	cls, err := study.TrainAndExtract(ew)
	if err != nil {
		log.Fatal(err)
	}
	earn := study.AnalyzeEarnings(ctx, ew)
	res := study.AnalyzeActors(ew, cls.Extract.TOPs, earn.Proofs)

	fmt.Println("=== §6 Actor analysis ===")
	fmt.Println("Table 8 buckets:")
	for _, row := range res.Table8 {
		fmt.Printf("  >=%-5d actors=%-6d avg_posts=%-8.1f %%ew=%-5.1f before=%-6.1f after=%.1f\n",
			row.MinPosts, row.Actors, row.AvgPosts, row.PctEwhoring,
			row.AvgDaysBefore, row.AvgDaysAfter)
	}

	fmt.Printf("\nkey actors: %d across %d groups\n", len(res.Key.All), len(res.Key.Members))
	for _, g := range actors.Groups {
		fmt.Printf("  %-5s %d members\n", g, len(res.Key.Members[g]))
	}

	fmt.Println("\ngroup overlaps (Table 9):")
	for i, g := range actors.Groups {
		for j, h := range actors.Groups {
			if j <= i {
				continue
			}
			if n := res.Table9[g][h]; n > 0 {
				fmt.Printf("  %s ∩ %s = %d\n", g, h, n)
			}
		}
	}

	fmt.Println("\ninterest evolution (Figure 5):")
	for _, phase := range []actors.InterestPhase{actors.PhaseBefore, actors.PhaseDuring, actors.PhaseAfter} {
		prof := res.Fig5[phase]
		fmt.Printf("  %-7s gaming=%-5.1f hacking=%-5.1f market=%-5.1f money=%-5.1f common=%.1f\n",
			phase, prof["Gaming"], prof["Hacking"], prof["Market"], prof["Money"], prof["Common"])
	}
}
