package studysvc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/sweep"
)

// The sweep endpoints run a whole scenario sweep server-side:
//
//	POST /v1/sweep        run a sweep; body: a sweep.Spec ({"preset":...} or {"grid":...})
//	GET  /v1/sweep/{id}   fetch a sweep by id (wait=true blocks)
//
// Every cell goes through the same getOrStart path as POST /v1/study,
// so a server-side sweep exercises — and benefits from — the worker
// pool, in-flight coalescing and the LRU result cache: cells another
// client already ran are cache hits, identical cells in one sweep
// coalesce, and study concurrency stays bounded no matter how large
// the grid is.

// serviceBackend adapts the service's own run table to sweep.Backend.
type serviceBackend struct {
	svc *Service
}

// RunCell routes one sweep cell through getOrStart and waits for the
// run to finish. Cells use blocking admission (block=true): a sweep's
// concurrency is already bounded by its parallelism, so its cells wait
// for pool slots instead of being shed — external HTTP traffic still
// sheds around them.
func (b serviceBackend) RunCell(ctx context.Context, c sweep.Cell) (sweep.CellResult, error) {
	r, cached, err := b.svc.getOrStart(ctx, fromCell(c), true)
	if err != nil {
		return sweep.CellResult{}, err
	}
	select {
	case <-r.done:
	case <-ctx.Done():
		return sweep.CellResult{}, ctx.Err()
	}
	if r.status != StatusDone {
		return sweep.CellResult{}, fmt.Errorf("study %s failed: %s", r.id, r.errMsg)
	}
	return sweep.CellResult{Summary: *r.summary, Elapsed: r.elapsed, Cached: cached}, nil
}

// SweepEnvelope is the wire form of one sweep run.
type SweepEnvelope struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Name   string `json:"name"`
	// CellsPlanned is known from submission time, before the result.
	CellsPlanned int           `json:"cells_planned"`
	Error        string        `json:"error,omitempty"`
	Result       *sweep.Result `json:"result,omitempty"`
}

// sweepRun is one server-side sweep execution and its lifecycle.
type sweepRun struct {
	id    string
	name  string
	cells []sweep.Cell
	done  chan struct{} // closed when the sweep finishes

	// Written once before done closes, read-only after.
	result *sweep.Result
}

func (r *sweepRun) envelope() SweepEnvelope {
	env := SweepEnvelope{ID: r.id, Name: r.name, CellsPlanned: len(r.cells)}
	select {
	case <-r.done:
		env.Status = StatusDone
		env.Result = r.result
	default:
		env.Status = StatusRunning
	}
	return env
}

// startSweep registers and launches a sweep run.
func (s *Service) startSweep(name string, cells []sweep.Cell, parallelism int) *sweepRun {
	s.mu.Lock()
	s.nextSweep++
	r := &sweepRun{
		id:    "sw-" + strconv.Itoa(s.nextSweep),
		name:  name,
		cells: cells,
		done:  make(chan struct{}),
	}
	s.sweeps[r.id] = r
	s.sweepOrder = append(s.sweepOrder, r.id)
	// Bound the bookkeeping: sweeps carry full results, keep the last 32.
	for len(s.sweepOrder) > 32 {
		delete(s.sweeps, s.sweepOrder[0])
		s.sweepOrder = s.sweepOrder[1:]
	}
	s.mu.Unlock()

	go func() {
		// Cell failures land in the sweep's own error ledger
		// (fail-soft), so the sweep itself always completes.
		r.result = sweep.Run(s.cfg.BaseContext, name, cells, serviceBackend{s}, sweep.Options{
			Parallelism: parallelism,
			CellTimeout: 10 * time.Minute,
		})
		close(r.done)
	}()
	return r
}

func (s *Service) handleSweep(w http.ResponseWriter, req *http.Request) {
	var spec sweep.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad sweep spec: %v", err))
		return
	}
	// Bound the plan BEFORE expanding it: a spec is a few bytes of
	// JSON but can plan billions of cells, and Cells() materializes
	// them — the count check must not cost the allocation it rejects.
	n, err := spec.CountCells()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if n > s.cfg.MaxSweepCells {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("sweep plans %d cells, service limit is %d", n, s.cfg.MaxSweepCells))
		return
	}
	cells, err := spec.Cells()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, c := range cells {
		if reason := s.validate(fromCell(c)); reason != "" {
			httpError(w, http.StatusUnprocessableEntity, fmt.Sprintf("cell %s: %s", c, reason))
			return
		}
	}

	r := s.startSweep(spec.Name(), cells, spec.Parallelism)
	if req.URL.Query().Get("wait") == "false" {
		writeJSONStatus(w, http.StatusAccepted, r.envelope())
		return
	}
	select {
	case <-r.done:
	case <-req.Context().Done():
		// Client gone; the sweep keeps running and stays fetchable.
		return
	}
	writeJSON(w, r.envelope())
}

func (s *Service) handleSweepGet(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	s.mu.Lock()
	r, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such sweep run (the service keeps the last 32)")
		return
	}
	if req.URL.Query().Get("wait") == "true" {
		select {
		case <-r.done:
		case <-req.Context().Done():
			return
		}
	}
	writeJSON(w, r.envelope())
}
