package ocr

import (
	"strings"
	"testing"

	"repro/internal/imagex"
	"repro/internal/randx"
)

func TestRecognizeSingleWord(t *testing.T) {
	im := imagex.New(80, 12, 240)
	im.DrawText(2, 2, 1, "HELLO")
	res := Recognize(im)
	if res.Words != 1 {
		t.Fatalf("Words = %d (text %q)", res.Words, res.Text)
	}
	if res.Text != "HELLO" {
		t.Fatalf("Text = %q", res.Text)
	}
}

func TestRecognizeSentence(t *testing.T) {
	im := imagex.New(200, 14, 235)
	im.DrawText(2, 3, 1, "PAYPAL BALANCE $120.50")
	res := Recognize(im)
	if res.Words != 3 {
		t.Fatalf("Words = %d (text %q)", res.Words, res.Text)
	}
	if !strings.Contains(res.Text, "PAYPAL") || !strings.Contains(res.Text, "$120.50") {
		t.Fatalf("Text = %q", res.Text)
	}
}

func TestRecognizeMultiLine(t *testing.T) {
	im := imagex.GenScreenshot(1, []string{
		"AMAZON GIFT CARD",
		"AMOUNT: $50.00",
		"STATUS: PAID",
	}, 160, 40)
	res := Recognize(im)
	if res.Words != 7 {
		t.Fatalf("Words = %d (text %q)", res.Words, res.Text)
	}
	lines := strings.Split(res.Text, "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d (text %q)", len(lines), res.Text)
	}
}

func TestModelPhotoScoresZero(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		im := imagex.GenModel(seed, 0, imagex.PoseNude, 48)
		if w := WordCount(im); w > 1 {
			t.Fatalf("model photo seed %d recognised %d words", seed, w)
		}
	}
}

func TestDarkImageScoresZero(t *testing.T) {
	// A dark image binarises to all-ink, where no template can match
	// (every template has at least one '.' cell).
	im := imagex.New(60, 30, 40)
	if w := WordCount(im); w != 0 {
		t.Fatalf("solid dark image recognised %d words", w)
	}
}

func TestNoiseScoresZero(t *testing.T) {
	rng := randx.New(77)
	im := imagex.New(64, 64, 0)
	for i := range im.Pix {
		im.Pix[i] = byte(rng.Uint32())
	}
	if w := WordCount(im); w > 2 {
		t.Fatalf("random noise recognised %d words", w)
	}
}

func TestLowercaseInputRendersAsUppercase(t *testing.T) {
	im := imagex.New(100, 12, 240)
	im.DrawText(2, 2, 1, "proof")
	res := Recognize(im)
	if res.Text != "PROOF" {
		t.Fatalf("Text = %q", res.Text)
	}
}

func TestAllGlyphsRoundtrip(t *testing.T) {
	runes := imagex.GlyphRunes()
	for _, r := range runes {
		im := imagex.New(20, 12, 245)
		im.DrawText(4, 3, 1, string(r))
		res := Recognize(im)
		if len(res.Glyphs) != 1 {
			t.Errorf("glyph %q: recognised %d glyphs (%q)", r, len(res.Glyphs), res.Text)
			continue
		}
		got := res.Glyphs[0].R
		want := r
		if want >= 'a' && want <= 'z' {
			want = want - 'a' + 'A'
		}
		if got != want {
			t.Errorf("glyph %q recognised as %q", r, got)
		}
	}
}

func TestThumbnailGridTextRich(t *testing.T) {
	im := imagex.GenThumbnailGrid(5, 99, 160, 110)
	if w := WordCount(im); w <= 20 {
		t.Fatalf("directory screenshot recognised only %d words; Algorithm 1 needs > 20", w)
	}
}

func TestErrorBannerHasWords(t *testing.T) {
	im := imagex.GenErrorBanner(2, "IMAGE REMOVED FOR TOS VIOLATION", 220, 30)
	if w := WordCount(im); w < 4 {
		t.Fatalf("error banner recognised %d words", w)
	}
}

func TestEmptyImage(t *testing.T) {
	im := imagex.New(30, 10, 255)
	res := Recognize(im)
	if res.Words != 0 || res.Text != "" || len(res.Glyphs) != 0 {
		t.Fatalf("blank image result: %+v", res)
	}
}

func TestTooSmallImage(t *testing.T) {
	im := imagex.New(3, 3, 0)
	if w := WordCount(im); w != 0 {
		t.Fatalf("3x3 image recognised %d words", w)
	}
}

func BenchmarkRecognizeScreenshot(b *testing.B) {
	im := imagex.GenScreenshot(1, []string{
		"PAYPAL DASHBOARD",
		"BALANCE: $843.22",
		"RECENT: +$50.00 +$25.00",
		"FROM: THREE CUSTOMERS",
	}, 180, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Recognize(im)
	}
}

func BenchmarkRecognizeModelPhoto(b *testing.B) {
	im := imagex.GenModel(1, 0, imagex.PoseNude, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Recognize(im)
	}
}

func TestRecognizeZeroDimensionImage(t *testing.T) {
	// A degenerate raster must return an empty result, not panic in
	// the pooled binarise path.
	res := Recognize(&imagex.Image{})
	if res.Words != 0 || len(res.Glyphs) != 0 || res.Text != "" {
		t.Fatalf("zero-dim Recognize = %+v, want empty", res)
	}
}
