// Package pipeline is a small generic concurrent stage engine: bounded
// worker pools connected by channels, with order-preserving fan-in,
// per-stage timing and counters, and context cancellation.
//
// The study's Figure 1 pipeline is rebuilt on these primitives so that
// crawl results stream through PhotoDNA filtering, NSFV classification
// and reverse-image search as they arrive, while the independent §5/§6
// analyses run on a parallel branch. Determinism is the design
// constraint: Map and FlatMap deliver outputs in input order no matter
// how the worker pool schedules them, so a concurrent pipeline run
// folds its results in exactly the order the sequential reference
// implementation does.
package pipeline

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/tracex"
)

// stageSpan opens a trace span for a named stage; anonymous internal
// stages (name == "") and untraced contexts cost nothing. The span
// covers the stage's full lifetime — creation to output close — so a
// trace shows which stages overlap, and the returned context parents
// per-item work (crawl fetches) under the stage.
func stageSpan(ctx context.Context, name string, workers int) (context.Context, *tracex.Span) {
	if name == "" {
		return ctx, nil
	}
	ctx, sp := tracex.StartSpan(ctx, "stage "+name)
	if sp != nil && workers > 1 {
		sp.SetAttr("workers", strconv.Itoa(workers))
	}
	return ctx, sp
}

// defaultWorkers resolves a non-positive worker count to the number of
// usable CPUs.
func defaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Emit feeds a slice into a channel, stopping early if ctx is
// cancelled. The channel closes once every item is delivered.
func Emit[T any](ctx context.Context, items []T) <-chan T {
	out := make(chan T)
	go func() {
		defer close(out)
		for _, v := range items {
			select {
			case out <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Collect drains a channel into a slice, in arrival order.
func Collect[T any](in <-chan T) []T {
	var out []T
	for v := range in {
		out = append(out, v)
	}
	return out
}

// Map applies fn to every input under a bounded worker pool and
// delivers the outputs in input order: output i is never sent before
// output i-1, regardless of which worker finished first. workers <= 0
// means GOMAXPROCS. stats may be nil.
//
// On cancellation the stage drains its input (so upstream goroutines
// can finish) and closes its output early.
func Map[In, Out any](ctx context.Context, stats *Stats, name string, workers int, in <-chan In, fn func(context.Context, In) Out) <-chan Out {
	workers = defaultWorkers(workers)
	st := stats.Stage(name, workers)
	ctx, sp := stageSpan(ctx, name, workers)
	type job struct {
		seq int
		v   In
	}
	type done struct {
		seq int
		v   Out
	}
	jobs := make(chan job)
	results := make(chan done, workers)
	// tokens bounds the in-flight window (dispatched but not yet
	// emitted): one slow head-of-line item must stall the feeder, not
	// let the reorder buffer absorb the whole remaining stream.
	tokens := make(chan struct{}, 4*workers)

	// Feeder: tag inputs with their sequence number.
	go func() {
		defer close(jobs)
		seq := 0
		for v := range in {
			select {
			case tokens <- struct{}{}:
			case <-ctx.Done():
				for range in { // unblock upstream
				}
				return
			}
			st.AddIn(1)
			select {
			case jobs <- job{seq, v}:
				seq++
			case <-ctx.Done():
				for range in { // unblock upstream
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				start := time.Now()
				v := fn(ctx, j.v)
				st.AddBusy(time.Since(start))
				select {
				case results <- done{j.seq, v}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder buffer: emit strictly by sequence number.
	out := make(chan Out, workers)
	go func() {
		defer close(out)
		defer st.Close()
		defer sp.End()
		pending := make(map[int]Out)
		next := 0
		for r := range results {
			pending[r.seq] = r.v
			for {
				v, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				select {
				case out <- v:
					st.AddOut(1)
					<-tokens
				case <-ctx.Done():
					for range results { // unblock workers
					}
					return
				}
			}
		}
	}()
	return out
}

// FlatMap is Map for stage functions that produce zero or more outputs
// per input; the output slices are flattened in input order.
func FlatMap[In, Out any](ctx context.Context, stats *Stats, name string, workers int, in <-chan In, fn func(context.Context, In) []Out) <-chan Out {
	workers = defaultWorkers(workers)
	st := stats.Stage(name, workers)
	ctx, sp := stageSpan(ctx, name, workers)
	timed := func(ctx context.Context, v In) []Out {
		st.AddIn(1)
		start := time.Now()
		r := fn(ctx, v)
		st.AddBusy(time.Since(start))
		return r
	}
	slices := Map(ctx, nil, "", workers, in, timed)
	out := make(chan Out, workers)
	go func() {
		defer close(out)
		defer st.Close()
		defer sp.End()
		for vs := range slices {
			for _, v := range vs {
				select {
				case out <- v:
					st.AddOut(1)
				case <-ctx.Done():
					for range slices {
					}
					return
				}
			}
		}
	}()
	return out
}

// Process runs a serial stage with explicit emission control: fn is
// called for every input with an emit function, and flush (optional)
// runs after the input closes — the hook for stages that buffer, such
// as per-pack sampling. Emission order is the call order, so a Process
// stage is deterministic by construction.
func Process[In, Out any](ctx context.Context, stats *Stats, name string, in <-chan In, fn func(In, func(Out)), flush func(func(Out))) <-chan Out {
	st := stats.Stage(name, 1)
	_, sp := stageSpan(ctx, name, 1)
	out := make(chan Out)
	go func() {
		defer close(out)
		defer st.Close()
		defer sp.End()
		cancelled := false
		emit := func(v Out) {
			if cancelled {
				return
			}
			select {
			case out <- v:
				st.AddOut(1)
			case <-ctx.Done():
				cancelled = true
			}
		}
		for v := range in {
			if cancelled {
				continue // drain upstream
			}
			st.AddIn(1)
			start := time.Now()
			fn(v, emit)
			st.AddBusy(time.Since(start))
		}
		if flush != nil && !cancelled {
			start := time.Now()
			flush(emit)
			st.AddBusy(time.Since(start))
		}
	}()
	return out
}

// Tee duplicates a stream to n consumers. Every output receives every
// item; delivery is lock-step (a slow consumer gates the others), with
// a small buffer to decouple bursts.
func Tee[T any](ctx context.Context, in <-chan T, n int) []<-chan T {
	outs := make([]chan T, n)
	ro := make([]<-chan T, n)
	for i := range outs {
		outs[i] = make(chan T, 64)
		ro[i] = outs[i]
	}
	go func() {
		defer func() {
			for _, o := range outs {
				close(o)
			}
		}()
		for v := range in {
			for _, o := range outs {
				select {
				case o <- v:
				case <-ctx.Done():
					for range in {
					}
					return
				}
			}
		}
	}()
	return ro
}

// Group runs pipeline branches concurrently and waits for all of them
// — the error-free face of ErrGroup for branches that cannot fail.
// The zero value is ready to use.
type Group struct {
	eg ErrGroup
}

// Go starts fn as a branch.
func (g *Group) Go(fn func()) {
	g.eg.Go(func() error {
		fn()
		return nil
	})
}

// Wait blocks until every branch started with Go has returned.
func (g *Group) Wait() { g.eg.Wait() }
