// Package photodna is the reproduction's stand-in for the Microsoft
// PhotoDNA Cloud Service and the UK Internet Watch Foundation (IWF)
// workflow the paper uses in §4.3: every downloaded image is hashed
// and matched against a hashlist of known child-abuse material; any
// match is immediately reported and the image deleted before any later
// pipeline stage (or researcher) can see it.
//
// Matching uses a robust perceptual hash (imagex.AHash) with a Hamming
// radius, reproducing PhotoDNA's documented robustness to compression
// and mild geometric distortion ("PhotoDNA leverages Robust Hashing to
// detect images that have been modified, e.g., using compression
// algorithms or geometric distortions").
//
// Everything in this package is synthetic: entries carry only abstract
// severity grades and metadata shaped like the IWF's published
// statistics. No real hashes or material are involved.
package photodna

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/imagex"
)

// Severity is the IWF's image grading.
type Severity int

// IWF severity categories, as defined in the paper: A involves
// penetrative sexual activity, B non-penetrative, C other indecent
// images.
const (
	SeverityUnknown Severity = iota
	CategoryA
	CategoryB
	CategoryC
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case CategoryA:
		return "A"
	case CategoryB:
		return "B"
	case CategoryC:
		return "C"
	default:
		return "?"
	}
}

// Region is a coarse hosting location, matching the paper's breakdown
// (UK / North America / other Europe).
type Region int

// Hosting regions.
const (
	RegionUnknown Region = iota
	RegionUK
	RegionNorthAmerica
	RegionEurope
)

// String names the region.
func (r Region) String() string {
	switch r {
	case RegionUK:
		return "UK"
	case RegionNorthAmerica:
		return "North America"
	case RegionEurope:
		return "Europe"
	default:
		return "unknown"
	}
}

// SiteType classifies the kind of site a reported URL was found on.
type SiteType int

// Site types from the paper's IWF results.
const (
	SiteUnknown SiteType = iota
	SiteImageSharing
	SiteForum
	SiteBlog
	SiteSocialNetwork
	SiteVideoChannel
	SiteRegular
)

// String names the site type.
func (t SiteType) String() string {
	switch t {
	case SiteImageSharing:
		return "image sharing"
	case SiteForum:
		return "forum"
	case SiteBlog:
		return "blog"
	case SiteSocialNetwork:
		return "social network"
	case SiteVideoChannel:
		return "video channel"
	case SiteRegular:
		return "regular website"
	default:
		return "unknown"
	}
}

// RobustHash is the matching fingerprint. PhotoDNA's real hash is a
// 144-byte regional descriptor; the composite 128-bit perceptual hash
// reproduces the property that matters — robustness to recompression
// with strong discrimination between different source images.
type RobustHash = imagex.Hash128

// HashImage computes the robust hash of an image.
func HashImage(im *imagex.Image) RobustHash {
	return imagex.Hash128Of(im)
}

// Entry is one hashlist record.
type Entry struct {
	// ID identifies the record within the hashlist.
	ID int
	// Actionable reports whether the grading organisation can verify
	// the age of the person depicted; only actionable matches produce
	// URL actions. (In the paper, only some matches were actionable by
	// the IWF.)
	Actionable bool
	// Severity is the content grading (only meaningful if Actionable).
	Severity Severity
	// VictimAge is the assessed age (only meaningful if Actionable).
	VictimAge int
}

// numChunks splits the 128-bit composite hash into 16 byte-wide
// chunks for the multi-index. By the pigeonhole principle, two hashes
// within summed Hamming distance d < numChunks must agree exactly on
// at least one chunk, so probing the 16 exact-match buckets of a query
// finds every entry within any radius up to 15 — and DefaultRadius is
// 10. Wider radii fall back to the linear scan.
const numChunks = 16

// chunkOf extracts chunk c (0..15) of a hash: bytes 0..7 of the
// average-hash half, then bytes 0..7 of the difference-hash half.
func chunkOf(h RobustHash, c int) byte {
	if c < 8 {
		return byte(uint64(h.A) >> (8 * uint(c)))
	}
	return byte(uint64(h.D) >> (8 * uint(c-8)))
}

// HashList matches image hashes against known entries within a
// summed-Hamming radius. Safe for concurrent use.
//
// Matching is sub-linear: entries are bucketed by the exact value of
// each of their 16 hash chunks, a query probes only its own 16
// buckets, and candidates are verified with the full Distance. Every
// entry within the radius shares at least one chunk with the query
// (see numChunks), so the index returns bit-identical results to a
// full scan — including the deterministic lowest-ID tie-break — which
// TestMatchHashIndexEquivalence pins.
type HashList struct {
	mu     sync.RWMutex
	radius int
	// list holds the entries in insertion order — the dense layout the
	// linear scan and the index buckets both walk, so matching touches
	// no map on the hit path.
	list []hashEntry
	// pos maps a hash to its list slot, for existence checks and
	// replacement.
	pos map[RobustHash]int32
	// index maps (chunk number << 8 | chunk value) to the list
	// positions of the entries carrying that chunk value. An entry
	// appears once per chunk.
	index map[uint16][]int32
}

// hashEntry is one stored (hash, entry) pair.
type hashEntry struct {
	hash  RobustHash
	entry Entry
}

// DefaultRadius is the matching radius used by the study: wide enough
// that recompression survives (a few bits per component), narrow
// enough that images of different people essentially never collide
// (unrelated composite hashes differ by ~50+ bits).
const DefaultRadius = 10

// NewHashList returns an empty hashlist with the given radius
// (DefaultRadius if radius <= 0).
func NewHashList(radius int) *HashList {
	if radius <= 0 {
		radius = DefaultRadius
	}
	return &HashList{
		radius: radius,
		pos:    make(map[RobustHash]int32),
		index:  make(map[uint16][]int32),
	}
}

// Add registers an entry under the hash of the given image.
func (hl *HashList) Add(im *imagex.Image, e Entry) {
	hl.AddHash(HashImage(im), e)
}

// AddHash registers an entry under a precomputed hash. Re-adding a
// hash replaces its entry.
func (hl *HashList) AddHash(h RobustHash, e Entry) {
	hl.mu.Lock()
	defer hl.mu.Unlock()
	if i, exists := hl.pos[h]; exists {
		hl.list[i].entry = e
		return
	}
	i := int32(len(hl.list))
	hl.pos[h] = i
	hl.list = append(hl.list, hashEntry{hash: h, entry: e})
	for c := 0; c < numChunks; c++ {
		k := uint16(c)<<8 | uint16(chunkOf(h, c))
		hl.index[k] = append(hl.index[k], i)
	}
}

// Len returns the number of entries.
func (hl *HashList) Len() int {
	hl.mu.RLock()
	defer hl.mu.RUnlock()
	return len(hl.list)
}

// Match hashes the image and reports the closest entry within the
// radius.
func (hl *HashList) Match(im *imagex.Image) (Entry, bool) {
	return hl.MatchHash(HashImage(im))
}

// MatchHash reports the closest entry within the radius of h.
// Distance ties break on the lowest entry ID: the winner must never
// depend on map iteration order (DESIGN.md §1 — the report filed for
// a match is part of the deterministic Results).
func (hl *HashList) MatchHash(h RobustHash) (Entry, bool) {
	hl.mu.RLock()
	defer hl.mu.RUnlock()
	if hl.radius >= numChunks {
		// The pigeonhole guarantee needs radius < numChunks; wider
		// radii scan.
		return hl.matchHashLinear(h)
	}
	best := hl.radius + 1
	var found Entry
	ok := false
	for c := 0; c < numChunks; c++ {
		for _, pi := range hl.index[uint16(c)<<8|uint16(chunkOf(h, c))] {
			ent := &hl.list[pi]
			d := h.Distance(ent.hash)
			if d > best || d > hl.radius {
				continue
			}
			// A candidate sharing several chunks is visited once per
			// shared chunk; re-evaluation is a no-op (same distance,
			// same ID), so no dedup set is needed.
			if d < best || !ok || ent.entry.ID < found.ID {
				best = d
				found = ent.entry
				ok = true
			}
		}
	}
	return found, ok
}

// BatchMatch is one per-query outcome of MatchBatch.
type BatchMatch struct {
	Entry Entry
	OK    bool
}

// batchLinearCutover is the list size below which a per-query linear
// scan beats the chunk index: sixteen bucket-map probes cost more than
// popcounting that many entries outright. The study's real hashlist
// (a few dozen flagged images) lives far below it, so pack probes skip
// the map entirely.
const batchLinearCutover = 4 * numChunks

// MatchBatch matches every hash in hs, appending one BatchMatch per
// query to dst (which may be nil) and returning the extended slice.
// Results are exactly MatchHash's, query by query — the equivalence
// test pins that — with the whole pack probed under one read lock and
// each distance taken as popcounts over the two uint64 XOR words. Small
// hashlists scan linearly instead of paying sixteen bucket probes per
// query, and on the indexed path a within-radius candidate sharing
// several chunks with its query is scored only at the first shared
// chunk (revisits through later buckets are skipped). Callers stream
// packs through a reused dst to keep matching allocation-free.
func (hl *HashList) MatchBatch(hs []RobustHash, dst []BatchMatch) []BatchMatch {
	hl.mu.RLock()
	defer hl.mu.RUnlock()
	if hl.radius >= numChunks || len(hl.list) < batchLinearCutover {
		// Wide radii lose the pigeonhole guarantee (like MatchHash);
		// small lists are cheaper to scan than to probe.
		for _, h := range hs {
			e, ok := hl.matchHashLinear(h)
			dst = append(dst, BatchMatch{Entry: e, OK: ok})
		}
		return dst
	}
	for _, h := range hs {
		best := hl.radius + 1
		var found Entry
		ok := false
		qa, qd := uint64(h.A), uint64(h.D)
		for c := 0; c < numChunks; c++ {
		candidates:
			for _, pi := range hl.index[uint16(c)<<8|uint16(chunkOf(h, c))] {
				ent := &hl.list[pi]
				xa := qa ^ uint64(ent.hash.A)
				xd := qd ^ uint64(ent.hash.D)
				d := bits.OnesCount64(xa) + bits.OnesCount64(xd)
				if d > best || d > hl.radius {
					// Far candidates are rejected on the popcount
					// alone, revisits included — a distance check is
					// cheaper than any dedup test.
					continue
				}
				// A within-radius candidate sits in every bucket whose
				// chunk it shares with the query (a zero XOR byte).
				// Chunk c is zero by construction; if an earlier chunk
				// is too, this is a revisit of a candidate already
				// scored there — skip it before the entry lookup.
				for c2 := 0; c2 < c; c2++ {
					if c2 < 8 {
						if byte(xa>>(8*uint(c2))) == 0 {
							continue candidates
						}
					} else if byte(xd>>(8*uint(c2-8))) == 0 {
						continue candidates
					}
				}
				if d < best || !ok || ent.entry.ID < found.ID {
					best = d
					found = ent.entry
					ok = true
				}
			}
		}
		dst = append(dst, BatchMatch{Entry: found, OK: ok})
	}
	return dst
}

// matchHashLinear is the reference full scan over every entry. It is
// the semantic definition MatchHash must reproduce bit-for-bit; the
// equivalence test compares the two on random hashlists and radii.
// Callers must hold at least a read lock.
func (hl *HashList) matchHashLinear(h RobustHash) (Entry, bool) {
	best := hl.radius + 1
	var found Entry
	ok := false
	for i := range hl.list {
		ent := &hl.list[i]
		d := h.Distance(ent.hash)
		if d > best || d > hl.radius {
			continue
		}
		if d < best || !ok || ent.entry.ID < found.ID {
			best = d
			found = ent.entry
			ok = true
		}
	}
	return found, ok
}

// URLReport is one URL reported to the hotline alongside a match: the
// places (from reverse image search) where the same image was found.
type URLReport struct {
	URL      string
	Region   Region
	SiteType SiteType
}

// MatchReport records one matched-and-deleted image.
type MatchReport struct {
	Entry Entry
	// SourceThread and SourcePost locate where the link to the image
	// was posted (for the paper's analysis of who replied).
	SourceThread int
	SourcePost   int
	// URLs are the additional locations reported (§4.3: "We also
	// reported the URLs of other sites where these images were
	// located, obtained from the reverse image search").
	URLs []URLReport
}

// Hotline collects reports, standing in for the IWF. Safe for
// concurrent use.
type Hotline struct {
	mu      sync.Mutex
	reports []MatchReport
}

// NewHotline returns an empty hotline.
func NewHotline() *Hotline { return &Hotline{} }

// Report files a match report.
func (h *Hotline) Report(r MatchReport) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reports = append(h.reports, r)
}

// Reports returns a copy of all filed reports.
func (h *Hotline) Reports() []MatchReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]MatchReport, len(h.reports))
	copy(out, h.reports)
	return out
}

// ActionSummary aggregates the hotline's actionable URL reports the
// way the paper presents them: count per severity, hosting location
// and site type.
type ActionSummary struct {
	Matches        int
	ActionableURLs int
	BySeverity     map[Severity]int
	ByRegion       map[Region]int
	BySiteType     map[SiteType]int
}

// Summarize computes the action summary over all reports. Only
// actionable entries' URLs are actioned, mirroring the IWF's
// behaviour.
func (h *Hotline) Summarize() ActionSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := ActionSummary{
		BySeverity: make(map[Severity]int),
		ByRegion:   make(map[Region]int),
		BySiteType: make(map[SiteType]int),
	}
	s.Matches = len(h.reports)
	for _, r := range h.reports {
		if !r.Entry.Actionable {
			continue
		}
		for _, u := range r.URLs {
			s.ActionableURLs++
			s.BySeverity[r.Entry.Severity]++
			s.ByRegion[u.Region]++
			s.BySiteType[u.SiteType]++
		}
	}
	return s
}

// String renders the summary in the paper's reporting style.
func (s ActionSummary) String() string {
	sev := make([]string, 0, len(s.BySeverity))
	for k, v := range s.BySeverity {
		sev = append(sev, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(sev)
	return fmt.Sprintf("matches=%d actioned_urls=%d severity=%v",
		s.Matches, s.ActionableURLs, sev)
}

// Filter couples a hashlist with a hotline: images flow through it and
// matches are reported and withheld, so downstream stages only ever
// see clean images. This is the pipeline's safety gate.
type Filter struct {
	List    *HashList
	Hotline *Hotline
}

// NewFilter builds a filter over a hashlist, reporting to the hotline.
func NewFilter(list *HashList, hotline *Hotline) *Filter {
	return &Filter{List: list, Hotline: hotline}
}

// Check passes a single image through the gate. If it matches the
// hashlist the match is reported and Check returns false: the caller
// must drop the image immediately.
func (f *Filter) Check(im *imagex.Image, thread, post int, urls []URLReport) bool {
	e, ok := f.List.Match(im)
	if !ok {
		return true
	}
	f.Hotline.Report(MatchReport{
		Entry:        e,
		SourceThread: thread,
		SourcePost:   post,
		URLs:         urls,
	})
	return false
}
