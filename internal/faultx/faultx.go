// Package faultx is the deterministic adversary: a seed-driven fault
// injection layer that makes the substrate behave like the hostile web
// the paper measured — rate-limiting image hosts (429 + Retry-After),
// intermittently flaky CDNs (5xx), slow or stalled bodies, connection
// resets, permanently dead hosts, and link rot.
//
// A fault Plan is parsed from a compact profile string (see
// ParseProfile) and compiled into an Injector whose Decide method is a
// pure function of (plan, host, url, per-url request count): no clocks,
// no global RNG. That purity is what makes chaos testing provable here
// — a retryable-only schedule (every URL succeeds within the consumer's
// retry budget) yields results bit-identical to the fault-free run, and
// an exhausted-host schedule fails the same URLs on every run.
//
// The same Injector plugs into both crawl seams:
//
//   - Transport wraps an http.RoundTripper, so the in-process
//     core.Backend path (which crawls its embedded hosting server over
//     a real HTTP client) faces the adversary without the substrate
//     knowing;
//   - Middleware wraps the substrate's HTTP handlers, so `ewserve
//     -faults` subjects remote crawlers to the identical schedule.
package faultx

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HostFault is the compiled fault behaviour for one host (or the "*"
// wildcard entry matching every host without an exact entry).
type HostFault struct {
	// Failures is how many times each distinct URL on this host fails
	// before requests start succeeding (the scheduled, self-healing
	// fault classes: ratelimit, flaky, reset, slow). Zero disables the
	// scheduled fault.
	Failures int
	// Status is the HTTP status synthesized while the scheduled fault
	// is active (429 for ratelimit, 500 for flaky; 0 for reset/slow).
	Status int
	// RetryAfter, when > 0, is the backoff hint attached to scheduled
	// fault responses as a Retry-After header (fractional seconds).
	RetryAfter time.Duration
	// Stall delays every scheduled-fault response by this much before
	// answering — the slow-body adversary. Honors request context.
	Stall time.Duration
	// Reset makes scheduled faults abort the connection instead of
	// answering, so the client sees a transport error, not a status.
	Reset bool
	// Down marks the host permanently dead: every request is answered
	// 500 with no Retry-After, forever. This is the exhausted-host
	// schedule — consumers must degrade, not hang or abort.
	Down bool
	// RotRate is this host's link-rot probability in [0,1]: each URL is
	// independently and permanently rotten (404) with this probability,
	// chosen by a pure hash of (seed, host, url).
	RotRate float64
}

// Plan is a parsed fault profile.
type Plan struct {
	// Seed drives the link-rot hash. Two plans with the same seed rot
	// the same URLs.
	Seed uint64
	// Rot is the global link-rot probability applied to every host
	// (from a bare "rot=F" clause); per-host RotRate overrides when
	// larger.
	Rot float64
	// Hosts maps host name (or "*") to its fault behaviour.
	Hosts map[string]HostFault
}

// scheduled reports whether f carries a per-URL scheduled fault.
func (f HostFault) scheduled() bool {
	return f.Failures > 0 && (f.Status != 0 || f.Reset || f.Stall > 0)
}

// ParseProfile parses a fault profile string into a Plan. The grammar
// is a semicolon-separated list of clauses:
//
//	seed=N                 link-rot hash seed (default 2019)
//	failures=K             per-URL failure count for later scheduled
//	                       clauses (default 2)
//	retry-after=DUR        Retry-After hint for later ratelimit clauses
//	                       (default 1ms)
//	stall=DUR              response delay for later scheduled clauses
//	ratelimit=h1,h2 | *    429 + Retry-After for the first K requests
//	                       of each URL
//	flaky=h1,h2 | *        500 for the first K requests of each URL
//	reset=h1,h2 | *        connection reset for the first K requests
//	slow=h1,h2 | *         stalled (but successful) responses for the
//	                       first K requests of each URL
//	down=h1,h2 | *         host permanently dead (500, no hint)
//	rot=F | rot=F@h1,h2    link rot probability F in [0,1], globally or
//	                       for the named hosts
//
// Scalar clauses (seed, failures, retry-after, stall) apply to the
// host clauses that follow them, so "failures=1;flaky=a.com;
// failures=5;flaky=b.com" gives the two hosts different schedules.
// An empty string or "off" yields a nil Plan (no injection).
func ParseProfile(profile string) (*Plan, error) {
	profile = strings.TrimSpace(profile)
	if profile == "" || profile == "off" {
		return nil, nil
	}
	plan := &Plan{Seed: 2019, Hosts: map[string]HostFault{}}
	failures := 2
	retryAfter := time.Millisecond
	stall := time.Duration(0)

	merge := func(host string, apply func(*HostFault)) {
		hf := plan.Hosts[host]
		apply(&hf)
		plan.Hosts[host] = hf
	}
	for _, clause := range strings.Split(profile, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faultx: clause %q is not key=value", clause)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultx: bad seed %q", val)
			}
			plan.Seed = n
		case "failures":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultx: bad failures %q", val)
			}
			failures = n
		case "retry-after":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultx: bad retry-after %q", val)
			}
			retryAfter = d
		case "stall":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultx: bad stall %q", val)
			}
			stall = d
		case "ratelimit":
			for _, h := range splitHosts(val) {
				f, ra, st := failures, retryAfter, stall
				merge(h, func(hf *HostFault) {
					hf.Failures, hf.Status, hf.RetryAfter, hf.Stall = f, http.StatusTooManyRequests, ra, st
				})
			}
		case "flaky":
			for _, h := range splitHosts(val) {
				f, st := failures, stall
				merge(h, func(hf *HostFault) {
					hf.Failures, hf.Status, hf.Stall = f, http.StatusInternalServerError, st
				})
			}
		case "reset":
			for _, h := range splitHosts(val) {
				f, st := failures, stall
				merge(h, func(hf *HostFault) {
					hf.Failures, hf.Reset, hf.Stall = f, true, st
				})
			}
		case "slow":
			for _, h := range splitHosts(val) {
				f, st := failures, stall
				if st <= 0 {
					st = time.Millisecond
				}
				merge(h, func(hf *HostFault) {
					hf.Failures, hf.Stall = f, st
				})
			}
		case "down":
			for _, h := range splitHosts(val) {
				merge(h, func(hf *HostFault) { hf.Down = true })
			}
		case "rot":
			spec, hosts, scoped := strings.Cut(val, "@")
			rate, err := strconv.ParseFloat(strings.TrimSpace(spec), 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("faultx: bad rot rate %q", val)
			}
			if scoped {
				for _, h := range splitHosts(hosts) {
					merge(h, func(hf *HostFault) { hf.RotRate = rate })
				}
			} else {
				plan.Rot = rate
			}
		default:
			return nil, fmt.Errorf("faultx: unknown clause %q", key)
		}
	}
	return plan, nil
}

func splitHosts(val string) []string {
	var out []string
	for _, h := range strings.Split(val, ",") {
		if h = strings.TrimSpace(h); h != "" {
			out = append(out, h)
		}
	}
	return out
}

// String renders the plan's host table for logs and reports, sorted
// for determinism.
func (p *Plan) String() string {
	if p == nil {
		return "off"
	}
	hosts := make([]string, 0, len(p.Hosts))
	for h := range p.Hosts {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	if p.Rot > 0 {
		fmt.Fprintf(&b, " rot=%g", p.Rot)
	}
	for _, h := range hosts {
		hf := p.Hosts[h]
		fmt.Fprintf(&b, " %s{", h)
		switch {
		case hf.Down:
			b.WriteString("down")
		case hf.Reset:
			fmt.Fprintf(&b, "reset×%d", hf.Failures)
		case hf.Status != 0:
			fmt.Fprintf(&b, "%d×%d", hf.Status, hf.Failures)
		case hf.Stall > 0:
			fmt.Fprintf(&b, "slow×%d", hf.Failures)
		}
		if hf.RotRate > 0 {
			fmt.Fprintf(&b, " rot=%g", hf.RotRate)
		}
		b.WriteString("}")
	}
	return b.String()
}

// Decision is the injector's verdict for one request.
type Decision struct {
	// Status, when non-zero, is the synthesized response status; the
	// request never reaches the real handler.
	Status int
	// RetryAfter, when > 0, rides the synthesized response as a
	// Retry-After header (fractional seconds).
	RetryAfter time.Duration
	// Stall delays the response (faulted or passed-through) by this
	// much, honoring the request context.
	Stall time.Duration
	// Reset aborts the exchange with a transport-level error instead
	// of a response.
	Reset bool
}

// Fault reports whether the decision alters the exchange at all.
func (d Decision) Fault() bool {
	return d.Status != 0 || d.Reset || d.Stall > 0
}

// Injector evaluates a Plan against requests. The only mutable state
// is the per-(host,url) request counter behind the scheduled fault
// classes; everything else is a pure function of the plan.
type Injector struct {
	plan *Plan

	mu     sync.Mutex
	counts map[string]int
}

// NewInjector compiles a plan. A nil plan yields a nil injector, which
// every entry point treats as "no injection".
func NewInjector(plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	return &Injector{plan: plan, counts: map[string]int{}}
}

// Decide returns the fault decision for one request identified by its
// logical host (the substrate site name, e.g. "imgur.com", or a fixed
// service name like "reverse") and URL path.
//
// Precedence: a Down host always fails; then link rot (permanent 404
// by pure hash); then the host's scheduled fault while its per-URL
// counter is below Failures.
func (inj *Injector) Decide(host, url string) Decision {
	if inj == nil {
		return Decision{}
	}
	hf, ok := inj.plan.Hosts[host]
	if !ok {
		hf, ok = inj.plan.Hosts["*"]
	}
	if hf.Down {
		return Decision{Status: http.StatusInternalServerError, Stall: hf.Stall}
	}
	rot := inj.plan.Rot
	if hf.RotRate > rot {
		rot = hf.RotRate
	}
	if rot > 0 && rotHash(inj.plan.Seed, host, url) < rot {
		return Decision{Status: http.StatusNotFound}
	}
	if !ok || !hf.scheduled() {
		return Decision{}
	}
	key := host + "\x00" + url
	inj.mu.Lock()
	n := inj.counts[key]
	if n < hf.Failures {
		inj.counts[key] = n + 1
	}
	inj.mu.Unlock()
	if n >= hf.Failures {
		return Decision{}
	}
	return Decision{Status: hf.Status, RetryAfter: hf.RetryAfter, Stall: hf.Stall, Reset: hf.Reset}
}

// rotHash maps (seed, host, url) to [0,1) — cheap, stable across runs
// and platforms, and independent of request order. FNV-1a alone leaves
// the trailing bytes' influence in the low bits, so a 64-bit avalanche
// finalizer runs before the high 53 bits become the mantissa.
func rotHash(seed uint64, host, url string) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(host))
	h.Write([]byte{0})
	h.Write([]byte(url))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// FormatRetryAfter renders a backoff hint as the header value both
// seams emit: fractional seconds, so millisecond-scale test schedules
// do not round up to whole-second sleeps.
func FormatRetryAfter(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// ParseRetryAfter parses a Retry-After header value as (possibly
// fractional) seconds. Returns 0 for anything unparseable or
// non-positive, including the HTTP-date form this system never emits.
func ParseRetryAfter(v string) time.Duration {
	secs, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

// ResetError is the transport-level error surfaced for Reset faults.
type ResetError struct {
	Host string
}

func (e *ResetError) Error() string {
	return "faultx: connection reset by " + e.Host
}

// HostFunc extracts the logical host from a request for Decide.
type HostFunc func(*http.Request) string

// PathHost is the HostFunc for the hosting substrate, whose URLs are
// /<site>/<path...> under one server: the first path segment is the
// site. It is the default everywhere a nil HostFunc is passed.
func PathHost(r *http.Request) string {
	p := strings.TrimPrefix(r.URL.Path, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	return p
}

// FixedHost returns a HostFunc that names every request the same —
// for single-purpose services like the reverse-search or wayback
// endpoints, which are one logical host each.
func FixedHost(host string) HostFunc {
	return func(*http.Request) string { return host }
}

type transport struct {
	base http.RoundTripper
	inj  *Injector
	host HostFunc
}

// Transport wraps base with fault injection — the in-process seam. A
// nil injector returns base unchanged; a nil host defaults to
// PathHost; a nil base defaults to http.DefaultTransport.
func Transport(base http.RoundTripper, inj *Injector, host HostFunc) http.RoundTripper {
	if inj == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	if host == nil {
		host = PathHost
	}
	return &transport{base: base, inj: inj, host: host}
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	h := t.host(req)
	d := t.inj.Decide(h, req.URL.Path)
	if d.Stall > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.Stall):
		}
	}
	if d.Reset {
		return nil, &ResetError{Host: h}
	}
	if d.Status == 0 {
		return t.base.RoundTrip(req)
	}
	header := make(http.Header)
	if d.RetryAfter > 0 {
		header.Set("Retry-After", FormatRetryAfter(d.RetryAfter))
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", d.Status, http.StatusText(d.Status)),
		StatusCode:    d.Status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        header,
		Body:          http.NoBody,
		ContentLength: 0,
		Request:       req,
	}, nil
}

// Middleware wraps an HTTP handler with fault injection — the remote
// seam, applied by `ewserve -faults` to the substrate handlers. A nil
// injector is the identity; a nil host defaults to PathHost. Reset
// faults abort the connection via http.ErrAbortHandler, which the
// client observes as an EOF-class transport error, matching the
// Transport seam's behaviour.
func Middleware(inj *Injector, host HostFunc) func(http.Handler) http.Handler {
	if host == nil {
		host = PathHost
	}
	return func(next http.Handler) http.Handler {
		if inj == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			d := inj.Decide(host(r), r.URL.Path)
			if d.Stall > 0 {
				select {
				case <-r.Context().Done():
					return
				case <-time.After(d.Stall):
				}
			}
			if d.Reset {
				panic(http.ErrAbortHandler)
			}
			if d.Status != 0 {
				if d.RetryAfter > 0 {
					w.Header().Set("Retry-After", FormatRetryAfter(d.RetryAfter))
				}
				http.Error(w, "faultx: injected fault", d.Status)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
