// Fixture: ewserve is the operational binary — its output is the ops
// log, so it must be logx JSON lines, not bare prints.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	fmt.Println("listening") // want "fmt.Println in cmd/ewserve"
	log.Println("ready")     // want "log.Println in cmd/ewserve"
	fmt.Fprintln(os.Stderr, "explicit writer is fine")
}
