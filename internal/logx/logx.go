// Package logx is the service spine's structured logger: one JSON
// object per line, deterministic field order, explicit levels and
// context plumbing. A request id attached at the HTTP edge travels in
// the context through studysvc → core.Study.Compute → artefact.Store,
// so every artefact-node computation and memo lookup a request causes
// carries the id that caused it.
//
// The design constraints, in order:
//
//   - a nil *Logger is a complete no-op (With, Debug, Info, Error all
//     safe), so library code logs unconditionally and pays nothing
//     when no logger is configured;
//   - field order is deterministic — ts, level, msg, then With fields
//     in attach order, then call-site pairs in argument order — so
//     lines diff and grep cleanly;
//   - one line is one write: concurrent loggers sharing a sink never
//     interleave mid-line.
package logx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level orders log severities. The zero value is LevelInfo, so a
// zero-configured logger defaults to the production level.
type Level int8

const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelError
)

// String returns the level's wire name.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l >= LevelError:
		return "error"
	default:
		return "info"
	}
}

// ParseLevel maps a flag value ("debug", "info", "error") to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("logx: unknown level %q (debug, info, error)", s)
}

// Field is one bound key/value pair.
type Field struct {
	Key   string
	Value any
}

// sink serializes writes so a line is never interleaved. All loggers
// derived from one New share the sink.
type sink struct {
	mu sync.Mutex
	w  io.Writer
}

// Logger emits JSON log lines at or above its minimum level. The
// zero-value pointer (nil) is a valid no-op logger.
type Logger struct {
	out    *sink
	min    Level
	fields []Field
	// now is the clock; tests pin it for byte-stable output.
	now func() time.Time
}

// New returns a logger writing one JSON line per event to w, dropping
// events below min.
func New(w io.Writer, min Level) *Logger {
	return &Logger{out: &sink{w: w}, min: min, now: time.Now}
}

// With returns a logger that adds key=value to every line. The
// receiver is unchanged; a nil receiver stays nil.
func (l *Logger) With(key string, value any) *Logger {
	if l == nil {
		return nil
	}
	nl := *l
	// Copy-on-append: siblings derived from the same parent must not
	// share the backing array.
	nl.fields = make([]Field, len(l.fields), len(l.fields)+1)
	copy(nl.fields, l.fields)
	nl.fields = append(nl.fields, Field{Key: key, Value: value})
	return &nl
}

// Enabled reports whether events at lv would be emitted — the guard
// for callers that compute expensive log values.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

// Debug emits a debug event with alternating key, value arguments.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info emits an info event with alternating key, value arguments.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Error emits an error event with alternating key, value arguments.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b bytes.Buffer
	b.WriteString(`{"ts":`)
	appendJSON(&b, l.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`,"level":`)
	appendJSON(&b, lv.String())
	b.WriteString(`,"msg":`)
	appendJSON(&b, msg)
	for _, f := range l.fields {
		appendPair(&b, f.Key, f.Value)
	}
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("%v", kv[i])
		}
		appendPair(&b, key, kv[i+1])
	}
	if len(kv)%2 != 0 {
		// A dangling value still lands in the line instead of
		// disappearing — misuse should be visible, not silent.
		appendPair(&b, "!extra", kv[len(kv)-1])
	}
	b.WriteByte('}')
	b.WriteByte('\n')
	l.out.mu.Lock()
	defer l.out.mu.Unlock()
	_, _ = l.out.w.Write(b.Bytes()) // logging is best-effort by design
}

func appendPair(b *bytes.Buffer, key string, value any) {
	b.WriteByte(',')
	appendJSON(b, key)
	b.WriteByte(':')
	appendJSON(b, value)
}

// appendJSON writes v as JSON; unmarshalable values degrade to their
// fmt rendering so a log call never fails.
func appendJSON(b *bytes.Buffer, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	b.Write(data)
}
