// Package cliutil holds the small helpers the command-line tools
// share: remote-study submission (ewpipeline -remote and ewreport
// -remote route through the same client path) and -only list parsing.
package cliutil

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/studysvc"
)

// SplitNames parses a comma-separated -only list into trimmed,
// non-empty names ("table5, figure2" → ["table5" "figure2"]). An
// empty string yields nil — no selection, meaning everything.
func SplitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if name := strings.TrimSpace(part); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// RunRemote submits a study request to a live study service and waits
// for a completed envelope; a failed or unfinished run is an error.
func RunRemote(ctx context.Context, baseURL string, req studysvc.Request) (*studysvc.Envelope, error) {
	c := studysvc.NewClient(baseURL, nil)
	env, err := c.Run(ctx, req)
	if err != nil {
		return nil, err
	}
	if env.Status != studysvc.StatusDone {
		return nil, fmt.Errorf("run %s %s: %s", env.ID, env.Status, env.Error)
	}
	return env, nil
}
