// Package wayback is the reproduction's Internet Archive Wayback
// Machine: a snapshot index recording when URLs were captured. The
// provenance analysis (§4.5) uses it to decide whether a matched URL
// was online before the image was posted in the forum ("to analyse
// whether the images were online before they were posted in the
// forums, we have used the Wayback Machine").
//
// The archive is exposed both as an in-process index and over HTTP
// with an API shaped like the real availability endpoint.
package wayback

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/faultx"
)

// StatusError is a non-200 availability response. RetryAfterHint
// exposes the parsed Retry-After header so retrying callers (crawler.
// HTTPClient) can honor the server's backoff request without this
// package knowing who retries.
type StatusError struct {
	StatusCode int
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("wayback: status %d", e.StatusCode)
}

// RetryAfterHint returns the server's backoff request, if any.
func (e *StatusError) RetryAfterHint() time.Duration { return e.RetryAfter }

// Archive is a snapshot index. Safe for concurrent use.
type Archive struct {
	mu    sync.RWMutex
	snaps map[string][]time.Time // sorted ascending
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{snaps: make(map[string][]time.Time)}
}

// Add records a capture of the URL at time t.
func (a *Archive) Add(rawURL string, t time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.snaps[rawURL]
	i := sort.Search(len(s), func(i int) bool { return s[i].After(t) })
	s = append(s, time.Time{})
	copy(s[i+1:], s[i:])
	s[i] = t
	a.snaps[rawURL] = s
}

// NumURLs returns the number of distinct archived URLs.
func (a *Archive) NumURLs() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.snaps)
}

// FirstSeen returns the earliest capture of the URL.
func (a *Archive) FirstSeen(rawURL string) (time.Time, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s := a.snaps[rawURL]
	if len(s) == 0 {
		return time.Time{}, false
	}
	return s[0], true
}

// SeenBefore reports whether the URL was captured strictly before the
// cutoff.
func (a *Archive) SeenBefore(rawURL string, cutoff time.Time) bool {
	t, ok := a.FirstSeen(rawURL)
	return ok && t.Before(cutoff)
}

// Snapshots returns all capture times for the URL, ascending.
func (a *Archive) Snapshots(rawURL string) []time.Time {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s := a.snaps[rawURL]
	out := make([]time.Time, len(s))
	copy(out, s)
	return out
}

// availabilityResponse mirrors the shape of the real availability API.
type availabilityResponse struct {
	URL       string `json:"url"`
	Available bool   `json:"available"`
	FirstSeen string `json:"first_seen,omitempty"`
	Snapshots int    `json:"snapshots"`
}

// Handler serves the archive over HTTP:
//
//	GET /available?url=<u>            → capture availability
//	GET /available?url=<u>&before=<t> → availability strictly before t (RFC3339)
func Handler(a *Archive) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/available", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		target := q.Get("url")
		if target == "" {
			http.Error(w, "missing url parameter", http.StatusBadRequest)
			return
		}
		resp := availabilityResponse{URL: target}
		first, ok := a.FirstSeen(target)
		if ok {
			if beforeRaw := q.Get("before"); beforeRaw != "" {
				cutoff, err := time.Parse(time.RFC3339, beforeRaw)
				if err != nil {
					http.Error(w, "bad before parameter", http.StatusBadRequest)
					return
				}
				ok = first.Before(cutoff)
			}
		}
		if ok {
			resp.Available = true
			resp.FirstSeen = first.UTC().Format(time.RFC3339)
			resp.Snapshots = len(a.Snapshots(target))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	return mux
}

// Client queries a wayback service over HTTP.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the service at baseURL. httpClient
// may be nil.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{BaseURL: baseURL, HTTP: httpClient}
}

// SeenBefore reports whether the URL was captured strictly before the
// cutoff, asking the remote service.
func (c *Client) SeenBefore(ctx context.Context, rawURL string, cutoff time.Time) (bool, error) {
	u := fmt.Sprintf("%s/available?url=%s&before=%s",
		c.BaseURL, url.QueryEscape(rawURL), url.QueryEscape(cutoff.UTC().Format(time.RFC3339)))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, &StatusError{
			StatusCode: resp.StatusCode,
			RetryAfter: faultx.ParseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	var ar availabilityResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return false, fmt.Errorf("wayback: bad response: %w", err)
	}
	return ar.Available, nil
}
