package studysvc

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/tracex"
)

// findSpan returns the first span in tr named name, or nil.
func findSpan(tr *tracex.Trace, name string) *tracex.SpanRecord {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

// fetchTraceWith polls the server's ring until the trace contains a
// span named want: the request middleware ends its span only after the
// response has been written, so the caller can observe the trace one
// beat before that span lands.
func fetchTraceWith(t *testing.T, c *Client, id, want string) *tracex.Trace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr, err := c.Trace(context.Background(), id)
		if err == nil && findSpan(tr, want) != nil {
			return tr
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("server never recorded trace %s: %v", id, err)
			}
			t.Fatalf("trace %s never grew a %q span", id, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTracePropagation is the acceptance-criteria propagation test: a
// client-side span rides the traceparent header into the server, whose
// request, run and node spans all join the client's trace — one trace
// id spans both sides of the HTTP boundary, and the merged trace is a
// single tree rooted at the client span.
func TestTracePropagation(t *testing.T) {
	serverTracer := tracex.New(tracex.Config{IDs: tracex.NewSeqIDs(1000)})
	_, c := newTestService(t, Config{Tracer: serverTracer})

	clientTracer := tracex.New(tracex.Config{IDs: tracex.NewSeqIDs(1)})
	ctx := tracex.NewContext(context.Background(), clientTracer)
	ctx, span := tracex.StartSpan(ctx, "client call")
	if _, err := c.Run(ctx, tinyRequest(63)); err != nil {
		t.Fatal(err)
	}
	span.End()

	id := span.Context().Trace.String()
	remote := fetchTraceWith(t, c, id, "http POST /v1/study")
	if remote.TraceID != id {
		t.Fatalf("server trace id = %s, want the client's %s", remote.TraceID, id)
	}

	reqSpan := findSpan(remote, "http POST /v1/study")
	if reqSpan.Parent != span.Context().Span.String() {
		t.Errorf("server request span parent = %q, want the client span %s",
			reqSpan.Parent, span.Context().Span.String())
	}
	if findSpan(remote, "run") == nil || findSpan(remote, "synth") == nil {
		t.Error("server half of the trace is missing the run/synth spans")
	}
	var nodes int
	for _, s := range remote.Spans {
		if strings.HasPrefix(s.Name, "node ") {
			nodes++
		}
	}
	if nodes == 0 {
		t.Error("server half of the trace has no artefact node spans")
	}

	local, ok := clientTracer.Trace(id)
	if !ok {
		t.Fatal("client tracer lost its own trace")
	}
	merged := tracex.Merge(local, *remote)
	tree := merged.Tree()
	if len(tree) != 1 || tree[0].Name != "client call" {
		t.Fatalf("merged trace has %d roots, want 1 rooted at the client span", len(tree))
	}
}

// TestTraceEndpoints pins the ring's HTTP surface: the listing, the
// JSON and Perfetto fetch formats, and the 404s for unknown ids and
// for servers running without a tracer.
func TestTraceEndpoints(t *testing.T) {
	tracer := tracex.New(tracex.Config{IDs: tracex.NewSeqIDs(5)})
	_, c := newTestService(t, Config{Tracer: tracer})

	if _, err := c.Run(context.Background(), tinyRequest(64)); err != nil {
		t.Fatal(err)
	}
	var ids []string
	deadline := time.Now().Add(5 * time.Second)
	for len(ids) == 0 {
		var err error
		if ids, err = c.Traces(context.Background()); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("no trace recorded for the study request")
		}
		time.Sleep(5 * time.Millisecond)
	}

	id := ids[len(ids)-1]
	tr, err := c.Trace(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != id || len(tr.Spans) == 0 {
		t.Fatalf("trace %s came back empty (%d spans)", id, len(tr.Spans))
	}

	export, err := c.TraceExport(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(export), `"traceEvents"`) {
		t.Error("perfetto export is not Chrome trace-event JSON")
	}

	if _, err := c.Trace(context.Background(), strings.Repeat("0", 32)); err == nil {
		t.Error("unknown trace id did not 404")
	} else if he, ok := err.(*HTTPError); !ok || he.Status != http.StatusNotFound {
		t.Errorf("unknown trace id error = %v, want 404", err)
	}

	_, un := newTestService(t, Config{})
	if _, err := un.Traces(context.Background()); err == nil {
		t.Error("untraced server's /v1/trace did not 404")
	} else if he, ok := err.(*HTTPError); !ok || he.Status != http.StatusNotFound {
		t.Errorf("untraced server error = %v, want 404", err)
	}
}
