package actors

import (
	"sort"
	"time"

	"repro/internal/forum"
	"repro/internal/socialgraph"
)

// Group labels the five key-actor selection criteria of §6.3.
type Group string

// Key-actor groups, with the paper's shorthand.
const (
	GroupPacks     Group = "Packs" // actors offering ≥ MinPacks packs
	GroupEarnings  Group = "$"     // top earners by reported proofs
	GroupPopular   Group = "Hi"    // top H-index
	GroupExchange  Group = "Ce"    // top currency-exchange movers
	GroupInfluence Group = "I"     // top eigenvector centrality
)

// Groups lists all groups in presentation order.
var Groups = []Group{GroupPopular, GroupInfluence, GroupEarnings, GroupExchange, GroupPacks}

// KeyActorInputs carries the per-criterion scores.
type KeyActorInputs struct {
	// PacksShared: packs offered per actor.
	PacksShared map[forum.ActorID]int
	// EarningsUSD: total reported earnings per actor.
	EarningsUSD map[forum.ActorID]float64
	// Popularity: reply-based indices per thread starter.
	Popularity map[forum.ActorID]socialgraph.Popularity
	// Centrality: eigenvector centrality per actor.
	Centrality map[forum.ActorID]float64
	// ExchangeScore: the paper's currency-exchange score (share of
	// threads in Currency Exchange since starting eWhoring, scaled by
	// total threads).
	ExchangeScore map[forum.ActorID]float64
	// ExchangeThreads: raw CE thread count per actor (Table 10).
	ExchangeThreads map[forum.ActorID]int
}

// SelectionConfig sizes the selections. The paper takes the top 50 of
// each ranked criterion and every actor sharing at least 6 packs.
type SelectionConfig struct {
	TopK     int
	MinPacks int
}

// DefaultSelection returns the paper's parameters.
func DefaultSelection() SelectionConfig { return SelectionConfig{TopK: 50, MinPacks: 6} }

// KeyActors is the outcome of the five selections.
type KeyActors struct {
	Members map[Group][]forum.ActorID
	// All is the union, sorted by ID.
	All []forum.ActorID
}

// SelectKeyActors runs the five rank-based selections.
func SelectKeyActors(in KeyActorInputs, cfg SelectionConfig) KeyActors {
	if cfg.TopK <= 0 {
		cfg.TopK = 50
	}
	if cfg.MinPacks <= 0 {
		cfg.MinPacks = 6
	}
	ka := KeyActors{Members: make(map[Group][]forum.ActorID)}

	packScores := make(map[forum.ActorID]float64)
	for a, n := range in.PacksShared {
		if n >= cfg.MinPacks {
			packScores[a] = float64(n)
		}
	}
	ka.Members[GroupPacks] = topK(packScores, len(packScores))

	ka.Members[GroupEarnings] = topK(in.EarningsUSD, cfg.TopK)

	hScores := make(map[forum.ActorID]float64)
	for a, p := range in.Popularity {
		hScores[a] = float64(p.H)
	}
	ka.Members[GroupPopular] = topK(hScores, cfg.TopK)

	ka.Members[GroupExchange] = topK(in.ExchangeScore, cfg.TopK)
	ka.Members[GroupInfluence] = topK(in.Centrality, cfg.TopK)

	seen := make(map[forum.ActorID]struct{})
	for _, g := range Groups {
		for _, a := range ka.Members[g] {
			seen[a] = struct{}{}
		}
	}
	for a := range seen {
		ka.All = append(ka.All, a)
	}
	sort.Slice(ka.All, func(i, j int) bool { return ka.All[i] < ka.All[j] })
	return ka
}

// Intersections computes Table 9: for each pair of groups the number
// of shared members; the diagonal holds members unique to that group.
func (ka KeyActors) Intersections() map[Group]map[Group]int {
	sets := make(map[Group]map[forum.ActorID]struct{})
	for _, g := range Groups {
		s := make(map[forum.ActorID]struct{})
		for _, a := range ka.Members[g] {
			s[a] = struct{}{}
		}
		sets[g] = s
	}
	out := make(map[Group]map[Group]int)
	for _, g := range Groups {
		out[g] = make(map[Group]int)
		for _, h := range Groups {
			if g == h {
				continue
			}
			n := 0
			for a := range sets[g] {
				if _, ok := sets[h][a]; ok {
					n++
				}
			}
			out[g][h] = n
		}
		// Diagonal: unique to g.
		unique := 0
		for a := range sets[g] {
			alone := true
			for _, h := range Groups {
				if h == g {
					continue
				}
				if _, ok := sets[h][a]; ok {
					alone = false
					break
				}
			}
			if alone {
				unique++
			}
		}
		out[g][g] = unique
	}
	return out
}

// GroupStats is one row of Table 10: group means of the actors'
// characteristics.
type GroupStats struct {
	Group         Group
	Members       int
	AvgPosts      float64
	PctEwhoring   float64
	AvgDaysBefore float64
	AvgAmountUSD  float64
	AvgH          float64
	AvgI10        float64
	AvgI100       float64
	AvgPacks      float64
	AvgExchange   float64
}

// GroupCharacteristics computes Table 10 (one row per group plus the
// ALL row over the union).
func (ka KeyActors) GroupCharacteristics(profiles map[forum.ActorID]*Profile, in KeyActorInputs) []GroupStats {
	row := func(g Group, members []forum.ActorID) GroupStats {
		gs := GroupStats{Group: g, Members: len(members)}
		if len(members) == 0 {
			return gs
		}
		for _, a := range members {
			if p := profiles[a]; p != nil {
				gs.AvgPosts += float64(p.EwPosts)
				gs.PctEwhoring += p.PctEwhoring()
				gs.AvgDaysBefore += p.DaysBefore()
			}
			gs.AvgAmountUSD += in.EarningsUSD[a]
			pop := in.Popularity[a]
			gs.AvgH += float64(pop.H)
			gs.AvgI10 += float64(pop.I10)
			gs.AvgI100 += float64(pop.I100)
			gs.AvgPacks += float64(in.PacksShared[a])
			gs.AvgExchange += float64(in.ExchangeThreads[a])
		}
		n := float64(len(members))
		gs.AvgPosts /= n
		gs.PctEwhoring /= n
		gs.AvgDaysBefore /= n
		gs.AvgAmountUSD /= n
		gs.AvgH /= n
		gs.AvgI10 /= n
		gs.AvgI100 /= n
		gs.AvgPacks /= n
		gs.AvgExchange /= n
		return gs
	}
	out := make([]GroupStats, 0, len(Groups)+1)
	for _, g := range Groups {
		out = append(out, row(g, ka.Members[g]))
	}
	out = append(out, row(Group("ALL"), ka.All))
	return out
}

// ExchangeScores computes the paper's currency-exchange ranking: "We
// count the number of threads before and after their first eWhoring
// post. We calculate the percentage of threads made in Currency
// Exchange since they started eWhoring, and multiply this by the
// total amount of threads."
func ExchangeScores(store *forum.Store, ceBoard forum.BoardID, profiles map[forum.ActorID]*Profile) (scores map[forum.ActorID]float64, counts map[forum.ActorID]int) {
	scores = make(map[forum.ActorID]float64)
	counts = make(map[forum.ActorID]int)
	for a, p := range profiles {
		threads := store.ThreadsByActor(a)
		if len(threads) == 0 {
			continue
		}
		total := len(threads)
		ceAfter, after := 0, 0
		for _, tid := range threads {
			th := store.Thread(tid)
			if !th.Created.Before(p.FirstEw) {
				after++
				if th.Board == ceBoard {
					ceAfter++
					counts[a]++
				}
			} else if th.Board == ceBoard {
				counts[a]++
			}
		}
		if after == 0 || ceAfter == 0 {
			continue
		}
		pct := float64(ceAfter) / float64(after)
		scores[a] = pct * float64(total)
	}
	return scores, counts
}

// InterestPhase labels the Figure 5 phases.
type InterestPhase int

// Phases.
const (
	PhaseBefore InterestPhase = iota
	PhaseDuring
	PhaseAfter
)

// String names the phase.
func (p InterestPhase) String() string {
	switch p {
	case PhaseBefore:
		return "before"
	case PhaseDuring:
		return "during"
	default:
		return "after"
	}
}

// InterestProfile is the percentage of posts per board category in
// one phase.
type InterestProfile map[string]float64

// Interests computes Figure 5: the key actors' posts elsewhere on the
// forum (outside the eWhoring thread set and excluding the Lounge
// category) split into before / during / after their eWhoring span,
// as percentage per board category.
func Interests(store *forum.Store, key []forum.ActorID, profiles map[forum.ActorID]*Profile,
	ewThreads *forum.ThreadSet, excludeCategory string) map[InterestPhase]InterestProfile {

	counts := map[InterestPhase]map[string]int{
		PhaseBefore: {}, PhaseDuring: {}, PhaseAfter: {},
	}
	totals := map[InterestPhase]int{}
	for _, a := range key {
		p := profiles[a]
		if p == nil {
			continue
		}
		for _, post := range store.PostsByActor(a) {
			if ewThreads.Contains(post.Thread) {
				continue
			}
			cat := store.Board(store.Thread(post.Thread).Board).Category
			if cat == excludeCategory {
				continue
			}
			phase := phaseOf(post.Created, p.FirstEw, p.LastEw)
			counts[phase][cat]++
			totals[phase]++
		}
	}
	out := make(map[InterestPhase]InterestProfile, 3)
	for phase, byCat := range counts {
		prof := make(InterestProfile, len(byCat))
		if totals[phase] > 0 {
			for cat, n := range byCat {
				prof[cat] = 100 * float64(n) / float64(totals[phase])
			}
		}
		out[phase] = prof
	}
	return out
}

func phaseOf(t, firstEw, lastEw time.Time) InterestPhase {
	switch {
	case t.Before(firstEw):
		return PhaseBefore
	case t.After(lastEw):
		return PhaseAfter
	default:
		return PhaseDuring
	}
}
