package synth

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/randx"
	"repro/internal/urlx"
)

// Table 3 link-share weights (image-sharing sites), including the
// snowballed long tail.
var imageSiteWeights = []struct {
	domain string
	weight float64
}{
	{"imgur.com", 3297}, {"gyazo.com", 1006}, {"imageshack.com", 679},
	{"prnt.sc", 383}, {"photobucket.com", 311}, {"imagetwist.com", 105},
	{"imagezilla.net", 97}, {"minus.com", 51}, {"postimage.org", 47},
	{"imagebam.com", 44},
	// "Others": 700 across the snowballed hosts.
	{"otherimg00.example", 70}, {"otherimg01.example", 66},
	{"otherimg02.example", 64}, {"otherimg03.example", 62},
	{"otherimg04.example", 60}, {"otherimg05.example", 58},
	{"otherimg06.example", 56}, {"otherimg07.example", 56},
	{"otherimg08.example", 54}, {"otherimg09.example", 52},
	{"otherimg10.example", 52}, {"otherimg11.example", 50},
}

// Table 4 link-share weights (cloud-storage services).
var cloudSiteWeights = []struct {
	domain string
	weight float64
}{
	{"mediafire.com", 892}, {"mega.nz", 284}, {"dropbox.com", 130},
	{"oron.com", 95}, {"depositfiles.com", 46}, {"filefactory.com", 37},
	{"drive.google.com", 31}, {"ge.tt", 28}, {"zippyshare.com", 25},
	{"filedropper.com", 24},
	// "Others": 94 across the snowballed hosts.
	{"othercloud00.example", 14}, {"othercloud01.example", 13},
	{"othercloud02.example", 13}, {"othercloud03.example", 12},
	{"othercloud04.example", 12}, {"othercloud05.example", 11},
	{"othercloud06.example", 10}, {"othercloud07.example", 9},
}

func pickWeighted(rng *randx.Rand, table []struct {
	domain string
	weight float64
}) string {
	weights := make([]float64, len(table))
	for i, e := range table {
		weights[i] = e.weight
	}
	return table[rng.WeightedPick(weights)].domain
}

// nextToken returns a unique URL path token.
func (w *World) nextToken() string {
	w.urlCounter++
	return fmt.Sprintf("x%06d", w.urlCounter)
}

// genTOPContent builds the body and ground truth of one Thread
// Offering Packs: it composes a pack from a model's origin images
// (applying the transforms actors use), uploads previews to
// image-sharing sites and the pack zips to cloud storage (with the
// documented rates of link rot, takedowns and walls), and returns the
// post body containing the links.
func (w *World) genTOPContent(st *forumState, created time.Time) (string, *TOPTruth) {
	rng := st.rng
	top := &TOPTruth{Free: rng.Bool(0.187)}

	// Pick the model: flagged models are drained into free TOPs so
	// the hashlisted material actually circulates (and is caught).
	if top.Free && len(w.flaggedQueue) > 0 && rng.Bool(0.7) {
		top.Model = w.flaggedQueue[0]
		w.flaggedQueue = w.flaggedQueue[1:]
	} else if len(w.Models) > 0 {
		top.Model = rng.Intn(len(w.Models))
	}
	var model *Model
	if len(w.Models) > 0 {
		model = w.Models[top.Model]
	}

	// Preview links: free TOPs carry galleries (averages tuned to
	// Table 3's 7 314 links over the 774 linked TOPs); locked TOPs
	// post nothing openly.
	if top.Free {
		nPrev := 1 + rng.Poisson(8.4)
		for i := 0; i < nPrev; i++ {
			top.PreviewURLs = append(top.PreviewURLs, w.uploadPreview(st, model, created))
		}
		w.NumPreviewLinks += nPrev
	}

	// Pack links (free TOPs only).
	if top.Free && model != nil {
		nPack := 1 + rng.Poisson(1.2)
		for i := 0; i < nPack; i++ {
			url, flagged := w.uploadPack(st, model)
			top.PackURLs = append(top.PackURLs, url)
			if flagged {
				top.Flagged = true
			}
		}
		w.NumPackLinks += nPack
		if top.Flagged {
			w.NumFlaggedTOPs++
		}
	}

	name := "girls"
	if model != nil {
		name = model.Name
	}
	var body string
	if top.Free {
		body = fmt.Sprintf(randx.Pick(rng, topBodies),
			name, strings.Join(top.PreviewURLs, " "), strings.Join(top.PackURLs, " "))
	} else {
		body = fmt.Sprintf(randx.Pick(rng, topLockedBodies),
			name, strings.Join(top.PreviewURLs, " "))
	}
	return body, top
}

// uploadPreview uploads one preview-link target and returns its URL.
// The mix reproduces §4.2/§4.4: ~21% of links rot, ~20% are ToS
// takedowns (banner images), ~10% point at directory screenshots, the
// rest at genuine model previews (often modified to dodge reverse
// search).
func (w *World) uploadPreview(st *forumState, model *Model, created time.Time) string {
	rng := st.rng
	domain := pickWeighted(rng, imageSiteWeights)
	path := w.nextToken()
	url := fmt.Sprintf("https://%s/%s", domain, path)
	site, ok := w.Web.Site(domain)
	if !ok {
		return url
	}
	r := rng.Float64()
	switch {
	case r < 0.21:
		// Rotted: never registered → 404.
	case r < 0.41:
		site.PutImage(path, imagex.New(8, 8, 0)) // placeholder, then takedown
		site.SetStatus(path, hosting.StatusTakedown)
	case r < 0.51 && model != nil:
		site.PutImage(path, imagex.GenThumbnailGrid(rng.Uint64(), model.Seed, 160, 110))
	case model != nil:
		// A genuine preview: one of the model's "hot" (most reposted)
		// images, possibly modified.
		idx := w.hotImage(rng, model)
		img := w.ModelImage(model, idx)
		// img is freshly regenerated, so the preview modifications run
		// in place on it instead of allocating transformed copies.
		switch {
		case rng.Bool(0.30):
			img = img.Watermark(strings.ToUpper(st.spec.Name[:2]) + ".NET")
		case rng.Bool(0.20):
			img.ShadeInto(img, 0.25)
		case rng.Bool(0.25):
			img.RecompressInto(img, 24)
		}
		site.PutImage(path, img)
	default:
		site.PutImage(path, imagex.GenLandscape(rng.Uint64(), w.Config.ImageSize, false))
	}
	return url
}

// hotImage picks a model image biased towards high repost counts.
func (w *World) hotImage(rng *randx.Rand, model *Model) int {
	best, bestReposts := 0, -1
	for t := 0; t < 3; t++ {
		i := rng.Intn(len(model.Images))
		if model.Images[i].Reposts > bestReposts {
			best, bestReposts = i, model.Images[i].Reposts
		}
	}
	return best
}

// uploadPack composes a pack zip from the model's images and uploads
// it to a cloud-storage service. It reports whether the pack contains
// a hashlisted image. Packs embedding flagged material are forced
// live so the pipeline's PhotoDNA gate is exercised.
func (w *World) uploadPack(st *forumState, model *Model) (string, bool) {
	rng := st.rng
	flagged := model.Flagged >= 0
	domain := pickWeighted(rng, cloudSiteWeights)
	if flagged {
		domain = "mediafire.com" // live, no wall, not defunct
	}
	path := "file/" + w.nextToken()
	url := fmt.Sprintf("https://%s/%s", domain, path)
	site, ok := w.Web.Site(domain)
	if !ok {
		return url, false
	}

	// Compose the pack: ~80% of the model's shoot, with the transform
	// mix actors apply (mirroring produces the zero-match images).
	var images []*imagex.Image
	for i := range model.Images {
		if rng.Bool(0.2) && i != model.Flagged {
			continue
		}
		// img is freshly regenerated per pack member, so the actor
		// transform mix runs in place instead of allocating copies.
		img := w.ModelImage(model, i)
		r := rng.Float64()
		switch {
		case i == model.Flagged:
			// Flagged material circulates unmodified or recompressed —
			// PhotoDNA must still match it.
			if rng.Bool(0.5) {
				img.RecompressInto(img, 32)
			}
		case r < 0.20:
			img.RecompressInto(img, 24)
		case r < 0.25:
			img = img.Watermark("PACK")
		case r < 0.30:
			img.MirrorInto(img)
		}
		images = append(images, img)
	}
	if err := site.PutPack(path, images); err != nil {
		return url, false
	}
	if !flagged {
		r := rng.Float64()
		switch {
		case r < 0.17:
			site.SetStatus(path, hosting.StatusDeleted)
		case r < 0.27:
			site.SetStatus(path, hosting.StatusTakedown)
		}
	}
	return url, flagged
}

// kindOfSite reports the whitelist kind the hosting world would
// advertise for a domain (used to wire snowball sampling in tests and
// the pipeline).
func (w *World) kindOfSite(domain string) (urlx.Kind, bool) {
	return w.Web.VisitKind(domain)
}
