// Package forum implements a CrimeBB-like relational store for
// underground-forum scrape data: forums contain boards, boards contain
// threads, threads contain posts, and posts are written by actors.
//
// The store is append-only and maintains the secondary indexes every
// stage of the study needs (posts by thread, posts by actor, threads by
// board, heading keyword search). It mirrors the schema of the CrimeBB
// dataset the paper consumes, so the pipeline code reads exactly the
// way the paper describes its queries ("we searched for two specific
// keywords in the headings of all the threads", "we include all the
// threads from the specific board dedicated to eWhoring").
package forum

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Identifier types. IDs are dense, 1-based, and assigned by the Store.
type (
	// ForumID identifies a forum (e.g. Hackforums).
	ForumID int
	// BoardID identifies a board within a forum.
	BoardID int
	// ThreadID identifies a thread within a board.
	ThreadID int
	// PostID identifies a post within a thread.
	PostID int
	// ActorID identifies a forum member. Actors are per-forum, as in
	// CrimeBB: the same person on two forums is two actors.
	ActorID int
)

// Forum is one scraped community.
type Forum struct {
	ID   ForumID
	Name string
}

// Board is a topical section of a forum. Category is the forum's own
// top-level grouping (e.g. Hackforums groups boards into Hacking,
// Gaming, Market, ...), which §6 uses to measure actor interests.
type Board struct {
	ID       BoardID
	Forum    ForumID
	Name     string
	Category string
}

// Thread is a conversation: a heading plus an ordered list of posts.
type Thread struct {
	ID      ThreadID
	Board   BoardID
	Forum   ForumID
	Author  ActorID
	Heading string
	Created time.Time
}

// Post is one message in a thread. Quotes holds the PostID the post
// explicitly quotes, or 0 if it quotes nothing; the social graph uses
// this to attribute replies.
type Post struct {
	ID      PostID
	Thread  ThreadID
	Author  ActorID
	Body    string
	Created time.Time
	Quotes  PostID
}

// Actor is a forum member account.
type Actor struct {
	ID         ActorID
	Forum      ForumID
	Name       string
	Registered time.Time
}

// Store is an in-memory CrimeBB-like dataset. The zero value is not
// usable; construct with NewStore. Store is not safe for concurrent
// mutation; concurrent reads after loading are safe.
type Store struct {
	forums  []Forum
	boards  []Board
	threads []Thread
	posts   []Post
	actors  []Actor

	forumByName    map[string]ForumID
	boardsByForum  map[ForumID][]BoardID
	threadsByBoard map[BoardID][]ThreadID
	postsByThread  map[ThreadID][]PostID
	postsByActor   map[ActorID][]PostID
	threadsByActor map[ActorID][]ThreadID
}

// NewStore returns an empty dataset.
func NewStore() *Store {
	return &Store{
		forumByName:    make(map[string]ForumID),
		boardsByForum:  make(map[ForumID][]BoardID),
		threadsByBoard: make(map[BoardID][]ThreadID),
		postsByThread:  make(map[ThreadID][]PostID),
		postsByActor:   make(map[ActorID][]PostID),
		threadsByActor: make(map[ActorID][]ThreadID),
	}
}

// Reserve pre-sizes the backing slices for a dataset of roughly the
// given shape. Loading a paper-scale corpus otherwise spends a large
// share of its time in append's doubling copies of the posts slice
// (~600k elements at scale 1.0). Capacity never affects contents:
// a reserved store and an unreserved one are DeepEqual.
func (s *Store) Reserve(threads, posts, actors int) {
	if n := len(s.threads) + threads; n > cap(s.threads) {
		s.threads = append(make([]Thread, 0, n), s.threads...)
	}
	if n := len(s.posts) + posts; n > cap(s.posts) {
		s.posts = append(make([]Post, 0, n), s.posts...)
	}
	if n := len(s.actors) + actors; n > cap(s.actors) {
		s.actors = append(make([]Actor, 0, n), s.actors...)
	}
}

// AddForum registers a forum and returns its ID. Forum names must be
// unique; re-adding a name returns the existing ID.
func (s *Store) AddForum(name string) ForumID {
	if id, ok := s.forumByName[name]; ok {
		return id
	}
	id := ForumID(len(s.forums) + 1)
	s.forums = append(s.forums, Forum{ID: id, Name: name})
	s.forumByName[name] = id
	return id
}

// AddBoard registers a board under a forum and returns its ID.
func (s *Store) AddBoard(forum ForumID, name, category string) BoardID {
	s.mustForum(forum)
	id := BoardID(len(s.boards) + 1)
	s.boards = append(s.boards, Board{ID: id, Forum: forum, Name: name, Category: category})
	s.boardsByForum[forum] = append(s.boardsByForum[forum], id)
	return id
}

// AddActor registers a member of a forum and returns its ID.
func (s *Store) AddActor(forum ForumID, name string, registered time.Time) ActorID {
	s.mustForum(forum)
	id := ActorID(len(s.actors) + 1)
	s.actors = append(s.actors, Actor{ID: id, Forum: forum, Name: name, Registered: registered})
	return id
}

// AddThread creates a thread with its initial post and returns the
// thread ID. The first post's body is firstPost; its author is the
// thread author.
func (s *Store) AddThread(board BoardID, author ActorID, heading, firstPost string, created time.Time) ThreadID {
	b := s.mustBoard(board)
	id := ThreadID(len(s.threads) + 1)
	s.threads = append(s.threads, Thread{
		ID: id, Board: board, Forum: b.Forum, Author: author,
		Heading: heading, Created: created,
	})
	s.threadsByBoard[board] = append(s.threadsByBoard[board], id)
	s.threadsByActor[author] = append(s.threadsByActor[author], id)
	s.addPost(id, author, firstPost, created, 0)
	return id
}

// AddReply appends a post to an existing thread. quotes may be 0 (no
// quote) or the ID of an earlier post in any thread.
func (s *Store) AddReply(thread ThreadID, author ActorID, body string, created time.Time, quotes PostID) PostID {
	s.mustThread(thread)
	return s.addPost(thread, author, body, created, quotes)
}

func (s *Store) addPost(thread ThreadID, author ActorID, body string, created time.Time, quotes PostID) PostID {
	id := PostID(len(s.posts) + 1)
	s.posts = append(s.posts, Post{
		ID: id, Thread: thread, Author: author,
		Body: body, Created: created, Quotes: quotes,
	})
	s.postsByThread[thread] = append(s.postsByThread[thread], id)
	s.postsByActor[author] = append(s.postsByActor[author], id)
	return id
}

func (s *Store) mustForum(id ForumID) Forum {
	if id < 1 || int(id) > len(s.forums) {
		panic(fmt.Sprintf("forum: unknown forum %d", id))
	}
	return s.forums[id-1]
}

func (s *Store) mustBoard(id BoardID) Board {
	if id < 1 || int(id) > len(s.boards) {
		panic(fmt.Sprintf("forum: unknown board %d", id))
	}
	return s.boards[id-1]
}

func (s *Store) mustThread(id ThreadID) Thread {
	if id < 1 || int(id) > len(s.threads) {
		panic(fmt.Sprintf("forum: unknown thread %d", id))
	}
	return s.threads[id-1]
}

// Forum returns the forum with the given ID.
func (s *Store) Forum(id ForumID) Forum { return s.mustForum(id) }

// ForumByName returns the forum with the given name.
func (s *Store) ForumByName(name string) (Forum, bool) {
	id, ok := s.forumByName[name]
	if !ok {
		return Forum{}, false
	}
	return s.forums[id-1], true
}

// Board returns the board with the given ID.
func (s *Store) Board(id BoardID) Board { return s.mustBoard(id) }

// Thread returns the thread with the given ID.
func (s *Store) Thread(id ThreadID) Thread { return s.mustThread(id) }

// Post returns the post with the given ID.
func (s *Store) Post(id PostID) Post {
	if id < 1 || int(id) > len(s.posts) {
		panic(fmt.Sprintf("forum: unknown post %d", id))
	}
	return s.posts[id-1]
}

// Actor returns the actor with the given ID.
func (s *Store) Actor(id ActorID) Actor {
	if id < 1 || int(id) > len(s.actors) {
		panic(fmt.Sprintf("forum: unknown actor %d", id))
	}
	return s.actors[id-1]
}

// Forums returns all forums in creation order.
func (s *Store) Forums() []Forum { return s.forums }

// Boards returns the boards of a forum in creation order.
func (s *Store) Boards(forum ForumID) []Board {
	ids := s.boardsByForum[forum]
	out := make([]Board, len(ids))
	for i, id := range ids {
		out[i] = s.boards[id-1]
	}
	return out
}

// BoardByName returns the first board of the forum with the given name.
func (s *Store) BoardByName(forum ForumID, name string) (Board, bool) {
	for _, id := range s.boardsByForum[forum] {
		if b := s.boards[id-1]; b.Name == name {
			return b, true
		}
	}
	return Board{}, false
}

// NumForums, NumBoards, NumThreads, NumPosts and NumActors report
// dataset sizes.
func (s *Store) NumForums() int  { return len(s.forums) }
func (s *Store) NumBoards() int  { return len(s.boards) }
func (s *Store) NumThreads() int { return len(s.threads) }
func (s *Store) NumPosts() int   { return len(s.posts) }
func (s *Store) NumActors() int  { return len(s.actors) }

// ThreadsInBoard returns the IDs of all threads in a board, in
// creation order.
func (s *Store) ThreadsInBoard(board BoardID) []ThreadID {
	return s.threadsByBoard[board]
}

// PostsInThread returns the posts of a thread in posting order.
func (s *Store) PostsInThread(thread ThreadID) []Post {
	ids := s.postsByThread[thread]
	out := make([]Post, len(ids))
	for i, id := range ids {
		out[i] = s.posts[id-1]
	}
	return out
}

// FirstPost returns the opening post of a thread.
func (s *Store) FirstPost(thread ThreadID) Post {
	ids := s.postsByThread[thread]
	if len(ids) == 0 {
		panic(fmt.Sprintf("forum: thread %d has no posts", thread))
	}
	return s.posts[ids[0]-1]
}

// NumReplies returns the number of posts in a thread beyond the opener.
func (s *Store) NumReplies(thread ThreadID) int {
	n := len(s.postsByThread[thread])
	if n == 0 {
		return 0
	}
	return n - 1
}

// PostsByActor returns an actor's posts in posting order.
func (s *Store) PostsByActor(actor ActorID) []Post {
	ids := s.postsByActor[actor]
	out := make([]Post, len(ids))
	for i, id := range ids {
		out[i] = s.posts[id-1]
	}
	return out
}

// ThreadsByActor returns the IDs of threads the actor started.
func (s *Store) ThreadsByActor(actor ActorID) []ThreadID {
	return s.threadsByActor[actor]
}

// AllThreads returns the IDs of every thread in the dataset.
func (s *Store) AllThreads() []ThreadID {
	out := make([]ThreadID, len(s.threads))
	for i := range s.threads {
		out[i] = s.threads[i].ID
	}
	return out
}

// SearchHeadings returns the IDs of threads whose lowercased heading
// contains any of the given lowercase keywords, in thread order. This
// is the paper's thread-selection primitive ("we searched for two
// specific keywords (i.e., 'ewhor' and 'e-whor') in the headings of
// all the threads ... comparison was done in lowercase").
func (s *Store) SearchHeadings(keywords ...string) []ThreadID {
	var out []ThreadID
	for i := range s.threads {
		h := strings.ToLower(s.threads[i].Heading)
		for _, kw := range keywords {
			if strings.Contains(h, kw) {
				out = append(out, s.threads[i].ID)
				break
			}
		}
	}
	return out
}

// ActivitySpan returns the times of an actor's first and last posts,
// and false if the actor never posted.
func (s *Store) ActivitySpan(actor ActorID) (first, last time.Time, ok bool) {
	posts := s.postsByActor[actor]
	if len(posts) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first = s.posts[posts[0]-1].Created
	last = first
	for _, id := range posts[1:] {
		t := s.posts[id-1].Created
		if t.Before(first) {
			first = t
		}
		if t.After(last) {
			last = t
		}
	}
	return first, last, true
}

// Span returns the times of the earliest and latest posts in the
// dataset, and false if there are no posts.
func (s *Store) Span() (first, last time.Time, ok bool) {
	if len(s.posts) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first = s.posts[0].Created
	last = first
	for i := range s.posts {
		t := s.posts[i].Created
		if t.Before(first) {
			first = t
		}
		if t.After(last) {
			last = t
		}
	}
	return first, last, true
}

// ThreadSet is a set of thread IDs with deterministic iteration order.
type ThreadSet struct {
	ids map[ThreadID]struct{}
}

// NewThreadSet builds a set from the given IDs.
func NewThreadSet(ids ...ThreadID) *ThreadSet {
	ts := &ThreadSet{ids: make(map[ThreadID]struct{}, len(ids))}
	for _, id := range ids {
		ts.ids[id] = struct{}{}
	}
	return ts
}

// Add inserts IDs into the set.
func (ts *ThreadSet) Add(ids ...ThreadID) {
	for _, id := range ids {
		ts.ids[id] = struct{}{}
	}
}

// Contains reports membership.
func (ts *ThreadSet) Contains(id ThreadID) bool {
	_, ok := ts.ids[id]
	return ok
}

// Len returns the set size.
func (ts *ThreadSet) Len() int { return len(ts.ids) }

// Sorted returns the members in ascending ID order.
func (ts *ThreadSet) Sorted() []ThreadID {
	out := make([]ThreadID, 0, len(ts.ids))
	for id := range ts.ids {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
