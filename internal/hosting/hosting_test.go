package hosting

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/imagex"
	"repro/internal/urlx"
)

func newTestWorld(t *testing.T) (*World, *httptest.Server) {
	t.Helper()
	w := NewWorld()
	srv := httptest.NewServer(w)
	t.Cleanup(srv.Close)
	return w, srv
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServeImage(t *testing.T) {
	w, srv := newTestWorld(t)
	site := w.AddSite(SiteConfig{Domain: "imgur.com", Kind: urlx.KindImageSharing})
	im := imagex.GenModel(1, 0, imagex.PoseNude, 32)
	site.PutImage("aB3dE", im)

	resp, body := get(t, srv.URL+"/imgur.com/aB3dE")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeSIMG {
		t.Fatalf("content-type %q", ct)
	}
	back, err := imagex.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W {
		t.Fatal("served image corrupted")
	}
}

func TestServePack(t *testing.T) {
	w, srv := newTestWorld(t)
	site := w.AddSite(SiteConfig{Domain: "mediafire.com", Kind: urlx.KindCloudStorage})
	imgs := []*imagex.Image{
		imagex.GenModel(1, 0, imagex.PoseNude, 32),
		imagex.GenModel(1, 1, imagex.PoseDressed, 32),
	}
	if err := site.PutPack("file/xyz", imgs); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, srv.URL+"/mediafire.com/file/xyz")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != ContentTypeZip {
		t.Fatalf("status %d ct %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	back, err := imagex.DecodePackZip(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("pack has %d images", len(back))
	}
}

func TestDeletedReturns404(t *testing.T) {
	w, srv := newTestWorld(t)
	site := w.AddSite(SiteConfig{Domain: "imgur.com", Kind: urlx.KindImageSharing})
	site.PutImage("gone", imagex.GenModel(2, 0, imagex.PoseNude, 32))
	if !site.SetStatus("gone", StatusDeleted) {
		t.Fatal("SetStatus failed")
	}
	resp, _ := get(t, srv.URL+"/imgur.com/gone")
	if resp.StatusCode != 404 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSetStatusUnknownPath(t *testing.T) {
	w, _ := newTestWorld(t)
	site := w.AddSite(SiteConfig{Domain: "x.com", Kind: urlx.KindImageSharing})
	if site.SetStatus("nope", StatusDeleted) {
		t.Fatal("SetStatus on missing object returned true")
	}
}

func TestTakedownOnImageSiteServesBanner(t *testing.T) {
	w, srv := newTestWorld(t)
	site := w.AddSite(SiteConfig{Domain: "imgur.com", Kind: urlx.KindImageSharing})
	site.PutImage("tos", imagex.GenModel(3, 0, imagex.PoseNude, 32))
	site.SetStatus("tos", StatusTakedown)
	resp, body := get(t, srv.URL+"/imgur.com/tos")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != ContentTypeSIMG {
		t.Fatalf("status %d ct %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	banner, err := imagex.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	// The banner must be a text image, not the original model photo.
	if banner.SkinFraction() > 0.01 {
		t.Fatal("takedown served the original image")
	}
}

func TestTakedownOnCloudStorageReturns410(t *testing.T) {
	w, srv := newTestWorld(t)
	site := w.AddSite(SiteConfig{Domain: "mediafire.com", Kind: urlx.KindCloudStorage})
	site.PutPack("p", []*imagex.Image{imagex.GenModel(1, 0, imagex.PoseNude, 32)})
	site.SetStatus("p", StatusTakedown)
	resp, _ := get(t, srv.URL+"/mediafire.com/p")
	if resp.StatusCode != 410 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestLoginWall(t *testing.T) {
	w, srv := newTestWorld(t)
	site := w.AddSite(SiteConfig{Domain: "dropbox.com", Kind: urlx.KindCloudStorage, RequiresLogin: true})
	site.PutPack("s/abc", []*imagex.Image{imagex.GenModel(1, 0, imagex.PoseNude, 32)})
	resp, _ := get(t, srv.URL+"/dropbox.com/s/abc")
	if resp.StatusCode != 401 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDefunctSite(t *testing.T) {
	w, srv := newTestWorld(t)
	w.AddSite(SiteConfig{Domain: "oron.com", Kind: urlx.KindCloudStorage, Defunct: true})
	resp, _ := get(t, srv.URL+"/oron.com/anything")
	if resp.StatusCode != 503 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestUnknownDomain(t *testing.T) {
	_, srv := newTestWorld(t)
	resp, _ := get(t, srv.URL+"/nonexistent.com/x")
	if resp.StatusCode != 502 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMissingDomainSegment(t *testing.T) {
	_, srv := newTestWorld(t)
	resp, _ := get(t, srv.URL+"/")
	if resp.StatusCode != 400 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestLandingPageAdvertisesKind(t *testing.T) {
	w, srv := newTestWorld(t)
	w.AddSite(SiteConfig{Domain: "imgur.com", Kind: urlx.KindImageSharing})
	resp, body := get(t, srv.URL+"/imgur.com/landing")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "image-sharing") {
		t.Fatalf("landing page %q", body)
	}
}

func TestResolver(t *testing.T) {
	w := NewWorld()
	resolve := w.Resolver("http://127.0.0.1:9999")
	got, err := resolve("https://IMGUR.com/aB3dE?x=1")
	if err != nil {
		t.Fatal(err)
	}
	want := "http://127.0.0.1:9999/imgur.com/aB3dE?x=1"
	if got != want {
		t.Fatalf("resolve = %q want %q", got, want)
	}
	if _, err := resolve("://bad"); err == nil {
		t.Fatal("bad URL accepted")
	}
	if _, err := resolve("https:///nohost"); err == nil {
		t.Fatal("hostless URL accepted")
	}
}

func TestVisitKind(t *testing.T) {
	w := NewWorld()
	w.AddSite(SiteConfig{Domain: "imgur.com", Kind: urlx.KindImageSharing})
	w.AddSite(SiteConfig{Domain: "oron.com", Kind: urlx.KindCloudStorage, Defunct: true})
	if k, ok := w.VisitKind("imgur.com"); !ok || k != urlx.KindImageSharing {
		t.Fatal("VisitKind imgur wrong")
	}
	if _, ok := w.VisitKind("oron.com"); ok {
		t.Fatal("defunct site should not be visitable")
	}
	if _, ok := w.VisitKind("unknown.com"); ok {
		t.Fatal("unknown domain visitable")
	}
}

func TestAddSiteIdempotent(t *testing.T) {
	w := NewWorld()
	a := w.AddSite(SiteConfig{Domain: "x.com", Kind: urlx.KindImageSharing})
	b := w.AddSite(SiteConfig{Domain: "x.com", Kind: urlx.KindCloudStorage})
	if a != b {
		t.Fatal("AddSite created duplicate site")
	}
	if len(w.Domains()) != 1 {
		t.Fatal("Domains wrong")
	}
}
