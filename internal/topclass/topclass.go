// Package topclass implements §4.1's hybrid classifier for Threads
// Offering Packs (TOPs): a Linear-SVM over statistical + NLP features
// combined (by union) with keyword heuristics. "If either method
// classifies a thread as offering packs, this is included in our
// pipeline to extract links."
package topclass

import (
	"errors"
	"math"
	"strings"

	"repro/internal/forum"
	"repro/internal/ml"
	"repro/internal/textproc"
	"repro/internal/urlx"
)

// Table 2 keyword sets.
var (
	// EWhoringKeywords select eWhoring-related threads by heading.
	EWhoringKeywords = []string{"ewhor", "e-whor"}
	// TOPKeywords mark threads offering packs.
	TOPKeywords = []string{
		"pack", "packs", "package", "packages", "pics", "pictures",
		"videos", "vids", "video", "collection", "collections", "set",
		"sets", "repository", "repositories", "selling", "wts",
		"offering", "free", "unsaturated", "new", "giving",
		"compilation", "private", "girl", "girls", "sexy",
	}
	// InfoRequestKeywords mark threads asking for packs or help.
	InfoRequestKeywords = []string{
		"[question]", "[help]", "need advice", "need", "needed", "wtb",
		"want to buy", "req", "request", "question", "looking for",
		"give me advice", "quick question", "question for",
		"i wonder whether", "i wonder if", "im asking for",
		"general query", "general question", "i have a question",
		"i have a doubt", "help requested", "how to", "help please",
		"help with", "need help", "need a", "need some help",
		"help needed", "i want help", "help me", "seeking",
	}
	// TutorialKeywords mark guide threads.
	TutorialKeywords = []string{
		"tutorial", "[tut]", "howto", "how-to", "definite guide", "guide",
	}
	// EarningsKeywords select posts sharing earnings.
	EarningsKeywords = []string{"earn", "profit", "money", "gain"}
)

// Labeled pairs a thread with its annotation.
type Labeled struct {
	Thread forum.ThreadID
	IsTOP  bool
}

// numStatFeatures is the count of non-NLP features; TF-IDF terms are
// appended after them.
const numStatFeatures = 8

// Extractor turns threads into feature vectors: "for each thread it
// extracts: the number of replies; the number of links to cloud
// storage and image sharing sites, and number of links to other
// threads in the forum; the length of the first post; and a set of
// features extracted from the text using NLP", plus the special
// keyword counts.
type Extractor struct {
	store     *forum.Store
	whitelist *urlx.Whitelist
	vocab     *textproc.Vocab
}

// NewExtractor builds an extractor over a store and hosting
// whitelist.
func NewExtractor(store *forum.Store, wl *urlx.Whitelist) *Extractor {
	return &Extractor{store: store, whitelist: wl, vocab: textproc.NewVocab()}
}

// threadText returns the heading and first-post text of a thread.
func (e *Extractor) threadText(tid forum.ThreadID) (string, string) {
	th := e.store.Thread(tid)
	return th.Heading, e.store.FirstPost(tid).Body
}

// Fit learns the TF-IDF vocabulary from the given threads' headings
// and first posts. Call before Vector.
func (e *Extractor) Fit(threads []forum.ThreadID) {
	docs := make([][]string, 0, len(threads))
	for _, tid := range threads {
		h, b := e.threadText(tid)
		docs = append(docs, textproc.TokenizeFiltered(h+" "+b))
	}
	e.vocab.Fit(docs)
}

// Dim returns the feature-space dimensionality (stat features + vocab).
func (e *Extractor) Dim() int { return numStatFeatures + e.vocab.Size() }

// Vector extracts the feature vector of one thread.
func (e *Extractor) Vector(tid forum.ThreadID) ml.SparseVec {
	heading, body := e.threadText(tid)
	lower := strings.ToLower(heading)

	links := e.whitelist.ClassifyAll(urlx.Extract(body))
	cloud, img := 0, 0
	for _, l := range links {
		switch l.Kind {
		case urlx.KindCloudStorage:
			cloud++
		case urlx.KindImageSharing:
			img++
		}
	}
	threadLinks := strings.Count(body, "showthread.php")

	stat := [numStatFeatures]float64{
		math.Log1p(float64(e.store.NumReplies(tid))) / 4,
		float64(cloud) / 3,
		float64(img) / 5,
		float64(threadLinks) / 3,
		math.Log1p(float64(len(body))) / 8,
		float64(textproc.CountRune(heading, '?')),
		float64(textproc.CountOccurrences(lower, InfoRequestKeywords)) / 3,
		float64(textproc.CountOccurrences(lower, TutorialKeywords)) / 2,
	}
	tfidf := e.vocab.TFIDFVector(textproc.TokenizeFiltered(heading + " " + body))

	idx := make([]int, 0, numStatFeatures+len(tfidf.Idx))
	val := make([]float64, 0, numStatFeatures+len(tfidf.Val))
	for i, v := range stat {
		if v != 0 {
			idx = append(idx, i)
			val = append(val, v)
		}
	}
	for k, i := range tfidf.Idx {
		idx = append(idx, numStatFeatures+i)
		val = append(val, tfidf.Val[k])
	}
	return ml.SparseVec{Idx: idx, Val: val}
}

// Heuristic is the expert-rule side of the hybrid classifier:
// "for each thread we account for keywords frequently observed in TOP
// headings such as 'images', 'video' or 'unsaturated' ... we also
// account for both the number of question marks and the presence of
// keywords related to buying to discard threads asking for packs."
func Heuristic(store *forum.Store, tid forum.ThreadID) bool {
	heading := strings.ToLower(store.Thread(tid).Heading)
	topHits := textproc.CountOccurrences(heading, TOPKeywords)
	if topHits < 2 {
		return false
	}
	if textproc.CountRune(heading, '?') > 0 {
		return false
	}
	buyish := []string{"wtb", "want to buy", "looking for", "request", "req",
		"need", "question", "help", "how to", "advice", "seeking", "wonder"}
	if textproc.CountOccurrences(heading, buyish) > 0 {
		return false
	}
	if textproc.CountOccurrences(heading, TutorialKeywords) > 0 {
		return false
	}
	// Meta-discussion markers: threads talking about packs rather
	// than offering them.
	meta := []string{"discussion", "opinion", "rant", "thoughts",
		"debate", "dead", "state of"}
	if textproc.CountOccurrences(heading, meta) > 0 {
		return false
	}
	return true
}

// Hybrid is the trained classifier.
type Hybrid struct {
	Extractor *Extractor
	SVM       *ml.SVM
}

// Train fits the hybrid classifier's ML side on annotated threads
// (the paper uses 800 of 1 000).
func Train(store *forum.Store, wl *urlx.Whitelist, train []Labeled, cfg ml.SVMConfig) (*Hybrid, error) {
	if len(train) == 0 {
		return nil, errors.New("topclass: empty training set")
	}
	ex := NewExtractor(store, wl)
	tids := make([]forum.ThreadID, len(train))
	for i, l := range train {
		tids[i] = l.Thread
	}
	ex.Fit(tids)
	examples := make([]ml.Example, len(train))
	for i, l := range train {
		examples[i] = ml.Example{X: ex.Vector(l.Thread), Y: l.IsTOP}
	}
	svm, err := ml.TrainSVM(examples, ex.Dim(), cfg)
	if err != nil {
		return nil, err
	}
	return &Hybrid{Extractor: ex, SVM: svm}, nil
}

// Vote is the decision breakdown for one thread.
type Vote struct {
	ML        bool
	Heuristic bool
}

// IsTOP reports the union decision.
func (v Vote) IsTOP() bool { return v.ML || v.Heuristic }

// Classify returns both methods' votes for a thread.
func (h *Hybrid) Classify(tid forum.ThreadID) Vote {
	return Vote{
		ML:        h.SVM.Predict(h.Extractor.Vector(tid)),
		Heuristic: Heuristic(h.Extractor.store, tid),
	}
}

// Evaluate scores the hybrid (union) decision on a labelled test set,
// as the paper evaluates (precision 92%, recall 93%, F1 92%).
func (h *Hybrid) Evaluate(test []Labeled) ml.Metrics {
	var m ml.Metrics
	for _, l := range test {
		m.Observe(h.Classify(l.Thread).IsTOP(), l.IsTOP)
	}
	return m
}

// ExtractResult summarises a corpus sweep.
type ExtractResult struct {
	TOPs      []forum.ThreadID
	MLCount   int
	HeurCount int
	BothCount int
}

// Extract sweeps threads and returns every thread either method
// classifies as a TOP, with the paper's method-overlap counts (ML
// 3 456, heuristics 2 676, both 1 995).
func (h *Hybrid) Extract(threads []forum.ThreadID) ExtractResult {
	var res ExtractResult
	for _, tid := range threads {
		v := h.Classify(tid)
		if v.ML {
			res.MLCount++
		}
		if v.Heuristic {
			res.HeurCount++
		}
		if v.ML && v.Heuristic {
			res.BothCount++
		}
		if v.IsTOP() {
			res.TOPs = append(res.TOPs, tid)
		}
	}
	return res
}
