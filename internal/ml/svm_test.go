package ml

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

// linearlySeparable builds a 2-feature dataset separable by x0 > x1.
func linearlySeparable(n int, seed uint64) []Example {
	rng := randx.New(seed)
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()
		b := rng.Float64()
		if math.Abs(a-b) < 0.1 {
			continue // margin gap
		}
		out = append(out, Example{
			X: SparseVec{Idx: []int{0, 1}, Val: []float64{a, b}},
			Y: a > b,
		})
	}
	return out
}

func TestTrainSeparable(t *testing.T) {
	examples := linearlySeparable(400, 5)
	model, err := TrainSVM(examples, 2, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	met := model.Evaluate(examples)
	if acc := met.Accuracy(); acc < 0.97 {
		t.Fatalf("training accuracy %.3f on separable data", acc)
	}
}

func TestTrainGeneralises(t *testing.T) {
	examples := linearlySeparable(600, 7)
	train, test := TrainTestSplit(examples, 0.8, 3)
	model, err := TrainSVM(train, 2, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	met := model.Evaluate(test)
	if met.F1() < 0.95 {
		t.Fatalf("test F1 %.3f on separable data", met.F1())
	}
}

func TestTrainDeterministic(t *testing.T) {
	examples := linearlySeparable(200, 9)
	a, err := TrainSVM(examples, 2, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSVM(examples, 2, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	if a.B != b.B {
		t.Fatal("same seed produced different bias")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainSVM(nil, 2, DefaultSVMConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	onlyPos := []Example{{X: SparseVec{Idx: []int{0}, Val: []float64{1}}, Y: true}}
	if _, err := TrainSVM(onlyPos, 1, DefaultSVMConfig()); err == nil {
		t.Error("single-class training set accepted")
	}
	both := []Example{
		{X: SparseVec{Idx: []int{5}, Val: []float64{1}}, Y: true},
		{X: SparseVec{Idx: []int{0}, Val: []float64{1}}, Y: false},
	}
	if _, err := TrainSVM(both, 2, DefaultSVMConfig()); err == nil {
		t.Error("out-of-range feature index accepted")
	}
	cfg := DefaultSVMConfig()
	cfg.Lambda = 0
	if _, err := TrainSVM(both, 6, cfg); err == nil {
		t.Error("zero lambda accepted")
	}
}

func TestClassWeightShiftsRecall(t *testing.T) {
	// Imbalanced noisy data: 10% positives.
	rng := randx.New(13)
	var examples []Example
	for i := 0; i < 1000; i++ {
		pos := i%10 == 0
		center := 0.3
		if pos {
			center = 0.6
		}
		v := center + 0.25*rng.NormFloat64()
		examples = append(examples, Example{
			X: SparseVec{Idx: []int{0}, Val: []float64{v}},
			Y: pos,
		})
	}
	low := DefaultSVMConfig()
	low.ClassWeight = 1
	high := DefaultSVMConfig()
	high.ClassWeight = 8
	mLow, err := TrainSVM(examples, 1, low)
	if err != nil {
		t.Fatal(err)
	}
	mHigh, err := TrainSVM(examples, 1, high)
	if err != nil {
		t.Fatal(err)
	}
	rLow := mLow.Evaluate(examples).Recall()
	rHigh := mHigh.Evaluate(examples).Recall()
	if rHigh < rLow {
		t.Fatalf("higher class weight lowered recall: %.3f -> %.3f", rLow, rHigh)
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, FN: 2, TN: 88}
	if p := m.Precision(); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("Precision = %v", p)
	}
	if r := m.Recall(); math.Abs(r-0.8) > 1e-12 {
		t.Errorf("Recall = %v", r)
	}
	if f := m.F1(); math.Abs(f-0.8) > 1e-12 {
		t.Errorf("F1 = %v", f)
	}
	if a := m.Accuracy(); math.Abs(a-0.96) > 1e-12 {
		t.Errorf("Accuracy = %v", a)
	}
}

func TestMetricsZeroSafe(t *testing.T) {
	var m Metrics
	if m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 || m.Accuracy() != 0 {
		t.Fatal("zero metrics should not divide by zero")
	}
}

func TestMetricsObserve(t *testing.T) {
	var m Metrics
	m.Observe(true, true)
	m.Observe(true, false)
	m.Observe(false, true)
	m.Observe(false, false)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Fatalf("Observe = %+v", m)
	}
}

func TestTrainTestSplit(t *testing.T) {
	examples := linearlySeparable(1000, 21)
	train, test := TrainTestSplit(examples, 0.8, 1)
	if len(train)+len(test) != len(examples) {
		t.Fatalf("split sizes %d+%d != %d", len(train), len(test), len(examples))
	}
	wantTrain := int(math.Round(0.8 * float64(len(examples))))
	if len(train) != wantTrain {
		t.Fatalf("train size = %d want %d", len(train), wantTrain)
	}
	// Deterministic under the same seed.
	train2, _ := TrainTestSplit(examples, 0.8, 1)
	for i := range train {
		if train[i].Y != train2[i].Y {
			t.Fatal("split not deterministic")
		}
	}
}

func TestTrainTestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("trainFrac=1 did not panic")
		}
	}()
	TrainTestSplit(linearlySeparable(10, 1), 1, 1)
}

// Property: precision, recall, F1 and accuracy are always within [0,1].
func TestQuickMetricsBounded(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		m := Metrics{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		for _, v := range []float64{m.Precision(), m.Recall(), m.F1(), m.Accuracy()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: F1 lies between min and max of precision and recall.
func TestQuickF1Between(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		m := Metrics{TP: int(tp) + 1, FP: int(fp), FN: int(fn)}
		p, r, f1 := m.Precision(), m.Recall(), m.F1()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrainSVM(b *testing.B) {
	examples := linearlySeparable(1000, 3)
	cfg := DefaultSVMConfig()
	cfg.Epochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainSVM(examples, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	examples := linearlySeparable(500, 3)
	model, err := TrainSVM(examples, 2, DefaultSVMConfig())
	if err != nil {
		b.Fatal(err)
	}
	x := examples[0].X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.Predict(x)
	}
}
