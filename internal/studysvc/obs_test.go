package studysvc

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

// blockRuns parks every run inside execute (holding its pool slot)
// until the returned release is closed; started receives one token per
// run that reached the hook.
func blockRuns(svc *Service) (started chan struct{}, release chan struct{}) {
	started = make(chan struct{}, 16)
	release = make(chan struct{})
	svc.testRunHook = func() {
		started <- struct{}{}
		<-release
	}
	return started, release
}

// postStudy POSTs a raw study request and returns the response.
func postStudy(t *testing.T, url string, r Request, query string) *http.Response {
	t.Helper()
	u := url + "/v1/study"
	if query != "" {
		u += "?" + query
	}
	resp, err := http.Post(u, "application/json", jsonBody(t, r))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSaturatedPoolSheds is the acceptance-criteria shed test: with
// the queue disabled, a saturated pool answers 429 + Retry-After and
// counts the shed; once the pool drains, the same request is accepted.
func TestSaturatedPoolSheds(t *testing.T) {
	svc := New(Config{MaxConcurrentRuns: 1, MaxQueueDepth: -1})
	started, release := blockRuns(svc)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	// Occupy the only slot: the run parks in the hook, the wait=false
	// response returns immediately.
	resp := postStudy(t, srv.URL, tinyRequest(11), "wait=false")
	var first Envelope
	if err := jsonDecode(resp, &first); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupying request: status %d", resp.StatusCode)
	}
	<-started

	// A distinct request now has no slot and no queue: shed.
	resp = postStudy(t, srv.URL, tinyRequest(12), "")
	var body errorResponse
	if err := jsonDecode(resp, &body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated pool answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q", ra, "1")
	}
	if !strings.Contains(body.Error, "saturated") {
		t.Errorf("error body %q does not name saturation", body.Error)
	}
	if st := svc.Stats(); st.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", st.Shed)
	}

	// Cache hits need no slot: the occupying run's options coalesce
	// onto the in-flight run even while the pool is saturated.
	resp = postStudy(t, srv.URL, tinyRequest(11), "wait=false")
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("coalescable request was shed: status %d", resp.StatusCode)
	}

	// Drain the pool and wait for the first run to finish; the shed
	// request is now accepted.
	close(release)
	resp = postStudy(t, srv.URL, tinyRequest(11), "")
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.URL, nil)
	c.MaxRetries = -1 // a retry here would hide a broken drain
	env, err := c.Run(context.Background(), tinyRequest(12))
	if err != nil {
		t.Fatalf("request after drain: %v", err)
	}
	if env.Status != StatusDone {
		t.Fatalf("request after drain: %+v", env)
	}
	if st := svc.Stats(); st.Shed != 1 {
		t.Errorf("drain changed the shed counter: %d", st.Shed)
	}
}

// TestQueueWaitTimeoutSheds: with a queue, a waiter that cannot get a
// slot within MaxQueueWait is shed, and the queue depth returns to 0.
func TestQueueWaitTimeoutSheds(t *testing.T) {
	svc := New(Config{
		MaxConcurrentRuns: 1,
		MaxQueueDepth:     4,
		MaxQueueWait:      50 * time.Millisecond,
		RetryAfter:        3 * time.Second,
	})
	_, release := blockRuns(svc)
	defer close(release)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	resp := postStudy(t, srv.URL, tinyRequest(21), "wait=false")
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	resp = postStudy(t, srv.URL, tinyRequest(22), "")
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued request answered %d, want 429 after the wait bound", resp.StatusCode)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Errorf("shed after %v, before the 50ms queue wait elapsed", waited)
	}
	// RetryAfter is configurable and rounds up to whole seconds.
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want %q", ra, "3")
	}
	st := svc.Stats()
	if st.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", st.Shed)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth %d after the waiter was shed, want 0", st.QueueDepth)
	}
}

// TestQueueFullSheds: waiters beyond MaxQueueDepth are shed
// immediately, without burning the queue-wait deadline.
func TestQueueFullSheds(t *testing.T) {
	svc := New(Config{
		MaxConcurrentRuns: 1,
		MaxQueueDepth:     1,
		MaxQueueWait:      30 * time.Second, // must not be waited out
	})
	_, release := blockRuns(svc)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	resp := postStudy(t, srv.URL, tinyRequest(31), "wait=false")
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	// Fill the one queue spot with a parked waiter.
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		resp := postStudy(t, srv.URL, tinyRequest(32), "")
		_ = resp.Body.Close()
	}()
	waitFor(t, func() bool { return svc.Stats().QueueDepth == 1 })

	start := time.Now()
	resp = postStudy(t, srv.URL, tinyRequest(33), "")
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request answered %d, want 429", resp.StatusCode)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("queue-full shed took %v; it must not wait out the deadline", waited)
	}
	close(release)
	<-parked
}

// waitFor polls cond to true within a deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestInFlightRequestsTracksOpenHTTP: a request parked waiting on a
// run shows up in InFlightRequests — what the server's shutdown log
// names — and leaves when it completes.
func TestInFlightRequestsTracksOpenHTTP(t *testing.T) {
	svc := New(Config{MaxConcurrentRuns: 1})
	_, release := blockRuns(svc)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postStudy(t, srv.URL, tinyRequest(41), "")
		_ = resp.Body.Close()
	}()
	waitFor(t, func() bool { return len(svc.InFlightRequests()) == 1 })
	entry := svc.InFlightRequests()[0]
	if !strings.Contains(entry, "POST /v1/study") {
		t.Errorf("in-flight entry %q does not name the request", entry)
	}
	close(release)
	<-done
	waitFor(t, func() bool { return len(svc.InFlightRequests()) == 0 })
}

// TestRequestIDHeader: every response carries X-Request-ID, and a
// caller-provided id is adopted rather than replaced.
func TestRequestIDHeader(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-ID", "caller-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-7" {
		t.Errorf("caller-provided request id replaced: %q", got)
	}
}

// statsKeyPaths pins the /v1/stats JSON shape: every key path in the
// document, with array elements folded as "[]". Extending the stats is
// additive (the golden below gains lines); renaming or removing a
// field breaks dashboards and must show up here.
func statsKeyPaths(prefix string, v any, paths map[string]bool) {
	switch v := v.(type) {
	case map[string]any:
		for k, child := range v {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			paths[p] = true
			statsKeyPaths(p, child, paths)
		}
	case []any:
		for _, child := range v {
			statsKeyPaths(prefix+"[]", child, paths)
		}
	}
}

func TestStatsJSONShape(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, nil)
	if _, err := c.Run(context.Background(), tinyRequest(51)); err != nil {
		t.Fatal(err)
	}
	_ = svc // the run populates queue_wait, memo and nodes

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := jsonDecode(resp, &doc); err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	statsKeyPaths("", doc, paths)
	got := make([]string, 0, len(paths))
	for p := range paths {
		got = append(got, p)
	}
	sort.Strings(got)

	want := []string{
		"cache_hits",
		"cached_results",
		"coalesced",
		"evictions",
		"in_flight",
		"memo",
		"memo.computes",
		"memo.entries",
		"memo.evictions",
		"memo.hits",
		"nodes",
		"nodes[].computes",
		"nodes[].latency",
		"nodes[].latency.buckets",
		"nodes[].latency.buckets[].count",
		"nodes[].latency.buckets[].le_ms",
		"nodes[].latency.count",
		"nodes[].latency.max_ms",
		"nodes[].latency.min_ms",
		"nodes[].latency.p50_ms",
		"nodes[].latency.p95_ms",
		"nodes[].latency.p99_ms",
		"nodes[].latency.total_ms",
		"nodes[].memo_hits",
		"nodes[].name",
		"nodes[].p50_ms",
		"nodes[].p95_ms",
		"open_requests",
		"queue_depth",
		"queue_wait",
		"queue_wait.buckets",
		"queue_wait.buckets[].count",
		"queue_wait.buckets[].le_ms",
		"queue_wait.count",
		"queue_wait.max_ms",
		"queue_wait.min_ms",
		"queue_wait.p50_ms",
		"queue_wait.p95_ms",
		"queue_wait.p99_ms",
		"queue_wait.total_ms",
		"runs_completed",
		"runs_failed",
		"runs_started",
		"shed",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("/v1/stats key paths changed:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestClientRetriesShedRequests: the client backs off on 429 as the
// server asks (capped, deterministic) and succeeds when a slot opens.
// One submission is one logical request: every attempt in the retry
// sequence carries the same client-minted X-Request-ID.
func TestClientRetriesShedRequests(t *testing.T) {
	var attempts int
	var attemptIDs []string
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/study", func(w http.ResponseWriter, req *http.Request) {
		attempts++
		attemptIDs = append(attemptIDs, req.Header.Get("X-Request-ID"))
		if attempts <= 2 {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "study pool saturated: queue full")
			return
		}
		writeJSON(w, Envelope{ID: "s-1", Status: StatusDone})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL, nil)
	c.MaxBackoff = 5 * time.Millisecond // cap the 1s Retry-After for test speed
	env, err := c.Run(context.Background(), tinyRequest(61))
	if err != nil {
		t.Fatalf("retrying client gave up: %v (attempts %d)", err, attempts)
	}
	if env.Status != StatusDone || attempts != 3 {
		t.Fatalf("status %s after %d attempts, want done after 3", env.Status, attempts)
	}
	if attemptIDs[0] == "" || !strings.HasPrefix(attemptIDs[0], "c-") {
		t.Errorf("first attempt X-Request-ID = %q, want a client-minted c-N id", attemptIDs[0])
	}
	for i, id := range attemptIDs {
		if id != attemptIDs[0] {
			t.Errorf("attempt %d X-Request-ID = %q, want %q (one submission, one id)", i+1, id, attemptIDs[0])
		}
	}

	// MaxRetries < 0 disables retrying: the raw 429 surfaces, with the
	// server's body and hint attached.
	attempts = 0
	c.MaxRetries = -1
	_, err = c.Run(context.Background(), tinyRequest(61))
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("non-retrying client error = %v, want *HTTPError", err)
	}
	if he.Status != http.StatusTooManyRequests || he.RetryAfter != time.Second {
		t.Errorf("HTTPError = %+v, want 429 with 1s hint", he)
	}
	if !strings.Contains(he.Msg, "queue full") {
		t.Errorf("HTTPError.Msg %q lost the server's reason", he.Msg)
	}
	if attempts != 1 {
		t.Errorf("non-retrying client made %d attempts, want 1", attempts)
	}
}

// captureRT records the X-Request-ID a request carried and the one the
// response echoed back.
type captureRT struct {
	sent   *string
	echoed *string
}

func (c captureRT) RoundTrip(req *http.Request) (*http.Response, error) {
	*c.sent = req.Header.Get("X-Request-ID")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil {
		*c.echoed = resp.Header.Get("X-Request-ID")
	}
	return resp, err
}

// TestClientRequestIDEchoed: a real service adopts the client-minted
// request id instead of assigning its own — the response echo matches
// what the client sent, so both sides' logs share the join key.
func TestClientRequestIDEchoed(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	var sent, echoed string
	c := NewClient(srv.URL, &http.Client{Transport: captureRT{&sent, &echoed}})
	if _, err := c.Run(context.Background(), tinyRequest(62)); err != nil {
		t.Fatal(err)
	}
	if sent == "" || !strings.HasPrefix(sent, "c-") {
		t.Errorf("client sent X-Request-ID %q, want a c-N id", sent)
	}
	if echoed != sent {
		t.Errorf("server echoed X-Request-ID %q, want the client's %q", echoed, sent)
	}
}

// TestClientSurfacesErrorBody: a non-2xx response's error carries the
// server's reason, not just the status code.
func TestClientSurfacesErrorBody(t *testing.T) {
	_, c := newTestService(t, Config{MaxScale: 0.1})
	_, err := c.Run(context.Background(), Request{Scale: 0.5})
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("error = %v, want *HTTPError", err)
	}
	if he.Status != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", he.Status)
	}
	if !strings.Contains(he.Msg, "exceeds the service limit") {
		t.Errorf("Msg %q lost the server's reason", he.Msg)
	}
	if !strings.Contains(err.Error(), "exceeds the service limit") {
		t.Errorf("Error() %q lost the server's reason", err.Error())
	}
}

// TestOriginRequestThreadsToRun: the run records which HTTP request
// started it — the join key between the request log and the run log.
func TestOriginRequestThreadsToRun(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/study",
		jsonBody(t, tinyRequest(71)))
	req.Header.Set("X-Request-ID", "origin-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := jsonDecode(resp, &env); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	r := svc.byID[env.ID]
	svc.mu.Unlock()
	if r == nil {
		t.Fatalf("run %s not addressable", env.ID)
	}
	if r.origin != "origin-1" {
		t.Errorf("run origin = %q, want the starting request's id", r.origin)
	}
}
