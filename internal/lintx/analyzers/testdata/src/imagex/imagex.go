// Package imagex is the fixture double of the real raster pool: the
// poolpair analyzer matches GetImage/PutImage by package and function
// name, so this stub exercises the same pairing rules.
package imagex

type Image struct {
	W, H int
	Pix  []byte
}

func GetImage(w, h int) *Image { return &Image{W: w, H: h, Pix: make([]byte, w*h)} }

func PutImage(im *Image) {}
