package synth

import (
	"time"

	"repro/internal/imagex"
	"repro/internal/photodna"
	"repro/internal/reverse"
)

// Plans are the value-captured halves of deferred generation jobs
// (exec.go): the walk fills one in from rng draws, render computes the
// image-derived parts on a worker, and applyTo performs the
// order-sensitive world mutations on the applier. Plans hold scalars
// and owned slices only — never *Model, which the walk keeps mutating
// while jobs are in flight.

// indexPlan indexes one model image into the reverse-search corpus and
// the Wayback archive: the origin record plus its reposts.
type indexPlan struct {
	// Image identity (GenModel arguments; hashing draws no randomness).
	seed    uint64
	variant int
	pose    imagex.Pose
	size    int

	origin        reverse.Record
	originCapture time.Time
	reposts       []repostPlan

	// hash is filled by render.
	hash imagex.Hash128
}

// repostPlan is one repost record; archived marks a Wayback capture.
type repostPlan struct {
	rec      reverse.Record
	capture  time.Time
	archived bool
}

func (p *indexPlan) render() {
	p.hash = imagex.Hash128Of(imagex.GenModel(p.seed, p.variant, p.pose, p.size))
}

func (p *indexPlan) applyTo(w *World) {
	w.Reverse.Add(p.hash, p.origin)
	w.Wayback.Add(p.origin.URL, p.originCapture)
	for _, rp := range p.reposts {
		w.Reverse.Add(p.hash, rp.rec)
		if rp.archived {
			w.Wayback.Add(rp.rec.URL, rp.capture)
		}
	}
}

// hashPlan inserts one flagged image into the PhotoDNA hashlist.
// AddHash appends to the multi-index's bucket slices, whose order
// DeepEqual sees, so the insert itself must run on the applier.
type hashPlan struct {
	seed    uint64
	variant int
	pose    imagex.Pose
	size    int
	entry   photodna.Entry

	hash photodna.RobustHash
}

func (p *hashPlan) render() {
	p.hash = photodna.HashImage(imagex.GenModel(p.seed, p.variant, p.pose, p.size))
}

func (p *hashPlan) applyTo(w *World) {
	w.HashList.AddHash(p.hash, p.entry)
}
