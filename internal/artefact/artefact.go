// Package artefact is a small dependency-graph engine for the study's
// named artefacts (Table 1, the §4 classifier, Table 5 provenance,
// the §5/§6 analyses, ...). A Graph holds typed nodes keyed by stable
// names with declared dependencies; Evaluate computes a requested set
// of targets — and nothing outside their transitive closure — running
// independent nodes concurrently on top of internal/pipeline, with
// per-node memoization in a shared Store keyed by each node's own
// canonical request key.
//
// The engine is what turns the monolithic study into a composable
// one: a service can answer "just Table 5" without paying for the
// actor analysis, and two requests for different tables of the same
// world share the common prefix of the graph through the Store's
// in-flight deduplication.
package artefact

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/pipeline"
)

// Deps carries the resolved dependency values of one node computation,
// keyed by dependency name.
type Deps map[string]any

// Get returns the named dependency value as T. It panics on a missing
// name or a type mismatch — both are programming errors in the node
// registry (an undeclared dependency, or a node whose value type
// drifted from its consumers).
func Get[T any](d Deps, name string) T {
	v, ok := d[name]
	if !ok {
		panic(fmt.Sprintf("artefact: dependency %q was not declared", name))
	}
	t, ok := v.(T)
	if !ok {
		panic(fmt.Sprintf("artefact: dependency %q is %T, not %T", name, v, t))
	}
	return t
}

// Node is one named computation over an environment E (for the study
// graph, the *core.Study being evaluated).
type Node[E any] struct {
	// Name is the node's stable identity in the graph.
	Name string
	// Deps names the nodes whose values Compute consumes.
	Deps []string
	// Key returns the memo key for the node under env — the canonical
	// projection of the request onto the parameters that actually
	// determine this node's value. Nodes with equal keys must compute
	// equal values. A nil Key (or an empty string) disables
	// memoization for the node.
	Key func(env E) string
	// Compute produces the node's value from its dependency values.
	Compute func(ctx context.Context, env E, deps Deps) (any, error)
}

// Graph is a registry of nodes forming a DAG. Register every node
// first; Evaluate may then run concurrently from any number of
// goroutines.
type Graph[E any] struct {
	nodes map[string]Node[E]
	order []string // registration order
}

// NewGraph returns an empty graph.
func NewGraph[E any]() *Graph[E] {
	return &Graph[E]{nodes: make(map[string]Node[E])}
}

// Register adds a node. Names must be unique and non-empty and
// Compute must be set; dependencies may be registered in any order
// (they are validated by Evaluate's closure walk).
func (g *Graph[E]) Register(n Node[E]) error {
	if n.Name == "" {
		return fmt.Errorf("artefact: node with empty name")
	}
	if n.Compute == nil {
		return fmt.Errorf("artefact: node %q has no Compute", n.Name)
	}
	if _, dup := g.nodes[n.Name]; dup {
		return fmt.Errorf("artefact: node %q registered twice", n.Name)
	}
	g.nodes[n.Name] = n
	g.order = append(g.order, n.Name)
	return nil
}

// MustRegister is Register, panicking on error — for static
// registries built at package init.
func (g *Graph[E]) MustRegister(n Node[E]) {
	if err := g.Register(n); err != nil {
		panic(err)
	}
}

// Names returns every node name in registration order.
func (g *Graph[E]) Names() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Deps returns the declared dependencies of every node, keyed by node
// name — the graph shape, for consumers like the trace critical-path
// analyzer that need edges without values.
func (g *Graph[E]) Deps() map[string][]string {
	out := make(map[string][]string, len(g.nodes))
	for name, n := range g.nodes {
		out[name] = append([]string(nil), n.Deps...)
	}
	return out
}

// Closure returns the transitive dependency closure of the targets in
// topological order (dependencies before dependents). Unknown names
// and dependency cycles are errors.
func (g *Graph[E]) Closure(targets ...string) ([]string, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(g.nodes))
	var order []string
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("artefact: dependency cycle through %q", name)
		}
		n, ok := g.nodes[name]
		if !ok {
			return fmt.Errorf("artefact: unknown node %q", name)
		}
		state[name] = visiting
		for _, d := range n.Deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[name] = done
		order = append(order, name)
		return nil
	}
	for _, t := range targets {
		if err := visit(t); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Event reports one resolved node to an Evaluate observer.
type Event struct {
	// Node is the resolved node's name.
	Node string
	// Memoized reports that the value came from the store (either a
	// completed entry or another evaluation's in-flight computation)
	// rather than being computed by this evaluation.
	Memoized bool
	// Wall is the time this evaluation spent resolving the node:
	// compute time when it computed, wait time when it was memoized.
	Wall time.Duration
}

// EvalOptions tunes one Evaluate call.
type EvalOptions struct {
	// Observe, when set, is called once per resolved node (serialized
	// by the engine, in completion order).
	Observe func(Event)
}

// Evaluate computes the targets and their transitive closure,
// returning every resolved value by node name. Independent nodes run
// concurrently; each node starts as soon as its dependencies resolve.
// Values memoize into store by each node's Key — a nil store gets a
// private, evaluation-local store, so shared dependencies still
// compute exactly once. An empty target list evaluates the whole
// graph. The first node error (or ctx cancellation) aborts the
// evaluation.
func (g *Graph[E]) Evaluate(ctx context.Context, env E, store *Store, opts EvalOptions, targets ...string) (map[string]any, error) {
	if len(targets) == 0 {
		targets = g.Names()
	}
	needed, err := g.Closure(targets...)
	if err != nil {
		return nil, err
	}
	if store == nil {
		store = NewStore(len(needed))
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type slot struct {
		done chan struct{}
		val  any
		err  error
	}
	slots := make(map[string]*slot, len(needed))
	for _, name := range needed {
		slots[name] = &slot{done: make(chan struct{})}
	}
	var obsMu sync.Mutex
	var group pipeline.Group
	for _, name := range needed {
		n := g.nodes[name]
		sl := slots[name]
		group.Go(func() {
			defer close(sl.done)
			deps := make(Deps, len(n.Deps))
			for _, d := range n.Deps {
				dsl := slots[d]
				select {
				case <-dsl.done:
				case <-ctx.Done():
					sl.err = ctx.Err()
					return
				}
				if dsl.err != nil {
					sl.err = fmt.Errorf("artefact: %s: dependency %s: %w", n.Name, d, dsl.err)
					return
				}
				deps[d] = dsl.val
			}
			key := ""
			if n.Key != nil {
				key = n.Key(env)
			}
			start := time.Now()
			val, memoized, err := store.resolve(ctx, n.Name, key, func(ctx context.Context) (any, error) {
				return n.Compute(ctx, env, deps)
			})
			sl.val, sl.err = val, err
			if err != nil {
				cancel() // wind down sibling nodes
				return
			}
			if opts.Observe != nil {
				obsMu.Lock()
				opts.Observe(Event{Node: n.Name, Memoized: memoized, Wall: time.Since(start)})
				obsMu.Unlock()
			}
		})
	}
	group.Wait()

	// Report the first error in topological order, unwrapping the
	// dependency chain to the node that actually failed.
	for _, name := range needed {
		if err := slots[name].err; err != nil {
			return nil, err
		}
	}
	out := make(map[string]any, len(needed))
	for _, name := range needed {
		out[name] = slots[name].val
	}
	return out, nil
}
