// Package loadgen is the SLO load harness: it drives a target request
// rate of study submissions against a live study service and measures
// what the paper's pipeline looks like as a production endpoint —
// latency percentiles, achieved throughput and the shed rate of the
// service's admission control. `ewsweep -load` is its CLI, and its
// benchjson artifact (BENCH_load.json) joins the committed-baseline
// regression gate, so CI pins the serving SLO the way it pins ns/op.
//
// The generator is open-loop: requests launch on a fixed ticker at the
// target rate regardless of how fast earlier ones complete (bounded by
// Concurrency — when the bound is hit, the measured rate drops and
// AchievedRPS reports it honestly rather than silently back-pressuring
// the ticker into a closed loop).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/studysvc"
	"repro/internal/tracex"
)

// Spec describes one load run.
type Spec struct {
	// TargetRPS is the submission rate to drive (required, > 0).
	TargetRPS float64
	// Duration is how long to drive it (required, > 0).
	Duration time.Duration
	// Concurrency bounds in-flight requests (default 2×TargetRPS,
	// at least 8): the client-side limit that keeps an overloaded
	// server from accumulating unbounded goroutines in the generator.
	Concurrency int
	// Seeds is how many distinct worlds the generator cycles through
	// (default 4): seed i%Seeds offsets from Seed, so the request mix
	// exercises both the service's result cache (repeats) and fresh
	// runs (distinct seeds).
	Seeds int
	// Seed is the base world seed (default 2019).
	Seed uint64
	// Scale is the per-request corpus scale (default 0.01 — load runs
	// measure the service, not the world generator).
	Scale float64
	// AnnotationSize is the per-request annotation corpus (default
	// 150, the test-tier size).
	AnnotationSize int
	// Warmup, when true (the default via DefaultSpec), runs one
	// sequential pass over all seeds before measuring, so world
	// generation and cold artefact computes land outside the measured
	// window and the percentiles describe steady-state serving.
	Warmup bool
	// Tracer, when set, samples one trace from the run: the first
	// warmup request (the cold-start study — the interesting one)
	// carries a traceparent minted here, and Result.SampleTraceID names
	// the shared trace for fetching from the server's /v1/trace ring.
	// Requires Warmup; the measured window is never traced.
	Tracer *tracex.Tracer
}

// DefaultSpec fills unset Spec fields.
func (s Spec) withDefaults() Spec {
	if s.Concurrency <= 0 {
		s.Concurrency = int(2 * s.TargetRPS)
		if s.Concurrency < 8 {
			s.Concurrency = 8
		}
	}
	if s.Seeds <= 0 {
		s.Seeds = 4
	}
	if s.Seed == 0 {
		s.Seed = 2019
	}
	if s.Scale <= 0 {
		s.Scale = 0.01
	}
	if s.AnnotationSize <= 0 {
		s.AnnotationSize = 150
	}
	return s
}

// Result aggregates one load run.
type Result struct {
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	CacheHits   int     `json:"cache_hits"`
	DurationMS  int64   `json:"duration_ms"`
	AchievedRPS float64 `json:"achieved_rps"`
	// ShedRate is Shed / (OK + Shed): the fraction of well-formed
	// submissions the service rejected under admission control.
	ShedRate float64 `json:"shed_rate"`
	// ErrorRate is Errors / Requests: the fraction of requests that
	// failed for reasons other than admission control (5xx, transport
	// errors, timeouts). Shedding is the service degrading as designed;
	// errors are it breaking — the SLO gate distinguishes them.
	ErrorRate float64 `json:"error_rate"`
	// Latency percentiles over successful requests, milliseconds.
	// Shed responses are fast rejections by design and are excluded —
	// they are measured by ShedRate instead.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// ErrorSamples holds the first few non-shed error strings, for
	// the operator reading a failed run.
	ErrorSamples []string `json:"error_samples,omitempty"`
	// SampleTraceID is the trace id of the sampled cold-start request
	// (set only when Spec.Tracer was provided).
	SampleTraceID string `json:"sample_trace_id,omitempty"`
	// SampleTrace is that trace with both halves merged — the
	// generator's warmup span and the server's request/run/node spans,
	// fetched right after warmup, before the measured window's
	// requests flood the server's bounded ring and evict it. Excluded
	// from the JSON artifact; correlate by SampleTraceID instead.
	SampleTrace *tracex.Trace `json:"-"`
}

// Run drives the load described by spec through client and aggregates
// the outcome. The client's retry policy is forced off for the
// measured window: a load run must observe every shed, not paper over
// them with backoff.
func Run(ctx context.Context, client *studysvc.Client, spec Spec) (*Result, error) {
	if spec.TargetRPS <= 0 {
		return nil, errors.New("loadgen: TargetRPS must be > 0")
	}
	if spec.Duration <= 0 {
		return nil, errors.New("loadgen: Duration must be > 0")
	}
	spec = spec.withDefaults()

	// Copy the client with retries disabled: the measurement depends
	// on seeing raw 429s.
	c := *client
	c.MaxRetries = -1

	request := func(i int) studysvc.Request {
		return studysvc.Request{
			Seed:           spec.Seed + uint64(i%spec.Seeds),
			Scale:          spec.Scale,
			AnnotationSize: spec.AnnotationSize,
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       Result
	)

	if spec.Warmup {
		for i := 0; i < spec.Seeds; i++ {
			// Sequential, full-patience warmup: each world generates
			// and computes once, so the measured window serves from
			// cache + memo. A warmup shed (impossible sequentially
			// unless the pool is busy with foreign traffic) or error
			// is ignored — the measured window will report it.
			reqCtx := ctx
			var span *tracex.Span
			if i == 0 && spec.Tracer != nil {
				// Sample the first warmup request: the cold-start study,
				// whose trace shows synth + fresh node computes. The span
				// context rides the traceparent header into the server.
				reqCtx = tracex.NewContext(ctx, spec.Tracer)
				reqCtx, span = tracex.StartSpan(reqCtx, "load warmup request")
				res.SampleTraceID = span.Context().Trace.String()
			}
			_, _ = c.Run(reqCtx, request(i))
			span.End()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		if res.SampleTraceID != "" {
			res.SampleTrace = fetchSampleTrace(ctx, &c, spec.Tracer, res.SampleTraceID)
		}
	}
	sem := make(chan struct{}, spec.Concurrency)
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / spec.TargetRPS)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(spec.Duration)
	defer deadline.Stop()

	start := time.Now()
	i := 0
drive:
	for {
		select {
		case <-ctx.Done():
			break drive
		case <-deadline.C:
			break drive
		case <-ticker.C:
		}
		select {
		case sem <- struct{}{}:
		default:
			// Concurrency bound hit: skip this tick rather than
			// back-pressure the ticker; the achieved rate reports it.
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			reqStart := time.Now()
			env, err := c.Run(ctx, request(i))
			elapsed := time.Since(reqStart)
			mu.Lock()
			defer mu.Unlock()
			res.Requests++
			switch {
			case err == nil && env.Status == studysvc.StatusDone:
				res.OK++
				if env.Cached {
					res.CacheHits++
				}
				latencies = append(latencies, elapsed)
			case isShed(err):
				res.Shed++
			default:
				res.Errors++
				msg := ""
				if err != nil {
					msg = err.Error()
				} else {
					msg = "run finished " + env.Status + ": " + env.Error
				}
				if len(res.ErrorSamples) < 5 {
					res.ErrorSamples = append(res.ErrorSamples, msg)
				}
			}
		}(i)
		i++
	}
	wg.Wait()
	wall := time.Since(start)

	res.DurationMS = wall.Milliseconds()
	if wall > 0 {
		res.AchievedRPS = float64(res.Requests) / wall.Seconds()
	}
	if n := res.OK + res.Shed; n > 0 {
		res.ShedRate = float64(res.Shed) / float64(n)
	}
	if res.Requests > 0 {
		res.ErrorRate = float64(res.Errors) / float64(res.Requests)
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	if len(latencies) > 0 {
		res.P50MS = msAt(latencies, 0.50)
		res.P95MS = msAt(latencies, 0.95)
		res.P99MS = msAt(latencies, 0.99)
		res.MaxMS = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
	}
	return &res, nil
}

// fetchSampleTrace merges the generator-side half of the sampled
// cold-start trace with the server's, polling briefly: the server
// records its request span just after the response is written, so an
// immediate fetch can land one beat early. Falls back to whatever is
// available (server half incomplete, or the local half alone when the
// server runs with tracing disabled).
func fetchSampleTrace(ctx context.Context, c *studysvc.Client, tracer *tracex.Tracer, id string) *tracex.Trace {
	local, ok := tracer.Trace(id)
	if !ok {
		return nil
	}
	merged := local
	for i := 0; i < 20; i++ {
		remote, err := c.Trace(ctx, id)
		if err == nil {
			merged = tracex.Merge(local, *remote)
			for _, s := range remote.Spans {
				if strings.HasPrefix(s.Name, "http ") {
					return &merged
				}
			}
		}
		select {
		case <-ctx.Done():
			return &merged
		case <-time.After(50 * time.Millisecond):
		}
	}
	return &merged
}

// isShed reports whether err is the service's 429 admission rejection.
func isShed(err error) bool {
	var he *studysvc.HTTPError
	return errors.As(err, &he) && he.Status == 429
}

// msAt returns the q-quantile of sorted latencies in milliseconds
// (nearest-rank on the sorted slice — exact, not bucketed: the
// generator holds every sample).
func msAt(sorted []time.Duration, q float64) float64 {
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// String renders the result as the operator summary ewsweep prints.
func (r *Result) String() string {
	return fmt.Sprintf(
		"requests %d (ok %d, shed %d, errors %d, cache hits %d) in %dms\n"+
			"achieved %.1f rps, shed rate %.3f, error rate %.3f\n"+
			"latency p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms",
		r.Requests, r.OK, r.Shed, r.Errors, r.CacheHits, r.DurationMS,
		r.AchievedRPS, r.ShedRate, r.ErrorRate, r.P50MS, r.P95MS, r.P99MS, r.MaxMS)
}
