package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/synth"
)

// faultOpts is the shared study shape for the fault-injection
// acceptance tests — the same world the HTTP-equivalence test pins.
func faultOpts(faults string) Options {
	return Options{
		Synth:          synth.Config{Seed: 7, Scale: 0.02, ImageSize: 48},
		AnnotationSize: 400,
		Workers:        4,
		Faults:         faults,
	}
}

// diffResults reports per-field DeepEqual mismatches between two runs.
func diffResults(t *testing.T, want, got *Results, label string) {
	t.Helper()
	wv, gv := reflect.ValueOf(*want), reflect.ValueOf(*got)
	rt := wv.Type()
	for i := 0; i < rt.NumField(); i++ {
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("Results.%s differs (%s)", rt.Field(i).Name, label)
		}
	}
}

// TestFaultRetryableEquivalence pins the tentpole invariant: a
// retryable-only fault schedule — every URL rate-limited 429 +
// Retry-After for fewer failures than the crawler's retry budget —
// yields Results bit-identical to the fault-free run. The adversary
// costs wall-clock, never data.
func TestFaultRetryableEquivalence(t *testing.T) {
	ctx := context.Background()
	want, err := NewStudy(faultOpts("")).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want.Degraded() {
		t.Fatal("fault-free run reports degradation")
	}

	// failures=2 ≤ the crawler's default MaxRetries=2: every fetch
	// lands within budget.
	got, err := NewStudy(faultOpts("failures=2;retry-after=1ms;ratelimit=*")).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, want, got, "rate-limited vs fault-free")
	if got.Degraded() {
		t.Error("retryable-only schedule reported degradation")
	}
}

// TestFaultRetryableEquivalenceSequential holds the same invariant on
// the sequential reference path, under the flaky-5xx adversary.
func TestFaultRetryableEquivalenceSequential(t *testing.T) {
	ctx := context.Background()
	opts := faultOpts("")
	opts.Synth = synth.Config{Seed: 11, Scale: 0.015, ImageSize: 48}
	opts.AnnotationSize = 300
	want, err := NewStudy(opts).RunSequential(ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts.Faults = "failures=1;flaky=*"
	got, err := NewStudy(opts).RunSequential(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		diffResults(t, want, got, "flaky vs fault-free, sequential")
	}
}

// TestFaultDownHostDegrades pins the degradation contract: a host that
// is permanently dead does not fail or abort the study — it produces a
// partial corpus whose coverage ledger names exactly the dead host,
// deterministically across runs.
func TestFaultDownHostDegrades(t *testing.T) {
	ctx := context.Background()
	baseline, err := NewStudy(faultOpts("")).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.CrawlStats.Coverage.Hosts) == 0 {
		t.Fatal("baseline crawl touched no hosts")
	}
	// Kill the busiest host — the worst case for corpus loss.
	victim := baseline.CrawlStats.Coverage.Hosts[0]
	for _, h := range baseline.CrawlStats.Coverage.Hosts {
		if h.Tasks > victim.Tasks {
			victim = h
		}
	}

	opts := faultOpts("down=" + victim.Host)
	got, err := NewStudy(opts).Run(ctx)
	if err != nil {
		t.Fatalf("dead host aborted the study: %v", err)
	}
	if !got.Degraded() {
		t.Fatal("dead host did not mark the study degraded")
	}
	cov := got.CrawlStats.Coverage
	if !cov.Degraded || cov.Errors != victim.Tasks {
		t.Fatalf("coverage = %+v, want %d tasks lost", cov, victim.Tasks)
	}
	if len(cov.DeadHosts) != 1 || cov.DeadHosts[0] != victim.Host {
		t.Fatalf("DeadHosts = %v, want exactly [%s]", cov.DeadHosts, victim.Host)
	}
	// Healthy hosts are untouched: their ledger rows match the baseline.
	for _, h := range cov.Hosts {
		if h.Host == victim.Host {
			continue
		}
		for _, b := range baseline.CrawlStats.Coverage.Hosts {
			if b.Host == h.Host && h != b {
				t.Errorf("healthy host %s drifted: %+v vs %+v", h.Host, h, b)
			}
		}
	}

	// The degraded result is itself deterministic: same schedule, same
	// partial corpus, bit for bit.
	again, err := NewStudy(opts).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, got, again, "degraded run repeated")
}

// TestFaultInvalidProfileIgnoredInCore documents the core boundary
// contract: Options.Faults is validated at the API edges (studysvc,
// the CLIs); an unparseable profile reaching NewStudy is ignored
// rather than crashing a run already in flight.
func TestFaultInvalidProfileIgnoredInCore(t *testing.T) {
	opts := faultOpts("not a profile")
	opts.Synth.Scale = 0.01
	opts.AnnotationSize = 150
	res, err := NewStudy(opts).RunSequential(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() {
		t.Error("ignored profile still degraded the run")
	}
}
