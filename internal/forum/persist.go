package forum

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Persistence: the study releases its processed data ("we release our
// code and part of the processed data publicly"); Store supports a
// line-delimited JSON dump/restore so generated corpora can be
// exported, shared and re-loaded without regeneration.
//
// The format is JSONL with a type tag per line, written in an order
// that allows single-pass loading (forums, boards, actors, threads,
// posts).

// recordType tags a JSONL line.
type recordType string

const (
	recForum  recordType = "forum"
	recBoard  recordType = "board"
	recActor  recordType = "actor"
	recThread recordType = "thread"
	recPost   recordType = "post"
)

// jsonRecord is the on-disk union record.
type jsonRecord struct {
	Type recordType `json:"type"`

	// forum
	Name string `json:"name,omitempty"`

	// board
	Forum    ForumID `json:"forum,omitempty"`
	Category string  `json:"category,omitempty"`

	// actor
	Registered *time.Time `json:"registered,omitempty"`

	// thread
	Board   BoardID    `json:"board,omitempty"`
	Author  ActorID    `json:"author,omitempty"`
	Heading string     `json:"heading,omitempty"`
	Created *time.Time `json:"created,omitempty"`

	// post
	Thread ThreadID `json:"thread,omitempty"`
	Body   string   `json:"body,omitempty"`
	Quotes PostID   `json:"quotes,omitempty"`
}

// Export writes the whole dataset as JSONL. The output reloads with
// Import into an identical store (IDs are preserved because both
// directions assign them densely in the same order).
func (s *Store) Export(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for i := range s.forums {
		if err := enc.Encode(jsonRecord{Type: recForum, Name: s.forums[i].Name}); err != nil {
			return err
		}
	}
	for i := range s.boards {
		b := &s.boards[i]
		if err := enc.Encode(jsonRecord{Type: recBoard, Forum: b.Forum, Name: b.Name, Category: b.Category}); err != nil {
			return err
		}
	}
	for i := range s.actors {
		a := &s.actors[i]
		reg := a.Registered
		if err := enc.Encode(jsonRecord{Type: recActor, Forum: a.Forum, Name: a.Name, Registered: &reg}); err != nil {
			return err
		}
	}
	for i := range s.threads {
		t := &s.threads[i]
		created := t.Created
		if err := enc.Encode(jsonRecord{
			Type: recThread, Board: t.Board, Author: t.Author,
			Heading: t.Heading, Created: &created,
		}); err != nil {
			return err
		}
	}
	for i := range s.posts {
		p := &s.posts[i]
		created := p.Created
		if err := enc.Encode(jsonRecord{
			Type: recPost, Thread: p.Thread, Author: p.Author,
			Body: p.Body, Created: &created, Quotes: p.Quotes,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Import loads a JSONL dump produced by Export into a fresh store. It
// fails on malformed lines, out-of-order references or a non-empty
// receiver.
func Import(r io.Reader) (*Store, error) {
	s := NewStore()
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	line := 0
	// Threads carry their first post separately in the JSONL stream
	// (the post records follow), so AddThread's implicit first post
	// cannot be used; track thread shells and splice posts in.
	pendingThreads := 0
	for {
		var rec jsonRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("forum: import line %d: %w", line+1, err)
		}
		line++
		switch rec.Type {
		case recForum:
			s.AddForum(rec.Name)
		case recBoard:
			if int(rec.Forum) > len(s.forums) || rec.Forum < 1 {
				return nil, fmt.Errorf("forum: import line %d: board references unknown forum %d", line, rec.Forum)
			}
			s.AddBoard(rec.Forum, rec.Name, rec.Category)
		case recActor:
			if rec.Registered == nil {
				return nil, fmt.Errorf("forum: import line %d: actor without registration date", line)
			}
			s.AddActor(rec.Forum, rec.Name, *rec.Registered)
		case recThread:
			if rec.Created == nil {
				return nil, fmt.Errorf("forum: import line %d: thread without creation date", line)
			}
			if int(rec.Board) > len(s.boards) || rec.Board < 1 {
				return nil, fmt.Errorf("forum: import line %d: thread references unknown board %d", line, rec.Board)
			}
			b := s.boards[rec.Board-1]
			id := ThreadID(len(s.threads) + 1)
			s.threads = append(s.threads, Thread{
				ID: id, Board: rec.Board, Forum: b.Forum, Author: rec.Author,
				Heading: rec.Heading, Created: *rec.Created,
			})
			s.threadsByBoard[rec.Board] = append(s.threadsByBoard[rec.Board], id)
			s.threadsByActor[rec.Author] = append(s.threadsByActor[rec.Author], id)
			pendingThreads++
		case recPost:
			if rec.Created == nil {
				return nil, fmt.Errorf("forum: import line %d: post without creation date", line)
			}
			if int(rec.Thread) > len(s.threads) || rec.Thread < 1 {
				return nil, fmt.Errorf("forum: import line %d: post references unknown thread %d", line, rec.Thread)
			}
			s.addPost(rec.Thread, rec.Author, rec.Body, *rec.Created, rec.Quotes)
		default:
			return nil, fmt.Errorf("forum: import line %d: unknown record type %q", line, rec.Type)
		}
	}
	// Validate: every thread must have at least one post.
	for i := range s.threads {
		if len(s.postsByThread[s.threads[i].ID]) == 0 {
			return nil, fmt.Errorf("forum: import: thread %d has no posts", s.threads[i].ID)
		}
	}
	return s, nil
}
