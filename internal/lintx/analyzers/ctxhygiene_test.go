package analyzers

import (
	"testing"

	"repro/internal/lintx/lintest"
)

// internal/svc pins the context.Background/TODO ban, the test-file
// exemption, the foreign-Stats write rule and the suppression
// directive; plain pins that nothing applies outside internal/.
func TestCtxHygiene(t *testing.T) {
	lintest.Run(t, "testdata", CtxHygiene, "internal/svc", "plain")
}
