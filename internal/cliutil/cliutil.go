// Package cliutil holds the small helpers the command-line tools
// share: remote-study submission (ewpipeline -remote and ewreport
// -remote route through the same client path), -only list parsing and
// service readiness polling (ewsweep -load waits for a booting
// ewserve before driving it).
package cliutil

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/studysvc"
)

// SplitNames parses a comma-separated -only list into trimmed,
// non-empty names ("table5, figure2" → ["table5" "figure2"]). An
// empty string yields nil — no selection, meaning everything.
func SplitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if name := strings.TrimSpace(part); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// RunRemote submits a study request to a live study service and waits
// for a completed envelope; a failed or unfinished run is an error.
func RunRemote(ctx context.Context, baseURL string, req studysvc.Request) (*studysvc.Envelope, error) {
	c := studysvc.NewClient(baseURL, nil)
	env, err := c.Run(ctx, req)
	if err != nil {
		return nil, err
	}
	if env.Status != studysvc.StatusDone {
		return nil, fmt.Errorf("run %s %s: %s", env.ID, env.Status, env.Error)
	}
	return env, nil
}

// WaitReady polls the study service's /v1/stats until it answers or
// the timeout elapses — the boot barrier scripts use between starting
// an ewserve in the background and driving load at it.
func WaitReady(ctx context.Context, baseURL string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	c := studysvc.NewClient(baseURL, nil)
	var lastErr error
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		if _, lastErr = c.Stats(ctx); lastErr == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("service at %s not ready after %v: %w", baseURL, timeout, lastErr)
		case <-t.C:
		}
	}
}
