package pipeline

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramNilIsNoOp(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	snap := h.Snapshot()
	if snap.Count != 0 || len(snap.Buckets) != 0 {
		t.Fatalf("nil histogram snapshot not zero: %+v", snap)
	}
}

func TestHistogramCountsAndExtremes(t *testing.T) {
	h := NewHistogram()
	durs := []time.Duration{
		100 * time.Microsecond, // below the first bound
		3 * time.Millisecond,
		3 * time.Millisecond,
		40 * time.Millisecond,
		2 * time.Minute, // beyond the top bound: clamps into the top bucket
	}
	for _, d := range durs {
		h.Observe(d)
	}
	snap := h.Snapshot()
	if snap.Count != int64(len(durs)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(durs))
	}
	if snap.MinMS != 0.1 {
		t.Fatalf("min = %g ms, want 0.1", snap.MinMS)
	}
	if snap.MaxMS != ms(2*time.Minute) {
		t.Fatalf("max = %g ms, want %g", snap.MaxMS, ms(2*time.Minute))
	}
	var bucketSum int64
	for _, b := range snap.Buckets {
		if b.Count == 0 {
			t.Fatalf("snapshot carries an empty bucket: %+v", snap.Buckets)
		}
		bucketSum += b.Count
	}
	if bucketSum != snap.Count {
		t.Fatalf("bucket counts sum to %d, want %d", bucketSum, snap.Count)
	}
}

func TestHistogramQuantilesOrderedAndClamped(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	h.Observe(900 * time.Millisecond)
	snap := h.Snapshot()
	if !(snap.P50MS <= snap.P95MS && snap.P95MS <= snap.P99MS) {
		t.Fatalf("quantiles out of order: p50=%g p95=%g p99=%g", snap.P50MS, snap.P95MS, snap.P99MS)
	}
	if snap.P99MS > snap.MaxMS {
		t.Fatalf("p99 %g exceeds max %g", snap.P99MS, snap.MaxMS)
	}
	// All mass at 2ms: the median must sit at that bucket's bound.
	if snap.P50MS != 2 {
		t.Fatalf("p50 = %g ms, want 2", snap.P50MS)
	}

	// A one-element histogram reports that element everywhere.
	one := NewHistogram()
	one.Observe(700 * time.Microsecond)
	s1 := one.Snapshot()
	if s1.P50MS != 0.7 || s1.P99MS != 0.7 {
		t.Fatalf("single-element quantiles = p50 %g p99 %g, want 0.7", s1.P50MS, s1.P99MS)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestHistogramSnapshotJSONShape(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"count", "total_ms", "min_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms", "buckets"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", key, data)
		}
	}
}
