// Package nsfv implements the paper's Not-Safe-For-Viewing classifier
// (§4.4): the set of heuristics in Algorithm 1 that combines the
// OpenNSFW nudity score with the OCR word count to decide whether a
// researcher may look at an image.
//
// The thresholds are the paper's, and the package also reproduces the
// tuning process: a validation set of 180 labelled images of sexual
// and non-sexual content plus 60 text/non-text images (240 total),
// over which the thresholds were chosen to reach 100% NSFV detection
// with few false positives (~8%).
package nsfv

import (
	"repro/internal/imagex"
	"repro/internal/nsfw"
	"repro/internal/ocr"
)

// Thresholds parameterise Algorithm 1. The zero value is invalid; use
// PaperThresholds.
type Thresholds struct {
	// SafeBelow: images scoring under this are SFV outright.
	SafeBelow float64
	// NSFVAbove: images scoring over this are NSFV outright.
	NSFVAbove float64
	// LowBand: images scoring under this (but over SafeBelow) are SFV
	// if OCR finds more than LowWords words.
	LowBand  float64
	LowWords int
	// Images in [LowBand, NSFVAbove] are SFV if OCR finds more than
	// HighWords words.
	HighWords int
}

// PaperThresholds returns Algorithm 1 exactly as printed:
//
//	if NSFW < 0.01 return SFV
//	else if NSFW > 0.3 return NSFV
//	else if NSFW < 0.05 return OCR > 10
//	else return OCR > 20
func PaperThresholds() Thresholds {
	return Thresholds{
		SafeBelow: 0.01,
		NSFVAbove: 0.3,
		LowBand:   0.05,
		LowWords:  10,
		HighWords: 20,
	}
}

// Classifier combines the nudity scorer and OCR under a threshold set.
type Classifier struct {
	Scorer     nsfw.Scorer
	Thresholds Thresholds
}

// New returns the classifier with the paper's calibration.
func New() *Classifier {
	return &Classifier{Scorer: nsfw.Default(), Thresholds: PaperThresholds()}
}

// Verdict is the outcome of classifying one image.
type Verdict struct {
	SFV   bool
	NSFW  float64
	Words int
}

// Classify runs Algorithm 1 on the image. It only invokes OCR when the
// decision needs it, as the pipeline does (OCR is the expensive step).
func (c *Classifier) Classify(im *imagex.Image) Verdict {
	t := c.Thresholds
	score := c.Scorer.Score(im)
	switch {
	case score < t.SafeBelow:
		return Verdict{SFV: true, NSFW: score, Words: -1}
	case score > t.NSFVAbove:
		return Verdict{SFV: false, NSFW: score, Words: -1}
	}
	words := ocr.WordCount(im)
	if score < t.LowBand {
		return Verdict{SFV: words > t.LowWords, NSFW: score, Words: words}
	}
	return Verdict{SFV: words > t.HighWords, NSFW: score, Words: words}
}

// IsSFV reports whether the image is Safe-For-Viewing.
func (c *Classifier) IsSFV(im *imagex.Image) bool { return c.Classify(im).SFV }

// --- Validation harness ----------------------------------------------

// LabeledImage pairs an image with its ground truth (true = the image
// is indecent, i.e. must be NSFV).
type LabeledImage struct {
	Image    *imagex.Image
	Indecent bool
	Kind     string
}

// BuildValidationSet reproduces the paper's tuning corpus: 180 images
// "including sexual and non-sexual content" (the Lopes et al. nude-
// detection set stand-in) plus 60 images "with textual content (e.g.,
// documents, bills, source code, etc.) and without textual content
// (including landscapes, screenshots of virtual games, or pictures
// taken from random people)".
func BuildValidationSet(seed uint64) []LabeledImage {
	// 90 sexual + 90 non-sexual + 30 textual + 30 non-textual images.
	out := make([]LabeledImage, 0, 240)
	// 90 sexual images: nude and partial poses.
	for i := 0; i < 90; i++ {
		pose := imagex.PoseNude
		if i%3 == 0 {
			pose = imagex.PosePartial
		}
		out = append(out, LabeledImage{
			Image:    imagex.GenModel(seed+uint64(i), i%5, pose, 48),
			Indecent: true,
			Kind:     "model-" + pose.String(),
		})
	}
	// 90 non-sexual images: everyday photos of people, landscapes —
	// half of the third group with skin-like (sand/wood) textures, the
	// documented hard cases that produce the ~8% false positives.
	for i := 0; i < 90; i++ {
		var im *imagex.Image
		kind := ""
		switch i % 3 {
		case 0:
			im = imagex.GenCasualPerson(seed+uint64(1000+i), 48)
			kind = "person-casual"
		case 1:
			im = imagex.GenLandscape(seed+uint64(2000+i), 48, false)
			kind = "landscape"
		default:
			warm := i%6 == 2
			im = imagex.GenLandscape(seed+uint64(3000+i), 48, warm)
			if warm {
				kind = "landscape-warm"
			} else {
				kind = "landscape"
			}
		}
		out = append(out, LabeledImage{Image: im, Indecent: false, Kind: kind})
	}
	// 30 textual images: documents, bills, source code.
	textSets := [][]string{
		{"INVOICE #4481", "TOTAL: $129.99", "DUE: 05/01", "PAY TO: ACME INC", "REF: 99-X2"},
		{"FUNC MAIN() (", "PRINT(X+1)", "RETURN 0", ") END", "OK: BUILD PASS"},
		{"DEAR SIR,", "PLEASE FIND", "ATTACHED THE", "SIGNED FORMS", "REGARDS, J."},
	}
	for i := 0; i < 30; i++ {
		lines := textSets[i%len(textSets)]
		out = append(out, LabeledImage{
			Image:    imagex.GenScreenshot(seed+uint64(4000+i), lines, 150, 60),
			Indecent: false,
			Kind:     "document",
		})
	}
	// 30 non-textual, non-sexual images: game screenshots, random
	// photos.
	for i := 0; i < 30; i++ {
		out = append(out, LabeledImage{
			Image:    imagex.GenLandscape(seed+uint64(5000+i), 48, false),
			Indecent: false,
			Kind:     "game",
		})
	}
	return out
}

// Eval reports how a threshold set performs on a labelled corpus.
type Eval struct {
	// Detection is the fraction of indecent images classified NSFV.
	// The paper requires 1.0 ("100% detection of NSFV images").
	Detection float64
	// FalsePositive is the fraction of decent images classified NSFV
	// (the paper reports "nearly 8%").
	FalsePositive float64
	N             int
}

// Evaluate runs the classifier over the corpus.
func (c *Classifier) Evaluate(corpus []LabeledImage) Eval {
	indecent, detected := 0, 0
	decent, fps := 0, 0
	for _, li := range corpus {
		sfv := c.IsSFV(li.Image)
		if li.Indecent {
			indecent++
			if !sfv {
				detected++
			}
		} else {
			decent++
			if !sfv {
				fps++
			}
		}
	}
	e := Eval{N: len(corpus)}
	if indecent > 0 {
		e.Detection = float64(detected) / float64(indecent)
	}
	if decent > 0 {
		e.FalsePositive = float64(fps) / float64(decent)
	}
	return e
}

// Tune reproduces the semi-automatic threshold search: it sweeps
// candidate threshold combinations over the validation corpus and
// returns the set with the fewest false positives among those with
// perfect NSFV detection (ties broken towards the more conservative,
// i.e. lower, NSFVAbove). If no combination reaches perfect detection
// the one with the highest detection wins.
func Tune(corpus []LabeledImage, scorer nsfw.Scorer) (Thresholds, Eval) {
	safeBelows := []float64{0.005, 0.01, 0.02}
	nsfvAboves := []float64{0.2, 0.3, 0.4, 0.5}
	lowBands := []float64{0.03, 0.05, 0.1}
	lowWords := []int{5, 10, 15}
	highWords := []int{15, 20, 30}

	// Precompute the expensive per-image measurements once; the sweep
	// then evaluates each threshold combination on cached values.
	type measured struct {
		score    float64
		words    int
		indecent bool
	}
	cache := make([]measured, len(corpus))
	for i, li := range corpus {
		cache[i] = measured{
			score:    scorer.Score(li.Image),
			words:    ocr.WordCount(li.Image),
			indecent: li.Indecent,
		}
	}
	evalCached := func(t Thresholds) Eval {
		indecent, detected, decent, fps := 0, 0, 0, 0
		for _, m := range cache {
			var sfv bool
			switch {
			case m.score < t.SafeBelow:
				sfv = true
			case m.score > t.NSFVAbove:
				sfv = false
			case m.score < t.LowBand:
				sfv = m.words > t.LowWords
			default:
				sfv = m.words > t.HighWords
			}
			if m.indecent {
				indecent++
				if !sfv {
					detected++
				}
			} else {
				decent++
				if !sfv {
					fps++
				}
			}
		}
		e := Eval{N: len(cache)}
		if indecent > 0 {
			e.Detection = float64(detected) / float64(indecent)
		}
		if decent > 0 {
			e.FalsePositive = float64(fps) / float64(decent)
		}
		return e
	}

	var best Thresholds
	var bestEval Eval
	haveBest := false
	better := func(e Eval, t Thresholds) bool {
		if !haveBest {
			return true
		}
		if e.Detection != bestEval.Detection {
			return e.Detection > bestEval.Detection
		}
		if e.FalsePositive != bestEval.FalsePositive {
			return e.FalsePositive < bestEval.FalsePositive
		}
		return t.NSFVAbove < best.NSFVAbove
	}
	for _, sb := range safeBelows {
		for _, na := range nsfvAboves {
			for _, lb := range lowBands {
				if lb <= sb || lb >= na {
					continue
				}
				for _, lw := range lowWords {
					for _, hw := range highWords {
						if hw < lw {
							continue
						}
						t := Thresholds{SafeBelow: sb, NSFVAbove: na, LowBand: lb, LowWords: lw, HighWords: hw}
						e := evalCached(t)
						if better(e, t) {
							best, bestEval, haveBest = t, e, true
						}
					}
				}
			}
		}
	}
	return best, bestEval
}
