package imagex

import (
	"bytes"
	"testing"

	"repro/internal/randx"
)

// randImage builds a w×h raster of uniform noise.
func randImage(rng *randx.Rand, w, h int) *Image {
	im := New(w, h, 0)
	for i := range im.Pix {
		im.Pix[i] = byte(rng.Intn(256))
	}
	return im
}

// --- reference kernels -------------------------------------------------
//
// The originals, verbatim, built on per-pixel At/Set. The row-slice
// rewrites must reproduce them bit-for-bit: hashes derived from these
// kernels feed the hashlist, the reverse index and the golden report.

func refResize(im *Image, w, h int) *Image {
	out := New(w, h, 0)
	for y := 0; y < h; y++ {
		sy0 := y * im.H / h
		sy1 := (y + 1) * im.H / h
		if sy1 <= sy0 {
			sy1 = sy0 + 1
		}
		for x := 0; x < w; x++ {
			sx0 := x * im.W / w
			sx1 := (x + 1) * im.W / w
			if sx1 <= sx0 {
				sx1 = sx0 + 1
			}
			sum, n := 0, 0
			for sy := sy0; sy < sy1 && sy < im.H; sy++ {
				for sx := sx0; sx < sx1 && sx < im.W; sx++ {
					sum += int(im.At(sx, sy))
					n++
				}
			}
			if n > 0 {
				out.Set(x, y, byte(sum/n))
			}
		}
	}
	return out
}

func refMirror(im *Image) *Image {
	out := New(im.W, im.H, 0)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Set(im.W-1-x, y, im.At(x, y))
		}
	}
	return out
}

func refRecompress(im *Image, levels int) *Image {
	if levels < 2 {
		levels = 2
	}
	if levels > 256 {
		levels = 256
	}
	q := 256 / levels
	if q < 1 {
		q = 1
	}
	out := im.Clone()
	for i, p := range out.Pix {
		v := (int(p)/q)*q + q/2
		if v > 255 {
			v = 255
		}
		out.Pix[i] = byte(v)
	}
	return out
}

func refShade(im *Image, frac float64) *Image {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	out := im.Clone()
	y0 := int(float64(im.H) * (1 - frac))
	for y := y0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Set(x, y, out.At(x, y)/3)
		}
	}
	return out
}

func refSkinFraction(im *Image) float64 {
	if len(im.Pix) == 0 {
		return 0
	}
	n := 0
	for _, p := range im.Pix {
		if p >= SkinLo && p <= SkinHi {
			n++
		}
	}
	return float64(n) / float64(len(im.Pix))
}

func refSkinCoherence(im *Image) float64 {
	if im.W == 0 || im.H == 0 {
		return 0
	}
	totalRun, runs := 0, 0
	for y := 0; y < im.H; y++ {
		run := 0
		for x := 0; x < im.W; x++ {
			if p := im.At(x, y); p >= SkinLo && p <= SkinHi {
				run++
			} else if run > 0 {
				totalRun += run
				runs++
				run = 0
			}
		}
		if run > 0 {
			totalRun += run
			runs++
		}
	}
	if runs == 0 {
		return 0
	}
	return float64(totalRun) / float64(runs) / float64(im.W)
}

// kernelSizes spans the shapes the study generates (48x48 models,
// wide screenshots) plus degenerate and upsampling cases.
var kernelSizes = [][2]int{
	{48, 48}, {150, 60}, {9, 8}, {8, 8}, {7, 5}, {1, 1}, {64, 3}, {3, 64},
}

func TestKernelsMatchReference(t *testing.T) {
	rng := randx.New(0xbeef)
	for _, sz := range kernelSizes {
		for trial := 0; trial < 4; trial++ {
			im := randImage(rng, sz[0], sz[1])

			for _, target := range [][2]int{{8, 8}, {9, 8}, {16, 16}, {100, 40}, {1, 1}} {
				got := im.Resize(target[0], target[1])
				want := refResize(im, target[0], target[1])
				if !bytes.Equal(got.Pix, want.Pix) {
					t.Fatalf("Resize(%v→%v) diverged from reference", sz, target)
				}
			}
			if !bytes.Equal(im.Mirror().Pix, refMirror(im).Pix) {
				t.Fatalf("Mirror(%v) diverged from reference", sz)
			}
			for _, levels := range []int{2, 16, 24, 32, 255, 256, 0} {
				if !bytes.Equal(im.Recompress(levels).Pix, refRecompress(im, levels).Pix) {
					t.Fatalf("Recompress(%v, %d) diverged from reference", sz, levels)
				}
			}
			for _, frac := range []float64{0, 0.25, 0.5, 1, -1, 2} {
				if !bytes.Equal(im.Shade(frac).Pix, refShade(im, frac).Pix) {
					t.Fatalf("Shade(%v, %g) diverged from reference", sz, frac)
				}
			}
			if got, want := im.SkinFraction(), refSkinFraction(im); got != want {
				t.Fatalf("SkinFraction(%v) = %v, reference %v", sz, got, want)
			}
			if got, want := im.SkinCoherence(), refSkinCoherence(im); got != want {
				t.Fatalf("SkinCoherence(%v) = %v, reference %v", sz, got, want)
			}
		}
	}
}

// TestHash128FusedMatchesComponents pins the fused single-traversal
// composite hash to the component hashes (which are themselves pinned
// to the reference resize above) across shapes on both sides of the
// fused-path threshold.
func TestHash128FusedMatchesComponents(t *testing.T) {
	rng := randx.New(0xcafe)
	for _, sz := range kernelSizes {
		for trial := 0; trial < 8; trial++ {
			im := randImage(rng, sz[0], sz[1])
			got := Hash128Of(im)
			small8 := refResize(im, 8, 8)
			sum := 0
			for _, p := range small8.Pix {
				sum += int(p)
			}
			mean := byte(sum / 64)
			var a Hash
			for i, p := range small8.Pix {
				if p > mean {
					a |= 1 << uint(i)
				}
			}
			small9 := refResize(im, 9, 8)
			var d Hash
			bit := 0
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					if small9.At(x, y) > small9.At(x+1, y) {
						d |= 1 << uint(bit)
					}
					bit++
				}
			}
			if want := (Hash128{A: a, D: d}); got != want {
				t.Fatalf("Hash128Of(%v) = %v, reference %v", sz, got, want)
			}
		}
	}
}

// TestIntoVariantsMatch pins each *Into variant to its allocating
// counterpart, including buffer reuse across differently-sized inputs.
func TestIntoVariantsMatch(t *testing.T) {
	rng := randx.New(0xf00d)
	dst := GetImage(1, 1)
	defer PutImage(dst)
	for _, sz := range kernelSizes {
		im := randImage(rng, sz[0], sz[1])

		im.ResizeInto(dst, 8, 8)
		if !bytes.Equal(dst.Pix, im.Resize(8, 8).Pix) {
			t.Fatalf("ResizeInto(%v) diverged", sz)
		}
		im.MirrorInto(dst)
		if !bytes.Equal(dst.Pix, im.Mirror().Pix) {
			t.Fatalf("MirrorInto(%v) diverged", sz)
		}
		im.RecompressInto(dst, 24)
		if !bytes.Equal(dst.Pix, im.Recompress(24).Pix) {
			t.Fatalf("RecompressInto(%v) diverged", sz)
		}
		im.ShadeInto(dst, 0.25)
		if !bytes.Equal(dst.Pix, im.Shade(0.25).Pix) {
			t.Fatalf("ShadeInto(%v) diverged", sz)
		}

		// In-place forms.
		inPlace := im.Clone()
		inPlace.RecompressInto(inPlace, 24)
		if !bytes.Equal(inPlace.Pix, im.Recompress(24).Pix) {
			t.Fatalf("in-place RecompressInto(%v) diverged", sz)
		}
		inPlace = im.Clone()
		inPlace.ShadeInto(inPlace, 0.25)
		if !bytes.Equal(inPlace.Pix, im.Shade(0.25).Pix) {
			t.Fatalf("in-place ShadeInto(%v) diverged", sz)
		}
	}
}

// TestHashImageZeroAlloc pins the zero-alloc claim of the tentpole:
// hashing a study-shaped image must not touch the heap.
func TestHashImageZeroAlloc(t *testing.T) {
	im := GenModel(1, 0, PoseNude, 48)
	if avg := testing.AllocsPerRun(200, func() { Hash128Of(im) }); avg != 0 {
		t.Fatalf("Hash128Of allocates %.1f per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { AHash(im) }); avg != 0 {
		t.Fatalf("AHash allocates %.1f per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { DHash(im) }); avg != 0 {
		t.Fatalf("DHash allocates %.1f per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { im.SkinStats() }); avg != 0 {
		t.Fatalf("SkinStats allocates %.1f per op, want 0", avg)
	}
}

// TestIntoVariantsSteadyStateAlloc pins the pooled transforms
// allocation-free once the destination buffer has grown.
func TestIntoVariantsSteadyStateAlloc(t *testing.T) {
	im := GenModel(2, 1, PosePartial, 48)
	dst := GetImage(im.W, im.H)
	defer PutImage(dst)
	if avg := testing.AllocsPerRun(100, func() {
		im.MirrorInto(dst)
		im.RecompressInto(dst, 24)
		im.ShadeInto(dst, 0.25)
		im.ResizeInto(dst, 9, 8)
	}); avg != 0 {
		t.Fatalf("Into chain allocates %.1f per op, want 0", avg)
	}
}

func BenchmarkHash128Of(b *testing.B) {
	im := GenModel(1, 0, PoseNude, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash128Of(im)
	}
}

func BenchmarkSkinStats(b *testing.B) {
	im := GenModel(1, 0, PoseNude, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.SkinStats()
	}
}
