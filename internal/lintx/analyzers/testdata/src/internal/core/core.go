// Fixture: the Table 1 tie-break PR 1 bug shape — a map-built slice
// sorted by a single builtin numeric criterion, so equal counts keep
// randomized map order.
package core

import "sort"

type ForumOverviewRow struct {
	Forum   string
	Threads int
}

// overviewUnderSpecified sorts by thread count alone: forums with
// equal counts land in map order.
func overviewUnderSpecified(byForum map[string]*ForumOverviewRow) []ForumOverviewRow {
	var rows []ForumOverviewRow
	for _, row := range byForum {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].Threads > rows[j].Threads // want "final tie-break compares builtin numeric field"
	})
	return rows
}

// overviewTotal is the fix: the comparator's final word is an
// identity (the forum name), so the order is total.
func overviewTotal(byForum map[string]*ForumOverviewRow) []ForumOverviewRow {
	var rows []ForumOverviewRow
	for _, row := range byForum {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Threads != rows[j].Threads {
			return rows[i].Threads > rows[j].Threads
		}
		return rows[i].Forum < rows[j].Forum
	})
	return rows
}
