package crawler

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/urlx"
)

// testWorld builds a hosting world with one image site and one cloud
// site plus representative content.
func testWorld(t *testing.T) (*hosting.World, *httptest.Server, *Crawler) {
	t.Helper()
	w := hosting.NewWorld()
	img := w.AddSite(hosting.SiteConfig{Domain: "imgur.com", Kind: urlx.KindImageSharing})
	img.PutImage("live", imagex.GenModel(1, 0, imagex.PoseNude, 32))
	img.PutImage("deleted", imagex.GenModel(2, 0, imagex.PoseNude, 32))
	img.SetStatus("deleted", hosting.StatusDeleted)
	img.PutImage("tos", imagex.GenModel(3, 0, imagex.PoseNude, 32))
	img.SetStatus("tos", hosting.StatusTakedown)

	cloud := w.AddSite(hosting.SiteConfig{Domain: "mediafire.com", Kind: urlx.KindCloudStorage})
	if err := cloud.PutPack("pack1", []*imagex.Image{
		imagex.GenModel(10, 0, imagex.PoseNude, 32),
		imagex.GenModel(10, 1, imagex.PoseDressed, 32),
		imagex.GenModel(10, 0, imagex.PoseNude, 32), // duplicate of first
	}); err != nil {
		t.Fatal(err)
	}

	w.AddSite(hosting.SiteConfig{Domain: "dropbox.com", Kind: urlx.KindCloudStorage, RequiresLogin: true}).
		PutPack("wall", []*imagex.Image{imagex.GenModel(11, 0, imagex.PoseNude, 32)})
	w.AddSite(hosting.SiteConfig{Domain: "oron.com", Kind: urlx.KindCloudStorage, Defunct: true})

	srv := httptest.NewServer(w)
	t.Cleanup(srv.Close)
	c := New(Config{Concurrency: 4}, srv.Client(), w.Resolver(srv.URL))
	return w, srv, c
}

func task(url string, kind urlx.Kind) Task {
	return Task{
		Link:   urlx.Link{URL: url, Domain: urlx.Domain(url), Kind: kind},
		Thread: 1, Post: 2, Author: 3,
	}
}

func TestCrawlImage(t *testing.T) {
	_, _, c := testWorld(t)
	res := c.Crawl(context.Background(), []Task{task("https://imgur.com/live", urlx.KindImageSharing)})
	if len(res) != 1 {
		t.Fatal("wrong result count")
	}
	r := res[0]
	if r.Outcome != OutcomeOK || len(r.Images) != 1 || r.IsPack {
		t.Fatalf("result = %+v (err %v)", r.Outcome, r.Err)
	}
	if r.Task.Thread != 1 || r.Task.Post != 2 || r.Task.Author != 3 {
		t.Fatal("provenance metadata lost")
	}
}

func TestCrawlPack(t *testing.T) {
	_, _, c := testWorld(t)
	res := c.Crawl(context.Background(), []Task{task("https://mediafire.com/pack1", urlx.KindCloudStorage)})
	r := res[0]
	if r.Outcome != OutcomeOK || !r.IsPack || len(r.Images) != 3 {
		t.Fatalf("pack result: outcome %v images %d err %v", r.Outcome, len(r.Images), r.Err)
	}
}

func TestCrawlOutcomes(t *testing.T) {
	_, _, c := testWorld(t)
	tasks := []Task{
		task("https://imgur.com/deleted", urlx.KindImageSharing),
		task("https://imgur.com/missing", urlx.KindImageSharing),
		task("https://dropbox.com/wall", urlx.KindCloudStorage),
		task("https://oron.com/x", urlx.KindCloudStorage),
		task("https://imgur.com/tos", urlx.KindImageSharing),
	}
	res := c.Crawl(context.Background(), tasks)
	if res[0].Outcome != OutcomeNotFound {
		t.Errorf("deleted: %v", res[0].Outcome)
	}
	if res[1].Outcome != OutcomeNotFound {
		t.Errorf("missing: %v", res[1].Outcome)
	}
	if res[2].Outcome != OutcomeLoginRequired {
		t.Errorf("login wall: %v", res[2].Outcome)
	}
	if res[3].Outcome != OutcomeSiteDown {
		t.Errorf("defunct: %v", res[3].Outcome)
	}
	// ToS takedown on an image site yields a banner image (OK).
	if res[4].Outcome != OutcomeOK || len(res[4].Images) != 1 {
		t.Errorf("tos: %v", res[4].Outcome)
	}
	if res[4].Images[0].SkinFraction() > 0.01 {
		t.Error("tos banner contains the original content")
	}
}

func TestCrawlManyConcurrent(t *testing.T) {
	w, _, _ := testWorld(t)
	site, _ := w.Site("imgur.com")
	var tasks []Task
	for i := 0; i < 100; i++ {
		path := "bulk" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		site.PutImage(path, imagex.GenModel(uint64(100+i), 0, imagex.PoseNude, 24))
		tasks = append(tasks, task("https://imgur.com/"+path, urlx.KindImageSharing))
	}
	srv := httptest.NewServer(w)
	defer srv.Close()
	c := New(Config{Concurrency: 16}, srv.Client(), w.Resolver(srv.URL))
	res := c.Crawl(context.Background(), tasks)
	ok := 0
	for _, r := range res {
		if r.Outcome == OutcomeOK {
			ok++
		}
	}
	if ok != 100 {
		t.Fatalf("only %d/100 fetched", ok)
	}
}

func TestCrawlCancellation(t *testing.T) {
	_, _, c := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := make([]Task, 50)
	for i := range tasks {
		tasks[i] = task("https://imgur.com/live", urlx.KindImageSharing)
	}
	res := c.Crawl(ctx, tasks)
	errs := 0
	for _, r := range res {
		if r.Outcome == OutcomeError {
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("cancelled crawl completed everything")
	}
}

func TestCrawlBadResolver(t *testing.T) {
	c := New(Config{}, nil, func(string) (string, error) { return "", context.DeadlineExceeded })
	res := c.Crawl(context.Background(), []Task{task("https://x.com/1", urlx.KindImageSharing)})
	if res[0].Outcome != OutcomeError || res[0].Err == nil {
		t.Fatalf("result = %+v", res[0])
	}
}

func TestPerHostDelay(t *testing.T) {
	_, _, _ = testWorld(t) // ensure world wiring compiles in this mode
	w := hosting.NewWorld()
	site := w.AddSite(hosting.SiteConfig{Domain: "imgur.com", Kind: urlx.KindImageSharing})
	site.PutImage("a", imagex.GenModel(1, 0, imagex.PoseNude, 24))
	site.PutImage("b", imagex.GenModel(2, 0, imagex.PoseNude, 24))
	site.PutImage("c", imagex.GenModel(3, 0, imagex.PoseNude, 24))
	srv := httptest.NewServer(w)
	defer srv.Close()
	c := New(Config{Concurrency: 4, PerHostDelay: 30 * time.Millisecond}, srv.Client(), w.Resolver(srv.URL))
	start := time.Now()
	res := c.Crawl(context.Background(), []Task{
		task("https://imgur.com/a", urlx.KindImageSharing),
		task("https://imgur.com/b", urlx.KindImageSharing),
		task("https://imgur.com/c", urlx.KindImageSharing),
	})
	elapsed := time.Since(start)
	for _, r := range res {
		if r.Outcome != OutcomeOK {
			t.Fatalf("outcome %v err %v", r.Outcome, r.Err)
		}
	}
	// Three same-host requests with 30ms spacing need >= ~60ms.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("crawl finished in %v; politeness delay not applied", elapsed)
	}
}

func TestSummarize(t *testing.T) {
	_, _, c := testWorld(t)
	res := c.Crawl(context.Background(), []Task{
		task("https://imgur.com/live", urlx.KindImageSharing),
		task("https://mediafire.com/pack1", urlx.KindCloudStorage),
		task("https://imgur.com/deleted", urlx.KindImageSharing),
	})
	s := Summarize(res)
	if s.Tasks != 3 {
		t.Errorf("Tasks = %d", s.Tasks)
	}
	if s.PacksFetched != 1 || s.PackImages != 3 || s.PreviewImages != 1 {
		t.Errorf("stats = %+v", s)
	}
	// The pack contains an exact duplicate image.
	if s.DuplicateCount != 1 {
		t.Errorf("DuplicateCount = %d want 1", s.DuplicateCount)
	}
	if s.UniqueImages != 3 {
		t.Errorf("UniqueImages = %d want 3", s.UniqueImages)
	}
	if s.ByOutcome[OutcomeNotFound] != 1 {
		t.Errorf("ByOutcome = %v", s.ByOutcome)
	}
	if len(s.OutcomeCounts()) == 0 {
		t.Error("OutcomeCounts empty")
	}
}

func TestTasksFromLinks(t *testing.T) {
	links := []urlx.Link{
		{URL: "https://imgur.com/a", Domain: "imgur.com", Kind: urlx.KindImageSharing},
		{URL: "https://random.net/b", Domain: "random.net", Kind: urlx.KindUnknown},
	}
	tasks := TasksFromLinks(links, 5, 6, 7)
	if len(tasks) != 1 || tasks[0].Thread != 5 {
		t.Fatalf("tasks = %+v", tasks)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeOK: "ok", OutcomeNotFound: "not found",
		OutcomeLoginRequired: "login required", OutcomeSiteDown: "site down",
		OutcomeError: "error", Outcome(99): "unknown",
	} {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q", o, o.String())
		}
	}
}

func BenchmarkCrawl100(b *testing.B) {
	w := hosting.NewWorld()
	site := w.AddSite(hosting.SiteConfig{Domain: "imgur.com", Kind: urlx.KindImageSharing})
	var tasks []Task
	for i := 0; i < 100; i++ {
		path := "img" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		site.PutImage(path, imagex.GenModel(uint64(i), 0, imagex.PoseNude, 24))
		tasks = append(tasks, Task{
			Link: urlx.Link{URL: "https://imgur.com/" + path, Domain: "imgur.com", Kind: urlx.KindImageSharing},
		})
	}
	srv := httptest.NewServer(w)
	defer srv.Close()
	c := New(Config{Concurrency: 16}, srv.Client(), w.Resolver(srv.URL))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.Crawl(context.Background(), tasks)
		if res[0].Outcome != OutcomeOK {
			b.Fatal("crawl failed")
		}
	}
}

func TestCrawlStreamMatchesCrawl(t *testing.T) {
	_, _, c := testWorld(t)
	tasks := []Task{
		task("https://imgur.com/live", urlx.KindImageSharing),
		task("https://imgur.com/deleted", urlx.KindImageSharing),
		task("https://mediafire.com/pack1", urlx.KindCloudStorage),
		task("https://dropbox.com/wall", urlx.KindCloudStorage),
		task("https://oron.com/x", urlx.KindCloudStorage),
		task("https://imgur.com/tos", urlx.KindImageSharing),
	}
	want := c.Crawl(context.Background(), tasks)
	var got []Result
	for r := range c.CrawlStream(context.Background(), nil, tasks) {
		got = append(got, r)
	}
	if len(got) != len(want) {
		t.Fatalf("stream delivered %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Task != want[i].Task {
			t.Fatalf("result %d out of order: got task %+v want %+v", i, got[i].Task, want[i].Task)
		}
		if got[i].Outcome != want[i].Outcome || got[i].IsPack != want[i].IsPack ||
			len(got[i].Images) != len(want[i].Images) {
			t.Fatalf("result %d differs: got (%v, pack=%v, %d images) want (%v, pack=%v, %d images)",
				i, got[i].Outcome, got[i].IsPack, len(got[i].Images),
				want[i].Outcome, want[i].IsPack, len(want[i].Images))
		}
	}
}

func TestCrawlStreamCancel(t *testing.T) {
	_, _, c := testWorld(t)
	var tasks []Task
	for i := 0; i < 200; i++ {
		tasks = append(tasks, task("https://imgur.com/live", urlx.KindImageSharing))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := c.CrawlStream(ctx, nil, tasks)
	n := 0
	for range ch {
		n++
		if n == 3 {
			cancel()
		}
	}
	if n == len(tasks) {
		t.Fatal("cancellation did not stop the stream")
	}
}
