package studysvc

import (
	"fmt"
	"testing"
)

// Tests are exempt: t.Log is structured enough for a test, and debug
// prints in tests never reach an operator.
func TestPrintAllowed(t *testing.T) {
	fmt.Println("tests may print")
}
