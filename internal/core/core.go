// Package core orchestrates the complete study: the Figure 1 pipeline
// (thread selection → TOP classification → URL extraction → crawling →
// PhotoDNA filtering → NSFV classification → reverse image search →
// domain classification), the §5 financial analysis and the §6 actor
// analysis. Study is the public entry point used by the command-line
// tools, the examples and the benchmark harness.
package core

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/actors"
	"repro/internal/artefact"
	"repro/internal/crawler"
	"repro/internal/domaincls"
	"repro/internal/earnings"
	"repro/internal/faultx"
	"repro/internal/forum"
	"repro/internal/imagex"
	"repro/internal/ml"
	"repro/internal/nsfv"
	"repro/internal/photodna"
	"repro/internal/pipeline"
	"repro/internal/reverse"
	"repro/internal/socialgraph"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/topclass"
	"repro/internal/urlx"
)

// Options configures a Study run.
type Options struct {
	// Synth configures world generation.
	Synth synth.Config
	// AnnotationSize is the size of the manually-annotated thread
	// corpus (the paper used 1 000; scaled worlds may use less).
	AnnotationSize int
	// TrainFrac is the train/test split (paper: 0.8).
	TrainFrac float64
	// ImagesPerPack is how many images per pack go to reverse search
	// (paper: 3 — the lowest, median and highest NSFW score).
	ImagesPerPack int
	// CrawlConcurrency bounds the crawler's workers.
	CrawlConcurrency int
	// Workers bounds each concurrent pipeline stage's worker pool in
	// Run (default: GOMAXPROCS). The crawl stage uses
	// CrawlConcurrency.
	Workers int
	// Faults is a faultx profile injected into the in-process crawl
	// seam (see faultx.ParseProfile), "" for none. It is part of the
	// study's identity — artefact keys include it — because a faulted
	// crawl may legitimately produce a different (degraded) corpus.
	// Validate at the API boundary: an unparseable profile here is
	// ignored.
	Faults string
}

// DefaultOptions returns the study's standard parameters.
func DefaultOptions() Options {
	return Options{
		Synth:            synth.DefaultConfig(),
		AnnotationSize:   1000,
		TrainFrac:        0.8,
		ImagesPerPack:    3,
		CrawlConcurrency: 8,
	}
}

// Study holds the generated world and everything derived from it.
type Study struct {
	Opts  Options
	World *synth.World

	// Hybrid is the trained TOP classifier.
	Hybrid *topclass.Hybrid
	// Whitelist is the (snowball-expanded) hosting whitelist.
	Whitelist *urlx.Whitelist
	// Hotline collects PhotoDNA reports.
	Hotline *photodna.Hotline

	serverMu sync.Mutex
	server   *httptest.Server

	// backend is how the study reaches the web substrate (crawl,
	// reverse search, Wayback, snowball visits). Defaults to the
	// in-process world; UseBackend swaps in an HTTP backend.
	backend Backend

	// memo, when set via UseMemo, shares artefact values across runs
	// and studies under their canonical node keys; otherwise the
	// study memoizes privately into localMemo, so repeated Compute
	// calls on one study are idempotent (the snowball expansion and
	// every other node run at most once per semantic key).
	memo      *artefact.Store
	localMemo *artefact.Store

	// stats holds the stage metrics of the most recent concurrent Run
	// or Compute.
	stats *pipeline.Stats

	// faultInj injects the parsed Opts.Faults plan into the in-process
	// crawl transport; nil when fault injection is off.
	faultInj *faultx.Injector
}

// NewStudy generates the world and prepares the study.
func NewStudy(opts Options) *Study {
	return NewStudyWithWorld(opts, nil)
}

// NewStudyContext is NewStudy under a caller context: world generation
// records its per-generator child spans on any tracer in ctx and fans
// out over opts.Synth.Workers.
func NewStudyContext(ctx context.Context, opts Options) *Study {
	return NewStudyWithWorldContext(ctx, opts, nil)
}

// NewStudyWithWorld prepares a study over an already-generated world,
// skipping generation — the seam the sweep engine's world cache uses
// to share one immutable world across cells that differ only in
// annotation size, worker counts or crawl concurrency. Generation is
// deterministic in the canonical config, so a shared world and a
// fresh one produce bit-identical Results. A nil world, or one whose
// config does not match opts.Synth, is generated from opts.Synth as
// NewStudy would.
//
// A run never mutates the world (DESIGN.md §3: concurrency safety
// rests on a frozen world), so the same *synth.World may back any
// number of concurrent studies.
func NewStudyWithWorld(opts Options, world *synth.World) *Study {
	//lint:ignore ctxhygiene the context only scopes world generation; context-aware callers use NewStudyWithWorldContext.
	return NewStudyWithWorldContext(context.Background(), opts, world)
}

// NewStudyWithWorldContext is NewStudyWithWorld under a caller
// context, used when generation should trace into ctx's span tree.
func NewStudyWithWorldContext(ctx context.Context, opts Options, world *synth.World) *Study {
	if opts.AnnotationSize <= 0 {
		opts.AnnotationSize = 1000
	}
	if opts.TrainFrac <= 0 || opts.TrainFrac >= 1 {
		opts.TrainFrac = 0.8
	}
	if opts.ImagesPerPack <= 0 {
		opts.ImagesPerPack = 3
	}
	if opts.CrawlConcurrency <= 0 {
		opts.CrawlConcurrency = 8
	}
	if world == nil || world.Config != opts.Synth.Canonical() {
		world = synth.GenerateContext(ctx, opts.Synth)
	}
	s := &Study{
		Opts:      opts,
		World:     world,
		Whitelist: urlx.DefaultWhitelist(),
		Hotline:   photodna.NewHotline(),
		localMemo: artefact.NewStore(0),
	}
	if plan, err := faultx.ParseProfile(opts.Faults); err == nil {
		s.faultInj = faultx.NewInjector(plan)
	}
	s.backend = &worldBackend{study: s}
	return s
}

// UseBackend replaces the study's substrate backend — e.g. with an
// HTTPBackend so the crawl, reverse search and Wayback lookups run
// against live services instead of the in-process world. Must be
// called before the first run.
func (s *Study) UseBackend(b Backend) {
	s.backend = b
}

// Close shuts down the embedded hosting server if one was started and
// releases backend resources.
func (s *Study) Close() {
	s.backend.Close()
	s.serverMu.Lock()
	defer s.serverMu.Unlock()
	if s.server != nil {
		s.server.Close()
		s.server = nil
	}
}

// hostingServer lazily starts the hosting world as a live HTTP
// server. Safe for concurrent use: the image and earnings branches of
// the concurrent Run both crawl against it.
func (s *Study) hostingServer() *httptest.Server {
	s.serverMu.Lock()
	defer s.serverMu.Unlock()
	if s.server == nil {
		s.server = httptest.NewServer(s.World.Web)
	}
	return s.server
}

// PipelineStats returns the per-stage and per-node metrics of the
// most recent concurrent Run or Compute (nil before the first, or
// after RunSequential).
func (s *Study) PipelineStats() []pipeline.StageSnapshot {
	return s.stats.Snapshot()
}

// --- Step 0: dataset selection (§3, Table 1) ---------------------------

// ForumOverviewRow is one row of Table 1.
type ForumOverviewRow struct {
	Forum     string
	Threads   int
	Posts     int
	FirstPost time.Time
	TOPs      int // filled after classification
	Actors    int
}

// SelectEWhoring performs the paper's dataset selection: every thread
// whose heading contains 'ewhor' or 'e-whor' (lowercase comparison)
// plus every thread of the Hackforums eWhoring board.
func (s *Study) SelectEWhoring() []forum.ThreadID {
	set := forum.NewThreadSet(s.World.Store.SearchHeadings(topclass.EWhoringKeywords...)...)
	set.Add(s.World.Store.ThreadsInBoard(s.World.HFEWhoring)...)
	return set.Sorted()
}

// ForumOverview computes Table 1 (without the TOP column; merge with
// classification results for the full table).
func (s *Study) ForumOverview(ew []forum.ThreadID) []ForumOverviewRow {
	store := s.World.Store
	byForum := make(map[forum.ForumID]*ForumOverviewRow)
	actorsSeen := make(map[forum.ForumID]map[forum.ActorID]struct{})
	for _, tid := range ew {
		th := store.Thread(tid)
		row, ok := byForum[th.Forum]
		if !ok {
			row = &ForumOverviewRow{Forum: store.Forum(th.Forum).Name}
			byForum[th.Forum] = row
			actorsSeen[th.Forum] = make(map[forum.ActorID]struct{})
		}
		row.Threads++
		for _, p := range store.PostsInThread(tid) {
			row.Posts++
			actorsSeen[th.Forum][p.Author] = struct{}{}
			if row.FirstPost.IsZero() || p.Created.Before(row.FirstPost) {
				row.FirstPost = p.Created
			}
		}
	}
	var rows []ForumOverviewRow
	for fid, row := range byForum {
		row.Actors = len(actorsSeen[fid])
		rows = append(rows, *row)
	}
	// Ties broken by name so the table is deterministic: rows are
	// assembled from a map.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Threads != rows[j].Threads {
			return rows[i].Threads > rows[j].Threads
		}
		return rows[i].Forum < rows[j].Forum
	})
	return rows
}

// --- Step 1: TOP classification (§4.1) ---------------------------------

// ClassifierResult carries the §4.1 evaluation and corpus sweep.
type ClassifierResult struct {
	Annotated  int
	TOPsInAnno int
	Metrics    ml.Metrics
	Extract    topclass.ExtractResult
	// TOPsByForum supports Table 1's TOP column.
	TOPsByForum map[string]int
}

// TrainAndExtract reproduces §4.1: annotate a thread sample, train on
// TrainFrac of it, evaluate on the rest, then sweep the whole
// eWhoring corpus with the hybrid classifier.
func (s *Study) TrainAndExtract(ew []forum.ThreadID) (ClassifierResult, error) {
	n := s.Opts.AnnotationSize
	if n > len(ew) {
		n = len(ew)
	}
	sample := s.World.AnnotationSample(n, s.Opts.Synth.Seed+1)
	labeled := make([]topclass.Labeled, len(sample))
	tops := 0
	for i, l := range sample {
		labeled[i] = topclass.Labeled{Thread: l.Thread, IsTOP: l.IsTOP}
		if l.IsTOP {
			tops++
		}
	}
	cut := int(s.Opts.TrainFrac * float64(len(labeled)))
	if cut < 1 || cut >= len(labeled) {
		return ClassifierResult{}, fmt.Errorf("core: annotation sample too small (%d)", len(labeled))
	}
	train, test := labeled[:cut], labeled[cut:]
	hybrid, err := topclass.Train(s.World.Store, s.Whitelist, train, ml.DefaultSVMConfig())
	if err != nil {
		return ClassifierResult{}, err
	}
	s.Hybrid = hybrid
	res := ClassifierResult{
		Annotated:   len(labeled),
		TOPsInAnno:  tops,
		Metrics:     hybrid.Evaluate(test),
		Extract:     hybrid.Extract(ew),
		TOPsByForum: make(map[string]int),
	}
	for _, tid := range res.Extract.TOPs {
		f := s.World.Store.Forum(s.World.Store.Thread(tid).Forum)
		res.TOPsByForum[f.Name]++
	}
	return res, nil
}

// --- Step 2: URL extraction (§4.2, Tables 3 and 4) ---------------------

// LinkExtraction is the outcome of sweeping TOPs for hosting links.
type LinkExtraction struct {
	// Links are all whitelisted links with provenance.
	Tasks []crawler.Task
	// ImageSharing and CloudStorage are the Table 3/4 tallies.
	ImageSharing []urlx.DomainCount
	CloudStorage []urlx.DomainCount
	// ThreadsWithLinks counts TOPs that yielded at least one link
	// (paper: 774 of 4 137, 18.71%).
	ThreadsWithLinks int
	// SnowballAdded is the number of domains the snowball sampling
	// added to the whitelist.
	SnowballAdded int
}

// ExtractLinks pulls URLs from every post of the given TOPs,
// snowball-expands the whitelist against the live web, and classifies
// the links.
func (s *Study) ExtractLinks(ctx context.Context, tops []forum.ThreadID) LinkExtraction {
	store := s.World.Store
	type located struct {
		url    string
		thread forum.ThreadID
		post   forum.PostID
		author forum.ActorID
	}
	var all []located
	var urls []string
	for _, tid := range tops {
		for _, p := range store.PostsInThread(tid) {
			for _, u := range urlx.Extract(p.Body) {
				all = append(all, located{u, tid, p.ID, p.Author})
				urls = append(urls, u)
			}
		}
	}
	// Snowball sampling against site landing pages.
	visit := func(domain string) (urlx.Kind, bool) { return s.backend.VisitKind(ctx, domain) }
	added := urlx.Snowball(s.Whitelist, urls, visit, 5)

	out := LinkExtraction{SnowballAdded: added}
	var links []urlx.Link
	withLinks := make(map[forum.ThreadID]struct{})
	for _, l := range all {
		link := s.Whitelist.Classify(l.url)
		if link.Kind == urlx.KindUnknown {
			continue
		}
		links = append(links, link)
		withLinks[l.thread] = struct{}{}
		out.Tasks = append(out.Tasks, crawler.Task{
			Link: link, Thread: l.thread, Post: l.post, Author: l.author,
		})
	}
	out.ThreadsWithLinks = len(withLinks)
	out.ImageSharing = urlx.SortedCounts(urlx.CountByDomain(links, urlx.KindImageSharing))
	out.CloudStorage = urlx.SortedCounts(urlx.CountByDomain(links, urlx.KindCloudStorage))
	return out
}

// --- Step 3: crawling (§4.2) -------------------------------------------

// CrawlLinks downloads every task over live HTTP through the study's
// backend (embedded hosting server by default; remote services with an
// HTTPBackend).
func (s *Study) CrawlLinks(ctx context.Context, tasks []crawler.Task) []crawler.Result {
	return s.backend.Crawl(ctx, tasks)
}

// --- Step 4: PhotoDNA gate (§4.3) ---------------------------------------

// SafeImage is a downloaded image that passed the hashlist gate.
type SafeImage struct {
	Image  *imagex.Image
	Task   crawler.Task
	IsPack bool
}

// FilterAbuse passes every downloaded image through the PhotoDNA
// filter. Matches are reported to the hotline (with reverse-search URL
// reports, as in §4.3) and withheld from the returned set.
func (s *Study) FilterAbuse(ctx context.Context, results []crawler.Result) ([]SafeImage, photodna.ActionSummary) {
	return s.filterAbuseInto(ctx, results, s.Hotline)
}

// filterAbuseInto is FilterAbuse reporting to an explicit hotline —
// the concurrent Run gives each branch its own so the §4.3 summary
// stays independent of branch interleaving.
func (s *Study) filterAbuseInto(ctx context.Context, results []crawler.Result, hotline *photodna.Hotline) ([]SafeImage, photodna.ActionSummary) {
	var safe []SafeImage
	for _, r := range results {
		o := s.matchResult(ctx, r)
		for _, rep := range o.reports {
			hotline.Report(rep)
		}
		safe = append(safe, o.safe...)
	}
	return safe, hotline.Summarize()
}

// matchOutcome partitions one crawl result's images into the safe set
// and the hotline reports its matches produced.
type matchOutcome struct {
	safe    []SafeImage
	reports []photodna.MatchReport
}

// matchScratch carries the reusable buffers of one pack probe through
// the PhotoDNA gate, pooled because the gate runs once per crawl
// result across concurrent workers.
type matchScratch struct {
	hashes  []photodna.RobustHash
	matches []photodna.BatchMatch
}

var matchScratchPool = sync.Pool{New: func() any { return new(matchScratch) }}

// matchResult runs the PhotoDNA gate over one crawl result. Each image
// is hashed exactly once and the whole result — a pack's worth of
// images — is probed in a single MatchBatch call; matches carry the
// URLs where reverse search finds the same image. Pure: reporting is
// the caller's job, so the gate can fan out across workers while
// reports are filed in task order.
func (s *Study) matchResult(ctx context.Context, r crawler.Result) matchOutcome {
	var o matchOutcome
	if r.Outcome != crawler.OutcomeOK || len(r.Images) == 0 {
		return o
	}
	sc := matchScratchPool.Get().(*matchScratch)
	defer matchScratchPool.Put(sc)
	sc.hashes = sc.hashes[:0]
	for _, im := range r.Images {
		sc.hashes = append(sc.hashes, photodna.HashImage(im))
	}
	sc.matches = s.World.HashList.MatchBatch(sc.hashes, sc.matches[:0])
	// Nearly every image passes the gate, so size the safe set for all
	// of them up front instead of growing it append by append.
	o.safe = make([]SafeImage, 0, len(r.Images))
	for i, im := range r.Images {
		bm := sc.matches[i]
		if !bm.OK {
			o.safe = append(o.safe, SafeImage{Image: im, Task: r.Task, IsPack: r.IsPack})
			continue
		}
		// Report with the URLs where reverse search finds the same
		// image, reusing the hash already computed for the gate.
		matches := s.backend.SearchHash(ctx, sc.hashes[i])
		var urlReports []photodna.URLReport
		if len(matches) > 0 {
			urlReports = make([]photodna.URLReport, 0, len(matches))
		}
		for _, m := range matches {
			urlReports = append(urlReports, photodna.URLReport{
				URL:      m.URL,
				Region:   s.World.RegionOf(m.Domain),
				SiteType: s.World.SiteTypeOf(m.Domain),
			})
		}
		o.reports = append(o.reports, photodna.MatchReport{
			Entry:        bm.Entry,
			SourceThread: int(r.Task.Thread),
			SourcePost:   int(r.Task.Post),
			URLs:         urlReports,
		})
	}
	return o
}

// --- Step 5: NSFV classification (§4.4) ----------------------------------

// NSFVResult splits the image-site downloads.
type NSFVResult struct {
	Previews []SafeImage // NSFV → treated as pack previews
	SFV      []SafeImage // error banners, directory screenshots, ...
	// PackImages are pack-archive members (always handled
	// programmatically; never viewed).
	PackImages []SafeImage
}

// ClassifyNSFV runs Algorithm 1 over the image-site downloads.
func (s *Study) ClassifyNSFV(safe []SafeImage) NSFVResult {
	clf := nsfv.New()
	var out NSFVResult
	for _, si := range safe {
		if si.IsPack {
			out.PackImages = append(out.PackImages, si)
			continue
		}
		if clf.IsSFV(si.Image) {
			out.SFV = append(out.SFV, si)
		} else {
			out.Previews = append(out.Previews, si)
		}
	}
	return out
}

// --- Step 6: reverse search and provenance (§4.5, Tables 5 and 6) -------

// ReverseRow is one row of Table 5.
type ReverseRow struct {
	Corpus     string
	Total      int
	Matched    int
	SeenBefore int
	AvgMatches float64 // over matched images
	MaxMatches int
}

// ProvenanceResult carries Table 5, the matched domains and Table 6.
type ProvenanceResult struct {
	Packs     ReverseRow
	Previews  ReverseRow
	ZeroMatch int // packs whose sampled images all have zero matches
	Domains   []string
	Table6    map[string][]domaincls.TagCount
}

// Provenance reverse-searches all previews and ImagesPerPack images
// per pack (lowest, median and highest NSFW score, per the paper),
// checks Seen-Before against crawl dates and the Wayback archive, and
// classifies the matched domains with the three classifiers.
func (s *Study) Provenance(ctx context.Context, n NSFVResult) ProvenanceResult {
	f := newProvFold()
	for _, si := range samplePackImages(n.PackImages, s.Opts.ImagesPerPack) {
		f.addPack(s.searchImage(ctx, si))
	}
	for _, si := range n.Previews {
		f.addPreview(s.searchImage(ctx, si))
	}
	return f.finish(s)
}

// searchOutcome is the per-image part of provenance: the reverse-search
// and Seen-Before result for one image. Pure, so the search can fan
// out across workers while rows fold in image order.
type searchOutcome struct {
	thread  forum.ThreadID
	matches int
	seen    bool
	domains []string
}

// searchImage reverse-searches one image and checks Seen-Before
// against the post date and the Wayback archive.
func (s *Study) searchImage(ctx context.Context, si SafeImage) searchOutcome {
	posted := s.World.Store.Post(si.Task.Post).Created
	matches := s.backend.SearchImage(ctx, si.Image)
	o := searchOutcome{thread: si.Task.Thread, matches: len(matches)}
	if len(matches) == 0 {
		return o
	}
	o.seen = reverse.SeenBefore(matches, posted)
	if !o.seen {
		for _, m := range matches {
			if s.backend.WaybackSeenBefore(ctx, m.URL, posted) {
				o.seen = true
				break
			}
		}
	}
	for _, m := range matches {
		o.domains = append(o.domains, m.Domain)
	}
	return o
}

// provFold accumulates search outcomes into a ProvenanceResult. The
// fold is order-sensitive (AvgMatches sums floats), so both Run paths
// feed it the same per-row image order.
type provFold struct {
	res       ProvenanceResult
	domains   map[string]struct{}
	perThread map[forum.ThreadID][]int
}

func newProvFold() *provFold {
	return &provFold{
		res: ProvenanceResult{
			Packs:    ReverseRow{Corpus: "packs"},
			Previews: ReverseRow{Corpus: "previews"},
		},
		domains:   make(map[string]struct{}),
		perThread: make(map[forum.ThreadID][]int),
	}
}

// addPack folds a sampled pack image's outcome (tracked per thread for
// the zero-match count).
func (f *provFold) addPack(o searchOutcome) {
	f.perThread[o.thread] = append(f.perThread[o.thread], o.matches)
	f.add(&f.res.Packs, o)
}

// addPreview folds a preview image's outcome.
func (f *provFold) addPreview(o searchOutcome) {
	f.add(&f.res.Previews, o)
}

func (f *provFold) add(row *ReverseRow, o searchOutcome) {
	row.Total++
	if o.matches == 0 {
		return
	}
	row.Matched++
	row.AvgMatches += float64(o.matches)
	if o.matches > row.MaxMatches {
		row.MaxMatches = o.matches
	}
	if o.seen {
		row.SeenBefore++
	}
	for _, d := range o.domains {
		f.domains[d] = struct{}{}
	}
}

// finish normalises the rows, counts zero-match packs and classifies
// the matched domains.
func (f *provFold) finish(s *Study) ProvenanceResult {
	res := f.res
	for _, row := range []*ReverseRow{&res.Packs, &res.Previews} {
		if row.Matched > 0 {
			row.AvgMatches /= float64(row.Matched)
		}
	}
	// Zero-match packs: sampled threads whose every sampled image had
	// zero matches.
	for _, counts := range f.perThread {
		zero := true
		for _, c := range counts {
			if c > 0 {
				zero = false
				break
			}
		}
		if zero {
			res.ZeroMatch++
		}
	}
	res.Domains = make([]string, 0, len(f.domains))
	for d := range f.domains {
		res.Domains = append(res.Domains, d)
	}
	sort.Strings(res.Domains)
	res.Table6 = map[string][]domaincls.TagCount{
		"McAfee":     domaincls.Tally(domaincls.NewMcAfee(s.World.Directory), res.Domains, 85),
		"VirusTotal": domaincls.Tally(domaincls.NewVirusTotal(s.World.Directory), res.Domains, 85),
		"OpenDNS":    domaincls.Tally(domaincls.NewOpenDNS(s.World.Directory), res.Domains, 85),
	}
	return res
}

// samplePackImages picks k images per (thread, pack link): the lowest,
// median and highest NSFW-scoring images, as the paper samples.
func samplePackImages(packImages []SafeImage, k int) []SafeImage {
	type packKey struct {
		thread forum.ThreadID
		post   forum.PostID
		url    string
	}
	groups := make(map[packKey][]SafeImage)
	var order []packKey
	for _, si := range packImages {
		key := packKey{si.Task.Thread, si.Task.Post, si.Task.Link.URL}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], si)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].thread != order[j].thread {
			return order[i].thread < order[j].thread
		}
		return order[i].url < order[j].url
	})
	scorer := nsfv.New().Scorer
	var out []SafeImage
	type scored struct {
		si    SafeImage
		score float64
	}
	for _, key := range order {
		// Score each image once; the comparator would otherwise rescore
		// (a full raster traversal) on every comparison.
		imgs := make([]scored, len(groups[key]))
		for i, si := range groups[key] {
			imgs[i] = scored{si: si, score: scorer.Score(si.Image)}
		}
		sort.Slice(imgs, func(i, j int) bool {
			return imgs[i].score < imgs[j].score
		})
		picks := []int{0, len(imgs) / 2, len(imgs) - 1}
		if k < len(picks) {
			picks = picks[:k]
		}
		seen := map[int]struct{}{}
		for _, p := range picks {
			if _, dup := seen[p]; !dup {
				seen[p] = struct{}{}
				out = append(out, imgs[p].si)
			}
		}
	}
	return out
}

// --- §5: financial analysis ---------------------------------------------

// EarningsResult carries the §5 outputs.
type EarningsResult struct {
	ThreadsMatched int
	URLs           int
	Downloaded     int
	FilteredNSFV   int
	NotProofs      int
	Proofs         []earnings.Proof
	Summary        earnings.Summary
	// PerActorUSD / PerActorProofs feed Figure 2.
	PerActorUSD    []float64
	PerActorProofs []float64
	// Monthly series per platform feed Figure 3.
	MonthlyAGC    *stats.MonthlySeries
	MonthlyPayPal *stats.MonthlySeries
	// CrawlCoverage is the §5 crawl's degradation ledger: which hosts
	// the proof-image crawl lost, if any.
	CrawlCoverage crawler.Coverage
}

// AnalyzeEarnings reproduces §5.1-5.2: locate earnings threads
// (heading keywords within the eWhoring corpus plus the Bragging
// Rights board), extract image links, crawl them, gate through
// PhotoDNA and NSFV, OCR-annotate the survivors into structured
// proofs, and aggregate.
func (s *Study) AnalyzeEarnings(ctx context.Context, ew []forum.ThreadID) EarningsResult {
	return s.analyzeEarningsWith(ctx, ew, s.Whitelist, s.Hotline)
}

// analyzeEarningsWith is AnalyzeEarnings classifying links against an
// explicit whitelist and reporting PhotoDNA matches to an explicit
// hotline. The earnings artefact node passes the snowball-expanded
// whitelist snapshotted in the links value — the state the sequential
// order leaves on the study — and its own hotline, so the §4.3
// summary stays independent of evaluation interleaving.
func (s *Study) analyzeEarningsWith(ctx context.Context, ew []forum.ThreadID, whitelist *urlx.Whitelist, hotline *photodna.Hotline) EarningsResult {
	store := s.World.Store
	var res EarningsResult

	// Thread selection: "threads containing the words 'you make' or
	// 'earn' in their heading" plus the Bragging Rights board.
	selected := forum.NewThreadSet()
	for _, tid := range ew {
		h := strings.ToLower(store.Thread(tid).Heading)
		if strings.Contains(h, "you make") || strings.Contains(h, "earn") ||
			strings.Contains(h, "profit") || strings.Contains(h, "proof") {
			selected.Add(tid)
		}
	}
	selected.Add(store.ThreadsInBoard(s.World.HFBragging)...)
	res.ThreadsMatched = selected.Len()

	// Extract image-sharing links from the posts.
	var tasks []crawler.Task
	for _, tid := range selected.Sorted() {
		for _, p := range store.PostsInThread(tid) {
			for _, u := range urlx.Extract(p.Body) {
				link := whitelist.Classify(u)
				if link.Kind != urlx.KindImageSharing {
					continue
				}
				tasks = append(tasks, crawler.Task{Link: link, Thread: tid, Post: p.ID, Author: p.Author})
			}
		}
	}
	res.URLs = len(tasks)

	results := s.CrawlLinks(ctx, tasks)
	res.CrawlCoverage = crawler.CoverageOf(results)
	safe, _ := s.filterAbuseInto(ctx, results, hotline)
	res.Downloaded = 0
	for _, r := range results {
		if r.Outcome == crawler.OutcomeOK {
			res.Downloaded += len(r.Images)
		}
	}
	clf := nsfv.New()
	res.MonthlyAGC = stats.NewMonthlySeries()
	res.MonthlyPayPal = stats.NewMonthlySeries()
	for _, si := range safe {
		if !clf.IsSFV(si.Image) {
			res.FilteredNSFV++
			continue
		}
		posted := store.Post(si.Task.Post).Created
		proof, err := earnings.AnnotateImage(si.Image, posted)
		if err != nil {
			res.NotProofs++
			continue
		}
		proof.Actor = si.Task.Author
		proof.Post = si.Task.Post
		res.Proofs = append(res.Proofs, proof)
		switch proof.Platform {
		case earnings.PlatformAGC:
			res.MonthlyAGC.Add(posted)
		case earnings.PlatformPayPal:
			res.MonthlyPayPal.Add(posted)
		}
	}
	res.Summary = earnings.Summarize(res.Proofs)
	for _, a := range earnings.AggregateByActor(res.Proofs) {
		res.PerActorUSD = append(res.PerActorUSD, a.TotalUSD)
		res.PerActorProofs = append(res.PerActorProofs, float64(a.Proofs))
	}
	return res
}

// HeavyPosterThreshold scales the paper's ">50 eWhoring posts" cut to
// the world's scale.
func (s *Study) HeavyPosterThreshold() int {
	thr := int(50 * s.Opts.Synth.Scale * 4)
	if thr < 3 {
		thr = 3
	}
	if thr > 50 {
		thr = 50
	}
	return thr
}

// ExchangeAnalysis computes Table 7 over the Currency Exchange
// threads of actors above the heavy-poster threshold, posted after
// they started eWhoring.
func (s *Study) ExchangeAnalysis(profiles map[forum.ActorID]*actors.Profile) earnings.ExchangeTable {
	store := s.World.Store
	thr := s.HeavyPosterThreshold()
	var headings []string
	for _, tid := range store.ThreadsInBoard(s.World.HFCurrency) {
		th := store.Thread(tid)
		p := profiles[th.Author]
		if p == nil || p.EwPosts < thr {
			continue
		}
		if th.Created.Before(p.FirstEw) {
			continue
		}
		headings = append(headings, th.Heading)
	}
	return earnings.TallyExchange(headings)
}

// --- §6: actor analysis ---------------------------------------------------

// ActorAnalysis carries the §6 outputs.
type ActorAnalysis struct {
	Profiles map[forum.ActorID]*actors.Profile
	Table8   []actors.BucketRow
	// Samples per bucket threshold feed Figure 4.
	Fig4 map[int]actors.Samples
	Key  actors.KeyActors
	// Inputs holds the per-criterion scores (exported for reporting).
	Inputs  actors.KeyActorInputs
	Table9  map[actors.Group]map[actors.Group]int
	Table10 []actors.GroupStats
	Fig5    map[actors.InterestPhase]actors.InterestProfile
}

// AnalyzeActors reproduces §6 end-to-end. tops lists the classified
// TOPs (for the pack-sharer criterion); proofs the parsed earnings.
func (s *Study) AnalyzeActors(ew []forum.ThreadID, tops []forum.ThreadID, proofs []earnings.Proof) ActorAnalysis {
	store := s.World.Store
	out := ActorAnalysis{}
	out.Profiles = actors.BuildProfiles(store, ew)
	out.Table8 = actors.Buckets(out.Profiles, nil)
	out.Fig4 = map[int]actors.Samples{}
	for _, thr := range actors.Table8Thresholds {
		out.Fig4[thr] = actors.CollectSamples(out.Profiles, thr)
	}

	graph := socialgraph.Build(store, ew)
	packs := make(map[forum.ActorID]int)
	for _, tid := range tops {
		packs[store.Thread(tid).Author]++
	}
	earn := make(map[forum.ActorID]float64)
	for _, a := range earnings.AggregateByActor(proofs) {
		earn[a.Actor] = a.TotalUSD
	}
	scores, counts := actors.ExchangeScores(store, s.World.HFCurrency, out.Profiles)
	out.Inputs = actors.KeyActorInputs{
		PacksShared:     packs,
		EarningsUSD:     earn,
		Popularity:      socialgraph.ComputePopularity(store, ew),
		Centrality:      graph.EigenvectorCentrality(80, 1e-9),
		ExchangeScore:   scores,
		ExchangeThreads: counts,
	}
	sel := actors.DefaultSelection()
	if s.Opts.Synth.Scale < 0.5 {
		// Scale the top-k and pack minimum so small worlds still
		// produce multi-member groups.
		sel.TopK = int(50 * s.Opts.Synth.Scale * 10)
		if sel.TopK < 10 {
			sel.TopK = 10
		}
		if sel.TopK > 50 {
			sel.TopK = 50
		}
		sel.MinPacks = 2
	}
	out.Key = actors.SelectKeyActors(out.Inputs, sel)
	out.Table9 = out.Key.Intersections()
	out.Table10 = out.Key.GroupCharacteristics(out.Profiles, out.Inputs)
	out.Fig5 = actors.Interests(store, out.Key.All, out.Profiles,
		forum.NewThreadSet(ew...), "Lounge")
	return out
}

// --- Full run --------------------------------------------------------------

// Results bundles every table and figure of the study.
type Results struct {
	EWhoringThreads []forum.ThreadID
	Table1          []ForumOverviewRow
	Classifier      ClassifierResult
	Links           LinkExtraction
	CrawlStats      crawler.Stats
	PhotoDNA        photodna.ActionSummary
	NSFV            NSFVResult
	Provenance      ProvenanceResult
	Earnings        EarningsResult
	Table7          earnings.ExchangeTable
	Actors          ActorAnalysis
}

// Degraded reports whether any crawl in the study lost tasks to
// exhausted or short-circuited hosts — the signal the /v1/study
// envelope and the report surface as graceful degradation rather
// than failure.
func (r *Results) Degraded() bool {
	return r.CrawlStats.Coverage.Degraded || r.Earnings.CrawlCoverage.Degraded
}

// RunSequential executes the complete study strictly stage by stage.
// It is the reference implementation: Run must produce identical
// Results for the same Options, and the equivalence test holds it to
// that.
func (s *Study) RunSequential(ctx context.Context) (*Results, error) {
	defer s.Close()
	s.stats = nil
	res := &Results{}
	res.EWhoringThreads = s.SelectEWhoring()
	res.Table1 = s.ForumOverview(res.EWhoringThreads)

	cls, err := s.TrainAndExtract(res.EWhoringThreads)
	if err != nil {
		return nil, err
	}
	res.Classifier = cls
	for i := range res.Table1 {
		res.Table1[i].TOPs = cls.TOPsByForum[res.Table1[i].Forum]
	}

	res.Links = s.ExtractLinks(ctx, cls.Extract.TOPs)
	crawlResults := s.CrawlLinks(ctx, res.Links.Tasks)
	res.CrawlStats = crawler.Summarize(crawlResults)

	safe, pdnaSummary := s.FilterAbuse(ctx, crawlResults)
	res.PhotoDNA = pdnaSummary
	res.NSFV = s.ClassifyNSFV(safe)
	res.Provenance = s.Provenance(ctx, res.NSFV)

	res.Earnings = s.AnalyzeEarnings(ctx, res.EWhoringThreads)
	res.Actors = s.AnalyzeActors(res.EWhoringThreads, cls.Extract.TOPs, res.Earnings.Proofs)
	res.Table7 = s.ExchangeAnalysis(res.Actors.Profiles)
	return res, nil
}
