package synth

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/earnings"
	"repro/internal/forum"
	"repro/internal/imagex"
	"repro/internal/randx"
)

// proofSiteWeights: proof screenshots live on the big image hosts.
var proofSiteWeights = []struct {
	domain string
	weight float64
}{
	{"imgur.com", 60}, {"gyazo.com", 25}, {"prnt.sc", 10}, {"imageshack.com", 5},
}

// genProofLink creates one proof-of-earnings link: it synthesises the
// proof (platform, amounts, transactions), renders the dashboard
// screenshot, uploads it, and records the ground truth. The returned
// URL is embedded in the calling post's body. The mix reproduces §5.1:
// ~12% of links rot, most of the rest are genuine proofs, some are
// chat screenshots or stray pack previews.
func (w *World) genProofLink(st *forumState, author forum.ActorID, tm time.Time, _ interface{}) string {
	rng := st.rng
	domain := pickWeighted(rng, proofSiteWeights)
	path := "proof" + w.nextToken()
	url := fmt.Sprintf("https://%s/%s", domain, path)
	pt := ProofTruth{URL: url, Actor: author, Date: tm}

	// All randomness (including the proof contents) is drawn on the
	// walk; only the rendering and upload defer. proof is captured by
	// value and models are immutable during the forum phase.
	site, haveSite := w.Web.Site(domain)
	r := rng.Float64()
	switch {
	case r < 0.12 || !haveSite:
		pt.Kind = ProofDead // never uploaded → 404
	case r < 0.80:
		pt.Kind = ProofEarnings
		proof := w.synthProof(rng, author, tm)
		pt.Truth = proof
		pseed := rng.Uint64()
		w.do(func() {
			site.PutImage(path, earnings.RenderProofImage(pseed, proof))
		}, nil)
	case r < 0.88:
		pt.Kind = ProofChat
		sseed := rng.Uint64()
		w.do(func() {
			site.PutImage(path, imagex.GenScreenshot(sseed, []string{
				"HEY CUTIE", "WANNA SEE MORE", "SEND 20 FIRST", "OK SENDING NOW",
			}, 150, 44))
		}, nil)
	default:
		pt.Kind = ProofPreview
		if len(w.Models) > 0 {
			m := w.Models[rng.Intn(len(w.Models))]
			idx := rng.Intn(len(m.Images))
			w.do(func() { site.PutImage(path, w.ModelImage(m, idx)) }, nil)
		} else {
			pt.Kind = ProofDead
		}
	}
	w.Proofs = append(w.Proofs, pt)
	w.pendingProofs = append(w.pendingProofs, len(w.Proofs)-1)
	return url
}

// synthProof draws a proof's financial content. Platform shares shift
// over time (Figure 3: PayPal dominates early, Amazon Gift Cards take
// over from 2016); amounts are heavy-tailed with the $5-50 typical
// trade and occasional $200 cam-show payments.
func (w *World) synthProof(rng *randx.Rand, author forum.ActorID, tm time.Time) earnings.Proof {
	var platform earnings.Platform
	year := tm.Year()
	r := rng.Float64()
	switch {
	case year < 2014:
		switch {
		case r < 0.72:
			platform = earnings.PlatformPayPal
		case r < 0.87:
			platform = earnings.PlatformAGC
		case r < 0.95:
			platform = earnings.PlatformCash
		default:
			platform = earnings.PlatformSkrill
		}
	case year < 2016:
		switch {
		case r < 0.52:
			platform = earnings.PlatformPayPal
		case r < 0.90:
			platform = earnings.PlatformAGC
		case r < 0.96:
			platform = earnings.PlatformSkrill
		default:
			platform = earnings.PlatformBitcoin
		}
	default:
		switch {
		case r < 0.58:
			platform = earnings.PlatformAGC
		case r < 0.88:
			platform = earnings.PlatformPayPal
		case r < 0.94:
			platform = earnings.PlatformSkrill
		default:
			platform = earnings.PlatformBitcoin
		}
	}
	currency := earnings.USD
	switch {
	case rng.Bool(0.10):
		currency = earnings.GBP
	case rng.Bool(0.10):
		currency = earnings.EUR
	}
	if platform == earnings.PlatformBitcoin {
		currency = earnings.USD // wallets shown in fiat equivalent
	}

	p := earnings.Proof{
		Actor:    author,
		Platform: platform,
		Currency: currency,
		Date:     tm,
	}
	// Per-proof totals: log-normal, median ≈ $175, heavy tail.
	total := rng.LogNormal(5.17, 1.1)
	if total > 9000 {
		total = 9000
	}
	// The paper: ~60% of proofs show per-transaction detail.
	if rng.Bool(0.6) {
		remaining := total
		for remaining > 1 && len(p.Transactions) < 40 {
			amt := 8 + rng.Float64()*52
			if rng.Bool(0.06) {
				amt = 180 + rng.Float64()*60 // cam shows
			}
			if amt > remaining {
				amt = remaining
			}
			p.Transactions = append(p.Transactions, earnings.Transaction{
				Amount:   round2(amt),
				Currency: currency,
				Date:     tm.AddDate(0, 0, -rng.Intn(28)),
			})
			remaining -= amt
		}
		sum := 0.0
		for _, tx := range p.Transactions {
			sum += tx.Amount
		}
		p.Total = round2(sum)
	} else {
		p.Total = round2(total)
	}
	return p
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}

// fixupProofThreads attaches the thread ID to proofs generated while
// the thread was being built.
func (w *World) fixupProofThreads(tid forum.ThreadID, _ []forum.PostID) {
	for _, idx := range w.pendingProofs {
		w.Proofs[idx].Thread = tid
	}
	w.pendingProofs = w.pendingProofs[:0]
}

// Table 7 marginal distributions for the Currency Exchange board.
var (
	exchangeHaveDist = []struct {
		kind   string
		weight float64
	}{
		{"PayPal", 3707}, {"BTC", 2763}, {"AGC", 1498}, {"?", 839}, {"others", 259},
	}
	exchangeWantDist = []struct {
		kind   string
		weight float64
	}{
		{"BTC", 4626}, {"PayPal", 2801}, {"?", 1128}, {"AGC", 310}, {"others", 201},
	}
)

func pickExchangeKind(rng *randx.Rand, dist []struct {
	kind   string
	weight float64
}) string {
	weights := make([]float64, len(dist))
	for i, e := range dist {
		weights[i] = e.weight
	}
	return dist[rng.WeightedPick(weights)].kind
}

// genExchange populates Hackforums' Currency Exchange board: threads
// by eWhoring actors (after they started eWhoring) following the
// de-facto "[H] offered [W] wanted" heading format, plus background
// trading by everyone else.
func (w *World) genExchange(st *forumState) {
	rng := st.rng
	// Eligible: the most active eWhoring actors (the paper restricts
	// the Table 7 analysis to >50 eWhoring posts; at reduced scale the
	// threshold shrinks proportionally).
	thr := int(50 * w.Config.Scale * 4)
	if thr < 3 {
		thr = 3
	}
	var eligible []forum.ActorID
	for a, n := range st.ewCount {
		if n >= thr {
			eligible = append(eligible, a)
		}
	}
	// Map iteration order must not leak into rng-driven authorship:
	// every table derives from Config.Seed alone.
	sort.Slice(eligible, func(i, j int) bool { return eligible[i] < eligible[j] })
	nEw := w.Config.scaled(9066, 8)
	nBg := w.Config.scaled(6000, 5)
	mk := func(author forum.ActorID, after, until time.Time) {
		have := pickExchangeKind(rng, exchangeHaveDist)
		want := pickExchangeKind(rng, exchangeWantDist)
		haveTok := randx.Pick(rng, exchangeHaveTokens[have])
		wantTok := randx.Pick(rng, exchangeHaveTokens[want])
		heading := fmt.Sprintf("[H] %s [W] %s - quick trade", haveTok, wantTok)
		if until.After(datasetEnd) {
			until = datasetEnd
		}
		span := int(until.Sub(after).Hours() / 24)
		if span < 1 {
			span = 1
		}
		tm := after.AddDate(0, 0, rng.Intn(span))
		tid := w.Store.AddThread(w.HFCurrency, author, heading, "looking to trade, pm me or post here", tm)
		w.Truth[tid] = &ThreadTruth{Kind: KindExchange}
		if rng.Bool(0.5) {
			w.Store.AddReply(tid, st.actors[st.zipf.Next()], "pm sent", tm.Add(6*time.Hour), 0)
		}
	}
	if len(eligible) > 0 {
		for i := 0; i < nEw; i++ {
			a := eligible[rng.Intn(len(eligible))]
			mk(a, w.Actors[a].EwStart, w.Actors[a].LastActivity)
		}
	}
	for i := 0; i < nBg; i++ {
		a := st.actors[st.zipf.Next()]
		mk(a, w.Actors[a].Registered, w.Actors[a].LastActivity)
	}
}
