package lintx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/core", or "p_test" for external tests)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir           string
	ImportPath    string
	Name          string
	Standard      bool
	GoFiles       []string
	TestGoFiles   []string
	XTestGoFiles  []string
	Imports       []string
	TestImports   []string
	XTestImports  []string
	ImportMap     map[string]string
	Incomplete    bool
	Error         *struct{ Err string }
	ForTest       string
	DepsErrors    []*struct{ Err string }
	IgnoredGoFile []string
}

// goList runs `go list -json` with the given arguments in dir and
// decodes the JSON stream. CGO is disabled so every package resolves
// to pure-Go sources the type checker can consume.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// loader type-checks packages from source, memoized by resolved
// import path, using the dependency universe one `go list -deps`
// call described.
type loader struct {
	fset     *token.FileSet
	universe map[string]*listedPackage // resolved import path -> listing
	checked  map[string]*types.Package
	checking map[string]bool // import-cycle guard
	// fixtureRoot, when set, resolves import paths missing from the
	// universe against a testdata/src tree (fixture loads only).
	fixtureRoot string
}

// Load lists the packages matching patterns (relative to dir) and
// returns them parsed and type-checked, in-package test files
// included; external test packages ("foo_test") load as additional
// entries. Any parse or type error aborts the load: the linter only
// runs on trees the compiler would accept.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// One more list call closes the dependency universe over the
	// targets and their test imports, so every import below resolves
	// without shelling out again.
	depPatterns := make([]string, 0, len(targets))
	seen := make(map[string]bool)
	addDep := func(p string) {
		if p != "C" && p != "unsafe" && !seen[p] {
			seen[p] = true
			depPatterns = append(depPatterns, p)
		}
	}
	for _, t := range targets {
		addDep(t.ImportPath)
		for _, imp := range t.TestImports {
			addDep(imp)
		}
		for _, imp := range t.XTestImports {
			addDep(imp)
		}
	}
	sort.Strings(depPatterns)
	deps, err := goList(dir, append([]string{"-deps"}, depPatterns...)...)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:     token.NewFileSet(),
		universe: make(map[string]*listedPackage, len(deps)),
		checked:  make(map[string]*types.Package),
		checking: make(map[string]bool),
	}
	for _, d := range deps {
		ld.universe[d.ImportPath] = d
	}

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", t.ImportPath, t.Error.Err)
		}
		// The package itself, with its in-package test files merged —
		// the same unit `go test` compiles.
		files, err := ld.parseFiles(t.Dir, append(append([]string{}, t.GoFiles...), t.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		pkg, err := ld.check(t.ImportPath, t, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if len(t.XTestGoFiles) > 0 {
			xfiles, err := ld.parseFiles(t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			xpkg, err := ld.check(t.ImportPath+"_test", t, xfiles)
			if err != nil {
				return nil, err
			}
			out = append(out, xpkg)
		}
	}
	return out, nil
}

func (ld *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one target package (reporting Info) against the
// loaded universe.
func (ld *loader) check(path string, lp *listedPackage, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: &mapImporter{ld: ld, importMap: lp.ImportMap}}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: ld.fset, Files: files, Types: tpkg, Info: info}, nil
}

// importDep type-checks (and memoizes) a dependency package from
// source. Dependencies are checked without their test files and
// without Info — only their exported type structure matters to the
// targets.
func (ld *loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	lp, ok := ld.universe[path]
	if !ok && ld.fixtureRoot == "" {
		return nil, fmt.Errorf("package %s not in the go list universe", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)
	var files []*ast.File
	var err error
	if ok {
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", path, lp.Error.Err)
		}
		files, err = ld.parseFiles(lp.Dir, lp.GoFiles)
	} else {
		lp = &listedPackage{}
		files, err = ld.parseFixtureDir(path)
	}
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: &mapImporter{ld: ld, importMap: lp.ImportMap}}
	pkg, err := conf.Check(path, ld.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking dependency %s: %v", path, err)
	}
	ld.checked[path] = pkg
	return pkg, nil
}

// mapImporter resolves one importing package's import strings —
// through its go list ImportMap (std vendoring) — into type-checked
// packages from the shared loader.
type mapImporter struct {
	ld        *loader
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.ld.importDep(path)
}
