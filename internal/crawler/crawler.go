// Package crawler implements the study's custom crawler (§4.2): it
// takes the preview and pack links extracted from Threads Offering
// Packs, downloads them over HTTP with bounded concurrency, per-host
// politeness delays and retries, decompresses pack archives, and
// annotates every downloaded image with the post metadata it came from
// ("for each link, we also annotate associated metadata (e.g., the
// post identifier and author)").
package crawler

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultx"
	"repro/internal/forum"
	"repro/internal/hosting"
	"repro/internal/imagex"
	"repro/internal/pipeline"
	"repro/internal/tracex"
	"repro/internal/urlx"
)

// Outcome classifies what happened when a link was fetched.
type Outcome int

// Fetch outcomes.
const (
	// OutcomeOK: content downloaded and decoded.
	OutcomeOK Outcome = iota
	// OutcomeNotFound: the object is gone (404/410) — the link rot the
	// paper hits constantly ("many files and images had been deleted").
	OutcomeNotFound
	// OutcomeLoginRequired: a registration wall; the crawler records
	// and respects it ("we did not download packs from some sites
	// requiring registration, e.g., Dropbox or Google Drive").
	OutcomeLoginRequired
	// OutcomeSiteDown: the whole service is defunct (oron).
	OutcomeSiteDown
	// OutcomeError: transport failure or undecodable payload after
	// retries.
	OutcomeError
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeNotFound:
		return "not found"
	case OutcomeLoginRequired:
		return "login required"
	case OutcomeSiteDown:
		return "site down"
	case OutcomeError:
		return "error"
	default:
		return "unknown"
	}
}

// Task is one link to fetch, with its forum provenance.
type Task struct {
	Link   urlx.Link
	Thread forum.ThreadID
	Post   forum.PostID
	Author forum.ActorID
}

// Result is the outcome of one task.
type Result struct {
	Task    Task
	Outcome Outcome
	// Images holds the decoded payload: one image for image-sharing
	// links, every archive member for pack links.
	Images []*imagex.Image
	// IsPack reports whether the payload was a zip archive.
	IsPack bool
	Err    error
}

// Config controls crawl behaviour.
type Config struct {
	// Concurrency is the number of parallel workers (default 8).
	Concurrency int
	// PerHostDelay is the politeness delay between requests to the
	// same virtual domain (default 0 — tests and simulations need no
	// throttling, the field exists for live use).
	PerHostDelay time.Duration
	// MaxRetries is the number of re-attempts after transport errors
	// (default 2).
	MaxRetries int
	// BackoffBase is the unit of the deterministic retry backoff:
	// attempt n sleeps n*BackoffBase (default 10ms). No jitter — retry
	// schedules must be reproducible. A server Retry-After hint
	// overrides the linear schedule (see Backoff).
	BackoffBase time.Duration
	// MaxBackoff caps any single retry sleep, hinted or not (default
	// 2s) — an adversarial Retry-After must not stall a worker.
	MaxBackoff time.Duration
	// MaxBodyBytes caps a response body (default 64 MiB).
	MaxBodyBytes int64
	// BreakerThreshold is the number of consecutive retry-exhausted
	// fetches that opens a host's circuit breaker (default 4; negative
	// disables the breaker). While open, fetches to the host fail fast
	// with ErrHostOpen instead of burning the full retry schedule.
	BreakerThreshold int
	// BreakerProbeEvery is the half-open cadence: every Nth fetch that
	// arrives at an open host is let through as a probe (default 8); a
	// probe that reaches a definitive outcome closes the breaker. The
	// cadence is count-based, not clock-based, so breaker behaviour is
	// reproducible.
	BreakerProbeEvery int
	// RetryBudget caps the total retries spent per host across the
	// whole crawl (default 0 = unlimited). A budget makes wall-clock
	// under a hostile host strictly bounded, at the cost of letting
	// the interleaving decide which fetch is denied its retry — leave
	// it unlimited where bit-reproducibility of individual outcomes
	// matters.
	RetryBudget int
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 4
	}
	if c.BreakerProbeEvery <= 0 {
		c.BreakerProbeEvery = 8
	}
	return c
}

// Backoff is the deterministic retry schedule: with a server hint
// (Retry-After on 429/503) attempt n sleeps min(hint<<n, maxBackoff)
// — the same capped doubling studysvc.Client applies to the service's
// shed responses — and without one it sleeps the legacy linear
// (n+1)*base, also capped. attempt is 0-based.
func Backoff(attempt int, base, maxBackoff, retryAfter time.Duration) time.Duration {
	var d time.Duration
	if retryAfter > 0 {
		if attempt > 30 {
			attempt = 30
		}
		d = retryAfter << attempt
	} else {
		d = time.Duration(attempt+1) * base
	}
	if maxBackoff > 0 && d > maxBackoff {
		d = maxBackoff
	}
	return d
}

// StatusError is a retryable non-2xx response, carrying the server's
// Retry-After hint when it sent one.
type StatusError struct {
	StatusCode int
	RetryAfter time.Duration
	// Msg overrides the rendered message when set.
	Msg string
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	return fmt.Sprintf("crawler: unexpected status %d", e.StatusCode)
}

// RetryAfterHint returns the server's backoff request, if any.
func (e *StatusError) RetryAfterHint() time.Duration { return e.RetryAfter }

// retryAfterHinter is satisfied by any error carrying a server backoff
// hint — crawler.StatusError, reverse.StatusError, wayback.StatusError
// — without this package naming their types.
type retryAfterHinter interface{ RetryAfterHint() time.Duration }

// RetryAfterHint extracts a server backoff hint from anywhere in err's
// chain, or 0.
func RetryAfterHint(err error) time.Duration {
	var h retryAfterHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0
}

// ErrHostOpen marks a fetch short-circuited by an open per-host
// circuit breaker.
var ErrHostOpen = errors.New("crawler: host circuit open")

// Crawler downloads links through a resolver (virtual domain → live
// URL) with an injectable HTTP client.
type Crawler struct {
	cfg     Config
	client  *http.Client
	resolve func(string) (string, error)

	mu       sync.Mutex
	lastHost map[string]time.Time
	breakers map[string]*breakerState
	retries  map[string]int
}

// breakerState is one host's circuit breaker. All transitions are
// count-based (no clocks): `fails` consecutive retry-exhausted fetches
// open it; while open, every BreakerProbeEvery-th arrival is admitted
// as a half-open probe; any definitive outcome closes it.
type breakerState struct {
	fails   int
	open    bool
	skipped int
}

// New builds a crawler. client may be nil (http.DefaultClient);
// resolve may be nil (identity).
func New(cfg Config, client *http.Client, resolve func(string) (string, error)) *Crawler {
	if client == nil {
		client = http.DefaultClient
	}
	if resolve == nil {
		resolve = func(s string) (string, error) { return s, nil }
	}
	return &Crawler{
		cfg:      cfg.withDefaults(),
		client:   client,
		resolve:  resolve,
		lastHost: make(map[string]time.Time),
		breakers: make(map[string]*breakerState),
		retries:  make(map[string]int),
	}
}

// admitHost asks the host's circuit breaker whether a fetch may
// proceed. Open breakers admit every BreakerProbeEvery-th arrival as a
// half-open probe.
func (c *Crawler) admitHost(host string) bool {
	if c.cfg.BreakerThreshold < 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[host]
	if b == nil || !b.open {
		return true
	}
	b.skipped++
	return b.skipped%c.cfg.BreakerProbeEvery == 0
}

// recordHost feeds a fetch's fate back into the host's breaker.
func (c *Crawler) recordHost(host string, failed bool) {
	if c.cfg.BreakerThreshold < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[host]
	if b == nil {
		b = &breakerState{}
		c.breakers[host] = b
	}
	if !failed {
		b.fails, b.open, b.skipped = 0, false, 0
		return
	}
	b.fails++
	if b.fails >= c.cfg.BreakerThreshold {
		b.open = true
	}
}

// takeRetry spends one unit of the host's retry budget; false means
// the budget is exhausted and the fetch must settle for its last
// error.
func (c *Crawler) takeRetry(host string) bool {
	if c.cfg.RetryBudget <= 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.retries[host] >= c.cfg.RetryBudget {
		return false
	}
	c.retries[host]++
	return true
}

// Crawl fetches every task with bounded concurrency. Results are
// returned in task order. Cancel via ctx.
func (c *Crawler) Crawl(ctx context.Context, tasks []Task) []Result {
	results := make([]Result, len(tasks))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = c.fetchOne(ctx, tasks[i])
			}
		}()
	}
feed:
	for i := range tasks {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			for j := i; j < len(tasks); j++ {
				results[j] = Result{Task: tasks[j], Outcome: OutcomeError, Err: ctx.Err()}
			}
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	return results
}

// CrawlStream fetches every task with bounded concurrency, delivering
// each result on the returned channel in task order as it becomes
// available — the channel counterpart of Crawl, for pipelines that
// want downstream stages to start before the crawl finishes. stats
// may be nil. If ctx is cancelled the channel closes early with the
// remaining tasks undelivered.
func (c *Crawler) CrawlStream(ctx context.Context, stats *pipeline.Stats, tasks []Task) <-chan Result {
	return pipeline.Map(ctx, stats, "crawl §4.2", c.cfg.Concurrency, pipeline.Emit(ctx, tasks),
		func(ctx context.Context, t Task) Result { return c.fetchOne(ctx, t) })
}

// fetchOne downloads and decodes one task with retries, gated by the
// host's circuit breaker and retry budget.
func (c *Crawler) fetchOne(ctx context.Context, t Task) (res Result) {
	ctx, sp := tracex.StartSpan(ctx, "crawl fetch")
	attempts := 0
	defer func() {
		sp.SetAttr("outcome", res.Outcome.String())
		sp.SetAttr("attempts", strconv.Itoa(attempts))
		sp.End()
	}()
	res = Result{Task: t}
	if !c.admitHost(t.Link.Domain) {
		res.Outcome = OutcomeError
		res.Err = fmt.Errorf("%w: %s", ErrHostOpen, t.Link.Domain)
		return res
	}
	target, err := c.resolve(t.Link.URL)
	if err != nil {
		res.Outcome = OutcomeError
		res.Err = err
		return res
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if err := c.politeness(ctx, t.Link.Domain); err != nil {
			res.Outcome = OutcomeError
			res.Err = err
			return res
		}
		attempts++
		outcome, images, isPack, err := c.attempt(ctx, target)
		if err == nil {
			c.recordHost(t.Link.Domain, false)
			res.Outcome = outcome
			res.Images = images
			res.IsPack = isPack
			res.Err = nil
			return res
		}
		lastErr = err
		if attempt == c.cfg.MaxRetries || !c.takeRetry(t.Link.Domain) {
			break
		}
		// Back off before retrying: the server's Retry-After hint when
		// it sent one, the linear schedule otherwise — both capped.
		select {
		case <-ctx.Done():
			res.Outcome = OutcomeError
			res.Err = ctx.Err()
			return res
		case <-time.After(Backoff(attempt, c.cfg.BackoffBase, c.cfg.MaxBackoff, RetryAfterHint(err))):
		}
	}
	c.recordHost(t.Link.Domain, true)
	res.Outcome = OutcomeError
	res.Err = lastErr
	return res
}

// politeness enforces the per-host delay.
func (c *Crawler) politeness(ctx context.Context, host string) error {
	if c.cfg.PerHostDelay <= 0 {
		return nil
	}
	c.mu.Lock()
	now := time.Now()
	next := c.lastHost[host].Add(c.cfg.PerHostDelay)
	if next.Before(now) {
		next = now
	}
	c.lastHost[host] = next
	c.mu.Unlock()
	wait := time.Until(next)
	if wait <= 0 {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(wait):
		return nil
	}
}

// bodyPool recycles response-body buffers across fetches; outsized
// bodies are dropped on return instead of pinning pool memory.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBody bounds the buffer capacity the pool retains (a scale-1
// pack zip is a few hundred KiB; anything larger is an outlier).
const maxPooledBody = 4 << 20

func putBodyBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBody {
		bodyPool.Put(b)
	}
}

// attempt performs a single HTTP round trip and decode. A non-nil
// error means "retryable transport failure"; definitive outcomes
// return err == nil.
func (c *Crawler) attempt(ctx context.Context, target string) (Outcome, []*imagex.Image, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return OutcomeError, nil, false, err
	}
	req.Header.Set("User-Agent", "ewhoring-study-crawler/1.0 (research)")
	resp, err := c.client.Do(req)
	if err != nil {
		return OutcomeError, nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotFound, http.StatusGone:
		return OutcomeNotFound, nil, false, nil
	case http.StatusUnauthorized, http.StatusForbidden:
		return OutcomeLoginRequired, nil, false, nil
	case http.StatusTooManyRequests:
		// Rate-limited: retryable, honoring the host's backoff request.
		return OutcomeError, nil, false, &StatusError{
			StatusCode: resp.StatusCode,
			RetryAfter: faultx.ParseRetryAfter(resp.Header.Get("Retry-After")),
		}
	case http.StatusServiceUnavailable, http.StatusBadGateway:
		if ra := faultx.ParseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
			// A 503 with Retry-After is a host asking for patience, not
			// the substrate's permanent "service defunct" page — retry.
			return OutcomeError, nil, false, &StatusError{StatusCode: resp.StatusCode, RetryAfter: ra}
		}
		return OutcomeSiteDown, nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return OutcomeError, nil, false, &StatusError{StatusCode: resp.StatusCode}
	}
	// Bodies are read into pooled buffers: a crawl reads one body per
	// page and Decode/DecodePackZip copy every pixel out, so nothing
	// below retains the buffer once attempt returns.
	buf := bodyPool.Get().(*bytes.Buffer)
	defer putBodyBuf(buf)
	buf.Reset()
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes)); err != nil {
		return OutcomeError, nil, false, err
	}
	body := buf.Bytes()
	ct := resp.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, hosting.ContentTypeSIMG):
		im, err := imagex.Decode(body)
		if err != nil {
			return OutcomeError, nil, false, fmt.Errorf("crawler: bad image payload: %w", err)
		}
		return OutcomeOK, []*imagex.Image{im}, false, nil
	case strings.HasPrefix(ct, hosting.ContentTypeZip):
		images, err := imagex.DecodePackZip(body)
		if err != nil {
			return OutcomeOK, nil, true, fmt.Errorf("crawler: bad pack payload: %w", err)
		}
		return OutcomeOK, images, true, nil
	default:
		// HTML or other: treat as an error page without content.
		return OutcomeNotFound, nil, false, nil
	}
}

// Stats aggregates crawl results.
type Stats struct {
	Tasks          int
	ByOutcome      map[Outcome]int
	ImagesFetched  int
	PacksFetched   int
	PackImages     int
	PreviewImages  int
	UniqueImages   int
	DuplicateCount int
	// Coverage is the per-host degradation ledger (see CoverageOf).
	Coverage Coverage
}

// HostCoverage is one host's row in the degradation ledger.
type HostCoverage struct {
	Host          string `json:"host"`
	Tasks         int    `json:"tasks"`
	OK            int    `json:"ok"`
	NotFound      int    `json:"not_found,omitempty"`
	LoginRequired int    `json:"login_required,omitempty"`
	SiteDown      int    `json:"site_down,omitempty"`
	Errors        int    `json:"errors,omitempty"`
}

// Coverage is the crawl's per-host coverage/error ledger: the record
// of what a partial corpus is missing and which hosts it lost. It is
// built from outcome counts only — never from retry timing or worker
// interleaving — so a given fault schedule yields the same ledger on
// every run.
type Coverage struct {
	// Hosts is the ledger, sorted by host name.
	Hosts []HostCoverage `json:"hosts,omitempty"`
	// Errors is the total number of tasks lost to exhausted retries or
	// open breakers.
	Errors int `json:"errors"`
	// DeadHosts names the hosts where every task errored — the hosts a
	// degraded study lost entirely. Sorted.
	DeadHosts []string `json:"dead_hosts,omitempty"`
	// Degraded reports whether the corpus is partial: any task lost.
	Degraded bool `json:"degraded"`
}

// CoverageOf builds the degradation ledger from crawl results.
func CoverageOf(results []Result) Coverage {
	byHost := make(map[string]*HostCoverage)
	var cov Coverage
	for _, r := range results {
		host := r.Task.Link.Domain
		hc := byHost[host]
		if hc == nil {
			hc = &HostCoverage{Host: host}
			byHost[host] = hc
		}
		hc.Tasks++
		switch r.Outcome {
		case OutcomeOK:
			hc.OK++
		case OutcomeNotFound:
			hc.NotFound++
		case OutcomeLoginRequired:
			hc.LoginRequired++
		case OutcomeSiteDown:
			hc.SiteDown++
		default:
			hc.Errors++
			cov.Errors++
		}
	}
	for _, hc := range byHost {
		cov.Hosts = append(cov.Hosts, *hc)
		if hc.Errors == hc.Tasks && hc.Tasks > 0 {
			cov.DeadHosts = append(cov.DeadHosts, hc.Host)
		}
	}
	sort.Slice(cov.Hosts, func(i, j int) bool { return cov.Hosts[i].Host < cov.Hosts[j].Host })
	sort.Strings(cov.DeadHosts)
	cov.Degraded = cov.Errors > 0
	return cov
}

// Summarize computes crawl statistics, including deduplication by
// exact perceptual hash pair (the paper: "After removing duplicates
// ... there were 53 948 unique files").
func Summarize(results []Result) Stats {
	s := Stats{Tasks: len(results), ByOutcome: make(map[Outcome]int)}
	seen := make(map[imagex.Hash128]struct{})
	for _, r := range results {
		s.ByOutcome[r.Outcome]++
		if r.Outcome != OutcomeOK {
			continue
		}
		if r.IsPack {
			s.PacksFetched++
			s.PackImages += len(r.Images)
		} else {
			s.PreviewImages += len(r.Images)
		}
		s.ImagesFetched += len(r.Images)
		for _, im := range r.Images {
			// The fused composite hash computes both components in one
			// traversal of the raster with no allocation.
			k := imagex.Hash128Of(im)
			if _, dup := seen[k]; dup {
				s.DuplicateCount++
			} else {
				seen[k] = struct{}{}
			}
		}
	}
	s.UniqueImages = len(seen)
	s.Coverage = CoverageOf(results)
	return s
}

// ErrNoTasks is returned by helpers that require at least one task.
var ErrNoTasks = errors.New("crawler: no tasks")

// TasksFromLinks builds tasks from classified links plus uniform
// provenance, skipping unknown-kind links.
func TasksFromLinks(links []urlx.Link, thread forum.ThreadID, post forum.PostID, author forum.ActorID) []Task {
	var out []Task
	for _, l := range links {
		if l.Kind == urlx.KindUnknown {
			continue
		}
		out = append(out, Task{Link: l, Thread: thread, Post: post, Author: author})
	}
	return out
}

// OutcomeCounts renders ByOutcome in a stable order for reports.
func (s Stats) OutcomeCounts() []string {
	keys := make([]int, 0, len(s.ByOutcome))
	for k := range s.ByOutcome {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", Outcome(k), s.ByOutcome[Outcome(k)]))
	}
	return out
}
