// Package analyzers holds the project's invariant checkers: the five
// ewlint analyzers that mechanize the determinism, pooling, memo-key,
// context-hygiene and structured-logging rules the codebase previously
// enforced only by convention (see DESIGN.md §10).
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lintx"
)

// All returns every analyzer in the suite, in stable order.
func All() []*lintx.Analyzer {
	return []*lintx.Analyzer{
		Determinism,
		PoolPair,
		MemoKey,
		CtxHygiene,
		LogField,
	}
}

// ByName resolves analyzer names (comma-separable by the caller) to
// analyzers; unknown names return nil.
func ByName(name string) *lintx.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// calleeFunc resolves a call expression's callee to the *types.Func
// it invokes (package function or method), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether the call invokes the named package-level
// function of a package with the given name (matching by package name
// rather than full path keeps the analyzers testable against fixture
// packages while being exact on this module's single namespace).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgName, funcName string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false // methods don't count: hosting.Site.PutImage vs imagex.PutImage
	}
	return fn.Pkg().Name() == pkgName && fn.Name() == funcName
}

// pathSegments splits an import path, trimming the "_test" suffix an
// external test package carries.
func pathSegments(pkgPath string) []string {
	segs := strings.Split(strings.TrimSuffix(pkgPath, "_test"), "/")
	return segs
}

// buildParents maps every node under root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingBlock returns the innermost *ast.BlockStmt containing n.
func enclosingBlock(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for p := parents[n]; p != nil; p = parents[p] {
		if b, ok := p.(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// funcDecls yields every function declaration with a body in the
// pass's files.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
