package domaincls

import (
	"fmt"
	"reflect"
	"testing"
)

func testDirectory(nPorn, nOther int) (*Directory, []string) {
	dir := NewDirectory()
	var domains []string
	for i := 0; i < nPorn; i++ {
		d := fmt.Sprintf("porn%03d.example", i)
		dir.Set(d, ClassPorn)
		domains = append(domains, d)
	}
	others := []SiteClass{
		ClassSocialNetwork, ClassBlog, ClassPhotoSharing, ClassForum,
		ClassShop, ClassNews, ClassDating, ClassGames, ClassBusiness,
		ClassEntertainment,
	}
	for i := 0; i < nOther; i++ {
		d := fmt.Sprintf("site%03d.example", i)
		dir.Set(d, others[i%len(others)])
		domains = append(domains, d)
	}
	return dir, domains
}

func TestClassifyDeterministic(t *testing.T) {
	dir, domains := testDirectory(10, 10)
	for _, mk := range []func(*Directory) *Classifier{NewMcAfee, NewVirusTotal, NewOpenDNS} {
		c := mk(dir)
		for _, d := range domains {
			a := c.Classify(d)
			b := c.Classify(d)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: nondeterministic tags for %s: %v vs %v", c.Name, d, a, b)
			}
			if len(a) == 0 {
				t.Fatalf("%s: empty tags for %s", c.Name, d)
			}
		}
	}
}

func TestClassifiersDisagree(t *testing.T) {
	dir, domains := testDirectory(50, 50)
	mc, vt := NewMcAfee(dir), NewVirusTotal(dir)
	same := 0
	for _, d := range domains {
		if reflect.DeepEqual(mc.Classify(d), vt.Classify(d)) {
			same++
		}
	}
	if same > len(domains)/4 {
		t.Fatalf("classifiers agree on %d/%d domains; taxonomies should differ", same, len(domains))
	}
}

func TestPornDominatesPornDomains(t *testing.T) {
	dir, _ := testDirectory(1, 0)
	mc := NewMcAfee(dir)
	tags := mc.Classify("porn000.example")
	if tags[0] != "Pornography" && tags[0] != NoResult {
		t.Fatalf("primary tag %q", tags[0])
	}
}

func TestOpenDNSNoResultRate(t *testing.T) {
	dir, domains := testDirectory(500, 500)
	od := NewOpenDNS(dir)
	n := 0
	for _, d := range domains {
		if od.Classify(d)[0] == NoResult {
			n++
		}
	}
	rate := float64(n) / float64(len(domains))
	// Paper: ~22% of OpenDNS lookups have no result.
	if rate < 0.15 || rate > 0.30 {
		t.Fatalf("OpenDNS no_result rate %.3f, want ≈0.22", rate)
	}
}

func TestVirusTotalMultiTag(t *testing.T) {
	dir, domains := testDirectory(300, 300)
	vt := NewVirusTotal(dir)
	multi := 0
	for _, d := range domains {
		if len(vt.Classify(d)) > 1 {
			multi++
		}
	}
	if multi < len(domains)/4 {
		t.Fatalf("VirusTotal multi-tagged only %d/%d domains", multi, len(domains))
	}
}

func TestTallyShape(t *testing.T) {
	dir, domains := testDirectory(600, 400)
	for _, mk := range []func(*Directory) *Classifier{NewMcAfee, NewVirusTotal, NewOpenDNS} {
		c := mk(dir)
		rows := Tally(c, domains, 85)
		if len(rows) == 0 {
			t.Fatalf("%s: empty tally", c.Name)
		}
		// Rows sorted by descending count.
		for i := 1; i < len(rows); i++ {
			if rows[i].Domains > rows[i-1].Domains {
				t.Fatalf("%s: tally not sorted at %d", c.Name, i)
			}
		}
		// Cumulative percentages ascend and the last row crosses 85%.
		for i := 1; i < len(rows); i++ {
			if rows[i].CumPct <= rows[i-1].CumPct {
				t.Fatalf("%s: CumPct not ascending", c.Name)
			}
		}
		if rows[len(rows)-1].CumPct < 85 {
			t.Fatalf("%s: tally stopped at %.1f%%", c.Name, rows[len(rows)-1].CumPct)
		}
		// With a porn-dominated directory, an adult tag leads, as in
		// Table 6 ("The top categories are mostly porn-related").
		adult := map[string]bool{
			"Pornography": true, "adult content": true, "porn": true,
			"Nudity": true, "sex": true,
		}
		if !adult[rows[0].Tag] && rows[0].Tag != NoResult {
			t.Fatalf("%s: top tag %q not adult", c.Name, rows[0].Tag)
		}
	}
}

func TestTallyFullCutoff(t *testing.T) {
	dir, domains := testDirectory(50, 50)
	rows := Tally(NewMcAfee(dir), domains, 100)
	last := rows[len(rows)-1]
	if last.CumPct < 99.999 {
		t.Fatalf("full tally ends at %.3f%%", last.CumPct)
	}
}

func TestSiteClassString(t *testing.T) {
	if ClassPorn.String() != "porn" || ClassUnknown.String() != "unknown" ||
		SiteClass(99).String() != "unknown" {
		t.Fatal("SiteClass.String wrong")
	}
}

func TestDirectory(t *testing.T) {
	dir := NewDirectory()
	dir.Set("a.com", ClassBlog)
	if dir.Class("a.com") != ClassBlog || dir.Class("b.com") != ClassUnknown {
		t.Fatal("directory lookup wrong")
	}
	if dir.Len() != 1 {
		t.Fatal("Len wrong")
	}
}

func BenchmarkTally(b *testing.B) {
	dir, domains := testDirectory(3000, 3000)
	mc := NewMcAfee(dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Tally(mc, domains, 85)
	}
}
