// Package statspkg is the fixture owner of a Stats counter struct:
// its fields may only be mutated through its own mutex helpers.
package statspkg

import "sync"

type ServerStats struct {
	mu   sync.Mutex
	Hits int
}

// AddHit is the owning helper: in-package mutation under the mutex.
func (s *ServerStats) AddHit() {
	s.mu.Lock()
	s.Hits++
	s.mu.Unlock()
}
