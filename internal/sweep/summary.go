package sweep

import (
	"repro/internal/core"
)

// Summary carries one study's headline numbers — the figures the
// paper's abstract quotes plus the rate artefacts EXPERIMENTS.md
// compares against the paper. It is the per-cell measurement the sweep
// aggregators consume, and also the wire form studysvc serves (the
// service aliases this type), so two sides of a remote sweep always
// agree on what a study produced.
type Summary struct {
	EWhoringThreads int     `json:"ewhoring_threads"`
	Forums          int     `json:"forums"`
	TOPs            int     `json:"tops"`
	CrawlTasks      int     `json:"crawl_tasks"`
	UniqueImages    int     `json:"unique_images"`
	PhotoDNAMatches int     `json:"photodna_matches"`
	NSFVPreviews    int     `json:"nsfv_previews"`
	PacksMatched    int     `json:"packs_matched"`
	PacksTotal      int     `json:"packs_total"`
	PreviewsMatched int     `json:"previews_matched"`
	PreviewsTotal   int     `json:"previews_total"`
	MatchedDomains  int     `json:"matched_domains"`
	Proofs          int     `json:"proofs"`
	TotalUSD        float64 `json:"total_usd"`
	Profiles        int     `json:"profiles"`
	KeyActors       int     `json:"key_actors"`

	// Rate artefacts: scale-free, so they compare across worlds of
	// different sizes and against the paper's full-scale numbers.
	Precision        float64 `json:"precision"`
	Recall           float64 `json:"recall"`
	F1               float64 `json:"f1"`
	TOPsWithLinksPct float64 `json:"tops_with_links_pct"`
	NSFVPreviewRate  float64 `json:"nsfv_preview_rate"`
	PackMatchRate    float64 `json:"pack_match_rate"`
	PackSeenRate     float64 `json:"pack_seen_rate"`
	PreviewMatchRate float64 `json:"preview_match_rate"`
	PreviewSeenRate  float64 `json:"preview_seen_rate"`
	MeanProofUSD     float64 `json:"mean_proof_usd"`
	MeanActorUSD     float64 `json:"mean_actor_usd"`
	// CrawlErrorRate is the percentage of crawl tasks lost to
	// exhausted or short-circuited hosts — 0 for a healthy substrate,
	// the degradation measure under the adversarial-hosts preset.
	CrawlErrorRate float64 `json:"crawl_error_rate"`
}

// pct returns 100*num/den, 0 for an empty denominator (a degenerate
// world, not a division error).
func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Summarize extracts the headline numbers from a completed study.
func Summarize(res *core.Results) Summary {
	s := Summary{
		EWhoringThreads: len(res.EWhoringThreads),
		Forums:          len(res.Table1),
		TOPs:            len(res.Classifier.Extract.TOPs),
		CrawlTasks:      res.CrawlStats.Tasks,
		UniqueImages:    res.CrawlStats.UniqueImages,
		PhotoDNAMatches: res.PhotoDNA.Matches,
		NSFVPreviews:    len(res.NSFV.Previews),
		PacksMatched:    res.Provenance.Packs.Matched,
		PacksTotal:      res.Provenance.Packs.Total,
		PreviewsMatched: res.Provenance.Previews.Matched,
		PreviewsTotal:   res.Provenance.Previews.Total,
		MatchedDomains:  len(res.Provenance.Domains),
		Proofs:          res.Earnings.Summary.Proofs,
		TotalUSD:        res.Earnings.Summary.TotalUSD,
		Profiles:        len(res.Actors.Profiles),
		KeyActors:       len(res.Actors.Key.All),
	}
	m := res.Classifier.Metrics
	s.Precision = m.Precision()
	s.Recall = m.Recall()
	s.F1 = m.F1()
	s.TOPsWithLinksPct = pct(res.Links.ThreadsWithLinks, s.TOPs)
	s.NSFVPreviewRate = pct(len(res.NSFV.Previews), len(res.NSFV.Previews)+len(res.NSFV.SFV))
	s.PackMatchRate = pct(res.Provenance.Packs.Matched, res.Provenance.Packs.Total)
	s.PackSeenRate = pct(res.Provenance.Packs.SeenBefore, res.Provenance.Packs.Matched)
	s.PreviewMatchRate = pct(res.Provenance.Previews.Matched, res.Provenance.Previews.Total)
	s.PreviewSeenRate = pct(res.Provenance.Previews.SeenBefore, res.Provenance.Previews.Matched)
	s.MeanProofUSD = res.Earnings.Summary.MeanTransactionUSD
	s.MeanActorUSD = res.Earnings.Summary.MeanPerActorUSD
	s.CrawlErrorRate = pct(res.CrawlStats.Coverage.Errors, res.CrawlStats.Tasks)
	return s
}

// Artefact is one named scalar measurement of a study.
type Artefact struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Artefacts flattens the summary into its ordered artefact list — the
// axis the aggregators fold over. The order is fixed (not reflected)
// so aggregate tables and JSON output are stable across runs and
// builds.
func (s Summary) Artefacts() []Artefact {
	return []Artefact{
		{"ewhoring_threads", float64(s.EWhoringThreads)},
		{"forums", float64(s.Forums)},
		{"tops", float64(s.TOPs)},
		{"crawl_tasks", float64(s.CrawlTasks)},
		{"unique_images", float64(s.UniqueImages)},
		{"photodna_matches", float64(s.PhotoDNAMatches)},
		{"nsfv_previews", float64(s.NSFVPreviews)},
		{"packs_matched", float64(s.PacksMatched)},
		{"packs_total", float64(s.PacksTotal)},
		{"previews_matched", float64(s.PreviewsMatched)},
		{"previews_total", float64(s.PreviewsTotal)},
		{"matched_domains", float64(s.MatchedDomains)},
		{"proofs", float64(s.Proofs)},
		{"total_usd", s.TotalUSD},
		{"profiles", float64(s.Profiles)},
		{"key_actors", float64(s.KeyActors)},
		{"precision", s.Precision},
		{"recall", s.Recall},
		{"f1", s.F1},
		{"tops_with_links_pct", s.TOPsWithLinksPct},
		{"nsfv_preview_rate", s.NSFVPreviewRate},
		{"pack_match_rate", s.PackMatchRate},
		{"pack_seen_rate", s.PackSeenRate},
		{"preview_match_rate", s.PreviewMatchRate},
		{"preview_seen_rate", s.PreviewSeenRate},
		{"mean_proof_usd", s.MeanProofUSD},
		{"mean_actor_usd", s.MeanActorUSD},
		{"crawl_error_rate", s.CrawlErrorRate},
	}
}

// PaperValue is a reference number from Pastrana et al. (IMC 2019) for
// one scale-free artefact. Absolute counts are excluded on purpose:
// they shrink with world scale, so only rates and means are comparable
// between a sweep and the measured economy.
type PaperValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// PaperValues lists the paper's published values for every rate
// artefact the stability table compares (EXPERIMENTS.md quotes the
// same numbers).
func PaperValues() []PaperValue {
	return []PaperValue{
		{"precision", 0.92},
		{"recall", 0.93},
		{"f1", 0.92},
		{"tops_with_links_pct", 18.71},
		{"nsfv_preview_rate", 60.4},
		{"pack_match_rate", 74.0},
		{"pack_seen_rate", 55.5},
		{"preview_match_rate", 49.0},
		{"preview_seen_rate", 39.0},
		{"mean_proof_usd", 41.90},
		{"mean_actor_usd", 774.0},
	}
}
