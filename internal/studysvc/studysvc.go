// Package studysvc serves the study as an HTTP API: POST a set of
// options and get back the paper's headline numbers, per-stage engine
// metrics and the full text report. The measurement pipeline becomes a
// service the way a production measurement platform would run it —
// requests for the same world are answered from cache, identical
// requests in flight share one run, and total concurrency is bounded.
//
//	POST /v1/study        run (or fetch) a study; body: {"seed":2019,"scale":0.05,...}
//	GET  /v1/study/{id}   fetch a run by id
//	GET  /v1/stats        service counters
//
// Three mechanisms keep the service safe under heavy traffic:
//
//   - a bounded worker pool: at most Config.MaxConcurrentRuns studies
//     execute at once, the rest queue;
//   - in-flight coalescing: concurrent identical requests attach to
//     the one running study instead of starting their own;
//   - an LRU result cache keyed by canonicalized options: a study is
//     deterministic in its options (DESIGN.md §1), so a completed
//     Results never goes stale and identical requests are pure cache
//     hits.
package studysvc

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/synth"
)

// Config tunes the service.
type Config struct {
	// MaxConcurrentRuns bounds how many studies execute at once
	// (default 2); further requests queue on the pool.
	MaxConcurrentRuns int
	// CacheSize is the LRU capacity in completed runs (default 16).
	CacheSize int
	// MaxScale rejects requests for worlds larger than this (default
	// 1.0 — paper scale).
	MaxScale float64
	// MaxWorkers rejects requests asking for more per-stage workers
	// than this (default 32): worker counts size real goroutine pools,
	// so an unbounded value is a one-request denial of service.
	MaxWorkers int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentRuns <= 0 {
		c.MaxConcurrentRuns = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 1.0
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 32
	}
	return c
}

// Request is the POST /v1/study body. Zero fields take the study's
// defaults.
type Request struct {
	Seed           uint64  `json:"seed"`
	Scale          float64 `json:"scale"`
	AnnotationSize int     `json:"annotation_size"`
	Workers        int     `json:"workers"`
}

// Canonical is a fully-defaulted request: the cache key domain. Two
// requests naming the same world in different ways (omitted fields vs
// explicit defaults) canonicalize identically and share one run.
type Canonical struct {
	Seed           uint64  `json:"seed"`
	Scale          float64 `json:"scale"`
	AnnotationSize int     `json:"annotation_size"`
	Workers        int     `json:"workers"`
}

// canonicalize applies the same defaulting core.NewStudy and
// synth.Generate apply — sourced from their exported defaults, so the
// key always matches what actually runs.
func canonicalize(r Request) Canonical {
	def := core.DefaultOptions()
	c := Canonical{Seed: r.Seed, Scale: r.Scale, AnnotationSize: r.AnnotationSize, Workers: r.Workers}
	if c.Seed == 0 {
		c.Seed = def.Synth.Seed
	}
	if c.Scale <= 0 {
		c.Scale = def.Synth.Scale
	}
	if c.AnnotationSize <= 0 {
		c.AnnotationSize = def.AnnotationSize
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	return c
}

// key renders the canonical options as the cache key.
func (c Canonical) key() string {
	return "seed=" + strconv.FormatUint(c.Seed, 10) +
		"|scale=" + strconv.FormatFloat(c.Scale, 'g', -1, 64) +
		"|annotation=" + strconv.Itoa(c.AnnotationSize) +
		"|workers=" + strconv.Itoa(c.Workers)
}

// coreOptions expands the canonical options for core.NewStudy.
func (c Canonical) coreOptions() core.Options {
	return core.Options{
		Synth:          synth.Config{Seed: c.Seed, Scale: c.Scale},
		AnnotationSize: c.AnnotationSize,
		Workers:        c.Workers,
	}
}

// Summary carries the study's headline numbers — the figures the
// paper's abstract quotes, not the full tables (those are in Report).
type Summary struct {
	EWhoringThreads int     `json:"ewhoring_threads"`
	Forums          int     `json:"forums"`
	TOPs            int     `json:"tops"`
	CrawlTasks      int     `json:"crawl_tasks"`
	UniqueImages    int     `json:"unique_images"`
	PhotoDNAMatches int     `json:"photodna_matches"`
	NSFVPreviews    int     `json:"nsfv_previews"`
	PacksMatched    int     `json:"packs_matched"`
	PacksTotal      int     `json:"packs_total"`
	PreviewsMatched int     `json:"previews_matched"`
	PreviewsTotal   int     `json:"previews_total"`
	MatchedDomains  int     `json:"matched_domains"`
	Proofs          int     `json:"proofs"`
	TotalUSD        float64 `json:"total_usd"`
	Profiles        int     `json:"profiles"`
	KeyActors       int     `json:"key_actors"`
}

func summarize(res *core.Results) Summary {
	return Summary{
		EWhoringThreads: len(res.EWhoringThreads),
		Forums:          len(res.Table1),
		TOPs:            len(res.Classifier.Extract.TOPs),
		CrawlTasks:      res.CrawlStats.Tasks,
		UniqueImages:    res.CrawlStats.UniqueImages,
		PhotoDNAMatches: res.PhotoDNA.Matches,
		NSFVPreviews:    len(res.NSFV.Previews),
		PacksMatched:    res.Provenance.Packs.Matched,
		PacksTotal:      res.Provenance.Packs.Total,
		PreviewsMatched: res.Provenance.Previews.Matched,
		PreviewsTotal:   res.Provenance.Previews.Total,
		MatchedDomains:  len(res.Provenance.Domains),
		Proofs:          res.Earnings.Summary.Proofs,
		TotalUSD:        res.Earnings.Summary.TotalUSD,
		Profiles:        len(res.Actors.Profiles),
		KeyActors:       len(res.Actors.Key.All),
	}
}

// Run statuses.
const (
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Envelope is the wire form of one study run.
type Envelope struct {
	ID      string    `json:"id"`
	Status  string    `json:"status"`
	Cached  bool      `json:"cached"`
	Options Canonical `json:"options"`
	Error   string    `json:"error,omitempty"`
	// ElapsedMS is the study's execution time (not the request's: a
	// cached response keeps the original run's).
	ElapsedMS int64                    `json:"elapsed_ms,omitempty"`
	Summary   *Summary                 `json:"summary,omitempty"`
	Stages    []pipeline.StageSnapshot `json:"stages,omitempty"`
	Report    string                   `json:"report,omitempty"`
}

// run is one study execution and its lifecycle.
type run struct {
	id   string
	key  string
	opts Canonical
	done chan struct{} // closed when the run finishes

	// Written once before done closes, read-only after.
	status  string
	errMsg  string
	elapsed time.Duration
	summary *Summary
	stages  []pipeline.StageSnapshot
	report  string
}

func (r *run) envelope(cached bool, full bool) Envelope {
	select {
	case <-r.done:
		// The closed channel orders the executor's writes before our
		// reads below.
	default:
		// Still running: only the immutable fields are safe to read.
		return Envelope{ID: r.id, Status: StatusRunning, Cached: cached, Options: r.opts}
	}
	env := Envelope{
		ID:      r.id,
		Status:  r.status,
		Cached:  cached,
		Options: r.opts,
		Error:   r.errMsg,
	}
	if r.status == StatusDone {
		env.ElapsedMS = r.elapsed.Milliseconds()
		env.Summary = r.summary
		env.Stages = r.stages
		if full {
			env.Report = r.report
		}
	}
	return env
}

// Stats are the service counters served at /v1/stats.
type Stats struct {
	RunsStarted   int64 `json:"runs_started"`
	RunsCompleted int64 `json:"runs_completed"`
	RunsFailed    int64 `json:"runs_failed"`
	CacheHits     int64 `json:"cache_hits"`
	Coalesced     int64 `json:"coalesced"`
	Evictions     int64 `json:"evictions"`
	InFlight      int   `json:"in_flight"`
	CachedResults int   `json:"cached_results"`
}

// Service runs studies behind a cache, an in-flight table and a
// bounded pool. Create with New; mount via Handler.
type Service struct {
	cfg Config
	sem chan struct{} // bounded worker pool

	mu       sync.Mutex
	stats    Stats
	inflight map[string]*run
	byID     map[string]*run
	order    *list.List               // LRU: front = most recent
	cache    map[string]*list.Element // key → element whose Value is *run
	failed   []string                 // failed run ids, oldest first (bounded)
	nextID   int
}

// New builds a service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxConcurrentRuns),
		inflight: make(map[string]*run),
		byID:     make(map[string]*run),
		order:    list.New(),
		cache:    make(map[string]*list.Element),
	}
}

// getOrStart returns the run for the canonical options: a cached
// result, the in-flight run to coalesce onto, or a freshly started
// one. cached reports a cache hit.
func (s *Service) getOrStart(c Canonical) (r *run, cached bool) {
	key := c.key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.cache[key]; ok {
		s.order.MoveToFront(el)
		s.stats.CacheHits++
		return el.Value.(*run), true
	}
	if r, ok := s.inflight[key]; ok {
		s.stats.Coalesced++
		return r, false
	}
	s.nextID++
	r = &run{
		id:     "s-" + strconv.Itoa(s.nextID),
		key:    key,
		opts:   c,
		done:   make(chan struct{}),
		status: StatusRunning,
	}
	s.inflight[key] = r
	s.byID[r.id] = r
	s.stats.RunsStarted++
	go s.execute(r)
	return r, false
}

// execute runs one study under the pool bound and publishes the
// outcome.
func (s *Service) execute(r *run) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	start := time.Now()
	study := core.NewStudy(r.opts.coreOptions())
	res, err := study.Run(context.Background())
	elapsed := time.Since(start)

	if err == nil {
		sum := summarize(res)
		r.summary = &sum
		r.stages = study.PipelineStats()
		r.report = report.Full(res)
		r.elapsed = elapsed
		r.status = StatusDone
	} else {
		r.errMsg = err.Error()
		r.status = StatusFailed
	}

	// Publish the outcome before the bookkeeping: once the run is
	// reachable through the cache it must already read as finished.
	// Requests landing between the close and the cache insert still
	// find the run in inflight and coalesce onto the closed channel.
	close(r.done)

	s.mu.Lock()
	delete(s.inflight, r.key)
	if err == nil {
		s.stats.RunsCompleted++
		s.cache[r.key] = s.order.PushFront(r)
		for s.order.Len() > s.cfg.CacheSize {
			el := s.order.Back()
			victim := el.Value.(*run)
			s.order.Remove(el)
			delete(s.cache, victim.key)
			delete(s.byID, victim.id)
			s.stats.Evictions++
		}
	} else {
		s.stats.RunsFailed++
		// Failed runs stay addressable for a while so a waiting GET can
		// read the error, but never enter the cache: identical options
		// retry. Bound the bookkeeping.
		s.failed = append(s.failed, r.id)
		for len(s.failed) > 32 {
			delete(s.byID, s.failed[0])
			s.failed = s.failed[1:]
		}
	}
	s.mu.Unlock()
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.InFlight = len(s.inflight)
	st.CachedResults = len(s.cache)
	return st
}

// Handler mounts the API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/study", s.handleRun)
	mux.HandleFunc("GET /v1/study/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func (s *Service) handleRun(w http.ResponseWriter, req *http.Request) {
	var in Request
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	c := canonicalize(in)
	if c.Scale > s.cfg.MaxScale {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("scale %g exceeds the service limit %g", c.Scale, s.cfg.MaxScale))
		return
	}
	if c.Workers > s.cfg.MaxWorkers {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("workers %d exceeds the service limit %d", c.Workers, s.cfg.MaxWorkers))
		return
	}

	r, cached := s.getOrStart(c)
	if req.URL.Query().Get("wait") == "false" {
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, r.envelope(cached, false))
		return
	}
	select {
	case <-r.done:
	case <-req.Context().Done():
		// Client gone; the run continues for future requests.
		return
	}
	writeJSON(w, r.envelope(cached, wantReport(req)))
}

func (s *Service) handleGet(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	s.mu.Lock()
	r, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such study run (completed runs are evicted LRU)")
		return
	}
	if req.URL.Query().Get("wait") == "true" {
		select {
		case <-r.done:
		case <-req.Context().Done():
			return
		}
	}
	writeJSON(w, r.envelope(false, wantReport(req)))
}

func (s *Service) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, s.Stats())
}

// wantReport reports whether the response should carry the full text
// report (default yes; report=false trims it).
func wantReport(req *http.Request) bool {
	return req.URL.Query().Get("report") != "false"
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
