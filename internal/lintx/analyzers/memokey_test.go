package analyzers

import (
	"testing"

	"repro/internal/lintx/lintest"
)

// The fixture wires keys as func literals, method expressions and
// local closures; knob reads are found through in-package call chains
// (poisonedKey -> worldKey), while the same read outside any key
// closure (sizes) stays clean.
func TestMemoKey(t *testing.T) {
	lintest.Run(t, "testdata", MemoKey, "keys")
}
