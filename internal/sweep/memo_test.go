package sweep

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/artefact"
	"repro/internal/core"
)

// TestArtefactMemoSweep pins the artefact-prefix reuse acceptance
// criteria: a sweep sharing a memo store aggregates DeepEqual to the
// same sweep without one, cells that differ only in crawl concurrency
// share every node, and re-running an annotation-only sweep against
// the warm store performs zero crawls (zero node computations at
// all).
func TestArtefactMemoSweep(t *testing.T) {
	cells := Grid{
		Seeds:              []uint64{2019},
		Scales:             []float64{0.01},
		Annotations:        []int{150, 200},
		CrawlConcurrencies: []int{2, 4},
	}.Cells()
	ctx := context.Background()

	plain := Run(ctx, "memo-pair", cells, Local{}, Options{Parallelism: 2})
	memo := artefact.NewStore(0)
	backend := Local{Worlds: NewWorldCache(0), Memo: memo}
	cold := Run(ctx, "memo-pair", cells, backend, Options{Parallelism: 2})

	if len(plain.Errors) != 0 || len(cold.Errors) != 0 {
		t.Fatalf("unexpected errors: %v / %v", plain.Errors, cold.Errors)
	}
	if !reflect.DeepEqual(plain.Aggregate, cold.Aggregate) {
		t.Fatalf("memoized sweep aggregate differs from plain:\n%+v\nvs\n%+v",
			cold.Aggregate, plain.Aggregate)
	}
	for i := range plain.Cells {
		if !reflect.DeepEqual(plain.Cells[i].Summary, cold.Cells[i].Summary) {
			t.Fatalf("cell %d summary differs under the artefact memo", i)
		}
	}

	// 4 cells span 2 semantic configs (the annotations); the crawl
	// concurrency axis shares everything. Each study-keyed node
	// computes once per annotation; select is world-keyed and
	// computes once in total.
	if n := memo.ComputeCount(core.ArtefactCrawl); n != 2 {
		t.Errorf("crawl computed %d times for 4 cells over 2 annotations, want 2", n)
	}
	if n := memo.ComputeCount(core.ArtefactSelect); n != 1 {
		t.Errorf("select computed %d times, want 1 (world-keyed)", n)
	}

	// Warm re-run: the annotation-only sweep against the primed store
	// must perform zero crawls — zero computations of any node — and
	// still aggregate DeepEqual.
	before := memo.TotalComputes()
	warm := Run(ctx, "memo-pair", cells, backend, Options{Parallelism: 2})
	if len(warm.Errors) != 0 {
		t.Fatalf("warm sweep errors: %v", warm.Errors)
	}
	if !reflect.DeepEqual(cold.Aggregate, warm.Aggregate) {
		t.Fatal("warm sweep aggregate differs from cold")
	}
	if after := memo.TotalComputes(); after != before {
		t.Errorf("warm sweep computed %d extra nodes, want 0", after-before)
	}
	if n := memo.ComputeCount(core.ArtefactCrawl); n != 2 {
		t.Errorf("warm sweep crawled: crawl count %d, want 2", n)
	}
}
