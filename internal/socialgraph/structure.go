package socialgraph

import (
	"sort"

	"repro/internal/forum"
)

// Structural metrics beyond centrality: degree distributions and
// connected components, used to characterise the interaction network
// (the paper's network has a giant component anchored on the popular
// pack sharers and a fringe of one-off posters).

// Degree holds one actor's in/out interaction degrees and strengths.
type Degree struct {
	// In and Out are distinct-counterparty counts.
	In, Out int
	// InW and OutW are response-weighted.
	InW, OutW float64
}

// Degrees computes per-actor degrees.
func (g *Graph) Degrees() map[forum.ActorID]Degree {
	out := make(map[forum.ActorID]Degree, len(g.actors))
	for i, m := range g.out {
		d := out[g.actors[i]]
		d.Out += len(m)
		for j, w := range m {
			d.OutW += w
			dj := out[g.actors[j]]
			dj.In++
			dj.InW += w
			out[g.actors[j]] = dj
		}
		out[g.actors[i]] = d
	}
	// Ensure isolated nodes appear.
	for _, a := range g.actors {
		if _, ok := out[a]; !ok {
			out[a] = Degree{}
		}
	}
	return out
}

// Components returns the weakly connected components, largest first.
// Each component is a sorted list of actor IDs.
func (g *Graph) Components() [][]forum.ActorID {
	n := len(g.actors)
	if n == 0 {
		return nil
	}
	// Undirected adjacency.
	adj := make([][]int, n)
	for i, m := range g.out {
		for j := range m {
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
	}
	seen := make([]bool, n)
	var comps [][]forum.ActorID
	stack := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		stack = append(stack[:0], start)
		seen[start] = true
		var comp []forum.ActorID
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, g.actors[v])
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// GiantComponentFraction returns the share of actors in the largest
// component.
func (g *Graph) GiantComponentFraction() float64 {
	comps := g.Components()
	if len(comps) == 0 {
		return 0
	}
	return float64(len(comps[0])) / float64(len(g.actors))
}
