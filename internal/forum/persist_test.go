package forum

import (
	"bytes"
	"strings"
	"testing"
)

func buildForPersist(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	hf := s.AddForum("Hackforums")
	og := s.AddForum("OGUsers")
	ew := s.AddBoard(hf, "eWhoring", "Money")
	gen := s.AddBoard(og, "General", "Common")
	alice := s.AddActor(hf, "alice", day(0))
	bob := s.AddActor(og, "bob", day(1))
	t1 := s.AddThread(ew, alice, "[WTS] unsaturated pack", "selling, links inside", day(2))
	s.AddReply(t1, bob, "thanks for the share!", day(3), s.FirstPost(t1).ID)
	t2 := s.AddThread(gen, bob, "ewhoring question?", "how do i start", day(4))
	s.AddReply(t2, alice, "read the guide", day(5), 0)
	return s
}

func TestExportImportRoundtrip(t *testing.T) {
	s := buildForPersist(t)
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumForums() != s.NumForums() || back.NumBoards() != s.NumBoards() ||
		back.NumActors() != s.NumActors() || back.NumThreads() != s.NumThreads() ||
		back.NumPosts() != s.NumPosts() {
		t.Fatalf("counts differ after roundtrip")
	}
	// Content equality.
	for _, tid := range s.AllThreads() {
		orig := s.Thread(tid)
		got := back.Thread(tid)
		if orig.Heading != got.Heading || orig.Board != got.Board ||
			orig.Author != got.Author || !orig.Created.Equal(got.Created) {
			t.Fatalf("thread %d differs: %+v vs %+v", tid, orig, got)
		}
		op := s.PostsInThread(tid)
		gp := back.PostsInThread(tid)
		if len(op) != len(gp) {
			t.Fatalf("thread %d post count differs", tid)
		}
		for i := range op {
			if op[i].Body != gp[i].Body || op[i].Quotes != gp[i].Quotes ||
				op[i].Author != gp[i].Author || !op[i].Created.Equal(gp[i].Created) {
				t.Fatalf("post differs: %+v vs %+v", op[i], gp[i])
			}
		}
	}
	// Indexes work on the imported store.
	if got := back.SearchHeadings("ewhor"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("SearchHeadings on import = %v", got)
	}
	if _, ok := back.ForumByName("OGUsers"); !ok {
		t.Fatal("forum name index lost")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"type":"mystery"}`,
		`{"type":"board","forum":99,"name":"x"}`,
		`{"type":"actor","forum":1,"name":"x"}`, // no registration
		`not json at all`,
		`{"type":"post","thread":5,"author":1,"created":"2015-01-01T00:00:00Z"}`,
		`{"type":"thread","board":7,"author":1,"heading":"x","created":"2015-01-01T00:00:00Z"}`,
	}
	for i, c := range cases {
		if _, err := Import(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestImportRejectsPostlessThread(t *testing.T) {
	input := `{"type":"forum","name":"HF"}
{"type":"board","forum":1,"name":"b","category":"c"}
{"type":"actor","forum":1,"name":"a","registered":"2015-01-01T00:00:00Z"}
{"type":"thread","board":1,"author":1,"heading":"h","created":"2015-01-02T00:00:00Z"}
`
	if _, err := Import(strings.NewReader(input)); err == nil {
		t.Fatal("thread without posts accepted")
	}
}

func TestExportDeterministic(t *testing.T) {
	s := buildForPersist(t)
	var a, b bytes.Buffer
	if err := s.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Export not deterministic")
	}
}

func BenchmarkExport(b *testing.B) {
	s := NewStore()
	hf := s.AddForum("HF")
	bd := s.AddBoard(hf, "b", "c")
	ac := s.AddActor(hf, "a", day(0))
	for i := 0; i < 1000; i++ {
		tid := s.AddThread(bd, ac, "thread heading", "body text", day(i%100))
		s.AddReply(tid, ac, "reply body", day(i%100+1), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := s.Export(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
