// Fixture: a non-study-path internal package. Everything the
// determinism analyzer bans is fine here — the rule is scoped to the
// packages whose outputs land in study results.
package other

import (
	"math/rand"
	"time"
)

func ok(m map[string]float64) (float64, int64) {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum, time.Now().UnixNano() + int64(rand.Int())
}
