package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lintx"
)

// PoolPair mechanizes the imagex raster-pool contract (DESIGN.md §7):
// every imagex.GetImage must be matched by an imagex.PutImage on all
// exit paths of the acquiring function — a deferred Put, or a direct
// Put in the acquisition's own block with no return between them —
// and the pooled raster must neither be used after its Put nor escape
// the function (via return value, struct/map/slice store, composite
// literal or channel send). A missed Put silently degrades the
// zero-alloc hot path; an escaped or reused raster aliases a buffer
// the pool may hand to someone else.
//
// Ownership transfer is deliberately not modeled: a function that
// wants to hand a pooled raster to its caller must instead accept a
// destination the caller acquired (see ocr.binariseInto).
var PoolPair = &lintx.Analyzer{
	Name: "poolpair",
	Doc:  "every imagex.GetImage must be released by PutImage on all exit paths, with no use-after-put and no escape",
	Run:  runPoolPair,
}

func runPoolPair(pass *lintx.Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		checkPoolPairs(pass, fd)
	}
	return nil
}

// acquisition is one `v := imagex.GetImage(...)`.
type acquisition struct {
	obj    types.Object
	assign *ast.AssignStmt
	block  *ast.BlockStmt // block whose statement list contains the assign
}

func checkPoolPairs(pass *lintx.Pass, fd *ast.FuncDecl) {
	// Collect GetImage calls and the simple assignments consuming them.
	var acqs []acquisition
	parents := buildParents(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPkgFunc(pass.Info, call, "imagex", "GetImage") {
			return true
		}
		as, ok := parents[call].(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Rhs[0] != ast.Expr(call) {
			pass.Reportf(call.Pos(), "imagex.GetImage result must be assigned to a variable so its PutImage pairing is checkable")
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			pass.Reportf(call.Pos(), "imagex.GetImage result must be assigned to a plain variable, not a field or element")
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		blk, _ := parents[as].(*ast.BlockStmt)
		acqs = append(acqs, acquisition{obj: obj, assign: as, block: blk})
		return true
	})

	for _, acq := range acqs {
		checkAcquisition(pass, fd, parents, acq)
	}
}

func checkAcquisition(pass *lintx.Pass, fd *ast.FuncDecl, parents map[ast.Node]ast.Node, acq acquisition) {
	name := acq.obj.Name()
	var (
		deferredPut bool
		directPuts  []*ast.CallExpr
	)
	// Locate every PutImage(v), noting whether it is deferred.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPkgFunc(pass.Info, call, "imagex", "PutImage") || len(call.Args) != 1 {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || pass.Info.Uses[arg] != acq.obj {
			return true
		}
		if _, ok := parents[call].(*ast.DeferStmt); ok {
			if call.Pos() > acq.assign.Pos() {
				deferredPut = true
			}
		} else {
			directPuts = append(directPuts, call)
		}
		return true
	})

	checkEscapes(pass, fd, acq, name)

	if deferredPut {
		return // a defer covers every exit path
	}
	if len(directPuts) == 0 {
		pass.Reportf(acq.assign.Pos(), "pooled image %q is never released: pair imagex.GetImage with defer imagex.PutImage", name)
		return
	}
	put := directPuts[0]
	// The direct Put must post-dominate the acquisition; the
	// approximation is: same statement block, no return in between.
	if stmt := enclosingStmt(parents, put); stmt == nil || acq.block == nil ||
		enclosingBlock(parents, stmt) != acq.block {
		pass.Reportf(put.Pos(), "imagex.PutImage(%s) does not post-dominate its GetImage: release in the acquisition's own block or use defer", name)
	}
	// Early returns between Get and Put leak the buffer on that path.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() > acq.assign.End() && r.End() < put.Pos() {
			pass.Reportf(r.Pos(), "return leaks pooled image %q: PutImage at line %d does not cover this path (use defer)",
				name, pass.Fset.Position(put.Pos()).Line)
		}
		return true
	})
	// No touching the raster once it is back in the pool.
	lastPut := directPuts[len(directPuts)-1]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != acq.obj || id.Pos() <= lastPut.End() {
			return true
		}
		pass.Reportf(id.Pos(), "use of pooled image %q after imagex.PutImage returned its buffer to the pool", name)
		return true
	})
}

// enclosingStmt walks up from a call to the statement containing it.
func enclosingStmt(parents map[ast.Node]ast.Node, n ast.Node) ast.Stmt {
	for p := ast.Node(n); p != nil; p = parents[p] {
		if s, ok := p.(ast.Stmt); ok {
			return s
		}
	}
	return nil
}

// checkEscapes reports any way the pooled raster outlives the
// function: returns, stores into fields/elements, composite literals,
// channel sends.
func checkEscapes(pass *lintx.Pass, fd *ast.FuncDecl, acq acquisition, name string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if leaksValue(pass, res, acq.obj) {
					pass.Reportf(n.Pos(), "pooled image %q escapes via return: the acquirer must release it (accept a caller-owned destination instead)", name)
				}
			}
		case *ast.AssignStmt:
			if n == acq.assign || n.Tok == token.DEFINE {
				return true
			}
			for i, rhs := range n.Rhs {
				if !leaksValue(pass, rhs, acq.obj) {
					continue
				}
				if i < len(n.Lhs) {
					if _, isIdent := ast.Unparen(n.Lhs[i]).(*ast.Ident); isIdent {
						continue // local alias: tracked conservatively as a use
					}
				}
				pass.Reportf(n.Pos(), "pooled image %q escapes via store into a field or element", name)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if leaksValue(pass, elt, acq.obj) {
					pass.Reportf(n.Pos(), "pooled image %q escapes via composite literal", name)
				}
			}
		case *ast.SendStmt:
			if leaksValue(pass, n.Value, acq.obj) {
				pass.Reportf(n.Pos(), "pooled image %q escapes via channel send", name)
			}
		}
		return true
	})
}

// leaksValue reports whether evaluating e yields the pooled image or a
// view that aliases its buffer (the image pointer, its address, its
// Pix slice, a re-slice of Pix, or a composite carrying any of those).
// Value-extracting reads — im.W, im.Pix[0], len(im.Pix) — copy scalars
// out and do not leak.
func leaksValue(pass *lintx.Pass, e ast.Expr, obj types.Object) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.Info.Uses[e] == obj
	case *ast.SelectorExpr:
		// im.Pix ([]byte) aliases the buffer; im.W (int) is a copy.
		return leaksValue(pass, e.X, obj) && isRefType(pass.TypeOf(e))
	case *ast.SliceExpr:
		return leaksValue(pass, e.X, obj)
	case *ast.UnaryExpr:
		return e.Op == token.AND && leaksValue(pass, e.X, obj)
	case *ast.StarExpr:
		return leaksValue(pass, e.X, obj)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if leaksValue(pass, elt, obj) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return leaksValue(pass, e.Value, obj)
	}
	return false
}

// isRefType reports whether t can carry a reference to the pooled
// buffer (pointer, slice, map, channel or interface).
func isRefType(t types.Type) bool {
	if t == nil {
		return true // be conservative when the checker has no type
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}
