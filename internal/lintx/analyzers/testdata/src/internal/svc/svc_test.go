package svc

import (
	"context"
	"testing"
)

// Tests are exempt from the context rule: a test IS a root scope.
func TestBackgroundAllowed(t *testing.T) {
	if context.Background() == nil {
		t.Fatal("impossible")
	}
}
