// Package studysvc serves the study as an HTTP API: POST a set of
// options and get back the paper's headline numbers, per-stage engine
// metrics and the full text report. The measurement pipeline becomes a
// service the way a production measurement platform would run it —
// requests for the same world are answered from cache, identical
// requests in flight share one run, and total concurrency is bounded.
//
//	POST /v1/study        run (or fetch) a study; body: {"seed":2019,"scale":0.05,...}
//	GET  /v1/study        list cached and in-flight runs
//	GET  /v1/study/{id}   fetch a run by id
//	POST /v1/sweep        run a scenario sweep server-side (sweepsvc.go)
//	GET  /v1/sweep/{id}   fetch a sweep by id
//	GET  /v1/stats        service counters
//	GET  /v1/trace        recent trace ids (tracehttp.go)
//	GET  /v1/trace/{id}   one trace (JSON; ?format=perfetto for Chrome trace-event)
//
// Three mechanisms keep the service safe under heavy traffic:
//
//   - a bounded worker pool: at most Config.MaxConcurrentRuns studies
//     execute at once, the rest queue;
//   - in-flight coalescing: concurrent identical requests attach to
//     the one running study instead of starting their own;
//   - an LRU result cache keyed by canonicalized options: a study is
//     deterministic in its options (DESIGN.md §1), so a completed
//     Results never goes stale and identical requests are pure cache
//     hits.
package studysvc

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/artefact"
	"repro/internal/core"
	"repro/internal/faultx"
	"repro/internal/logx"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/synth"
	"repro/internal/tracex"
)

// Config tunes the service.
type Config struct {
	// MaxConcurrentRuns bounds how many studies execute at once
	// (default 2); further requests queue on the pool.
	MaxConcurrentRuns int
	// CacheSize is the LRU capacity in completed runs (default 16).
	CacheSize int
	// MaxScale rejects requests for worlds larger than this (default
	// 1.0 — paper scale).
	MaxScale float64
	// MaxWorkers rejects requests asking for more per-stage workers
	// (or crawler workers) than this (default 32): worker counts size
	// real goroutine pools, so an unbounded value is a one-request
	// denial of service.
	MaxWorkers int
	// MaxSweepCells rejects sweep requests with more cells than this
	// (default 64): each cell is a full study, so a sweep is the
	// service's most expensive request by far.
	MaxSweepCells int
	// WorldCacheSize bounds how many generated worlds stay resident
	// for reuse across runs with the same canonical synth config
	// (default 2; negative disables sharing). Worlds are the largest
	// object the service holds, so the bound trades regeneration time
	// against steady-state memory.
	WorldCacheSize int
	// BaseContext, when set, is the root context of every study and
	// sweep the service executes. Runs are deliberately detached from
	// the requesting HTTP context — coalesced requests share one run,
	// and a cached result outlives every requester — so the natural
	// scope is the server's lifetime: pass the context that is
	// cancelled at shutdown and in-flight studies stop with it. Nil
	// defaults to an un-cancellable background context.
	BaseContext context.Context
	// MemoSize bounds the shared artefact memo store in entries
	// (default 33 ≈ three worlds' node sets; negative disables
	// sharing). Every run — full or filtered — evaluates through this
	// store, so two clients asking for different tables of the same
	// world run the shared prefix of the artefact graph once, and
	// runs differing only in worker knobs recompute nothing. Entries
	// hold real artefact values — the crawl node's value is the whole
	// downloaded corpus — so this bound, like WorldCacheSize, trades
	// recomputation against steady-state memory.
	MemoSize int
	// MaxQueueDepth bounds how many fresh-run HTTP requests may wait
	// for a pool slot at once (default 2×MaxConcurrentRuns; negative
	// disables queueing — a saturated pool sheds immediately). Beyond
	// the bound requests are shed with 429 instead of queueing, so
	// overload degrades into fast rejections rather than a growing
	// backlog of goroutines.
	MaxQueueDepth int
	// MaxQueueWait bounds how long an admitted waiter holds on for a
	// pool slot before being shed (default 2s) — the deadline that
	// keeps queued requests from outliving their caller's patience.
	MaxQueueWait time.Duration
	// RetryAfter is the backoff hint attached to 429 responses as the
	// Retry-After header (default 1s, rounded up to whole seconds on
	// the wire).
	RetryAfter time.Duration
	// Logger receives the service's structured log stream (requests,
	// runs, sheds; nil = silent). Request-scoped children of it travel
	// in the request context into core and the artefact store.
	Logger *logx.Logger
	// Tracer records request/run/node/crawl spans into a bounded ring
	// served at GET /v1/trace/{id} (nil = tracing off, at zero cost on
	// the study hot path). Incoming traceparent headers join the
	// caller's trace; responses echo the adopted trace id back.
	Tracer *tracex.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentRuns <= 0 {
		c.MaxConcurrentRuns = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 1.0
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 32
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = 64
	}
	if c.WorldCacheSize == 0 {
		c.WorldCacheSize = 2
	}
	if c.MemoSize == 0 {
		c.MemoSize = 33
	}
	if c.MaxQueueDepth == 0 {
		c.MaxQueueDepth = 2 * c.MaxConcurrentRuns
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BaseContext == nil {
		// The one place a detached context is the contract: a service
		// whose caller did not scope it runs studies for the process
		// lifetime.
		//lint:ignore ctxhygiene service-lifetime root for callers that set no Config.BaseContext; runs outlive their requesters by design
		c.BaseContext = context.Background()
	}
	return c
}

// Request is the POST /v1/study body. Zero fields take the study's
// defaults.
type Request struct {
	Seed             uint64  `json:"seed"`
	Scale            float64 `json:"scale"`
	AnnotationSize   int     `json:"annotation_size"`
	Workers          int     `json:"workers"`
	CrawlConcurrency int     `json:"crawl_concurrency"`
	// Artefacts, when non-empty, restricts the run to the named
	// artefacts (section names like "table5"/"figure2" or artefact
	// names like "provenance"/"actors"): only their subgraph
	// executes, and the response carries a partial report and no
	// summary. Empty means the full study.
	Artefacts []string `json:"artefacts,omitempty"`
	// Faults is a faultx fault-injection profile applied to the
	// study's crawl seam (see faultx.ParseProfile). "" or "off" means
	// none. An unparseable profile is a 400.
	Faults string `json:"faults,omitempty"`
}

// Canonical is a fully-defaulted request: the cache key domain. Two
// requests naming the same world in different ways (omitted fields vs
// explicit defaults) canonicalize identically and share one run.
type Canonical struct {
	Seed             uint64   `json:"seed"`
	Scale            float64  `json:"scale"`
	AnnotationSize   int      `json:"annotation_size"`
	Workers          int      `json:"workers"`
	CrawlConcurrency int      `json:"crawl_concurrency"`
	Artefacts        []string `json:"artefacts,omitempty"`
	Faults           string   `json:"faults,omitempty"`
}

// canonicalize applies the same defaulting core.NewStudy and
// synth.Generate apply — sourced from their exported defaults, so the
// key always matches what actually runs. Artefact names are
// normalized (lowercased, trimmed, sorted, deduplicated) and
// validated; an unknown name is the error a handler maps to 400.
func canonicalize(r Request) (Canonical, error) {
	def := core.DefaultOptions()
	c := Canonical{
		Seed: r.Seed, Scale: r.Scale, AnnotationSize: r.AnnotationSize,
		Workers: r.Workers, CrawlConcurrency: r.CrawlConcurrency,
	}
	if c.Seed == 0 {
		c.Seed = def.Synth.Seed
	}
	if c.Scale <= 0 {
		c.Scale = def.Synth.Scale
	}
	if c.AnnotationSize <= 0 {
		c.AnnotationSize = def.AnnotationSize
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	if c.CrawlConcurrency <= 0 {
		c.CrawlConcurrency = def.CrawlConcurrency
	}
	c.Faults = strings.TrimSpace(r.Faults)
	if plan, err := faultx.ParseProfile(c.Faults); err != nil {
		return Canonical{}, err
	} else if plan == nil {
		// "" and "off" canonicalize to no injection, sharing one key.
		c.Faults = ""
	}
	if len(r.Artefacts) > 0 {
		seen := make(map[string]bool, len(r.Artefacts))
		for _, raw := range r.Artefacts {
			name := strings.ToLower(strings.TrimSpace(raw))
			if name == "" || seen[name] {
				continue
			}
			if _, _, err := report.Resolve(name); err != nil {
				return Canonical{}, err
			}
			seen[name] = true
			c.Artefacts = append(c.Artefacts, name)
		}
		sort.Strings(c.Artefacts)
	}
	return c, nil
}

// fromCell canonicalizes a sweep cell — cells are already normalized
// with the same defaults, so this is the identity on the values, just
// a type change. Cells never carry an artefact filter; a cell with an
// unparseable fault profile keeps it verbatim so validate() rejects
// it with the parse error.
func fromCell(c sweep.Cell) Canonical {
	canon, err := canonicalize(Request{
		Seed: c.Seed, Scale: c.Scale, AnnotationSize: c.Annotation,
		Workers: c.Workers, CrawlConcurrency: c.CrawlConcurrency,
		Faults: c.Faults,
	})
	if err != nil {
		canon.Faults = c.Faults
	}
	return canon
}

// key renders the canonical options as the cache key. The faults
// segment appears only when set, so fault-free keys stay byte-
// identical to the pre-faultx era.
func (c Canonical) key() string {
	key := "seed=" + strconv.FormatUint(c.Seed, 10) +
		"|scale=" + strconv.FormatFloat(c.Scale, 'g', -1, 64) +
		"|annotation=" + strconv.Itoa(c.AnnotationSize) +
		"|workers=" + strconv.Itoa(c.Workers) +
		"|crawl=" + strconv.Itoa(c.CrawlConcurrency) +
		"|arts=" + strings.Join(c.Artefacts, ",")
	if c.Faults != "" {
		key += "|faults=" + c.Faults
	}
	return key
}

// coreOptions expands the canonical options for core.NewStudy.
func (c Canonical) coreOptions() core.Options {
	return core.Options{
		Synth:            synth.Config{Seed: c.Seed, Scale: c.Scale, Workers: c.Workers},
		AnnotationSize:   c.AnnotationSize,
		Workers:          c.Workers,
		CrawlConcurrency: c.CrawlConcurrency,
		Faults:           c.Faults,
	}
}

// Summary carries the study's headline numbers — the figures the
// paper's abstract quotes, not the full tables (those are in Report).
// It is an alias of sweep.Summary: the sweep aggregators and the
// service wire format share one definition, so a remote sweep folds
// exactly the numbers a local one does.
type Summary = sweep.Summary

// Run statuses.
const (
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Envelope is the wire form of one study run.
type Envelope struct {
	ID      string    `json:"id"`
	Status  string    `json:"status"`
	Cached  bool      `json:"cached"`
	Options Canonical `json:"options"`
	Error   string    `json:"error,omitempty"`
	// ElapsedMS is the study's execution time (not the request's: a
	// cached response keeps the original run's).
	ElapsedMS int64                    `json:"elapsed_ms,omitempty"`
	Summary   *Summary                 `json:"summary,omitempty"`
	Stages    []pipeline.StageSnapshot `json:"stages,omitempty"`
	Report    string                   `json:"report,omitempty"`
	// Degraded marks a successful run whose crawl lost tasks to dead
	// or exhausted hosts: the results are a partial corpus with a
	// per-host ledger in the report, not a failure. Graceful
	// degradation is the contract — a hostile substrate must never
	// turn a study into a 500.
	Degraded bool `json:"degraded,omitempty"`
}

// run is one study execution and its lifecycle.
type run struct {
	id   string
	key  string
	opts Canonical
	// origin is the request id that started the run ("" for internal
	// sweeps) — the log field that joins a run's node events back to
	// the HTTP request that caused them.
	origin string
	// originSpan is the starting request's span identity (zero for
	// internal sweeps or with tracing off): the run's spans join the
	// originating trace even though the run itself is detached from the
	// request context. Coalesced later requests observe the first
	// requester's trace, matching how coalescing works everywhere else.
	originSpan tracex.SpanContext
	done       chan struct{} // closed when the run finishes

	// Written once before done closes, read-only after.
	status   string
	errMsg   string
	elapsed  time.Duration
	summary  *Summary
	stages   []pipeline.StageSnapshot
	report   string
	degraded bool
	// sections holds every rendered report section by name — the
	// GET /v1/study/{id}/artefact/{name} source. A full run renders
	// all of them; a filtered run only the requested ones.
	sections map[string]string
}

func (r *run) envelope(cached bool, full bool) Envelope {
	select {
	case <-r.done:
		// The closed channel orders the executor's writes before our
		// reads below.
	default:
		// Still running: only the immutable fields are safe to read.
		return Envelope{ID: r.id, Status: StatusRunning, Cached: cached, Options: r.opts}
	}
	env := Envelope{
		ID:      r.id,
		Status:  r.status,
		Cached:  cached,
		Options: r.opts,
		Error:   r.errMsg,
	}
	if r.status == StatusDone {
		env.ElapsedMS = r.elapsed.Milliseconds()
		env.Summary = r.summary
		env.Stages = r.stages
		env.Degraded = r.degraded
		if full {
			env.Report = r.report
		}
	}
	return env
}

// Stats are the service counters served at /v1/stats. The JSON shape
// is a dashboard contract, pinned by TestStatsJSONShape — extending it
// is fine, renaming or removing fields is a break.
type Stats struct {
	RunsStarted   int64 `json:"runs_started"`
	RunsCompleted int64 `json:"runs_completed"`
	RunsFailed    int64 `json:"runs_failed"`
	CacheHits     int64 `json:"cache_hits"`
	Coalesced     int64 `json:"coalesced"`
	Evictions     int64 `json:"evictions"`
	// Shed counts requests rejected by admission control (429): the
	// pool was saturated and the queue bound — depth or wait — was
	// exceeded. A nonzero rate under load is the service protecting
	// itself; a high rate is undersizing.
	Shed int64 `json:"shed"`
	// QueueDepth is the number of requests currently waiting for a
	// pool slot (bounded by Config.MaxQueueDepth).
	QueueDepth    int `json:"queue_depth"`
	InFlight      int `json:"in_flight"`
	CachedResults int `json:"cached_results"`
	// OpenRequests counts HTTP requests currently being served,
	// including ones merely waiting on a run.
	OpenRequests int `json:"open_requests"`
	// Memo mirrors the shared artefact store's counters (absent when
	// memo sharing is disabled): Computes is the work the service
	// actually did, Hits the work the artefact graph saved it.
	Memo *artefact.StoreStats `json:"memo,omitempty"`
	// QueueWait is the admission-wait distribution over successfully
	// admitted fresh runs (cache hits and coalesced requests never
	// wait and are not counted).
	QueueWait pipeline.HistogramSnapshot `json:"queue_wait"`
	// Nodes aggregates per-artefact-node execution across every run
	// the service completed: memo hit/miss counts and the compute
	// latency histogram, sorted by node name.
	Nodes []NodeStats `json:"nodes"`
}

// Service runs studies behind a cache, an in-flight table and a
// bounded pool. Create with New; mount via Handler.
type Service struct {
	cfg Config
	sem chan struct{} // bounded worker pool

	mu       sync.Mutex
	stats    Stats
	inflight map[string]*run
	byID     map[string]*run
	order    *list.List               // LRU: front = most recent
	cache    map[string]*list.Element // key → element whose Value is *run
	failed   []string                 // failed run ids, oldest first (bounded)
	nextID   int

	// sweeps holds server-side sweep runs by id (bounded FIFO).
	sweeps     map[string]*sweepRun
	sweepOrder []string
	nextSweep  int

	// worlds shares generated synth worlds across runs whose canonical
	// synth configs match (LRU-bounded; safe — runs never mutate their
	// world). Server-side sweep cells varying only annotation/workers
	// hit it hardest.
	worlds *sweep.WorldCache

	// memo shares artefact values across every run through the
	// service (LRU-bounded in entries): two clients asking for
	// different tables of the same world run the shared prefix of the
	// artefact graph once, coalesced by the store's in-flight
	// deduplication.
	memo *artefact.Store

	// waiting counts admission-queue waiters (guarded by mu; bounded
	// by cfg.MaxQueueDepth).
	waiting int
	// queueWait is the admission-wait histogram behind Stats.QueueWait.
	queueWait *pipeline.Histogram
	// nodes aggregates per-artefact-node stats across completed runs
	// (guarded by mu).
	nodes map[string]*nodeAgg

	// reqMu guards the HTTP request tracking (separate from mu: the
	// middleware must not contend with run bookkeeping).
	reqMu    sync.Mutex
	nextReq  int
	openReqs map[string]openRequest

	// testRunHook, when set by tests, runs inside execute while the
	// run holds its pool slot — the seam saturation tests use to hold
	// the pool full deterministically.
	testRunHook func()
}

// New builds a service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxConcurrentRuns),
		inflight:  make(map[string]*run),
		byID:      make(map[string]*run),
		order:     list.New(),
		cache:     make(map[string]*list.Element),
		sweeps:    make(map[string]*sweepRun),
		queueWait: pipeline.NewHistogram(),
		nodes:     make(map[string]*nodeAgg),
		openReqs:  make(map[string]openRequest),
	}
	if cfg.WorldCacheSize > 0 {
		s.worlds = sweep.NewWorldCache(cfg.WorldCacheSize)
	}
	if cfg.MemoSize > 0 {
		s.memo = artefact.NewStore(cfg.MemoSize)
	}
	return s
}

// getOrStart returns the run for the canonical options: a cached
// result, the in-flight run to coalesce onto, or a freshly started
// one. cached reports a cache hit. Starting a fresh run requires
// admission — a worker-pool slot — so a saturated pool surfaces here
// as ErrSaturated (HTTP callers, block=false) instead of unbounded
// queueing; cache hits and coalesced requests need no slot and are
// never shed. block=true (internal sweep cells) waits indefinitely.
func (s *Service) getOrStart(ctx context.Context, c Canonical, block bool) (r *run, cached bool, err error) {
	key := c.key()
	if r, cached, ok := s.lookup(key); ok {
		return r, cached, nil
	}
	// Miss: reserve a pool slot BEFORE registering the run, so the
	// number of queued-but-unstarted runs is bounded by the admission
	// queue, not by the request rate.
	if err := s.admit(ctx, block); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: an identical request may have completed
	// or started while we waited for the slot.
	if el, ok := s.cache[key]; ok {
		<-s.sem // release the unused slot; never blocks, we hold it
		s.order.MoveToFront(el)
		s.stats.CacheHits++
		return el.Value.(*run), true, nil
	}
	if r, ok := s.inflight[key]; ok {
		<-s.sem
		s.stats.Coalesced++
		return r, false, nil
	}
	s.nextID++
	r = &run{
		id:         "s-" + strconv.Itoa(s.nextID),
		key:        key,
		opts:       c,
		origin:     requestIDFrom(ctx),
		originSpan: tracex.SpanContextFromContext(ctx),
		done:       make(chan struct{}),
		status:     StatusRunning,
	}
	s.inflight[key] = r
	s.byID[r.id] = r
	s.stats.RunsStarted++
	go s.execute(r) // execute owns the admitted slot and releases it
	return r, false, nil
}

// lookup checks the result cache and the in-flight table; ok reports
// that the request needs no new run (and so no admission).
func (s *Service) lookup(key string) (r *run, cached, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.cache[key]; ok {
		s.order.MoveToFront(el)
		s.stats.CacheHits++
		return el.Value.(*run), true, true
	}
	if r, ok := s.inflight[key]; ok {
		s.stats.Coalesced++
		return r, false, true
	}
	return nil, false, false
}

// execute runs one study and publishes the outcome. The caller
// (getOrStart) already admitted it into the worker pool; execute
// releases the slot when done.
func (s *Service) execute(r *run) {
	defer func() { <-s.sem }()
	if s.testRunHook != nil {
		s.testRunHook()
	}

	lg := s.log().With("run", r.id)
	if r.origin != "" {
		lg = lg.With("origin_request", r.origin)
	}
	// Runs are detached from their requesting HTTP context (coalesced
	// requests share them), so the run context is BaseContext plus the
	// run-scoped logger: core's artefact evaluation and the memo store
	// log each node event under this run's — and origin request's — id.
	// The tracer rides the same way, re-parented onto the originating
	// request's span so the run's node spans land in the caller's trace.
	ctx := logx.NewContext(s.cfg.BaseContext, lg)
	ctx = tracex.NewContext(ctx, s.cfg.Tracer)
	ctx = tracex.WithRemote(ctx, r.originSpan)
	ctx, runSpan := tracex.StartSpan(ctx, "run")
	runSpan.SetAttr("run", r.id)
	runSpan.SetAttr("options", r.key)
	defer runSpan.End()
	lg.Info("run start", "options", r.key)

	start := time.Now()
	// Worlds are shared across runs with the same canonical synth
	// config: server-side sweep cells (and study requests) that only
	// vary annotation/workers/crawl reuse one generated world.
	// World acquisition is the study's cold-start dominator, so it gets
	// its own span; a cache hit shows up as a near-zero "synth" span, a
	// miss as the generation cost the critical-path report attributes.
	opts := r.opts.coreOptions()
	var study *core.Study
	sctx, synthSpan := tracex.StartSpan(ctx, "synth")
	synthSpan.SetAttr("workers", strconv.Itoa(opts.Synth.EffectiveWorkers()))
	if s.worlds != nil {
		study = core.NewStudyWithWorldContext(sctx, opts, s.worlds.GetContext(sctx, opts.Synth))
	} else {
		study = core.NewStudyContext(sctx, opts)
	}
	synthSpan.End()
	if s.memo != nil {
		study.UseMemo(s.memo)
	}

	// Full requests evaluate the whole artefact graph; filtered
	// requests only the selection's subgraph. Either way the shared
	// memo store carries node values across runs.
	var res *core.Results
	var err error
	sections, _, rerr := report.Resolve(r.opts.Artefacts...)
	if rerr != nil {
		// Unreachable for canonicalized options, but never run an
		// unvalidated selection.
		err = rerr
	} else if len(r.opts.Artefacts) == 0 {
		res, err = study.Run(ctx)
	} else {
		res, err = study.Compute(ctx, r.opts.Artefacts...)
		study.Close()
	}
	elapsed := time.Since(start)

	if err == nil {
		r.sections = make(map[string]string, len(sections))
		parts := make([]string, 0, len(sections))
		for _, sec := range sections {
			text := sec.Render(res)
			r.sections[sec.Name] = text
			parts = append(parts, text)
		}
		// For a full run this join IS report.Full (same sections,
		// same order, same separator).
		r.report = strings.Join(parts, "\n")
		if len(r.opts.Artefacts) == 0 {
			// Only a full run has every field a Summary reads.
			sum := sweep.Summarize(res)
			r.summary = &sum
		}
		if res != nil {
			r.degraded = res.Degraded()
		}
		r.stages = study.PipelineStats()
		r.elapsed = elapsed
		r.status = StatusDone
	} else {
		r.errMsg = err.Error()
		r.status = StatusFailed
	}

	runSpan.SetAttr("status", r.status)

	// Publish the outcome before the bookkeeping: once the run is
	// reachable through the cache it must already read as finished.
	// Requests landing between the close and the cache insert still
	// find the run in inflight and coalesce onto the closed channel.
	close(r.done)

	if err == nil {
		lg.Info("run done", "status", r.status, "elapsed_ms", elapsed.Milliseconds(), "artefacts", len(r.sections))
		// The artefact evaluator already recorded one "node X" stage
		// per resolved node; fold them into the service-lifetime
		// per-node aggregates /v1/stats serves.
		s.foldNodeStats(r.stages)
	} else {
		lg.Error("run failed", "error", err.Error(), "elapsed_ms", elapsed.Milliseconds())
	}

	s.mu.Lock()
	delete(s.inflight, r.key)
	if err == nil {
		s.stats.RunsCompleted++
		s.cache[r.key] = s.order.PushFront(r)
		for s.order.Len() > s.cfg.CacheSize {
			el := s.order.Back()
			victim := el.Value.(*run)
			s.order.Remove(el)
			delete(s.cache, victim.key)
			delete(s.byID, victim.id)
			s.stats.Evictions++
		}
	} else {
		s.stats.RunsFailed++
		// Failed runs stay addressable for a while so a waiting GET can
		// read the error, but never enter the cache: identical options
		// retry. Bound the bookkeeping.
		s.failed = append(s.failed, r.id)
		for len(s.failed) > 32 {
			delete(s.byID, s.failed[0])
			s.failed = s.failed[1:]
		}
	}
	s.mu.Unlock()
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.InFlight = len(s.inflight)
	st.CachedResults = len(s.cache)
	st.QueueDepth = s.waiting
	if s.memo != nil {
		ms := s.memo.Stats()
		st.Memo = &ms
	}
	st.Nodes = s.nodeStatsLocked()
	s.mu.Unlock()
	st.QueueWait = s.queueWait.Snapshot()
	s.reqMu.Lock()
	st.OpenRequests = len(s.openReqs)
	s.reqMu.Unlock()
	return st
}

// Handler mounts the API behind the request middleware (ids, request
// logging, in-flight tracking — obs.go).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/study", s.handleRun)
	mux.HandleFunc("GET /v1/study", s.handleList)
	mux.HandleFunc("GET /v1/study/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/study/{id}/artefact/{name}", s.handleArtefact)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/sweep/{id}", s.handleSweepGet)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/trace", s.handleTraceList)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTraceGet)
	return s.instrument(mux)
}

// validate enforces the service's resource limits on one canonical
// request; it returns a non-empty reason when the request is rejected.
func (s *Service) validate(c Canonical) string {
	if c.Scale > s.cfg.MaxScale {
		return fmt.Sprintf("scale %g exceeds the service limit %g", c.Scale, s.cfg.MaxScale)
	}
	if c.Workers > s.cfg.MaxWorkers {
		return fmt.Sprintf("workers %d exceeds the service limit %d", c.Workers, s.cfg.MaxWorkers)
	}
	if c.CrawlConcurrency > s.cfg.MaxWorkers {
		return fmt.Sprintf("crawl concurrency %d exceeds the service limit %d", c.CrawlConcurrency, s.cfg.MaxWorkers)
	}
	if _, err := faultx.ParseProfile(c.Faults); err != nil {
		// Backstop for sweep cells, whose profiles bypass canonicalize
		// errors (see fromCell).
		return err.Error()
	}
	return ""
}

func (s *Service) handleRun(w http.ResponseWriter, req *http.Request) {
	var in Request
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	c, err := canonicalize(in)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if reason := s.validate(c); reason != "" {
		httpError(w, http.StatusUnprocessableEntity, reason)
		return
	}

	r, cached, err := s.getOrStart(req.Context(), c, false)
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			secs := s.retryAfterSeconds()
			logx.FromContext(req.Context()).Info("shed",
				"reason", err.Error(), "retry_after_s", secs)
			// The header is the machine-readable backoff hint; the JSON
			// body repeats it for humans reading error strings.
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			httpError(w, http.StatusTooManyRequests,
				fmt.Sprintf("%v; retry after %ds", err, secs))
			return
		}
		// Admission ended with the request's own context: the client is
		// gone, nothing useful to write.
		return
	}
	if req.URL.Query().Get("wait") == "false" {
		writeJSONStatus(w, http.StatusAccepted, r.envelope(cached, false))
		return
	}
	select {
	case <-r.done:
	case <-req.Context().Done():
		// Client gone; the run continues for future requests.
		return
	}
	writeJSON(w, r.envelope(cached, wantReport(req)))
}

func (s *Service) handleGet(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	s.mu.Lock()
	r, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such study run (completed runs are evicted LRU)")
		return
	}
	if req.URL.Query().Get("wait") == "true" {
		select {
		case <-r.done:
		case <-req.Context().Done():
			return
		}
	}
	writeJSON(w, r.envelope(false, wantReport(req)))
}

// ArtefactEnvelope is the GET /v1/study/{id}/artefact/{name}
// response: one named artefact's rendered section(s) from a completed
// run.
type ArtefactEnvelope struct {
	ID       string `json:"id"`
	Artefact string `json:"artefact"`
	Status   string `json:"status"`
	Report   string `json:"report,omitempty"`
}

// handleArtefact serves a single artefact of a run by name — the
// selective read path: a client that already ran (or is sharing) a
// study fetches just Table 5 without the rest of the report.
//
// The name is validated before the id is looked up, so an unknown
// artefact is always 400, and a missing or evicted id 404.
func (s *Service) handleArtefact(w http.ResponseWriter, req *http.Request) {
	id, name := req.PathValue("id"), req.PathValue("name")
	sections, _, err := report.Resolve(name)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	r, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such study run (completed runs are evicted LRU)")
		return
	}
	select {
	case <-r.done:
	case <-req.Context().Done():
		return
	}
	if r.status != StatusDone {
		httpError(w, http.StatusConflict, fmt.Sprintf("run %s %s: %s", r.id, r.status, r.errMsg))
		return
	}
	var parts []string
	for _, sec := range sections {
		text, ok := r.sections[sec.Name]
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf(
				"run %s did not compute %q (its artefact filter is %v)", r.id, sec.Name, r.opts.Artefacts))
			return
		}
		parts = append(parts, text)
	}
	writeJSON(w, ArtefactEnvelope{
		ID: r.id, Artefact: name, Status: r.status,
		Report: strings.Join(parts, "\n"),
	})
}

// RunInfo is one row of the GET /v1/study listing: enough for a sweep
// client or an operator to inspect the LRU and the in-flight table
// without guessing ids.
type RunInfo struct {
	ID      string    `json:"id"`
	Status  string    `json:"status"`
	Options Canonical `json:"options"`
	// Cached reports that the run's result sits in the LRU cache.
	Cached    bool  `json:"cached"`
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
}

// RunList is the GET /v1/study response.
type RunList struct {
	Runs []RunInfo `json:"runs"`
}

// List snapshots every addressable run: in-flight first (oldest
// started first), then cached results from most to least recently
// used, then retained failures (oldest first).
func (s *Service) List() RunList {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := RunList{Runs: []RunInfo{}}
	inflight := make([]*run, 0, len(s.inflight))
	for _, r := range s.inflight {
		inflight = append(inflight, r)
	}
	// Ids are "s-N" with N monotonically increasing: numeric order is
	// start order.
	sort.Slice(inflight, func(i, j int) bool {
		return runSeq(inflight[i].id) < runSeq(inflight[j].id)
	})
	for _, r := range inflight {
		out.Runs = append(out.Runs, RunInfo{ID: r.id, Status: StatusRunning, Options: r.opts})
	}
	for el := s.order.Front(); el != nil; el = el.Next() {
		r := el.Value.(*run)
		out.Runs = append(out.Runs, RunInfo{
			ID: r.id, Status: r.status, Options: r.opts,
			Cached: true, ElapsedMS: r.elapsed.Milliseconds(),
		})
	}
	for _, id := range s.failed {
		if r, ok := s.byID[id]; ok {
			out.Runs = append(out.Runs, RunInfo{ID: r.id, Status: r.status, Options: r.opts})
		}
	}
	return out
}

// runSeq extracts the numeric suffix of a run id ("s-12" → 12).
func runSeq(id string) int {
	if i := strings.LastIndexByte(id, '-'); i >= 0 {
		if n, err := strconv.Atoi(id[i+1:]); err == nil {
			return n
		}
	}
	return 0
}

func (s *Service) handleList(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, s.List())
}

func (s *Service) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, s.Stats())
}

// wantReport reports whether the response should carry the full text
// report (default yes; report=false trims it).
func wantReport(req *http.Request) bool {
	return req.URL.Query().Get("report") != "false"
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeJSONStatus writes a JSON body under a non-200 status. The
// Content-Type must be set before WriteHeader — mutations after it are
// silently dropped.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
