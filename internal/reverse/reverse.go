// Package reverse is the reproduction's TinEye: a reverse image search
// over a perceptual-hash index of the (synthetic) web. Each indexed
// record carries the hosting URL, the backlink it was crawled from and
// the crawl date, which is what the paper's provenance analysis (§4.5)
// consumes: "a report is created indicating for each match ... i) the
// domain and URL where the image is (or was) hosted; ii) the backlink
// from where it was crawled and; iii) the crawling date".
//
// Matching uses the composite perceptual hash (imagex.Hash128) within
// a Hamming radius, so it
// "deal[s] with a broad range of image transformations" (recompression
// and light edits match) while mirroring and heavy shading evade — the
// evasions the paper observes actors using.
package reverse

import (
	"sort"
	"sync"
	"time"

	"repro/internal/imagex"
)

// DefaultRadius is the match radius in summed Hamming bits over the
// composite hash. Recompressed copies land within a few bits;
// unrelated images sit tens of bits away.
const DefaultRadius = 10

// Record describes one indexed occurrence of an image on the web.
type Record struct {
	URL       string    `json:"url"`
	Domain    string    `json:"domain"`
	Backlink  string    `json:"backlink"`
	CrawlDate time.Time `json:"crawl_date"`
}

// Match is one search hit.
type Match struct {
	Record
	// Score is a similarity in (0, 1]: 1 means identical hash.
	Score float64 `json:"score"`
	// Distance is the raw Hamming distance.
	Distance int `json:"distance"`
}

// Index is the searchable image index. Safe for concurrent use.
type Index struct {
	mu      sync.RWMutex
	radius  int
	hashes  []imagex.Hash128
	records []Record
}

// NewIndex returns an empty index with the given radius
// (DefaultRadius if radius <= 0).
func NewIndex(radius int) *Index {
	if radius <= 0 {
		radius = DefaultRadius
	}
	return &Index{radius: radius}
}

// Add indexes a record under a precomputed hash.
func (ix *Index) Add(h imagex.Hash128, rec Record) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.hashes = append(ix.hashes, h)
	ix.records = append(ix.records, rec)
}

// AddImage indexes a record under the image's composite hash.
func (ix *Index) AddImage(im *imagex.Image, rec Record) {
	ix.Add(imagex.Hash128Of(im), rec)
}

// Len returns the number of indexed records.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.hashes)
}

// Search returns every record within the radius of the image's hash,
// sorted by ascending distance (ties by URL).
func (ix *Index) Search(im *imagex.Image) []Match {
	return ix.SearchHash(imagex.Hash128Of(im))
}

// SearchHash is Search for a precomputed hash.
func (ix *Index) SearchHash(h imagex.Hash128) []Match {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Match
	for i, eh := range ix.hashes {
		if d := h.Distance(eh); d <= ix.radius {
			out = append(out, Match{
				Record:   ix.records[i],
				Score:    1 - float64(d)/128,
				Distance: d,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].URL < out[j].URL
	})
	return out
}

// Domains returns the distinct domains across a set of matches.
func Domains(matches []Match) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, m := range matches {
		if _, ok := seen[m.Domain]; !ok {
			seen[m.Domain] = struct{}{}
			out = append(out, m.Domain)
		}
	}
	sort.Strings(out)
	return out
}

// SeenBefore reports whether any match was crawled strictly before the
// cutoff — the paper's "Seen Before" column: the image was online
// before it was posted in the forum.
func SeenBefore(matches []Match, cutoff time.Time) bool {
	for _, m := range matches {
		if m.CrawlDate.Before(cutoff) {
			return true
		}
	}
	return false
}
