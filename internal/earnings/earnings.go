// Package earnings implements §5 of the study: estimating eWhoring
// income from proof-of-earnings images and analysing monetisation via
// the Currency Exchange board.
//
// Proof images are screenshots of payment dashboards. The study's
// authors annotated 2 067 of them manually; this reproduction renders
// proofs in the dashboard formats the synthetic actors use and
// annotates them by actually OCR-ing the pixels back out (the
// "annotation" step is therefore a real image-to-structured-data
// parser, not an oracle). Amounts in foreign currencies are converted
// to USD at the historical monthly rate of the transaction date, as in
// the paper.
package earnings

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/forum"
	"repro/internal/imagex"
	"repro/internal/ocr"
)

// Platform is a payment platform observed in proofs.
type Platform string

// Platforms, in the order the paper discusses them (Amazon Gift Cards
// and PayPal dominate; Bitcoin is rare).
const (
	PlatformPayPal  Platform = "PayPal"
	PlatformAGC     Platform = "AGC"
	PlatformBitcoin Platform = "BTC"
	PlatformSkrill  Platform = "Skrill"
	PlatformCash    Platform = "Cash"
	PlatformUnknown Platform = "?"
)

// Currency is an ISO-ish currency code.
type Currency string

// Currencies seen in proofs.
const (
	USD Currency = "USD"
	GBP Currency = "GBP"
	EUR Currency = "EUR"
	BTC Currency = "BTC"
)

// RateToUSD returns the (synthetic) historical exchange rate of one
// unit of the currency in USD at time t. The tables are piecewise
// monthly approximations of the 2008-2019 era: GBP drifting 1.65→1.25
// with the 2016 drop, EUR 1.45→1.10, and Bitcoin's well-known arc from
// cents through the December 2017 peak. Unknown currencies return 1.
func RateToUSD(c Currency, t time.Time) float64 {
	y := float64(t.Year()) + float64(t.YearDay())/365.0
	switch c {
	case USD:
		return 1
	case GBP:
		switch {
		case y < 2009:
			return 1.85
		case y < 2014:
			return 1.55 + 0.05*math.Sin((y-2009)*2)
		case y < 2016.5:
			return 1.52
		case y < 2017:
			return 1.30 // post-referendum drop
		default:
			return 1.27
		}
	case EUR:
		switch {
		case y < 2010:
			return 1.45
		case y < 2015:
			return 1.33
		default:
			return 1.12
		}
	case BTC:
		switch {
		case y < 2011:
			return 0.3
		case y < 2013:
			return 8
		case y < 2014:
			return 300
		case y < 2016:
			return 400
		case y < 2017:
			return 700
		case y < 2017.9:
			return 4000
		case y < 2018.1:
			return 16000 // late-2017 peak
		case y < 2019:
			return 6500
		default:
			return 4000
		}
	default:
		return 1
	}
}

// Transaction is one incoming payment shown in a proof.
type Transaction struct {
	Amount   float64
	Currency Currency
	Date     time.Time
}

// USD converts the transaction at its own date's rate.
func (tx Transaction) USD() float64 {
	return tx.Amount * RateToUSD(tx.Currency, tx.Date)
}

// Proof is the structured annotation of one proof-of-earnings image.
type Proof struct {
	Post     forum.PostID
	Actor    forum.ActorID
	Platform Platform
	Currency Currency
	// Total is the overall amount shown, in Currency.
	Total float64
	// Date is when the proof was posted.
	Date time.Time
	// Transactions carries per-payment detail when the dashboard shows
	// it (the paper: ~60% of proofs are detailed).
	Transactions []Transaction
}

// Detailed reports whether per-transaction breakdown is available.
func (p Proof) Detailed() bool { return len(p.Transactions) > 0 }

// TotalUSD converts the proof total to USD. Detailed proofs convert
// per transaction at each transaction's date; summary proofs convert
// the total at the proof date.
func (p Proof) TotalUSD() float64 {
	if len(p.Transactions) == 0 {
		return p.Total * RateToUSD(p.Currency, p.Date)
	}
	sum := 0.0
	for _, tx := range p.Transactions {
		sum += tx.USD()
	}
	return sum
}

// --- Rendering (what the synthetic actors post) -----------------------

// platformHeader maps a platform to its dashboard banner line.
func platformHeader(p Platform) string {
	switch p {
	case PlatformPayPal:
		return "PAYPAL DASHBOARD"
	case PlatformAGC:
		return "AMAZON GIFT CARDS"
	case PlatformBitcoin:
		return "BITCOIN WALLET"
	case PlatformSkrill:
		return "SKRILL ACCOUNT"
	case PlatformCash:
		return "CASH COUNT"
	default:
		return "PAYMENTS"
	}
}

// RenderProofLines produces the canonical dashboard text of a proof.
// Layout:
//
//	PAYPAL DASHBOARD
//	TOTAL: 774.00 USD
//	TX: 41.90 ON 03/14/2016
//	...
func RenderProofLines(p Proof) []string {
	lines := []string{
		platformHeader(p.Platform),
		fmt.Sprintf("TOTAL: %.2f %s", p.Total, p.Currency),
	}
	for _, tx := range p.Transactions {
		lines = append(lines, fmt.Sprintf("TX: %.2f ON %02d/%02d/%04d",
			tx.Amount, int(tx.Date.Month()), tx.Date.Day(), tx.Date.Year()))
	}
	return lines
}

// RenderProofImage draws the proof as a screenshot image sized to fit
// its lines.
func RenderProofImage(seed uint64, p Proof) *imagex.Image {
	lines := RenderProofLines(p)
	w := 0
	for _, l := range lines {
		if lw := imagex.TextWidth(l, 1) + 6; lw > w {
			w = lw
		}
	}
	if w < 120 {
		w = 120
	}
	h := imagex.LineHeight(1)*len(lines) + 6
	if h < 24 {
		h = 24
	}
	return imagex.GenScreenshot(seed, lines, w, h)
}

// --- Annotation (parsing proofs back out of pixels) --------------------

// ErrNotProof reports that an image is not a parseable
// proof-of-earnings screenshot (e.g. a chat screenshot or banner).
var ErrNotProof = errors.New("earnings: image is not a proof of earnings")

// AnnotateImage OCRs a screenshot and parses the dashboard text into a
// Proof. postDate provides the proof date (the forum post's
// timestamp). It returns ErrNotProof for non-proof images.
func AnnotateImage(im *imagex.Image, postDate time.Time) (Proof, error) {
	res := ocr.Recognize(im)
	return ParseProofText(res.Text, postDate)
}

// ParseProofText parses the OCR'd dashboard text of a proof image.
func ParseProofText(text string, postDate time.Time) (Proof, error) {
	p := Proof{Date: postDate, Currency: USD, Platform: PlatformUnknown}
	lines := strings.Split(text, "\n")
	if len(lines) == 0 {
		return Proof{}, ErrNotProof
	}
	switch {
	case strings.Contains(text, "PAYPAL"):
		p.Platform = PlatformPayPal
	case strings.Contains(text, "AMAZON"):
		p.Platform = PlatformAGC
	case strings.Contains(text, "BITCOIN"):
		p.Platform = PlatformBitcoin
	case strings.Contains(text, "SKRILL"):
		p.Platform = PlatformSkrill
	case strings.Contains(text, "CASH"):
		p.Platform = PlatformCash
	}
	foundTotal := false
	for _, line := range lines {
		words := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "TOTAL:") && len(words) >= 3:
			amt, err := strconv.ParseFloat(words[1], 64)
			if err != nil {
				continue
			}
			cur := Currency(words[2])
			switch cur {
			case USD, GBP, EUR, BTC:
				p.Currency = cur
			default:
				continue
			}
			p.Total = amt
			foundTotal = true
		case strings.HasPrefix(line, "TX:") && len(words) >= 4 && words[2] == "ON":
			amt, err1 := strconv.ParseFloat(words[1], 64)
			date, err2 := time.Parse("01/02/2006", words[3])
			if err1 != nil || err2 != nil {
				continue
			}
			p.Transactions = append(p.Transactions, Transaction{
				Amount: amt, Currency: p.Currency, Date: date.UTC(),
			})
		}
	}
	if p.Platform == PlatformUnknown || !foundTotal {
		return Proof{}, ErrNotProof
	}
	// Transactions inherit the (possibly later-parsed) currency.
	for i := range p.Transactions {
		p.Transactions[i].Currency = p.Currency
	}
	return p, nil
}

// --- Aggregation (Figure 2, Figure 3, §5.2 headline numbers) -----------

// ActorEarnings aggregates proofs per actor.
type ActorEarnings struct {
	Actor    forum.ActorID
	Proofs   int
	TotalUSD float64
}

// AggregateByActor groups proofs by actor and sums USD totals.
func AggregateByActor(proofs []Proof) []ActorEarnings {
	idx := make(map[forum.ActorID]int)
	var out []ActorEarnings
	for _, p := range proofs {
		i, ok := idx[p.Actor]
		if !ok {
			i = len(out)
			idx[p.Actor] = i
			out = append(out, ActorEarnings{Actor: p.Actor})
		}
		out[i].Proofs++
		out[i].TotalUSD += p.TotalUSD()
	}
	return out
}

// Summary carries the headline §5.2 numbers.
type Summary struct {
	Proofs          int
	Actors          int
	TotalUSD        float64
	MeanPerActorUSD float64
	Detailed        int
	// MeanTransactionUSD averages over every transaction in detailed
	// proofs (the paper reports US$41.90).
	MeanTransactionUSD float64
	ByPlatform         map[Platform]int
}

// Summarize computes the headline statistics over a proof corpus.
func Summarize(proofs []Proof) Summary {
	s := Summary{Proofs: len(proofs), ByPlatform: make(map[Platform]int)}
	perActor := AggregateByActor(proofs)
	s.Actors = len(perActor)
	for _, a := range perActor {
		s.TotalUSD += a.TotalUSD
	}
	if s.Actors > 0 {
		s.MeanPerActorUSD = s.TotalUSD / float64(s.Actors)
	}
	txSum, txN := 0.0, 0
	for _, p := range proofs {
		s.ByPlatform[p.Platform]++
		if p.Detailed() {
			s.Detailed++
			for _, tx := range p.Transactions {
				txSum += tx.USD()
				txN++
			}
		}
	}
	if txN > 0 {
		s.MeanTransactionUSD = txSum / float64(txN)
	}
	return s
}
