package artefact

import (
	"context"
	"strings"
	"sync"

	"repro/internal/logx"
	"repro/internal/tracex"
)

// DefaultStoreSize bounds a Store created with no explicit limit.
const DefaultStoreSize = 256

// Store memoizes node values across evaluations. Entries are keyed by
// (node name, node key); concurrent evaluations asking for the same
// entry deduplicate onto one computation (the rest block until it
// finishes), so two requests for different tables of the same world
// run the shared prefix of the graph exactly once. The store is
// LRU-bounded in entries and never memoizes errors — a failed
// computation is dropped so the next evaluation retries.
//
// It also serves as the node-execution ledger: ComputeCounts reports
// how many times each node actually computed (as opposed to being
// answered from memo), which is what selectivity and reuse tests
// assert on.
type Store struct {
	mu      sync.Mutex
	max     int
	entries map[string]*entry
	order   []string // LRU order, most recently used last

	computes map[string]int // node name → actual computations
	hits     int64
	evicted  int64
}

// entry deduplicates one computation: the creator computes, waiters
// block on done.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// NewStore returns a store holding at most max entries
// (DefaultStoreSize if max <= 0).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultStoreSize
	}
	return &Store{
		max:      max,
		entries:  make(map[string]*entry),
		computes: make(map[string]int),
	}
}

// resolve returns the memoized value for (node, key), computing it
// with fn on first use. memoized reports that the value came from the
// store rather than this call's fn. An empty key bypasses the store
// entirely (the node is computed every time, and still ledgered).
//
// A waiter that observes the creator's failure retries with its own
// fn instead of inheriting the error: one evaluation's timeout or
// cancellation must not poison the evaluations that happened to be
// waiting on its in-flight nodes. Only the waiter's own cancellation
// ends its attempt.
func (s *Store) resolve(ctx context.Context, node, key string, fn func(context.Context) (any, error)) (val any, memoized bool, err error) {
	// The context logger (when the caller bound one — the study
	// service's request/run ids arrive this way) sees every memo
	// outcome at debug level; the context tracer records the same
	// outcomes as "node X" spans, with computed work nested inside.
	lg := logx.FromContext(ctx)
	ctx, sp := tracex.StartSpan(ctx, "node "+node)
	defer sp.End()
	if key == "" {
		s.mu.Lock()
		s.computes[node]++
		s.mu.Unlock()
		lg.Debug("memo bypass", "node", node)
		sp.SetAttr("outcome", "bypass")
		v, err := fn(ctx)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		return v, false, err
	}
	id := node + "\x00" + key

	var e *entry
	for e == nil {
		s.mu.Lock()
		cur, ok := s.entries[id]
		if !ok {
			e = &entry{done: make(chan struct{})}
			s.entries[id] = e
			s.order = append(s.order, id)
			s.evictLocked()
			s.computes[node]++
			s.mu.Unlock()
			continue
		}
		s.touch(id)
		s.mu.Unlock()
		select {
		case <-cur.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if cur.err == nil {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			lg.Debug("memo hit", "node", node)
			sp.SetAttr("outcome", "hit")
			return cur.val, true, nil
		}
		// The creator failed and already dropped its entry; loop and
		// compute (or join a newer in-flight attempt) ourselves.
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}

	lg.Debug("memo compute", "node", node)
	sp.SetAttr("outcome", "compute")
	e.val, e.err = fn(ctx)
	if e.err != nil {
		sp.SetAttr("error", e.err.Error())
		// Never memoize failure: drop the entry (waiters already hold
		// the pointer, observe the error, and retry on their own) so
		// the next attempt recomputes.
		s.mu.Lock()
		if cur, ok := s.entries[id]; ok && cur == e {
			delete(s.entries, id)
			s.drop(id)
		}
		s.mu.Unlock()
	}
	close(e.done)
	return e.val, false, e.err
}

// evictLocked drops least-recently-used completed entries until the
// store is within its bound. In-flight entries are never evicted —
// that would detach future resolvers from a running computation and
// duplicate its work — so the store may transiently exceed max while
// computations are in flight. Caller holds s.mu.
func (s *Store) evictLocked() {
	for i := 0; i < len(s.order) && len(s.order) > s.max; {
		id := s.order[i]
		select {
		case <-s.entries[id].done:
			copy(s.order[i:], s.order[i+1:])
			s.order = s.order[:len(s.order)-1]
			delete(s.entries, id)
			s.evicted++
			// i now indexes the next candidate.
		default:
			i++ // in flight: skip
		}
	}
}

// touch moves id to the most-recently-used end of the LRU order.
func (s *Store) touch(id string) {
	for i, k := range s.order {
		if k == id {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = id
			return
		}
	}
}

// drop removes id from the LRU order.
func (s *Store) drop(id string) {
	for i, k := range s.order {
		if k == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// Len returns the number of memoized entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// ComputeCount returns how many times the named node actually
// computed through this store.
func (s *Store) ComputeCount(node string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.computes[node]
}

// ComputeCounts returns a copy of the per-node computation ledger.
func (s *Store) ComputeCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.computes))
	for k, v := range s.computes {
		out[k] = v
	}
	return out
}

// TotalComputes returns the total number of node computations across
// the store's lifetime.
func (s *Store) TotalComputes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, v := range s.computes {
		n += v
	}
	return n
}

// StoreStats is a snapshot of the store's counters.
type StoreStats struct {
	// Entries is the number of memoized values currently held.
	Entries int `json:"entries"`
	// Hits counts resolves answered from an existing entry (including
	// waits on another evaluation's in-flight computation).
	Hits int64 `json:"hits"`
	// Computes counts actual node computations.
	Computes int64 `json:"computes"`
	// Evictions counts LRU evictions.
	Evictions int64 `json:"evictions"`
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var computes int64
	for _, v := range s.computes {
		computes += int64(v)
	}
	return StoreStats{
		Entries:   len(s.entries),
		Hits:      s.hits,
		Computes:  computes,
		Evictions: s.evicted,
	}
}

// Keys returns the memoized entry identities as "node|key" strings,
// for diagnostics.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, strings.ReplaceAll(id, "\x00", "|"))
	}
	return out
}
