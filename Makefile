GO ?= go

.PHONY: verify vet fmt-check lint build test test-race bench-smoke bench-diff bench-baseline bench-scale bench-scale-baseline bench load-smoke load-slo load-baseline chaos clean

verify: vet lint build test

vet:
	$(GO) vet ./...

# Lint gate: the tree must be gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Project-invariant gate: the ewlint analyzer suite (determinism,
# poolpair, memokey, ctxhygiene — see DESIGN.md §10). Hard gate: any
# finding fails the build; suppress a deliberate exception with a
# reasoned //lint:ignore directive at the site.
lint: fmt-check
	$(GO) run ./cmd/ewlint ./...

build:
	$(GO) build ./...

# -vet=all runs every go vet check (not just the default test-time
# subset) over each package as its tests compile.
test:
	$(GO) test -vet=all ./...

test-race:
	$(GO) test -race ./...

# Three iterations of the sequential/concurrent full-study pair plus
# the cross-seed sweep — fast sanity that the engine and the sweep
# orchestrator run end to end — emitted both as benchstat input
# (bench_*.txt) and as fresh JSON artifacts for CI upload. The fresh
# files are kept distinct from the committed BENCH_*.json baselines so
# a smoke run never clobbers the regression reference.
bench-smoke:
	$(GO) test -run='^$$' -bench='StudyRun(Sequential|Concurrent)$$' -benchtime=3x . | tee bench_pipeline.txt
	$(GO) run ./cmd/benchjson -in bench_pipeline.txt -out BENCH_pipeline.fresh.json
	$(GO) test -run='^$$' -bench=SweepCrossSeed -benchtime=3x . | tee bench_sweep.txt
	$(GO) run ./cmd/benchjson -in bench_sweep.txt -out BENCH_sweep.fresh.json
	$(GO) test -run='^$$' -bench=ArtefactReuse -benchtime=3x . | tee bench_artefact.txt
	$(GO) run ./cmd/benchjson -in bench_artefact.txt -out BENCH_artefact.fresh.json

# Benchmark-regression gate: a fresh smoke run must stay within
# BENCH_TOLERANCE of the committed baselines; it also fails when a
# baseline benchmark disappears. Absolute ns/op only compares
# meaningfully on similar hardware — refresh the baselines from the
# machine class that gates (for CI, the uploaded BENCH_*.fresh.json
# artifact of a green run is exactly the file to commit).
BENCH_TOLERANCE ?= 0.30
bench-diff: bench-smoke
	$(GO) run ./cmd/benchjson -diff -baseline BENCH_pipeline.json -in BENCH_pipeline.fresh.json -tolerance $(BENCH_TOLERANCE)
	$(GO) run ./cmd/benchjson -diff -baseline BENCH_sweep.json -in BENCH_sweep.fresh.json -tolerance $(BENCH_TOLERANCE)
	$(GO) run ./cmd/benchjson -diff -baseline BENCH_artefact.json -in BENCH_artefact.fresh.json -tolerance $(BENCH_TOLERANCE)

# Refresh the committed baselines from a fresh smoke run (run after an
# intentional perf change, then commit the BENCH_*.json files).
bench-baseline: bench-smoke
	cp BENCH_pipeline.fresh.json BENCH_pipeline.json
	cp BENCH_sweep.fresh.json BENCH_sweep.json
	cp BENCH_artefact.fresh.json BENCH_artefact.json

# Scale-1.0 gate: the paper-scale cold numbers — synth.Generate at
# scales 0.1/1.0 plus one complete cold StudyRun at scale 1.0 — held
# to the committed BENCH_scale1.json baseline. One iteration each:
# the operations are seconds-to-tens-of-seconds long, so a single
# pass is already far above timer noise, and 3x would triple a job
# that exists to stay runnable on every push.
bench-scale:
	$(GO) test -run='^$$' -bench='^BenchmarkScale' -benchtime=1x -timeout 30m . | tee bench_scale1.txt
	$(GO) run ./cmd/benchjson -in bench_scale1.txt -out BENCH_scale1.fresh.json
	$(GO) run ./cmd/benchjson -diff -baseline BENCH_scale1.json -in BENCH_scale1.fresh.json -tolerance $(BENCH_TOLERANCE)

# Refresh the committed scale baseline after an intentional perf
# change (then commit BENCH_scale1.json).
bench-scale-baseline:
	$(GO) test -run='^$$' -bench='^BenchmarkScale' -benchtime=1x -timeout 30m . | tee bench_scale1.txt
	$(GO) run ./cmd/benchjson -in bench_scale1.txt -out BENCH_scale1.json

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# SLO load smoke: boot a small ewserve in the background (loopback
# 1808x ports so a dev server on the defaults is undisturbed), drive a
# short target-RPS window at it with `ewsweep -load` (which waits for
# readiness itself) and write the resulting latency/shed artifact plus
# a Perfetto export of the sampled cold-start trace. The server log
# lands in ewserve_load.log for post-mortems.
LOAD_RPS ?= 30
LOAD_DURATION ?= 5s
load-smoke:
	$(GO) build -o ewserve_load_bin ./cmd/ewserve
	./ewserve_load_bin -seed 2019 -scale 0.01 \
		-hosting 127.0.0.1:18081 -reverse 127.0.0.1:18082 \
		-wayback 127.0.0.1:18083 -study 127.0.0.1:18084 \
		2> ewserve_load.log & \
	SRV=$$!; trap 'kill $$SRV 2>/dev/null' EXIT; \
	$(GO) run ./cmd/ewsweep -remote http://127.0.0.1:18084 -load \
		-rps $(LOAD_RPS) -duration $(LOAD_DURATION) -scale 0.01 \
		-bench-out BENCH_load.fresh.json \
		-trace-out trace_load.perfetto.json

# SLO gate: the fresh load artifact must stay within LOAD_TOLERANCE of
# the committed BENCH_load.json. The baseline is deliberately trimmed
# to the SLO terms — LoadStudyP95 (relative gate on p95 latency) and
# LoadStudyShed's shed_rate extra (its committed value is a budget, so
# the relative gate bounds the shed fraction absolutely) — while the
# fresh artifact's p50/p99 entries ride along ungated, for trend
# reading. Load percentiles are far noisier than microbenchmark ns/op,
# hence the wider default tolerance.
LOAD_TOLERANCE ?= 1.50
load-slo: load-smoke
	$(GO) run ./cmd/benchjson -diff -baseline BENCH_load.json -in BENCH_load.fresh.json -tolerance $(LOAD_TOLERANCE)

# Refresh the committed SLO baseline's p95 from a fresh smoke run.
# Deliberately NOT a straight copy: keep BENCH_load.json's structure
# (p95 + shed budget only) — update the ns_per_op by hand or re-trim.
load-baseline: load-smoke
	@echo "BENCH_load.fresh.json written; update BENCH_load.json's LoadStudyP95 ns_per_op from it,"
	@echo "keeping only the LoadStudyP95 and LoadStudyShed entries (the shed_rate value is the budget)."

# Chaos gate (DESIGN.md §13): the fault-injection suites — faultx
# itself plus every Fault/Breaker/Retry test in the crawler, the core
# equivalence pair and the service — under the race detector with the
# fixed faultx seed, then the adversarial-hosts sweep ladder, whose
# JSON lands in sweep_adversarial.json for CI upload. The sweep run
# doubles as an end-to-end check that degraded cells still aggregate
# (ewsweep exits non-zero if any cell errors).
CHAOS_SEEDS ?= 2
CHAOS_SCALE ?= 0.02
chaos:
	$(GO) test -race ./internal/faultx
	$(GO) test -race -run 'Fault|Breaker|Retry|Backoff|Coverage' \
		./internal/crawler ./internal/core ./internal/studysvc
	$(GO) run ./cmd/ewsweep -preset adversarial-hosts \
		-seeds $(CHAOS_SEEDS) -scale $(CHAOS_SCALE) -quiet -json \
		> sweep_adversarial.json

clean:
	rm -f bench_pipeline.txt bench_sweep.txt bench_artefact.txt bench_scale1.txt \
		BENCH_pipeline.fresh.json BENCH_sweep.fresh.json BENCH_artefact.fresh.json \
		BENCH_scale1.fresh.json BENCH_load.fresh.json ewserve_load.log ewserve_load_bin \
		trace_load.perfetto.json sweep_adversarial.json
