package reverse

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/faultx"
	"repro/internal/imagex"
)

// The HTTP layer mirrors how the study consumed TinEye: an API the
// pipeline POSTs an image to, receiving a JSON report of matches.

// searchResponse is the wire format of a search result.
type searchResponse struct {
	Matches []Match `json:"matches"`
}

// Handler serves the index over HTTP:
//
//	POST /search      (body: SIMG image)  → 200 JSON {"matches": [...]}
//	GET  /searchhash?h=<32 hex chars>     → 200 JSON {"matches": [...]}
//	GET  /stats                           → 200 JSON {"indexed": N}
//
// /searchhash takes the composite perceptual hash directly (AHash then
// DHash, 16 hex chars each) — the PhotoDNA gate has already hashed the
// image, so remote pipelines skip re-uploading the payload.
func Handler(ix *Index) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/searchhash", func(w http.ResponseWriter, r *http.Request) {
		h, err := ParseHash128(r.URL.Query().Get("h"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(searchResponse{Matches: ix.SearchHash(h)})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		im, err := imagex.Decode(body)
		if err != nil {
			http.Error(w, "bad image payload", http.StatusBadRequest)
			return
		}
		matches := ix.Search(im)
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(searchResponse{Matches: matches}); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"indexed":%d}`, ix.Len())
	})
	return mux
}

// Client queries a reverse-image-search service over HTTP, playing the
// role of the TinEye API client.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the service at baseURL (no trailing
// slash). httpClient may be nil (http.DefaultClient).
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{BaseURL: baseURL, HTTP: httpClient}
}

// Search submits an image and returns its matches.
func (c *Client) Search(ctx context.Context, im *imagex.Image) ([]Match, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/search", bytes.NewReader(im.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "image/x-simg")
	return c.do(req)
}

// SearchHash queries by precomputed composite hash via /searchhash.
func (c *Client) SearchHash(ctx context.Context, h imagex.Hash128) ([]Match, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/searchhash?h="+FormatHash128(h), nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// StatusError is a non-200 search response. RetryAfterHint exposes
// the parsed Retry-After header so retrying callers (crawler.
// HTTPClient) can honor the server's backoff request without this
// package knowing who retries.
type StatusError struct {
	StatusCode int
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("reverse: search returned status %d", e.StatusCode)
}

// RetryAfterHint returns the server's backoff request, if any.
func (e *StatusError) RetryAfterHint() time.Duration { return e.RetryAfter }

func (c *Client) do(req *http.Request) ([]Match, error) {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{
			StatusCode: resp.StatusCode,
			RetryAfter: faultx.ParseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("reverse: bad response: %w", err)
	}
	return sr.Matches, nil
}

// FormatHash128 renders a composite hash as 32 hex characters (AHash
// then DHash), the /searchhash wire format.
func FormatHash128(h imagex.Hash128) string {
	return fmt.Sprintf("%016x%016x", uint64(h.A), uint64(h.D))
}

// ParseHash128 parses the /searchhash wire format.
func ParseHash128(s string) (imagex.Hash128, error) {
	var h imagex.Hash128
	if len(s) != 32 {
		return h, fmt.Errorf("reverse: hash must be 32 hex chars, got %d", len(s))
	}
	a, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return h, fmt.Errorf("reverse: bad hash: %w", err)
	}
	d, err := strconv.ParseUint(s[16:], 16, 64)
	if err != nil {
		return h, fmt.Errorf("reverse: bad hash: %w", err)
	}
	h.A, h.D = imagex.Hash(a), imagex.Hash(d)
	return h, nil
}
