package lintx_test

import (
	"go/ast"
	"strings"
	"testing"

	"repro/internal/lintx"
)

// flagFuncs reports every function declaration: a probe analyzer for
// exercising the directive machinery.
var flagFuncs = &lintx.Analyzer{
	Name: "flagfuncs",
	Doc:  "reports every function declaration (test probe)",
	Run: func(pass *lintx.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

// TestDirectives pins the suppression contract: a malformed or
// unknown-analyzer directive is reported and suppresses nothing,
// while a well-formed one silences the following line.
func TestDirectives(t *testing.T) {
	pkgs, err := lintx.LoadFixture("testdata", "dirfix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := lintx.RunAnalyzers(pkgs, []*lintx.Analyzer{flagFuncs})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := []string{
		`lintx: malformed //lint:ignore: want "//lint:ignore <analyzer|all> <reason>"`,
		"flagfuncs: func missingReason",
		`lintx: //lint:ignore names unknown analyzer "nosuchanalyzer"`,
		"flagfuncs: func unknownAnalyzer",
		// validSuppression is silenced by its "all" directive.
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("diagnostics mismatch\n got: %q\nwant: %q", got, want)
	}
}

// TestLoadModulePackage pins the go list loader against the real
// module: the package type-checks from source with full type info.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := lintx.Load("../..", "repro/internal/randx")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	p := pkgs[0]
	if p.Types.Name() != "randx" || len(p.Files) == 0 || p.Info == nil {
		t.Errorf("incomplete load: name=%q files=%d", p.Types.Name(), len(p.Files))
	}
	if p.Types.Scope().Lookup("New") == nil {
		t.Errorf("randx.New not found in type-checked scope")
	}
}
